// Benchmarks regenerating every table and figure of the paper's
// evaluation (§IV), plus ablation benches for the design choices
// DESIGN.md calls out. Each benchmark runs the corresponding experiment
// end to end and reports the headline numbers as custom metrics, so
// `go test -bench=. -benchmem` reproduces the whole evaluation.
package l2fuzz_test

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"testing"
	"time"

	"l2fuzz"
	"l2fuzz/internal/harness"
)

// TestMain re-execs this test binary as a farm worker subprocess when
// the proc-executor bench rows spawn it (see fleetBenchRun).
func TestMain(m *testing.M) {
	if os.Getenv("L2FUZZ_FLEET_WORKER") == "1" {
		if err := l2fuzz.RunFleetWorker(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// BenchmarkTableV_DeviceCatalog regenerates the testbed inventory
// (paper Table V).
func BenchmarkTableV_DeviceCatalog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := harness.TableV()
		if len(rows) != 8 {
			b.Fatalf("catalog has %d devices", len(rows))
		}
	}
}

// BenchmarkTableVI_VulnDetection regenerates the vulnerability-detection
// results (paper Table VI): L2Fuzz against all eight devices, defects
// armed. Reported metrics: vulnerabilities found and the simulated
// seconds to the D2 (Pixel 3) detection.
func BenchmarkTableVI_VulnDetection(b *testing.B) {
	cfg := harness.DefaultTableVIConfig()
	cfg.RobustBudget = 100_000 // robustness is binary; keep benches brisk
	for i := 0; i < b.N; i++ {
		rows, err := harness.TableVI(cfg)
		if err != nil {
			b.Fatal(err)
		}
		found := 0
		var d2Seconds float64
		for _, r := range rows {
			if r.Vuln {
				found++
			}
			if r.Device == "D2" {
				d2Seconds = r.Elapsed.Seconds()
			}
		}
		if found != 5 {
			b.Fatalf("found %d vulnerabilities, want 5", found)
		}
		b.ReportMetric(float64(found), "vulns")
		b.ReportMetric(d2Seconds, "simsec/D2")
	}
}

// BenchmarkTableVII_MutationEfficiency regenerates the mutation-
// efficiency comparison (paper Table VII) at the paper's 100,000-packet
// budget. Reported metrics: L2Fuzz's MP ratio, PR ratio and efficiency
// in percent (paper: 69.96 / 32.49 / 47.22).
func BenchmarkTableVII_MutationEfficiency(b *testing.B) {
	cfg := harness.DefaultTableVIIConfig()
	for i := 0; i < b.N; i++ {
		rows, err := harness.TableVII(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Fuzzer == harness.NameL2Fuzz {
				b.ReportMetric(100*r.Summary.MPRatio, "MP%")
				b.ReportMetric(100*r.Summary.PRRatio, "PR%")
				b.ReportMetric(100*r.Summary.MutationEfficiency, "eff%")
				b.ReportMetric(r.Summary.PacketsPerSecond, "pps")
			}
		}
	}
}

// BenchmarkFig8_MPSeries regenerates the cumulative malformed-packet
// series (paper Figure 8). Reported metric: L2Fuzz's final cumulative
// malformed count (paper: 69,966 of 100,000).
func BenchmarkFig8_MPSeries(b *testing.B) {
	cfg := harness.DefaultFigureConfig()
	for i := 0; i < b.N; i++ {
		series, err := harness.Figure8(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range series {
			if s.Fuzzer == harness.NameL2Fuzz && len(s.Points) > 0 {
				b.ReportMetric(float64(s.Points[len(s.Points)-1].Y), "malformed")
			}
		}
	}
}

// BenchmarkFig9_PRSeries regenerates the cumulative rejection series
// (paper Figure 9). Reported metric: BFuzz's final cumulative rejection
// count (paper: ~91,600 of 100,000 received).
func BenchmarkFig9_PRSeries(b *testing.B) {
	cfg := harness.DefaultFigureConfig()
	for i := 0; i < b.N; i++ {
		series, err := harness.Figure9(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range series {
			if s.Fuzzer == harness.NameBFuzz && len(s.Points) > 0 {
				b.ReportMetric(float64(s.Points[len(s.Points)-1].Y), "rejections")
			}
		}
	}
}

// BenchmarkFig10_StateCoverage regenerates the state-coverage bars
// (paper Figure 10: 13 / 7 / 6 / 3) and, via the same rows, the
// Figure 11 per-state map.
func BenchmarkFig10_StateCoverage(b *testing.B) {
	cfg := harness.DefaultFigureConfig()
	for i := 0; i < b.N; i++ {
		rows, err := harness.Figure10(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Fuzzer {
			case harness.NameL2Fuzz:
				b.ReportMetric(float64(r.States), "L2Fuzz-states")
			case harness.NameDefensics:
				b.ReportMetric(float64(r.States), "Defensics-states")
			case harness.NameBFuzz:
				b.ReportMetric(float64(r.States), "BFuzz-states")
			case harness.NameBSS:
				b.ReportMetric(float64(r.States), "BSS-states")
			}
		}
		if harness.RenderFigure11(rows) == "" {
			b.Fatal("empty Figure 11")
		}
	}
}

// ablationRun measures one L2Fuzz variant on a measurement-grade D2.
func ablationRun(b *testing.B, mutate func(*l2fuzz.FuzzConfig)) l2fuzz.Metrics {
	b.Helper()
	sim, err := l2fuzz.NewSimulation()
	if err != nil {
		b.Fatal(err)
	}
	target, err := sim.AddMeasurementDevice("D2")
	if err != nil {
		b.Fatal(err)
	}
	cfg := l2fuzz.FuzzConfig{Seed: 11, MaxPackets: 40_000}
	mutate(&cfg)
	if _, err := sim.RunL2Fuzz(target, cfg); err != nil {
		b.Fatal(err)
	}
	return sim.Metrics()
}

// BenchmarkAblation_Baseline is the un-ablated reference configuration
// for the ablation benches below.
func BenchmarkAblation_Baseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := ablationRun(b, func(*l2fuzz.FuzzConfig) {})
		b.ReportMetric(100*m.MutationEfficiency, "eff%")
		b.ReportMetric(float64(m.StatesCovered), "states")
	}
}

// BenchmarkAblation_NoStateGuiding removes state guiding entirely: no
// transition recipes, commands drawn from all 26 codes against a cold
// link. Mutation efficiency survives (core field mutating still makes
// valid packets) but state coverage collapses — the deep configuration,
// move and creation states where the paper's zero-days live are never
// reached.
func BenchmarkAblation_NoStateGuiding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := ablationRun(b, func(c *l2fuzz.FuzzConfig) { c.NoStateGuiding = true })
		b.ReportMetric(100*m.MutationEfficiency, "eff%")
		b.ReportMetric(100*m.PRRatio, "PR%")
		b.ReportMetric(float64(m.StatesCovered), "states")
	}
}

// BenchmarkAblation_MutateAllFields scrambles dependent fields too (the
// dumb mutation the paper argues against): transmitted packets become
// invalid rather than valid-malformed and the MP ratio collapses.
func BenchmarkAblation_MutateAllFields(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := ablationRun(b, func(c *l2fuzz.FuzzConfig) { c.MutateAllFields = true })
		b.ReportMetric(100*m.MPRatio, "MP%")
		b.ReportMetric(100*m.PRRatio, "PR%")
	}
}

// BenchmarkFleet measures farm throughput — aggregate transmitted
// packets per wall-clock second — for a fixed eight-device × L2Fuzz ×
// two-shard matrix at 1, 4 and 8 workers, establishing the scaling
// trajectory of the fleet orchestrator. The matrix and budgets are
// constant across worker counts, so pkts/s is directly comparable.
// (On a single-core host the three counts converge: the farm is CPU-
// bound, so the speedup tracks available cores.) Allocations are
// reported per worker count too: the farm is CPU-bound today, so the
// per-job allocation volume is the hot-spot budget the ROADMAP's
// fleet-scaling item chases.
func BenchmarkFleet(b *testing.B) {
	for _, bc := range fleetBenchCases {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				start := time.Now()
				report, err := fleetBenchRun(bc.workers, bc.telemetry, bc.proc)
				if err != nil {
					b.Fatal(err)
				}
				if report.Failed > 0 {
					b.Fatalf("%d jobs failed", report.Failed)
				}
				wall := time.Since(start).Seconds()
				b.ReportMetric(float64(report.TotalPackets)/wall, "pkts/s")
				b.ReportMetric(float64(len(report.Findings)), "findings")
			}
		})
	}
}

// fleetBenchCases is the recorded fleet trajectory: the three worker
// counts, a telemetry-on point whose overhead against the plain
// workers=4 point is the budget the telemetry hot path must hold, and
// a process-isolated point whose overhead against the same baseline
// prices the executor's serialization and pipe transport.
var fleetBenchCases = []struct {
	name      string
	workers   int
	telemetry bool
	proc      bool
}{
	{"workers=1", 1, false, false},
	{"workers=4", 4, false, false},
	{"workers=8", 8, false, false},
	{"workers=4/telemetry", 4, true, false},
	{"workers=4/proc", 4, false, true},
}

// fleetBenchRun executes BenchmarkFleet's fixed matrix once: eight
// devices × L2Fuzz × two shards at 50k packets. With telemetry on, the
// farm carries hot-path counters and writes a discarded run journal —
// the full recording stack minus the disk. With proc on, jobs run in
// worker subprocesses (re-executions of this test binary, see
// TestMain) instead of the in-process pool.
func fleetBenchRun(workers int, telemetry, proc bool) (*l2fuzz.FleetReport, error) {
	cfg := l2fuzz.FleetConfig{
		Shards:           2,
		BaseSeed:         7,
		Workers:          workers,
		MaxPacketsPerJob: 50_000,
	}
	if telemetry {
		cfg.Counters = &l2fuzz.TelemetryCounters{}
		cfg.Journal = l2fuzz.NewTelemetryJournal(io.Discard)
	}
	if proc {
		cfg.Executor = l2fuzz.NewFleetProcExecutor(l2fuzz.FleetProcConfig{
			Procs:   workers,
			Command: []string{os.Args[0]},
			Env:     []string{"L2FUZZ_FLEET_WORKER=1"},
		})
	}
	return l2fuzz.RunFleet(cfg)
}

// TestBenchSnapshot records the fleet trajectory as a committed bench
// snapshot (the repo's BENCH_8.json):
//
//	BENCH_SNAPSHOT=BENCH_8.json go test -run TestBenchSnapshot .
//
// Skipped unless BENCH_SNAPSHOT names the output path, so regular test
// runs stay fast and the committed file only changes deliberately.
func TestBenchSnapshot(t *testing.T) {
	path := os.Getenv("BENCH_SNAPSHOT")
	if path == "" {
		t.Skip("set BENCH_SNAPSHOT=<path> to record the fleet bench trajectory")
	}
	rows := make([]l2fuzz.BenchRow, 0, len(fleetBenchCases))
	for _, bc := range fleetBenchCases {
		row := l2fuzz.MeasureBenchRow(func() (int64, int) {
			report, err := fleetBenchRun(bc.workers, bc.telemetry, bc.proc)
			if err != nil {
				t.Fatal(err)
			}
			if report.Failed > 0 {
				t.Fatalf("%d jobs failed", report.Failed)
			}
			return int64(report.TotalPackets), len(report.Findings)
		})
		row.Name = bc.name
		row.Workers = bc.workers
		row.Telemetry = bc.telemetry
		// Proc rows fuzz in worker subprocesses, so the parent's MemStats
		// deltas cover only orchestration; mark them so renderers don't
		// present the number as the farm's allocation cost.
		row.ParentOnly = bc.proc
		rows = append(rows, row)
	}
	if err := l2fuzz.WriteBenchSnapshot(path, l2fuzz.NewBenchSnapshot("BenchmarkFleet", rows)); err != nil {
		t.Fatal(err)
	}
}

// allocBudget mirrors ALLOC_BUDGET.json: the committed ceiling on the
// packet path's allocation cost, enforced by TestAllocBudget.
type allocBudget struct {
	// Bench names the guarded configuration, for the error message.
	Bench string `json:"bench"`
	// MaxAllocsPerOp and MaxMBPerOp are the ceilings one benchmark op
	// (one full fleet run) must stay under.
	MaxAllocsPerOp int64   `json:"maxAllocsPerOp"`
	MaxMBPerOp     float64 `json:"maxMBPerOp"`
}

// TestAllocBudget is the allocation-regression gate: it benchmarks the
// workers=4 fleet configuration with allocation reporting and fails if
// allocs/op or MB/op exceeds the committed ALLOC_BUDGET.json, so the
// allocation tail PR 9 reclaimed cannot silently grow back.
//
//	ALLOC_GATE=1 go test -run TestAllocBudget .
//
// Skipped without ALLOC_GATE=1 (the run costs a few fleet executions);
// CI always sets it.
func TestAllocBudget(t *testing.T) {
	if os.Getenv("ALLOC_GATE") == "" {
		t.Skip("set ALLOC_GATE=1 to run the allocation-regression gate")
	}
	data, err := os.ReadFile("ALLOC_BUDGET.json")
	if err != nil {
		t.Fatal(err)
	}
	var budget allocBudget
	if err := json.Unmarshal(data, &budget); err != nil {
		t.Fatalf("ALLOC_BUDGET.json: %v", err)
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			report, err := fleetBenchRun(4, false, false)
			if err != nil {
				b.Fatal(err)
			}
			if report.Failed > 0 {
				b.Fatalf("%d jobs failed", report.Failed)
			}
		}
	})
	allocs := res.AllocsPerOp()
	mb := float64(res.AllocedBytesPerOp()) / 1e6
	t.Logf("%s: %d allocs/op (budget %d), %.1f MB/op (budget %.1f)",
		budget.Bench, allocs, budget.MaxAllocsPerOp, mb, budget.MaxMBPerOp)
	if allocs > budget.MaxAllocsPerOp {
		t.Errorf("allocs/op regression: %d > budget %d", allocs, budget.MaxAllocsPerOp)
	}
	if mb > budget.MaxMBPerOp {
		t.Errorf("MB/op regression: %.1f > budget %.1f", mb, budget.MaxMBPerOp)
	}
}

// BenchmarkAblation_NoGarbage drops the garbage tail. The D2 defect needs
// the tail, so detection disappears entirely (verified in the unit
// tests); here we report the residual malformed ratio.
func BenchmarkAblation_NoGarbage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := ablationRun(b, func(c *l2fuzz.FuzzConfig) { c.NoGarbage = true })
		b.ReportMetric(100*m.MPRatio, "MP%")
	}
}
