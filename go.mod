module l2fuzz

go 1.24.0
