// Package sdpfuzz points L2Fuzz's malformation methodology at the SDP
// layer: the service-record server every Bluetooth device mounts on PSM
// 0x0001 and every fuzzer in this reproduction scans through — but
// which no fuzzer kind attacked until now.
//
// SDP has no connection state machine to guide, so the transfer keeps
// the field-aware half of the recipe: requests are built from the
// protocol's own grammar — PDU header (ID, transaction, declared
// parameter length) over a DataElement stream — and malformed one
// grammar production at a time, instead of being random bytes:
//
//   - header length lies: the declared parameter length overruns or
//     undershoots the bytes actually sent (the overrun is the classic
//     parser overread — reading the declared length walks past the
//     receive buffer);
//   - PDU IDs outside the protocol;
//   - truncated DataElement sequences whose header is internally
//     consistent, so the damage is only visible to the element parser;
//   - reserved element descriptors (size index 7) the specification
//     never assigns;
//   - plain garbage, as a floor to compare the grammar-aware shapes
//     against.
//
// Detection mirrors the paper's liveness probing: every few requests a
// valid ServiceSearchAttributeReq must still draw a response. A server
// that answers error responses is healthy — only silence (or a dead
// link) is a finding.
package sdpfuzz

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"l2fuzz/internal/bt/host"
	"l2fuzz/internal/bt/l2cap"
	"l2fuzz/internal/bt/radio"
	"l2fuzz/internal/bt/sdp"
)

// Config parameterises a run.
type Config struct {
	// Seed drives all randomness.
	Seed int64
	// MaxGarbage bounds generated garbage parameter payloads.
	MaxGarbage int
	// MaxPDUs caps the whole run.
	MaxPDUs int
	// ProbeEvery runs the valid-request liveness probe after every
	// ProbeEvery malformed requests.
	ProbeEvery int
	// ThinkTime is charged to the simulated clock per request.
	ThinkTime time.Duration
}

// DefaultConfig returns L2Fuzz-flavoured defaults.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:       seed,
		MaxGarbage: 16,
		MaxPDUs:    50_000,
		ProbeEvery: 8,
		ThinkTime:  450 * time.Microsecond,
	}
}

// Report is the outcome of one run.
type Report struct {
	// Found reports whether the SDP server died.
	Found bool
	// PDUsSent counts transmitted requests, probes included.
	PDUsSent int
	// Elapsed is the simulated run time.
	Elapsed time.Duration
	// LastPDU describes the request sent just before detection.
	LastPDU string
	// Trace is the recorded client operation sequence through detection,
	// populated when Found and a host.TraceRecorder is attached to the
	// client. The snapshot is taken at detection, so a replayed trace
	// ends on the killing request.
	Trace []host.TraceOp
	// TraceTruncated reports the trace outgrew the recorder's limit.
	TraceTruncated bool
}

// ErrNoSDP indicates the target's SDP port could not be opened.
var ErrNoSDP = errors.New("sdpfuzz: target has no reachable SDP port")

// Fuzzer drives DataElement/PDU malformation against one target.
type Fuzzer struct {
	cl  *host.Client
	cfg Config
	rng *rand.Rand

	target radio.BDAddr
	local  l2cap.CID
	remote l2cap.CID
	sent   int
	txn    uint16
}

// New builds a fuzzer over a tester client.
func New(cl *host.Client, cfg Config) *Fuzzer {
	if cfg.MaxGarbage < 0 {
		cfg.MaxGarbage = 0
	}
	if cfg.MaxPDUs <= 0 {
		cfg.MaxPDUs = 50_000
	}
	if cfg.ProbeEvery <= 0 {
		cfg.ProbeEvery = 8
	}
	if cfg.ThinkTime <= 0 {
		cfg.ThinkTime = 450 * time.Microsecond
	}
	return &Fuzzer{cl: cl, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Run fuzzes the target's SDP server until it dies or the request
// budget is exhausted.
func (f *Fuzzer) Run(target radio.BDAddr) (*Report, error) {
	f.target = target
	start := f.cl.Clock().Now()
	if err := f.cl.Connect(target); err != nil {
		return nil, fmt.Errorf("sdpfuzz: %w", err)
	}
	local, remote, err := f.cl.OpenChannel(target, l2cap.PSMSDP)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNoSDP, err)
	}
	f.local, f.remote = local, remote

	report := &Report{}
	finish := func(found bool, lastPDU string) (*Report, error) {
		report.Found = found
		report.LastPDU = lastPDU
		report.PDUsSent = f.sent
		report.Elapsed = f.cl.Clock().Now() - start
		if found {
			if rec := f.cl.Recorder(); rec != nil {
				report.Trace, report.TraceTruncated = rec.Snapshot()
			}
		}
		return report, nil
	}

	for f.sent < f.cfg.MaxPDUs {
		raw, desc := f.mutate()
		if err := f.send(raw); err != nil {
			// The link died under us: the server's death dropped the
			// whole service (DoS class), not just the SDP channel.
			return finish(true, desc)
		}
		if f.sent%f.cfg.ProbeEvery == 0 {
			if !f.probe() {
				return finish(true, desc)
			}
		}
	}
	return finish(false, "")
}

// mutate builds one malformed request: a grammar production of the SDP
// wire format damaged in one deliberate way.
func (f *Fuzzer) mutate() ([]byte, string) {
	f.txn++
	switch f.rng.Intn(6) {
	case 0:
		// Declared-length overrun: a valid request whose header claims
		// more parameter bytes than follow.
		raw := sdp.NewServiceSearchAttributeReq(f.txn).Marshal()
		extra := 1 + f.rng.Intn(64)
		declared := len(raw) - 5 + extra
		binary.BigEndian.PutUint16(raw[3:5], uint16(declared))
		return raw, fmt.Sprintf("header overdeclares %d parameter bytes (+%d)", declared, extra)
	case 1:
		// Declared-length undershoot: the inverse lie. A robust parser
		// rejects the mismatch with an error response.
		raw := sdp.NewServiceSearchAttributeReq(f.txn).Marshal()
		declared := f.rng.Intn(len(raw) - 5)
		binary.BigEndian.PutUint16(raw[3:5], uint16(declared))
		return raw, fmt.Sprintf("header underdeclares %d parameter bytes", declared)
	case 2:
		// Unassigned PDU ID with plausible parameters.
		raw := sdp.NewServiceSearchAttributeReq(f.txn).Marshal()
		raw[0] = byte(0x08 + f.rng.Intn(0xF8))
		return raw, fmt.Sprintf("unassigned PDU ID 0x%02X", raw[0])
	case 3:
		// Truncated DataElement stream: the header re-declares the cut
		// length, so only the element parser sees the damage.
		full := sdp.NewServiceSearchAttributeReq(f.txn).Marshal()
		cut := 5 + f.rng.Intn(len(full)-5)
		raw := append([]byte(nil), full[:cut]...)
		binary.BigEndian.PutUint16(raw[3:5], uint16(cut-5))
		return raw, fmt.Sprintf("DataElement stream truncated to %d bytes", cut-5)
	case 4:
		// Reserved element descriptor: size index 7 exists in no element
		// type the specification defines.
		params := []byte{byte(sdp.TypeSequence)<<3 | 7, 0xFF, 0xFF}
		return sdp.PDU{ID: sdp.PDUServiceSearchAttributeReq, TxnID: f.txn, Params: params}.Marshal(),
			"reserved element descriptor (size index 7)"
	default:
		// Garbage parameters: the floor the grammar-aware shapes are
		// measured against.
		params := make([]byte, f.rng.Intn(f.cfg.MaxGarbage+1))
		for i := range params {
			params[i] = byte(f.rng.Intn(256))
		}
		return sdp.PDU{ID: sdp.PDUServiceSearchAttributeReq, TxnID: f.txn, Params: params}.Marshal(),
			fmt.Sprintf("%d garbage parameter bytes", len(params))
	}
}

// send transmits one request over the SDP channel.
func (f *Fuzzer) send(raw []byte) error {
	err := f.cl.Send(f.target, l2cap.NewPacket(f.remote, raw))
	f.cl.Clock().Advance(f.cfg.ThinkTime)
	f.sent++
	f.cl.Drain()
	return err
}

// probe sends a valid ServiceSearchAttributeReq and reports whether any
// response came back on the SDP channel: the liveness check. An error
// response still counts as alive — a healthy server rejects malformed
// requests; only a dead one goes silent.
func (f *Fuzzer) probe() bool {
	f.cl.Drain()
	f.txn++
	raw := sdp.NewServiceSearchAttributeReq(f.txn).Marshal()
	if err := f.cl.Send(f.target, l2cap.NewPacket(f.remote, raw)); err != nil {
		return false
	}
	f.cl.Clock().Advance(f.cfg.ThinkTime)
	f.sent++
	for _, pkt := range f.cl.Drain() {
		if pkt.ChannelID == f.local {
			return true
		}
	}
	return false
}
