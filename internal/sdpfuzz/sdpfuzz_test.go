package sdpfuzz

import (
	"testing"

	"l2fuzz/internal/bt/device"
	"l2fuzz/internal/bt/host"
	"l2fuzz/internal/bt/radio"
	"l2fuzz/internal/bt/sdp"
)

// targetConfig builds a device whose SDP server carries the given
// defect; the implicit SDP port is enough surface.
func targetConfig(defect *sdp.ServerDefect) device.Config {
	return device.Config{
		Addr:      radio.MustBDAddr("8C:F5:A3:00:00:51"),
		Name:      "sim-speaker",
		Profile:   device.BlueDroidProfile("5.0", "vendor/speaker:5.0/fp"),
		SDPDefect: defect,
	}
}

func rig(t *testing.T, cfg device.Config) (*device.Device, *host.Client) {
	t.Helper()
	m := radio.NewMedium(nil, radio.DefaultTiming())
	d, err := device.New(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := host.NewClient(m, radio.MustBDAddr("00:1B:DC:00:00:04"), "tester")
	if err != nil {
		t.Fatal(err)
	}
	return d, cl
}

func TestFindsOverreadDefect(t *testing.T) {
	d, cl := rig(t, targetConfig(sdp.OverreadDefect()))
	f := New(cl, DefaultConfig(1))
	report, err := f.Run(d.Address())
	if err != nil {
		t.Fatalf("Run() error = %v", err)
	}
	if !report.Found {
		t.Fatalf("defect not found in %d PDUs", report.PDUsSent)
	}
	if !d.Crashed() {
		t.Error("device not actually crashed")
	}
	dump := d.CrashDump()
	if dump == nil || dump.VulnID != "sdp-declared-length-overread" {
		t.Errorf("dump = %+v, want the SDP overread record", dump)
	}
	t.Logf("found after %d PDUs in %v: %s", report.PDUsSent, report.Elapsed, report.LastPDU)
}

func TestRobustServerSurvives(t *testing.T) {
	d, cl := rig(t, targetConfig(nil))
	cfg := DefaultConfig(2)
	cfg.MaxPDUs = 3_000
	f := New(cl, cfg)
	report, err := f.Run(d.Address())
	if err != nil {
		t.Fatal(err)
	}
	if report.Found {
		t.Fatalf("found a defect on the robust server: %+v", report)
	}
	if d.Crashed() {
		t.Error("robust device crashed")
	}
	if report.PDUsSent < cfg.MaxPDUs {
		t.Errorf("PDUsSent = %d, want the full %d budget", report.PDUsSent, cfg.MaxPDUs)
	}
}

// TestSeedDeterminism pins the engine's reproducibility contract: the
// same seed against identical fresh rigs replays the identical run.
func TestSeedDeterminism(t *testing.T) {
	run := func() *Report {
		d, cl := rig(t, targetConfig(sdp.OverreadDefect()))
		f := New(cl, DefaultConfig(7))
		report, err := f.Run(d.Address())
		if err != nil {
			t.Fatal(err)
		}
		return report
	}
	a, b := run(), run()
	if a.Found != b.Found || a.PDUsSent != b.PDUsSent ||
		a.Elapsed != b.Elapsed || a.LastPDU != b.LastPDU {
		t.Errorf("runs diverged:\n a = %+v\n b = %+v", a, b)
	}
}

// TestDifferentSeedsDiverge guards against the seed being ignored.
func TestDifferentSeedsDiverge(t *testing.T) {
	run := func(seed int64) *Report {
		d, cl := rig(t, targetConfig(sdp.OverreadDefect()))
		f := New(cl, DefaultConfig(seed))
		report, err := f.Run(d.Address())
		if err != nil {
			t.Fatal(err)
		}
		return report
	}
	a, b := run(3), run(4)
	if a.PDUsSent == b.PDUsSent && a.LastPDU == b.LastPDU {
		t.Errorf("seeds 3 and 4 produced identical runs (%d PDUs, %q)",
			a.PDUsSent, a.LastPDU)
	}
}
