// Package rfcommfuzz applies L2Fuzz's methodology one protocol layer up,
// implementing the extension the paper's §V sketches as future work:
// "the packet format of these protocols can be divided into core fields
// and other fields, thus we can apply the core field mutating technique
// ... the state guiding of L2Fuzz can lead users to test more states."
//
// The transfer is direct:
//
//   - state guiding: the RFCOMM multiplexer has its own session state
//     machine (closed → connecting → connected → disconnecting per DLC);
//     the fuzzer steers it with valid frames (SABM to the control
//     channel, SABM/DISC to service DLCs) and fuzzes the frames valid in
//     each state;
//   - core field mutating: the DLCI — RFCOMM's port-and-channel setting —
//     is the mutable core field and is swept across its whole 6-bit
//     space including the reserved values; the EA bits, length fields
//     and FCS are dependent fields kept correct (the codec computes
//     them); UIH payloads are application data left benign; a bounded
//     garbage tail rides beyond the FCS.
//
// Detection reuses the L2CAP machinery underneath: the multiplexer dying
// silences RFCOMM while the L2CAP echo still answers — or kills the
// whole Bluetooth service, which the standard ping test catches.
package rfcommfuzz

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"l2fuzz/internal/bt/host"
	"l2fuzz/internal/bt/l2cap"
	"l2fuzz/internal/bt/radio"
	"l2fuzz/internal/bt/rfcomm"
)

// Config parameterises a run.
type Config struct {
	// Seed drives all randomness.
	Seed int64
	// FramesPerState is the fuzz depth per DLC state.
	FramesPerState int
	// MaxGarbage bounds the tail appended beyond the FCS.
	MaxGarbage int
	// MaxFrames caps the whole run.
	MaxFrames int
	// ThinkTime is charged to the simulated clock per frame.
	ThinkTime time.Duration
}

// DefaultConfig returns L2Fuzz-flavoured defaults.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:           seed,
		FramesPerState: 64,
		MaxGarbage:     8,
		MaxFrames:      50_000,
		ThinkTime:      450 * time.Microsecond,
	}
}

// Report is the outcome of one run.
type Report struct {
	// Found reports whether the RFCOMM layer died.
	Found bool
	// FramesSent counts transmitted RFCOMM frames.
	FramesSent int
	// Elapsed is the simulated run time.
	Elapsed time.Duration
	// L2CAPAlive reports whether the L2CAP layer still answered when the
	// RFCOMM layer died (distinguishes a mux death from a stack death).
	L2CAPAlive bool
	// LastFrame describes the frame sent just before detection.
	LastFrame string
	// Trace is the recorded client operation sequence through detection,
	// populated when Found and a host.TraceRecorder is attached to the
	// client. The snapshot is taken before the L2CAPAlive probe, so a
	// replayed trace ends on the killing frame.
	Trace []host.TraceOp
	// TraceTruncated reports the trace outgrew the recorder's limit.
	TraceTruncated bool
}

// ErrNoRFCOMM indicates the target exposes no pairing-free RFCOMM port.
var ErrNoRFCOMM = errors.New("rfcommfuzz: target has no reachable RFCOMM port")

// Fuzzer drives the RFCOMM extension methodology.
type Fuzzer struct {
	cl  *host.Client
	cfg Config
	rng *rand.Rand

	target radio.BDAddr
	local  l2cap.CID
	remote l2cap.CID
	sent   int
}

// New builds a fuzzer over a tester client.
func New(cl *host.Client, cfg Config) *Fuzzer {
	if cfg.FramesPerState <= 0 {
		cfg.FramesPerState = 64
	}
	if cfg.MaxFrames <= 0 {
		cfg.MaxFrames = 50_000
	}
	if cfg.ThinkTime <= 0 {
		cfg.ThinkTime = 450 * time.Microsecond
	}
	return &Fuzzer{cl: cl, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Run fuzzes the target's RFCOMM layer until the multiplexer dies or the
// frame budget is exhausted.
func (f *Fuzzer) Run(target radio.BDAddr) (*Report, error) {
	f.target = target
	start := f.cl.Clock().Now()
	if err := f.cl.Connect(target); err != nil {
		return nil, fmt.Errorf("rfcommfuzz: %w", err)
	}
	local, remote, err := f.cl.OpenChannel(target, l2cap.PSMRFCOMM)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNoRFCOMM, err)
	}
	f.local, f.remote = local, remote

	report := &Report{}
	finish := func(found bool, lastFrame string) (*Report, error) {
		report.Found = found
		report.LastFrame = lastFrame
		report.FramesSent = f.sent
		report.Elapsed = f.cl.Clock().Now() - start
		if found {
			if rec := f.cl.Recorder(); rec != nil {
				report.Trace, report.TraceTruncated = rec.Snapshot()
			}
			report.L2CAPAlive = f.cl.Ping(target) == nil
		}
		return report, nil
	}

	for f.sent < f.cfg.MaxFrames {
		// State guiding, RFCOMM edition: establish the session (control
		// channel SABM), fuzz the connecting job, open a data DLC, fuzz
		// the connected job, tear down, fuzz the disconnecting job.
		if alive := f.validFrame(rfcomm.Frame{DLCI: 0, CommandResponse: true, Type: rfcomm.FrameSABM, PollFinal: true}); !alive {
			return finish(true, "session SABM unanswered")
		}
		for _, job := range []struct {
			name  string
			types []rfcomm.FrameType
		}{
			{name: "connecting", types: []rfcomm.FrameType{rfcomm.FrameSABM}},
			{name: "connected", types: []rfcomm.FrameType{rfcomm.FrameUIH, rfcomm.FrameSABM, rfcomm.FrameDISC}},
			{name: "disconnecting", types: []rfcomm.FrameType{rfcomm.FrameDISC, rfcomm.FrameDM}},
		} {
			for i := 0; i < f.cfg.FramesPerState && f.sent < f.cfg.MaxFrames; i++ {
				frame := f.mutate(job.types)
				desc := fmt.Sprintf("%v DLCI=%d tail=%dB in %s job", frame.Type, frame.DLCI, len(frame.Tail), job.name)
				if err := f.send(frame); err != nil {
					return finish(true, desc)
				}
				// Liveness: every few frames, the control channel must
				// still acknowledge a valid probe.
				if f.sent%8 == 0 {
					if alive := f.validFrame(rfcomm.Frame{DLCI: 0, CommandResponse: true, Type: rfcomm.FrameSABM, PollFinal: true}); !alive {
						return finish(true, desc)
					}
				}
			}
		}
		// Fresh session per cycle.
		_ = f.send(rfcomm.Frame{DLCI: 0, CommandResponse: true, Type: rfcomm.FrameDISC, PollFinal: true})
		f.cl.Drain()
	}
	return finish(false, "")
}

// mutate builds one core-field-mutated frame: DLCI across its whole
// space (including reserved values 62-63), dependent fields computed by
// the codec, benign payload, bounded garbage tail.
func (f *Fuzzer) mutate(types []rfcomm.FrameType) rfcomm.Frame {
	frame := rfcomm.Frame{
		DLCI:            uint8(f.rng.Intn(rfcomm.MaxDLCI + 1)),
		CommandResponse: true,
		Type:            types[f.rng.Intn(len(types))],
		PollFinal:       f.rng.Intn(2) == 0,
	}
	if frame.Type == rfcomm.FrameUIH {
		frame.Payload = []byte{0x00} // benign application data
	}
	if n := f.rng.Intn(f.cfg.MaxGarbage + 1); n > 0 {
		tail := make([]byte, n)
		for i := range tail {
			tail[i] = byte(f.rng.Intn(256))
		}
		frame.Tail = tail
	}
	return frame
}

// send transmits one RFCOMM frame over the fuzzing channel.
func (f *Fuzzer) send(frame rfcomm.Frame) error {
	err := f.cl.Send(f.target, l2cap.NewPacket(f.remote, frame.Marshal()))
	f.cl.Clock().Advance(f.cfg.ThinkTime)
	f.sent++
	f.cl.Drain()
	return err
}

// validFrame sends a valid frame and reports whether any RFCOMM response
// came back: the extension's liveness probe.
func (f *Fuzzer) validFrame(frame rfcomm.Frame) bool {
	f.cl.Drain()
	if err := f.cl.Send(f.target, l2cap.NewPacket(f.remote, frame.Marshal())); err != nil {
		return false
	}
	f.cl.Clock().Advance(f.cfg.ThinkTime)
	f.sent++
	for _, pkt := range f.cl.Drain() {
		if pkt.ChannelID == f.local {
			if _, err := rfcomm.Unmarshal(pkt.Payload); err == nil {
				return true
			}
		}
	}
	return false
}
