package rfcommfuzz

import (
	"errors"
	"testing"

	"l2fuzz/internal/bt/device"
	"l2fuzz/internal/bt/host"
	"l2fuzz/internal/bt/l2cap"
	"l2fuzz/internal/bt/radio"
	"l2fuzz/internal/bt/rfcomm"
)

// headsetConfig builds a device with a pairing-free RFCOMM port and an
// optional mux defect.
func headsetConfig(defect *rfcomm.MuxDefect) device.Config {
	return device.Config{
		Addr:    radio.MustBDAddr("8C:F5:A3:00:00:42"),
		Name:    "sim-headset",
		Profile: device.BlueDroidProfile("5.0", "vendor/headset:5.0/fp"),
		Ports: []device.ServicePort{
			{PSM: l2cap.PSMRFCOMM, Name: "RFCOMM"},
		},
		RFCOMMServices: []rfcomm.Service{
			{Channel: 1, Name: "Serial Port Profile"},
			{Channel: 2, Name: "Hands-Free"},
		},
		RFCOMMDefect: defect,
	}
}

func rig(t *testing.T, cfg device.Config) (*device.Device, *host.Client) {
	t.Helper()
	m := radio.NewMedium(nil, radio.DefaultTiming())
	d, err := device.New(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := host.NewClient(m, radio.MustBDAddr("00:1B:DC:00:00:03"), "tester")
	if err != nil {
		t.Fatal(err)
	}
	return d, cl
}

func TestFindsReservedDLCIDefect(t *testing.T) {
	d, cl := rig(t, headsetConfig(rfcomm.ReservedDLCIDefect()))
	f := New(cl, DefaultConfig(1))
	report, err := f.Run(d.Address())
	if err != nil {
		t.Fatalf("Run() error = %v", err)
	}
	if !report.Found {
		t.Fatalf("defect not found in %d frames", report.FramesSent)
	}
	if !d.Crashed() {
		t.Error("device not actually crashed")
	}
	dump := d.CrashDump()
	if dump == nil || dump.VulnID != "rfcomm-reserved-dlci-deref" {
		t.Errorf("dump = %+v, want the RFCOMM defect record", dump)
	}
	t.Logf("found after %d frames in %v (L2CAP alive: %v): %s",
		report.FramesSent, report.Elapsed, report.L2CAPAlive, report.LastFrame)
}

func TestRobustMuxSurvives(t *testing.T) {
	d, cl := rig(t, headsetConfig(nil))
	cfg := DefaultConfig(2)
	cfg.MaxFrames = 3_000
	f := New(cl, cfg)
	report, err := f.Run(d.Address())
	if err != nil {
		t.Fatal(err)
	}
	if report.Found {
		t.Fatalf("found a defect on the robust mux: %+v", report)
	}
	if d.Crashed() {
		t.Error("robust device crashed")
	}
	if report.FramesSent < 3_000 {
		t.Errorf("budget not exhausted: %d frames", report.FramesSent)
	}
}

func TestDisabledVulnsSuppressDefect(t *testing.T) {
	cfg := headsetConfig(rfcomm.ReservedDLCIDefect())
	cfg.DisableVulns = true
	d, cl := rig(t, cfg)
	fcfg := DefaultConfig(3)
	fcfg.MaxFrames = 2_000
	report, err := New(cl, fcfg).Run(d.Address())
	if err != nil {
		t.Fatal(err)
	}
	if report.Found || d.Crashed() {
		t.Fatal("disabled defect fired anyway")
	}
}

func TestRequiresReachableRFCOMM(t *testing.T) {
	// A phone whose RFCOMM port needs pairing is out of reach, exactly
	// like the paper's pairing-free constraint at the L2CAP layer.
	cfg := headsetConfig(nil)
	cfg.Ports = []device.ServicePort{
		{PSM: l2cap.PSMRFCOMM, Name: "RFCOMM", RequiresPairing: true},
	}
	d, cl := rig(t, cfg)
	_, err := New(cl, DefaultConfig(4)).Run(d.Address())
	if !errors.Is(err, ErrNoRFCOMM) {
		t.Fatalf("error = %v, want ErrNoRFCOMM", err)
	}
	_ = d
}

func TestDeterministicForSeed(t *testing.T) {
	run := func() *Report {
		d, cl := rig(t, headsetConfig(rfcomm.ReservedDLCIDefect()))
		r, err := New(cl, DefaultConfig(7)).Run(d.Address())
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.FramesSent != b.FramesSent || a.Elapsed != b.Elapsed || a.Found != b.Found {
		t.Fatalf("same seed differs: %+v vs %+v", a, b)
	}
}

func TestMuxCrashKillsWholeBluetoothService(t *testing.T) {
	// The injected effect mirrors the Android finding: the RFCOMM death
	// takes com.android.bluetooth with it, so even L2CAP stops answering.
	d, cl := rig(t, headsetConfig(rfcomm.ReservedDLCIDefect()))
	report, err := New(cl, DefaultConfig(1)).Run(d.Address())
	if err != nil {
		t.Fatal(err)
	}
	if !report.Found {
		t.Fatal("defect not found")
	}
	if report.L2CAPAlive {
		t.Error("L2CAP still alive after service-killing RFCOMM crash")
	}
	if err := cl.Ping(d.Address()); err == nil {
		t.Error("ping succeeded against dead service")
	}
}
