package metrics

// Merge combines two trace summaries into the summary an ideal single
// capture of both traces would have produced. Counters add, the derived
// ratios are recomputed from the merged counters, and the spans add —
// the traces come from independent simulations with independent clocks,
// so the merged span is the serial-equivalent capture time and the
// merged PacketsPerSecond is the serial-equivalent throughput (a
// parallel farm's wall-clock speedup is measured separately, against
// real time).
//
// State coverage merges exactly: the summaries carry their visited-state
// sets, so the merged States is the set union and StatesCovered its
// size.
func (s Summary) Merge(o Summary) Summary {
	m := Summary{
		Transmitted: s.Transmitted + o.Transmitted,
		Malformed:   s.Malformed + o.Malformed,
		InvalidTx:   s.InvalidTx + o.InvalidTx,
		Received:    s.Received + o.Received,
		Rejections:  s.Rejections + o.Rejections,
		Span:        s.Span + o.Span,
	}
	if m.Transmitted > 0 {
		m.MPRatio = float64(m.Malformed) / float64(m.Transmitted)
	}
	if m.Received > 0 {
		m.PRRatio = float64(m.Rejections) / float64(m.Received)
	}
	m.MutationEfficiency = m.MPRatio * (1 - m.PRRatio)
	if span := m.Span.Seconds(); span > 0 {
		m.PacketsPerSecond = float64(m.Transmitted) / span
	}
	m.States = unionSorted(s.States, o.States)
	m.StatesCovered = len(m.States)
	return m
}

// unionSorted merges two sorted unique string slices into a fresh sorted
// unique slice, or nil when both are empty.
func unionSorted(a, b []string) []string {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	out := make([]string, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// MergeAll folds any number of summaries with Merge. An empty slice
// yields the zero Summary.
func MergeAll(sums []Summary) Summary {
	var out Summary
	for _, s := range sums {
		out = out.Merge(s)
	}
	return out
}
