package metrics

// Merge combines two trace summaries into the summary an ideal single
// capture of both traces would have produced. Counters add, the derived
// ratios are recomputed from the merged counters, and the spans add —
// the traces come from independent simulations with independent clocks,
// so the merged span is the serial-equivalent capture time and the
// merged PacketsPerSecond is the serial-equivalent throughput (a
// parallel farm's wall-clock speedup is measured separately, against
// real time).
//
// StatesCovered is a count, not a set, so the union is not recoverable
// here: the merge keeps the larger count as a lower bound. Callers that
// hold the underlying visited-state sets (the fleet aggregator does)
// should overwrite it with the size of the true union.
func (s Summary) Merge(o Summary) Summary {
	m := Summary{
		Transmitted: s.Transmitted + o.Transmitted,
		Malformed:   s.Malformed + o.Malformed,
		InvalidTx:   s.InvalidTx + o.InvalidTx,
		Received:    s.Received + o.Received,
		Rejections:  s.Rejections + o.Rejections,
		Span:        s.Span + o.Span,
	}
	if m.Transmitted > 0 {
		m.MPRatio = float64(m.Malformed) / float64(m.Transmitted)
	}
	if m.Received > 0 {
		m.PRRatio = float64(m.Rejections) / float64(m.Received)
	}
	m.MutationEfficiency = m.MPRatio * (1 - m.PRRatio)
	if span := m.Span.Seconds(); span > 0 {
		m.PacketsPerSecond = float64(m.Transmitted) / span
	}
	m.StatesCovered = max(s.StatesCovered, o.StatesCovered)
	return m
}

// MergeAll folds any number of summaries with Merge. An empty slice
// yields the zero Summary.
func MergeAll(sums []Summary) Summary {
	var out Summary
	for _, s := range sums {
		out = out.Merge(s)
	}
	return out
}
