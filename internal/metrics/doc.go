// Package metrics implements the two evaluation metrics the paper
// devises for black-box Bluetooth fuzzers (§IV-A), measured purely from
// the packet trace — the role Wireshark and PRETT play in the paper's
// testbed:
//
//   - Mutation efficiency = MP Ratio × (1 − PR Ratio), where the MP Ratio
//     is the share of transmitted packets that are valid malformed test
//     packets and the PR Ratio is the share of received packets that are
//     rejections.
//   - State coverage: the number of L2CAP states the target visited,
//     inferred by replaying shadow state machines over the observed
//     command sequence (protocol reverse engineering on the trace).
//
// The Sniffer taps the radio medium, reassembles HCI ACL fragments per
// direction, decodes L2CAP signaling, and classifies:
//
//   - a transmitted packet is *malformed* when it decodes as a valid
//     signaling command but carries an abnormal PSM (Table IV), a garbage
//     tail beyond the declared lengths, or a payload channel ID that the
//     trace shows was never allocated. Undecodable packets are *invalid*,
//     not malformed — the paper's point about BFuzz is precisely that
//     breaking dependent fields produces invalid packets that targets
//     reject rather than parse;
//   - a received packet is a *rejection* when it is an L2CAP Command
//     Reject — the explicit signal a Wireshark filter isolates. Negative
//     results inside well-formed responses (PSM not supported, security
//     block) are normal protocol conversation, not packet rejections.
package metrics
