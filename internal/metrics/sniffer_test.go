package metrics

import (
	"testing"

	"l2fuzz/internal/bt/device"
	"l2fuzz/internal/bt/host"
	"l2fuzz/internal/bt/l2cap"
	"l2fuzz/internal/bt/radio"
	"l2fuzz/internal/bt/sm"
)

// snifferRig builds a medium with one lenient device, one tester and a
// sniffer.
func snifferRig(t *testing.T) (*host.Client, *device.Device, *Sniffer) {
	t.Helper()
	m := radio.NewMedium(nil, radio.DefaultTiming())
	d, err := device.New(m, device.Config{
		Addr:         radio.MustBDAddr("F8:8F:CA:00:00:02"),
		Name:         "target",
		Profile:      device.BlueDroidProfile("5.0", "fp"),
		Ports:        []device.ServicePort{{PSM: l2cap.PSMAVDTP, Name: "AVDTP"}},
		DisableVulns: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tester := radio.MustBDAddr("00:1B:DC:00:00:01")
	cl, err := host.NewClient(m, tester, "tester")
	if err != nil {
		t.Fatal(err)
	}
	s := NewSniffer(m, tester)
	if err := cl.Connect(d.Address()); err != nil {
		t.Fatal(err)
	}
	return cl, d, s
}

func TestSnifferCountsNormalTraffic(t *testing.T) {
	cl, d, s := snifferRig(t)
	if err := cl.Ping(d.Address()); err != nil {
		t.Fatal(err)
	}
	sum := s.Summary()
	if sum.Transmitted != 1 || sum.Received != 1 {
		t.Fatalf("tx/rx = %d/%d, want 1/1", sum.Transmitted, sum.Received)
	}
	if sum.Malformed != 0 || sum.Rejections != 0 {
		t.Fatalf("normal echo counted as malformed/rejected: %+v", sum)
	}
}

func TestSnifferClassifiesGarbageTailAsMalformed(t *testing.T) {
	cl, d, s := snifferRig(t)
	if _, err := cl.SendCommand(d.Address(), &l2cap.EchoReq{}, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if sum := s.Summary(); sum.Malformed != 1 {
		t.Fatalf("Malformed = %d, want 1 (garbage tail)", sum.Malformed)
	}
}

func TestSnifferClassifiesAbnormalPSMAsMalformed(t *testing.T) {
	cl, d, s := snifferRig(t)
	if _, err := cl.SendCommand(d.Address(), &l2cap.ConnectionReq{PSM: 0x0101, SCID: 0x0040}, nil); err != nil {
		t.Fatal(err)
	}
	if sum := s.Summary(); sum.Malformed != 1 {
		t.Fatalf("Malformed = %d, want 1 (abnormal PSM)", sum.Malformed)
	}
}

func TestSnifferClassifiesUnknownCIDAsMalformed(t *testing.T) {
	cl, d, s := snifferRig(t)
	// A config request for a CID the trace never saw allocated.
	if _, err := cl.SendCommand(d.Address(), &l2cap.ConfigurationReq{DCID: 0x5555}, nil); err != nil {
		t.Fatal(err)
	}
	if sum := s.Summary(); sum.Malformed != 1 {
		t.Fatalf("Malformed = %d, want 1 (unallocated CID)", sum.Malformed)
	}
}

func TestSnifferAllocatedCIDNotMalformed(t *testing.T) {
	cl, d, s := snifferRig(t)
	res, err := cl.TryOpenChannel(d.Address(), l2cap.PSMAVDTP)
	if err != nil || res.Result != l2cap.ConnResultSuccess {
		t.Fatalf("open: %+v %v", res, err)
	}
	before := s.Summary().Malformed
	// Config for the genuinely allocated DCID, no tail: normal.
	if _, err := cl.SendCommand(d.Address(), &l2cap.ConfigurationReq{DCID: res.RemoteCID}, nil); err != nil {
		t.Fatal(err)
	}
	if got := s.Summary().Malformed; got != before {
		t.Fatalf("valid config counted malformed (%d → %d)", before, got)
	}
}

func TestSnifferInvalidNotMalformed(t *testing.T) {
	cl, d, s := snifferRig(t)
	// A raw signaling payload whose declared data length overruns: an
	// invalid packet, not a valid malformed one (the BFuzz distinction).
	pkt := l2cap.NewPacket(l2cap.CIDSignaling, []byte{0x02, 0x01, 0xFF, 0x0F})
	if err := cl.Send(d.Address(), pkt); err != nil {
		t.Fatal(err)
	}
	sum := s.Summary()
	if sum.Malformed != 0 {
		t.Fatalf("invalid packet counted malformed: %+v", sum)
	}
	if sum.InvalidTx != 1 {
		t.Fatalf("InvalidTx = %d, want 1", sum.InvalidTx)
	}
	// The device rejects it: one rejection received.
	if sum.Rejections != 1 {
		t.Fatalf("Rejections = %d, want 1", sum.Rejections)
	}
}

func TestSnifferCountsCommandRejectOnly(t *testing.T) {
	cl, d, s := snifferRig(t)
	// Negative connection response: received but NOT a rejection packet.
	if _, err := cl.SendCommand(d.Address(), &l2cap.ConnectionReq{PSM: 0x0F01, SCID: 0x0040}, nil); err != nil {
		t.Fatal(err)
	}
	sum := s.Summary()
	if sum.Received != 1 || sum.Rejections != 0 {
		t.Fatalf("rx/rej = %d/%d, want 1/0 for a refused connect", sum.Received, sum.Rejections)
	}
	// An LE command on ACL-U against a strict responder yields a
	// Command Reject... BlueDroid tolerates, so use a stale move request
	// instead (invalid CID reject).
	if _, err := cl.SendCommand(d.Address(), &l2cap.MoveChannelReq{ICID: 0x7777}, nil); err != nil {
		t.Fatal(err)
	}
	sum = s.Summary()
	if sum.Rejections != 1 {
		t.Fatalf("Rejections = %d, want 1 after invalid-CID move", sum.Rejections)
	}
}

func TestSummaryRatios(t *testing.T) {
	cl, d, s := snifferRig(t)
	// Two malformed, one normal, one rejected response out of three.
	if _, err := cl.SendCommand(d.Address(), &l2cap.EchoReq{}, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.SendCommand(d.Address(), &l2cap.MoveChannelReq{ICID: 0x7777}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.SendCommand(d.Address(), &l2cap.EchoReq{}, nil); err != nil {
		t.Fatal(err)
	}
	sum := s.Summary()
	if sum.Transmitted != 3 || sum.Received != 3 {
		t.Fatalf("tx/rx = %d/%d, want 3/3", sum.Transmitted, sum.Received)
	}
	wantMP := 2.0 / 3.0
	if sum.MPRatio < wantMP-0.01 || sum.MPRatio > wantMP+0.01 {
		t.Errorf("MPRatio = %.3f, want %.3f", sum.MPRatio, wantMP)
	}
	wantPR := 1.0 / 3.0
	if sum.PRRatio < wantPR-0.01 || sum.PRRatio > wantPR+0.01 {
		t.Errorf("PRRatio = %.3f, want %.3f", sum.PRRatio, wantPR)
	}
	wantEff := wantMP * (1 - wantPR)
	if sum.MutationEfficiency < wantEff-0.01 || sum.MutationEfficiency > wantEff+0.01 {
		t.Errorf("MutationEfficiency = %.3f, want %.3f", sum.MutationEfficiency, wantEff)
	}
	if sum.PacketsPerSecond <= 0 {
		t.Error("PacketsPerSecond not computed")
	}
}

func TestSeriesSampling(t *testing.T) {
	cl, d, s := snifferRig(t)
	for i := 0; i < 25; i++ {
		if _, err := cl.SendCommand(d.Address(), &l2cap.EchoReq{}, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	pts := s.MPSeries(10)
	if len(pts) != 3 { // 10, 20, final 25
		t.Fatalf("MPSeries(10) has %d points, want 3: %v", len(pts), pts)
	}
	if pts[0].X != 10 || pts[1].X != 20 || pts[2].X != 25 {
		t.Errorf("sample X values = %v, want 10,20,25", pts)
	}
	if pts[2].Y != 25 {
		t.Errorf("final Y = %d, want 25 (all malformed)", pts[2].Y)
	}
	// Step < 1 returns every point.
	if got := len(s.MPSeries(0)); got != 25 {
		t.Errorf("MPSeries(0) has %d points, want 25", got)
	}
}

func TestStateInferenceFullHandshake(t *testing.T) {
	cl, d, s := snifferRig(t)
	local, remote, err := cl.OpenChannel(d.Address(), l2cap.PSMAVDTP)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.CloseChannel(d.Address(), local, remote); err != nil {
		t.Fatal(err)
	}
	visited := make(map[sm.State]bool)
	for _, st := range s.StatesVisited() {
		visited[st] = true
	}
	for _, want := range []sm.State{
		sm.StateClosed, sm.StateWaitConnect, sm.StateWaitConfig, sm.StateOpen,
	} {
		if !visited[want] {
			t.Errorf("inference missed %v; got %v", want, s.StatesVisited())
		}
	}
	// Inference must agree with device ground truth on this clean trace.
	truth := make(map[sm.State]bool)
	for _, st := range d.StatesVisited() {
		truth[st] = true
	}
	for st := range visited {
		if !truth[st] {
			t.Errorf("inference credits %v which the device never visited", st)
		}
	}
}

func TestStateInferenceLockstep(t *testing.T) {
	cl, d, s := snifferRig(t)
	res, err := cl.TryOpenChannel(d.Address(), l2cap.PSMAVDTP)
	if err != nil || res.Result != l2cap.ConnResultSuccess {
		t.Fatalf("open: %+v %v", res, err)
	}
	if _, err := cl.SendCommand(d.Address(), &l2cap.ConfigurationReq{
		DCID:    res.RemoteCID,
		Options: []l2cap.ConfigOption{{Type: l2cap.OptionExtendedFlowSpec, Value: make([]byte, 16)}},
	}, nil); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, st := range s.StatesVisited() {
		if st == sm.StateWaitIndFinalRsp {
			found = true
		}
	}
	if !found {
		t.Errorf("lockstep state not inferred; got %v", s.StatesVisited())
	}
	_ = d
}

// TestSnifferObservesEveryFrameOfPackedPacket sends one signaling
// packet packing two commands — a malformed connect followed by a
// well-formed disconnect — and checks that the malformed verdict stays
// one-per-packet while the state inferencer still sees the later frame
// (the disconnect is the only way WAIT_DISCONNECT enters the trace).
func TestSnifferObservesEveryFrameOfPackedPacket(t *testing.T) {
	cl, d, s := snifferRig(t)
	local, remote, err := cl.OpenChannel(d.Address(), l2cap.PSMAVDTP)
	if err != nil {
		t.Fatal(err)
	}
	before := s.Summary()

	bad := l2cap.EncodeFrame(0x41, &l2cap.ConnectionReq{PSM: 0x0101, SCID: 0x0060}, nil)
	disc := l2cap.EncodeFrame(0x42, &l2cap.DisconnectionReq{DCID: remote, SCID: local}, nil)
	payload := append(bad.Marshal(), disc.Marshal()...)
	if err := cl.Send(d.Address(), l2cap.NewPacket(l2cap.CIDSignaling, payload)); err != nil {
		t.Fatal(err)
	}

	sum := s.Summary()
	if got := sum.Malformed - before.Malformed; got != 1 {
		t.Errorf("packed packet produced %d malformed verdicts, want 1", got)
	}
	found := false
	for _, st := range sum.States {
		if st == sm.StateWaitDisconnect.String() {
			found = true
		}
	}
	if !found {
		t.Errorf("disconnect frame after the malformed one not observed; states = %v", sum.States)
	}
}

// TestSnifferCorrelatesRejectsToRequestCode checks the pendingTx map
// does its job: a Command Reject is attributed to the code of the
// request whose identifier it echoes.
func TestSnifferCorrelatesRejectsToRequestCode(t *testing.T) {
	cl, d, s := snifferRig(t)
	if _, err := cl.SendCommand(d.Address(), &l2cap.MoveChannelReq{ICID: 0x7777}, nil); err != nil {
		t.Fatal(err)
	}
	if sum := s.Summary(); sum.Rejections != 1 {
		t.Fatalf("Rejections = %d, want 1 (invalid-CID move)", sum.Rejections)
	}
	byCode := s.RejectionsByCode()
	if byCode[l2cap.CodeMoveChannelReq] != 1 {
		t.Errorf("RejectionsByCode = %v, want 1 under CodeMoveChannelReq", byCode)
	}
	if n := byCode[0]; n != 0 {
		t.Errorf("%d rejects left uncorrelated: %v", n, byCode)
	}
}

func TestSnifferIgnoresThirdPartyTraffic(t *testing.T) {
	m := radio.NewMedium(nil, radio.DefaultTiming())
	tester := radio.MustBDAddr("00:1B:DC:00:00:01")
	s := NewSniffer(m, tester)
	// Two other parties talk; the sniffer tracks only the tester.
	a, err := host.NewClient(m, radio.MustBDAddr("00:00:00:00:00:0A"), "a")
	if err != nil {
		t.Fatal(err)
	}
	d, err := device.New(m, device.Config{
		Addr:    radio.MustBDAddr("F8:8F:CA:00:00:03"),
		Name:    "other",
		Profile: device.IOSProfile("4.2"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Connect(d.Address()); err != nil {
		t.Fatal(err)
	}
	if err := a.Ping(d.Address()); err != nil {
		t.Fatal(err)
	}
	if sum := s.Summary(); sum.Transmitted != 0 || sum.Received != 0 {
		t.Fatalf("sniffer counted third-party traffic: %+v", sum)
	}
}
