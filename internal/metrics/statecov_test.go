package metrics

import (
	"testing"

	"l2fuzz/internal/bt/l2cap"
	"l2fuzz/internal/bt/sm"
)

// visitedSet drives no traffic: it renders the inferencer's visited
// states as a lookup set.
func visitedSet(si *StateInferencer) map[sm.State]bool {
	out := make(map[sm.State]bool)
	for _, st := range si.Visited() {
		out[st] = true
	}
	return out
}

// TestInferencerKeepsShadowThroughPendingConnect is the regression test
// for the pending-connect coverage loss: a connection response carrying
// ConnResultPending must not consume the pending shadow, so the later
// final success response still matches it and the channel's post-connect
// states (WAIT_CONFIG through OPEN) stay in the coverage count.
func TestInferencerKeepsShadowThroughPendingConnect(t *testing.T) {
	si := NewStateInferencer()
	const (
		testerCID l2cap.CID = 0x0040
		deviceCID l2cap.CID = 0x0041
	)
	si.ObserveTx(l2cap.Frame{}, &l2cap.ConnectionReq{PSM: l2cap.PSMAVDTP, SCID: testerCID}, nil)
	// Authorization pending: the target is still deciding.
	si.ObserveRx(l2cap.Frame{}, &l2cap.ConnectionRsp{SCID: testerCID, DCID: 0, Result: l2cap.ConnResultPending})
	// The final decision arrives for the same SCID.
	si.ObserveRx(l2cap.Frame{}, &l2cap.ConnectionRsp{SCID: testerCID, DCID: deviceCID, Result: l2cap.ConnResultSuccess})

	visited := visitedSet(si)
	if !visited[sm.StateWaitConnect] || !visited[sm.StateWaitConfig] {
		t.Fatalf("pending-then-success connect lost states: got %v, want WAIT_CONNECT and WAIT_CONFIG", si.Visited())
	}

	// The channel must stay tracked: drive the configuration exchange to
	// OPEN through the same shadow.
	si.ObserveTx(l2cap.Frame{}, &l2cap.ConfigurationReq{DCID: deviceCID}, nil) // → WAIT_SEND_CONFIG
	si.ObserveRx(l2cap.Frame{}, &l2cap.ConfigurationReq{DCID: testerCID})      // device proposes → WAIT_CONFIG_RSP
	si.ObserveTx(l2cap.Frame{}, &l2cap.ConfigurationRsp{SCID: deviceCID}, nil) // → OPEN

	visited = visitedSet(si)
	for _, want := range []sm.State{sm.StateWaitSendConfig, sm.StateWaitConfigRsp, sm.StateOpen} {
		if !visited[want] {
			t.Errorf("post-connect state %v not counted after a pending connect; got %v", want, si.Visited())
		}
	}
}

// TestInferencerKeepsShadowThroughPendingCreate covers the Create
// Channel flavour of the same handshake.
func TestInferencerKeepsShadowThroughPendingCreate(t *testing.T) {
	si := NewStateInferencer()
	const (
		testerCID l2cap.CID = 0x0044
		deviceCID l2cap.CID = 0x0045
	)
	si.ObserveTx(l2cap.Frame{}, &l2cap.CreateChannelReq{PSM: l2cap.PSMAVDTP, SCID: testerCID}, nil)
	si.ObserveRx(l2cap.Frame{}, &l2cap.CreateChannelRsp{SCID: testerCID, DCID: 0, Result: l2cap.ConnResultPending})
	si.ObserveRx(l2cap.Frame{}, &l2cap.CreateChannelRsp{SCID: testerCID, DCID: deviceCID, Result: l2cap.ConnResultSuccess})

	visited := visitedSet(si)
	if !visited[sm.StateWaitCreate] || !visited[sm.StateWaitConfig] {
		t.Errorf("pending-then-success create lost states: got %v, want WAIT_CREATE and WAIT_CONFIG", si.Visited())
	}
}

// TestInferencerDropsShadowOnFinalRefusal pins the other half of the
// contract: a final negative result still retires the shadow, so a
// stray success response for the same SCID later matches nothing.
func TestInferencerDropsShadowOnFinalRefusal(t *testing.T) {
	si := NewStateInferencer()
	const testerCID l2cap.CID = 0x0048
	si.ObserveTx(l2cap.Frame{}, &l2cap.ConnectionReq{PSM: l2cap.PSMAVDTP, SCID: testerCID}, nil)
	si.ObserveRx(l2cap.Frame{}, &l2cap.ConnectionRsp{SCID: testerCID, DCID: 0, Result: l2cap.ConnResultPending})
	si.ObserveRx(l2cap.Frame{}, &l2cap.ConnectionRsp{SCID: testerCID, DCID: 0, Result: l2cap.ConnResultSecurityBlock})
	// A bogus success after the final refusal must not resurrect it.
	si.ObserveRx(l2cap.Frame{}, &l2cap.ConnectionRsp{SCID: testerCID, DCID: 0x0049, Result: l2cap.ConnResultSuccess})

	visited := visitedSet(si)
	if !visited[sm.StateWaitConnect] {
		t.Errorf("refused connect lost its WAIT_CONNECT visit: %v", si.Visited())
	}
	if visited[sm.StateWaitConfig] {
		t.Errorf("refused connect credited WAIT_CONFIG: %v", si.Visited())
	}
}
