package metrics

import (
	"sort"
	"time"

	"l2fuzz/internal/bt/hci"
	"l2fuzz/internal/bt/l2cap"
	"l2fuzz/internal/bt/radio"
)

// SamplePoint is one point of the cumulative series behind Figures 8/9.
type SamplePoint struct {
	// X is the cumulative packet count on the axis (transmitted packets
	// for the MP series, received packets for the PR series).
	X int
	// Y is the cumulative count of interest (malformed or rejections).
	Y int
}

// Sniffer is a passive trace analyser tapping one radio medium from the
// tester's perspective.
type Sniffer struct {
	tester radio.BDAddr

	// reassembly per (from,to) direction.
	reasm map[dirKey]*hci.Reassembler

	// counters
	transmitted int
	malformed   int
	received    int
	rejections  int
	invalidTx   int

	startTime time.Duration
	lastTime  time.Duration
	started   bool

	// mpSeries/prSeries record (X, Y) after every relevant packet.
	mpSeries []SamplePoint
	prSeries []SamplePoint

	// allocation tracking: channel endpoints observed as legitimately
	// allocated (device side and tester side), plus in-flight requests.
	allocated map[l2cap.CID]bool
	pendingTx map[uint8]l2cap.CommandCode // tester request id → code

	// Reused decode scratch: taps never nest, so one of each suffices.
	dec       l2cap.Decoder
	sigFrames []l2cap.Frame

	// rejectedByCode correlates received Command Reject packets back to
	// the command code of the tester request they answered (matched via
	// pendingTx by signaling identifier). Rejects whose identifier
	// matches no observed request land under code 0.
	rejectedByCode map[l2cap.CommandCode]int

	states *StateInferencer
}

type dirKey struct{ from, to radio.BDAddr }

// NewSniffer attaches a sniffer to the medium, observing traffic between
// the tester and everything else.
func NewSniffer(m *radio.Medium, tester radio.BDAddr) *Sniffer {
	s := &Sniffer{
		tester:         tester,
		reasm:          make(map[dirKey]*hci.Reassembler),
		allocated:      make(map[l2cap.CID]bool),
		pendingTx:      make(map[uint8]l2cap.CommandCode),
		rejectedByCode: make(map[l2cap.CommandCode]int),
		states:         NewStateInferencer(),
	}
	m.AddTap(s.onFrame)
	return s
}

// onFrame consumes one baseband frame from the tap.
func (s *Sniffer) onFrame(f radio.TapFrame) {
	if f.From != s.tester && f.To != s.tester {
		return // third-party traffic
	}
	if !s.started {
		s.started = true
		s.startTime = f.Time
	}
	s.lastTime = f.Time

	acl, err := hci.ParseACL(f.Data)
	if err != nil {
		return
	}
	key := dirKey{from: f.From, to: f.To}
	r := s.reasm[key]
	if r == nil {
		r = &hci.Reassembler{}
		s.reasm[key] = r
	}
	frame, done, err := r.Push(acl)
	if err != nil || !done {
		return
	}
	if f.From == s.tester {
		s.onTx(frame)
	} else {
		s.onRx(frame)
	}
}

// onTx classifies one tester-to-target L2CAP frame.
func (s *Sniffer) onTx(raw []byte) {
	s.transmitted++
	defer func() {
		s.mpSeries = append(s.mpSeries, SamplePoint{X: s.transmitted, Y: s.malformed})
	}()

	pkt, err := l2cap.ParsePacket(raw)
	if err != nil || !pkt.IsSignaling() {
		return // data-plane traffic (e.g. SDP) is normal
	}
	frames, err := l2cap.AppendSignals(s.sigFrames[:0], pkt.Payload)
	s.sigFrames = frames[:0]
	if err != nil {
		s.invalidTx++
		return
	}
	// One malformed verdict per packet at most, but every decodable
	// frame still feeds the state inferencer: BR/EDR packs several
	// commands into one C-frame, and a malformed first command must not
	// hide the later ones from the coverage accounting.
	verdict := false
	for _, fr := range frames {
		cmd, err := s.dec.Decode(fr)
		if err != nil {
			s.invalidTx++
			continue
		}
		s.pendingTx[fr.Identifier] = fr.Code
		s.states.ObserveTx(fr, cmd, s.allocated)
		if !verdict && s.isMalformed(fr, cmd) {
			s.malformed++
			verdict = true
		}
	}
}

// isMalformed implements the valid-malformed classification.
func (s *Sniffer) isMalformed(fr l2cap.Frame, cmd l2cap.Command) bool {
	if len(fr.Tail) > 0 {
		return true
	}
	core := cmd.CoreFields()
	if core.PSM != nil && l2cap.IsAbnormalPSM(*core.PSM) {
		return true
	}
	// A channel reference the trace never saw allocated is a core-field
	// anomaly — except on connection-style requests, whose SCID is the
	// sender allocating a fresh endpoint.
	switch cmd.Code() {
	case l2cap.CodeConnectionReq, l2cap.CodeCreateChannelReq,
		l2cap.CodeEchoReq, l2cap.CodeEchoRsp,
		l2cap.CodeInformationReq, l2cap.CodeInformationRsp:
		return false
	}
	for _, cid := range core.CIDs {
		if !s.allocated[*cid] {
			return true
		}
	}
	return false
}

// onRx classifies one target-to-tester L2CAP frame.
func (s *Sniffer) onRx(raw []byte) {
	s.received++
	defer func() {
		s.prSeries = append(s.prSeries, SamplePoint{X: s.received, Y: s.rejections})
	}()

	pkt, err := l2cap.ParsePacket(raw)
	if err != nil || !pkt.IsSignaling() {
		return
	}
	frames, err := l2cap.AppendSignals(s.sigFrames[:0], pkt.Payload)
	s.sigFrames = frames[:0]
	if err != nil {
		return
	}
	// As on the Tx side: one rejection verdict per packet, every frame
	// observed.
	verdict := false
	for _, fr := range frames {
		cmd, err := s.dec.Decode(fr)
		if err != nil {
			continue
		}
		s.trackAllocations(cmd)
		s.states.ObserveRx(fr, cmd)
		if isRejection(cmd) {
			s.correlateReject(fr)
			if !verdict {
				s.rejections++
				verdict = true
			}
		}
	}
}

// correlateReject attributes one received Command Reject to the tester
// request it answers, by signaling identifier.
func (s *Sniffer) correlateReject(fr l2cap.Frame) {
	code, ok := s.pendingTx[fr.Identifier]
	if ok {
		delete(s.pendingTx, fr.Identifier)
	}
	s.rejectedByCode[code]++ // code is 0 for unmatched rejects
}

// trackAllocations learns legitimate channel endpoints from responses.
func (s *Sniffer) trackAllocations(cmd l2cap.Command) {
	switch rsp := cmd.(type) {
	case *l2cap.ConnectionRsp:
		if rsp.Result == l2cap.ConnResultSuccess {
			s.allocated[rsp.DCID] = true
			s.allocated[rsp.SCID] = true
		}
	case *l2cap.CreateChannelRsp:
		if rsp.Result == l2cap.ConnResultSuccess {
			s.allocated[rsp.DCID] = true
			s.allocated[rsp.SCID] = true
		}
	}
}

// isRejection classifies a received command as a rejection packet. The
// paper counts Command Reject packets — the explicit "your packet was
// not accepted" signal a Wireshark filter isolates. Negative results in
// otherwise well-formed responses (PSM not supported, security block)
// are normal protocol conversation, not rejections of the packet itself.
func isRejection(cmd l2cap.Command) bool {
	_, ok := cmd.(*l2cap.CommandReject)
	return ok
}

// Summary is the measured outcome of one fuzzing run.
type Summary struct {
	// Transmitted counts tester-to-target L2CAP frames.
	Transmitted int
	// Malformed counts valid malformed transmitted packets.
	Malformed int
	// InvalidTx counts undecodable transmitted signaling packets.
	InvalidTx int
	// Received counts target-to-tester L2CAP frames.
	Received int
	// Rejections counts rejection packets among them.
	Rejections int
	// MPRatio is Malformed / Transmitted.
	MPRatio float64
	// PRRatio is Rejections / Received.
	PRRatio float64
	// MutationEfficiency is MPRatio × (1 − PRRatio).
	MutationEfficiency float64
	// PacketsPerSecond is Transmitted divided by the simulated capture
	// span.
	PacketsPerSecond float64
	// Span is the simulated capture span (first to last observed frame).
	Span time.Duration
	// States is the trace-inferred visited-state set, as sorted state
	// names. Carrying the set (not just its size) lets Merge union
	// coverage exactly across independent captures.
	States []string
	// StatesCovered is len(States), kept as a field for rendering and
	// comparison convenience.
	StatesCovered int
}

// Summary computes the metrics over everything observed so far.
func (s *Sniffer) Summary() Summary {
	sum := Summary{
		Transmitted: s.transmitted,
		Malformed:   s.malformed,
		InvalidTx:   s.invalidTx,
		Received:    s.received,
		Rejections:  s.rejections,
	}
	if s.transmitted > 0 {
		sum.MPRatio = float64(s.malformed) / float64(s.transmitted)
	}
	if s.received > 0 {
		sum.PRRatio = float64(s.rejections) / float64(s.received)
	}
	sum.MutationEfficiency = sum.MPRatio * (1 - sum.PRRatio)
	sum.Span = s.lastTime - s.startTime
	if span := sum.Span.Seconds(); span > 0 {
		sum.PacketsPerSecond = float64(s.transmitted) / span
	}
	for _, st := range s.states.Visited() {
		sum.States = append(sum.States, st.String())
	}
	sort.Strings(sum.States)
	sum.StatesCovered = len(sum.States)
	return sum
}

// RejectionsByCode returns, per tester command code, how many received
// Command Reject frames answered a request of that code (matched by
// signaling identifier). Rejects whose identifier matched no observed
// request are keyed under code 0. The attribution is per frame, so a
// packet packing several Command Rejects contributes each of them and
// the totals can exceed Summary.Rejections, which stays one verdict
// per packet.
func (s *Sniffer) RejectionsByCode() map[l2cap.CommandCode]int {
	out := make(map[l2cap.CommandCode]int, len(s.rejectedByCode))
	for code, n := range s.rejectedByCode {
		out[code] = n
	}
	return out
}

// MPSeries returns the cumulative malformed-vs-transmitted series sampled
// every step packets (Figure 8). A step below 1 returns every point.
func (s *Sniffer) MPSeries(step int) []SamplePoint { return sample(s.mpSeries, step) }

// PRSeries returns the cumulative rejections-vs-received series sampled
// every step packets (Figure 9).
func (s *Sniffer) PRSeries(step int) []SamplePoint { return sample(s.prSeries, step) }

// StatesVisited returns the trace-inferred visited states.
func (s *Sniffer) StatesVisited() []VisitedState { return s.states.Visited() }

func sample(points []SamplePoint, step int) []SamplePoint {
	if step < 1 {
		step = 1
	}
	var out []SamplePoint
	for i := step - 1; i < len(points); i += step {
		out = append(out, points[i])
	}
	if n := len(points); n > 0 && (len(out) == 0 || out[len(out)-1].X != points[n-1].X) {
		out = append(out, points[n-1])
	}
	return out
}
