package metrics

import (
	"l2fuzz/internal/bt/l2cap"
	"l2fuzz/internal/bt/sm"
)

// VisitedState is one state the target was inferred to have visited.
type VisitedState = sm.State

// shadowChan is one tracked channel: the shadow machine plus both
// endpoint names (the device-side CID from the response, the tester-side
// CID from the request).
type shadowChan struct {
	m         *sm.Machine
	deviceCID l2cap.CID
	testerCID l2cap.CID
}

// StateInferencer replays shadow channel state machines over an observed
// command trace to estimate which L2CAP states the target occupied: the
// trace-analysis role PRETT plays in the paper's state-coverage
// measurement.
//
// The inference is conservative where it can be — commands are matched to
// channels by both endpoint CIDs — and optimistic only where the paper's
// methodology is too (a connect or create request is credited with the
// corresponding wait state even if the target refuses, because the target
// had to occupy it to decide).
type StateInferencer struct {
	// byDevice indexes shadows by the device-side CID.
	byDevice map[l2cap.CID]*shadowChan
	// byTester indexes shadows by the tester-side CID.
	byTester map[l2cap.CID]*shadowChan
	// pendingConn maps tester SCID → shadow awaiting a connect response.
	pendingConn map[l2cap.CID]*shadowChan
	// visited accumulates states across all shadows, including closed
	// channels.
	visited map[sm.State]bool
}

// NewStateInferencer returns an empty inferencer.
func NewStateInferencer() *StateInferencer {
	return &StateInferencer{
		byDevice:    make(map[l2cap.CID]*shadowChan),
		byTester:    make(map[l2cap.CID]*shadowChan),
		pendingConn: make(map[l2cap.CID]*shadowChan),
		visited:     make(map[sm.State]bool),
	}
}

// drop removes a shadow from the indexes, absorbing its visit history.
func (si *StateInferencer) drop(sc *shadowChan) {
	si.absorb(sc.m)
	delete(si.byDevice, sc.deviceCID)
	delete(si.byTester, sc.testerCID)
}

// ObserveTx consumes one tester-to-target command. allocated is the
// sniffer's current view of allocated endpoints (unused today; kept for
// classifier symmetry).
func (si *StateInferencer) ObserveTx(fr l2cap.Frame, cmd l2cap.Command, allocated map[l2cap.CID]bool) {
	switch c := cmd.(type) {
	case *l2cap.ConnectionReq:
		// The target enters WAIT_CONNECT while deciding.
		sc := &shadowChan{m: sm.NewMachine(), testerCID: c.SCID}
		sc.m.Apply(sm.EvRecvConnectReq)
		si.pendingConn[c.SCID] = sc
		si.absorb(sc.m)
	case *l2cap.CreateChannelReq:
		sc := &shadowChan{m: sm.NewMachine(), testerCID: c.SCID}
		sc.m.Apply(sm.EvRecvCreateReq)
		si.pendingConn[c.SCID] = sc
		si.absorb(sc.m)
	case *l2cap.ConfigurationReq:
		if sc := si.byDevice[c.DCID]; sc != nil {
			ev := sm.EvRecvConfigReq
			if hasEFS(c.Options) {
				ev = sm.EvRecvConfigReqEFS
			}
			sc.m.Apply(ev)
			si.absorb(sc.m)
		}
	case *l2cap.ConfigurationRsp:
		// In a tester-sent response the SCID names the device-side
		// endpoint.
		if sc := si.byDevice[c.SCID]; sc != nil {
			sc.m.Apply(sm.EvRecvConfigRsp)
			si.absorb(sc.m)
		}
	case *l2cap.DisconnectionReq:
		if sc := si.byDevice[c.DCID]; sc != nil {
			if _, ok := sc.m.Apply(sm.EvRecvDisconnectReq); ok {
				// OPEN channels pass through WAIT_DISCONNECT.
				sc.m.Apply(sm.EvLocalAccept)
			}
			si.drop(sc)
		}
	case *l2cap.MoveChannelReq:
		if sc := si.byDevice[c.ICID]; sc != nil {
			sc.m.Apply(sm.EvRecvMoveReq)
			si.absorb(sc.m)
		}
	case *l2cap.MoveChannelConfirmReq:
		if sc := si.byDevice[c.ICID]; sc != nil {
			sc.m.Apply(sm.EvRecvMoveConfirmReq)
			si.absorb(sc.m)
		}
	default:
	}
	_ = allocated
}

// ObserveRx consumes one target-to-tester command.
func (si *StateInferencer) ObserveRx(fr l2cap.Frame, cmd l2cap.Command) {
	switch c := cmd.(type) {
	case *l2cap.ConnectionRsp:
		si.completeConnect(c.SCID, c.DCID, c.Result)
	case *l2cap.CreateChannelRsp:
		si.completeConnect(c.SCID, c.DCID, c.Result)
	case *l2cap.ConfigurationReq:
		// The device proposing its own configuration: the request's DCID
		// names the tester-side endpoint.
		if sc := si.byTester[c.DCID]; sc != nil {
			sc.m.Apply(sm.EvLocalSendConfigReq)
			si.absorb(sc.m)
		}
	case *l2cap.ConfigurationRsp:
		// The SCID in a device-sent response names the tester-side
		// endpoint. A final (non-pending) response completes lockstep
		// configuration when the shadow is parked in WAIT_IND_FINAL_RSP.
		if sc := si.byTester[c.SCID]; sc != nil {
			if c.Result != l2cap.ConfigPending && sc.m.State() == sm.StateWaitIndFinalRsp {
				sc.m.Apply(sm.EvLocalFinalRsp)
			}
			si.absorb(sc.m)
		}
	case *l2cap.MoveChannelRsp:
		if c.Result == l2cap.MoveResultSuccess {
			if sc := si.byDevice[c.ICID]; sc != nil && sc.m.State() == sm.StateWaitMove {
				sc.m.Apply(sm.EvLocalAccept)
				si.absorb(sc.m)
			}
		}
	default:
	}
	_ = fr
}

// completeConnect resolves a pending connect/create against its response.
func (si *StateInferencer) completeConnect(scid, dcid l2cap.CID, result l2cap.ConnResult) {
	sc := si.pendingConn[scid]
	if sc == nil {
		return
	}
	if result == l2cap.ConnResultPending {
		// The target is still deciding (authorization pending): the
		// channel stays in WAIT_CONNECT/WAIT_CREATE and the final
		// response is yet to come. Keep the shadow pending so that final
		// response still matches — dropping it here would orphan every
		// post-connect state on the channel.
		return
	}
	delete(si.pendingConn, scid)
	if result != l2cap.ConnResultSuccess {
		si.absorb(sc.m)
		return
	}
	// A reused device CID means the old channel is gone (link loss the
	// trace did not witness); retire the stale shadow first.
	if old := si.byDevice[dcid]; old != nil {
		si.drop(old)
	}
	if old := si.byTester[scid]; old != nil {
		si.drop(old)
	}
	sc.m.Apply(sm.EvLocalAccept) // → WAIT_CONFIG
	sc.deviceCID = dcid
	si.byDevice[dcid] = sc
	si.byTester[scid] = sc
	si.absorb(sc.m)
}

func (si *StateInferencer) absorb(m *sm.Machine) {
	for _, s := range m.Visited() {
		si.visited[s] = true
	}
}

// Visited returns the inferred visited states in declaration order.
func (si *StateInferencer) Visited() []VisitedState {
	var out []VisitedState
	for _, s := range sm.AllStates() {
		if si.visited[s] {
			out = append(out, s)
		}
	}
	return out
}

func hasEFS(opts []l2cap.ConfigOption) bool {
	for _, o := range opts {
		if o.Type == l2cap.OptionExtendedFlowSpec {
			return true
		}
	}
	return false
}
