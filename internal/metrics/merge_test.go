package metrics

import (
	"math"
	"reflect"
	"testing"
	"time"
)

func TestMergeCountersAndRatios(t *testing.T) {
	a := Summary{
		Transmitted: 100, Malformed: 70, InvalidTx: 2,
		Received: 80, Rejections: 20,
		Span:   2 * time.Second,
		States: []string{"CLOSED", "OPEN", "WAIT_CONNECT"}, StatesCovered: 3,
	}
	b := Summary{
		Transmitted: 300, Malformed: 30, InvalidTx: 1,
		Received: 120, Rejections: 80,
		Span:   6 * time.Second,
		States: []string{"CLOSED", "WAIT_CONFIG"}, StatesCovered: 2,
	}
	m := a.Merge(b)

	if m.Transmitted != 400 || m.Malformed != 100 || m.InvalidTx != 3 {
		t.Errorf("tx counters = %d/%d/%d, want 400/100/3", m.Transmitted, m.Malformed, m.InvalidTx)
	}
	if m.Received != 200 || m.Rejections != 100 {
		t.Errorf("rx counters = %d/%d, want 200/100", m.Received, m.Rejections)
	}
	if want := 100.0 / 400.0; math.Abs(m.MPRatio-want) > 1e-12 {
		t.Errorf("MPRatio = %v, want %v", m.MPRatio, want)
	}
	if want := 100.0 / 200.0; math.Abs(m.PRRatio-want) > 1e-12 {
		t.Errorf("PRRatio = %v, want %v", m.PRRatio, want)
	}
	if want := (100.0 / 400.0) * 0.5; math.Abs(m.MutationEfficiency-want) > 1e-12 {
		t.Errorf("MutationEfficiency = %v, want %v", m.MutationEfficiency, want)
	}
	if m.Span != 8*time.Second {
		t.Errorf("Span = %v, want 8s", m.Span)
	}
	if want := 400.0 / 8.0; math.Abs(m.PacketsPerSecond-want) > 1e-12 {
		t.Errorf("PacketsPerSecond = %v, want %v", m.PacketsPerSecond, want)
	}
	wantStates := []string{"CLOSED", "OPEN", "WAIT_CONFIG", "WAIT_CONNECT"}
	if !reflect.DeepEqual(m.States, wantStates) {
		t.Errorf("States = %v, want the exact union %v", m.States, wantStates)
	}
	if m.StatesCovered != 4 {
		t.Errorf("StatesCovered = %d, want the exact union size 4", m.StatesCovered)
	}
}

// TestMergeUnionsOverlappingStateSetsExactly pins the exact-union
// semantics: overlapping sets must merge to their union, not to the
// larger count, in either merge order.
func TestMergeUnionsOverlappingStateSetsExactly(t *testing.T) {
	a := Summary{States: []string{"CLOSED", "OPEN", "WAIT_CONFIG"}, StatesCovered: 3}
	b := Summary{States: []string{"OPEN", "WAIT_CONNECT", "WAIT_DISCONNECT"}, StatesCovered: 3}
	want := []string{"CLOSED", "OPEN", "WAIT_CONFIG", "WAIT_CONNECT", "WAIT_DISCONNECT"}

	for _, m := range []Summary{a.Merge(b), b.Merge(a)} {
		if !reflect.DeepEqual(m.States, want) {
			t.Errorf("union = %v, want %v", m.States, want)
		}
		if m.StatesCovered != len(want) {
			t.Errorf("StatesCovered = %d, want %d", m.StatesCovered, len(want))
		}
	}
}

func TestMergeZeroIsIdentity(t *testing.T) {
	// Build a with Merge itself so its derived fields carry the exact
	// floating-point values a further merge would recompute.
	a := Summary{
		Transmitted: 100, Malformed: 70, Received: 80, Rejections: 20,
		Span:   2 * time.Second,
		States: []string{"CLOSED", "OPEN"}, StatesCovered: 2,
	}.Merge(Summary{})
	got := a.Merge(Summary{})
	if !reflect.DeepEqual(got, a) {
		t.Errorf("a.Merge(zero) = %+v, want %+v", got, a)
	}
	got = Summary{}.Merge(a)
	if !reflect.DeepEqual(got, a) {
		t.Errorf("zero.Merge(a) = %+v, want %+v", got, a)
	}
}

func TestMergeAll(t *testing.T) {
	if got := MergeAll(nil); !reflect.DeepEqual(got, Summary{}) {
		t.Errorf("MergeAll(nil) = %+v, want zero", got)
	}
	sums := []Summary{
		{Transmitted: 10, Span: time.Second},
		{Transmitted: 20, Span: time.Second},
		{Transmitted: 30, Span: 2 * time.Second},
	}
	m := MergeAll(sums)
	if m.Transmitted != 60 || m.Span != 4*time.Second {
		t.Errorf("MergeAll = %+v, want Transmitted 60 over 4s", m)
	}
	if math.Abs(m.PacketsPerSecond-15) > 1e-12 {
		t.Errorf("PacketsPerSecond = %v, want 15", m.PacketsPerSecond)
	}
}

// TestMergeAssociative: splitting one logical experiment into three
// summaries must merge to the same result however the folds associate.
func TestMergeAssociative(t *testing.T) {
	a := Summary{Transmitted: 7, Malformed: 3, Received: 5, Rejections: 1, Span: time.Second,
		States: []string{"CLOSED", "OPEN"}, StatesCovered: 2}
	b := Summary{Transmitted: 11, Malformed: 4, Received: 9, Rejections: 6, Span: 3 * time.Second,
		States: []string{"OPEN", "WAIT_CONFIG", "WAIT_CONNECT"}, StatesCovered: 3}
	c := Summary{Transmitted: 13, Malformed: 8, Received: 2, Rejections: 0, Span: 2 * time.Second,
		States: []string{"CLOSED", "WAIT_MOVE"}, StatesCovered: 2}
	left := a.Merge(b).Merge(c)
	right := a.Merge(b.Merge(c))
	if !reflect.DeepEqual(left, right) {
		t.Errorf("merge not associative:\n left = %+v\nright = %+v", left, right)
	}
}
