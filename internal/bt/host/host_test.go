package host_test

import (
	"errors"
	"testing"

	"l2fuzz/internal/bt/device"
	"l2fuzz/internal/bt/host"
	"l2fuzz/internal/bt/l2cap"
	"l2fuzz/internal/bt/radio"
)

func newRig(t *testing.T, profile device.Profile) (*radio.Medium, *device.Device, *host.Client) {
	t.Helper()
	m := radio.NewMedium(nil, radio.DefaultTiming())
	d, err := device.New(m, device.Config{
		Addr:    radio.MustBDAddr("F8:8F:CA:00:00:09"),
		Name:    "host-test-target",
		Profile: profile,
		Ports: []device.ServicePort{
			{PSM: l2cap.PSMAVDTP, Name: "AVDTP"},
			{PSM: l2cap.PSMRFCOMM, Name: "RFCOMM", RequiresPairing: true},
		},
		DisableVulns: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := host.NewClient(m, radio.MustBDAddr("00:1B:DC:00:00:02"), "host-test")
	if err != nil {
		t.Fatal(err)
	}
	return m, d, cl
}

func TestClientConnectIdempotent(t *testing.T) {
	_, d, cl := newRig(t, device.BlueDroidProfile("5.0", "fp"))
	if err := cl.Connect(d.Address()); err != nil {
		t.Fatal(err)
	}
	if err := cl.Connect(d.Address()); err != nil {
		t.Fatalf("second Connect() error = %v, want idempotent nil", err)
	}
	if !cl.Connected(d.Address()) {
		t.Fatal("Connected() = false after Connect")
	}
}

func TestSendWithoutConnect(t *testing.T) {
	_, d, cl := newRig(t, device.BlueDroidProfile("5.0", "fp"))
	err := cl.Send(d.Address(), l2cap.SignalPacket(1, &l2cap.EchoReq{}, nil))
	if !errors.Is(err, host.ErrNotConnected) {
		t.Fatalf("Send() error = %v, want ErrNotConnected", err)
	}
}

func TestPingAgainstSilentAndDeadTargets(t *testing.T) {
	m, d, cl := newRig(t, device.BlueDroidProfile("5.0", "fp"))
	if err := cl.Connect(d.Address()); err != nil {
		t.Fatal(err)
	}
	if err := cl.Ping(d.Address()); err != nil {
		t.Fatalf("healthy ping error = %v", err)
	}
	// Vanish the device entirely: ping must fail, not hang.
	m.Unregister(d.Address())
	if err := cl.Ping(d.Address()); err == nil {
		t.Fatal("ping succeeded against a vanished device")
	}
}

func TestNextIDNeverZero(t *testing.T) {
	_, _, cl := newRig(t, device.IOSProfile("4.2"))
	for i := 0; i < 600; i++ {
		if cl.NextID() == 0 {
			t.Fatal("NextID() returned the illegal zero identifier")
		}
	}
}

func TestNextSourceCIDAlwaysDynamic(t *testing.T) {
	_, _, cl := newRig(t, device.IOSProfile("4.2"))
	for i := 0; i < 100; i++ {
		if cid := cl.NextSourceCID(); !cid.IsDynamic() {
			t.Fatalf("NextSourceCID() = %v, want dynamic", cid)
		}
	}
}

func TestTryOpenChannelVerdicts(t *testing.T) {
	_, d, cl := newRig(t, device.BlueDroidProfile("5.0", "fp"))
	if err := cl.Connect(d.Address()); err != nil {
		t.Fatal(err)
	}
	res, err := cl.TryOpenChannel(d.Address(), l2cap.PSMRFCOMM)
	if err != nil {
		t.Fatal(err)
	}
	if res.Result != l2cap.ConnResultSecurityBlock {
		t.Fatalf("pairing-gated port verdict = %v", res.Result)
	}
	res, err = cl.TryOpenChannel(d.Address(), l2cap.PSMAVDTP)
	if err != nil || res.Result != l2cap.ConnResultSuccess {
		t.Fatalf("open port verdict = (%+v, %v)", res, err)
	}
	if !res.RemoteCID.IsDynamic() {
		t.Errorf("allocated DCID %v not dynamic", res.RemoteCID)
	}
}

func TestOpenAndCloseChannelOnEagerAndStrictStacks(t *testing.T) {
	for name, p := range map[string]device.Profile{
		"eager (BlueDroid)": device.BlueDroidProfile("5.0", "fp"),
		"strict (iOS)":      device.IOSProfile("4.2"),
	} {
		t.Run(name, func(t *testing.T) {
			_, d, cl := newRig(t, p)
			if err := cl.Connect(d.Address()); err != nil {
				t.Fatal(err)
			}
			local, remote, err := cl.OpenChannel(d.Address(), l2cap.PSMAVDTP)
			if err != nil {
				t.Fatalf("OpenChannel() error = %v", err)
			}
			if err := cl.CloseChannel(d.Address(), local, remote); err != nil {
				t.Fatalf("CloseChannel() error = %v", err)
			}
		})
	}
}

func TestOpenChannelRefusedPort(t *testing.T) {
	_, d, cl := newRig(t, device.IOSProfile("4.2"))
	if err := cl.Connect(d.Address()); err != nil {
		t.Fatal(err)
	}
	_, _, err := cl.OpenChannel(d.Address(), 0x0F01)
	if !errors.Is(err, host.ErrChannelRefused) {
		t.Fatalf("OpenChannel(unknown PSM) error = %v, want ErrChannelRefused", err)
	}
}

func TestQuerySDPAcrossProfiles(t *testing.T) {
	for name, p := range map[string]device.Profile{
		"BlueDroid": device.BlueDroidProfile("5.0", "fp"),
		"BlueZ":     device.BlueZProfile("5.0", "fp"),
		"Windows":   device.WindowsProfile("5.0"),
	} {
		t.Run(name, func(t *testing.T) {
			_, d, cl := newRig(t, p)
			if err := cl.Connect(d.Address()); err != nil {
				t.Fatal(err)
			}
			services, err := cl.QuerySDP(d.Address())
			if err != nil {
				t.Fatalf("QuerySDP() error = %v", err)
			}
			if len(services) != 3 { // SDP + AVDTP + RFCOMM
				t.Fatalf("got %d services, want 3", len(services))
			}
		})
	}
}

func TestDrainCommandsSkipsDataPlane(t *testing.T) {
	_, d, cl := newRig(t, device.BlueDroidProfile("5.0", "fp"))
	if err := cl.Connect(d.Address()); err != nil {
		t.Fatal(err)
	}
	// An SDP transaction produces data-plane packets that DrainCommands
	// must not misparse as signaling.
	if _, err := cl.QuerySDP(d.Address()); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.SendCommand(d.Address(), &l2cap.EchoReq{}, nil); err != nil {
		t.Fatal(err)
	}
	cmds := cl.DrainCommands()
	if len(cmds) != 1 {
		t.Fatalf("DrainCommands() = %d commands, want exactly the echo response", len(cmds))
	}
	if _, ok := cmds[0].(*l2cap.EchoRsp); !ok {
		t.Fatalf("got %T, want *EchoRsp", cmds[0])
	}
}

func TestClockAccessor(t *testing.T) {
	m, _, cl := newRig(t, device.IOSProfile("4.2"))
	if cl.Clock() != m.Clock() {
		t.Fatal("client clock is not the medium clock")
	}
}
