package host_test

// Aliasing/reuse regression tests for the pooled packet path: anything a
// component retains past its ownership window must be a copy, so
// mutating released or reused buffers must never reach it. These tests
// deliberately hammer the reuse paths (scratch marshal buffers, pooled
// inbox payloads) after taking snapshots, and fail if a snapshot moves.

import (
	"bytes"
	"testing"

	"l2fuzz/internal/bt/host"
	"l2fuzz/internal/bt/l2cap"
	"l2fuzz/internal/bt/pool"
)

// TestRecordedWireSurvivesScratchReuse pins the recorder's copy
// semantics: the trace stores wire bytes that outlive the client's
// reused marshal scratch, so later sends — which overwrite that scratch
// — must not reach recorded ops.
func TestRecordedWireSurvivesScratchReuse(t *testing.T) {
	cl, rec, target := recordRig(t, 0)
	if err := cl.Connect(target); err != nil {
		t.Fatal(err)
	}
	first := l2cap.SignalPacket(1, &l2cap.EchoReq{Data: []byte("first-packet")}, []byte{0xAA, 0xBB})
	if err := cl.Send(target, first); err != nil {
		t.Fatal(err)
	}
	ops, _ := rec.Snapshot()
	if len(ops) != 2 || ops[1].Kind != host.TraceSend {
		t.Fatalf("unexpected ops %v", ops)
	}
	pinned := append([]byte(nil), ops[1].Data...)

	// Hammer the scratch-reusing send path with different contents.
	for i := 0; i < 64; i++ {
		pkt := l2cap.SignalPacket(uint8(i%250+2), &l2cap.EchoReq{Data: bytes.Repeat([]byte{byte(i)}, 32)}, nil)
		if err := cl.Send(target, pkt); err != nil {
			t.Fatal(err)
		}
		cl.Drain()
	}

	ops2, _ := rec.Snapshot()
	if !bytes.Equal(ops2[1].Data, pinned) {
		t.Fatalf("recorded wire bytes changed under scratch reuse:\n got %x\nwant %x", ops2[1].Data, pinned)
	}
	if !bytes.Equal(pinned, first.Marshal()) {
		t.Fatalf("recorded wire bytes differ from the packet's marshal")
	}
}

// TestDrainBatchStableUntilNextDrain pins the Drain ownership window: a
// drained batch stays intact while new responses arrive, and is only
// recycled by the next Drain.
func TestDrainBatchStableUntilNextDrain(t *testing.T) {
	cl, _, target := recordRig(t, 0)
	if err := cl.Connect(target); err != nil {
		t.Fatal(err)
	}
	// Round 1: provoke an echo response and drain it.
	if _, err := cl.SendCommand(target, &l2cap.EchoReq{Data: []byte("round-one")}, nil); err != nil {
		t.Fatal(err)
	}
	batch := cl.Drain()
	if len(batch) == 0 {
		t.Fatal("no response drained")
	}
	snap := make([][]byte, len(batch))
	for i, pkt := range batch {
		snap[i] = append([]byte(nil), pkt.Payload...)
	}

	// New traffic arrives while the batch is still borrowed: it must not
	// touch the batch (deliveries go to the other inbox buffer).
	for i := 0; i < 32; i++ {
		if _, err := cl.SendCommand(target, &l2cap.EchoReq{Data: bytes.Repeat([]byte{0xEE}, 48)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i, pkt := range batch {
		if !bytes.Equal(pkt.Payload, snap[i]) {
			t.Fatalf("drained packet %d changed while borrowed", i)
		}
	}

	// The next Drain ends the window: released payloads go back to the
	// pool, and a subsequent borrower may scribble over them. The
	// explicit copies must be unaffected.
	cl.Drain()
	scribble := pool.Get(len(snap[0]))
	for i := range scribble {
		scribble[i] = 0x5A
	}
	for i := range snap {
		if len(snap[i]) > 0 && bytes.Equal(snap[i], bytes.Repeat([]byte{0x5A}, len(snap[i]))) {
			t.Fatalf("pinned copy %d aliases a pooled buffer", i)
		}
	}
	pool.Put(scribble)
}

// TestReleasedBufferMutationDoesNotReachRetainedFrames is the direct
// "mutate a released buffer" regression: release a pooled buffer, have
// the next borrower scribble it, and assert a frame retained (copied)
// before the release is untouched.
func TestReleasedBufferMutationDoesNotReachRetainedFrames(t *testing.T) {
	wire := l2cap.SignalPacket(7, &l2cap.EchoReq{Data: []byte("retained")}, nil).Marshal()

	borrowed := pool.Copy(wire)
	retained := append([]byte(nil), borrowed...) // the "must copy" rule
	pool.Put(borrowed)

	next := pool.Get(len(wire)) // recycles the released buffer
	for i := range next {
		next[i] = 0xFF
	}
	if !bytes.Equal(retained, wire) {
		t.Fatalf("retained copy changed after its source buffer was released and reused")
	}
	pool.Put(next)
}
