// Package host provides the master-side L2CAP endpoint the fuzzers run
// on: the equivalent of the paper's Ubuntu test machine with its
// Billionton Class-1 dongle. It can page targets, exchange signaling
// commands, open and configure data channels, query SDP, and run the
// L2CAP echo ("ping") liveness probe the vulnerability-detecting phase
// uses.
//
// The simulation is synchronous: a peer's responses arrive during the
// Send call that provoked them. Callers therefore interact in rounds —
// send, then Drain the inbox. "No packets drained" after a probe is the
// simulation's equivalent of a response timeout.
package host

import (
	"errors"
	"fmt"

	"l2fuzz/internal/bt/hci"
	"l2fuzz/internal/bt/l2cap"
	"l2fuzz/internal/bt/pool"
	"l2fuzz/internal/bt/radio"
	"l2fuzz/internal/bt/sdp"
)

// Client errors.
var (
	// ErrNotConnected indicates no live link to the peer.
	ErrNotConnected = errors.New("host: not connected to peer")
	// ErrNoResponse indicates the peer stayed silent where a response was
	// required: the simulation's timeout.
	ErrNoResponse = errors.New("host: no response from peer (timeout)")
	// ErrChannelRefused indicates the peer refused a channel open.
	ErrChannelRefused = errors.New("host: channel refused")
)

// Client is the tester-side Bluetooth endpoint.
type Client struct {
	ctrl   *hci.Controller
	medium *radio.Medium

	handles  map[radio.BDAddr]hci.ConnHandle
	nextID   uint8
	nextCID  l2cap.CID
	recorder *TraceRecorder

	// inbox accumulates delivered packets (payloads are pool borrows);
	// drained holds the batch handed out by the last Drain, whose
	// payloads are released back to the pool at the next Drain. The two
	// slices double-buffer so a caller can iterate a drained batch while
	// new responses land.
	inbox   []l2cap.Packet
	drained []l2cap.Packet

	// Reused scratch state for the steady-state send/decode path.
	txWire    []byte          // wire bytes of the frame being sent
	sigWire   []byte          // signaling payload built by SendCommand
	sigFrames []l2cap.Frame   // AppendSignals scratch in DrainCommands
	cmds      []l2cap.Command // DrainCommands result scratch
	dec       l2cap.Decoder
	echo      l2cap.EchoReq // Ping's reused request
}

// pingData is the constant Echo Request payload Ping sends ("ping").
var pingData = []byte{0x70, 0x69, 0x6E, 0x67}

// NewClient registers a tester endpoint on the medium.
func NewClient(m *radio.Medium, addr radio.BDAddr, name string) (*Client, error) {
	c := &Client{
		medium:  m,
		handles: make(map[radio.BDAddr]hci.ConnHandle),
		nextID:  1,
		nextCID: l2cap.CIDDynamicFirst,
	}
	ctrl, err := hci.NewController(m, hci.Config{
		Addr: addr, Name: name, Discoverable: true, Connectable: true,
	})
	if err != nil {
		return nil, fmt.Errorf("host client: %w", err)
	}
	ctrl.SetReceiver(func(_ hci.ConnHandle, _ radio.BDAddr, frame []byte) {
		// The frame is a borrow from the controller; the inbox retains
		// the payload past this callback, so copy it into a pooled
		// buffer (released by the Drain after next).
		pkt, err := l2cap.ParsePacket(frame)
		if err != nil {
			return
		}
		pkt.Payload = pool.Copy(pkt.Payload)
		c.inbox = append(c.inbox, pkt)
	})
	c.ctrl = ctrl
	return c, nil
}

// Address returns the client's BD_ADDR.
func (c *Client) Address() radio.BDAddr { return c.ctrl.Address() }

// Clock exposes the simulated clock (for pacing and timestamps).
func (c *Client) Clock() *radio.Clock { return c.medium.Clock() }

// Inquiry sweeps for discoverable devices.
func (c *Client) Inquiry() []radio.InquiryResult { return c.ctrl.Inquiry() }

// Connect pages the peer if no link exists yet.
func (c *Client) Connect(peer radio.BDAddr) error {
	if _, ok := c.handles[peer]; ok {
		return nil
	}
	h, err := c.ctrl.Connect(peer)
	if err != nil {
		return fmt.Errorf("connect %v: %w", peer, err)
	}
	c.handles[peer] = h
	if c.recorder != nil {
		// Only a successful page changes peer-visible state; failed
		// attempts leave nothing for a replay to redo.
		c.recorder.record(TraceOp{Kind: TraceConnect})
	}
	return nil
}

// Connected reports whether a live link to peer exists.
func (c *Client) Connected(peer radio.BDAddr) bool {
	h, ok := c.handles[peer]
	return ok && c.ctrl.Connected(h)
}

// Disconnect drops the baseband link to peer and clears all local state
// for it, so a later Connect performs a genuine fresh page.
func (c *Client) Disconnect(peer radio.BDAddr) {
	if c.recorder != nil {
		c.recorder.record(TraceOp{Kind: TraceDisconnect})
	}
	delete(c.handles, peer)
	if h, ok := c.ctrl.HandleFor(peer); ok {
		_ = c.ctrl.Disconnect(h)
	}
}

// NextID returns a fresh non-zero signaling identifier.
func (c *Client) NextID() uint8 {
	id := c.nextID
	c.nextID++
	if c.nextID == 0 {
		c.nextID = 1
	}
	return id
}

// NextSourceCID allocates a fresh requester-side channel endpoint.
func (c *Client) NextSourceCID() l2cap.CID {
	cid := c.nextCID
	c.nextCID++
	if c.nextCID < l2cap.CIDDynamicFirst {
		c.nextCID = l2cap.CIDDynamicFirst
	}
	return cid
}

// Send transmits one raw L2CAP packet to peer. A dead link is reported
// as ErrNotConnected (wrapped), which the vulnerability detector maps to
// its connection-error classes. The packet is marshaled into a reused
// scratch buffer, so steady-state sends do not allocate.
func (c *Client) Send(peer radio.BDAddr, pkt l2cap.Packet) error {
	// The handle check also lives in SendRaw; repeating it here skips
	// the marshal on link-less sends, which fuzzers hit in bursts while
	// hammering an already-dead target between liveness probes.
	if _, ok := c.handles[peer]; !ok {
		return fmt.Errorf("%w: %v", ErrNotConnected, peer)
	}
	c.txWire = pkt.AppendTo(c.txWire[:0])
	return c.SendRaw(peer, c.txWire)
}

// SendCommand wraps a signaling command (with optional garbage tail) and
// sends it, returning the identifier used. The signaling frame is built
// in a reused scratch buffer.
func (c *Client) SendCommand(peer radio.BDAddr, cmd l2cap.Command, tail []byte) (uint8, error) {
	id := c.NextID()
	payload, declared := l2cap.AppendSignalFrame(c.sigWire[:0], id, cmd, tail)
	c.sigWire = payload
	return id, c.Send(peer, l2cap.Packet{
		Length:    uint16(min(declared, l2cap.MaxPayload)),
		ChannelID: l2cap.CIDSignaling,
		Payload:   payload,
	})
}

// Drain returns and clears the inbox. The returned packets (and their
// payloads) are a borrow, valid only until the next Drain: their pooled
// payload buffers are recycled then. Callers that retain a payload — the
// corpus, cross-round state — must copy it.
func (c *Client) Drain() []l2cap.Packet {
	for i := range c.drained {
		pool.Put(c.drained[i].Payload)
	}
	out := c.inbox
	c.inbox = c.drained[:0]
	c.drained = out
	return out
}

// DrainCommands decodes the signaling commands out of the drained inbox,
// discarding undecodable frames. The returned slice and the commands in
// it are borrows, valid until the next Drain or DrainCommands: commands
// come from a per-code decoder cache, and their variable-length members
// alias the drained payloads.
func (c *Client) DrainCommands() []l2cap.Command {
	out := c.cmds[:0]
	for _, pkt := range c.Drain() {
		if !pkt.IsSignaling() {
			continue
		}
		frames, err := l2cap.AppendSignals(c.sigFrames[:0], pkt.Payload)
		if err != nil {
			c.sigFrames = frames[:0]
			continue
		}
		c.sigFrames = frames
		for _, f := range frames {
			if cmd, err := c.dec.Decode(f); err == nil {
				out = append(out, cmd)
			}
		}
	}
	c.cmds = out
	return out
}

// Ping sends an L2CAP Echo Request and reports whether the peer answered:
// the liveness probe of the vulnerability-detecting phase.
func (c *Client) Ping(peer radio.BDAddr) error {
	c.Drain()
	c.echo.Data = pingData
	if _, err := c.SendCommand(peer, &c.echo, nil); err != nil {
		return err
	}
	for _, cmd := range c.DrainCommands() {
		if _, ok := cmd.(*l2cap.EchoRsp); ok {
			return nil
		}
	}
	return ErrNoResponse
}

// ChannelResult is the outcome of a channel-open attempt.
type ChannelResult struct {
	// Result is the Connection Response result code.
	Result l2cap.ConnResult
	// LocalCID and RemoteCID are the endpoints when Result is success.
	LocalCID, RemoteCID l2cap.CID
}

// TryOpenChannel sends one Connection Request for psm and returns the
// peer's verdict without configuring the channel: the port-probe of the
// target-scanning phase.
func (c *Client) TryOpenChannel(peer radio.BDAddr, psm l2cap.PSM) (ChannelResult, error) {
	scid := c.NextSourceCID()
	c.Drain()
	if _, err := c.SendCommand(peer, &l2cap.ConnectionReq{PSM: psm, SCID: scid}, nil); err != nil {
		return ChannelResult{}, err
	}
	for _, cmd := range c.DrainCommands() {
		if rsp, ok := cmd.(*l2cap.ConnectionRsp); ok && rsp.SCID == scid {
			return ChannelResult{Result: rsp.Result, LocalCID: scid, RemoteCID: rsp.DCID}, nil
		}
	}
	return ChannelResult{}, ErrNoResponse
}

// OpenChannel opens and fully configures a channel to psm, answering the
// peer's own configuration requests (eager stacks send theirs immediately
// after accepting; strict stacks only after ours), and returns the
// endpoint pair.
func (c *Client) OpenChannel(peer radio.BDAddr, psm l2cap.PSM) (local, remote l2cap.CID, err error) {
	scid := c.NextSourceCID()
	c.Drain()
	if _, err := c.SendCommand(peer, &l2cap.ConnectionReq{PSM: psm, SCID: scid}, nil); err != nil {
		return 0, 0, err
	}
	var (
		dcid        l2cap.CID
		accepted    bool
		peerConfigs int
	)
	collect := func() {
		for _, cmd := range c.DrainCommands() {
			switch rsp := cmd.(type) {
			case *l2cap.ConnectionRsp:
				if rsp.SCID == scid {
					if rsp.Result != l2cap.ConnResultSuccess {
						err = fmt.Errorf("%w: %v", ErrChannelRefused, rsp.Result)
						return
					}
					dcid = rsp.DCID
					accepted = true
				}
			case *l2cap.ConfigurationReq:
				peerConfigs++
			}
		}
	}
	collect()
	if err != nil {
		return 0, 0, err
	}
	if !accepted {
		return 0, 0, ErrNoResponse
	}
	// Propose our configuration; the response (and, for strict stacks,
	// the peer's reactive request) arrives in the same round.
	if _, err2 := c.SendCommand(peer, &l2cap.ConfigurationReq{
		DCID:    dcid,
		Options: []l2cap.ConfigOption{l2cap.MTUOption(l2cap.DefaultSignalingMTU)},
	}, nil); err2 != nil {
		return 0, 0, err2
	}
	collect()
	if err != nil {
		return 0, 0, err
	}
	// Answer every configuration request the peer produced so it reaches
	// OPEN.
	for i := 0; i < peerConfigs; i++ {
		if _, err2 := c.SendCommand(peer, &l2cap.ConfigurationRsp{
			SCID: dcid, Result: l2cap.ConfigSuccess,
		}, nil); err2 != nil {
			return 0, 0, err2
		}
	}
	c.Drain()
	return scid, dcid, nil
}

// CloseChannel tears down a configured channel.
func (c *Client) CloseChannel(peer radio.BDAddr, local, remote l2cap.CID) error {
	c.Drain()
	if _, err := c.SendCommand(peer, &l2cap.DisconnectionReq{DCID: remote, SCID: local}, nil); err != nil {
		return err
	}
	for _, cmd := range c.DrainCommands() {
		if _, ok := cmd.(*l2cap.DisconnectionRsp); ok {
			return nil
		}
	}
	return ErrNoResponse
}

// QuerySDP opens the SDP channel, runs one ServiceSearchAttribute
// transaction, closes the channel, and returns the published services.
func (c *Client) QuerySDP(peer radio.BDAddr) ([]sdp.ServiceInfo, error) {
	local, remote, err := c.OpenChannel(peer, l2cap.PSMSDP)
	if err != nil {
		return nil, fmt.Errorf("open SDP channel: %w", err)
	}
	defer func() { _ = c.CloseChannel(peer, local, remote) }()

	req := sdp.NewServiceSearchAttributeReq(0x0001)
	c.Drain()
	if err := c.Send(peer, l2cap.NewPacket(remote, req.Marshal())); err != nil {
		return nil, err
	}
	for _, pkt := range c.Drain() {
		if pkt.ChannelID != local {
			continue
		}
		pdu, err := sdp.UnmarshalPDU(pkt.Payload)
		if err != nil {
			continue
		}
		services, err := sdp.ParseAttributeResponse(pdu)
		if err != nil {
			return nil, fmt.Errorf("parse SDP response: %w", err)
		}
		return services, nil
	}
	return nil, ErrNoResponse
}
