package host_test

import (
	"testing"

	"l2fuzz/internal/bt/device"
	"l2fuzz/internal/bt/host"
	"l2fuzz/internal/bt/l2cap"
	"l2fuzz/internal/bt/radio"
)

// recordRig builds a medium with one recorded client and one echo-happy
// target device.
func recordRig(t *testing.T, limit int) (*host.Client, *host.TraceRecorder, radio.BDAddr) {
	t.Helper()
	m := radio.NewMedium(nil, radio.DefaultTiming())
	d, err := device.New(m, device.Config{
		Addr:    radio.MustBDAddr("AA:00:00:00:00:01"),
		Name:    "target",
		Profile: device.BlueZProfile("5.0", "fp"),
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := host.NewClient(m, radio.MustBDAddr("AA:00:00:00:00:02"), "tester")
	if err != nil {
		t.Fatal(err)
	}
	rec := host.NewTraceRecorder(limit)
	cl.SetRecorder(rec)
	return cl, rec, d.Address()
}

// TestRecorderCapturesClientOps pins what the recorder sees: successful
// pages, transmitted frames (their exact wire bytes) and link drops, in
// order — the operation alphabet replay is built on.
func TestRecorderCapturesClientOps(t *testing.T) {
	cl, rec, target := recordRig(t, 0)
	if err := cl.Connect(target); err != nil {
		t.Fatal(err)
	}
	pkt := l2cap.SignalPacket(1, &l2cap.EchoReq{Data: []byte("hi")}, []byte{0xAA})
	if err := cl.Send(target, pkt); err != nil {
		t.Fatal(err)
	}
	cl.Disconnect(target)

	ops, truncated := rec.Snapshot()
	if truncated {
		t.Fatal("tiny trace reported truncated")
	}
	kinds := make([]host.TraceOpKind, len(ops))
	for i, op := range ops {
		kinds[i] = op.Kind
	}
	want := []host.TraceOpKind{host.TraceConnect, host.TraceSend, host.TraceDisconnect}
	if len(kinds) != len(want) {
		t.Fatalf("recorded ops %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("recorded ops %v, want %v", kinds, want)
		}
	}
	if string(ops[1].Data) != string(pkt.Marshal()) {
		t.Errorf("recorded wire bytes differ from the marshaled packet")
	}

	// A replayed snapshot is a copy: later ops must not reach it.
	_ = cl.Connect(target)
	if rec.Len() != 4 {
		t.Fatalf("recorder has %d ops, want 4", rec.Len())
	}
	if len(ops) != 3 {
		t.Errorf("snapshot grew with the recorder")
	}

	rec.Reset()
	if rec.Len() != 0 || rec.Truncated() {
		t.Errorf("Reset left ops=%d truncated=%v", rec.Len(), rec.Truncated())
	}
}

// TestRecorderTruncation: outgrowing the limit keeps the head (a
// headless trace could never replay) and marks the trace truncated.
func TestRecorderTruncation(t *testing.T) {
	cl, rec, target := recordRig(t, 2)
	if err := cl.Connect(target); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		_ = cl.Send(target, l2cap.SignalPacket(uint8(i+1), &l2cap.EchoReq{}, nil))
	}
	ops, truncated := rec.Snapshot()
	if !truncated || len(ops) != 2 {
		t.Fatalf("got %d ops truncated=%v, want the first 2 ops marked truncated", len(ops), truncated)
	}
	if ops[0].Kind != host.TraceConnect {
		t.Errorf("truncation dropped the trace head")
	}
	rec.Reset()
	if rec.Truncated() {
		t.Error("Reset did not clear truncation")
	}
}

// TestSendRawBytesUntouched: SendRaw must put the given bytes on the
// air verbatim — the device answers the echo exactly as if the packet
// had gone through Send.
func TestSendRawBytesUntouched(t *testing.T) {
	cl, _, target := recordRig(t, 0)
	if err := cl.Connect(target); err != nil {
		t.Fatal(err)
	}
	wire := l2cap.SignalPacket(7, &l2cap.EchoReq{Data: []byte("raw")}, nil).Marshal()
	if err := cl.SendRaw(target, wire); err != nil {
		t.Fatal(err)
	}
	for _, cmd := range cl.DrainCommands() {
		if rsp, ok := cmd.(*l2cap.EchoRsp); ok && string(rsp.Data) == "raw" {
			return
		}
	}
	t.Fatal("no echo response to a raw-sent echo request")
}
