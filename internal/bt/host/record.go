package host

import (
	"fmt"

	"l2fuzz/internal/bt/radio"
)

// Trace recording: an optional tap on the client that captures every
// operation with an over-the-air effect — successful pages, link drops
// and transmitted L2CAP frames — in order. The simulated targets are
// deterministic functions of that operation sequence, so a recorded
// trace replayed from a fresh rig drives the target through the same
// state trajectory, which is what makes findings reproducible artefacts
// (the corpus subsystem's repro traces).

// TraceOpKind discriminates recorded client operations.
type TraceOpKind string

// The recorded operation kinds.
const (
	// TraceConnect is a successful baseband page to the peer.
	TraceConnect TraceOpKind = "connect"
	// TraceDisconnect is a baseband link drop (including the implicit
	// drop a failed transmit performs).
	TraceDisconnect TraceOpKind = "disconnect"
	// TraceSend is one transmitted L2CAP frame; Data holds the wire
	// bytes.
	TraceSend TraceOpKind = "send"
)

// TraceOp is one recorded client operation.
type TraceOp struct {
	// Kind says what the client did.
	Kind TraceOpKind `json:"op"`
	// Data is the L2CAP wire frame for TraceSend ops, nil otherwise.
	Data []byte `json:"data,omitempty"`
}

// DefaultTraceLimit bounds a recorder whose constructor was given no
// explicit limit. A trace that outgrows its limit is marked truncated
// and stops growing: a partial trace cannot replay faithfully, so
// recording more would only waste memory.
const DefaultTraceLimit = 1 << 20

// TraceRecorder accumulates the client's operation sequence. Attach one
// with Client.SetRecorder; snapshot it when a finding lands.
type TraceRecorder struct {
	limit     int
	ops       []TraceOp
	truncated bool
}

// NewTraceRecorder builds a recorder holding at most limit operations
// (limit <= 0 means DefaultTraceLimit).
func NewTraceRecorder(limit int) *TraceRecorder {
	if limit <= 0 {
		limit = DefaultTraceLimit
	}
	return &TraceRecorder{limit: limit}
}

// record appends one operation, or marks the trace truncated once the
// limit is reached.
func (r *TraceRecorder) record(op TraceOp) {
	if len(r.ops) >= r.limit {
		r.truncated = true
		return
	}
	r.ops = append(r.ops, op)
}

// Len returns the number of recorded operations.
func (r *TraceRecorder) Len() int { return len(r.ops) }

// EnsureLimit raises the recorder's cap to at least n operations. A
// runner that discovers its real traffic budget only after resolving
// its configuration (e.g. a farm variant hook raising the packet cap)
// calls this so the trace is not truncated at an estimate made before
// the hooks ran. The cap can only grow: shrinking it could retroactively
// invalidate an already-recorded prefix.
func (r *TraceRecorder) EnsureLimit(n int) {
	if n > r.limit {
		r.limit = n
	}
}

// Truncated reports whether the trace outgrew the recorder's limit.
func (r *TraceRecorder) Truncated() bool { return r.truncated }

// Snapshot returns a copy of the operations recorded so far and whether
// the trace is truncated. The copy is the caller's to keep: later
// recording does not reach it.
func (r *TraceRecorder) Snapshot() ([]TraceOp, bool) {
	return append([]TraceOp(nil), r.ops...), r.truncated
}

// Reset discards everything recorded so far and clears the truncation
// mark: the start of a new trace epoch. Call it whenever the target's
// state is externally reset (e.g. the campaign runner's automatic
// device reset), so traces never span a state change no packet caused.
func (r *TraceRecorder) Reset() {
	r.ops = r.ops[:0]
	r.truncated = false
}

// SetRecorder attaches a trace recorder to the client (nil detaches).
// Recording costs one slice append plus one wire-buffer copy per send:
// the client marshals into a reused scratch buffer, so the recorder —
// which keeps its ops indefinitely — must take its own copy.
func (c *Client) SetRecorder(r *TraceRecorder) { c.recorder = r }

// Recorder returns the attached trace recorder, or nil.
func (c *Client) Recorder() *TraceRecorder { return c.recorder }

// SendRaw transmits pre-marshaled L2CAP wire bytes to peer: the replay
// primitive. A recorded TraceSend op's Data goes back on the air
// exactly as captured, byte for byte, with no re-encode step that could
// normalise away the malformations the trace exists to reproduce.
func (c *Client) SendRaw(peer radio.BDAddr, wire []byte) error {
	h, ok := c.handles[peer]
	if !ok {
		return fmt.Errorf("%w: %v", ErrNotConnected, peer)
	}
	if c.recorder != nil {
		// wire may be (and on the Send path is) a borrow of the client's
		// scratch buffer; the trace outlives it, so copy.
		c.recorder.record(TraceOp{Kind: TraceSend, Data: append([]byte(nil), wire...)})
	}
	if err := c.ctrl.SendL2CAP(h, wire); err != nil {
		c.Disconnect(peer)
		return fmt.Errorf("%w: %v (%v)", ErrNotConnected, peer, err)
	}
	return nil
}
