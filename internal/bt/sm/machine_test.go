package sm

import (
	"testing"
	"testing/quick"
)

func TestHappyPathConnectConfigureOpen(t *testing.T) {
	m := NewMachine()
	steps := []struct {
		event      Event
		wantAction Action
		wantState  State
	}{
		{EvRecvConnectReq, ActDeliverToUpper, StateWaitConnect},
		{EvLocalAccept, ActSendConnectRsp, StateWaitConfig},
		{EvRecvConfigReq, ActSendConfigRsp, StateWaitSendConfig},
		{EvLocalSendConfigReq, ActSendConfigReq, StateWaitConfigRsp},
		{EvRecvConfigRsp, ActNone, StateOpen},
	}
	for i, st := range steps {
		tr, ok := m.Apply(st.event)
		if !ok {
			t.Fatalf("step %d: Apply(%v) rejected in %v", i, st.event, m.State())
		}
		if tr.Action != st.wantAction {
			t.Errorf("step %d: action = %v, want %v", i, tr.Action, st.wantAction)
		}
		if m.State() != st.wantState {
			t.Errorf("step %d: state = %v, want %v", i, m.State(), st.wantState)
		}
	}
}

func TestTableIIWaitConnectRejectsInvalidEvents(t *testing.T) {
	// Paper Table II: in WAIT_CONNECT every event except Connect Req (and
	// the internal accept) is rejected.
	m := NewMachine()
	if _, ok := m.Apply(EvRecvConnectReq); !ok {
		t.Fatal("ConnectReq must be valid in CLOSED")
	}
	invalid := []Event{
		EvRecvConnectRsp, EvRecvConfigReq, EvRecvConfigRsp,
		EvRecvDisconnectRsp, EvRecvCreateReq, EvRecvCreateRsp,
		EvRecvMoveReq, EvRecvMoveRsp, EvRecvMoveConfirmReq,
		EvRecvMoveConfirmRsp,
	}
	for _, e := range invalid {
		if _, ok := m.Apply(e); ok {
			t.Errorf("event %v accepted in WAIT_CONNECT, want reject", e)
		}
		if m.State() != StateWaitConnect {
			t.Fatalf("state moved to %v after invalid event", m.State())
		}
	}
	// The valid completion still works afterwards.
	if tr, ok := m.Apply(EvLocalAccept); !ok || tr.Next != StateWaitConfig {
		t.Fatalf("Apply(LocalAccept) = (%+v, %v), want WAIT_CONFIG", tr, ok)
	}
}

func TestLockstepConfigurationPath(t *testing.T) {
	m := NewMachine()
	mustApply(t, m, EvRecvConnectReq)
	mustApply(t, m, EvLocalAccept)

	tr, ok := m.Apply(EvRecvConfigReqEFS)
	if !ok {
		t.Fatal("EFS config request rejected in WAIT_CONFIG")
	}
	if tr.Action != ActSendConfigRspPending {
		t.Errorf("action = %v, want SendConfigRspPending", tr.Action)
	}
	if m.State() != StateWaitIndFinalRsp {
		t.Fatalf("state = %v, want WAIT_IND_FINAL_RSP", m.State())
	}
	mustApply(t, m, EvLocalFinalRsp)
	if m.State() != StateOpen {
		t.Fatalf("state = %v, want OPEN", m.State())
	}
}

func TestMoveChannelPath(t *testing.T) {
	m := NewMachine()
	driveToOpen(t, m)

	mustApply(t, m, EvRecvMoveReq)
	if m.State() != StateWaitMove {
		t.Fatalf("state = %v, want WAIT_MOVE", m.State())
	}
	tr, ok := m.Apply(EvLocalAccept)
	if !ok || tr.Action != ActSendMoveRsp {
		t.Fatalf("Apply(LocalAccept) = (%+v, %v), want SendMoveRsp", tr, ok)
	}
	if m.State() != StateWaitMoveConfirm {
		t.Fatalf("state = %v, want WAIT_MOVE_CONFIRM", m.State())
	}
	tr, ok = m.Apply(EvRecvMoveConfirmReq)
	if !ok || tr.Action != ActSendMoveConfirmRsp || m.State() != StateOpen {
		t.Fatalf("confirm step = (%+v, %v) in %v, want SendMoveConfirmRsp→OPEN", tr, ok, m.State())
	}
}

func TestDisconnectFromOpen(t *testing.T) {
	m := NewMachine()
	driveToOpen(t, m)
	mustApply(t, m, EvRecvDisconnectReq)
	if m.State() != StateWaitDisconnect {
		t.Fatalf("state = %v, want WAIT_DISCONNECT", m.State())
	}
	tr, ok := m.Apply(EvLocalAccept)
	if !ok || tr.Action != ActSendDisconnectRsp || m.State() != StateClosed {
		t.Fatalf("teardown = (%+v, %v) in %v, want SendDisconnectRsp→CLOSED", tr, ok, m.State())
	}
}

func TestDisconnectDuringConfiguration(t *testing.T) {
	// Every configuration state must honour a disconnect request.
	for _, seq := range [][]Event{
		{EvRecvConnectReq, EvLocalAccept},                                        // WAIT_CONFIG
		{EvRecvConnectReq, EvLocalAccept, EvRecvConfigReq},                       // WAIT_SEND_CONFIG
		{EvRecvConnectReq, EvLocalAccept, EvLocalSendConfigReq},                  // WAIT_CONFIG_REQ_RSP
		{EvRecvConnectReq, EvLocalAccept, EvLocalSendConfigReq, EvRecvConfigRsp}, // WAIT_CONFIG_REQ
		{EvRecvConnectReq, EvLocalAccept, EvRecvConfigReq, EvLocalSendConfigReq}, // WAIT_CONFIG_RSP
		{EvRecvConnectReq, EvLocalAccept, EvRecvConfigReqEFS},                    // WAIT_IND_FINAL_RSP
	} {
		m := NewMachine()
		for _, e := range seq {
			mustApply(t, m, e)
		}
		from := m.State()
		tr, ok := m.Apply(EvRecvDisconnectReq)
		if !ok || tr.Next != StateClosed {
			t.Errorf("disconnect in %v = (%+v, %v), want →CLOSED", from, tr, ok)
		}
	}
}

func TestCreateChannelPath(t *testing.T) {
	m := NewMachine()
	mustApply(t, m, EvRecvCreateReq)
	if m.State() != StateWaitCreate {
		t.Fatalf("state = %v, want WAIT_CREATE", m.State())
	}
	tr, ok := m.Apply(EvLocalAccept)
	if !ok || tr.Action != ActSendCreateRsp || m.State() != StateWaitConfig {
		t.Fatalf("create accept = (%+v, %v) in %v", tr, ok, m.State())
	}
}

func TestInitiatorRoleStates(t *testing.T) {
	m := NewMachine()
	mustApply(t, m, EvLocalOpenReq)
	if m.State() != StateWaitConnectRsp {
		t.Fatalf("state = %v, want WAIT_CONNECT_RSP", m.State())
	}
	mustApply(t, m, EvRecvConnectRsp)
	if m.State() != StateWaitConfig {
		t.Fatalf("state = %v, want WAIT_CONFIG", m.State())
	}
}

func TestAllResponderReachableStatesAreReachable(t *testing.T) {
	// Drive a machine through recipes that visit all 13 responder-
	// reachable states; the visited set must match exactly.
	recipes := [][]Event{
		// CLOSED → connect → config → open → move → confirm.
		{EvRecvConnectReq, EvLocalAccept, EvLocalSendConfigReq, EvRecvConfigRsp,
			EvRecvConfigReq, EvRecvMoveReq, EvLocalAccept, EvRecvMoveConfirmReq},
		// Create-channel entry plus the WAIT_SEND_CONFIG / WAIT_CONFIG_RSP arm.
		{EvRecvCreateReq, EvLocalAccept, EvRecvConfigReq, EvLocalSendConfigReq,
			EvRecvConfigRsp, EvRecvDisconnectReq, EvLocalAccept},
		// Lockstep configuration.
		{EvRecvConnectReq, EvLocalAccept, EvRecvConfigReqEFS, EvLocalFinalRsp},
	}
	visited := make(map[State]bool)
	for _, recipe := range recipes {
		m := NewMachine()
		for i, e := range recipe {
			if _, ok := m.Apply(e); !ok {
				t.Fatalf("recipe step %d (%v) rejected in %v", i, e, m.State())
			}
		}
		for _, s := range m.Visited() {
			visited[s] = true
		}
	}
	for _, s := range ResponderReachableStates() {
		if !visited[s] {
			t.Errorf("responder-reachable state %v not reached by recipes", s)
		}
	}
	for s := range visited {
		if !s.ResponderReachable() {
			t.Errorf("reached %v, which is marked responder-unreachable", s)
		}
	}
}

func TestVisitedDeduplicates(t *testing.T) {
	m := NewMachine()
	driveToOpen(t, m)
	// First re-configuration loop may add the WAIT_SEND_CONFIG /
	// WAIT_CONFIG_RSP arm; a second identical loop must add nothing.
	reconfigure := func() {
		mustApply(t, m, EvRecvConfigReq)
		mustApply(t, m, EvLocalSendConfigReq)
		mustApply(t, m, EvRecvConfigRsp)
	}
	reconfigure()
	n := len(m.Visited())
	reconfigure()
	if got := len(m.Visited()); got != n {
		t.Errorf("Visited() grew from %d to %d on identical revisits", n, got)
	}
}

func TestForceRecordsVisit(t *testing.T) {
	m := NewMachine()
	m.Force(StateOpen)
	if m.State() != StateOpen {
		t.Fatalf("state = %v, want OPEN", m.State())
	}
	found := false
	for _, s := range m.Visited() {
		if s == StateOpen {
			found = true
		}
	}
	if !found {
		t.Error("forced state missing from Visited()")
	}
}

// Property: Apply never moves to an invalid state and rejected events
// never change state.
func TestQuickApplyInvariants(t *testing.T) {
	f := func(events []uint8) bool {
		m := NewMachine()
		for _, raw := range events {
			before := m.State()
			e := Event(raw%uint8(EvLocalOpenReq) + 1)
			tr, ok := m.Apply(e)
			if !ok && m.State() != before {
				return false
			}
			if ok && (m.State() != tr.Next || !m.State().Valid()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: every transition target in the table is a valid state and
// every source state has a job.
func TestTransitionTableClosure(t *testing.T) {
	for _, s := range AllStates() {
		if JobOf(s) == 0 {
			t.Errorf("state %v has no job", s)
		}
		for _, e := range ValidEvents(s) {
			tr, ok := Lookup(s, e)
			if !ok {
				t.Fatalf("ValidEvents listed (%v, %v) but Lookup fails", s, e)
			}
			if !tr.Next.Valid() {
				t.Errorf("(%v, %v) targets invalid state %v", s, e, tr.Next)
			}
			if tr.Action == 0 {
				t.Errorf("(%v, %v) has zero action", s, e)
			}
		}
	}
}

func mustApply(t *testing.T, m *Machine, e Event) {
	t.Helper()
	if _, ok := m.Apply(e); !ok {
		t.Fatalf("Apply(%v) rejected in state %v", e, m.State())
	}
}

func driveToOpen(t *testing.T, m *Machine) {
	t.Helper()
	mustApply(t, m, EvRecvConnectReq)
	mustApply(t, m, EvLocalAccept)
	mustApply(t, m, EvLocalSendConfigReq)
	mustApply(t, m, EvRecvConfigRsp)
	mustApply(t, m, EvRecvConfigReq)
	if m.State() != StateOpen {
		t.Fatalf("driveToOpen ended in %v", m.State())
	}
}
