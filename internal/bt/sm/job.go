package sm

import (
	"fmt"

	"l2fuzz/internal/bt/l2cap"
)

// Job is one of the seven clusters of L2CAP states that share events,
// functions and actions (paper Table I).
type Job uint8

// The seven jobs.
const (
	// JobClosed covers the resting state.
	JobClosed Job = iota + 1
	// JobConnection covers connection establishment.
	JobConnection
	// JobCreation covers AMP channel creation.
	JobCreation
	// JobConfiguration covers all eight configuration states.
	JobConfiguration
	// JobDisconnection covers teardown.
	JobDisconnection
	// JobMove covers AMP channel moves.
	JobMove
	// JobOpen covers the data-transfer state.
	JobOpen
)

// NumJobs is the number of jobs in the paper's Table I.
const NumJobs = 7

// AllJobs returns the seven jobs in declaration order.
func AllJobs() []Job {
	return []Job{
		JobClosed, JobConnection, JobCreation, JobConfiguration,
		JobDisconnection, JobMove, JobOpen,
	}
}

func (j Job) String() string {
	switch j {
	case JobClosed:
		return "Closed"
	case JobConnection:
		return "Connection"
	case JobCreation:
		return "Creation"
	case JobConfiguration:
		return "Configuration"
	case JobDisconnection:
		return "Disconnection"
	case JobMove:
		return "Move"
	case JobOpen:
		return "Open"
	default:
		return fmt.Sprintf("Job(%d)", uint8(j))
	}
}

// jobOf is the Table I partition of the 19 states into 7 jobs.
var jobOf = map[State]Job{
	StateClosed: JobClosed,

	StateWaitConnect:    JobConnection,
	StateWaitConnectRsp: JobConnection,

	StateWaitCreate:    JobCreation,
	StateWaitCreateRsp: JobCreation,

	StateWaitConfig:       JobConfiguration,
	StateWaitConfigRsp:    JobConfiguration,
	StateWaitConfigReq:    JobConfiguration,
	StateWaitConfigReqRsp: JobConfiguration,
	StateWaitSendConfig:   JobConfiguration,
	StateWaitIndFinalRsp:  JobConfiguration,
	StateWaitFinalRsp:     JobConfiguration,
	StateWaitControlInd:   JobConfiguration,

	StateWaitDisconnect: JobDisconnection,

	StateWaitMove:        JobMove,
	StateWaitMoveRsp:     JobMove,
	StateWaitMoveConfirm: JobMove,
	StateWaitConfirmRsp:  JobMove,

	StateOpen: JobOpen,
}

// JobOf returns the job that state belongs to per Table I.
func JobOf(state State) Job { return jobOf[state] }

// StatesOf returns the states belonging to job, in declaration order.
func StatesOf(job Job) []State {
	var out []State
	for _, s := range AllStates() {
		if jobOf[s] == job {
			out = append(out, s)
		}
	}
	return out
}

// ValidCommands returns the signaling commands that are valid for a device
// whose channel is in a state of the given job — the paper's Table III.
// JobClosed and JobOpen accept all 26 commands; the intermediate jobs
// accept only the request/response pair(s) of their transaction. The
// returned slice is freshly allocated.
func ValidCommands(job Job) []l2cap.CommandCode {
	switch job {
	case JobClosed, JobOpen:
		return l2cap.AllCommandCodes()
	case JobConnection:
		return []l2cap.CommandCode{l2cap.CodeConnectionReq, l2cap.CodeConnectionRsp}
	case JobCreation:
		return []l2cap.CommandCode{l2cap.CodeCreateChannelReq, l2cap.CodeCreateChannelRsp}
	case JobConfiguration:
		return []l2cap.CommandCode{l2cap.CodeConfigurationReq, l2cap.CodeConfigurationRsp}
	case JobDisconnection:
		return []l2cap.CommandCode{l2cap.CodeDisconnectionReq, l2cap.CodeDisconnectionRsp}
	case JobMove:
		return []l2cap.CommandCode{
			l2cap.CodeMoveChannelReq, l2cap.CodeMoveChannelRsp,
			l2cap.CodeMoveChannelConfirmReq, l2cap.CodeMoveChannelConfirmRsp,
		}
	default:
		return nil
	}
}

// CommandValidInState reports whether a packet carrying code is valid for
// a device whose channel is in state, per the job-based Table III map.
func CommandValidInState(code l2cap.CommandCode, state State) bool {
	for _, c := range ValidCommands(JobOf(state)) {
		if c == code {
			return true
		}
	}
	return false
}
