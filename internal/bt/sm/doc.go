// Package sm models the Bluetooth 5.2 L2CAP channel state machine: the 19
// states of Figure 2 of the L2Fuzz paper (Vol 3 Part A §6 of the Bluetooth
// Core Specification), the clustering of those states into seven jobs by
// their events, functions and actions (paper Table I), and the
// valid-command map used by L2Fuzz's state guiding (paper Table III).
//
// The package serves two consumers:
//
//   - the simulated vendor host stacks in internal/bt/device run a Machine
//     per channel, using the transition table to answer (and reject)
//     incoming signaling commands the way a conformant acceptor would;
//   - L2Fuzz's state-guiding phase uses the job and valid-command tables
//     to pick commands that a device in a given state will not reject, and
//     the transition recipes to steer the device into each reachable
//     state.
//
// The machine is written from the acceptor's (slave's) perspective because
// that is the role the fuzzed device plays: a subset of 13 of the 19
// states is reachable when the tester is the master, matching the
// restriction the paper reports in its limitations section.
package sm
