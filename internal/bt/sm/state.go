package sm

import "fmt"

// State is one of the 19 L2CAP channel states of Bluetooth 5.2.
type State uint8

// The 19 L2CAP states (paper Figure 2).
const (
	// StateClosed is the resting state: no channel exists.
	StateClosed State = iota + 1
	// StateWaitConnect is occupied by an acceptor that received a
	// Connection Request and is waiting for its upper layer to decide.
	StateWaitConnect
	// StateWaitConnectRsp is occupied by an initiator that sent a
	// Connection Request and awaits the response.
	StateWaitConnectRsp
	// StateWaitCreate is the acceptor-side Create Channel analogue of
	// StateWaitConnect.
	StateWaitCreate
	// StateWaitCreateRsp is the initiator-side Create Channel analogue of
	// StateWaitConnectRsp.
	StateWaitCreateRsp
	// StateWaitConfig is the configuration entry state: connected, no
	// configuration traffic exchanged yet.
	StateWaitConfig
	// StateWaitSendConfig means the remote's Configuration Request has
	// been answered but the local request is still unsent.
	StateWaitSendConfig
	// StateWaitConfigReqRsp means the local request is outstanding and the
	// remote's request has not arrived yet.
	StateWaitConfigReqRsp
	// StateWaitConfigRsp means only the response to the local request is
	// outstanding.
	StateWaitConfigRsp
	// StateWaitConfigReq means only the remote's request is outstanding.
	StateWaitConfigReq
	// StateWaitIndFinalRsp is the lockstep-configuration state entered
	// after answering a request with "pending": the final response is
	// awaited by the peer while this side completes its decision.
	StateWaitIndFinalRsp
	// StateWaitFinalRsp is the initiator-side lockstep state awaiting the
	// final configuration response.
	StateWaitFinalRsp
	// StateWaitControlInd is the lockstep state awaiting a controller
	// indication.
	StateWaitControlInd
	// StateOpen is the data-transfer state.
	StateOpen
	// StateWaitDisconnect is occupied while a disconnection is being
	// processed.
	StateWaitDisconnect
	// StateWaitMove is occupied by an acceptor processing a Move Channel
	// Request.
	StateWaitMove
	// StateWaitMoveRsp is occupied by an initiator awaiting the Move
	// Channel Response.
	StateWaitMoveRsp
	// StateWaitMoveConfirm is occupied awaiting the Move Channel
	// Confirmation Request after a successful move response.
	StateWaitMoveConfirm
	// StateWaitConfirmRsp is occupied by a move initiator awaiting the
	// confirmation acknowledgement.
	StateWaitConfirmRsp
)

// NumStates is the number of L2CAP states in Bluetooth 5.2.
const NumStates = 19

// AllStates returns the 19 states in declaration order. The slice is
// freshly allocated.
func AllStates() []State {
	states := make([]State, 0, NumStates)
	for s := StateClosed; s <= StateWaitConfirmRsp; s++ {
		states = append(states, s)
	}
	return states
}

// Valid reports whether s is one of the 19 defined states.
func (s State) Valid() bool { return s >= StateClosed && s <= StateWaitConfirmRsp }

func (s State) String() string {
	switch s {
	case StateClosed:
		return "CLOSED"
	case StateWaitConnect:
		return "WAIT_CONNECT"
	case StateWaitConnectRsp:
		return "WAIT_CONNECT_RSP"
	case StateWaitCreate:
		return "WAIT_CREATE"
	case StateWaitCreateRsp:
		return "WAIT_CREATE_RSP"
	case StateWaitConfig:
		return "WAIT_CONFIG"
	case StateWaitSendConfig:
		return "WAIT_SEND_CONFIG"
	case StateWaitConfigReqRsp:
		return "WAIT_CONFIG_REQ_RSP"
	case StateWaitConfigRsp:
		return "WAIT_CONFIG_RSP"
	case StateWaitConfigReq:
		return "WAIT_CONFIG_REQ"
	case StateWaitIndFinalRsp:
		return "WAIT_IND_FINAL_RSP"
	case StateWaitFinalRsp:
		return "WAIT_FINAL_RSP"
	case StateWaitControlInd:
		return "WAIT_CONTROL_IND"
	case StateOpen:
		return "OPEN"
	case StateWaitDisconnect:
		return "WAIT_DISCONNECT"
	case StateWaitMove:
		return "WAIT_MOVE"
	case StateWaitMoveRsp:
		return "WAIT_MOVE_RSP"
	case StateWaitMoveConfirm:
		return "WAIT_MOVE_CONFIRM"
	case StateWaitConfirmRsp:
		return "WAIT_CONFIRM_RSP"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// ResponderReachable reports whether a master-side tester can steer an
// acceptor (slave) device into s. Six states require the device itself to
// initiate a transaction (connect, create, move or lockstep control) and
// are unreachable from the tester side — the restriction the paper's
// limitations section describes. The remaining 13 are exactly the states
// Figure 10 reports L2Fuzz covering.
func (s State) ResponderReachable() bool {
	switch s {
	case StateWaitConnectRsp, StateWaitCreateRsp, StateWaitMoveRsp,
		StateWaitConfirmRsp, StateWaitFinalRsp, StateWaitControlInd:
		return false
	default:
		return s.Valid()
	}
}

// ResponderReachableStates returns the 13 states a master-side tester can
// reach on an acceptor device, in declaration order.
func ResponderReachableStates() []State {
	var out []State
	for _, s := range AllStates() {
		if s.ResponderReachable() {
			out = append(out, s)
		}
	}
	return out
}
