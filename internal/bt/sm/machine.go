package sm

import (
	"fmt"

	"l2fuzz/internal/bt/l2cap"
)

// Event is a stimulus to the channel state machine: either the arrival of
// a signaling command (EvRecv*) or an internal completion raised by the
// host stack itself (EvLocal*).
type Event uint8

// Machine events.
const (
	// EvRecvConnectReq is the arrival of a Connection Request.
	EvRecvConnectReq Event = iota + 1
	// EvRecvConnectRsp is the arrival of a Connection Response.
	EvRecvConnectRsp
	// EvRecvConfigReq is the arrival of a Configuration Request.
	EvRecvConfigReq
	// EvRecvConfigReqEFS is the arrival of a Configuration Request
	// carrying an extended flow specification, which forces lockstep
	// configuration.
	EvRecvConfigReqEFS
	// EvRecvConfigRsp is the arrival of a Configuration Response.
	EvRecvConfigRsp
	// EvRecvDisconnectReq is the arrival of a Disconnection Request.
	EvRecvDisconnectReq
	// EvRecvDisconnectRsp is the arrival of a Disconnection Response.
	EvRecvDisconnectRsp
	// EvRecvCreateReq is the arrival of a Create Channel Request.
	EvRecvCreateReq
	// EvRecvCreateRsp is the arrival of a Create Channel Response.
	EvRecvCreateRsp
	// EvRecvMoveReq is the arrival of a Move Channel Request.
	EvRecvMoveReq
	// EvRecvMoveRsp is the arrival of a Move Channel Response.
	EvRecvMoveRsp
	// EvRecvMoveConfirmReq is the arrival of a Move Confirmation Request.
	EvRecvMoveConfirmReq
	// EvRecvMoveConfirmRsp is the arrival of a Move Confirmation
	// acknowledgement.
	EvRecvMoveConfirmRsp
	// EvLocalAccept is the upper layer accepting a pending connection,
	// creation, move or disconnection.
	EvLocalAccept
	// EvLocalSendConfigReq is the stack emitting its own Configuration
	// Request.
	EvLocalSendConfigReq
	// EvLocalFinalRsp is the stack completing a lockstep configuration
	// decision (sending the final response).
	EvLocalFinalRsp
	// EvLocalOpenReq is the upper layer initiating an outbound connection
	// (device acting as initiator).
	EvLocalOpenReq
)

func (e Event) String() string {
	names := map[Event]string{
		EvRecvConnectReq:     "RecvConnectReq",
		EvRecvConnectRsp:     "RecvConnectRsp",
		EvRecvConfigReq:      "RecvConfigReq",
		EvRecvConfigReqEFS:   "RecvConfigReqEFS",
		EvRecvConfigRsp:      "RecvConfigRsp",
		EvRecvDisconnectReq:  "RecvDisconnectReq",
		EvRecvDisconnectRsp:  "RecvDisconnectRsp",
		EvRecvCreateReq:      "RecvCreateReq",
		EvRecvCreateRsp:      "RecvCreateRsp",
		EvRecvMoveReq:        "RecvMoveReq",
		EvRecvMoveRsp:        "RecvMoveRsp",
		EvRecvMoveConfirmReq: "RecvMoveConfirmReq",
		EvRecvMoveConfirmRsp: "RecvMoveConfirmRsp",
		EvLocalAccept:        "LocalAccept",
		EvLocalSendConfigReq: "LocalSendConfigReq",
		EvLocalFinalRsp:      "LocalFinalRsp",
		EvLocalOpenReq:       "LocalOpenReq",
	}
	if n, ok := names[e]; ok {
		return n
	}
	return fmt.Sprintf("Event(%d)", uint8(e))
}

// RecvEvent maps an incoming command code to its machine event; ok is
// false for codes that never drive channel transitions (echo,
// information, credit and parameter-update commands are connectionless or
// data-plane concerns).
func RecvEvent(code l2cap.CommandCode, lockstep bool) (Event, bool) {
	switch code {
	case l2cap.CodeConnectionReq:
		return EvRecvConnectReq, true
	case l2cap.CodeConnectionRsp:
		return EvRecvConnectRsp, true
	case l2cap.CodeConfigurationReq:
		if lockstep {
			return EvRecvConfigReqEFS, true
		}
		return EvRecvConfigReq, true
	case l2cap.CodeConfigurationRsp:
		return EvRecvConfigRsp, true
	case l2cap.CodeDisconnectionReq:
		return EvRecvDisconnectReq, true
	case l2cap.CodeDisconnectionRsp:
		return EvRecvDisconnectRsp, true
	case l2cap.CodeCreateChannelReq:
		return EvRecvCreateReq, true
	case l2cap.CodeCreateChannelRsp:
		return EvRecvCreateRsp, true
	case l2cap.CodeMoveChannelReq:
		return EvRecvMoveReq, true
	case l2cap.CodeMoveChannelRsp:
		return EvRecvMoveRsp, true
	case l2cap.CodeMoveChannelConfirmReq:
		return EvRecvMoveConfirmReq, true
	case l2cap.CodeMoveChannelConfirmRsp:
		return EvRecvMoveConfirmRsp, true
	default:
		return 0, false
	}
}

// Action is what the machine instructs the host stack to do alongside a
// transition.
type Action uint8

// Machine actions.
const (
	// ActNone performs no protocol output.
	ActNone Action = iota + 1
	// ActDeliverToUpper hands the event to the upper layer for a decision.
	ActDeliverToUpper
	// ActSendConnectRsp emits a Connection Response.
	ActSendConnectRsp
	// ActSendCreateRsp emits a Create Channel Response.
	ActSendCreateRsp
	// ActSendConfigRsp emits a Configuration Response.
	ActSendConfigRsp
	// ActSendConfigRspPending emits a Configuration Response with result
	// "pending" (lockstep).
	ActSendConfigRspPending
	// ActSendConfigReq emits the local Configuration Request.
	ActSendConfigReq
	// ActSendDisconnectRsp emits a Disconnection Response.
	ActSendDisconnectRsp
	// ActSendMoveRsp emits a Move Channel Response.
	ActSendMoveRsp
	// ActSendMoveConfirmRsp emits a Move Confirmation acknowledgement.
	ActSendMoveConfirmRsp
	// ActSendConnectReq emits a Connection Request (initiator role).
	ActSendConnectReq
	// ActReject emits a Command Reject: the event is invalid in the
	// current state.
	ActReject
)

func (a Action) String() string {
	names := map[Action]string{
		ActNone:                 "None",
		ActDeliverToUpper:       "DeliverToUpper",
		ActSendConnectRsp:       "SendConnectRsp",
		ActSendCreateRsp:        "SendCreateRsp",
		ActSendConfigRsp:        "SendConfigRsp",
		ActSendConfigRspPending: "SendConfigRspPending",
		ActSendConfigReq:        "SendConfigReq",
		ActSendDisconnectRsp:    "SendDisconnectRsp",
		ActSendMoveRsp:          "SendMoveRsp",
		ActSendMoveConfirmRsp:   "SendMoveConfirmRsp",
		ActSendConnectReq:       "SendConnectReq",
		ActReject:               "Reject",
	}
	if n, ok := names[a]; ok {
		return n
	}
	return fmt.Sprintf("Action(%d)", uint8(a))
}

// Transition is one edge of the state machine.
type Transition struct {
	// Action is the protocol output accompanying the edge.
	Action Action
	// Next is the state after the edge.
	Next State
}

// transitions is the acceptor-perspective transition table: the paper's
// Table II generalised to every state. Events absent from a state's map
// are invalid there and answered with a Command Reject (Table II's
// "Reject" rows). The table is built once and never mutated.
var transitions = buildTransitions()

func buildTransitions() map[State]map[Event]Transition {
	return map[State]map[Event]Transition{
		StateClosed: {
			// Acceptor receives a connect: hand to the upper layer while
			// occupying WAIT_CONNECT (Table II row 1 splits into the
			// deliver step and the EvLocalAccept completion below).
			EvRecvConnectReq: {Action: ActDeliverToUpper, Next: StateWaitConnect},
			EvRecvCreateReq:  {Action: ActDeliverToUpper, Next: StateWaitCreate},
			// Initiator role: the upper layer opens an outbound channel.
			EvLocalOpenReq: {Action: ActSendConnectReq, Next: StateWaitConnectRsp},
		},
		StateWaitConnect: {
			// Upper layer accepted: answer and enter configuration.
			EvLocalAccept: {Action: ActSendConnectRsp, Next: StateWaitConfig},
			// Duplicate connect requests are tolerated (some stacks resend).
			EvRecvConnectReq: {Action: ActDeliverToUpper, Next: StateWaitConnect},
		},
		StateWaitConnectRsp: {
			EvRecvConnectRsp: {Action: ActNone, Next: StateWaitConfig},
		},
		StateWaitCreate: {
			EvLocalAccept:   {Action: ActSendCreateRsp, Next: StateWaitConfig},
			EvRecvCreateReq: {Action: ActDeliverToUpper, Next: StateWaitCreate},
		},
		StateWaitCreateRsp: {
			EvRecvCreateRsp: {Action: ActNone, Next: StateWaitConfig},
		},
		StateWaitConfig: {
			EvRecvConfigReq:      {Action: ActSendConfigRsp, Next: StateWaitSendConfig},
			EvRecvConfigReqEFS:   {Action: ActSendConfigRspPending, Next: StateWaitIndFinalRsp},
			EvLocalSendConfigReq: {Action: ActSendConfigReq, Next: StateWaitConfigReqRsp},
			EvRecvDisconnectReq:  {Action: ActSendDisconnectRsp, Next: StateClosed},
		},
		StateWaitSendConfig: {
			EvLocalSendConfigReq: {Action: ActSendConfigReq, Next: StateWaitConfigRsp},
			EvRecvDisconnectReq:  {Action: ActSendDisconnectRsp, Next: StateClosed},
		},
		StateWaitConfigReqRsp: {
			EvRecvConfigRsp:     {Action: ActNone, Next: StateWaitConfigReq},
			EvRecvConfigReq:     {Action: ActSendConfigRsp, Next: StateWaitConfigRsp},
			EvRecvConfigReqEFS:  {Action: ActSendConfigRspPending, Next: StateWaitIndFinalRsp},
			EvRecvDisconnectReq: {Action: ActSendDisconnectRsp, Next: StateClosed},
		},
		StateWaitConfigRsp: {
			EvRecvConfigRsp:     {Action: ActNone, Next: StateOpen},
			EvRecvDisconnectReq: {Action: ActSendDisconnectRsp, Next: StateClosed},
		},
		StateWaitConfigReq: {
			EvRecvConfigReq:     {Action: ActSendConfigRsp, Next: StateOpen},
			EvRecvConfigReqEFS:  {Action: ActSendConfigRspPending, Next: StateWaitIndFinalRsp},
			EvRecvDisconnectReq: {Action: ActSendDisconnectRsp, Next: StateClosed},
		},
		StateWaitIndFinalRsp: {
			// The stack finishes its lockstep decision and sends the final
			// response.
			EvLocalFinalRsp:     {Action: ActSendConfigRsp, Next: StateOpen},
			EvRecvConfigRsp:     {Action: ActNone, Next: StateOpen},
			EvRecvDisconnectReq: {Action: ActSendDisconnectRsp, Next: StateClosed},
		},
		StateWaitFinalRsp: {
			EvRecvConfigRsp:     {Action: ActNone, Next: StateOpen},
			EvRecvDisconnectReq: {Action: ActSendDisconnectRsp, Next: StateClosed},
		},
		StateWaitControlInd: {
			EvLocalFinalRsp:     {Action: ActSendConfigRsp, Next: StateOpen},
			EvRecvDisconnectReq: {Action: ActSendDisconnectRsp, Next: StateClosed},
		},
		StateOpen: {
			// Re-configuration re-enters the configuration job.
			EvRecvConfigReq:     {Action: ActSendConfigRsp, Next: StateWaitSendConfig},
			EvRecvConfigReqEFS:  {Action: ActSendConfigRspPending, Next: StateWaitIndFinalRsp},
			EvRecvDisconnectReq: {Action: ActDeliverToUpper, Next: StateWaitDisconnect},
			EvRecvMoveReq:       {Action: ActDeliverToUpper, Next: StateWaitMove},
		},
		StateWaitDisconnect: {
			EvLocalAccept:       {Action: ActSendDisconnectRsp, Next: StateClosed},
			EvRecvDisconnectReq: {Action: ActDeliverToUpper, Next: StateWaitDisconnect},
		},
		StateWaitMove: {
			EvLocalAccept: {Action: ActSendMoveRsp, Next: StateWaitMoveConfirm},
		},
		StateWaitMoveRsp: {
			EvRecvMoveRsp: {Action: ActNone, Next: StateWaitConfirmRsp},
		},
		StateWaitMoveConfirm: {
			EvRecvMoveConfirmReq: {Action: ActSendMoveConfirmRsp, Next: StateOpen},
			EvRecvDisconnectReq:  {Action: ActSendDisconnectRsp, Next: StateClosed},
		},
		StateWaitConfirmRsp: {
			EvRecvMoveConfirmRsp: {Action: ActNone, Next: StateOpen},
		},
	}
}

// Lookup returns the transition for (state, event); ok is false when the
// event is invalid in that state, in which case a conformant stack
// answers with a Command Reject.
func Lookup(state State, event Event) (Transition, bool) {
	t, ok := transitions[state][event]
	return t, ok
}

// ValidEvents returns the events state accepts, in ascending order.
func ValidEvents(state State) []Event {
	var out []Event
	for e := EvRecvConnectReq; e <= EvLocalOpenReq; e++ {
		if _, ok := transitions[state][e]; ok {
			out = append(out, e)
		}
	}
	return out
}

// Machine is one channel's state machine instance. The zero value is not
// usable; construct with NewMachine. Machine is not safe for concurrent
// use; the device stack serialises access per channel.
type Machine struct {
	state State
	// visited accumulates every state the machine has occupied, in first-
	// visit order, for trace-based coverage measurement.
	visited []State
}

// NewMachine returns a machine resting in CLOSED.
func NewMachine() *Machine {
	m := &Machine{state: StateClosed}
	m.visited = append(m.visited, StateClosed)
	return m
}

// State returns the current state.
func (m *Machine) State() State { return m.state }

// Job returns the job of the current state.
func (m *Machine) Job() Job { return JobOf(m.state) }

// Visited returns the distinct states the machine has occupied in
// first-visit order. The returned slice is a copy.
func (m *Machine) Visited() []State {
	return append([]State(nil), m.visited...)
}

// Apply drives the machine with event. When the event is valid it returns
// the transition taken; otherwise ok is false, the state is unchanged,
// and the caller should emit a Command Reject.
func (m *Machine) Apply(event Event) (Transition, bool) {
	t, ok := Lookup(m.state, event)
	if !ok {
		return Transition{}, false
	}
	m.state = t.Next
	m.noteVisit(t.Next)
	return t, true
}

// Force moves the machine to state without consulting the table. The
// vendor stacks use it to model implementation quirks (the paper notes
// some Android devices accept events the specification says to reject).
func (m *Machine) Force(state State) {
	m.state = state
	m.noteVisit(state)
}

func (m *Machine) noteVisit(s State) {
	for _, v := range m.visited {
		if v == s {
			return
		}
	}
	m.visited = append(m.visited, s)
}
