package sm

import (
	"testing"

	"l2fuzz/internal/bt/l2cap"
)

func TestNineteenStates(t *testing.T) {
	states := AllStates()
	if len(states) != NumStates {
		t.Fatalf("AllStates() has %d states, want %d", len(states), NumStates)
	}
	seen := make(map[State]bool)
	for _, s := range states {
		if !s.Valid() {
			t.Errorf("%v reported invalid", s)
		}
		if seen[s] {
			t.Errorf("%v duplicated", s)
		}
		seen[s] = true
		if s.String() == "" {
			t.Errorf("%v has empty name", s)
		}
	}
	if State(0).Valid() || State(20).Valid() {
		t.Error("out-of-range states reported valid")
	}
}

func TestJobPartitionMatchesTableI(t *testing.T) {
	// Every state belongs to exactly one job, and the per-job state sets
	// match the paper's Table I.
	want := map[Job][]State{
		JobClosed:     {StateClosed},
		JobConnection: {StateWaitConnect, StateWaitConnectRsp},
		JobCreation:   {StateWaitCreate, StateWaitCreateRsp},
		JobConfiguration: {
			StateWaitConfig, StateWaitSendConfig, StateWaitConfigReqRsp,
			StateWaitConfigRsp, StateWaitConfigReq, StateWaitIndFinalRsp,
			StateWaitFinalRsp, StateWaitControlInd,
		},
		JobDisconnection: {StateWaitDisconnect},
		JobMove:          {StateWaitMove, StateWaitMoveRsp, StateWaitMoveConfirm, StateWaitConfirmRsp},
		JobOpen:          {StateOpen},
	}

	total := 0
	for job, states := range want {
		got := StatesOf(job)
		if len(got) != len(states) {
			t.Errorf("StatesOf(%v) = %v, want %v", job, got, states)
			continue
		}
		gotSet := make(map[State]bool)
		for _, s := range got {
			gotSet[s] = true
		}
		for _, s := range states {
			if !gotSet[s] {
				t.Errorf("StatesOf(%v) missing %v", job, s)
			}
			if JobOf(s) != job {
				t.Errorf("JobOf(%v) = %v, want %v", s, JobOf(s), job)
			}
		}
		total += len(states)
	}
	if total != NumStates {
		t.Errorf("jobs partition %d states, want %d", total, NumStates)
	}
	if len(AllJobs()) != NumJobs {
		t.Errorf("AllJobs() has %d jobs, want %d", len(AllJobs()), NumJobs)
	}
}

func TestValidCommandsMatchTableIII(t *testing.T) {
	tests := []struct {
		job  Job
		want []l2cap.CommandCode
	}{
		{JobConnection, []l2cap.CommandCode{l2cap.CodeConnectionReq, l2cap.CodeConnectionRsp}},
		{JobCreation, []l2cap.CommandCode{l2cap.CodeCreateChannelReq, l2cap.CodeCreateChannelRsp}},
		{JobConfiguration, []l2cap.CommandCode{l2cap.CodeConfigurationReq, l2cap.CodeConfigurationRsp}},
		{JobDisconnection, []l2cap.CommandCode{l2cap.CodeDisconnectionReq, l2cap.CodeDisconnectionRsp}},
		{JobMove, []l2cap.CommandCode{
			l2cap.CodeMoveChannelReq, l2cap.CodeMoveChannelRsp,
			l2cap.CodeMoveChannelConfirmReq, l2cap.CodeMoveChannelConfirmRsp,
		}},
	}
	for _, tt := range tests {
		got := ValidCommands(tt.job)
		if len(got) != len(tt.want) {
			t.Errorf("ValidCommands(%v) = %v, want %v", tt.job, got, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("ValidCommands(%v)[%d] = %v, want %v", tt.job, i, got[i], tt.want[i])
			}
		}
	}
	// Closed and Open accept all commands.
	for _, job := range []Job{JobClosed, JobOpen} {
		if got := ValidCommands(job); len(got) != l2cap.NumCommandCodes {
			t.Errorf("ValidCommands(%v) has %d commands, want all %d",
				job, len(got), l2cap.NumCommandCodes)
		}
	}
}

func TestCommandValidInState(t *testing.T) {
	tests := []struct {
		code  l2cap.CommandCode
		state State
		want  bool
	}{
		{l2cap.CodeConnectionReq, StateWaitConnect, true},
		{l2cap.CodeConfigurationReq, StateWaitConnect, false},
		{l2cap.CodeConfigurationReq, StateWaitConfig, true},
		{l2cap.CodeConfigurationRsp, StateWaitIndFinalRsp, true},
		{l2cap.CodeMoveChannelConfirmReq, StateWaitMoveConfirm, true},
		{l2cap.CodeMoveChannelConfirmReq, StateWaitConfig, false},
		{l2cap.CodeEchoReq, StateClosed, true}, // all commands in Closed
		{l2cap.CodeEchoReq, StateOpen, true},   // all commands in Open
		{l2cap.CodeEchoReq, StateWaitConfig, false},
		{l2cap.CodeDisconnectionReq, StateWaitDisconnect, true},
	}
	for _, tt := range tests {
		if got := CommandValidInState(tt.code, tt.state); got != tt.want {
			t.Errorf("CommandValidInState(%v, %v) = %v, want %v",
				tt.code, tt.state, got, tt.want)
		}
	}
}

func TestResponderReachableStates(t *testing.T) {
	reachable := ResponderReachableStates()
	if len(reachable) != 13 {
		t.Fatalf("len(ResponderReachableStates()) = %d, want 13 (paper Figure 10)", len(reachable))
	}
	unreachable := map[State]bool{
		StateWaitConnectRsp: true, StateWaitCreateRsp: true,
		StateWaitMoveRsp: true, StateWaitConfirmRsp: true,
		StateWaitFinalRsp: true, StateWaitControlInd: true,
	}
	for _, s := range reachable {
		if unreachable[s] {
			t.Errorf("%v reported responder-reachable, want unreachable", s)
		}
	}
}
