package radio

import (
	"encoding/hex"
	"fmt"
	"strings"
)

// BDAddr is a 6-byte Bluetooth device address (MAC). The first three
// bytes are the Organizationally Unique Identifier (OUI) that L2Fuzz's
// target-scanning phase records.
type BDAddr [6]byte

// ParseBDAddr parses "AA:BB:CC:DD:EE:FF" (case-insensitive).
func ParseBDAddr(s string) (BDAddr, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 6 {
		return BDAddr{}, fmt.Errorf("radio: address %q does not have 6 octets", s)
	}
	var a BDAddr
	for i, p := range parts {
		b, err := hex.DecodeString(p)
		if err != nil || len(b) != 1 {
			return BDAddr{}, fmt.Errorf("radio: bad octet %q in address %q", p, s)
		}
		a[i] = b[0]
	}
	return a, nil
}

// MustBDAddr parses an address and panics on malformed input. It is meant
// for static device catalogs and tests where the literal is fixed.
func MustBDAddr(s string) BDAddr {
	a, err := ParseBDAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// OUI returns the 3-byte organizationally unique identifier prefix.
func (a BDAddr) OUI() [3]byte { return [3]byte{a[0], a[1], a[2]} }

// String renders the address in colon-separated form.
func (a BDAddr) String() string {
	return fmt.Sprintf("%02X:%02X:%02X:%02X:%02X:%02X", a[0], a[1], a[2], a[3], a[4], a[5])
}
