// Package radio provides the deterministic in-memory transmission medium
// that substitutes for the physical BR/EDR radio and USB dongle of the
// L2Fuzz paper's testbed.
//
// The medium is a discrete-event simulation: a single simulated Clock
// advances as frames are carried, endpoints are registered by Bluetooth
// device address (BD_ADDR), and every delivered frame can be observed by
// taps — the substitute for the Wireshark capture the paper uses to
// measure its mutation-efficiency metrics.
//
// Determinism contract: given the same sequence of calls, the medium
// produces the same deliveries, timestamps and tap events. There are no
// goroutines and no wall-clock reads; all concurrency-sensitive state is
// owned by the single test/benchmark goroutine driving the simulation.
package radio
