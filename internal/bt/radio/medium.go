package radio

import (
	"errors"
	"fmt"
	"time"
)

// Endpoint is a radio participant: a virtual HCI controller.
type Endpoint interface {
	// Address returns the endpoint's BD_ADDR.
	Address() BDAddr
	// ReceiveFrame delivers a baseband frame from a peer. Implementations
	// must not retain data.
	ReceiveFrame(from BDAddr, data []byte)
	// Connectable reports whether the endpoint currently accepts new
	// baseband (page) connections.
	Connectable() bool
	// Discoverable returns inquiry-response metadata; ok is false when
	// the endpoint does not answer inquiries.
	Discoverable() (InquiryResult, bool)
}

// InquiryResult is the metadata an endpoint reveals during inquiry: the
// information L2Fuzz's target-scanning phase collects.
type InquiryResult struct {
	// Addr is the responding device's BD_ADDR.
	Addr BDAddr
	// Name is the human-readable device name (remote name request).
	Name string
	// ClassOfDevice is the 24-bit class-of-device code.
	ClassOfDevice uint32
}

// TapDirection distinguishes the two directions a tap observes.
type TapDirection uint8

const (
	// DirTx is a frame leaving the tap owner's perspective device.
	DirTx TapDirection = iota + 1
	// DirRx is a frame arriving at the tap owner's perspective device.
	DirRx
)

// TapFrame is one captured frame: what a Wireshark capture on the
// paper's test machine would record.
type TapFrame struct {
	// Time is the simulated capture timestamp.
	Time time.Duration
	// From and To are the link endpoints.
	From, To BDAddr
	// Data is the baseband frame payload (an HCI ACL fragment).
	Data []byte
}

// Tap observes every frame the medium carries.
type Tap func(TapFrame)

// Errors returned by the medium.
var (
	// ErrUnknownAddress indicates no endpoint registered under the address.
	ErrUnknownAddress = errors.New("radio: unknown address")
	// ErrNotConnected indicates data sent on a link that was never paged.
	ErrNotConnected = errors.New("radio: no baseband link between endpoints")
	// ErrNotConnectable indicates the target rejects page requests.
	ErrNotConnectable = errors.New("radio: endpoint not connectable")
	// ErrDuplicateAddress indicates two endpoints claiming one address.
	ErrDuplicateAddress = errors.New("radio: address already registered")
)

// Timing models the cost of carrying one frame. The defaults approximate
// a BR/EDR ACL link: a fixed slot overhead plus a per-byte cost at
// roughly 2 Mb/s (EDR 2-DH rate).
type Timing struct {
	// PerFrame is the fixed cost per carried frame.
	PerFrame time.Duration
	// PerByte is the additional cost per payload byte.
	PerByte time.Duration
	// PageDelay is the cost of establishing a baseband link.
	PageDelay time.Duration
	// InquiryDelay is the cost of one inquiry sweep.
	InquiryDelay time.Duration
}

// DefaultTiming returns the BR/EDR-flavoured timing model.
func DefaultTiming() Timing {
	return Timing{
		PerFrame:     625 * time.Microsecond, // one TX slot
		PerByte:      4 * time.Microsecond,   // ≈2 Mb/s
		PageDelay:    640 * time.Millisecond, // typical page latency
		InquiryDelay: 2560 * time.Millisecond,
	}
}

// Medium is the in-memory radio. It is not safe for concurrent use: the
// simulation is single-threaded by design (see package doc).
type Medium struct {
	clock     *Clock
	timing    Timing
	endpoints map[BDAddr]Endpoint
	links     map[linkKey]struct{}
	taps      []Tap

	// FaultEveryN, when positive, drops every Nth carried frame —
	// deterministic loss injection for robustness tests. Counting starts
	// at 1; the Nth, 2Nth, ... frames are dropped.
	FaultEveryN int
	carried     int
}

type linkKey struct{ a, b BDAddr }

func orderedKey(x, y BDAddr) linkKey {
	for i := range x {
		if x[i] < y[i] {
			return linkKey{a: x, b: y}
		}
		if x[i] > y[i] {
			return linkKey{a: y, b: x}
		}
	}
	return linkKey{a: x, b: y}
}

// NewMedium creates a medium over the given clock. A nil clock gets a
// private one.
func NewMedium(clock *Clock, timing Timing) *Medium {
	if clock == nil {
		clock = &Clock{}
	}
	return &Medium{
		clock:     clock,
		timing:    timing,
		endpoints: make(map[BDAddr]Endpoint),
		links:     make(map[linkKey]struct{}),
	}
}

// Clock exposes the medium's clock.
func (m *Medium) Clock() *Clock { return m.clock }

// Register adds an endpoint to the medium.
func (m *Medium) Register(ep Endpoint) error {
	addr := ep.Address()
	if _, exists := m.endpoints[addr]; exists {
		return fmt.Errorf("%w: %v", ErrDuplicateAddress, addr)
	}
	m.endpoints[addr] = ep
	return nil
}

// Unregister removes the endpoint registered at addr, tearing down its
// links and notifying the surviving peers. Removing an absent address is
// a no-op.
func (m *Medium) Unregister(addr BDAddr) {
	delete(m.endpoints, addr)
	for k := range m.links {
		if k.a != addr && k.b != addr {
			continue
		}
		delete(m.links, k)
		peer := k.a
		if peer == addr {
			peer = k.b
		}
		m.notifyLinkDown(peer, addr)
	}
}

// AddTap registers a capture observer. Taps see every frame carried,
// including dropped ones (a sniffer hears the air, not the receiver).
func (m *Medium) AddTap(t Tap) { m.taps = append(m.taps, t) }

// Inquiry performs an inquiry sweep from the given origin, returning
// every discoverable endpoint except the origin itself, in registration-
// independent (address-sorted) order for determinism.
func (m *Medium) Inquiry(origin BDAddr) []InquiryResult {
	m.clock.Advance(m.timing.InquiryDelay)
	var results []InquiryResult
	for _, ep := range m.endpoints {
		if ep.Address() == origin {
			continue
		}
		if r, ok := ep.Discoverable(); ok {
			results = append(results, r)
		}
	}
	sortInquiryResults(results)
	return results
}

func sortInquiryResults(rs []InquiryResult) {
	// Insertion sort by address: n is tiny (≤ device catalog size).
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && lessAddr(rs[j].Addr, rs[j-1].Addr); j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

func lessAddr(x, y BDAddr) bool {
	for i := range x {
		if x[i] != y[i] {
			return x[i] < y[i]
		}
	}
	return false
}

// Page establishes a baseband link from initiator to target.
func (m *Medium) Page(initiator, target BDAddr) error {
	ep, ok := m.endpoints[target]
	if !ok {
		return fmt.Errorf("%w: %v", ErrUnknownAddress, target)
	}
	if _, ok := m.endpoints[initiator]; !ok {
		return fmt.Errorf("%w: %v", ErrUnknownAddress, initiator)
	}
	if !ep.Connectable() {
		return fmt.Errorf("%w: %v", ErrNotConnectable, target)
	}
	m.clock.Advance(m.timing.PageDelay)
	m.links[orderedKey(initiator, target)] = struct{}{}
	return nil
}

// Linked reports whether a baseband link exists between the endpoints.
func (m *Medium) Linked(x, y BDAddr) bool {
	_, ok := m.links[orderedKey(x, y)]
	return ok
}

// LinkObserver is implemented by endpoints that want to hear about
// baseband link loss (a real controller raises a Disconnection Complete
// event to its host).
type LinkObserver interface {
	// LinkDown reports that the link to peer no longer exists.
	LinkDown(peer BDAddr)
}

// Drop tears down the baseband link between the endpoints, if any, and
// notifies both sides.
func (m *Medium) Drop(x, y BDAddr) {
	key := orderedKey(x, y)
	if _, ok := m.links[key]; !ok {
		return
	}
	delete(m.links, key)
	m.notifyLinkDown(x, y)
	m.notifyLinkDown(y, x)
}

func (m *Medium) notifyLinkDown(at, peer BDAddr) {
	if ep, ok := m.endpoints[at]; ok {
		if obs, ok := ep.(LinkObserver); ok {
			obs.LinkDown(peer)
		}
	}
}

// Carry transmits one baseband frame across an established link,
// advancing the clock and notifying taps. Frames on dead links or to
// vanished endpoints fail; deterministically-injected faults silently
// drop the frame after the taps saw it.
func (m *Medium) Carry(from, to BDAddr, data []byte) error {
	ep, ok := m.endpoints[to]
	if !ok {
		return fmt.Errorf("%w: %v", ErrUnknownAddress, to)
	}
	if !m.Linked(from, to) {
		return fmt.Errorf("%w: %v ↔ %v", ErrNotConnected, from, to)
	}
	m.clock.Advance(m.timing.PerFrame + time.Duration(len(data))*m.timing.PerByte)

	frame := TapFrame{Time: m.clock.Now(), From: from, To: to, Data: data}
	for _, t := range m.taps {
		t(frame)
	}

	m.carried++
	if m.FaultEveryN > 0 && m.carried%m.FaultEveryN == 0 {
		return nil // dropped in flight
	}
	ep.ReceiveFrame(from, data)
	return nil
}
