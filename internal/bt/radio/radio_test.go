package radio

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

type fakeEndpoint struct {
	addr         BDAddr
	connectable  bool
	discoverable bool
	name         string
	got          [][]byte
}

func (f *fakeEndpoint) Address() BDAddr { return f.addr }
func (f *fakeEndpoint) ReceiveFrame(_ BDAddr, data []byte) {
	f.got = append(f.got, append([]byte(nil), data...))
}
func (f *fakeEndpoint) Connectable() bool { return f.connectable }
func (f *fakeEndpoint) Discoverable() (InquiryResult, bool) {
	if !f.discoverable {
		return InquiryResult{}, false
	}
	return InquiryResult{Addr: f.addr, Name: f.name}, true
}

func newTestMedium() *Medium { return NewMedium(nil, DefaultTiming()) }

func TestParseBDAddr(t *testing.T) {
	tests := []struct {
		in      string
		wantErr bool
	}{
		{"AA:BB:CC:DD:EE:FF", false},
		{"aa:bb:cc:dd:ee:ff", false},
		{"00:11:22:33:44:55", false},
		{"AA:BB:CC:DD:EE", true},
		{"AA:BB:CC:DD:EE:GG", true},
		{"AABBCCDDEEFF", true},
		{"", true},
	}
	for _, tt := range tests {
		a, err := ParseBDAddr(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseBDAddr(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if err == nil && a.String() != "AA:BB:CC:DD:EE:FF" && tt.in == "aa:bb:cc:dd:ee:ff" {
			t.Errorf("round trip of %q = %q", tt.in, a.String())
		}
	}
}

func TestBDAddrOUI(t *testing.T) {
	a := MustBDAddr("F8:8F:CA:12:34:56")
	if got := a.OUI(); got != [3]byte{0xF8, 0x8F, 0xCA} {
		t.Errorf("OUI() = %x", got)
	}
}

func TestMustBDAddrPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBDAddr did not panic on malformed input")
		}
	}()
	MustBDAddr("nope")
}

func TestClockNeverRunsBackwards(t *testing.T) {
	var c Clock
	c.Advance(5 * time.Millisecond)
	c.Advance(-time.Hour)
	if c.Now() != 5*time.Millisecond {
		t.Errorf("Now() = %v, want 5ms", c.Now())
	}
}

func TestRegisterDuplicateAddress(t *testing.T) {
	m := newTestMedium()
	a := &fakeEndpoint{addr: MustBDAddr("00:00:00:00:00:01")}
	if err := m.Register(a); err != nil {
		t.Fatalf("first Register() error = %v", err)
	}
	if err := m.Register(a); !errors.Is(err, ErrDuplicateAddress) {
		t.Fatalf("second Register() error = %v, want ErrDuplicateAddress", err)
	}
}

func TestPageAndCarry(t *testing.T) {
	m := newTestMedium()
	src := &fakeEndpoint{addr: MustBDAddr("00:00:00:00:00:01")}
	dst := &fakeEndpoint{addr: MustBDAddr("00:00:00:00:00:02"), connectable: true}
	for _, ep := range []*fakeEndpoint{src, dst} {
		if err := m.Register(ep); err != nil {
			t.Fatal(err)
		}
	}

	// Carrying before paging fails.
	if err := m.Carry(src.addr, dst.addr, []byte{1}); !errors.Is(err, ErrNotConnected) {
		t.Fatalf("Carry before page error = %v, want ErrNotConnected", err)
	}

	if err := m.Page(src.addr, dst.addr); err != nil {
		t.Fatalf("Page() error = %v", err)
	}
	if !m.Linked(src.addr, dst.addr) || !m.Linked(dst.addr, src.addr) {
		t.Fatal("link must be symmetric")
	}

	before := m.Clock().Now()
	if err := m.Carry(src.addr, dst.addr, []byte{1, 2, 3}); err != nil {
		t.Fatalf("Carry() error = %v", err)
	}
	if m.Clock().Now() <= before {
		t.Error("Carry must advance the clock")
	}
	if len(dst.got) != 1 || len(dst.got[0]) != 3 {
		t.Fatalf("delivery = %v, want one 3-byte frame", dst.got)
	}

	m.Drop(src.addr, dst.addr)
	if m.Linked(src.addr, dst.addr) {
		t.Error("Drop did not tear the link down")
	}
}

func TestPageErrors(t *testing.T) {
	m := newTestMedium()
	src := &fakeEndpoint{addr: MustBDAddr("00:00:00:00:00:01")}
	offline := &fakeEndpoint{addr: MustBDAddr("00:00:00:00:00:03"), connectable: false}
	if err := m.Register(src); err != nil {
		t.Fatal(err)
	}
	if err := m.Register(offline); err != nil {
		t.Fatal(err)
	}

	if err := m.Page(src.addr, MustBDAddr("00:00:00:00:00:99")); !errors.Is(err, ErrUnknownAddress) {
		t.Errorf("Page(unknown) error = %v, want ErrUnknownAddress", err)
	}
	if err := m.Page(src.addr, offline.addr); !errors.Is(err, ErrNotConnectable) {
		t.Errorf("Page(unconnectable) error = %v, want ErrNotConnectable", err)
	}
	if err := m.Page(MustBDAddr("00:00:00:00:00:98"), offline.addr); !errors.Is(err, ErrUnknownAddress) {
		t.Errorf("Page(from unknown) error = %v, want ErrUnknownAddress", err)
	}
}

func TestInquiryFindsOnlyDiscoverable(t *testing.T) {
	m := newTestMedium()
	origin := &fakeEndpoint{addr: MustBDAddr("00:00:00:00:00:01"), discoverable: true}
	visible := &fakeEndpoint{addr: MustBDAddr("00:00:00:00:00:03"), discoverable: true, name: "visible"}
	hidden := &fakeEndpoint{addr: MustBDAddr("00:00:00:00:00:02"), discoverable: false}
	visible2 := &fakeEndpoint{addr: MustBDAddr("00:00:00:00:00:04"), discoverable: true, name: "visible2"}
	for _, ep := range []*fakeEndpoint{origin, visible, hidden, visible2} {
		if err := m.Register(ep); err != nil {
			t.Fatal(err)
		}
	}
	got := m.Inquiry(origin.addr)
	if len(got) != 2 {
		t.Fatalf("Inquiry() found %d devices, want 2", len(got))
	}
	// Sorted by address, and the origin itself is excluded.
	if got[0].Addr != visible.addr || got[1].Addr != visible2.addr {
		t.Errorf("Inquiry() order = %v, %v", got[0].Addr, got[1].Addr)
	}
}

func TestTapsSeeEveryFrame(t *testing.T) {
	m := newTestMedium()
	src := &fakeEndpoint{addr: MustBDAddr("00:00:00:00:00:01")}
	dst := &fakeEndpoint{addr: MustBDAddr("00:00:00:00:00:02"), connectable: true}
	for _, ep := range []*fakeEndpoint{src, dst} {
		if err := m.Register(ep); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Page(src.addr, dst.addr); err != nil {
		t.Fatal(err)
	}
	var taps []TapFrame
	m.AddTap(func(f TapFrame) { taps = append(taps, f) })

	m.FaultEveryN = 2 // drop every 2nd frame
	for i := 0; i < 4; i++ {
		if err := m.Carry(src.addr, dst.addr, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if len(taps) != 4 {
		t.Errorf("taps saw %d frames, want 4 (including dropped)", len(taps))
	}
	if len(dst.got) != 2 {
		t.Errorf("endpoint received %d frames, want 2 (every 2nd dropped)", len(dst.got))
	}
	for i := 1; i < len(taps); i++ {
		if taps[i].Time < taps[i-1].Time {
			t.Error("tap timestamps must be monotone")
		}
	}
}

func TestUnregisterTearsDownLinks(t *testing.T) {
	m := newTestMedium()
	src := &fakeEndpoint{addr: MustBDAddr("00:00:00:00:00:01")}
	dst := &fakeEndpoint{addr: MustBDAddr("00:00:00:00:00:02"), connectable: true}
	for _, ep := range []*fakeEndpoint{src, dst} {
		if err := m.Register(ep); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Page(src.addr, dst.addr); err != nil {
		t.Fatal(err)
	}
	m.Unregister(dst.addr)
	if m.Linked(src.addr, dst.addr) {
		t.Error("links to an unregistered endpoint must vanish")
	}
	if err := m.Carry(src.addr, dst.addr, []byte{1}); !errors.Is(err, ErrUnknownAddress) {
		t.Errorf("Carry to unregistered error = %v, want ErrUnknownAddress", err)
	}
}

// Property: BDAddr String/Parse round-trips for arbitrary addresses.
func TestQuickBDAddrRoundTrip(t *testing.T) {
	f := func(raw [6]byte) bool {
		a := BDAddr(raw)
		back, err := ParseBDAddr(a.String())
		return err == nil && back == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
