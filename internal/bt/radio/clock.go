package radio

import "time"

// Clock is the simulated time source of the medium. All elapsed-time
// figures the reproduction reports (Table VI) come from a Clock, never
// from the wall clock, so runs are deterministic.
//
// The zero value is a clock at instant zero, ready to use.
type Clock struct {
	now time.Duration
}

// Now returns the simulated time since the start of the run.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves simulated time forward. Negative durations are ignored:
// simulated time never runs backwards.
func (c *Clock) Advance(d time.Duration) {
	if d > 0 {
		c.now += d
	}
}
