// Package l2cap implements the Bluetooth 5.2 Logical Link Control and
// Adaptation Protocol (L2CAP) packet formats used over BR/EDR ACL-U
// logical links.
//
// The package provides:
//
//   - the basic L2CAP frame (length + channel ID header, Figure 3 of the
//     L2Fuzz paper; Vol 3 Part A §3 of the Bluetooth Core Specification),
//   - all 26 signaling commands defined by Bluetooth 5.2 with round-trip
//     binary encoding (Vol 3 Part A §4),
//   - configuration options (MTU, flush timeout, QoS, retransmission and
//     flow control, FCS, extended flow specification, extended window size),
//   - the field classification used by L2Fuzz core-field mutating: every
//     command exposes which of its fields are fixed (F), dependent (D),
//     mutable core (MC: PSM and channel IDs carried in the payload) and
//     mutable application (MA) fields.
//
// All multi-byte values are little-endian, as mandated by the Bluetooth
// Core Specification.
//
// Encoding is strict: Marshal never produces a frame that a conformant
// stack would reject as syntactically invalid. Decoding is deliberately
// tolerant of *trailing* bytes beyond the declared data length, because
// L2Fuzz appends garbage tails to otherwise well-formed commands and the
// simulated vendor stacks must be able to observe that tail (some of the
// reproduced vulnerabilities are triggered by it).
package l2cap
