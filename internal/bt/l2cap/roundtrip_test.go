package l2cap

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

// sampleCommands returns a populated instance of every command type, with
// representative non-default values so round-trip tests exercise every
// field.
func sampleCommands() []Command {
	return []Command{
		&CommandReject{Reason: RejectNotUnderstood},
		NewMTUExceededReject(672),
		NewInvalidCIDReject(0x0040, 0x0041),
		&ConnectionReq{PSM: PSMRFCOMM, SCID: 0x0044},
		&ConnectionRsp{DCID: 0x0052, SCID: 0x0044, Result: ConnResultPending, Status: 1},
		&ConfigurationReq{DCID: 0x0052, Flags: 1, Options: []ConfigOption{
			MTUOption(1024), FlushTimeoutOption(0xFFFF),
		}},
		&ConfigurationRsp{SCID: 0x0044, Result: ConfigUnacceptableParams, Options: []ConfigOption{
			MTUOption(512),
		}},
		&DisconnectionReq{DCID: 0x0052, SCID: 0x0044},
		&DisconnectionRsp{DCID: 0x0052, SCID: 0x0044},
		&EchoReq{Data: []byte{1, 2, 3}},
		&EchoRsp{Data: []byte{1, 2, 3}},
		&InformationReq{InfoType: InfoTypeFixedChannels},
		&InformationRsp{InfoType: InfoTypeFixedChannels, Result: InfoResultSuccess, Data: []byte{0xFF, 0, 0, 0, 0, 0, 0, 0}},
		&CreateChannelReq{PSM: PSMAVDTP, SCID: 0x0060, ControllerID: 2},
		&CreateChannelRsp{DCID: 0x0070, SCID: 0x0060, Result: ConnResultSuccess, Status: 0},
		&MoveChannelReq{ICID: 0x0070, DestControllerID: 1},
		&MoveChannelRsp{ICID: 0x0070, Result: MoveResultPending},
		&MoveChannelConfirmReq{ICID: 0x0070, Result: MoveResultSuccess},
		&MoveChannelConfirmRsp{ICID: 0x0070},
		&ConnParamUpdateReq{IntervalMin: 6, IntervalMax: 3200, Latency: 4, Timeout: 600},
		&ConnParamUpdateRsp{Result: 1},
		&LECreditConnReq{SPSM: 0x0080, SCID: 0x0040, MTU: 256, MPS: 64, InitialCredits: 10},
		&LECreditConnRsp{DCID: 0x0041, MTU: 256, MPS: 64, InitialCredits: 10, Result: 0},
		&FlowControlCredit{CID: 0x0041, Credits: 5},
		&CreditBasedConnReq{SPSM: 0x0080, MTU: 128, MPS: 64, InitialCredits: 2, SCIDs: []CID{0x0040, 0x0041, 0x0042}},
		&CreditBasedConnRsp{MTU: 128, MPS: 64, InitialCredits: 2, Result: 0, DCIDs: []CID{0x0050, 0x0051, 0x0052}},
		&CreditBasedReconfReq{MTU: 256, MPS: 128, DCIDs: []CID{0x0050}},
		&CreditBasedReconfRsp{Result: 0},
	}
}

func TestEveryCommandRoundTrips(t *testing.T) {
	for _, cmd := range sampleCommands() {
		t.Run(cmd.Code().String(), func(t *testing.T) {
			data := cmd.MarshalData()
			fresh, err := newCommand(cmd.Code())
			if err != nil {
				t.Fatalf("newCommand() error = %v", err)
			}
			if err := fresh.UnmarshalData(data); err != nil {
				t.Fatalf("UnmarshalData() error = %v", err)
			}
			if !reflect.DeepEqual(normalize(cmd), normalize(fresh)) {
				t.Fatalf("round trip mismatch:\n got  %#v\n want %#v", fresh, cmd)
			}
		})
	}
}

// normalize maps nil slices to empty slices so DeepEqual compares values,
// not allocation history.
func normalize(cmd Command) Command {
	v := reflect.ValueOf(cmd).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		if f.Kind() == reflect.Slice && f.IsNil() && f.CanSet() {
			f.Set(reflect.MakeSlice(f.Type(), 0, 0))
		}
	}
	return cmd
}

func TestEveryCommandRoundTripsThroughSignalPacket(t *testing.T) {
	for i, cmd := range sampleCommands() {
		id := uint8(i + 1)
		pkt := SignalPacket(id, cmd, nil)
		raw := pkt.Marshal()

		decoded, err := UnmarshalPacket(raw)
		if err != nil {
			t.Fatalf("%v: UnmarshalPacket() error = %v", cmd.Code(), err)
		}
		frames, err := ParseSignals(decoded.Payload)
		if err != nil {
			t.Fatalf("%v: ParseSignals() error = %v", cmd.Code(), err)
		}
		if len(frames) != 1 {
			t.Fatalf("%v: len(frames) = %d, want 1", cmd.Code(), len(frames))
		}
		if frames[0].Identifier != id {
			t.Errorf("%v: identifier = %d, want %d", cmd.Code(), frames[0].Identifier, id)
		}
		out, err := DecodeCommand(frames[0])
		if err != nil {
			t.Fatalf("%v: DecodeCommand() error = %v", cmd.Code(), err)
		}
		if out.Code() != cmd.Code() {
			t.Errorf("decoded code = %v, want %v", out.Code(), cmd.Code())
		}
		if !bytes.Equal(out.MarshalData(), cmd.MarshalData()) {
			t.Errorf("%v: re-marshal mismatch", cmd.Code())
		}
	}
}

func TestDefaultCommandForEveryCode(t *testing.T) {
	for _, code := range AllCommandCodes() {
		cmd, err := DefaultCommand(code)
		if err != nil {
			t.Fatalf("DefaultCommand(%v) error = %v", code, err)
		}
		if cmd.Code() != code {
			t.Errorf("DefaultCommand(%v).Code() = %v", code, cmd.Code())
		}
		// Defaults must round-trip too.
		fresh, err := newCommand(code)
		if err != nil {
			t.Fatalf("newCommand(%v) error = %v", code, err)
		}
		if err := fresh.UnmarshalData(cmd.MarshalData()); err != nil {
			t.Errorf("default %v does not round-trip: %v", code, err)
		}
	}
	if _, err := DefaultCommand(0x99); !errors.Is(err, ErrUnknownCode) {
		t.Errorf("DefaultCommand(0x99) error = %v, want ErrUnknownCode", err)
	}
}

func TestFixedSizeCommandsRejectWrongLengths(t *testing.T) {
	fixed := []Command{
		&ConnectionReq{}, &ConnectionRsp{}, &DisconnectionReq{},
		&DisconnectionRsp{}, &InformationReq{}, &CreateChannelReq{},
		&CreateChannelRsp{}, &MoveChannelReq{}, &MoveChannelRsp{},
		&MoveChannelConfirmReq{}, &MoveChannelConfirmRsp{},
		&ConnParamUpdateReq{}, &ConnParamUpdateRsp{},
		&LECreditConnReq{}, &LECreditConnRsp{}, &FlowControlCredit{},
		&CreditBasedReconfRsp{},
	}
	for _, cmd := range fixed {
		want := len(cmd.MarshalData())
		for _, n := range []int{want - 1, want + 1} {
			if n < 0 {
				continue
			}
			err := cmd.UnmarshalData(make([]byte, n))
			if !errors.Is(err, ErrBadCommand) {
				t.Errorf("%v: UnmarshalData(%d bytes) error = %v, want ErrBadCommand",
					cmd.Code(), n, err)
			}
		}
	}
}

func TestCommandRejectReasonDataValidation(t *testing.T) {
	tests := []struct {
		name    string
		data    []byte
		wantErr bool
	}{
		{name: "not understood no data", data: []byte{0x00, 0x00}, wantErr: false},
		{name: "mtu exceeded right size", data: []byte{0x01, 0x00, 0xA0, 0x02}, wantErr: false},
		{name: "mtu exceeded wrong size", data: []byte{0x01, 0x00, 0xA0}, wantErr: true},
		{name: "invalid cid right size", data: []byte{0x02, 0x00, 0x40, 0x00, 0x41, 0x00}, wantErr: false},
		{name: "invalid cid wrong size", data: []byte{0x02, 0x00, 0x40, 0x00}, wantErr: true},
		{name: "too short for reason", data: []byte{0x00}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var c CommandReject
			err := c.UnmarshalData(tt.data)
			if (err != nil) != tt.wantErr {
				t.Fatalf("UnmarshalData() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestECREDChannelListValidation(t *testing.T) {
	var req CreditBasedConnReq
	// 6 CIDs exceeds the 5-channel limit.
	data := make([]byte, 8+12)
	if err := req.UnmarshalData(data); !errors.Is(err, ErrBadCommand) {
		t.Errorf("6-CID list: error = %v, want ErrBadCommand", err)
	}
	// Odd-length CID list.
	data = make([]byte, 8+3)
	if err := req.UnmarshalData(data); !errors.Is(err, ErrBadCommand) {
		t.Errorf("odd CID list: error = %v, want ErrBadCommand", err)
	}
}
