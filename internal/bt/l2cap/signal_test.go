package l2cap

import (
	"bytes"
	"errors"
	"testing"
)

func TestParseSignalsMultipleCommands(t *testing.T) {
	var payload []byte
	payload = EncodeFrame(1, &InformationReq{InfoType: InfoTypeExtendedFeatures}, nil).MarshalTo(payload)
	payload = EncodeFrame(2, &EchoReq{Data: []byte{0xAA}}, nil).MarshalTo(payload)
	payload = EncodeFrame(3, &DisconnectionReq{DCID: 0x0040, SCID: 0x0041}, nil).MarshalTo(payload)

	frames, err := ParseSignals(payload)
	if err != nil {
		t.Fatalf("ParseSignals() error = %v", err)
	}
	if len(frames) != 3 {
		t.Fatalf("len(frames) = %d, want 3", len(frames))
	}
	wantCodes := []CommandCode{CodeInformationReq, CodeEchoReq, CodeDisconnectionReq}
	for i, f := range frames {
		if f.Code != wantCodes[i] {
			t.Errorf("frames[%d].Code = %v, want %v", i, f.Code, wantCodes[i])
		}
		if f.Identifier != uint8(i+1) {
			t.Errorf("frames[%d].Identifier = %d, want %d", i, f.Identifier, i+1)
		}
	}
}

func TestParseSignalsTrailingFragmentBecomesTail(t *testing.T) {
	payload := EncodeFrame(1, &EchoReq{}, nil).MarshalTo(nil)
	payload = append(payload, 0xDE, 0xAD) // too short for another header

	frames, err := ParseSignals(payload)
	if err != nil {
		t.Fatalf("ParseSignals() error = %v", err)
	}
	if len(frames) != 1 {
		t.Fatalf("len(frames) = %d, want 1", len(frames))
	}
	if !bytes.Equal(frames[0].Tail, []byte{0xDE, 0xAD}) {
		t.Fatalf("Tail = %x, want dead", frames[0].Tail)
	}
}

func TestParseSignalsErrors(t *testing.T) {
	tests := []struct {
		name    string
		payload []byte
		wantErr error
	}{
		{name: "too short for header", payload: []byte{0x02}, wantErr: ErrShortCommand},
		{name: "declared data overruns", payload: []byte{0x02, 0x01, 0xFF, 0x00}, wantErr: ErrDataLength},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseSignals(tt.payload); !errors.Is(err, tt.wantErr) {
				t.Fatalf("ParseSignals() error = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestUnmarshalFrameSeparatesTail(t *testing.T) {
	f := EncodeFrame(7, &ConnectionReq{PSM: PSMSDP, SCID: 0x0040}, []byte{1, 2, 3})
	out, err := UnmarshalFrame(f.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalFrame() error = %v", err)
	}
	if out.Code != CodeConnectionReq || out.Identifier != 7 {
		t.Fatalf("header = (%v, %d), want (ConnectionReq, 7)", out.Code, out.Identifier)
	}
	if len(out.Data) != 4 {
		t.Fatalf("len(Data) = %d, want 4", len(out.Data))
	}
	if !bytes.Equal(out.Tail, []byte{1, 2, 3}) {
		t.Fatalf("Tail = %x, want 010203", out.Tail)
	}
}

func TestDecodeCommandUnknownCode(t *testing.T) {
	_, err := DecodeCommand(Frame{Code: 0x7F})
	if !errors.Is(err, ErrUnknownCode) {
		t.Fatalf("DecodeCommand() error = %v, want ErrUnknownCode", err)
	}
}

func TestCommandCodeProperties(t *testing.T) {
	codes := AllCommandCodes()
	if len(codes) != NumCommandCodes {
		t.Fatalf("AllCommandCodes() returned %d codes, want %d", len(codes), NumCommandCodes)
	}
	seen := make(map[CommandCode]bool, len(codes))
	for _, c := range codes {
		if !c.Valid() {
			t.Errorf("code %v reported invalid", c)
		}
		if seen[c] {
			t.Errorf("code %v duplicated", c)
		}
		seen[c] = true
		if c.String() == "" {
			t.Errorf("code %v has empty name", c)
		}
	}
	if CommandCode(0x00).Valid() || CommandCode(0x1B).Valid() {
		t.Error("out-of-range codes reported valid")
	}
	// Exactly 12 request-style codes.
	reqs := 0
	for _, c := range codes {
		if c.IsRequest() {
			reqs++
		}
	}
	if reqs != 12 {
		t.Errorf("IsRequest() true for %d codes, want 12", reqs)
	}
}
