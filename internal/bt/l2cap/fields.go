package l2cap

import "fmt"

// FieldClass is the L2Fuzz segmentation of L2CAP packet fields
// (paper §III-D): L = F ∪ D ∪ MC ∪ MA.
type FieldClass uint8

const (
	// FieldFixed (F) fields have specification-fixed values; the only one
	// is the basic-header channel ID, pinned to the signaling channel.
	FieldFixed FieldClass = iota + 1
	// FieldDependent (D) fields are derived from other values: payload
	// length, command code, identifier and data length.
	FieldDependent
	// FieldMutableCore (MC) fields determine the port and channel
	// endpoints: PSM, SCID, DCID, ICID and controller IDs (CONT ID).
	FieldMutableCore
	// FieldMutableApp (MA) fields carry per-command application data:
	// REASON, RESULT, STATUS, FLAGS, TYPE, INTERVAL, LATENCY, TIMEOUT,
	// SPSM, MTU, CREDIT, MPS, OPT and QoS.
	FieldMutableApp
)

// String names the class with the paper's symbols.
func (c FieldClass) String() string {
	switch c {
	case FieldFixed:
		return "F"
	case FieldDependent:
		return "D"
	case FieldMutableCore:
		return "MC"
	case FieldMutableApp:
		return "MA"
	default:
		return fmt.Sprintf("FieldClass(%d)", uint8(c))
	}
}

// FieldSpec describes one data field of a signaling command: its name as
// used by the paper's Figure 6 and the class it belongs to.
type FieldSpec struct {
	// Name is the field name in specification/paper terms.
	Name string
	// Class is the L2Fuzz field class.
	Class FieldClass
}

// commandFields maps every command to the classification of its data
// fields, in wire order. This is the machine-readable form of the paper's
// Figure 6 applied to each of the 26 commands.
var commandFields = map[CommandCode][]FieldSpec{
	CodeCommandReject: {
		{Name: "REASON", Class: FieldMutableApp},
		{Name: "REASON_DATA", Class: FieldMutableApp},
	},
	CodeConnectionReq: {
		{Name: "PSM", Class: FieldMutableCore},
		{Name: "SCID", Class: FieldMutableCore},
	},
	CodeConnectionRsp: {
		{Name: "DCID", Class: FieldMutableCore},
		{Name: "SCID", Class: FieldMutableCore},
		{Name: "RESULT", Class: FieldMutableApp},
		{Name: "STATUS", Class: FieldMutableApp},
	},
	CodeConfigurationReq: {
		{Name: "DCID", Class: FieldMutableCore},
		{Name: "FLAGS", Class: FieldMutableApp},
		{Name: "OPT", Class: FieldMutableApp},
	},
	CodeConfigurationRsp: {
		{Name: "SCID", Class: FieldMutableCore},
		{Name: "FLAGS", Class: FieldMutableApp},
		{Name: "RESULT", Class: FieldMutableApp},
		{Name: "OPT", Class: FieldMutableApp},
	},
	CodeDisconnectionReq: {
		{Name: "DCID", Class: FieldMutableCore},
		{Name: "SCID", Class: FieldMutableCore},
	},
	CodeDisconnectionRsp: {
		{Name: "DCID", Class: FieldMutableCore},
		{Name: "SCID", Class: FieldMutableCore},
	},
	CodeEchoReq: {
		{Name: "DATA", Class: FieldMutableApp},
	},
	CodeEchoRsp: {
		{Name: "DATA", Class: FieldMutableApp},
	},
	CodeInformationReq: {
		{Name: "TYPE", Class: FieldMutableApp},
	},
	CodeInformationRsp: {
		{Name: "TYPE", Class: FieldMutableApp},
		{Name: "RESULT", Class: FieldMutableApp},
		{Name: "DATA", Class: FieldMutableApp},
	},
	CodeCreateChannelReq: {
		{Name: "PSM", Class: FieldMutableCore},
		{Name: "SCID", Class: FieldMutableCore},
		{Name: "CONT_ID", Class: FieldMutableCore},
	},
	CodeCreateChannelRsp: {
		{Name: "DCID", Class: FieldMutableCore},
		{Name: "SCID", Class: FieldMutableCore},
		{Name: "RESULT", Class: FieldMutableApp},
		{Name: "STATUS", Class: FieldMutableApp},
	},
	CodeMoveChannelReq: {
		{Name: "ICID", Class: FieldMutableCore},
		{Name: "CONT_ID", Class: FieldMutableCore},
	},
	CodeMoveChannelRsp: {
		{Name: "ICID", Class: FieldMutableCore},
		{Name: "RESULT", Class: FieldMutableApp},
	},
	CodeMoveChannelConfirmReq: {
		{Name: "ICID", Class: FieldMutableCore},
		{Name: "RESULT", Class: FieldMutableApp},
	},
	CodeMoveChannelConfirmRsp: {
		{Name: "ICID", Class: FieldMutableCore},
	},
	CodeConnParamUpdateReq: {
		{Name: "INTERVAL_MIN", Class: FieldMutableApp},
		{Name: "INTERVAL_MAX", Class: FieldMutableApp},
		{Name: "LATENCY", Class: FieldMutableApp},
		{Name: "TIMEOUT", Class: FieldMutableApp},
	},
	CodeConnParamUpdateRsp: {
		{Name: "RESULT", Class: FieldMutableApp},
	},
	CodeLECreditConnReq: {
		{Name: "SPSM", Class: FieldMutableApp},
		{Name: "SCID", Class: FieldMutableCore},
		{Name: "MTU", Class: FieldMutableApp},
		{Name: "MPS", Class: FieldMutableApp},
		{Name: "CREDIT", Class: FieldMutableApp},
	},
	CodeLECreditConnRsp: {
		{Name: "DCID", Class: FieldMutableCore},
		{Name: "MTU", Class: FieldMutableApp},
		{Name: "MPS", Class: FieldMutableApp},
		{Name: "CREDIT", Class: FieldMutableApp},
		{Name: "RESULT", Class: FieldMutableApp},
	},
	CodeFlowControlCredit: {
		{Name: "CIDP", Class: FieldMutableCore},
		{Name: "CREDIT", Class: FieldMutableApp},
	},
	CodeCreditBasedConnReq: {
		{Name: "SPSM", Class: FieldMutableApp},
		{Name: "MTU", Class: FieldMutableApp},
		{Name: "MPS", Class: FieldMutableApp},
		{Name: "CREDIT", Class: FieldMutableApp},
		{Name: "SCID_LIST", Class: FieldMutableCore},
	},
	CodeCreditBasedConnRsp: {
		{Name: "MTU", Class: FieldMutableApp},
		{Name: "MPS", Class: FieldMutableApp},
		{Name: "CREDIT", Class: FieldMutableApp},
		{Name: "RESULT", Class: FieldMutableApp},
		{Name: "DCID_LIST", Class: FieldMutableCore},
	},
	CodeCreditBasedReconfReq: {
		{Name: "MTU", Class: FieldMutableApp},
		{Name: "MPS", Class: FieldMutableApp},
		{Name: "DCID_LIST", Class: FieldMutableCore},
	},
	CodeCreditBasedReconfRsp: {
		{Name: "RESULT", Class: FieldMutableApp},
	},
}

// Fields returns the classification of code's data fields in wire order,
// or nil for an unknown code. The returned slice is shared; callers must
// not mutate it.
func Fields(code CommandCode) []FieldSpec {
	return commandFields[code]
}

// HasCoreFields reports whether code carries any mutable-core field —
// that is, whether core-field mutating can produce a distinct malformed
// variant of it.
func HasCoreFields(code CommandCode) bool {
	for _, f := range commandFields[code] {
		if f.Class == FieldMutableCore {
			return true
		}
	}
	return false
}

// DefaultCommand builds a command of the given code with the default
// (well-formed, non-malicious) values L2Fuzz keeps for MA fields:
// a benign SDP connect, a minimal config exchange, spec-minimum MTUs.
// The SCID/DCID defaults use the first dynamic CID, mirroring the
// "40 00" defaults in the paper's Figure 7.
func DefaultCommand(code CommandCode) (Command, error) {
	switch code {
	case CodeCommandReject:
		return &CommandReject{Reason: RejectNotUnderstood}, nil
	case CodeConnectionReq:
		return &ConnectionReq{PSM: PSMSDP, SCID: CIDDynamicFirst}, nil
	case CodeConnectionRsp:
		return &ConnectionRsp{
			DCID: CIDDynamicFirst, SCID: CIDDynamicFirst,
			Result: ConnResultSuccess,
		}, nil
	case CodeConfigurationReq:
		return &ConfigurationReq{
			DCID:    CIDDynamicFirst,
			Options: []ConfigOption{MTUOption(DefaultSignalingMTU)},
		}, nil
	case CodeConfigurationRsp:
		return &ConfigurationRsp{
			SCID: CIDDynamicFirst, Result: ConfigSuccess,
		}, nil
	case CodeDisconnectionReq:
		return &DisconnectionReq{DCID: CIDDynamicFirst, SCID: CIDDynamicFirst}, nil
	case CodeDisconnectionRsp:
		return &DisconnectionRsp{DCID: CIDDynamicFirst, SCID: CIDDynamicFirst}, nil
	case CodeEchoReq:
		return &EchoReq{}, nil
	case CodeEchoRsp:
		return &EchoRsp{}, nil
	case CodeInformationReq:
		return &InformationReq{InfoType: InfoTypeExtendedFeatures}, nil
	case CodeInformationRsp:
		return &InformationRsp{
			InfoType: InfoTypeExtendedFeatures,
			Result:   InfoResultSuccess,
			Data:     []byte{0x00, 0x00, 0x00, 0x00},
		}, nil
	case CodeCreateChannelReq:
		return &CreateChannelReq{PSM: PSMSDP, SCID: CIDDynamicFirst}, nil
	case CodeCreateChannelRsp:
		return &CreateChannelRsp{
			DCID: CIDDynamicFirst, SCID: CIDDynamicFirst,
			Result: ConnResultSuccess,
		}, nil
	case CodeMoveChannelReq:
		return &MoveChannelReq{ICID: CIDDynamicFirst}, nil
	case CodeMoveChannelRsp:
		return &MoveChannelRsp{ICID: CIDDynamicFirst, Result: MoveResultSuccess}, nil
	case CodeMoveChannelConfirmReq:
		return &MoveChannelConfirmReq{ICID: CIDDynamicFirst, Result: MoveResultSuccess}, nil
	case CodeMoveChannelConfirmRsp:
		return &MoveChannelConfirmRsp{ICID: CIDDynamicFirst}, nil
	case CodeConnParamUpdateReq:
		return &ConnParamUpdateReq{
			IntervalMin: 0x0006, IntervalMax: 0x0C80,
			Latency: 0, Timeout: 0x0258,
		}, nil
	case CodeConnParamUpdateRsp:
		return &ConnParamUpdateRsp{}, nil
	case CodeLECreditConnReq:
		return &LECreditConnReq{
			SPSM: 0x0080, SCID: CIDDynamicFirst,
			MTU: MinACLMTU, MPS: MinACLMTU, InitialCredits: 1,
		}, nil
	case CodeLECreditConnRsp:
		return &LECreditConnRsp{
			DCID: CIDDynamicFirst,
			MTU:  MinACLMTU, MPS: MinACLMTU, InitialCredits: 1,
		}, nil
	case CodeFlowControlCredit:
		return &FlowControlCredit{CID: CIDDynamicFirst, Credits: 1}, nil
	case CodeCreditBasedConnReq:
		return &CreditBasedConnReq{
			SPSM: 0x0080,
			MTU:  MinACLMTU, MPS: MinACLMTU, InitialCredits: 1,
			SCIDs: []CID{CIDDynamicFirst},
		}, nil
	case CodeCreditBasedConnRsp:
		return &CreditBasedConnRsp{
			MTU: MinACLMTU, MPS: MinACLMTU, InitialCredits: 1,
			DCIDs: []CID{CIDDynamicFirst},
		}, nil
	case CodeCreditBasedReconfReq:
		return &CreditBasedReconfReq{
			MTU: MinACLMTU, MPS: MinACLMTU,
			DCIDs: []CID{CIDDynamicFirst},
		}, nil
	case CodeCreditBasedReconfRsp:
		return &CreditBasedReconfRsp{}, nil
	default:
		return nil, fmt.Errorf("%w: 0x%02X", ErrUnknownCode, uint8(code))
	}
}
