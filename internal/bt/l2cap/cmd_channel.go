package l2cap

var (
	_ Command = (*CreateChannelReq)(nil)
	_ Command = (*CreateChannelRsp)(nil)
	_ Command = (*MoveChannelReq)(nil)
	_ Command = (*MoveChannelRsp)(nil)
	_ Command = (*MoveChannelConfirmReq)(nil)
	_ Command = (*MoveChannelConfirmRsp)(nil)
)

// ControllerID names a physical controller in AMP create/move commands.
// Zero is the BR/EDR controller; non-zero values name AMP controllers.
// It is the CONT ID member of the paper's MC field set.
type ControllerID = uint8

// CreateChannelReq (code 0x0C) opens a channel on a specific controller.
// The paper's D3 (Galaxy S7) zero-day was triggered by a malformed
// Create Channel Request in the WAIT_CREATE state — a command and state
// only L2Fuzz exercises among the compared fuzzers.
type CreateChannelReq struct {
	// PSM is the target service port.
	PSM PSM
	// SCID is the requester-side channel endpoint.
	SCID CID
	// ControllerID selects the controller to carry the channel.
	ControllerID ControllerID
}

// Code implements Command.
func (*CreateChannelReq) Code() CommandCode { return CodeCreateChannelReq }

// MarshalData implements Command.
func (c *CreateChannelReq) MarshalData() []byte { return c.AppendData(nil) }

// AppendData implements Command.
func (c *CreateChannelReq) AppendData(dst []byte) []byte {
	dst = putU16(dst, uint16(c.PSM))
	dst = putU16(dst, uint16(c.SCID))
	return append(dst, c.ControllerID)
}

// UnmarshalData implements Command.
func (c *CreateChannelReq) UnmarshalData(data []byte) error {
	if err := wantLen(CodeCreateChannelReq, data, 5); err != nil {
		return err
	}
	c.PSM = PSM(getU16(data, 0))
	c.SCID = CID(getU16(data, 2))
	c.ControllerID = data[4]
	return nil
}

// CoreFields implements Command.
func (c *CreateChannelReq) CoreFields() CoreFields {
	return CoreFields{
		PSM:           &c.PSM,
		CIDs:          []*CID{&c.SCID},
		ControllerIDs: []*uint8{&c.ControllerID},
	}
}

// CreateChannelRsp (code 0x0D) answers a CreateChannelReq.
type CreateChannelRsp struct {
	// DCID is the responder-side endpoint allocated for the channel.
	DCID CID
	// SCID echoes the requester's endpoint.
	SCID CID
	// Result reports the outcome.
	Result ConnResult
	// Status qualifies a pending result.
	Status uint16
}

// Code implements Command.
func (*CreateChannelRsp) Code() CommandCode { return CodeCreateChannelRsp }

// MarshalData implements Command.
func (c *CreateChannelRsp) MarshalData() []byte { return c.AppendData(nil) }

// AppendData implements Command.
func (c *CreateChannelRsp) AppendData(dst []byte) []byte {
	dst = putU16(dst, uint16(c.DCID))
	dst = putU16(dst, uint16(c.SCID))
	dst = putU16(dst, uint16(c.Result))
	return putU16(dst, c.Status)
}

// UnmarshalData implements Command.
func (c *CreateChannelRsp) UnmarshalData(data []byte) error {
	if err := wantLen(CodeCreateChannelRsp, data, 8); err != nil {
		return err
	}
	c.DCID = CID(getU16(data, 0))
	c.SCID = CID(getU16(data, 2))
	c.Result = ConnResult(getU16(data, 4))
	c.Status = getU16(data, 6)
	return nil
}

// CoreFields implements Command.
func (c *CreateChannelRsp) CoreFields() CoreFields {
	return CoreFields{CIDs: []*CID{&c.DCID, &c.SCID}}
}

// MoveChannelReq (code 0x0E) asks to move a channel to another controller.
type MoveChannelReq struct {
	// ICID is the initiator-side endpoint of the channel being moved.
	ICID CID
	// DestControllerID is the controller the channel should move to.
	DestControllerID ControllerID
}

// Code implements Command.
func (*MoveChannelReq) Code() CommandCode { return CodeMoveChannelReq }

// MarshalData implements Command.
func (c *MoveChannelReq) MarshalData() []byte { return c.AppendData(nil) }

// AppendData implements Command.
func (c *MoveChannelReq) AppendData(dst []byte) []byte {
	dst = putU16(dst, uint16(c.ICID))
	return append(dst, c.DestControllerID)
}

// UnmarshalData implements Command.
func (c *MoveChannelReq) UnmarshalData(data []byte) error {
	if err := wantLen(CodeMoveChannelReq, data, 3); err != nil {
		return err
	}
	c.ICID = CID(getU16(data, 0))
	c.DestControllerID = data[2]
	return nil
}

// CoreFields implements Command.
func (c *MoveChannelReq) CoreFields() CoreFields {
	return CoreFields{
		CIDs:          []*CID{&c.ICID},
		ControllerIDs: []*uint8{&c.DestControllerID},
	}
}

// MoveChannelRsp (code 0x0F) answers a MoveChannelReq.
type MoveChannelRsp struct {
	// ICID echoes the moved channel's initiator-side endpoint.
	ICID CID
	// Result reports the outcome.
	Result MoveResult
}

// Code implements Command.
func (*MoveChannelRsp) Code() CommandCode { return CodeMoveChannelRsp }

// MarshalData implements Command.
func (c *MoveChannelRsp) MarshalData() []byte { return c.AppendData(nil) }

// AppendData implements Command.
func (c *MoveChannelRsp) AppendData(dst []byte) []byte {
	dst = putU16(dst, uint16(c.ICID))
	return putU16(dst, uint16(c.Result))
}

// UnmarshalData implements Command.
func (c *MoveChannelRsp) UnmarshalData(data []byte) error {
	if err := wantLen(CodeMoveChannelRsp, data, 4); err != nil {
		return err
	}
	c.ICID = CID(getU16(data, 0))
	c.Result = MoveResult(getU16(data, 2))
	return nil
}

// CoreFields implements Command.
func (c *MoveChannelRsp) CoreFields() CoreFields {
	return CoreFields{CIDs: []*CID{&c.ICID}}
}

// MoveChannelConfirmReq (code 0x10) confirms the final move outcome.
type MoveChannelConfirmReq struct {
	// ICID names the moved channel.
	ICID CID
	// Result is the confirmed outcome.
	Result MoveResult
}

// Code implements Command.
func (*MoveChannelConfirmReq) Code() CommandCode { return CodeMoveChannelConfirmReq }

// MarshalData implements Command.
func (c *MoveChannelConfirmReq) MarshalData() []byte { return c.AppendData(nil) }

// AppendData implements Command.
func (c *MoveChannelConfirmReq) AppendData(dst []byte) []byte {
	dst = putU16(dst, uint16(c.ICID))
	return putU16(dst, uint16(c.Result))
}

// UnmarshalData implements Command.
func (c *MoveChannelConfirmReq) UnmarshalData(data []byte) error {
	if err := wantLen(CodeMoveChannelConfirmReq, data, 4); err != nil {
		return err
	}
	c.ICID = CID(getU16(data, 0))
	c.Result = MoveResult(getU16(data, 2))
	return nil
}

// CoreFields implements Command.
func (c *MoveChannelConfirmReq) CoreFields() CoreFields {
	return CoreFields{CIDs: []*CID{&c.ICID}}
}

// MoveChannelConfirmRsp (code 0x11) acknowledges the confirmation.
type MoveChannelConfirmRsp struct {
	// ICID names the moved channel.
	ICID CID
}

// Code implements Command.
func (*MoveChannelConfirmRsp) Code() CommandCode { return CodeMoveChannelConfirmRsp }

// MarshalData implements Command.
func (c *MoveChannelConfirmRsp) MarshalData() []byte { return c.AppendData(nil) }

// AppendData implements Command.
func (c *MoveChannelConfirmRsp) AppendData(dst []byte) []byte {
	return putU16(dst, uint16(c.ICID))
}

// UnmarshalData implements Command.
func (c *MoveChannelConfirmRsp) UnmarshalData(data []byte) error {
	if err := wantLen(CodeMoveChannelConfirmRsp, data, 2); err != nil {
		return err
	}
	c.ICID = CID(getU16(data, 0))
	return nil
}

// CoreFields implements Command.
func (c *MoveChannelConfirmRsp) CoreFields() CoreFields {
	return CoreFields{CIDs: []*CID{&c.ICID}}
}
