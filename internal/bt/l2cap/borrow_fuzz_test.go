package l2cap

import (
	"bytes"
	"testing"
)

// FuzzDecodeBorrowDiscipline fuzzes the borrow/release discipline of the
// zero-copy signaling decode path. AppendSignals and Decoder.Decode are
// allowed to alias the input buffer, but MarshalData must hand back
// owned bytes: after the caller re-encodes a command, scribbling over
// the borrowed input buffer must not change the re-encoded bytes, and a
// fresh decode of a pristine copy must agree with them.
func FuzzDecodeBorrowDiscipline(f *testing.F) {
	f.Add(SignalPacket(1, &EchoReq{Data: []byte("seed")}, nil).Payload)
	f.Add(SignalPacket(2, &ConnectionReq{PSM: 0x0001, SCID: 0x0040}, []byte{0xDE, 0xAD}).Payload)
	f.Add(SignalPacket(3, &CommandReject{Reason: 2, ReasonData: []byte{1, 2, 3, 4}}, nil).Payload)
	f.Add([]byte{0x04, 0x09, 0x08, 0x00, 0x40, 0x00, 0x00, 0x00, 0x01, 0x02, 0x02, 0x00})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, payload []byte) {
		borrowed := append([]byte(nil), payload...)
		frames, err := AppendSignals(nil, borrowed)
		if err != nil {
			return
		}

		// Re-encode every decodable command while the borrow is live.
		var dec Decoder
		type snap struct {
			idx  int
			code CommandCode
			data []byte
		}
		var snaps []snap
		for i, fr := range frames {
			cmd, err := dec.Decode(fr)
			if err != nil {
				continue
			}
			snaps = append(snaps, snap{idx: i, code: fr.Code, data: cmd.MarshalData()})
		}

		// End of the borrow window: the buffer is reused for something else.
		for i := range borrowed {
			borrowed[i] ^= 0xFF
		}

		// A fresh decode of the pristine payload must agree with the bytes
		// snapshotted before the scribble — anything else means a command
		// retained the borrowed buffer past MarshalData.
		fresh, err := ParseSignals(payload)
		if err != nil {
			t.Fatalf("ParseSignals diverged on re-decode: %v", err)
		}
		for _, s := range snaps {
			cmd, err := DecodeCommand(fresh[s.idx])
			if err != nil {
				t.Fatalf("frame %d decoded once but not twice: %v", s.idx, err)
			}
			if got := cmd.MarshalData(); !bytes.Equal(got, s.data) {
				t.Fatalf("frame %d (%v): re-encoded bytes changed after the borrowed buffer was scribbled\n got %x\nwant %x",
					s.idx, s.code, got, s.data)
			}
		}
	})
}
