package l2cap

import (
	"encoding/binary"
	"fmt"
)

// Frame is one signaling command as carried on the signaling channel:
// a 4-byte command header (code, identifier, data length) followed by the
// declared data bytes and any trailing garbage beyond the declared length.
type Frame struct {
	// Code identifies the signaling command.
	Code CommandCode
	// Identifier matches responses to requests. Zero is illegal on the
	// wire; the spec requires a non-zero identifier.
	Identifier uint8
	// Data holds exactly the declared data-length bytes.
	Data []byte
	// Tail holds bytes that followed the declared data within the same
	// L2CAP payload — the garbage tail appended by core-field mutating.
	Tail []byte
}

// MarshalTo appends the wire form of the frame (including the tail) to dst
// and returns the extended slice.
func (f Frame) MarshalTo(dst []byte) []byte {
	var hdr [SignalHeaderSize]byte
	hdr[0] = uint8(f.Code)
	hdr[1] = f.Identifier
	binary.LittleEndian.PutUint16(hdr[2:4], uint16(len(f.Data)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, f.Data...)
	dst = append(dst, f.Tail...)
	return dst
}

// Marshal returns the wire form of the frame.
func (f Frame) Marshal() []byte {
	return f.MarshalTo(make([]byte, 0, SignalHeaderSize+len(f.Data)+len(f.Tail)))
}

// UnmarshalFrame decodes a single signaling frame from payload, treating
// every byte beyond the declared data length as Tail. Use ParseSignals for
// payloads that may pack several commands.
//
// Data and Tail alias payload (borrow semantics): the frame is valid only
// while payload is. Callers that retain the frame past the payload's
// lifetime must copy both slices.
func UnmarshalFrame(payload []byte) (Frame, error) {
	if len(payload) < SignalHeaderSize {
		return Frame{}, fmt.Errorf("%w: got %d bytes", ErrShortCommand, len(payload))
	}
	f := Frame{
		Code:       CommandCode(payload[0]),
		Identifier: payload[1],
	}
	dataLen := int(binary.LittleEndian.Uint16(payload[2:4]))
	rest := payload[SignalHeaderSize:]
	if dataLen > len(rest) {
		return Frame{}, fmt.Errorf("%w: declared %d, available %d",
			ErrDataLength, dataLen, len(rest))
	}
	f.Data = rest[:dataLen:dataLen]
	f.Tail = rest[dataLen:]
	return f, nil
}

// ParseSignals decodes the sequence of signaling frames packed into one
// signaling-channel payload. BR/EDR permits multiple commands per C-frame;
// parsing stops at the first frame that cannot be decoded, returning the
// frames decoded so far together with the error. A trailing fragment too
// short to be a command header is attributed to the previous frame's Tail
// (or reported as an error when there is no previous frame).
//
// Each frame's Data and Tail alias payload (borrow semantics): the frames
// are valid only while payload is. Callers that retain them must copy.
func ParseSignals(payload []byte) ([]Frame, error) {
	return AppendSignals(nil, payload)
}

// AppendSignals is ParseSignals with a caller-supplied destination: the
// decoded frames are appended to dst (usually a reused scratch slice with
// length 0), avoiding a slice allocation per payload on the hot path. The
// same borrow semantics apply: Data and Tail alias payload.
func AppendSignals(dst []Frame, payload []byte) ([]Frame, error) {
	base := len(dst)
	off := 0
	for off < len(payload) {
		rest := payload[off:]
		if len(rest) < SignalHeaderSize {
			if len(dst) == base {
				return dst[:base], fmt.Errorf("%w: got %d bytes", ErrShortCommand, len(rest))
			}
			last := &dst[len(dst)-1]
			last.Tail = appendTail(last.Tail, payload, off)
			return dst, nil
		}
		dataLen := int(binary.LittleEndian.Uint16(rest[2:4]))
		if SignalHeaderSize+dataLen > len(rest) {
			if len(dst) == base {
				return dst[:base], fmt.Errorf("%w: declared %d, available %d",
					ErrDataLength, dataLen, len(rest)-SignalHeaderSize)
			}
			last := &dst[len(dst)-1]
			last.Tail = appendTail(last.Tail, payload, off)
			return dst, nil
		}
		dst = append(dst, Frame{
			Code:       CommandCode(rest[0]),
			Identifier: rest[1],
			Data:       rest[SignalHeaderSize : SignalHeaderSize+dataLen : SignalHeaderSize+dataLen],
		})
		off += SignalHeaderSize + dataLen
	}
	return dst, nil
}

// appendTail extends a frame's tail with payload[off:]. When the existing
// tail already aliases payload and ends exactly at off — the only way this
// parser produces a non-empty tail — the extension is a re-slice; the
// empty-tail case borrows directly. (A copying append would silently break
// the borrow contract by mixing owned and aliased tails.)
func appendTail(tail, payload []byte, off int) []byte {
	if len(tail) == 0 {
		return payload[off:]
	}
	// tail is payload[off-len(tail) : off]; grow it in place.
	return payload[off-len(tail):]
}

// Command is one decoded signaling command. Implementations are the 26
// concrete command structs in this package; all use pointer receivers.
type Command interface {
	// Code returns the signaling command code.
	Code() CommandCode
	// MarshalData encodes the command's data fields (the bytes that follow
	// the 4-byte command header) into a fresh buffer.
	MarshalData() []byte
	// AppendData appends the command's data fields to dst and returns the
	// extended slice: the allocation-free form of MarshalData the packet
	// hot path uses.
	AppendData(dst []byte) []byte
	// UnmarshalData decodes the command's data fields. Variable-length
	// members ([]byte fields such as echo payloads and reject reason
	// data) alias the argument slice (borrow semantics): the decoded
	// command is valid only while data is. Callers that retain the
	// command past the buffer's lifetime must copy those fields.
	UnmarshalData(data []byte) error
	// CoreFields exposes the mutable-core (MC) fields of the command for
	// L2Fuzz's core-field mutating: the PSM (port) and every channel ID
	// carried in the payload (CIDP). Nil/empty members mean the command
	// has no such field.
	CoreFields() CoreFields
}

// CoreFields references a command's mutable-core fields in place, letting
// a mutator rewrite them without knowing the command layout.
type CoreFields struct {
	// PSM points at the command's port field, if any.
	PSM *PSM
	// CIDs points at every channel-ID-in-payload field (SCID, DCID, ICID),
	// in wire order.
	CIDs []*CID
	// ControllerIDs points at every controller-ID field (the CONT ID
	// member of MC in the paper's Figure 6).
	ControllerIDs []*uint8
}

// Empty reports whether the command exposes no mutable-core fields at all
// (echo and information commands, pure result responses).
func (c CoreFields) Empty() bool {
	return c.PSM == nil && len(c.CIDs) == 0 && len(c.ControllerIDs) == 0
}

// newCommand returns a zero-valued concrete command for code.
func newCommand(code CommandCode) (Command, error) {
	switch code {
	case CodeCommandReject:
		return &CommandReject{}, nil
	case CodeConnectionReq:
		return &ConnectionReq{}, nil
	case CodeConnectionRsp:
		return &ConnectionRsp{}, nil
	case CodeConfigurationReq:
		return &ConfigurationReq{}, nil
	case CodeConfigurationRsp:
		return &ConfigurationRsp{}, nil
	case CodeDisconnectionReq:
		return &DisconnectionReq{}, nil
	case CodeDisconnectionRsp:
		return &DisconnectionRsp{}, nil
	case CodeEchoReq:
		return &EchoReq{}, nil
	case CodeEchoRsp:
		return &EchoRsp{}, nil
	case CodeInformationReq:
		return &InformationReq{}, nil
	case CodeInformationRsp:
		return &InformationRsp{}, nil
	case CodeCreateChannelReq:
		return &CreateChannelReq{}, nil
	case CodeCreateChannelRsp:
		return &CreateChannelRsp{}, nil
	case CodeMoveChannelReq:
		return &MoveChannelReq{}, nil
	case CodeMoveChannelRsp:
		return &MoveChannelRsp{}, nil
	case CodeMoveChannelConfirmReq:
		return &MoveChannelConfirmReq{}, nil
	case CodeMoveChannelConfirmRsp:
		return &MoveChannelConfirmRsp{}, nil
	case CodeConnParamUpdateReq:
		return &ConnParamUpdateReq{}, nil
	case CodeConnParamUpdateRsp:
		return &ConnParamUpdateRsp{}, nil
	case CodeLECreditConnReq:
		return &LECreditConnReq{}, nil
	case CodeLECreditConnRsp:
		return &LECreditConnRsp{}, nil
	case CodeFlowControlCredit:
		return &FlowControlCredit{}, nil
	case CodeCreditBasedConnReq:
		return &CreditBasedConnReq{}, nil
	case CodeCreditBasedConnRsp:
		return &CreditBasedConnRsp{}, nil
	case CodeCreditBasedReconfReq:
		return &CreditBasedReconfReq{}, nil
	case CodeCreditBasedReconfRsp:
		return &CreditBasedReconfRsp{}, nil
	default:
		return nil, fmt.Errorf("%w: 0x%02X", ErrUnknownCode, uint8(code))
	}
}

// DecodeCommand turns a signaling frame into a freshly allocated concrete
// command. Hot paths that decode one frame at a time should prefer a
// reused Decoder.
func DecodeCommand(f Frame) (Command, error) {
	cmd, err := newCommand(f.Code)
	if err != nil {
		return nil, err
	}
	if err := cmd.UnmarshalData(f.Data); err != nil {
		return nil, fmt.Errorf("decode %v: %w", f.Code, err)
	}
	return cmd, nil
}

// Decoder decodes signaling frames into a per-code cache of command
// instances, so a packet-processing loop pays no allocation per decoded
// command. The returned command is owned by the decoder and overwritten
// by the next Decode of the same code: callers use it within the current
// handling step (or copy what they keep), exactly the window the borrow
// rule on UnmarshalData already imposes. A Decoder is not safe for
// concurrent use; give each device, sniffer, or client its own.
type Decoder struct {
	cache [256]Command
}

// Decode turns a signaling frame into its concrete command, reusing the
// decoder's cached instance for the frame's code.
func (d *Decoder) Decode(f Frame) (Command, error) {
	cmd := d.cache[f.Code]
	if cmd == nil {
		fresh, err := newCommand(f.Code)
		if err != nil {
			return nil, err
		}
		d.cache[f.Code] = fresh
		cmd = fresh
	}
	if err := cmd.UnmarshalData(f.Data); err != nil {
		return nil, fmt.Errorf("decode %v: %w", f.Code, err)
	}
	return cmd, nil
}

// EncodeFrame wraps a command into a signaling frame with the given
// identifier and optional garbage tail.
func EncodeFrame(id uint8, cmd Command, tail []byte) Frame {
	return Frame{
		Code:       cmd.Code(),
		Identifier: id,
		Data:       cmd.MarshalData(),
		Tail:       append([]byte(nil), tail...),
	}
}

// AppendSignalFrame appends the wire form of one signaling frame — the
// 4-byte command header, the command data, then the garbage tail beyond
// the declared length — to dst, returning the extended slice and the
// declared frame size (header + data, tail excluded). It is the
// allocation-free core of SignalPacket: hot paths hand it a reused
// scratch buffer.
func AppendSignalFrame(dst []byte, id uint8, cmd Command, tail []byte) (out []byte, declared int) {
	start := len(dst)
	dst = append(dst, uint8(cmd.Code()), id, 0, 0)
	dst = cmd.AppendData(dst)
	dataLen := len(dst) - start - SignalHeaderSize
	binary.LittleEndian.PutUint16(dst[start+2:start+4], uint16(dataLen))
	dst = append(dst, tail...)
	return dst, SignalHeaderSize + dataLen
}

// SignalPacket builds a complete basic frame carrying a single signaling
// command on the signaling channel. The declared lengths describe the
// command without the tail, reproducing the paper's Figure 7 layout where
// garbage lives beyond every declared length.
func SignalPacket(id uint8, cmd Command, tail []byte) Packet {
	payload, declared := AppendSignalFrame(nil, id, cmd, tail)
	return Packet{
		Length:    uint16(min(declared, MaxPayload)),
		ChannelID: CIDSignaling,
		Payload:   payload,
	}
}
