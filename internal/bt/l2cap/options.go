package l2cap

import "fmt"

// OptionType identifies a configuration option carried by Configuration
// Request/Response commands (Vol 3 Part A §5). In the paper's field
// classification all option payloads are mutable-application (MA) fields
// — MTU, FLAGS, QoS, OPT — which L2Fuzz keeps at default values.
type OptionType uint8

// Configuration option types.
const (
	// OptionMTU negotiates the incoming MTU.
	OptionMTU OptionType = 0x01
	// OptionFlushTimeout negotiates the flush timeout.
	OptionFlushTimeout OptionType = 0x02
	// OptionQoS negotiates quality-of-service parameters.
	OptionQoS OptionType = 0x03
	// OptionRetransmissionAndFlowControl negotiates mode parameters.
	OptionRetransmissionAndFlowControl OptionType = 0x04
	// OptionFCS negotiates the frame-check-sequence type.
	OptionFCS OptionType = 0x05
	// OptionExtendedFlowSpec negotiates an extended flow specification.
	OptionExtendedFlowSpec OptionType = 0x06
	// OptionExtendedWindowSize negotiates the extended window size.
	OptionExtendedWindowSize OptionType = 0x07
	// optionHintBit marks an option as a hint: unknown hints are skipped
	// rather than rejected.
	optionHintBit = 0x80
)

// expected payload sizes for known option types; -1 means variable.
func optionPayloadSize(t OptionType) int {
	switch t &^ optionHintBit {
	case OptionMTU:
		return 2
	case OptionFlushTimeout:
		return 2
	case OptionQoS:
		return 22
	case OptionRetransmissionAndFlowControl:
		return 9
	case OptionFCS:
		return 1
	case OptionExtendedFlowSpec:
		return 16
	case OptionExtendedWindowSize:
		return 2
	default:
		return -1
	}
}

// ConfigOption is one type-length-value configuration option.
type ConfigOption struct {
	// Type identifies the option; bit 7 marks it as a hint.
	Type OptionType
	// Value is the option payload.
	Value []byte
}

// IsHint reports whether the option may be skipped when unknown.
func (o ConfigOption) IsHint() bool { return o.Type&optionHintBit != 0 }

// WireSize is the encoded size of the option.
func (o ConfigOption) WireSize() int { return 2 + len(o.Value) }

// Known reports whether the option type (ignoring the hint bit) is one of
// the seven defined by Bluetooth 5.2 and whether its payload length
// matches the defined size.
func (o ConfigOption) Known() bool {
	want := optionPayloadSize(o.Type)
	return want >= 0 && want == len(o.Value)
}

// MTUOption builds the MTU configuration option.
func MTUOption(mtu uint16) ConfigOption {
	return ConfigOption{Type: OptionMTU, Value: putU16(nil, mtu)}
}

// FlushTimeoutOption builds the flush-timeout configuration option.
func FlushTimeoutOption(timeout uint16) ConfigOption {
	return ConfigOption{Type: OptionFlushTimeout, Value: putU16(nil, timeout)}
}

// MTUValue extracts the MTU from an OptionMTU value; ok is false when the
// option is not a well-formed MTU option.
func MTUValue(o ConfigOption) (mtu uint16, ok bool) {
	if o.Type&^optionHintBit != OptionMTU || len(o.Value) != 2 {
		return 0, false
	}
	return getU16(o.Value, 0), true
}

// appendOptions encodes options in order.
func appendOptions(dst []byte, opts []ConfigOption) []byte {
	for _, o := range opts {
		dst = append(dst, uint8(o.Type), uint8(len(o.Value)))
		dst = append(dst, o.Value...)
	}
	return dst
}

// ParseOptions decodes a configuration-option list. Unknown option types
// decode structurally (type, length, value) so a fuzzer's garbage options
// are observable; a length that overruns the buffer is an error. Option
// values alias data (borrow semantics): callers that retain them past the
// buffer's lifetime must copy.
func ParseOptions(data []byte) ([]ConfigOption, error) {
	return AppendParsedOptions(nil, data)
}

// AppendParsedOptions decodes a configuration-option list onto dst and
// returns the extended slice: the allocation-free form of ParseOptions
// decode loops use with a reused scratch slice. On error the appended
// prefix is discarded.
func AppendParsedOptions(dst []ConfigOption, data []byte) ([]ConfigOption, error) {
	opts := dst
	off := 0
	for off < len(data) {
		if len(data)-off < 2 {
			return dst, fmt.Errorf("%w: truncated option header at offset %d",
				ErrBadCommand, off)
		}
		t := OptionType(data[off])
		n := int(data[off+1])
		off += 2
		if n > len(data)-off {
			return dst, fmt.Errorf("%w: option 0x%02X length %d overruns payload",
				ErrBadCommand, uint8(t), n)
		}
		opts = append(opts, ConfigOption{
			Type:  t,
			Value: data[off : off+n : off+n],
		})
		off += n
	}
	return opts, nil
}
