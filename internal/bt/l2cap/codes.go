package l2cap

import "fmt"

// CommandCode identifies one of the 26 L2CAP signaling commands defined by
// Bluetooth 5.2 (Vol 3 Part A §4, Table 4.2).
type CommandCode uint8

// The 26 Bluetooth 5.2 signaling command codes.
const (
	CodeCommandReject         CommandCode = 0x01
	CodeConnectionReq         CommandCode = 0x02
	CodeConnectionRsp         CommandCode = 0x03
	CodeConfigurationReq      CommandCode = 0x04
	CodeConfigurationRsp      CommandCode = 0x05
	CodeDisconnectionReq      CommandCode = 0x06
	CodeDisconnectionRsp      CommandCode = 0x07
	CodeEchoReq               CommandCode = 0x08
	CodeEchoRsp               CommandCode = 0x09
	CodeInformationReq        CommandCode = 0x0A
	CodeInformationRsp        CommandCode = 0x0B
	CodeCreateChannelReq      CommandCode = 0x0C
	CodeCreateChannelRsp      CommandCode = 0x0D
	CodeMoveChannelReq        CommandCode = 0x0E
	CodeMoveChannelRsp        CommandCode = 0x0F
	CodeMoveChannelConfirmReq CommandCode = 0x10
	CodeMoveChannelConfirmRsp CommandCode = 0x11
	CodeConnParamUpdateReq    CommandCode = 0x12
	CodeConnParamUpdateRsp    CommandCode = 0x13
	CodeLECreditConnReq       CommandCode = 0x14
	CodeLECreditConnRsp       CommandCode = 0x15
	CodeFlowControlCredit     CommandCode = 0x16
	CodeCreditBasedConnReq    CommandCode = 0x17
	CodeCreditBasedConnRsp    CommandCode = 0x18
	CodeCreditBasedReconfReq  CommandCode = 0x19
	CodeCreditBasedReconfRsp  CommandCode = 0x1A
)

// NumCommandCodes is the number of signaling commands in Bluetooth 5.2.
const NumCommandCodes = 26

// AllCommandCodes returns every Bluetooth 5.2 signaling command code in
// ascending order. The slice is freshly allocated on each call so callers
// may mutate it.
func AllCommandCodes() []CommandCode {
	codes := make([]CommandCode, 0, NumCommandCodes)
	for c := CodeCommandReject; c <= CodeCreditBasedReconfRsp; c++ {
		codes = append(codes, c)
	}
	return codes
}

// Valid reports whether c is one of the 26 defined command codes.
func (c CommandCode) Valid() bool {
	return c >= CodeCommandReject && c <= CodeCreditBasedReconfRsp
}

// IsRequest reports whether c is a request (or indication) that expects a
// response, as opposed to a response/confirmation.
func (c CommandCode) IsRequest() bool {
	switch c {
	case CodeConnectionReq, CodeConfigurationReq, CodeDisconnectionReq,
		CodeEchoReq, CodeInformationReq, CodeCreateChannelReq,
		CodeMoveChannelReq, CodeMoveChannelConfirmReq,
		CodeConnParamUpdateReq, CodeLECreditConnReq,
		CodeCreditBasedConnReq, CodeCreditBasedReconfReq:
		return true
	default:
		return false
	}
}

// commandCodeNames is built once: String sits on the device's per-packet
// dispatch path (handler-coverage accounting), where a map literal per
// call dominated the farm's allocation profile.
var commandCodeNames = map[CommandCode]string{
	CodeCommandReject:         "CommandReject",
	CodeConnectionReq:         "ConnectionReq",
	CodeConnectionRsp:         "ConnectionRsp",
	CodeConfigurationReq:      "ConfigurationReq",
	CodeConfigurationRsp:      "ConfigurationRsp",
	CodeDisconnectionReq:      "DisconnectionReq",
	CodeDisconnectionRsp:      "DisconnectionRsp",
	CodeEchoReq:               "EchoReq",
	CodeEchoRsp:               "EchoRsp",
	CodeInformationReq:        "InformationReq",
	CodeInformationRsp:        "InformationRsp",
	CodeCreateChannelReq:      "CreateChannelReq",
	CodeCreateChannelRsp:      "CreateChannelRsp",
	CodeMoveChannelReq:        "MoveChannelReq",
	CodeMoveChannelRsp:        "MoveChannelRsp",
	CodeMoveChannelConfirmReq: "MoveChannelConfirmReq",
	CodeMoveChannelConfirmRsp: "MoveChannelConfirmRsp",
	CodeConnParamUpdateReq:    "ConnParamUpdateReq",
	CodeConnParamUpdateRsp:    "ConnParamUpdateRsp",
	CodeLECreditConnReq:       "LECreditConnReq",
	CodeLECreditConnRsp:       "LECreditConnRsp",
	CodeFlowControlCredit:     "FlowControlCredit",
	CodeCreditBasedConnReq:    "CreditBasedConnReq",
	CodeCreditBasedConnRsp:    "CreditBasedConnRsp",
	CodeCreditBasedReconfReq:  "CreditBasedReconfReq",
	CodeCreditBasedReconfRsp:  "CreditBasedReconfRsp",
}

func (c CommandCode) String() string {
	if n, ok := commandCodeNames[c]; ok {
		return n
	}
	return fmt.Sprintf("CommandCode(0x%02X)", uint8(c))
}

// RejectReason is the Reason field of a Command Reject response
// (Vol 3 Part A §4.1). The three reasons are the observable signals the
// paper's mutation-efficiency metric counts as "rejection packets".
type RejectReason uint16

const (
	// RejectNotUnderstood is sent when a device receives a command with an
	// unknown code or an undecodable layout — the fate of packets whose
	// fixed (F) or dependent (D) fields were mutated.
	RejectNotUnderstood RejectReason = 0x0000
	// RejectSignalingMTUExceeded is sent when a signaling packet exceeds
	// the signaling MTU; L2Fuzz bounds its garbage tails to stay below it.
	RejectSignalingMTUExceeded RejectReason = 0x0001
	// RejectInvalidCID is sent when a command references a channel
	// endpoint that does not exist on the device.
	RejectInvalidCID RejectReason = 0x0002
)

func (r RejectReason) String() string {
	switch r {
	case RejectNotUnderstood:
		return "Command not understood"
	case RejectSignalingMTUExceeded:
		return "Signaling MTU exceeded"
	case RejectInvalidCID:
		return "Invalid CID in request"
	default:
		return fmt.Sprintf("RejectReason(0x%04X)", uint16(r))
	}
}

// ConnResult is the Result field of connection-style responses
// (Connection Rsp, Create Channel Rsp).
type ConnResult uint16

const (
	// ConnResultSuccess indicates the connection was established.
	ConnResultSuccess ConnResult = 0x0000
	// ConnResultPending indicates the request is still being processed.
	ConnResultPending ConnResult = 0x0001
	// ConnResultPSMNotSupported indicates the PSM maps to no service.
	ConnResultPSMNotSupported ConnResult = 0x0002
	// ConnResultSecurityBlock indicates pairing/authentication is required.
	ConnResultSecurityBlock ConnResult = 0x0003
	// ConnResultNoResources indicates resource exhaustion (for example the
	// per-state channel cap that causes some L2Fuzz packets to be refused).
	ConnResultNoResources ConnResult = 0x0004
	// ConnResultNoController indicates an unsupported controller ID in a
	// Create Channel Request.
	ConnResultNoController ConnResult = 0x0005
	// ConnResultInvalidSCID indicates a malformed source channel ID.
	ConnResultInvalidSCID ConnResult = 0x0006
	// ConnResultSCIDInUse indicates the source channel ID is already used.
	ConnResultSCIDInUse ConnResult = 0x0007
)

func (r ConnResult) String() string {
	switch r {
	case ConnResultSuccess:
		return "Connection successful"
	case ConnResultPending:
		return "Connection pending"
	case ConnResultPSMNotSupported:
		return "PSM not supported"
	case ConnResultSecurityBlock:
		return "Security block"
	case ConnResultNoResources:
		return "No resources available"
	case ConnResultInvalidSCID:
		return "Invalid Source CID"
	case ConnResultSCIDInUse:
		return "Source CID already allocated"
	default:
		return fmt.Sprintf("ConnResult(0x%04X)", uint16(r))
	}
}

// ConfigResult is the Result field of a Configuration Response.
type ConfigResult uint16

const (
	// ConfigSuccess accepts the proposed options.
	ConfigSuccess ConfigResult = 0x0000
	// ConfigUnacceptableParams rejects the proposed option values.
	ConfigUnacceptableParams ConfigResult = 0x0001
	// ConfigRejected rejects configuration outright.
	ConfigRejected ConfigResult = 0x0002
	// ConfigUnknownOptions rejects unknown options.
	ConfigUnknownOptions ConfigResult = 0x0003
	// ConfigPending defers the decision; the BlueBorne motivating example
	// in §II-C abuses a malformed pending response.
	ConfigPending ConfigResult = 0x0004
	// ConfigFlowSpecRejected rejects the extended flow specification.
	ConfigFlowSpecRejected ConfigResult = 0x0005
)

// MoveResult is the Result field of move-channel responses.
type MoveResult uint16

const (
	// MoveResultSuccess indicates the move completed.
	MoveResultSuccess MoveResult = 0x0000
	// MoveResultPending indicates the move is in progress.
	MoveResultPending MoveResult = 0x0001
	// MoveResultRefusedControllerID indicates an unsupported controller.
	MoveResultRefusedControllerID MoveResult = 0x0002
	// MoveResultRefusedSameController rejects a move to the same controller.
	MoveResultRefusedSameController MoveResult = 0x0003
	// MoveResultRefusedNotAllowed rejects the move outright.
	MoveResultRefusedNotAllowed MoveResult = 0x0004
	// MoveResultRefusedCollision indicates a move collision.
	MoveResultRefusedCollision MoveResult = 0x0005
)

// InfoType is the InfoType field of Information Request/Response.
type InfoType uint16

const (
	// InfoTypeConnectionlessMTU queries the connectionless MTU.
	InfoTypeConnectionlessMTU InfoType = 0x0001
	// InfoTypeExtendedFeatures queries the extended feature mask.
	InfoTypeExtendedFeatures InfoType = 0x0002
	// InfoTypeFixedChannels queries the fixed channels bitmap.
	InfoTypeFixedChannels InfoType = 0x0003
)

// InfoResult is the Result field of an Information Response.
type InfoResult uint16

const (
	// InfoResultSuccess indicates the queried type is supported.
	InfoResultSuccess InfoResult = 0x0000
	// InfoResultNotSupported indicates the queried type is unsupported.
	InfoResultNotSupported InfoResult = 0x0001
)
