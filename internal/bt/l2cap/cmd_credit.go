package l2cap

import "fmt"

var (
	_ Command = (*ConnParamUpdateReq)(nil)
	_ Command = (*ConnParamUpdateRsp)(nil)
	_ Command = (*LECreditConnReq)(nil)
	_ Command = (*LECreditConnRsp)(nil)
	_ Command = (*FlowControlCredit)(nil)
	_ Command = (*CreditBasedConnReq)(nil)
	_ Command = (*CreditBasedConnRsp)(nil)
	_ Command = (*CreditBasedReconfReq)(nil)
	_ Command = (*CreditBasedReconfRsp)(nil)
)

// maxECREDChannels is the maximum number of channels one enhanced
// credit-based command may carry (Vol 3 Part A §4.25).
const maxECREDChannels = 5

// CreditFielder is implemented by the credit-based channel commands whose
// payloads carry flow-control negotiation values — SPSM, MTU, MPS and
// CREDIT, the mutable-application (MA) fields of the paper's Table I for
// the LE/enhanced credit-based command family. CreditFields returns
// pointers into the command so a mutator can overwrite the values in
// place, mirroring how CoreFields exposes the protocol-core fields.
//
// Result fields are excluded: they encode an outcome, not a negotiated
// quantity, and the classification keeps them fixed-application.
type CreditFielder interface {
	Command
	// CreditFields returns in-place references to the command's
	// credit-negotiation fields, in wire order.
	CreditFields() []*uint16
}

var (
	_ CreditFielder = (*LECreditConnReq)(nil)
	_ CreditFielder = (*LECreditConnRsp)(nil)
	_ CreditFielder = (*FlowControlCredit)(nil)
	_ CreditFielder = (*CreditBasedConnReq)(nil)
	_ CreditFielder = (*CreditBasedConnRsp)(nil)
	_ CreditFielder = (*CreditBasedReconfReq)(nil)
)

// ConnParamUpdateReq (code 0x12) proposes new connection parameters.
// All four members are mutable-application (MA) fields in the paper's
// classification: INTERVAL, LATENCY and TIMEOUT.
type ConnParamUpdateReq struct {
	// IntervalMin is the minimum connection interval, in 1.25 ms units.
	IntervalMin uint16
	// IntervalMax is the maximum connection interval, in 1.25 ms units.
	IntervalMax uint16
	// Latency is the peripheral latency in connection events.
	Latency uint16
	// Timeout is the supervision timeout in 10 ms units.
	Timeout uint16
}

// Code implements Command.
func (*ConnParamUpdateReq) Code() CommandCode { return CodeConnParamUpdateReq }

// MarshalData implements Command.
func (c *ConnParamUpdateReq) MarshalData() []byte { return c.AppendData(nil) }

// AppendData implements Command.
func (c *ConnParamUpdateReq) AppendData(dst []byte) []byte {
	dst = putU16(dst, c.IntervalMin)
	dst = putU16(dst, c.IntervalMax)
	dst = putU16(dst, c.Latency)
	return putU16(dst, c.Timeout)
}

// UnmarshalData implements Command.
func (c *ConnParamUpdateReq) UnmarshalData(data []byte) error {
	if err := wantLen(CodeConnParamUpdateReq, data, 8); err != nil {
		return err
	}
	c.IntervalMin = getU16(data, 0)
	c.IntervalMax = getU16(data, 2)
	c.Latency = getU16(data, 4)
	c.Timeout = getU16(data, 6)
	return nil
}

// CoreFields implements Command.
func (c *ConnParamUpdateReq) CoreFields() CoreFields { return CoreFields{} }

// ConnParamUpdateRsp (code 0x13) accepts or rejects the parameter update.
type ConnParamUpdateRsp struct {
	// Result is zero for accepted, one for rejected.
	Result uint16
}

// Code implements Command.
func (*ConnParamUpdateRsp) Code() CommandCode { return CodeConnParamUpdateRsp }

// MarshalData implements Command.
func (c *ConnParamUpdateRsp) MarshalData() []byte { return c.AppendData(nil) }

// AppendData implements Command.
func (c *ConnParamUpdateRsp) AppendData(dst []byte) []byte { return putU16(dst, c.Result) }

// UnmarshalData implements Command.
func (c *ConnParamUpdateRsp) UnmarshalData(data []byte) error {
	if err := wantLen(CodeConnParamUpdateRsp, data, 2); err != nil {
		return err
	}
	c.Result = getU16(data, 0)
	return nil
}

// CoreFields implements Command.
func (c *ConnParamUpdateRsp) CoreFields() CoreFields { return CoreFields{} }

// LECreditConnReq (code 0x14) opens an LE credit-based channel. SPSM,
// MTU, MPS and CREDIT are MA fields per the paper; the SCID is CIDP.
type LECreditConnReq struct {
	// SPSM is the simplified PSM of the target service.
	SPSM uint16
	// SCID is the requester-side endpoint.
	SCID CID
	// MTU is the maximum transmission unit the requester can receive.
	MTU uint16
	// MPS is the maximum PDU size the requester can receive.
	MPS uint16
	// InitialCredits seeds the flow-control credit count.
	InitialCredits uint16
}

// Code implements Command.
func (*LECreditConnReq) Code() CommandCode { return CodeLECreditConnReq }

// MarshalData implements Command.
func (c *LECreditConnReq) MarshalData() []byte { return c.AppendData(nil) }

// AppendData implements Command.
func (c *LECreditConnReq) AppendData(dst []byte) []byte {
	dst = putU16(dst, c.SPSM)
	dst = putU16(dst, uint16(c.SCID))
	dst = putU16(dst, c.MTU)
	dst = putU16(dst, c.MPS)
	return putU16(dst, c.InitialCredits)
}

// UnmarshalData implements Command.
func (c *LECreditConnReq) UnmarshalData(data []byte) error {
	if err := wantLen(CodeLECreditConnReq, data, 10); err != nil {
		return err
	}
	c.SPSM = getU16(data, 0)
	c.SCID = CID(getU16(data, 2))
	c.MTU = getU16(data, 4)
	c.MPS = getU16(data, 6)
	c.InitialCredits = getU16(data, 8)
	return nil
}

// CoreFields implements Command.
func (c *LECreditConnReq) CoreFields() CoreFields {
	return CoreFields{CIDs: []*CID{&c.SCID}}
}

// CreditFields implements CreditFielder.
func (c *LECreditConnReq) CreditFields() []*uint16 {
	return []*uint16{&c.SPSM, &c.MTU, &c.MPS, &c.InitialCredits}
}

// LECreditConnRsp (code 0x15) answers an LECreditConnReq.
type LECreditConnRsp struct {
	// DCID is the responder-side endpoint.
	DCID CID
	// MTU is the responder's maximum transmission unit.
	MTU uint16
	// MPS is the responder's maximum PDU size.
	MPS uint16
	// InitialCredits seeds the responder's credit count.
	InitialCredits uint16
	// Result reports the outcome.
	Result uint16
}

// Code implements Command.
func (*LECreditConnRsp) Code() CommandCode { return CodeLECreditConnRsp }

// MarshalData implements Command.
func (c *LECreditConnRsp) MarshalData() []byte { return c.AppendData(nil) }

// AppendData implements Command.
func (c *LECreditConnRsp) AppendData(dst []byte) []byte {
	dst = putU16(dst, uint16(c.DCID))
	dst = putU16(dst, c.MTU)
	dst = putU16(dst, c.MPS)
	dst = putU16(dst, c.InitialCredits)
	return putU16(dst, c.Result)
}

// UnmarshalData implements Command.
func (c *LECreditConnRsp) UnmarshalData(data []byte) error {
	if err := wantLen(CodeLECreditConnRsp, data, 10); err != nil {
		return err
	}
	c.DCID = CID(getU16(data, 0))
	c.MTU = getU16(data, 2)
	c.MPS = getU16(data, 4)
	c.InitialCredits = getU16(data, 6)
	c.Result = getU16(data, 8)
	return nil
}

// CoreFields implements Command.
func (c *LECreditConnRsp) CoreFields() CoreFields {
	return CoreFields{CIDs: []*CID{&c.DCID}}
}

// CreditFields implements CreditFielder.
func (c *LECreditConnRsp) CreditFields() []*uint16 {
	return []*uint16{&c.MTU, &c.MPS, &c.InitialCredits}
}

// FlowControlCredit (code 0x16) grants additional credits on a
// credit-based channel. Its CID names a channel endpoint in the payload,
// so it belongs to the CIDP set.
type FlowControlCredit struct {
	// CID is the channel receiving credits.
	CID CID
	// Credits is the number of additional credits granted.
	Credits uint16
}

// Code implements Command.
func (*FlowControlCredit) Code() CommandCode { return CodeFlowControlCredit }

// MarshalData implements Command.
func (c *FlowControlCredit) MarshalData() []byte { return c.AppendData(nil) }

// AppendData implements Command.
func (c *FlowControlCredit) AppendData(dst []byte) []byte {
	dst = putU16(dst, uint16(c.CID))
	return putU16(dst, c.Credits)
}

// UnmarshalData implements Command.
func (c *FlowControlCredit) UnmarshalData(data []byte) error {
	if err := wantLen(CodeFlowControlCredit, data, 4); err != nil {
		return err
	}
	c.CID = CID(getU16(data, 0))
	c.Credits = getU16(data, 2)
	return nil
}

// CoreFields implements Command.
func (c *FlowControlCredit) CoreFields() CoreFields {
	return CoreFields{CIDs: []*CID{&c.CID}}
}

// CreditFields implements CreditFielder.
func (c *FlowControlCredit) CreditFields() []*uint16 {
	return []*uint16{&c.Credits}
}

// cidSliceRefs converts a CID slice into per-element pointers for
// CoreFields.
func cidSliceRefs(cids []CID) []*CID {
	refs := make([]*CID, len(cids))
	for i := range cids {
		refs[i] = &cids[i]
	}
	return refs
}

// marshalCIDs appends each CID in wire order.
func marshalCIDs(dst []byte, cids []CID) []byte {
	for _, cid := range cids {
		dst = putU16(dst, uint16(cid))
	}
	return dst
}

// unmarshalCIDs decodes the trailing CID list of an enhanced credit-based
// command.
func unmarshalCIDs(code CommandCode, data []byte) ([]CID, error) {
	if len(data)%2 != 0 {
		return nil, fmt.Errorf("%w: %v CID list has odd length %d",
			ErrBadCommand, code, len(data))
	}
	n := len(data) / 2
	if n > maxECREDChannels {
		return nil, fmt.Errorf("%w: %v carries %d CIDs, max %d",
			ErrBadCommand, code, n, maxECREDChannels)
	}
	cids := make([]CID, n)
	for i := 0; i < n; i++ {
		cids[i] = CID(getU16(data, 2*i))
	}
	return cids, nil
}

// CreditBasedConnReq (code 0x17) opens up to five enhanced credit-based
// channels in one transaction.
type CreditBasedConnReq struct {
	// SPSM is the simplified PSM of the target service.
	SPSM uint16
	// MTU is the requester's maximum transmission unit.
	MTU uint16
	// MPS is the requester's maximum PDU size.
	MPS uint16
	// InitialCredits seeds the credit count.
	InitialCredits uint16
	// SCIDs lists the requester-side endpoints, one per channel.
	SCIDs []CID
}

// Code implements Command.
func (*CreditBasedConnReq) Code() CommandCode { return CodeCreditBasedConnReq }

// MarshalData implements Command.
func (c *CreditBasedConnReq) MarshalData() []byte { return c.AppendData(nil) }

// AppendData implements Command.
func (c *CreditBasedConnReq) AppendData(dst []byte) []byte {
	dst = putU16(dst, c.SPSM)
	dst = putU16(dst, c.MTU)
	dst = putU16(dst, c.MPS)
	dst = putU16(dst, c.InitialCredits)
	return marshalCIDs(dst, c.SCIDs)
}

// UnmarshalData implements Command.
func (c *CreditBasedConnReq) UnmarshalData(data []byte) error {
	if err := wantMinLen(CodeCreditBasedConnReq, data, 8); err != nil {
		return err
	}
	c.SPSM = getU16(data, 0)
	c.MTU = getU16(data, 2)
	c.MPS = getU16(data, 4)
	c.InitialCredits = getU16(data, 6)
	cids, err := unmarshalCIDs(CodeCreditBasedConnReq, data[8:])
	if err != nil {
		return err
	}
	c.SCIDs = cids
	return nil
}

// CoreFields implements Command.
func (c *CreditBasedConnReq) CoreFields() CoreFields {
	return CoreFields{CIDs: cidSliceRefs(c.SCIDs)}
}

// CreditFields implements CreditFielder.
func (c *CreditBasedConnReq) CreditFields() []*uint16 {
	return []*uint16{&c.SPSM, &c.MTU, &c.MPS, &c.InitialCredits}
}

// CreditBasedConnRsp (code 0x18) answers a CreditBasedConnReq.
type CreditBasedConnRsp struct {
	// MTU is the responder's maximum transmission unit.
	MTU uint16
	// MPS is the responder's maximum PDU size.
	MPS uint16
	// InitialCredits seeds the responder's credit count.
	InitialCredits uint16
	// Result reports the outcome.
	Result uint16
	// DCIDs lists the responder-side endpoints, one per accepted channel.
	DCIDs []CID
}

// Code implements Command.
func (*CreditBasedConnRsp) Code() CommandCode { return CodeCreditBasedConnRsp }

// MarshalData implements Command.
func (c *CreditBasedConnRsp) MarshalData() []byte { return c.AppendData(nil) }

// AppendData implements Command.
func (c *CreditBasedConnRsp) AppendData(dst []byte) []byte {
	dst = putU16(dst, c.MTU)
	dst = putU16(dst, c.MPS)
	dst = putU16(dst, c.InitialCredits)
	dst = putU16(dst, c.Result)
	return marshalCIDs(dst, c.DCIDs)
}

// UnmarshalData implements Command.
func (c *CreditBasedConnRsp) UnmarshalData(data []byte) error {
	if err := wantMinLen(CodeCreditBasedConnRsp, data, 8); err != nil {
		return err
	}
	c.MTU = getU16(data, 0)
	c.MPS = getU16(data, 2)
	c.InitialCredits = getU16(data, 4)
	c.Result = getU16(data, 6)
	cids, err := unmarshalCIDs(CodeCreditBasedConnRsp, data[8:])
	if err != nil {
		return err
	}
	c.DCIDs = cids
	return nil
}

// CoreFields implements Command.
func (c *CreditBasedConnRsp) CoreFields() CoreFields {
	return CoreFields{CIDs: cidSliceRefs(c.DCIDs)}
}

// CreditFields implements CreditFielder.
func (c *CreditBasedConnRsp) CreditFields() []*uint16 {
	return []*uint16{&c.MTU, &c.MPS, &c.InitialCredits}
}

// CreditBasedReconfReq (code 0x19) renegotiates MTU/MPS on enhanced
// credit-based channels.
type CreditBasedReconfReq struct {
	// MTU is the new maximum transmission unit.
	MTU uint16
	// MPS is the new maximum PDU size.
	MPS uint16
	// DCIDs lists the channels being reconfigured.
	DCIDs []CID
}

// Code implements Command.
func (*CreditBasedReconfReq) Code() CommandCode { return CodeCreditBasedReconfReq }

// MarshalData implements Command.
func (c *CreditBasedReconfReq) MarshalData() []byte { return c.AppendData(nil) }

// AppendData implements Command.
func (c *CreditBasedReconfReq) AppendData(dst []byte) []byte {
	dst = putU16(dst, c.MTU)
	dst = putU16(dst, c.MPS)
	return marshalCIDs(dst, c.DCIDs)
}

// UnmarshalData implements Command.
func (c *CreditBasedReconfReq) UnmarshalData(data []byte) error {
	if err := wantMinLen(CodeCreditBasedReconfReq, data, 4); err != nil {
		return err
	}
	c.MTU = getU16(data, 0)
	c.MPS = getU16(data, 2)
	cids, err := unmarshalCIDs(CodeCreditBasedReconfReq, data[4:])
	if err != nil {
		return err
	}
	c.DCIDs = cids
	return nil
}

// CoreFields implements Command.
func (c *CreditBasedReconfReq) CoreFields() CoreFields {
	return CoreFields{CIDs: cidSliceRefs(c.DCIDs)}
}

// CreditFields implements CreditFielder.
func (c *CreditBasedReconfReq) CreditFields() []*uint16 {
	return []*uint16{&c.MTU, &c.MPS}
}

// CreditBasedReconfRsp (code 0x1A) answers a CreditBasedReconfReq.
type CreditBasedReconfRsp struct {
	// Result reports the outcome.
	Result uint16
}

// Code implements Command.
func (*CreditBasedReconfRsp) Code() CommandCode { return CodeCreditBasedReconfRsp }

// MarshalData implements Command.
func (c *CreditBasedReconfRsp) MarshalData() []byte { return c.AppendData(nil) }

// AppendData implements Command.
func (c *CreditBasedReconfRsp) AppendData(dst []byte) []byte { return putU16(dst, c.Result) }

// UnmarshalData implements Command.
func (c *CreditBasedReconfRsp) UnmarshalData(data []byte) error {
	if err := wantLen(CodeCreditBasedReconfRsp, data, 2); err != nil {
		return err
	}
	c.Result = getU16(data, 0)
	return nil
}

// CoreFields implements Command.
func (c *CreditBasedReconfRsp) CoreFields() CoreFields { return CoreFields{} }
