package l2cap

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Binary layout constants for the L2CAP basic frame (paper Figure 3).
const (
	// HeaderSize is the size of the basic L2CAP header: a 2-byte payload
	// length followed by a 2-byte channel ID.
	HeaderSize = 4
	// SignalHeaderSize is the size of a signaling command header: code,
	// identifier and a 2-byte data length.
	SignalHeaderSize = 4
	// MaxPayload is the maximum L2CAP payload length (65,535 bytes).
	MaxPayload = 0xFFFF
	// DefaultSignalingMTU is the minimum signaling MTU on ACL-U links
	// (MTUsig, Vol 3 Part A §4): every stack must accept signaling packets
	// up to this size, and may reject larger ones with "Signaling MTU
	// exceeded". L2Fuzz bounds its garbage tails so the mutated packet
	// stays within this limit.
	DefaultSignalingMTU = 672
	// MinACLMTU is the minimal MTU every L2CAP implementation must
	// support on connection-oriented channels.
	MinACLMTU = 48
)

// Common decode errors.
var (
	// ErrShortPacket indicates fewer bytes than the basic header requires.
	ErrShortPacket = errors.New("l2cap: packet shorter than basic header")
	// ErrLengthMismatch indicates the declared payload length exceeds the
	// bytes actually present.
	ErrLengthMismatch = errors.New("l2cap: declared payload length exceeds available bytes")
	// ErrShortCommand indicates a signaling payload shorter than the
	// 4-byte command header.
	ErrShortCommand = errors.New("l2cap: signaling payload shorter than command header")
	// ErrDataLength indicates a signaling command whose declared data
	// length exceeds the remaining payload bytes.
	ErrDataLength = errors.New("l2cap: command data length exceeds payload")
	// ErrBadCommand indicates command data that does not decode as the
	// layout its code requires.
	ErrBadCommand = errors.New("l2cap: malformed command data")
	// ErrUnknownCode indicates a command code outside the 26 defined ones.
	ErrUnknownCode = errors.New("l2cap: unknown command code")
)

// Packet is one L2CAP basic frame: the 4-byte header plus payload bytes.
//
// The Length field of the wire header is kept explicit rather than being
// derived from len(Payload): L2Fuzz keeps dependent fields at their
// original values while appending garbage, so the declared length and the
// actual byte count legitimately diverge in test packets. Use NewPacket to
// build a consistent frame and AppendGarbage to grow the payload without
// touching the declared length.
type Packet struct {
	// Length is the declared payload length from the wire header.
	Length uint16
	// ChannelID is the destination channel endpoint of the frame.
	ChannelID CID
	// Payload holds every byte after the header, including any trailing
	// garbage beyond the declared Length.
	Payload []byte
}

// NewPacket builds a consistent basic frame whose declared length matches
// the payload.
func NewPacket(cid CID, payload []byte) Packet {
	return Packet{
		Length:    uint16(min(len(payload), MaxPayload)),
		ChannelID: cid,
		Payload:   payload,
	}
}

// AppendGarbage returns a copy of p with tail appended to the payload
// while the declared header length stays unchanged — exactly the shape
// L2Fuzz's core-field mutating produces (paper Figure 7). The original
// packet is not modified.
func (p Packet) AppendGarbage(tail []byte) Packet {
	payload := make([]byte, 0, len(p.Payload)+len(tail))
	payload = append(payload, p.Payload...)
	payload = append(payload, tail...)
	p.Payload = payload
	return p
}

// TrailingGarbage returns the payload bytes beyond the declared length,
// or nil when the declared length covers (or exceeds) the payload.
func (p Packet) TrailingGarbage() []byte {
	if int(p.Length) >= len(p.Payload) {
		return nil
	}
	return p.Payload[p.Length:]
}

// WireSize returns the number of bytes Marshal will produce.
func (p Packet) WireSize() int { return HeaderSize + len(p.Payload) }

// Marshal encodes the frame into a fresh wire-byte buffer. Hot paths use
// AppendTo with a reused scratch buffer instead.
func (p Packet) Marshal() []byte {
	return p.AppendTo(make([]byte, 0, HeaderSize+len(p.Payload)))
}

// AppendTo appends the wire form of the frame to dst and returns the
// extended slice: the allocation-free marshal of the packet hot path.
func (p Packet) AppendTo(dst []byte) []byte {
	var hdr [HeaderSize]byte
	binary.LittleEndian.PutUint16(hdr[0:2], p.Length)
	binary.LittleEndian.PutUint16(hdr[2:4], uint16(p.ChannelID))
	dst = append(dst, hdr[:]...)
	return append(dst, p.Payload...)
}

// UnmarshalPacket decodes one basic frame from raw bytes. The payload
// slice is copied, so the caller keeps ownership of raw; decode loops
// that only inspect the frame use ParsePacket instead.
//
// A frame whose declared length exceeds the available bytes fails with
// ErrLengthMismatch; a frame with *extra* bytes beyond the declared length
// decodes successfully and reports them via TrailingGarbage, mirroring how
// permissive stacks treat garbage tails.
func UnmarshalPacket(raw []byte) (Packet, error) {
	p, err := ParsePacket(raw)
	if err != nil {
		return Packet{}, err
	}
	p.Payload = append([]byte(nil), p.Payload...)
	return p, nil
}

// ParsePacket decodes one basic frame without copying: the returned
// packet's Payload aliases raw (borrow semantics) and is valid only while
// raw is. Callers that retain the packet past the buffer's lifetime —
// inboxes, traces, any cross-packet state — must copy the payload. The
// validation rules match UnmarshalPacket.
func ParsePacket(raw []byte) (Packet, error) {
	if len(raw) < HeaderSize {
		return Packet{}, fmt.Errorf("%w: got %d bytes", ErrShortPacket, len(raw))
	}
	p := Packet{
		Length:    binary.LittleEndian.Uint16(raw[0:2]),
		ChannelID: CID(binary.LittleEndian.Uint16(raw[2:4])),
		Payload:   raw[HeaderSize:],
	}
	if int(p.Length) > len(p.Payload) {
		return Packet{}, fmt.Errorf("%w: declared %d, available %d",
			ErrLengthMismatch, p.Length, len(p.Payload))
	}
	return p, nil
}

// IsSignaling reports whether the frame is addressed to the ACL-U
// signaling channel.
func (p Packet) IsSignaling() bool { return p.ChannelID == CIDSignaling }
