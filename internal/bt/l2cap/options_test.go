package l2cap

import (
	"bytes"
	"errors"
	"testing"
)

func TestOptionsRoundTrip(t *testing.T) {
	in := []ConfigOption{
		MTUOption(1024),
		FlushTimeoutOption(0xFFFF),
		{Type: OptionFCS, Value: []byte{0x01}},
		{Type: OptionQoS, Value: make([]byte, 22)},
		{Type: 0x55 | 0x80, Value: []byte{1, 2, 3}}, // unknown hint
	}
	out, err := ParseOptions(appendOptions(nil, in))
	if err != nil {
		t.Fatalf("ParseOptions() error = %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("len(out) = %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Type != in[i].Type || !bytes.Equal(out[i].Value, in[i].Value) {
			t.Errorf("option[%d] = %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestParseOptionsErrors(t *testing.T) {
	tests := []struct {
		name string
		data []byte
	}{
		{name: "truncated header", data: []byte{0x01}},
		{name: "length overrun", data: []byte{0x01, 0x05, 0x00}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseOptions(tt.data); !errors.Is(err, ErrBadCommand) {
				t.Fatalf("ParseOptions() error = %v, want ErrBadCommand", err)
			}
		})
	}
}

func TestParseOptionsEmpty(t *testing.T) {
	opts, err := ParseOptions(nil)
	if err != nil {
		t.Fatalf("ParseOptions(nil) error = %v", err)
	}
	if len(opts) != 0 {
		t.Fatalf("len(opts) = %d, want 0", len(opts))
	}
}

func TestOptionPredicates(t *testing.T) {
	mtu := MTUOption(672)
	if mtu.IsHint() {
		t.Error("MTU option must not be a hint")
	}
	if !mtu.Known() {
		t.Error("MTU option with 2-byte value must be Known")
	}
	if got := mtu.WireSize(); got != 4 {
		t.Errorf("WireSize() = %d, want 4", got)
	}

	bad := ConfigOption{Type: OptionMTU, Value: []byte{1}}
	if bad.Known() {
		t.Error("MTU option with 1-byte value must not be Known")
	}

	hint := ConfigOption{Type: OptionMTU | 0x80, Value: []byte{0, 0}}
	if !hint.IsHint() {
		t.Error("high-bit option must be a hint")
	}
	if !hint.Known() {
		t.Error("hinted MTU with right size must still be Known")
	}

	unknown := ConfigOption{Type: 0x55, Value: nil}
	if unknown.Known() {
		t.Error("unknown type must not be Known")
	}
}

func TestMTUValue(t *testing.T) {
	if v, ok := MTUValue(MTUOption(512)); !ok || v != 512 {
		t.Errorf("MTUValue() = (%d, %v), want (512, true)", v, ok)
	}
	if _, ok := MTUValue(FlushTimeoutOption(1)); ok {
		t.Error("MTUValue(flush timeout) must not be ok")
	}
	if _, ok := MTUValue(ConfigOption{Type: OptionMTU, Value: []byte{1}}); ok {
		t.Error("MTUValue(short value) must not be ok")
	}
}
