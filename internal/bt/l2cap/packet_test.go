package l2cap

import (
	"bytes"
	"errors"
	"testing"
)

func TestNewPacketConsistency(t *testing.T) {
	p := NewPacket(CIDSignaling, []byte{1, 2, 3})
	if p.Length != 3 {
		t.Fatalf("Length = %d, want 3", p.Length)
	}
	if !p.IsSignaling() {
		t.Fatalf("IsSignaling() = false, want true")
	}
	if g := p.TrailingGarbage(); g != nil {
		t.Fatalf("TrailingGarbage() = %v, want nil", g)
	}
}

func TestPacketMarshalRoundTrip(t *testing.T) {
	tests := []struct {
		name    string
		cid     CID
		payload []byte
	}{
		{name: "empty payload", cid: CIDSignaling, payload: nil},
		{name: "signaling", cid: CIDSignaling, payload: []byte{0x02, 0x01, 0x04, 0x00, 1, 2, 3, 4}},
		{name: "dynamic cid", cid: 0x0040, payload: bytes.Repeat([]byte{0xAB}, 100)},
		{name: "max cid", cid: 0xFFFF, payload: []byte{0}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			in := NewPacket(tt.cid, tt.payload)
			out, err := UnmarshalPacket(in.Marshal())
			if err != nil {
				t.Fatalf("UnmarshalPacket() error = %v", err)
			}
			if out.ChannelID != tt.cid {
				t.Errorf("ChannelID = %v, want %v", out.ChannelID, tt.cid)
			}
			if out.Length != in.Length {
				t.Errorf("Length = %d, want %d", out.Length, in.Length)
			}
			if !bytes.Equal(out.Payload, tt.payload) {
				t.Errorf("Payload = %x, want %x", out.Payload, tt.payload)
			}
		})
	}
}

func TestUnmarshalPacketErrors(t *testing.T) {
	tests := []struct {
		name    string
		raw     []byte
		wantErr error
	}{
		{name: "empty", raw: nil, wantErr: ErrShortPacket},
		{name: "three bytes", raw: []byte{1, 2, 3}, wantErr: ErrShortPacket},
		{name: "declared too long", raw: []byte{0x05, 0x00, 0x01, 0x00, 0xAA}, wantErr: ErrLengthMismatch},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := UnmarshalPacket(tt.raw); !errors.Is(err, tt.wantErr) {
				t.Fatalf("UnmarshalPacket() error = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestAppendGarbageKeepsDeclaredLength(t *testing.T) {
	base := NewPacket(CIDSignaling, []byte{0x08, 0x01, 0x00, 0x00})
	mutated := base.AppendGarbage([]byte{0xD2, 0x3A, 0x91, 0x0E})

	if mutated.Length != base.Length {
		t.Errorf("mutated Length = %d, want %d (dependent field must stay)", mutated.Length, base.Length)
	}
	if got := mutated.TrailingGarbage(); !bytes.Equal(got, []byte{0xD2, 0x3A, 0x91, 0x0E}) {
		t.Errorf("TrailingGarbage() = %x, want d23a910e", got)
	}
	// The original must be untouched (copy-at-boundary semantics).
	if len(base.Payload) != 4 {
		t.Errorf("base payload grew to %d bytes; AppendGarbage must not mutate its receiver", len(base.Payload))
	}
}

func TestGarbagePacketRoundTripsThroughWire(t *testing.T) {
	base := SignalPacket(1, &ConnectionReq{PSM: PSMSDP, SCID: 0x0040}, []byte{0xDE, 0xAD})
	out, err := UnmarshalPacket(base.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalPacket() error = %v", err)
	}
	if got := out.TrailingGarbage(); !bytes.Equal(got, []byte{0xDE, 0xAD}) {
		t.Fatalf("TrailingGarbage() = %x, want dead", got)
	}
	frames, err := ParseSignals(out.Payload)
	if err != nil {
		t.Fatalf("ParseSignals() error = %v", err)
	}
	if len(frames) != 1 {
		t.Fatalf("len(frames) = %d, want 1", len(frames))
	}
	if !bytes.Equal(frames[0].Tail, []byte{0xDE, 0xAD}) {
		t.Fatalf("frame Tail = %x, want dead", frames[0].Tail)
	}
}

func TestUnmarshalPacketCopiesInput(t *testing.T) {
	raw := NewPacket(CIDSignaling, []byte{1, 2, 3}).Marshal()
	p, err := UnmarshalPacket(raw)
	if err != nil {
		t.Fatalf("UnmarshalPacket() error = %v", err)
	}
	raw[HeaderSize] = 0xFF
	if p.Payload[0] != 1 {
		t.Fatal("decoded payload aliases the input buffer")
	}
}

func TestFigure7MutationExample(t *testing.T) {
	// Reproduce the paper's Figure 7: a Config Req for DCID 0x0040 with an
	// MTU option, mutated to DCID 0x7B8F with garbage D2 3A 91 0E.
	req := &ConfigurationReq{
		DCID:    0x0040,
		Options: []ConfigOption{MTUOption(0x2000)},
	}
	normal := SignalPacket(0x06, req, nil)
	if normal.Length != 0x0C {
		t.Fatalf("normal declared payload length = %#x, want 0x0C as in Figure 7", normal.Length)
	}

	req.DCID = 0x7B8F
	mutated := SignalPacket(0x06, req, []byte{0xD2, 0x3A, 0x91, 0x0E})
	if mutated.Length != 0x0C {
		t.Fatalf("mutated declared length = %#x, want unchanged 0x0C", mutated.Length)
	}
	if mutated.WireSize() != HeaderSize+0x0C+4 {
		t.Fatalf("mutated wire size = %d, want %d", mutated.WireSize(), HeaderSize+0x0C+4)
	}

	frames, err := ParseSignals(mutated.Payload)
	if err != nil {
		t.Fatalf("ParseSignals() error = %v", err)
	}
	cmd, err := DecodeCommand(frames[0])
	if err != nil {
		t.Fatalf("DecodeCommand() error = %v", err)
	}
	got, ok := cmd.(*ConfigurationReq)
	if !ok {
		t.Fatalf("decoded %T, want *ConfigurationReq", cmd)
	}
	if got.DCID != 0x7B8F {
		t.Fatalf("DCID = %v, want 0x7B8F", got.DCID)
	}
}
