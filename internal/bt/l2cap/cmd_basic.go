package l2cap

import (
	"encoding/binary"
	"fmt"
)

// Compile-time interface compliance for every command type.
var (
	_ Command = (*CommandReject)(nil)
	_ Command = (*ConnectionReq)(nil)
	_ Command = (*ConnectionRsp)(nil)
	_ Command = (*ConfigurationReq)(nil)
	_ Command = (*ConfigurationRsp)(nil)
	_ Command = (*DisconnectionReq)(nil)
	_ Command = (*DisconnectionRsp)(nil)
	_ Command = (*EchoReq)(nil)
	_ Command = (*EchoRsp)(nil)
	_ Command = (*InformationReq)(nil)
	_ Command = (*InformationRsp)(nil)
)

func putU16(dst []byte, v uint16) []byte {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	return append(dst, b[:]...)
}

func getU16(src []byte, off int) uint16 {
	return binary.LittleEndian.Uint16(src[off : off+2])
}

func wantLen(code CommandCode, data []byte, exact int) error {
	if len(data) != exact {
		return fmt.Errorf("%w: %v wants %d data bytes, got %d",
			ErrBadCommand, code, exact, len(data))
	}
	return nil
}

func wantMinLen(code CommandCode, data []byte, minimum int) error {
	if len(data) < minimum {
		return fmt.Errorf("%w: %v wants at least %d data bytes, got %d",
			ErrBadCommand, code, minimum, len(data))
	}
	return nil
}

// CommandReject (code 0x01) tells the sender a command was not accepted:
// the rejection signal the paper's PR-Ratio metric counts.
type CommandReject struct {
	// Reason explains the rejection.
	Reason RejectReason
	// ReasonData carries reason-specific bytes: empty for "not
	// understood", the 2-byte actual MTU for "MTU exceeded", and the two
	// 2-byte CIDs (local, remote) for "invalid CID".
	ReasonData []byte
}

// Code implements Command.
func (*CommandReject) Code() CommandCode { return CodeCommandReject }

// MarshalData implements Command.
func (c *CommandReject) MarshalData() []byte { return c.AppendData(nil) }

// AppendData implements Command.
func (c *CommandReject) AppendData(dst []byte) []byte {
	dst = putU16(dst, uint16(c.Reason))
	return append(dst, c.ReasonData...)
}

// UnmarshalData implements Command.
func (c *CommandReject) UnmarshalData(data []byte) error {
	if err := wantMinLen(CodeCommandReject, data, 2); err != nil {
		return err
	}
	c.Reason = RejectReason(getU16(data, 0))
	c.ReasonData = data[2:] // aliases data, per the Command borrow rule
	switch c.Reason {
	case RejectSignalingMTUExceeded:
		if len(c.ReasonData) != 2 {
			return fmt.Errorf("%w: MTU-exceeded reject wants 2 reason bytes, got %d",
				ErrBadCommand, len(c.ReasonData))
		}
	case RejectInvalidCID:
		if len(c.ReasonData) != 4 {
			return fmt.Errorf("%w: invalid-CID reject wants 4 reason bytes, got %d",
				ErrBadCommand, len(c.ReasonData))
		}
	}
	return nil
}

// CoreFields implements Command. A reject carries no port or channel
// endpoint settings, so it exposes nothing to mutate.
func (c *CommandReject) CoreFields() CoreFields { return CoreFields{} }

// NewInvalidCIDReject builds the reject a stack sends for a command that
// referenced a channel endpoint it never allocated.
func NewInvalidCIDReject(local, remote CID) *CommandReject {
	data := putU16(nil, uint16(local))
	data = putU16(data, uint16(remote))
	return &CommandReject{Reason: RejectInvalidCID, ReasonData: data}
}

// NewMTUExceededReject builds the reject a stack sends for an oversized
// signaling packet, reporting its actual signaling MTU.
func NewMTUExceededReject(actualMTU uint16) *CommandReject {
	return &CommandReject{
		Reason:     RejectSignalingMTUExceeded,
		ReasonData: putU16(nil, actualMTU),
	}
}

// ConnectionReq (code 0x02) asks to open a connection-oriented channel to
// the service behind PSM, naming the requester's endpoint SCID.
type ConnectionReq struct {
	// PSM is the target service port.
	PSM PSM
	// SCID is the source (requester-side) channel endpoint.
	SCID CID
}

// Code implements Command.
func (*ConnectionReq) Code() CommandCode { return CodeConnectionReq }

// MarshalData implements Command.
func (c *ConnectionReq) MarshalData() []byte { return c.AppendData(nil) }

// AppendData implements Command.
func (c *ConnectionReq) AppendData(dst []byte) []byte {
	dst = putU16(dst, uint16(c.PSM))
	return putU16(dst, uint16(c.SCID))
}

// UnmarshalData implements Command.
func (c *ConnectionReq) UnmarshalData(data []byte) error {
	if err := wantLen(CodeConnectionReq, data, 4); err != nil {
		return err
	}
	c.PSM = PSM(getU16(data, 0))
	c.SCID = CID(getU16(data, 2))
	return nil
}

// CoreFields implements Command.
func (c *ConnectionReq) CoreFields() CoreFields {
	return CoreFields{PSM: &c.PSM, CIDs: []*CID{&c.SCID}}
}

// ConnectionRsp (code 0x03) answers a ConnectionReq.
type ConnectionRsp struct {
	// DCID is the responder-side endpoint allocated for the channel.
	DCID CID
	// SCID echoes the requester's endpoint.
	SCID CID
	// Result reports the outcome.
	Result ConnResult
	// Status qualifies a pending result (authentication/authorization).
	Status uint16
}

// Code implements Command.
func (*ConnectionRsp) Code() CommandCode { return CodeConnectionRsp }

// MarshalData implements Command.
func (c *ConnectionRsp) MarshalData() []byte { return c.AppendData(nil) }

// AppendData implements Command.
func (c *ConnectionRsp) AppendData(dst []byte) []byte {
	dst = putU16(dst, uint16(c.DCID))
	dst = putU16(dst, uint16(c.SCID))
	dst = putU16(dst, uint16(c.Result))
	return putU16(dst, c.Status)
}

// UnmarshalData implements Command.
func (c *ConnectionRsp) UnmarshalData(data []byte) error {
	if err := wantLen(CodeConnectionRsp, data, 8); err != nil {
		return err
	}
	c.DCID = CID(getU16(data, 0))
	c.SCID = CID(getU16(data, 2))
	c.Result = ConnResult(getU16(data, 4))
	c.Status = getU16(data, 6)
	return nil
}

// CoreFields implements Command.
func (c *ConnectionRsp) CoreFields() CoreFields {
	return CoreFields{CIDs: []*CID{&c.DCID, &c.SCID}}
}

// ConfigurationReq (code 0x04) proposes channel options for the channel
// whose remote endpoint is DCID. The paper's Figure 7 mutation example and
// the BlueDroid zero-day both ride on this command.
type ConfigurationReq struct {
	// DCID is the destination (responder-side) endpoint being configured.
	DCID CID
	// Flags bit 0 marks continuation packets.
	Flags uint16
	// Options are the proposed configuration options.
	Options []ConfigOption
}

// Code implements Command.
func (*ConfigurationReq) Code() CommandCode { return CodeConfigurationReq }

// MarshalData implements Command.
func (c *ConfigurationReq) MarshalData() []byte { return c.AppendData(nil) }

// AppendData implements Command.
func (c *ConfigurationReq) AppendData(dst []byte) []byte {
	dst = putU16(dst, uint16(c.DCID))
	dst = putU16(dst, c.Flags)
	return appendOptions(dst, c.Options)
}

// UnmarshalData implements Command.
func (c *ConfigurationReq) UnmarshalData(data []byte) error {
	if err := wantMinLen(CodeConfigurationReq, data, 4); err != nil {
		return err
	}
	c.DCID = CID(getU16(data, 0))
	c.Flags = getU16(data, 2)
	opts, err := AppendParsedOptions(c.Options[:0], data[4:])
	if err != nil {
		return fmt.Errorf("%v options: %w", CodeConfigurationReq, err)
	}
	c.Options = opts
	return nil
}

// CoreFields implements Command.
func (c *ConfigurationReq) CoreFields() CoreFields {
	return CoreFields{CIDs: []*CID{&c.DCID}}
}

// ConfigurationRsp (code 0x05) answers a ConfigurationReq.
type ConfigurationRsp struct {
	// SCID is the endpoint of the original requester.
	SCID CID
	// Flags bit 0 marks continuation packets.
	Flags uint16
	// Result reports acceptance or the rejection class.
	Result ConfigResult
	// Options echoes or counter-proposes option values.
	Options []ConfigOption
}

// Code implements Command.
func (*ConfigurationRsp) Code() CommandCode { return CodeConfigurationRsp }

// MarshalData implements Command.
func (c *ConfigurationRsp) MarshalData() []byte { return c.AppendData(nil) }

// AppendData implements Command.
func (c *ConfigurationRsp) AppendData(dst []byte) []byte {
	dst = putU16(dst, uint16(c.SCID))
	dst = putU16(dst, c.Flags)
	dst = putU16(dst, uint16(c.Result))
	return appendOptions(dst, c.Options)
}

// UnmarshalData implements Command.
func (c *ConfigurationRsp) UnmarshalData(data []byte) error {
	if err := wantMinLen(CodeConfigurationRsp, data, 6); err != nil {
		return err
	}
	c.SCID = CID(getU16(data, 0))
	c.Flags = getU16(data, 2)
	c.Result = ConfigResult(getU16(data, 4))
	opts, err := AppendParsedOptions(c.Options[:0], data[6:])
	if err != nil {
		return fmt.Errorf("%v options: %w", CodeConfigurationRsp, err)
	}
	c.Options = opts
	return nil
}

// CoreFields implements Command.
func (c *ConfigurationRsp) CoreFields() CoreFields {
	return CoreFields{CIDs: []*CID{&c.SCID}}
}

// DisconnectionReq (code 0x06) tears down a channel identified by the
// (DCID, SCID) endpoint pair.
type DisconnectionReq struct {
	// DCID is the responder-side endpoint.
	DCID CID
	// SCID is the requester-side endpoint.
	SCID CID
}

// Code implements Command.
func (*DisconnectionReq) Code() CommandCode { return CodeDisconnectionReq }

// MarshalData implements Command.
func (c *DisconnectionReq) MarshalData() []byte { return c.AppendData(nil) }

// AppendData implements Command.
func (c *DisconnectionReq) AppendData(dst []byte) []byte {
	dst = putU16(dst, uint16(c.DCID))
	return putU16(dst, uint16(c.SCID))
}

// UnmarshalData implements Command.
func (c *DisconnectionReq) UnmarshalData(data []byte) error {
	if err := wantLen(CodeDisconnectionReq, data, 4); err != nil {
		return err
	}
	c.DCID = CID(getU16(data, 0))
	c.SCID = CID(getU16(data, 2))
	return nil
}

// CoreFields implements Command.
func (c *DisconnectionReq) CoreFields() CoreFields {
	return CoreFields{CIDs: []*CID{&c.DCID, &c.SCID}}
}

// DisconnectionRsp (code 0x07) confirms a DisconnectionReq.
type DisconnectionRsp struct {
	// DCID echoes the responder-side endpoint.
	DCID CID
	// SCID echoes the requester-side endpoint.
	SCID CID
}

// Code implements Command.
func (*DisconnectionRsp) Code() CommandCode { return CodeDisconnectionRsp }

// MarshalData implements Command.
func (c *DisconnectionRsp) MarshalData() []byte { return c.AppendData(nil) }

// AppendData implements Command.
func (c *DisconnectionRsp) AppendData(dst []byte) []byte {
	dst = putU16(dst, uint16(c.DCID))
	return putU16(dst, uint16(c.SCID))
}

// UnmarshalData implements Command.
func (c *DisconnectionRsp) UnmarshalData(data []byte) error {
	if err := wantLen(CodeDisconnectionRsp, data, 4); err != nil {
		return err
	}
	c.DCID = CID(getU16(data, 0))
	c.SCID = CID(getU16(data, 2))
	return nil
}

// CoreFields implements Command.
func (c *DisconnectionRsp) CoreFields() CoreFields {
	return CoreFields{CIDs: []*CID{&c.DCID, &c.SCID}}
}

// EchoReq (code 0x08) is the L2CAP ping. L2Fuzz's vulnerability-detecting
// phase uses it as the liveness probe after each test packet.
type EchoReq struct {
	// Data is optional opaque echo payload.
	Data []byte
}

// Code implements Command.
func (*EchoReq) Code() CommandCode { return CodeEchoReq }

// MarshalData implements Command.
func (c *EchoReq) MarshalData() []byte { return append([]byte(nil), c.Data...) }

// AppendData implements Command.
func (c *EchoReq) AppendData(dst []byte) []byte { return append(dst, c.Data...) }

// UnmarshalData implements Command.
func (c *EchoReq) UnmarshalData(data []byte) error {
	c.Data = data // aliases data, per the Command borrow rule
	return nil
}

// CoreFields implements Command.
func (c *EchoReq) CoreFields() CoreFields { return CoreFields{} }

// EchoRsp (code 0x09) answers an EchoReq.
type EchoRsp struct {
	// Data echoes the request payload.
	Data []byte
}

// Code implements Command.
func (*EchoRsp) Code() CommandCode { return CodeEchoRsp }

// MarshalData implements Command.
func (c *EchoRsp) MarshalData() []byte { return append([]byte(nil), c.Data...) }

// AppendData implements Command.
func (c *EchoRsp) AppendData(dst []byte) []byte { return append(dst, c.Data...) }

// UnmarshalData implements Command.
func (c *EchoRsp) UnmarshalData(data []byte) error {
	c.Data = data // aliases data, per the Command borrow rule
	return nil
}

// CoreFields implements Command.
func (c *EchoRsp) CoreFields() CoreFields { return CoreFields{} }

// InformationReq (code 0x0A) queries stack capabilities.
type InformationReq struct {
	// InfoType selects the queried capability.
	InfoType InfoType
}

// Code implements Command.
func (*InformationReq) Code() CommandCode { return CodeInformationReq }

// MarshalData implements Command.
func (c *InformationReq) MarshalData() []byte { return c.AppendData(nil) }

// AppendData implements Command.
func (c *InformationReq) AppendData(dst []byte) []byte {
	return putU16(dst, uint16(c.InfoType))
}

// UnmarshalData implements Command.
func (c *InformationReq) UnmarshalData(data []byte) error {
	if err := wantLen(CodeInformationReq, data, 2); err != nil {
		return err
	}
	c.InfoType = InfoType(getU16(data, 0))
	return nil
}

// CoreFields implements Command.
func (c *InformationReq) CoreFields() CoreFields { return CoreFields{} }

// InformationRsp (code 0x0B) answers an InformationReq.
type InformationRsp struct {
	// InfoType echoes the queried capability.
	InfoType InfoType
	// Result reports whether the capability is supported.
	Result InfoResult
	// Data carries the capability value when supported.
	Data []byte
}

// Code implements Command.
func (*InformationRsp) Code() CommandCode { return CodeInformationRsp }

// MarshalData implements Command.
func (c *InformationRsp) MarshalData() []byte { return c.AppendData(nil) }

// AppendData implements Command.
func (c *InformationRsp) AppendData(dst []byte) []byte {
	dst = putU16(dst, uint16(c.InfoType))
	dst = putU16(dst, uint16(c.Result))
	return append(dst, c.Data...)
}

// UnmarshalData implements Command.
func (c *InformationRsp) UnmarshalData(data []byte) error {
	if err := wantMinLen(CodeInformationRsp, data, 4); err != nil {
		return err
	}
	c.InfoType = InfoType(getU16(data, 0))
	c.Result = InfoResult(getU16(data, 2))
	c.Data = data[4:] // aliases data, per the Command borrow rule
	return nil
}

// CoreFields implements Command.
func (c *InformationRsp) CoreFields() CoreFields { return CoreFields{} }
