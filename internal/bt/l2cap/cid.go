package l2cap

import "fmt"

// CID is an L2CAP channel identifier. Channel identifiers are the local
// names of channel endpoints on a device; each end of a logical link
// allocates its own CIDs independently.
type CID uint16

// Reserved channel identifiers on ACL-U logical links (Vol 3 Part A §2.1).
const (
	// CIDNull is invalid and never identifies a channel.
	CIDNull CID = 0x0000
	// CIDSignaling carries L2CAP signaling commands. It is the only value
	// the L2CAP basic-header channel ID takes for the packets this
	// reproduction generates; L2Fuzz classifies the header CID as a fixed
	// (F) field for exactly that reason.
	CIDSignaling CID = 0x0001
	// CIDConnectionless carries connectionless (group) traffic.
	CIDConnectionless CID = 0x0002
	// CIDAMPManager is reserved for the AMP manager protocol.
	CIDAMPManager CID = 0x0003
	// CIDBREDRSecurityManager carries Security Manager traffic on BR/EDR.
	CIDBREDRSecurityManager CID = 0x0007
	// CIDAMPTestManager is reserved for AMP test traffic.
	CIDAMPTestManager CID = 0x003F
	// CIDDynamicFirst is the first dynamically allocatable CID on ACL-U.
	CIDDynamicFirst CID = 0x0040
	// CIDDynamicLast is the last dynamically allocatable CID.
	CIDDynamicLast CID = 0xFFFF
)

// IsDynamic reports whether c lies in the dynamically-allocated CID range
// [0x0040, 0xFFFF]. Table IV of the paper uses exactly this range as the
// mutation domain for channel-IDs-in-payload (CIDP): values inside the
// normal range still trigger faults when they ignore the device's actual
// dynamic allocation.
func (c CID) IsDynamic() bool { return c >= CIDDynamicFirst }

// IsReserved reports whether c lies in the reserved range [0x0000, 0x003F].
func (c CID) IsReserved() bool { return c < CIDDynamicFirst }

// String renders the CID in the 0xNNNN form used by the specification.
func (c CID) String() string { return fmt.Sprintf("CID(0x%04X)", uint16(c)) }

// PSM is a Protocol/Service Multiplexer: the L2CAP analogue of a port
// number. Valid PSMs are odd in the least significant octet and even in
// the most significant octet (Vol 3 Part A §4.2).
type PSM uint16

// Well-known PSM values (Bluetooth Assigned Numbers).
const (
	// PSMSDP is the Service Discovery Protocol port. Every Bluetooth
	// device supports it and it never requires pairing, which is why
	// L2Fuzz's target-scanning phase falls back to it.
	PSMSDP PSM = 0x0001
	// PSMRFCOMM is the RFCOMM multiplexer port.
	PSMRFCOMM PSM = 0x0003
	// PSMTCSBIN is telephony control.
	PSMTCSBIN PSM = 0x0005
	// PSMBNEP is the Bluetooth network encapsulation protocol port.
	PSMBNEP PSM = 0x000F
	// PSMHIDControl is the HID control channel port.
	PSMHIDControl PSM = 0x0011
	// PSMHIDInterrupt is the HID interrupt channel port.
	PSMHIDInterrupt PSM = 0x0013
	// PSMAVCTP is the audio/video control transport port.
	PSMAVCTP PSM = 0x0017
	// PSMAVDTP is the audio/video distribution transport port.
	PSMAVDTP PSM = 0x0019
	// PSMATT is the attribute protocol port on BR/EDR.
	PSMATT PSM = 0x001F
	// PSMDynamicFirst is the first dynamically assignable PSM.
	PSMDynamicFirst PSM = 0x1001
)

// IsWellFormed reports whether p obeys the structural PSM rule: the least
// significant octet must be odd and the most significant octet must be
// even. Devices reject connect requests whose PSM violates this rule with
// "PSM not supported" before any service lookup happens.
func (p PSM) IsWellFormed() bool {
	return p&0x0001 == 0x0001 && p&0x0100 == 0
}

// IsDynamic reports whether p lies in the dynamically assigned PSM space
// (≥ 0x1001).
func (p PSM) IsDynamic() bool { return p >= PSMDynamicFirst }

// String renders the PSM in specification notation.
func (p PSM) String() string { return fmt.Sprintf("PSM(0x%04X)", uint16(p)) }

// AbnormalPSMRange is one contiguous range of PSM values that L2Fuzz uses
// as malicious data (Table IV). The ranges deliberately violate the
// structural PSM rule, so a correct stack must reject them while a buggy
// one may mis-handle them.
type AbnormalPSMRange struct {
	Lo, Hi PSM
}

// Contains reports whether p falls inside the range.
func (r AbnormalPSMRange) Contains(p PSM) bool { return p >= r.Lo && p <= r.Hi }

// AbnormalPSMRanges reproduces the PSM row of Table IV: the odd-MSB bands
// 0x0100-0x01FF, 0x0300-0x03FF, 0x0500-0x05FF, 0x0700-0x07FF,
// 0x0900-0x09FF, 0x0B00-0x0BFF and 0x0D00-0x0DFF. The table's final entry,
// "all even values", is handled separately by IsAbnormalPSM because it is
// not contiguous.
func AbnormalPSMRanges() []AbnormalPSMRange {
	return []AbnormalPSMRange{
		{Lo: 0x0100, Hi: 0x01FF},
		{Lo: 0x0300, Hi: 0x03FF},
		{Lo: 0x0500, Hi: 0x05FF},
		{Lo: 0x0700, Hi: 0x07FF},
		{Lo: 0x0900, Hi: 0x09FF},
		{Lo: 0x0B00, Hi: 0x0BFF},
		{Lo: 0x0D00, Hi: 0x0DFF},
	}
}

// IsAbnormalPSM reports whether p belongs to the malicious PSM domain of
// Table IV: one of the odd-MSB bands, or any even value.
func IsAbnormalPSM(p PSM) bool {
	if p&0x0001 == 0 {
		return true // all even values
	}
	for _, r := range AbnormalPSMRanges() {
		if r.Contains(p) {
			return true
		}
	}
	return false
}

// CIDPRange reproduces the CIDP row of Table IV: channel IDs carried in
// command payloads are drawn from the normal dynamic range
// [0x0040, 0xFFFF], ignoring the device's actual dynamic allocation.
func CIDPRange() (lo, hi CID) { return CIDDynamicFirst, CIDDynamicLast }
