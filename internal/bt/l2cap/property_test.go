package l2cap

import (
	"bytes"
	"testing"
	"testing/quick"
)

// Property: any byte slice either fails to parse as a basic frame, or
// re-marshals to a prefix-equal wire image (decode∘encode is lossless).
func TestQuickPacketDecodeEncodeLossless(t *testing.T) {
	f := func(raw []byte) bool {
		p, err := UnmarshalPacket(raw)
		if err != nil {
			return true // rejecting is fine; crashing is not
		}
		return bytes.Equal(p.Marshal(), raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: NewPacket always produces a self-consistent frame that
// survives a round trip for any payload that fits.
func TestQuickNewPacketRoundTrip(t *testing.T) {
	f := func(cid uint16, payload []byte) bool {
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		in := NewPacket(CID(cid), payload)
		out, err := UnmarshalPacket(in.Marshal())
		if err != nil {
			return false
		}
		return out.ChannelID == CID(cid) && bytes.Equal(out.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: ConnectionReq round-trips for every (PSM, SCID) pair.
func TestQuickConnectionReqRoundTrip(t *testing.T) {
	f := func(psm, scid uint16) bool {
		in := ConnectionReq{PSM: PSM(psm), SCID: CID(scid)}
		var out ConnectionReq
		if err := out.UnmarshalData(in.MarshalData()); err != nil {
			return false
		}
		return out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ConfigurationReq with arbitrary option bytes either rejects or
// round-trips its DCID and flags.
func TestQuickConfigurationReqTolerance(t *testing.T) {
	f := func(dcid, flags uint16, optBytes []byte) bool {
		data := putU16(nil, dcid)
		data = putU16(data, flags)
		data = append(data, optBytes...)
		var req ConfigurationReq
		if err := req.UnmarshalData(data); err != nil {
			return true
		}
		return req.DCID == CID(dcid) && req.Flags == flags
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: UnmarshalFrame never panics and, when it succeeds, the frame
// re-marshals to the identical bytes.
func TestQuickFrameDecodeEncodeLossless(t *testing.T) {
	f := func(raw []byte) bool {
		fr, err := UnmarshalFrame(raw)
		if err != nil {
			return true
		}
		return bytes.Equal(fr.Marshal(), raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: DecodeCommand on arbitrary frame data never panics; when it
// succeeds for a fixed-layout command the re-marshaled data has the same
// length class the decoder accepted.
func TestQuickDecodeCommandNoPanic(t *testing.T) {
	f := func(code uint8, data []byte) bool {
		cmd, err := DecodeCommand(Frame{Code: CommandCode(code), Identifier: 1, Data: data})
		if err != nil {
			return true
		}
		_ = cmd.MarshalData()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Fatal(err)
	}
}

// Property: ParseSignals never panics and frames re-marshal into a
// reconstruction with the same total length for garbage-free payloads.
func TestQuickParseSignalsReassembly(t *testing.T) {
	f := func(raw []byte) bool {
		frames, err := ParseSignals(raw)
		if err != nil {
			return true
		}
		var rebuilt []byte
		for _, fr := range frames {
			rebuilt = fr.MarshalTo(rebuilt)
		}
		return bytes.Equal(rebuilt, raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: IsAbnormalPSM and IsWellFormed are mutually consistent — a
// well-formed PSM outside the Table-IV bands is never abnormal, and every
// even PSM is abnormal.
func TestQuickPSMClassification(t *testing.T) {
	f := func(v uint16) bool {
		p := PSM(v)
		if v%2 == 0 && !IsAbnormalPSM(p) {
			return false
		}
		inBand := false
		for _, r := range AbnormalPSMRanges() {
			if r.Contains(p) {
				inBand = true
			}
		}
		if !inBand && v%2 == 1 && IsAbnormalPSM(p) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
