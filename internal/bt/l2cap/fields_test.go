package l2cap

import "testing"

func TestEveryCommandHasFieldClassification(t *testing.T) {
	for _, code := range AllCommandCodes() {
		if Fields(code) == nil {
			t.Errorf("Fields(%v) = nil; every command needs a classification", code)
		}
	}
	if Fields(0x7F) != nil {
		t.Error("Fields(unknown) should be nil")
	}
}

func TestFieldClassificationMatchesPaperFigure6(t *testing.T) {
	// MC = {PSM, SCID, DCID, ICID, CONT_ID}; everything else in command
	// data is MA. Spot-check the commands named in the paper.
	tests := []struct {
		code    CommandCode
		mcNames []string
	}{
		{CodeConnectionReq, []string{"PSM", "SCID"}},
		{CodeConnectionRsp, []string{"DCID", "SCID"}},
		{CodeConfigurationReq, []string{"DCID"}},
		{CodeConfigurationRsp, []string{"SCID"}},
		{CodeCreateChannelReq, []string{"PSM", "SCID", "CONT_ID"}},
		{CodeMoveChannelReq, []string{"ICID", "CONT_ID"}},
		{CodeEchoReq, nil},
		{CodeInformationReq, nil},
		{CodeConnParamUpdateReq, nil},
	}
	for _, tt := range tests {
		var got []string
		for _, f := range Fields(tt.code) {
			if f.Class == FieldMutableCore {
				got = append(got, f.Name)
			}
		}
		if len(got) != len(tt.mcNames) {
			t.Errorf("%v: MC fields = %v, want %v", tt.code, got, tt.mcNames)
			continue
		}
		for i := range got {
			if got[i] != tt.mcNames[i] {
				t.Errorf("%v: MC field[%d] = %q, want %q", tt.code, i, got[i], tt.mcNames[i])
			}
		}
	}
}

func TestCoreFieldsAgreeWithClassification(t *testing.T) {
	// For every command, the CoreFields exposed by the concrete struct
	// must be non-empty exactly when the classification table lists an MC
	// field.
	for _, cmd := range sampleCommands() {
		code := cmd.Code()
		wantCore := HasCoreFields(code)
		gotCore := !cmd.CoreFields().Empty()
		if wantCore != gotCore {
			t.Errorf("%v: CoreFields().Empty() = %v but classification HasCoreFields = %v",
				code, !gotCore, wantCore)
		}
	}
}

func TestCoreFieldsMutateInPlace(t *testing.T) {
	req := &ConnectionReq{PSM: PSMSDP, SCID: 0x0040}
	core := req.CoreFields()
	*core.PSM = 0x0100
	*core.CIDs[0] = 0x1234
	if req.PSM != 0x0100 || req.SCID != 0x1234 {
		t.Fatalf("mutation through CoreFields did not reach the struct: %+v", req)
	}
	data := req.MarshalData()
	if getU16(data, 0) != 0x0100 || getU16(data, 2) != 0x1234 {
		t.Fatalf("marshaled data does not reflect mutation: %x", data)
	}
}

func TestFieldClassString(t *testing.T) {
	tests := []struct {
		class FieldClass
		want  string
	}{
		{FieldFixed, "F"},
		{FieldDependent, "D"},
		{FieldMutableCore, "MC"},
		{FieldMutableApp, "MA"},
	}
	for _, tt := range tests {
		if got := tt.class.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", tt.class, got, tt.want)
		}
	}
}

func TestAbnormalPSMRangesMatchTableIV(t *testing.T) {
	ranges := AbnormalPSMRanges()
	if len(ranges) != 7 {
		t.Fatalf("len(ranges) = %d, want 7", len(ranges))
	}
	// Band starts per Table IV.
	wantLo := []PSM{0x0100, 0x0300, 0x0500, 0x0700, 0x0900, 0x0B00, 0x0D00}
	for i, r := range ranges {
		if r.Lo != wantLo[i] || r.Hi != wantLo[i]+0xFF {
			t.Errorf("range[%d] = [%04X, %04X], want [%04X, %04X]",
				i, uint16(r.Lo), uint16(r.Hi), uint16(wantLo[i]), uint16(wantLo[i]+0xFF))
		}
	}
}

func TestIsAbnormalPSM(t *testing.T) {
	tests := []struct {
		psm  PSM
		want bool
	}{
		{PSMSDP, false},    // 0x0001: valid SDP port
		{PSMRFCOMM, false}, // 0x0003
		{0x0002, true},     // even
		{0x0100, true},     // band start (even too)
		{0x0101, true},     // inside 0x0100 band, odd
		{0x01FF, true},     // band end
		{0x0201, false},    // odd, outside bands, well-formed
		{0x0B7F, true},     // inside 0x0B00 band
		{0x1001, false},    // dynamic PSM start
		{0x0D01, true},     // inside 0x0D00 band
	}
	for _, tt := range tests {
		if got := IsAbnormalPSM(tt.psm); got != tt.want {
			t.Errorf("IsAbnormalPSM(%04X) = %v, want %v", uint16(tt.psm), got, tt.want)
		}
	}
}

func TestPSMWellFormedness(t *testing.T) {
	tests := []struct {
		psm  PSM
		want bool
	}{
		{0x0001, true},
		{0x0003, true},
		{0x1001, true},
		{0x0002, false}, // even LSB octet
		{0x0101, false}, // odd MSB octet
		{0xFF01, false}, // odd MSB octet
	}
	for _, tt := range tests {
		if got := tt.psm.IsWellFormed(); got != tt.want {
			t.Errorf("PSM(%04X).IsWellFormed() = %v, want %v", uint16(tt.psm), got, tt.want)
		}
	}
}

func TestCIDRanges(t *testing.T) {
	if CIDSignaling.IsDynamic() {
		t.Error("signaling CID must not be dynamic")
	}
	if !CIDSignaling.IsReserved() {
		t.Error("signaling CID must be reserved")
	}
	if !CID(0x0040).IsDynamic() {
		t.Error("0x0040 must be dynamic")
	}
	lo, hi := CIDPRange()
	if lo != 0x0040 || hi != 0xFFFF {
		t.Errorf("CIDPRange() = [%v, %v], want [0x0040, 0xFFFF]", lo, hi)
	}
}
