package pool

import (
	"bytes"
	"testing"
)

func TestGetLengthAndClasses(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 255, 1021, 4096, 65540} {
		b := Get(n)
		if len(b) != n {
			t.Fatalf("Get(%d) length = %d", n, len(b))
		}
		Put(b)
	}
}

func TestGetBeyondLargestClass(t *testing.T) {
	n := classSizes[len(classSizes)-1] + 1
	b := Get(n)
	if len(b) != n {
		t.Fatalf("Get(%d) length = %d", n, len(b))
	}
	Put(b) // dropped silently: capacity matches no class
}

func TestPutIsSafeOnAnySlice(t *testing.T) {
	Put(nil)
	Put([]byte{})
	Put(make([]byte, 10))    // odd capacity: dropped
	Put(Get(100)[10:20])     // sub-slice at an offset: odd capacity, dropped
	Put(make([]byte, 0, 64)) // zero length, class capacity: recycled
}

func TestRecycling(t *testing.T) {
	b1 := Get(100)
	for i := range b1 {
		b1[i] = 0xAA
	}
	Put(b1)
	b2 := Get(200)
	// Same class (256): the pool should hand the same backing array back.
	if &b1[0] != &b2[0] {
		t.Fatalf("expected Get after Put to recycle the buffer")
	}
	Put(b2)
}

func TestCopy(t *testing.T) {
	src := []byte{1, 2, 3, 4, 5}
	c := Copy(src)
	if !bytes.Equal(c, src) {
		t.Fatalf("Copy = %v, want %v", c, src)
	}
	src[0] = 99
	if c[0] == 99 {
		t.Fatalf("Copy aliases its source")
	}
	Put(c)
}

func TestCapPerClass(t *testing.T) {
	// Over-releasing must not grow a free list beyond its cap.
	bufs := make([][]byte, 0, maxPerClass+10)
	for i := 0; i < maxPerClass+10; i++ {
		bufs = append(bufs, make([]byte, 64))
	}
	for _, b := range bufs {
		Put(b)
	}
	classes[0].mu.Lock()
	n := len(classes[0].bufs)
	classes[0].mu.Unlock()
	if n > maxPerClass {
		t.Fatalf("free list holds %d buffers, cap %d", n, maxPerClass)
	}
}

func TestGetDoesNotAllocateSteadyState(t *testing.T) {
	b := Get(512)
	Put(b)
	allocs := testing.AllocsPerRun(100, func() {
		b := Get(512)
		Put(b)
	})
	if allocs > 0 {
		t.Fatalf("steady-state Get/Put allocates %.1f times per op", allocs)
	}
}
