// Package pool provides size-classed byte-buffer pooling for the packet
// hot path. Every per-packet []byte that must outlive its producer — the
// host client's inbox payloads are the canonical case — is borrowed from
// here and released back once its ownership window closes, so a steady-
// state fuzzing run recycles a small working set instead of allocating
// per packet.
//
// # Ownership rules
//
// A buffer obtained from Get is owned by the caller until it calls Put.
// After Put the buffer may be handed to any later Get caller: using a
// released buffer (or a slice aliasing one) is a use-after-free in
// spirit, and the aliasing regression tests exist to catch exactly that.
// Put never clears buffers; callers must not assume zeroed contents.
//
// Buffers whose capacity does not match a size class (for example a
// slice carved out of a larger buffer) are silently dropped by Put, so
// it is always safe to call Put on any buffer that is merely no longer
// needed.
package pool

import "sync"

// classSizes are the pooled capacities. The packet path is dominated by
// small signaling frames (≤ ~700 bytes: the signaling MTU plus headers),
// with ACL fragments up to 1025 bytes and rare jumbo frames beyond; the
// largest class covers a maximal L2CAP frame (4-byte header + 65535
// payload, rounded up).
var classSizes = [...]int{64, 256, 1024, 4096, 16384, 65540}

// maxPerClass bounds each free list so a burst cannot pin an unbounded
// working set; overflow buffers are dropped to the garbage collector.
const maxPerClass = 1024

// freeList is a mutex-guarded stack of buffers of one capacity class.
// sync.Pool is deliberately not used: putting a []byte into a sync.Pool
// boxes the slice header into an interface, which allocates on every
// Put — the exact churn this package exists to remove. The stack's
// backing array is reused across Put/Get cycles, so steady-state
// operations are allocation-free.
type freeList struct {
	mu   sync.Mutex
	bufs [][]byte
}

var classes [len(classSizes)]freeList

// classFor returns the index of the smallest class holding n bytes, or
// -1 when n exceeds every class.
func classFor(n int) int {
	for i, size := range classSizes {
		if n <= size {
			return i
		}
	}
	return -1
}

// Get borrows a buffer of length n. The contents are unspecified (pooled
// buffers are not cleared); callers overwrite before reading. Lengths
// beyond the largest class are allocated directly and will be dropped on
// Put.
func Get(n int) []byte {
	ci := classFor(n)
	if ci < 0 {
		return make([]byte, n)
	}
	c := &classes[ci]
	c.mu.Lock()
	if last := len(c.bufs) - 1; last >= 0 {
		b := c.bufs[last]
		c.bufs[last] = nil
		c.bufs = c.bufs[:last]
		c.mu.Unlock()
		return b[:n]
	}
	c.mu.Unlock()
	return make([]byte, n, classSizes[ci])
}

// Copy borrows a buffer and fills it with src: the one-liner for the
// "anything retained must copy" rule at retention points.
func Copy(src []byte) []byte {
	b := Get(len(src))
	copy(b, src)
	return b
}

// Put releases a buffer previously returned by Get (any length,
// re-sliced or not). Buffers whose capacity matches no size class — nil
// slices, sub-slices at odd offsets, oversized one-off allocations — are
// dropped, so Put is safe on every []byte.
func Put(b []byte) {
	capacity := cap(b)
	if capacity == 0 {
		return
	}
	for i, size := range classSizes {
		if capacity == size {
			c := &classes[i]
			c.mu.Lock()
			if len(c.bufs) < maxPerClass {
				c.bufs = append(c.bufs, b[:capacity])
			}
			c.mu.Unlock()
			return
		}
	}
}
