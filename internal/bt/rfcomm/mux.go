package rfcomm

import "fmt"

// DLCState is the state of one data-link connection: the RFCOMM
// analogue of the L2CAP channel state machine, clustered the same way
// the paper clusters L2CAP states into jobs.
type DLCState uint8

// DLC states.
const (
	// DLCClosed is the resting state.
	DLCClosed DLCState = iota + 1
	// DLCConnecting is occupied while a SABM awaits the upper layer.
	DLCConnecting
	// DLCConnected is the data-transfer state.
	DLCConnected
	// DLCDisconnecting is occupied while a DISC completes.
	DLCDisconnecting
)

func (s DLCState) String() string {
	switch s {
	case DLCClosed:
		return "CLOSED"
	case DLCConnecting:
		return "CONNECTING"
	case DLCConnected:
		return "CONNECTED"
	case DLCDisconnecting:
		return "DISCONNECTING"
	default:
		return fmt.Sprintf("DLCState(%d)", uint8(s))
	}
}

// Service is one RFCOMM-published service (a server channel).
type Service struct {
	// Channel is the server channel number (1-30); the DLCI of its DLC
	// is channel<<1 | direction.
	Channel uint8
	// Name is a human-readable label.
	Name string
}

// MuxDefectKind names a mux-defect predicate family.
type MuxDefectKind string

// MuxDefectReservedDLCI is the reserved-DLCI control-block dereference
// family: a SABM addressed to a DLCI at or above MinDLCI with a garbage
// tail of at least MinTail bytes kills the multiplexer.
const MuxDefectReservedDLCI MuxDefectKind = "reserved-dlci"

// MuxDefect is an injected RFCOMM-layer defect for the §V extension
// demonstration: a declarative predicate over incoming frames that,
// when it matches, kills the multiplexer. Like device.TriggerSpec it is
// pure data — kind plus calibration — so device configurations carrying
// it serialize and compare by value. A nil *MuxDefect is a robust mux.
type MuxDefect struct {
	// Kind selects the predicate family.
	Kind MuxDefectKind `json:"kind"`
	// MinDLCI is the lowest DLCI the defect fires on (the reserved band
	// starts at 62).
	MinDLCI uint8 `json:"minDLCI,omitempty"`
	// MinTail is the shortest garbage tail that fires it.
	MinTail int `json:"minTail,omitempty"`
}

// Matches evaluates the defect predicate against one decoded frame.
// Safe on a nil receiver, which matches nothing.
func (d *MuxDefect) Matches(f Frame) bool {
	if d == nil {
		return false
	}
	switch d.Kind {
	case MuxDefectReservedDLCI:
		return f.Type == FrameSABM && f.DLCI >= d.MinDLCI && len(f.Tail) >= d.MinTail
	}
	return false
}

// ReservedDLCIDefect reproduces the shape of the L2CAP findings one
// layer up: a SABM addressed to a reserved DLCI (62 or 63) with a
// garbage tail dereferences an unallocated DLC control block.
func ReservedDLCIDefect() *MuxDefect {
	return &MuxDefect{Kind: MuxDefectReservedDLCI, MinDLCI: 62, MinTail: 1}
}

// Mux is the server-side RFCOMM multiplexer mounted on a device's RFCOMM
// L2CAP channel. It is not safe for concurrent use (single-threaded
// simulation).
type Mux struct {
	services []Service
	defect   *MuxDefect

	dlcs    map[uint8]DLCState
	started bool // DLCI 0 (control channel) established
	crashed bool
	visited map[DLCState]bool
}

// NewMux builds a multiplexer over the published services. defect may be
// nil for a robust mux.
func NewMux(services []Service, defect *MuxDefect) *Mux {
	m := &Mux{
		services: append([]Service(nil), services...),
		defect:   defect,
		dlcs:     make(map[uint8]DLCState),
		visited:  map[DLCState]bool{DLCClosed: true},
	}
	return m
}

// Crashed reports whether the injected defect has fired.
func (m *Mux) Crashed() bool { return m.crashed }

// StatesVisited returns the DLC states any connection has occupied.
func (m *Mux) StatesVisited() []DLCState {
	var out []DLCState
	for s := DLCClosed; s <= DLCDisconnecting; s++ {
		if m.visited[s] {
			out = append(out, s)
		}
	}
	return out
}

// serviceForDLCI reports whether a service listens behind dlci.
func (m *Mux) serviceForDLCI(dlci uint8) bool {
	for _, s := range m.services {
		if s.Channel<<1 == dlci&^0x01 {
			return true
		}
	}
	return false
}

func (m *Mux) setState(dlci uint8, s DLCState) {
	m.dlcs[dlci] = s
	m.visited[s] = true
	if s == DLCClosed {
		delete(m.dlcs, dlci)
	}
}

// State returns the state of one DLC (closed when never seen).
func (m *Mux) State(dlci uint8) DLCState {
	if s, ok := m.dlcs[dlci]; ok {
		return s
	}
	return DLCClosed
}

// Handle processes one raw RFCOMM frame and returns the response frames'
// wire bytes (nil when the frame is dropped or the mux died).
func (m *Mux) Handle(raw []byte) [][]byte {
	if m.crashed {
		return nil
	}
	f, err := Unmarshal(raw)
	if err != nil {
		// Bad FCS or undecodable frames are dropped silently (TS 07.10):
		// the RFCOMM analogue of "command not understood".
		return nil
	}
	if m.defect.Matches(f) {
		m.crashed = true
		return nil
	}
	switch f.Type {
	case FrameSABM:
		return m.onSABM(f)
	case FrameDISC:
		return m.onDISC(f)
	case FrameUIH:
		return m.onUIH(f)
	case FrameUA, FrameDM:
		return nil // responses to nothing we sent; ignored
	default:
		return nil
	}
}

func (m *Mux) onSABM(f Frame) [][]byte {
	ua := Frame{DLCI: f.DLCI, CommandResponse: false, Type: FrameUA, PollFinal: true}
	dm := Frame{DLCI: f.DLCI, CommandResponse: false, Type: FrameDM, PollFinal: true}
	switch {
	case f.DLCI == 0:
		// Control channel: always accepted; starts the session.
		m.started = true
		m.setState(0, DLCConnected)
		return [][]byte{ua.Marshal()}
	case !m.started:
		// Data DLC before the control channel: refused.
		return [][]byte{dm.Marshal()}
	case m.serviceForDLCI(f.DLCI):
		m.setState(f.DLCI, DLCConnecting)
		m.setState(f.DLCI, DLCConnected)
		return [][]byte{ua.Marshal()}
	default:
		return [][]byte{dm.Marshal()}
	}
}

func (m *Mux) onDISC(f Frame) [][]byte {
	if m.State(f.DLCI) == DLCClosed {
		dm := Frame{DLCI: f.DLCI, Type: FrameDM, PollFinal: true}
		return [][]byte{dm.Marshal()}
	}
	m.setState(f.DLCI, DLCDisconnecting)
	m.setState(f.DLCI, DLCClosed)
	if f.DLCI == 0 {
		// Closing the control channel ends the session.
		m.started = false
		for dlci := range m.dlcs {
			m.setState(dlci, DLCClosed)
		}
	}
	ua := Frame{DLCI: f.DLCI, Type: FrameUA, PollFinal: true}
	return [][]byte{ua.Marshal()}
}

func (m *Mux) onUIH(f Frame) [][]byte {
	if m.State(f.DLCI) != DLCConnected {
		dm := Frame{DLCI: f.DLCI, Type: FrameDM, PollFinal: true}
		return [][]byte{dm.Marshal()}
	}
	// Loop data back on connected DLCs: enough behaviour for the fuzzer
	// to observe liveness.
	echo := Frame{DLCI: f.DLCI, Type: FrameUIH, Payload: f.Payload}
	return [][]byte{echo.Marshal()}
}
