package rfcomm

import (
	"errors"
	"fmt"
)

// FrameType is the TS 07.10 control-octet frame type (poll/final bit
// masked out).
type FrameType uint8

// RFCOMM frame types.
const (
	// FrameSABM (set asynchronous balanced mode) opens a DLC.
	FrameSABM FrameType = 0x2F
	// FrameUA (unnumbered acknowledgement) accepts SABM/DISC.
	FrameUA FrameType = 0x63
	// FrameDM (disconnected mode) refuses a command.
	FrameDM FrameType = 0x0F
	// FrameDISC closes a DLC.
	FrameDISC FrameType = 0x43
	// FrameUIH carries data (unnumbered information with header check).
	FrameUIH FrameType = 0xEF
)

// pfBit is the poll/final bit within the control octet.
const pfBit = 0x10

// MaxDLCI is the largest data-link connection identifier (6 bits).
const MaxDLCI = 63

// Decode errors.
var (
	// ErrShortFrame indicates fewer bytes than the minimal frame.
	ErrShortFrame = errors.New("rfcomm: frame too short")
	// ErrBadFCS indicates a frame-check-sequence mismatch.
	ErrBadFCS = errors.New("rfcomm: FCS mismatch")
	// ErrBadLength indicates a length field inconsistent with the frame.
	ErrBadLength = errors.New("rfcomm: length mismatch")
	// ErrBadType indicates an undefined control octet.
	ErrBadType = errors.New("rfcomm: unknown frame type")
)

// Valid reports whether t is one of the five defined frame types.
func (t FrameType) Valid() bool {
	switch t {
	case FrameSABM, FrameUA, FrameDM, FrameDISC, FrameUIH:
		return true
	default:
		return false
	}
}

func (t FrameType) String() string {
	switch t {
	case FrameSABM:
		return "SABM"
	case FrameUA:
		return "UA"
	case FrameDM:
		return "DM"
	case FrameDISC:
		return "DISC"
	case FrameUIH:
		return "UIH"
	default:
		return fmt.Sprintf("FrameType(0x%02X)", uint8(t))
	}
}

// Frame is one RFCOMM frame.
type Frame struct {
	// DLCI is the data-link connection identifier (0 = control channel).
	// It is the mutable-core field of the RFCOMM frame: the analogue of
	// L2CAP's PSM/CID port-and-channel settings.
	DLCI uint8
	// CommandResponse is the C/R bit of the address octet.
	CommandResponse bool
	// Type is the frame type.
	Type FrameType
	// PollFinal is the P/F bit.
	PollFinal bool
	// Payload is the information field (UIH frames).
	Payload []byte
	// Tail is any garbage carried beyond the FCS — the same
	// declared-length-versus-actual-bytes trick core field mutating uses
	// at the L2CAP layer.
	Tail []byte
}

// Marshal encodes the frame with a correct FCS.
func (f Frame) Marshal() []byte {
	addr := uint8(0x01) // EA bit
	if f.CommandResponse {
		addr |= 0x02
	}
	addr |= (f.DLCI & 0x3F) << 2

	ctrl := uint8(f.Type)
	if f.PollFinal {
		ctrl |= pfBit
	}

	out := []byte{addr, ctrl}
	n := len(f.Payload)
	if n <= 127 {
		out = append(out, uint8(n<<1)|0x01) // one-octet length, EA set
	} else {
		out = append(out, uint8(n<<1), uint8(n>>7)) // two octets, EA clear
	}
	headerLen := len(out)
	out = append(out, f.Payload...)

	// FCS: over address+control for UIH, over address+control+length
	// otherwise (TS 07.10 §5.2.1.6).
	span := 2
	if f.Type != FrameUIH {
		span = headerLen
	}
	out = append(out, fcs(out[:span]))
	return append(out, f.Tail...)
}

// Unmarshal decodes one frame, verifying the FCS and treating bytes
// beyond the FCS as Tail.
func Unmarshal(raw []byte) (Frame, error) {
	if len(raw) < 4 {
		return Frame{}, fmt.Errorf("%w: %d bytes", ErrShortFrame, len(raw))
	}
	var f Frame
	addr := raw[0]
	f.DLCI = addr >> 2 & 0x3F
	f.CommandResponse = addr&0x02 != 0

	ctrl := raw[1]
	f.PollFinal = ctrl&pfBit != 0
	f.Type = FrameType(ctrl &^ pfBit)
	if !f.Type.Valid() {
		return Frame{}, fmt.Errorf("%w: 0x%02X", ErrBadType, ctrl)
	}

	// Length field (EA-encoded).
	var n, headerLen int
	if raw[2]&0x01 != 0 {
		n = int(raw[2] >> 1)
		headerLen = 3
	} else {
		if len(raw) < 5 {
			return Frame{}, fmt.Errorf("%w: truncated two-octet length", ErrShortFrame)
		}
		n = int(raw[2]>>1) | int(raw[3])<<7
		headerLen = 4
	}
	if len(raw) < headerLen+n+1 {
		return Frame{}, fmt.Errorf("%w: declared %d payload bytes, frame has %d",
			ErrBadLength, n, len(raw)-headerLen-1)
	}
	f.Payload = append([]byte(nil), raw[headerLen:headerLen+n]...)

	span := 2
	if f.Type != FrameUIH {
		span = headerLen
	}
	if got, want := raw[headerLen+n], fcs(raw[:span]); got != want {
		return Frame{}, fmt.Errorf("%w: got 0x%02X, want 0x%02X", ErrBadFCS, got, want)
	}
	f.Tail = append([]byte(nil), raw[headerLen+n+1:]...)
	return f, nil
}

// fcs computes the TS 07.10 frame check sequence: reflected CRC-8 with
// polynomial x⁸+x²+x+1, initial value 0xFF, final complement.
func fcs(data []byte) uint8 {
	crc := uint8(0xFF)
	for _, b := range data {
		crc = crcTable[crc^b]
	}
	return ^crc
}

// crcTable is the reflected CRC-8 table for polynomial 0x07 (reflected
// 0xE0), as specified by GSM TS 07.10 Annex B.
var crcTable = buildCRCTable()

func buildCRCTable() [256]uint8 {
	var table [256]uint8
	for i := 0; i < 256; i++ {
		crc := uint8(i)
		for bit := 0; bit < 8; bit++ {
			if crc&0x01 != 0 {
				crc = crc>>1 ^ 0xE0
			} else {
				crc >>= 1
			}
		}
		table[i] = crc
	}
	return table
}
