// Package rfcomm implements the subset of the RFCOMM protocol
// (GSM TS 07.10 over L2CAP, PSM 0x0003) needed to demonstrate the
// paper's §V extension claim: that L2Fuzz's two techniques — state
// guiding and core field mutating — transfer to the other Bluetooth core
// protocols stacked above L2CAP.
//
// The package provides:
//
//   - the TS 07.10 frame codec: address octet (EA/CR/DLCI), control
//     octet (SABM, UA, DM, DISC, UIH with the poll/final bit), one- and
//     two-octet length encoding, and the real reflected CRC-8 frame check
//     sequence — the FCS is a *dependent* field in the paper's taxonomy,
//     computed rather than mutated;
//   - a multiplexer session state machine per data link connection
//     (closed → SABM-wait → connected → disconnect), mirroring how the
//     L2CAP machine drives the device model;
//   - a server-side Mux the simulated devices mount on their RFCOMM
//     L2CAP channel, with an optional injected defect so the extension
//     fuzzer has something to find.
//
// The field classification carries over exactly as §V predicts: the DLCI
// (the RFCOMM analogue of a port/channel) is the mutable core field;
// EA bits, lengths and the FCS are dependent; UIH payloads are
// application data left at defaults plus a bounded garbage tail.
package rfcomm
