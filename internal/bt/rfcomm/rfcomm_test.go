package rfcomm

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrips(t *testing.T) {
	tests := []struct {
		name  string
		frame Frame
	}{
		{"SABM control channel", Frame{DLCI: 0, CommandResponse: true, Type: FrameSABM, PollFinal: true}},
		{"UA", Frame{DLCI: 2, Type: FrameUA, PollFinal: true}},
		{"DM", Frame{DLCI: 63, Type: FrameDM}},
		{"DISC", Frame{DLCI: 4, CommandResponse: true, Type: FrameDISC, PollFinal: true}},
		{"UIH short", Frame{DLCI: 2, Type: FrameUIH, Payload: []byte("hello")}},
		{"UIH empty", Frame{DLCI: 2, Type: FrameUIH}},
		{"UIH long (two-octet length)", Frame{DLCI: 6, Type: FrameUIH, Payload: bytes.Repeat([]byte{0xAB}, 300)}},
		{"garbage tail", Frame{DLCI: 0, Type: FrameSABM, Tail: []byte{0xDE, 0xAD}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			out, err := Unmarshal(tt.frame.Marshal())
			if err != nil {
				t.Fatalf("Unmarshal() error = %v", err)
			}
			if out.DLCI != tt.frame.DLCI || out.Type != tt.frame.Type ||
				out.PollFinal != tt.frame.PollFinal || out.CommandResponse != tt.frame.CommandResponse {
				t.Errorf("header mismatch: got %+v, want %+v", out, tt.frame)
			}
			if !bytes.Equal(out.Payload, tt.frame.Payload) {
				t.Errorf("payload mismatch")
			}
			if !bytes.Equal(out.Tail, tt.frame.Tail) {
				t.Errorf("tail = %x, want %x", out.Tail, tt.frame.Tail)
			}
		})
	}
}

func TestUnmarshalRejectsCorruptFCS(t *testing.T) {
	raw := Frame{DLCI: 2, Type: FrameSABM}.Marshal()
	raw[len(raw)-1] ^= 0xFF
	if _, err := Unmarshal(raw); !errors.Is(err, ErrBadFCS) {
		t.Fatalf("error = %v, want ErrBadFCS", err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	tests := []struct {
		name    string
		raw     []byte
		wantErr error
	}{
		{"too short", []byte{1, 2}, ErrShortFrame},
		{"unknown type", []byte{0x01, 0x55, 0x01, 0x00}, ErrBadType},
		{"length overrun", []byte{0x01, 0x2F, 0x0B, 0x00}, ErrBadLength},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Unmarshal(tt.raw); !errors.Is(err, tt.wantErr) {
				t.Fatalf("error = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestFCSSpans(t *testing.T) {
	// For UIH the FCS covers only address+control, so corrupting the
	// payload must NOT fail the FCS; for SABM it covers the length too.
	uih := Frame{DLCI: 2, Type: FrameUIH, Payload: []byte{1, 2, 3}}.Marshal()
	uih[3] ^= 0xFF // payload byte
	if _, err := Unmarshal(uih); err != nil {
		t.Fatalf("UIH payload corruption failed FCS: %v", err)
	}
	sabm := Frame{DLCI: 2, Type: FrameSABM}.Marshal()
	sabm[2] ^= 0x02 // length field (keep EA bit)
	if _, err := Unmarshal(sabm); err == nil {
		t.Fatal("SABM length corruption passed FCS")
	}
}

func TestMuxSessionLifecycle(t *testing.T) {
	m := NewMux([]Service{{Channel: 1, Name: "SPP"}}, nil)

	// Data DLC before control channel: refused with DM.
	rsp := m.Handle(Frame{DLCI: 2, CommandResponse: true, Type: FrameSABM, PollFinal: true}.Marshal())
	assertTypes(t, rsp, FrameDM)

	// Control channel SABM: UA.
	rsp = m.Handle(Frame{DLCI: 0, CommandResponse: true, Type: FrameSABM, PollFinal: true}.Marshal())
	assertTypes(t, rsp, FrameUA)

	// Service channel 1 → DLCI 2: UA.
	rsp = m.Handle(Frame{DLCI: 2, CommandResponse: true, Type: FrameSABM, PollFinal: true}.Marshal())
	assertTypes(t, rsp, FrameUA)
	if m.State(2) != DLCConnected {
		t.Fatalf("DLC 2 state = %v, want CONNECTED", m.State(2))
	}

	// Unknown service DLCI: DM.
	rsp = m.Handle(Frame{DLCI: 10, CommandResponse: true, Type: FrameSABM, PollFinal: true}.Marshal())
	assertTypes(t, rsp, FrameDM)

	// Data on the connected DLC echoes.
	rsp = m.Handle(Frame{DLCI: 2, Type: FrameUIH, Payload: []byte("ping")}.Marshal())
	assertTypes(t, rsp, FrameUIH)
	if f, _ := Unmarshal(rsp[0]); string(f.Payload) != "ping" {
		t.Fatalf("echo payload = %q", f.Payload)
	}

	// Data on a closed DLC: DM.
	rsp = m.Handle(Frame{DLCI: 4, Type: FrameUIH, Payload: []byte("x")}.Marshal())
	assertTypes(t, rsp, FrameDM)

	// Disconnect the DLC, then the session.
	rsp = m.Handle(Frame{DLCI: 2, CommandResponse: true, Type: FrameDISC, PollFinal: true}.Marshal())
	assertTypes(t, rsp, FrameUA)
	if m.State(2) != DLCClosed {
		t.Fatalf("DLC 2 state = %v, want CLOSED", m.State(2))
	}
	rsp = m.Handle(Frame{DLCI: 0, CommandResponse: true, Type: FrameDISC, PollFinal: true}.Marshal())
	assertTypes(t, rsp, FrameUA)

	// After session end, data DLCs are refused again.
	rsp = m.Handle(Frame{DLCI: 2, CommandResponse: true, Type: FrameSABM, PollFinal: true}.Marshal())
	assertTypes(t, rsp, FrameDM)

	// All four DLC states were visited.
	if got := len(m.StatesVisited()); got != 4 {
		t.Fatalf("visited %d states, want 4: %v", got, m.StatesVisited())
	}
}

func TestMuxDropsCorruptFrames(t *testing.T) {
	m := NewMux(nil, nil)
	raw := Frame{DLCI: 0, Type: FrameSABM}.Marshal()
	raw[len(raw)-1] ^= 0x01
	if rsp := m.Handle(raw); rsp != nil {
		t.Fatalf("corrupt frame answered with %d frames, want silence", len(rsp))
	}
}

func TestMuxDISCOnClosedDLC(t *testing.T) {
	m := NewMux(nil, nil)
	rsp := m.Handle(Frame{DLCI: 5, Type: FrameDISC, PollFinal: true}.Marshal())
	assertTypes(t, rsp, FrameDM)
}

func TestReservedDLCIDefect(t *testing.T) {
	m := NewMux([]Service{{Channel: 1, Name: "SPP"}}, ReservedDLCIDefect())
	// Establish the session first.
	m.Handle(Frame{DLCI: 0, CommandResponse: true, Type: FrameSABM, PollFinal: true}.Marshal())

	// The killer frame: SABM to a reserved DLCI with a garbage tail.
	rsp := m.Handle(Frame{DLCI: 63, CommandResponse: true, Type: FrameSABM, PollFinal: true, Tail: []byte{0xD2}}.Marshal())
	if rsp != nil {
		t.Fatalf("defect frame got %d responses, want silence (mux died)", len(rsp))
	}
	if !m.Crashed() {
		t.Fatal("defect did not fire")
	}
	// Everything is dead now.
	if rsp := m.Handle(Frame{DLCI: 0, Type: FrameSABM}.Marshal()); rsp != nil {
		t.Fatal("crashed mux still answers")
	}
}

func TestReservedDLCIDefectNeedsTail(t *testing.T) {
	m := NewMux(nil, ReservedDLCIDefect())
	m.Handle(Frame{DLCI: 0, CommandResponse: true, Type: FrameSABM, PollFinal: true}.Marshal())
	// Same frame without the tail: survives (answered with DM).
	rsp := m.Handle(Frame{DLCI: 63, CommandResponse: true, Type: FrameSABM, PollFinal: true}.Marshal())
	assertTypes(t, rsp, FrameDM)
	if m.Crashed() {
		t.Fatal("defect fired without the tail")
	}
}

func assertTypes(t *testing.T, raws [][]byte, want ...FrameType) {
	t.Helper()
	if len(raws) != len(want) {
		t.Fatalf("got %d response frames, want %d", len(raws), len(want))
	}
	for i, raw := range raws {
		f, err := Unmarshal(raw)
		if err != nil {
			t.Fatalf("response %d undecodable: %v", i, err)
		}
		if f.Type != want[i] {
			t.Fatalf("response %d type = %v, want %v", i, f.Type, want[i])
		}
	}
}

// Property: Marshal∘Unmarshal is the identity on well-formed frames.
func TestQuickFrameRoundTrip(t *testing.T) {
	types := []FrameType{FrameSABM, FrameUA, FrameDM, FrameDISC, FrameUIH}
	f := func(dlci uint8, typePick uint8, pf, cr bool, payload []byte) bool {
		if len(payload) > 1000 {
			payload = payload[:1000]
		}
		in := Frame{
			DLCI:            dlci % 64,
			CommandResponse: cr,
			Type:            types[int(typePick)%len(types)],
			PollFinal:       pf,
			Payload:         payload,
		}
		out, err := Unmarshal(in.Marshal())
		if err != nil {
			return false
		}
		return out.DLCI == in.DLCI && out.Type == in.Type &&
			out.PollFinal == in.PollFinal && bytes.Equal(out.Payload, in.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Unmarshal never panics and never accepts a frame whose FCS
// byte was flipped.
func TestQuickUnmarshalTotalAndFCSSound(t *testing.T) {
	f := func(raw []byte) bool {
		_, _ = Unmarshal(raw)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// Property: the mux is total — any byte string is handled without panic
// and the returned frames always decode.
func TestQuickMuxTotal(t *testing.T) {
	m := NewMux([]Service{{Channel: 1, Name: "SPP"}}, nil)
	f := func(raw []byte) bool {
		for _, rsp := range m.Handle(raw) {
			if _, err := Unmarshal(rsp); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
