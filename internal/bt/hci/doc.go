// Package hci implements a virtual Host Controller Interface: the layer
// between a Bluetooth host stack and its controller (paper Figure 1).
//
// The package provides the HCI ACL data-packet framing from the paper's
// Figure 3 (packet type, connection handle, packet-boundary and broadcast
// flags, data length) including fragmentation and reassembly of L2CAP
// frames across the controller's ACL buffer size, plus a Controller type
// that manages baseband connections over a radio.Medium: inquiry, paging
// (connection creation), connection handles, and ACL data transfer.
//
// Everything a host stack or the fuzzer needs from real HCI hardware is
// reproduced here so the layers above (L2CAP, the vendor stacks, L2Fuzz
// itself) run unmodified against the simulation.
package hci
