package hci

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
	"testing/quick"
)

func TestACLMarshalRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		pkt  ACLPacket
	}{
		{"first fragment", ACLPacket{Handle: 0x001, Boundary: BoundaryFirstFlushable, Data: []byte{1, 2, 3}}},
		{"continuation", ACLPacket{Handle: 0xEFF, Boundary: BoundaryContinuation, Data: []byte{4}}},
		{"broadcast", ACLPacket{Handle: 0x123, Boundary: BoundaryFirstFlushable, Broadcast: 1, Data: nil}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			out, err := UnmarshalACL(tt.pkt.Marshal())
			if err != nil {
				t.Fatalf("UnmarshalACL() error = %v", err)
			}
			if out.Handle != tt.pkt.Handle || out.Boundary != tt.pkt.Boundary || out.Broadcast != tt.pkt.Broadcast {
				t.Errorf("header mismatch: got %+v, want %+v", out, tt.pkt)
			}
			if !bytes.Equal(out.Data, tt.pkt.Data) {
				t.Errorf("data = %x, want %x", out.Data, tt.pkt.Data)
			}
		})
	}
}

func TestUnmarshalACLErrors(t *testing.T) {
	if _, err := UnmarshalACL([]byte{1, 2}); !errors.Is(err, ErrShortACL) {
		t.Errorf("short packet error = %v, want ErrShortACL", err)
	}
	bad := ACLPacket{Handle: 1, Boundary: BoundaryFirstFlushable, Data: []byte{1, 2, 3}}.Marshal()
	binary.LittleEndian.PutUint16(bad[2:4], 99)
	if _, err := UnmarshalACL(bad); !errors.Is(err, ErrACLLength) {
		t.Errorf("length mismatch error = %v, want ErrACLLength", err)
	}
}

func buildL2CAPFrame(payloadLen int) []byte {
	frame := make([]byte, 4+payloadLen)
	binary.LittleEndian.PutUint16(frame[0:2], uint16(payloadLen))
	binary.LittleEndian.PutUint16(frame[2:4], 0x0001)
	for i := 0; i < payloadLen; i++ {
		frame[4+i] = byte(i)
	}
	return frame
}

func TestFragmentBoundaries(t *testing.T) {
	frame := buildL2CAPFrame(2500)
	frags := Fragment(0x0042, frame, 1021)
	if len(frags) != 3 {
		t.Fatalf("got %d fragments, want 3", len(frags))
	}
	if frags[0].Boundary != BoundaryFirstFlushable {
		t.Error("first fragment must have first-flushable boundary")
	}
	for _, f := range frags[1:] {
		if f.Boundary != BoundaryContinuation {
			t.Error("later fragments must be continuations")
		}
	}
	total := 0
	for _, f := range frags {
		if f.Handle != 0x0042 {
			t.Error("fragment handle mismatch")
		}
		total += len(f.Data)
	}
	if total != len(frame) {
		t.Errorf("fragments carry %d bytes, want %d", total, len(frame))
	}
}

func TestFragmentDefaultsBufSize(t *testing.T) {
	frame := buildL2CAPFrame(10)
	frags := Fragment(1, frame, 0)
	if len(frags) != 1 {
		t.Fatalf("got %d fragments, want 1", len(frags))
	}
}

func TestReassemblerRebuildsAcrossFragments(t *testing.T) {
	frame := buildL2CAPFrame(2500)
	var r Reassembler
	var got []byte
	for i, f := range Fragment(1, frame, 333) {
		out, done, err := r.Push(f)
		if err != nil {
			t.Fatalf("Push(%d) error = %v", i, err)
		}
		if done {
			got = out
		}
	}
	if !bytes.Equal(got, frame) {
		t.Fatalf("reassembled %d bytes, want %d identical bytes", len(got), len(frame))
	}
}

func TestReassemblerKeepsGarbageTail(t *testing.T) {
	// A frame whose declared length is 4 but which carries 8 payload
	// bytes (garbage tail) must come back intact when sent in one
	// fragment.
	frame := buildL2CAPFrame(4)
	frame = append(frame, 0xDE, 0xAD, 0xBE, 0xEF)
	var r Reassembler
	out, done, err := r.Push(Fragment(1, frame, 1021)[0])
	if err != nil || !done {
		t.Fatalf("Push() = (done=%v, err=%v)", done, err)
	}
	if !bytes.Equal(out, frame) {
		t.Fatalf("reassembled frame lost the garbage tail: %x", out)
	}
}

func TestReassemblerErrors(t *testing.T) {
	var r Reassembler
	_, _, err := r.Push(ACLPacket{Boundary: BoundaryContinuation, Data: []byte{1}})
	if !errors.Is(err, ErrReassembly) {
		t.Errorf("continuation-first error = %v, want ErrReassembly", err)
	}
	_, _, err = r.Push(ACLPacket{Boundary: 0, Data: []byte{1}})
	if !errors.Is(err, ErrReassembly) {
		t.Errorf("bad boundary error = %v, want ErrReassembly", err)
	}
}

func TestReassemblerDiscardsTruncatedFrame(t *testing.T) {
	var r Reassembler
	// Start a long frame but never finish it...
	frags := Fragment(1, buildL2CAPFrame(2000), 500)
	if _, done, err := r.Push(frags[0]); done || err != nil {
		t.Fatalf("first push = (done=%v, err=%v)", done, err)
	}
	// ...then a fresh frame starts; the stale buffer must be dropped.
	fresh := buildL2CAPFrame(4)
	out, done, err := r.Push(Fragment(1, fresh, 1021)[0])
	if err != nil || !done {
		t.Fatalf("fresh push = (done=%v, err=%v)", done, err)
	}
	if !bytes.Equal(out, fresh) {
		t.Fatalf("got %x, want fresh frame", out)
	}
}

// Property: fragment→reassemble is the identity for any payload size and
// buffer size.
func TestQuickFragmentReassembleIdentity(t *testing.T) {
	f := func(payloadLen uint16, bufSize uint16) bool {
		frame := buildL2CAPFrame(int(payloadLen % 4096))
		var r Reassembler
		var got []byte
		for _, frag := range Fragment(7, frame, int(bufSize%2048)) {
			out, done, err := r.Push(frag)
			if err != nil {
				return false
			}
			if done {
				got = out
			}
		}
		return bytes.Equal(got, frame)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: ACL marshal/unmarshal is lossless for in-range headers.
func TestQuickACLRoundTrip(t *testing.T) {
	f := func(handle uint16, boundary, broadcast uint8, data []byte) bool {
		in := ACLPacket{
			Handle:    ConnHandle(handle % uint16(MaxConnHandle+1)),
			Boundary:  BoundaryFlag(boundary % 4),
			Broadcast: broadcast % 4,
			Data:      data,
		}
		out, err := UnmarshalACL(in.Marshal())
		if err != nil {
			return false
		}
		return out.Handle == in.Handle && out.Boundary == in.Boundary &&
			out.Broadcast == in.Broadcast && bytes.Equal(out.Data, in.Data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
