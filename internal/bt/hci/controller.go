package hci

import (
	"errors"
	"fmt"

	"l2fuzz/internal/bt/radio"
)

// Controller is a virtual HCI controller: the firmware half of the
// Bluetooth stack (paper Figure 1). It owns the baseband state —
// discoverability, connection handles, fragmentation — and hands complete
// L2CAP frames to the host stack above it.
//
// Controller is not safe for concurrent use; the discrete-event
// simulation is single-threaded (see package radio).
type Controller struct {
	addr   radio.BDAddr
	medium *radio.Medium

	// identity metadata exposed during inquiry
	name          string
	classOfDevice uint32
	discoverable  bool
	connectable   bool

	aclBufSize int
	nextHandle ConnHandle

	// txScratch is the reused wire buffer for outbound ACL fragments. A
	// carried frame is a borrow the medium and receiver must not retain,
	// so one scratch per controller suffices: each Carry fully delivers
	// before the next fragment overwrites it.
	txScratch []byte

	byHandle map[ConnHandle]*link
	byPeer   map[radio.BDAddr]*link

	// receiver gets complete L2CAP frames from the host side.
	receiver func(h ConnHandle, peer radio.BDAddr, l2capFrame []byte)
	// disconnected notifies the host of torn-down links.
	disconnected func(h ConnHandle, peer radio.BDAddr)
}

type link struct {
	handle     ConnHandle
	peer       radio.BDAddr
	reassembly Reassembler
}

// Controller errors.
var (
	// ErrNoSuchHandle indicates an unknown connection handle.
	ErrNoSuchHandle = errors.New("hci: no such connection handle")
	// ErrAlreadyConnected indicates a duplicate connection to one peer.
	ErrAlreadyConnected = errors.New("hci: already connected to peer")
)

// Config carries the identity of a controller.
type Config struct {
	// Addr is the BD_ADDR.
	Addr radio.BDAddr
	// Name is the friendly device name revealed by remote-name requests.
	Name string
	// ClassOfDevice is the 24-bit class-of-device code.
	ClassOfDevice uint32
	// Discoverable controls inquiry responses.
	Discoverable bool
	// Connectable controls page (connection) acceptance.
	Connectable bool
	// ACLBufferSize bounds fragment payloads; zero means the default.
	ACLBufferSize int
}

// NewController creates a controller and registers it on the medium.
func NewController(m *radio.Medium, cfg Config) (*Controller, error) {
	c := &Controller{
		addr:          cfg.Addr,
		medium:        m,
		name:          cfg.Name,
		classOfDevice: cfg.ClassOfDevice,
		discoverable:  cfg.Discoverable,
		connectable:   cfg.Connectable,
		aclBufSize:    cfg.ACLBufferSize,
		nextHandle:    0x0001,
		byHandle:      make(map[ConnHandle]*link),
		byPeer:        make(map[radio.BDAddr]*link),
	}
	if c.aclBufSize <= 0 {
		c.aclBufSize = DefaultACLBufferSize
	}
	if err := m.Register(c); err != nil {
		return nil, fmt.Errorf("register controller: %w", err)
	}
	return c, nil
}

var (
	_ radio.Endpoint     = (*Controller)(nil)
	_ radio.LinkObserver = (*Controller)(nil)
)

// LinkDown implements radio.LinkObserver: the medium reports link loss
// (the peer dropped the link or vanished), equivalent to a Disconnection
// Complete event.
func (c *Controller) LinkDown(peer radio.BDAddr) {
	if l, ok := c.byPeer[peer]; ok {
		c.removeLink(l)
	}
}

// Address implements radio.Endpoint.
func (c *Controller) Address() radio.BDAddr { return c.addr }

// Connectable implements radio.Endpoint.
func (c *Controller) Connectable() bool { return c.connectable }

// Discoverable implements radio.Endpoint.
func (c *Controller) Discoverable() (radio.InquiryResult, bool) {
	if !c.discoverable {
		return radio.InquiryResult{}, false
	}
	return radio.InquiryResult{
		Addr:          c.addr,
		Name:          c.name,
		ClassOfDevice: c.classOfDevice,
	}, true
}

// SetReceiver installs the host-stack callback for complete inbound
// L2CAP frames. The frame passed to the callback is a borrow, valid only
// until the callback returns; the host must copy anything it retains.
func (c *Controller) SetReceiver(fn func(h ConnHandle, peer radio.BDAddr, l2capFrame []byte)) {
	c.receiver = fn
}

// SetDisconnectHandler installs the host-stack callback for link loss.
func (c *Controller) SetDisconnectHandler(fn func(h ConnHandle, peer radio.BDAddr)) {
	c.disconnected = fn
}

// Inquiry sweeps the medium for discoverable devices.
func (c *Controller) Inquiry() []radio.InquiryResult {
	return c.medium.Inquiry(c.addr)
}

// Connect pages the peer and allocates a connection handle.
func (c *Controller) Connect(peer radio.BDAddr) (ConnHandle, error) {
	if _, dup := c.byPeer[peer]; dup {
		return 0, fmt.Errorf("%w: %v", ErrAlreadyConnected, peer)
	}
	if err := c.medium.Page(c.addr, peer); err != nil {
		return 0, fmt.Errorf("page %v: %w", peer, err)
	}
	return c.addLink(peer), nil
}

// Disconnect drops the link behind the handle.
func (c *Controller) Disconnect(h ConnHandle) error {
	l, ok := c.byHandle[h]
	if !ok {
		return fmt.Errorf("%w: %v", ErrNoSuchHandle, h)
	}
	c.medium.Drop(c.addr, l.peer)
	c.removeLink(l)
	return nil
}

// Connected reports whether a handle is live.
func (c *Controller) Connected(h ConnHandle) bool {
	_, ok := c.byHandle[h]
	return ok
}

// HandleFor returns the handle of an existing link to peer.
func (c *Controller) HandleFor(peer radio.BDAddr) (ConnHandle, bool) {
	l, ok := c.byPeer[peer]
	if !ok {
		return 0, false
	}
	return l.handle, true
}

// SendL2CAP fragments one complete L2CAP frame and carries every fragment
// across the medium. Fragmentation happens in place against a reused
// scratch buffer, so steady-state sends do not allocate.
func (c *Controller) SendL2CAP(h ConnHandle, l2capFrame []byte) error {
	l, ok := c.byHandle[h]
	if !ok {
		return fmt.Errorf("%w: %v", ErrNoSuchHandle, h)
	}
	boundary := BoundaryFirstFlushable
	rest := l2capFrame
	for {
		n := min(len(rest), c.aclBufSize)
		frag := ACLPacket{Handle: h, Boundary: boundary, Data: rest[:n]}
		c.txScratch = frag.AppendTo(c.txScratch[:0])
		if err := c.medium.Carry(c.addr, l.peer, c.txScratch); err != nil {
			return fmt.Errorf("carry fragment: %w", err)
		}
		rest = rest[n:]
		if len(rest) == 0 {
			return nil
		}
		boundary = BoundaryContinuation
	}
}

// ReceiveFrame implements radio.Endpoint: an ACL fragment arrived.
func (c *Controller) ReceiveFrame(from radio.BDAddr, data []byte) {
	pkt, err := ParseACL(data)
	if err != nil {
		return // malformed baseband frames are dropped silently, as hardware does
	}
	l, ok := c.byPeer[from]
	if !ok {
		// Implicit link acceptance: the peer paged us and this is the
		// first traffic. Accept if we are connectable.
		if !c.connectable {
			return
		}
		l = c.acceptLink(from)
	}
	frame, done, err := l.reassembly.Push(pkt)
	if err != nil || !done {
		return
	}
	if c.receiver != nil {
		c.receiver(l.handle, from, frame)
	}
}

// Peers returns the addresses of all live links, in ascending handle
// order (deterministic).
func (c *Controller) Peers() []radio.BDAddr {
	handles := make([]ConnHandle, 0, len(c.byHandle))
	for h := range c.byHandle {
		handles = append(handles, h)
	}
	for i := 1; i < len(handles); i++ {
		for j := i; j > 0 && handles[j] < handles[j-1]; j-- {
			handles[j], handles[j-1] = handles[j-1], handles[j]
		}
	}
	peers := make([]radio.BDAddr, len(handles))
	for i, h := range handles {
		peers[i] = c.byHandle[h].peer
	}
	return peers
}

// DropPeer tears down the link to peer, notifying the host. Used by the
// device model to simulate crashes that kill the Bluetooth service.
func (c *Controller) DropPeer(peer radio.BDAddr) {
	if l, ok := c.byPeer[peer]; ok {
		c.medium.Drop(c.addr, peer)
		c.removeLink(l)
	}
}

// SetConnectable flips page-acceptance at runtime (service down/up).
func (c *Controller) SetConnectable(v bool) { c.connectable = v }

// SetDiscoverable flips inquiry visibility at runtime.
func (c *Controller) SetDiscoverable(v bool) { c.discoverable = v }

func (c *Controller) addLink(peer radio.BDAddr) ConnHandle {
	h := c.nextHandle
	c.nextHandle++
	if c.nextHandle > MaxConnHandle {
		c.nextHandle = 0x0001
	}
	l := &link{handle: h, peer: peer}
	c.byHandle[h] = l
	c.byPeer[peer] = l
	return h
}

func (c *Controller) acceptLink(peer radio.BDAddr) *link {
	h := c.addLink(peer)
	return c.byHandle[h]
}

// removeLink is idempotent: a link can be torn down both by a local
// Disconnect and by the medium's LinkDown notification.
func (c *Controller) removeLink(l *link) {
	if _, ok := c.byHandle[l.handle]; !ok {
		return
	}
	delete(c.byHandle, l.handle)
	delete(c.byPeer, l.peer)
	if c.disconnected != nil {
		c.disconnected(l.handle, l.peer)
	}
}
