package hci

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// PacketType is the HCI transport packet indicator (UART/H4 numbering).
type PacketType uint8

// HCI packet types.
const (
	// PacketCommand carries host-to-controller commands.
	PacketCommand PacketType = 0x01
	// PacketACL carries asynchronous connection-oriented data.
	PacketACL PacketType = 0x02
	// PacketSCO carries synchronous voice data.
	PacketSCO PacketType = 0x03
	// PacketEvent carries controller-to-host events.
	PacketEvent PacketType = 0x04
)

// ConnHandle is a 12-bit HCI connection handle.
type ConnHandle uint16

// MaxConnHandle is the largest legal connection handle value.
const MaxConnHandle ConnHandle = 0x0EFF

// BoundaryFlag is the 2-bit packet-boundary flag of an ACL packet.
type BoundaryFlag uint8

// Packet-boundary flags.
const (
	// BoundaryContinuation marks a continuation fragment.
	BoundaryContinuation BoundaryFlag = 0b01
	// BoundaryFirstFlushable marks the first fragment of an L2CAP frame.
	BoundaryFirstFlushable BoundaryFlag = 0b10
)

// ACLHeaderSize is the size of the ACL data packet header: 2 bytes of
// handle+flags and 2 bytes of data length (the paper's Figure 3 HCI
// fields: Connection Handle, Flag, Length).
const ACLHeaderSize = 4

// DefaultACLBufferSize is the controller's maximum ACL fragment payload.
// 1021 bytes is the common BR/EDR 3-DH5 controller buffer size; L2CAP
// frames longer than this are fragmented.
const DefaultACLBufferSize = 1021

// ACL decode errors.
var (
	// ErrShortACL indicates fewer bytes than the ACL header.
	ErrShortACL = errors.New("hci: ACL packet shorter than header")
	// ErrACLLength indicates a declared length mismatching the payload.
	ErrACLLength = errors.New("hci: ACL declared length mismatch")
	// ErrReassembly indicates an out-of-order or overflowing fragment.
	ErrReassembly = errors.New("hci: ACL reassembly error")
)

// ACLPacket is one HCI ACL data packet (one baseband fragment).
type ACLPacket struct {
	// Handle identifies the baseband connection.
	Handle ConnHandle
	// Boundary marks first vs continuation fragments.
	Boundary BoundaryFlag
	// Broadcast is the 2-bit broadcast flag; zero for point-to-point.
	Broadcast uint8
	// Data is the fragment payload.
	Data []byte
}

// Marshal encodes the ACL packet into a fresh buffer. Hot paths use
// AppendTo with a reused scratch buffer instead.
func (p ACLPacket) Marshal() []byte {
	return p.AppendTo(make([]byte, 0, ACLHeaderSize+len(p.Data)))
}

// AppendTo appends the wire form of the ACL packet to dst and returns the
// extended slice: the allocation-free marshal of the fragment hot path.
func (p ACLPacket) AppendTo(dst []byte) []byte {
	var hdr [ACLHeaderSize]byte
	hf := uint16(p.Handle)&0x0FFF |
		uint16(p.Boundary&0b11)<<12 |
		uint16(p.Broadcast&0b11)<<14
	binary.LittleEndian.PutUint16(hdr[0:2], hf)
	binary.LittleEndian.PutUint16(hdr[2:4], uint16(len(p.Data)))
	dst = append(dst, hdr[:]...)
	return append(dst, p.Data...)
}

// UnmarshalACL decodes one ACL packet, copying the payload. The caller
// keeps ownership of raw; decode loops use ParseACL instead.
func UnmarshalACL(raw []byte) (ACLPacket, error) {
	p, err := ParseACL(raw)
	if err != nil {
		return ACLPacket{}, err
	}
	p.Data = append([]byte(nil), p.Data...)
	return p, nil
}

// ParseACL decodes one ACL packet without copying: the returned packet's
// Data aliases raw (borrow semantics) and is valid only while raw is.
func ParseACL(raw []byte) (ACLPacket, error) {
	if len(raw) < ACLHeaderSize {
		return ACLPacket{}, fmt.Errorf("%w: got %d bytes", ErrShortACL, len(raw))
	}
	hf := binary.LittleEndian.Uint16(raw[0:2])
	declared := int(binary.LittleEndian.Uint16(raw[2:4]))
	body := raw[ACLHeaderSize:]
	if declared != len(body) {
		return ACLPacket{}, fmt.Errorf("%w: declared %d, got %d", ErrACLLength, declared, len(body))
	}
	return ACLPacket{
		Handle:    ConnHandle(hf & 0x0FFF),
		Boundary:  BoundaryFlag(hf >> 12 & 0b11),
		Broadcast: uint8(hf >> 14 & 0b11),
		Data:      body,
	}, nil
}

// Fragment splits one complete L2CAP frame into ACL packets no larger
// than bufSize, with correct boundary flags. bufSize values below 1 fall
// back to DefaultACLBufferSize.
func Fragment(handle ConnHandle, l2capFrame []byte, bufSize int) []ACLPacket {
	if bufSize < 1 {
		bufSize = DefaultACLBufferSize
	}
	var out []ACLPacket
	boundary := BoundaryFirstFlushable
	rest := l2capFrame
	for {
		n := min(len(rest), bufSize)
		out = append(out, ACLPacket{
			Handle:   handle,
			Boundary: boundary,
			Data:     append([]byte(nil), rest[:n]...),
		})
		rest = rest[n:]
		if len(rest) == 0 {
			return out
		}
		boundary = BoundaryContinuation
	}
}

// Reassembler rebuilds L2CAP frames from ACL fragments of one connection.
// The zero value is ready to use.
type Reassembler struct {
	buf      []byte
	expected int
	active   bool
}

// Push consumes one fragment. When a complete L2CAP frame (per its basic
// header length) is available it is returned with done=true and the
// reassembler resets. Fragments beyond the declared L2CAP length stay in
// the frame (garbage tails are part of the payload the paper's mutation
// produces), so completion is decided by "at least header+declared bytes
// and the fragment stream says first-fragment boundaries start frames".
//
// The returned frame is a borrow — it aliases either p.Data (when the
// frame completed in a single first fragment) or the reassembler's
// internal buffer — and is valid only until the next Push on this
// reassembler or until p.Data's own lifetime ends, whichever comes first.
// Callers that retain the frame must copy.
func (r *Reassembler) Push(p ACLPacket) (frame []byte, done bool, err error) {
	switch p.Boundary {
	case BoundaryFirstFlushable:
		if frameComplete(p.Data) {
			// Fast path: the whole L2CAP frame fits in this fragment, so
			// hand it back without staging it through the buffer.
			r.buf = r.buf[:0]
			r.active = false
			return p.Data, true, nil
		}
		// Starting a new frame implicitly discards any cut-short
		// predecessor still in the buffer.
		r.active = true
		r.buf = append(r.buf[:0], p.Data...)
	case BoundaryContinuation:
		if !r.active {
			return nil, false, fmt.Errorf("%w: continuation without start", ErrReassembly)
		}
		r.buf = append(r.buf, p.Data...)
	default:
		return nil, false, fmt.Errorf("%w: unexpected boundary flag %d", ErrReassembly, p.Boundary)
	}
	if !frameComplete(r.buf) {
		return nil, false, nil
	}
	// Complete. Tails (bytes beyond declared) are included: the sender
	// marked them part of this frame by not starting a new first-fragment.
	// The buffer is handed out as a borrow; the next first fragment
	// reclaims it.
	r.active = false
	return r.buf, true, nil
}

// frameComplete reports whether b holds at least one whole L2CAP basic
// frame: the 4-byte header plus its declared payload length.
func frameComplete(b []byte) bool {
	if len(b) < 4 {
		return false
	}
	return len(b) >= 4+int(binary.LittleEndian.Uint16(b[0:2]))
}
