package hci

import (
	"bytes"
	"errors"
	"testing"

	"l2fuzz/internal/bt/radio"
)

func twoControllers(t *testing.T) (*radio.Medium, *Controller, *Controller) {
	t.Helper()
	m := radio.NewMedium(nil, radio.DefaultTiming())
	a, err := NewController(m, Config{
		Addr: radio.MustBDAddr("00:00:00:00:00:0A"),
		Name: "tester", Discoverable: true, Connectable: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewController(m, Config{
		Addr: radio.MustBDAddr("00:00:00:00:00:0B"),
		Name: "target", ClassOfDevice: 0x5A020C, Discoverable: true, Connectable: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, a, b
}

func TestControllerInquiry(t *testing.T) {
	_, a, _ := twoControllers(t)
	results := a.Inquiry()
	if len(results) != 1 {
		t.Fatalf("Inquiry() found %d, want 1", len(results))
	}
	r := results[0]
	if r.Name != "target" || r.ClassOfDevice != 0x5A020C {
		t.Errorf("result = %+v", r)
	}
}

func TestConnectSendReceive(t *testing.T) {
	_, a, b := twoControllers(t)

	type rx struct {
		handle ConnHandle
		frame  []byte
	}
	var got []rx
	b.SetReceiver(func(h ConnHandle, _ radio.BDAddr, frame []byte) {
		got = append(got, rx{handle: h, frame: frame})
	})

	h, err := a.Connect(b.Address())
	if err != nil {
		t.Fatalf("Connect() error = %v", err)
	}
	if !a.Connected(h) {
		t.Fatal("handle not live after Connect")
	}

	frame := buildL2CAPFrame(3000) // forces fragmentation
	if err := a.SendL2CAP(h, frame); err != nil {
		t.Fatalf("SendL2CAP() error = %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("target received %d frames, want 1", len(got))
	}
	if !bytes.Equal(got[0].frame, frame) {
		t.Fatalf("received %d bytes, want %d identical", len(got[0].frame), len(frame))
	}

	// The target can answer on its implicit link.
	var back [][]byte
	a.SetReceiver(func(_ ConnHandle, _ radio.BDAddr, frame []byte) {
		back = append(back, frame)
	})
	bh, ok := b.HandleFor(a.Address())
	if !ok {
		t.Fatal("target has no handle for initiator")
	}
	reply := buildL2CAPFrame(8)
	if err := b.SendL2CAP(bh, reply); err != nil {
		t.Fatalf("reply SendL2CAP() error = %v", err)
	}
	if len(back) != 1 || !bytes.Equal(back[0], reply) {
		t.Fatalf("initiator got %v, want one reply frame", back)
	}
}

func TestConnectDuplicate(t *testing.T) {
	_, a, b := twoControllers(t)
	if _, err := a.Connect(b.Address()); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Connect(b.Address()); !errors.Is(err, ErrAlreadyConnected) {
		t.Fatalf("second Connect error = %v, want ErrAlreadyConnected", err)
	}
}

func TestDisconnect(t *testing.T) {
	_, a, b := twoControllers(t)
	h, err := a.Connect(b.Address())
	if err != nil {
		t.Fatal(err)
	}
	var dropped []ConnHandle
	a.SetDisconnectHandler(func(h ConnHandle, _ radio.BDAddr) { dropped = append(dropped, h) })

	if err := a.Disconnect(h); err != nil {
		t.Fatalf("Disconnect() error = %v", err)
	}
	if a.Connected(h) {
		t.Error("handle still live after Disconnect")
	}
	if len(dropped) != 1 || dropped[0] != h {
		t.Errorf("disconnect handler got %v, want [%v]", dropped, h)
	}
	if err := a.SendL2CAP(h, buildL2CAPFrame(4)); !errors.Is(err, ErrNoSuchHandle) {
		t.Errorf("SendL2CAP after disconnect error = %v, want ErrNoSuchHandle", err)
	}
	if err := a.Disconnect(h); !errors.Is(err, ErrNoSuchHandle) {
		t.Errorf("double Disconnect error = %v, want ErrNoSuchHandle", err)
	}
}

func TestDropPeerSimulatesCrash(t *testing.T) {
	_, a, b := twoControllers(t)
	h, err := a.Connect(b.Address())
	if err != nil {
		t.Fatal(err)
	}
	// Target receives something to materialise its side of the link.
	b.SetReceiver(func(ConnHandle, radio.BDAddr, []byte) {})
	if err := a.SendL2CAP(h, buildL2CAPFrame(4)); err != nil {
		t.Fatal(err)
	}

	b.DropPeer(a.Address())
	if err := a.SendL2CAP(h, buildL2CAPFrame(4)); err == nil {
		t.Error("SendL2CAP after peer drop should fail (link gone)")
	}
}

func TestUnconnectableTargetRejectsPage(t *testing.T) {
	m := radio.NewMedium(nil, radio.DefaultTiming())
	a, err := NewController(m, Config{Addr: radio.MustBDAddr("00:00:00:00:00:0A"), Connectable: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewController(m, Config{Addr: radio.MustBDAddr("00:00:00:00:00:0B"), Connectable: false}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Connect(radio.MustBDAddr("00:00:00:00:00:0B")); !errors.Is(err, radio.ErrNotConnectable) {
		t.Fatalf("Connect error = %v, want ErrNotConnectable", err)
	}
}

func TestSetConnectableAtRuntime(t *testing.T) {
	_, a, b := twoControllers(t)
	b.SetConnectable(false)
	if _, err := a.Connect(b.Address()); err == nil {
		t.Fatal("Connect succeeded against unconnectable target")
	}
	b.SetConnectable(true)
	if _, err := a.Connect(b.Address()); err != nil {
		t.Fatalf("Connect after re-enable error = %v", err)
	}
}

func TestSetDiscoverableAtRuntime(t *testing.T) {
	_, a, b := twoControllers(t)
	b.SetDiscoverable(false)
	if got := a.Inquiry(); len(got) != 0 {
		t.Fatalf("Inquiry() found %d, want 0 after SetDiscoverable(false)", len(got))
	}
}

func TestHandlesAreDistinctPerLink(t *testing.T) {
	m := radio.NewMedium(nil, radio.DefaultTiming())
	a, err := NewController(m, Config{Addr: radio.MustBDAddr("00:00:00:00:00:0A"), Connectable: true})
	if err != nil {
		t.Fatal(err)
	}
	handles := make(map[ConnHandle]bool)
	for i := byte(1); i <= 5; i++ {
		addr := radio.BDAddr{0, 0, 0, 0, 1, i}
		if _, err := NewController(m, Config{Addr: addr, Connectable: true}); err != nil {
			t.Fatal(err)
		}
		h, err := a.Connect(addr)
		if err != nil {
			t.Fatal(err)
		}
		if handles[h] {
			t.Fatalf("handle %v reused across live links", h)
		}
		handles[h] = true
	}
}
