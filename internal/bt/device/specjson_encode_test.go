package device

import (
	"bytes"
	"strings"
	"testing"

	"l2fuzz/internal/bt/radio"
)

// TestEncodeSpecRoundTrip pins the encoder as DecodeSpec's inverse:
// decode → encode → decode must converge, with the second encoding
// byte-identical to the first (the JSON form is a fixed point).
func TestEncodeSpecRoundTrip(t *testing.T) {
	spec, err := DecodeSpec([]byte(validSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	enc1, err := EncodeSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	again, err := DecodeSpec(enc1)
	if err != nil {
		t.Fatalf("encoded spec does not decode: %v\n%s", err, enc1)
	}
	enc2, err := EncodeSpec(again)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc1, enc2) {
		t.Errorf("encoding is not a fixed point:\nfirst:  %s\nsecond: %s", enc1, enc2)
	}

	// Spot-check the semantic fields survived the round trip (the specs
	// themselves carry closures, so they are compared by observable
	// shape, not DeepEqual).
	if again.Name != spec.Name || again.Config.Addr != spec.Config.Addr {
		t.Errorf("identity drifted: %q/%v vs %q/%v", again.Name, again.Config.Addr, spec.Name, spec.Config.Addr)
	}
	if again.Config.Profile.Stack != spec.Config.Profile.Stack {
		t.Errorf("stack drifted: %q vs %q", again.Config.Profile.Stack, spec.Config.Profile.Stack)
	}
	if len(again.Config.Profile.Vulns) != len(spec.Config.Profile.Vulns) ||
		again.Config.Profile.Vulns[0].ID != spec.Config.Profile.Vulns[0].ID {
		t.Errorf("defects drifted: %+v vs %+v", again.Config.Profile.Vulns, spec.Config.Profile.Vulns)
	}
	if len(again.Config.Ports) != len(spec.Config.Ports) {
		t.Errorf("ports drifted: %+v vs %+v", again.Config.Ports, spec.Config.Ports)
	}
	if len(again.Config.RFCOMMServices) != len(spec.Config.RFCOMMServices) ||
		(again.Config.RFCOMMDefect == nil) != (spec.Config.RFCOMMDefect == nil) {
		t.Error("rfcomm shape drifted")
	}
	if again.ExpectVuln != spec.ExpectVuln || again.ExpectClass != spec.ExpectClass {
		t.Errorf("expectations drifted: %v/%v vs %v/%v",
			again.ExpectVuln, again.ExpectClass, spec.ExpectVuln, spec.ExpectClass)
	}
}

// TestEncodeSpecExpectVulnExplicit: a spec whose expectVuln was forced
// off despite armed defects must keep it off through the round trip —
// the encoder writes the field explicitly so the decoder's armed-defect
// default cannot flip it back.
func TestEncodeSpecExpectVulnExplicit(t *testing.T) {
	spec, err := DecodeSpec([]byte(`{
	  "name": "denied", "addr": "02:00:00:00:00:04",
	  "profile": {"stack": "bluez", "btVersion": "5.0"},
	  "defects": ["option-overrun-gpf"],
	  "expectVuln": false
	}`))
	if err != nil {
		t.Fatal(err)
	}
	enc, err := EncodeSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	again, err := DecodeSpec(enc)
	if err != nil {
		t.Fatal(err)
	}
	if again.ExpectVuln {
		t.Errorf("expectVuln flipped on through the round trip:\n%s", enc)
	}
}

func TestEncodeSpecErrors(t *testing.T) {
	base := func() Spec {
		s, err := DecodeSpec([]byte(validSpecJSON))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	for _, tc := range []struct {
		name   string
		mutate func(*Spec)
		want   string
	}{
		{"config name mismatch", func(s *Spec) { s.Config.Name = "Smart Speaker" }, "one name"},
		{"disable vulns", func(s *Spec) { s.Config.DisableVulns = true }, "DisableVulns"},
		{"unknown stack", func(s *Spec) { s.Config.Profile.Stack = "VendorOS" }, "no JSON name"},
		{"unknown defect", func(s *Spec) { s.Config.Profile.Vulns[0].ID = "zero-day" }, "not a catalog defect"},
		{"custom profile knobs", func(s *Spec) { s.Config.Profile.SignalingMTU++ }, "behaviour knobs"},
		{"rfcomm defect without services", func(s *Spec) { s.Config.RFCOMMServices = nil }, "not decodable"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			spec := base()
			tc.mutate(&spec)
			_, err := EncodeSpec(spec)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("EncodeSpec error = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

// TestEncodeSpecMinimal: a defect-free spec with no optional fields
// encodes without nulls for the omitted sections and still decodes.
func TestEncodeSpecMinimal(t *testing.T) {
	spec := Spec{
		Name: "plain",
		Config: Config{
			Addr:    radio.MustBDAddr("02:00:00:00:00:09"),
			Name:    "plain",
			Profile: WindowsProfile("5.0"),
		},
	}
	enc, err := EncodeSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, absent := range []string{"defects", "rfcomm", "ports", "classOfDevice", "expectClass"} {
		if strings.Contains(string(enc), absent) {
			t.Errorf("minimal encoding carries %q: %s", absent, enc)
		}
	}
	if _, err := DecodeSpec(enc); err != nil {
		t.Fatalf("minimal encoding does not decode: %v\n%s", err, enc)
	}
}
