package device

import (
	"fmt"
	"strings"
	"time"

	"l2fuzz/internal/bt/l2cap"
	"l2fuzz/internal/bt/sm"
)

// CrashClass is the observable severity of a triggered defect, matching
// the Description column of the paper's Table VI.
type CrashClass uint8

const (
	// ClassDoS terminates the Bluetooth service: the device stays up but
	// Bluetooth is paralysed until reset (D1, D2, D3).
	ClassDoS CrashClass = iota + 1
	// ClassCrash terminates the device or its Bluetooth subsystem
	// entirely and abnormally (D5, D8).
	ClassCrash
)

func (c CrashClass) String() string {
	switch c {
	case ClassDoS:
		return "DoS"
	case ClassCrash:
		return "Crash"
	default:
		return fmt.Sprintf("CrashClass(%d)", uint8(c))
	}
}

// DumpKind is the crash artefact a defect leaves behind.
type DumpKind uint8

const (
	// DumpNone leaves no artefact (firmware death, D5).
	DumpNone DumpKind = iota + 1
	// DumpTombstone is an Android tombstone file (D1, D2, D3).
	DumpTombstone
	// DumpGPFault is a crash dump recording a general protection error
	// (D8).
	DumpGPFault
)

// TriggerContext is everything a vulnerability predicate may inspect
// about one incoming signaling command.
type TriggerContext struct {
	// State is the state of the channel the command was resolved against,
	// or StateClosed when no channel is involved.
	State sm.State
	// Code is the signaling command code.
	Code l2cap.CommandCode
	// Cmd is the decoded command.
	Cmd l2cap.Command
	// Tail is the garbage appended beyond the declared lengths.
	Tail []byte
	// KnownCID reports whether the command addressed a channel endpoint
	// the device actually allocated.
	KnownCID bool
}

// Job is the job of the contextual state.
func (c TriggerContext) Job() sm.Job { return sm.JobOf(c.State) }

// VulnSpec is one injected implementation defect.
type VulnSpec struct {
	// ID names the defect, e.g. "bluedroid-ccb-null-deref".
	ID string
	// Description is the paper-facing summary.
	Description string
	// Class is the observable severity.
	Class CrashClass
	// Dump is the artefact kind.
	Dump DumpKind
	// FaultFunc is the function name recorded in the dump backtrace.
	FaultFunc string
	// Trigger decides whether this command, in this context, fires the
	// defect.
	Trigger func(TriggerContext) bool
}

// BlueDroidCCBNullDeref reproduces the Android ID 195112457 defect of
// §IV-E: in a configuration-job state, a Configuration Request whose DCID
// ignores the device's dynamic allocation — the paper's packet used DCID
// 0x0040 re-sent after allocation moved on — combined with a garbage tail
// dereferences a null channel control block in l2c_csm_execute.
//
// The dcidLowByte parameter narrows the trigger to DCIDs whose low byte
// matches (0x40 replicates the paper's packet) and minTail to garbage
// tails of at least that length — together they calibrate how rare the
// defect is, and therefore the simulated time-to-detection (Table VI
// reports 1m25s for D2). matchAll widens the trigger for tests.
func BlueDroidCCBNullDeref(dcidLowByte uint8, minTail int, matchAll bool) VulnSpec {
	return VulnSpec{
		ID:          "bluedroid-ccb-null-deref",
		Description: "null pointer dereference in L2CAP channel control block (DoS)",
		Class:       ClassDoS,
		Dump:        DumpTombstone,
		FaultFunc:   "l2c_csm_execute(t_l2c_ccb*, unsigned short, void*)+3748",
		Trigger: func(ctx TriggerContext) bool {
			if ctx.Job() != sm.JobConfiguration || ctx.Code != l2cap.CodeConfigurationReq {
				return false
			}
			req, ok := ctx.Cmd.(*l2cap.ConfigurationReq)
			if !ok || ctx.KnownCID || len(ctx.Tail) == 0 {
				return false
			}
			if matchAll {
				return true
			}
			return uint8(req.DCID&0xFF) == dcidLowByte && len(ctx.Tail) >= minTail
		},
	}
}

// SamsungCreateChannelDeref reproduces the D3 (Galaxy S7) variant: a DoS
// triggered by a malformed Create Channel Request in the WAIT_CREATE
// state — a command and state only L2Fuzz exercises. The trigger requires
// an abnormal PSM in the given band, a source CID aligned to scidMask,
// and a garbage tail of at least minTail bytes, making it rarer than the
// plain BlueDroid defect (the paper measured 7m11s vs 1m25s).
func SamsungCreateChannelDeref(psmBand uint8, minTail int, scidMask uint16) VulnSpec {
	return VulnSpec{
		ID:          "bluedroid-samsung-create-deref",
		Description: "null pointer dereference via malformed Create Channel Request (DoS)",
		Class:       ClassDoS,
		Dump:        DumpTombstone,
		FaultFunc:   "l2c_csm_execute(t_l2c_ccb*, unsigned short, void*)+2212",
		Trigger: func(ctx TriggerContext) bool {
			if ctx.Job() != sm.JobCreation || ctx.Code != l2cap.CodeCreateChannelReq {
				return false
			}
			req, ok := ctx.Cmd.(*l2cap.CreateChannelReq)
			if !ok || len(ctx.Tail) < minTail {
				return false
			}
			if uint16(req.SCID)&scidMask != 0 {
				return false
			}
			return uint8(req.PSM>>8) == psmBand && l2cap.IsAbnormalPSM(req.PSM)
		},
	}
}

// RTKitPSMServiceKill reproduces the D5 (AirPods) defect: a connection
// request carrying a malicious PSM from one of the paper's Table IV odd
// bands terminates the RTKit Bluetooth service without any control —
// the device simply vanishes from the air. psmBand pins the vulnerable
// band (a firmware port-table slot) and scidMask models the hash-bucket
// alignment the lookup needs; together they calibrate the paper's 40 s
// detection time. Zero values widen the trigger for tests.
func RTKitPSMServiceKill(psmBand uint8, scidMask uint16) VulnSpec {
	return VulnSpec{
		ID:          "rtkit-psm-service-kill",
		Description: "device termination via malicious PSM in connection request (Crash)",
		Class:       ClassCrash,
		Dump:        DumpNone,
		FaultFunc:   "RTKitServicePort::dispatch",
		Trigger: func(ctx TriggerContext) bool {
			if ctx.Code != l2cap.CodeConnectionReq {
				return false
			}
			req, ok := ctx.Cmd.(*l2cap.ConnectionReq)
			if !ok {
				return false
			}
			// Odd-band abnormal PSMs only: structurally almost-valid ports
			// that reach deeper dispatch before dying.
			if req.PSM&0x0001 != 0x0001 || !l2cap.IsAbnormalPSM(req.PSM) {
				return false
			}
			if psmBand != 0 && uint8(req.PSM>>8) != psmBand {
				return false
			}
			return uint16(req.SCID)&scidMask == 0
		},
	}
}

// BlueZOptionOverrunGPF reproduces the D8 (BlueZ) defect: a Configuration
// Request addressing a low dynamic CID whose channel moved on, with a
// long garbage tail, corrupts the option-parsing loop and dies with a
// general protection error. The narrow trigger — DCID low byte matching
// an early allocation slot, DCID below dcidMax, a long tail, and a
// specific configuration sub-state — models the paper's 2h40m detection
// time on the 13-port target.
func BlueZOptionOverrunGPF(dcidLowByte uint8, dcidMax l2cap.CID, minTail int, state sm.State) VulnSpec {
	return VulnSpec{
		ID:          "bluez-option-overrun-gpf",
		Description: "general protection fault in configuration option parsing (Crash)",
		Class:       ClassCrash,
		Dump:        DumpGPFault,
		FaultFunc:   "l2cap_parse_conf_req+0x1f4/0x5a0 [bluetooth]",
		Trigger: func(ctx TriggerContext) bool {
			if ctx.State != state || ctx.Code != l2cap.CodeConfigurationReq {
				return false
			}
			req, ok := ctx.Cmd.(*l2cap.ConfigurationReq)
			if !ok || ctx.KnownCID || len(ctx.Tail) < minTail {
				return false
			}
			return uint8(req.DCID&0xFF) == dcidLowByte && req.DCID <= dcidMax
		},
	}
}

// CrashDump is the artefact a fired defect leaves on the device.
type CrashDump struct {
	// Kind is the artefact kind.
	Kind DumpKind
	// Time is the simulated time of the crash.
	Time time.Duration
	// VulnID names the defect that fired.
	VulnID string
	// Fingerprint is the device build fingerprint line.
	Fingerprint string
	// FaultFunc is the top backtrace frame.
	FaultFunc string
	// Trigger describes the packet that fired the defect.
	Trigger string
}

// Render produces a human-readable dump resembling the paper's Figure 12
// tombstone for Android artefacts, and a kernel-style record for general
// protection faults.
func (d CrashDump) Render() string {
	var b strings.Builder
	switch d.Kind {
	case DumpTombstone:
		b.WriteString("*** *** *** *** *** *** *** *** *** *** *** ***\n")
		fmt.Fprintf(&b, "Build fingerprint: '%s'\n", d.Fingerprint)
		fmt.Fprintf(&b, "Timestamp: T+%v\n", d.Time)
		b.WriteString("pid: 1948, tid: 2946, name: bt_main_thread  >>> com.android.bluetooth <<<\n")
		b.WriteString("signal 11 (SIGSEGV), code 1 (SEGV_MAPERR), fault addr 0x20\n")
		b.WriteString("Cause: null pointer dereference\n")
		b.WriteString("backtrace:\n")
		fmt.Fprintf(&b, "  #00 pc 0000000000378da0  /system/lib64/libbluetooth.so (%s)\n", d.FaultFunc)
		fmt.Fprintf(&b, "triggering packet: %s\n", d.Trigger)
	case DumpGPFault:
		fmt.Fprintf(&b, "crash dump (T+%v)\n", d.Time)
		fmt.Fprintf(&b, "general protection fault, probably for non-canonical address: 0000 [#1] SMP PTI\n")
		fmt.Fprintf(&b, "RIP: 0010:%s\n", d.FaultFunc)
		fmt.Fprintf(&b, "Bluetooth communication recorded; triggering packet: %s\n", d.Trigger)
	default:
		fmt.Fprintf(&b, "no crash artefact (device terminated, T+%v, %s)\n", d.Time, d.VulnID)
	}
	return b.String()
}
