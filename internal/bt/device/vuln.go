package device

import (
	"fmt"
	"strings"
	"time"

	"l2fuzz/internal/bt/l2cap"
	"l2fuzz/internal/bt/sm"
)

// CrashClass is the observable severity of a triggered defect, matching
// the Description column of the paper's Table VI.
type CrashClass uint8

const (
	// ClassDoS terminates the Bluetooth service: the device stays up but
	// Bluetooth is paralysed until reset (D1, D2, D3).
	ClassDoS CrashClass = iota + 1
	// ClassCrash terminates the device or its Bluetooth subsystem
	// entirely and abnormally (D5, D8).
	ClassCrash
)

func (c CrashClass) String() string {
	switch c {
	case ClassDoS:
		return "DoS"
	case ClassCrash:
		return "Crash"
	default:
		return fmt.Sprintf("CrashClass(%d)", uint8(c))
	}
}

// DumpKind is the crash artefact a defect leaves behind.
type DumpKind uint8

const (
	// DumpNone leaves no artefact (firmware death, D5).
	DumpNone DumpKind = iota + 1
	// DumpTombstone is an Android tombstone file (D1, D2, D3).
	DumpTombstone
	// DumpGPFault is a crash dump recording a general protection error
	// (D8).
	DumpGPFault
)

// TriggerContext is everything a vulnerability predicate may inspect
// about one incoming signaling command.
type TriggerContext struct {
	// State is the state of the channel the command was resolved against,
	// or StateClosed when no channel is involved.
	State sm.State
	// Code is the signaling command code.
	Code l2cap.CommandCode
	// Cmd is the decoded command.
	Cmd l2cap.Command
	// Tail is the garbage appended beyond the declared lengths.
	Tail []byte
	// KnownCID reports whether the command addressed a channel endpoint
	// the device actually allocated.
	KnownCID bool
	// Seq is the 1-based count of signaling commands the device has
	// decoded since its last reset: the clock exhaustion-style defects
	// (TriggerCommandFlood) fire on.
	Seq int
}

// Job is the job of the contextual state.
func (c TriggerContext) Job() sm.Job { return sm.JobOf(c.State) }

// TriggerKind names a defect-predicate family. Triggers are declarative
// — a kind plus calibration parameters in a TriggerSpec — so a device
// spec carrying them is plain data: JSON-serializable, comparable by
// value, and identical on both sides of a process boundary (the fleet's
// proc executor ships specs to worker processes).
type TriggerKind string

// The predicate families, one per injected defect shape.
const (
	// TriggerCCBNullDeref is the BlueDroid null-CCB dereference family:
	// a Configuration Request to an unallocated endpoint with a garbage
	// tail, narrowed by DCIDLowByte and MinTail (MatchAll widens it).
	TriggerCCBNullDeref TriggerKind = "ccb-null-deref"
	// TriggerCreateChannelDeref is the Samsung create-channel family: a
	// malformed Create Channel Request with an abnormal PSM in PSMBand,
	// an SCID aligned to SCIDMask and a tail of at least MinTail bytes.
	TriggerCreateChannelDeref TriggerKind = "create-channel-deref"
	// TriggerPSMServiceKill is the RTKit malicious-PSM family: a
	// Connection Request carrying an odd-band abnormal PSM (optionally
	// pinned to PSMBand) with an SCID aligned to SCIDMask.
	TriggerPSMServiceKill TriggerKind = "psm-service-kill"
	// TriggerOptionOverrunGPF is the BlueZ option-parsing family: a
	// Configuration Request to an unallocated low dynamic CID (DCIDLowByte,
	// DCIDMax) in a specific configuration sub-state (State) with a tail
	// of at least MinTail bytes (MatchAll drops the state and CID narrowing).
	TriggerOptionOverrunGPF TriggerKind = "option-overrun-gpf"
	// TriggerCommandFlood is the resource-exhaustion family: any checked
	// command fires once the device has decoded at least MinCommands
	// signaling commands since its last reset. Tests use it to place a
	// crash at a controlled depth into a run.
	TriggerCommandFlood TriggerKind = "command-flood"
)

// TriggerSpec is a declarative defect predicate: Kind selects the
// family, the remaining fields calibrate it. Fields a family does not
// read are ignored; the zero TriggerSpec matches nothing.
type TriggerSpec struct {
	// Kind selects the predicate family.
	Kind TriggerKind `json:"kind"`
	// DCIDLowByte narrows DCID-keyed families to DCIDs whose low byte
	// matches.
	DCIDLowByte uint8 `json:"dcidLowByte,omitempty"`
	// DCIDMax caps the DCID for TriggerOptionOverrunGPF.
	DCIDMax l2cap.CID `json:"dcidMax,omitempty"`
	// PSMBand pins the vulnerable PSM high byte; zero means any band for
	// TriggerPSMServiceKill.
	PSMBand uint8 `json:"psmBand,omitempty"`
	// SCIDMask models hash-bucket alignment: the trigger requires
	// SCID&SCIDMask == 0.
	SCIDMask uint16 `json:"scidMask,omitempty"`
	// MinTail is the shortest garbage tail that fires the defect.
	MinTail int `json:"minTail,omitempty"`
	// State is the required channel state for TriggerOptionOverrunGPF.
	State sm.State `json:"state,omitempty"`
	// MatchAll widens a family to its whole command shape, for tests.
	MatchAll bool `json:"matchAll,omitempty"`
	// MinCommands is TriggerCommandFlood's firing depth.
	MinCommands int `json:"minCommands,omitempty"`
}

// Matches evaluates the declarative predicate against one command.
func (t TriggerSpec) Matches(ctx TriggerContext) bool {
	switch t.Kind {
	case TriggerCCBNullDeref:
		if ctx.Job() != sm.JobConfiguration || ctx.Code != l2cap.CodeConfigurationReq {
			return false
		}
		req, ok := ctx.Cmd.(*l2cap.ConfigurationReq)
		if !ok || ctx.KnownCID || len(ctx.Tail) == 0 {
			return false
		}
		if t.MatchAll {
			return true
		}
		return uint8(req.DCID&0xFF) == t.DCIDLowByte && len(ctx.Tail) >= t.MinTail
	case TriggerCreateChannelDeref:
		if ctx.Job() != sm.JobCreation || ctx.Code != l2cap.CodeCreateChannelReq {
			return false
		}
		req, ok := ctx.Cmd.(*l2cap.CreateChannelReq)
		if !ok || len(ctx.Tail) < t.MinTail {
			return false
		}
		if uint16(req.SCID)&t.SCIDMask != 0 {
			return false
		}
		return uint8(req.PSM>>8) == t.PSMBand && l2cap.IsAbnormalPSM(req.PSM)
	case TriggerPSMServiceKill:
		if ctx.Code != l2cap.CodeConnectionReq {
			return false
		}
		req, ok := ctx.Cmd.(*l2cap.ConnectionReq)
		if !ok {
			return false
		}
		// Odd-band abnormal PSMs only: structurally almost-valid ports
		// that reach deeper dispatch before dying.
		if req.PSM&0x0001 != 0x0001 || !l2cap.IsAbnormalPSM(req.PSM) {
			return false
		}
		if t.PSMBand != 0 && uint8(req.PSM>>8) != t.PSMBand {
			return false
		}
		return uint16(req.SCID)&t.SCIDMask == 0
	case TriggerOptionOverrunGPF:
		if ctx.Code != l2cap.CodeConfigurationReq {
			return false
		}
		req, ok := ctx.Cmd.(*l2cap.ConfigurationReq)
		if !ok || ctx.KnownCID || len(ctx.Tail) < t.MinTail {
			return false
		}
		if t.MatchAll {
			return true
		}
		return ctx.State == t.State && uint8(req.DCID&0xFF) == t.DCIDLowByte && req.DCID <= t.DCIDMax
	case TriggerCommandFlood:
		return t.MinCommands > 0 && ctx.Seq >= t.MinCommands
	}
	return false
}

// VulnSpec is one injected implementation defect. It is pure data —
// Trigger is a declarative TriggerSpec, not code — so whole specs
// serialize, compare by value and survive a trip through a job journal
// or the proc executor's wire protocol.
type VulnSpec struct {
	// ID names the defect, e.g. "bluedroid-ccb-null-deref".
	ID string `json:"id"`
	// Description is the paper-facing summary.
	Description string `json:"description"`
	// Class is the observable severity.
	Class CrashClass `json:"class"`
	// Dump is the artefact kind.
	Dump DumpKind `json:"dump"`
	// FaultFunc is the function name recorded in the dump backtrace.
	FaultFunc string `json:"faultFunc,omitempty"`
	// Trigger decides whether a command, in its context, fires the
	// defect.
	Trigger TriggerSpec `json:"trigger"`
}

// BlueDroidCCBNullDeref reproduces the Android ID 195112457 defect of
// §IV-E: in a configuration-job state, a Configuration Request whose DCID
// ignores the device's dynamic allocation — the paper's packet used DCID
// 0x0040 re-sent after allocation moved on — combined with a garbage tail
// dereferences a null channel control block in l2c_csm_execute.
//
// The dcidLowByte parameter narrows the trigger to DCIDs whose low byte
// matches (0x40 replicates the paper's packet) and minTail to garbage
// tails of at least that length — together they calibrate how rare the
// defect is, and therefore the simulated time-to-detection (Table VI
// reports 1m25s for D2). matchAll widens the trigger for tests.
func BlueDroidCCBNullDeref(dcidLowByte uint8, minTail int, matchAll bool) VulnSpec {
	return VulnSpec{
		ID:          "bluedroid-ccb-null-deref",
		Description: "null pointer dereference in L2CAP channel control block (DoS)",
		Class:       ClassDoS,
		Dump:        DumpTombstone,
		FaultFunc:   "l2c_csm_execute(t_l2c_ccb*, unsigned short, void*)+3748",
		Trigger: TriggerSpec{
			Kind:        TriggerCCBNullDeref,
			DCIDLowByte: dcidLowByte,
			MinTail:     minTail,
			MatchAll:    matchAll,
		},
	}
}

// SamsungCreateChannelDeref reproduces the D3 (Galaxy S7) variant: a DoS
// triggered by a malformed Create Channel Request in the WAIT_CREATE
// state — a command and state only L2Fuzz exercises. The trigger requires
// an abnormal PSM in the given band, a source CID aligned to scidMask,
// and a garbage tail of at least minTail bytes, making it rarer than the
// plain BlueDroid defect (the paper measured 7m11s vs 1m25s).
func SamsungCreateChannelDeref(psmBand uint8, minTail int, scidMask uint16) VulnSpec {
	return VulnSpec{
		ID:          "bluedroid-samsung-create-deref",
		Description: "null pointer dereference via malformed Create Channel Request (DoS)",
		Class:       ClassDoS,
		Dump:        DumpTombstone,
		FaultFunc:   "l2c_csm_execute(t_l2c_ccb*, unsigned short, void*)+2212",
		Trigger: TriggerSpec{
			Kind:     TriggerCreateChannelDeref,
			PSMBand:  psmBand,
			MinTail:  minTail,
			SCIDMask: scidMask,
		},
	}
}

// RTKitPSMServiceKill reproduces the D5 (AirPods) defect: a connection
// request carrying a malicious PSM from one of the paper's Table IV odd
// bands terminates the RTKit Bluetooth service without any control —
// the device simply vanishes from the air. psmBand pins the vulnerable
// band (a firmware port-table slot) and scidMask models the hash-bucket
// alignment the lookup needs; together they calibrate the paper's 40 s
// detection time. Zero values widen the trigger for tests.
func RTKitPSMServiceKill(psmBand uint8, scidMask uint16) VulnSpec {
	return VulnSpec{
		ID:          "rtkit-psm-service-kill",
		Description: "device termination via malicious PSM in connection request (Crash)",
		Class:       ClassCrash,
		Dump:        DumpNone,
		FaultFunc:   "RTKitServicePort::dispatch",
		Trigger: TriggerSpec{
			Kind:     TriggerPSMServiceKill,
			PSMBand:  psmBand,
			SCIDMask: scidMask,
		},
	}
}

// BlueZOptionOverrunGPF reproduces the D8 (BlueZ) defect: a Configuration
// Request addressing a low dynamic CID whose channel moved on, with a
// long garbage tail, corrupts the option-parsing loop and dies with a
// general protection error. The narrow trigger — DCID low byte matching
// an early allocation slot, DCID below dcidMax, a long tail, and a
// specific configuration sub-state — models the paper's 2h40m detection
// time on the 13-port target.
func BlueZOptionOverrunGPF(dcidLowByte uint8, dcidMax l2cap.CID, minTail int, state sm.State) VulnSpec {
	return VulnSpec{
		ID:          "bluez-option-overrun-gpf",
		Description: "general protection fault in configuration option parsing (Crash)",
		Class:       ClassCrash,
		Dump:        DumpGPFault,
		FaultFunc:   "l2cap_parse_conf_req+0x1f4/0x5a0 [bluetooth]",
		Trigger: TriggerSpec{
			Kind:        TriggerOptionOverrunGPF,
			DCIDLowByte: dcidLowByte,
			DCIDMax:     dcidMax,
			MinTail:     minTail,
			State:       state,
		},
	}
}

// CrashDump is the artefact a fired defect leaves on the device.
type CrashDump struct {
	// Kind is the artefact kind.
	Kind DumpKind
	// Time is the simulated time of the crash.
	Time time.Duration
	// VulnID names the defect that fired.
	VulnID string
	// Fingerprint is the device build fingerprint line.
	Fingerprint string
	// FaultFunc is the top backtrace frame.
	FaultFunc string
	// Trigger describes the packet that fired the defect.
	Trigger string
}

// Render produces a human-readable dump resembling the paper's Figure 12
// tombstone for Android artefacts, and a kernel-style record for general
// protection faults.
func (d CrashDump) Render() string {
	var b strings.Builder
	switch d.Kind {
	case DumpTombstone:
		b.WriteString("*** *** *** *** *** *** *** *** *** *** *** ***\n")
		fmt.Fprintf(&b, "Build fingerprint: '%s'\n", d.Fingerprint)
		fmt.Fprintf(&b, "Timestamp: T+%v\n", d.Time)
		b.WriteString("pid: 1948, tid: 2946, name: bt_main_thread  >>> com.android.bluetooth <<<\n")
		b.WriteString("signal 11 (SIGSEGV), code 1 (SEGV_MAPERR), fault addr 0x20\n")
		b.WriteString("Cause: null pointer dereference\n")
		b.WriteString("backtrace:\n")
		fmt.Fprintf(&b, "  #00 pc 0000000000378da0  /system/lib64/libbluetooth.so (%s)\n", d.FaultFunc)
		fmt.Fprintf(&b, "triggering packet: %s\n", d.Trigger)
	case DumpGPFault:
		fmt.Fprintf(&b, "crash dump (T+%v)\n", d.Time)
		fmt.Fprintf(&b, "general protection fault, probably for non-canonical address: 0000 [#1] SMP PTI\n")
		fmt.Fprintf(&b, "RIP: 0010:%s\n", d.FaultFunc)
		fmt.Fprintf(&b, "Bluetooth communication recorded; triggering packet: %s\n", d.Trigger)
	default:
		fmt.Fprintf(&b, "no crash artefact (device terminated, T+%v, %s)\n", d.Time, d.VulnID)
	}
	return b.String()
}
