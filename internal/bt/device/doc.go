// Package device simulates the Bluetooth target devices of the L2Fuzz
// paper's testbed (Table V): complete BR/EDR hosts with vendor-flavoured
// L2CAP engines, service ports, pairing gates, an SDP server, and —
// crucially — the injected implementation defects that replicate the five
// zero-day vulnerabilities the paper discovered.
//
// Each Device couples a virtual HCI controller (internal/bt/hci) to a
// host stack whose per-channel behaviour follows the L2CAP state machine
// (internal/bt/sm) with vendor-specific deviations:
//
//   - BlueDroid and BlueZ perform lenient channel-control-block lookups
//     and tolerate stray responses (the paper notes some Android devices
//     accept events the specification says to reject);
//   - the iOS, Windows and BTW stacks validate strictly and reject
//     malformed input early — which is exactly why the paper found no
//     vulnerabilities in D4, D6 and D7.
//
// Vulnerabilities are data: a VulnSpec matches a (state, command,
// mutation) shape and fires a crash effect — Bluetooth service
// termination with an Android tombstone (D1/D2/D3), whole-device
// shutdown (D5), or a crash dump with a general-protection error (D8).
// Specs can be disabled per device so measurement experiments (Table VII,
// Figures 8-10) can run the full 100,000-packet workload without the
// target dying mid-measurement.
//
// Device identity is a first-class Spec: a target name plus a full
// Config plus expected-defect metadata. The Table V catalog is eight
// predefined Specs (CatalogSpecs) and CatalogEntry is the inventory
// view over them; custom targets are any validated Spec, built in code
// or decoded from JSON (DecodeSpec).
package device
