package device

import (
	"strings"
	"testing"

	"l2fuzz/internal/bt/l2cap"
	"l2fuzz/internal/bt/radio"
)

// TestCatalogSpecsAreByteCompatibleViews pins the catalog
// re-expression: a catalog Spec carries exactly the entry's identity —
// name, configuration and expected-defect metadata — so layers moving
// from CatalogEntry to Spec see the same devices.
func TestCatalogSpecsAreByteCompatibleViews(t *testing.T) {
	entries := Catalog(false)
	specs := CatalogSpecs(false)
	if len(specs) != len(entries) {
		t.Fatalf("%d specs for %d entries", len(specs), len(entries))
	}
	for i, e := range entries {
		s := specs[i]
		if s.Name != e.ID {
			t.Errorf("spec %d name %q, want catalog ID %q", i, s.Name, e.ID)
		}
		if s.ExpectVuln != e.ExpectVuln || s.ExpectClass != e.ExpectClass {
			t.Errorf("%s: expectation metadata drifted: %v/%v vs %v/%v",
				e.ID, s.ExpectVuln, s.ExpectClass, e.ExpectVuln, e.ExpectClass)
		}
		if s.Config.Addr != e.Config.Addr || s.Config.Name != e.Config.Name {
			t.Errorf("%s: config identity drifted", e.ID)
		}
		if len(s.Config.Ports) != len(e.Config.Ports) {
			t.Errorf("%s: port map drifted", e.ID)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("catalog spec %s does not validate: %v", e.ID, err)
		}
		if !IsCatalogID(s.Name) {
			t.Errorf("IsCatalogID(%q) = false", s.Name)
		}
	}
	if _, err := CatalogSpec("D9", false); err == nil {
		t.Error("CatalogSpec(D9) should fail")
	}
	if spec, err := CatalogSpec("D2", true); err != nil || !spec.Config.DisableVulns {
		t.Errorf("CatalogSpec(D2, true) = %+v, %v; want a measurement-grade spec", spec, err)
	}
	if IsCatalogID("smart-toaster") {
		t.Error("IsCatalogID accepted a non-catalog name")
	}
}

func TestSpecValidate(t *testing.T) {
	if err := (Spec{}).Validate(); err == nil {
		t.Error("empty spec validates")
	}
	if err := (Spec{Name: "x"}).Validate(); err == nil {
		t.Error("spec without address validates")
	}
	ok := Spec{Name: "x", Config: Config{Addr: radio.MustBDAddr("02:00:00:00:00:01")}}
	if err := ok.Validate(); err != nil {
		t.Errorf("minimal spec rejected: %v", err)
	}
}

const validSpecJSON = `{
  "name": "smart-speaker",
  "addr": "D0:03:DF:12:34:56",
  "classOfDevice": 2360324,
  "profile": {"stack": "bluedroid", "btVersion": "5.2", "fingerprint": "vendor/speaker:12"},
  "ports": [
    {"psm": 1, "name": "Service Discovery"},
    {"psm": 3, "name": "RFCOMM", "requiresPairing": true},
    {"psm": 4097, "name": "vendor-control"}
  ],
  "defects": ["ccb-null-deref"],
  "rfcomm": {"services": [{"channel": 1, "name": "Serial Port Profile"}], "defect": true},
  "expectClass": "DoS"
}`

func TestDecodeSpec(t *testing.T) {
	spec, err := DecodeSpec([]byte(validSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "smart-speaker" {
		t.Errorf("name = %q", spec.Name)
	}
	if spec.Config.Addr != radio.MustBDAddr("D0:03:DF:12:34:56") {
		t.Errorf("addr = %v", spec.Config.Addr)
	}
	if spec.Config.Profile.Stack != "BlueDroid" {
		t.Errorf("stack = %q", spec.Config.Profile.Stack)
	}
	if len(spec.Config.Profile.Vulns) != 1 || spec.Config.Profile.Vulns[0].ID != "bluedroid-ccb-null-deref" {
		t.Errorf("defects not armed: %+v", spec.Config.Profile.Vulns)
	}
	if len(spec.Config.Ports) != 3 || spec.Config.Ports[2].PSM != l2cap.PSM(4097) {
		t.Errorf("ports not decoded: %+v", spec.Config.Ports)
	}
	if len(spec.Config.RFCOMMServices) != 1 || spec.Config.RFCOMMDefect == nil {
		t.Error("rfcomm services/defect not decoded")
	}
	if !spec.ExpectVuln || spec.ExpectClass != ClassDoS {
		t.Errorf("expectation = %v/%v, want armed DoS", spec.ExpectVuln, spec.ExpectClass)
	}

	// The decoded spec instantiates: run it through a real medium.
	m := radio.NewMedium(nil, radio.DefaultTiming())
	if _, err := New(m, spec.Config); err != nil {
		t.Fatalf("decoded spec does not instantiate: %v", err)
	}
}

// TestDecodeSpecDefaults pins the derivation rules: expectVuln follows
// the armed defects unless stated, and expectClass takes the first
// defect's class.
func TestDecodeSpecDefaults(t *testing.T) {
	quiet, err := DecodeSpec([]byte(`{
	  "name": "quiet", "addr": "02:00:00:00:00:02",
	  "profile": {"stack": "windows", "btVersion": "5.0"}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if quiet.ExpectVuln || quiet.ExpectClass != 0 {
		t.Errorf("defect-free spec expects a vuln: %+v", quiet)
	}

	crash, err := DecodeSpec([]byte(`{
	  "name": "crashy", "addr": "02:00:00:00:00:03",
	  "profile": {"stack": "rtkit", "btVersion": "4.2"},
	  "defects": ["psm-service-kill"]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if !crash.ExpectVuln || crash.ExpectClass != ClassCrash {
		t.Errorf("defect-armed spec expectation = %v/%v, want Crash", crash.ExpectVuln, crash.ExpectClass)
	}

	denied, err := DecodeSpec([]byte(`{
	  "name": "denied", "addr": "02:00:00:00:00:04",
	  "profile": {"stack": "bluez", "btVersion": "5.0"},
	  "defects": ["option-overrun-gpf"],
	  "expectVuln": false
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if denied.ExpectVuln {
		t.Error("explicit expectVuln:false overridden by armed defects")
	}
}

func TestDecodeSpecErrors(t *testing.T) {
	for _, tc := range []struct {
		name, json, want string
	}{
		{"syntax error carries line", "{\n  \"name\": \"x\",\n  bogus\n}", "line 3"},
		{"type mismatch carries line", "{\n  \"name\": 7\n}", "line 2"},
		{"unknown field", `{"name": "x", "addr": "02:00:00:00:00:01", "profile": {"stack": "btw"}, "color": "red"}`, "color"},
		{"missing name", `{"addr": "02:00:00:00:00:01", "profile": {"stack": "btw"}}`, "name"},
		{"missing addr", `{"name": "x", "profile": {"stack": "btw"}}`, "addr"},
		{"bad addr", `{"name": "x", "addr": "zz", "profile": {"stack": "btw"}}`, "addr"},
		{"unknown stack", `{"name": "x", "addr": "02:00:00:00:00:01", "profile": {"stack": "symbian"}}`, "symbian"},
		{"unknown defect", `{"name": "x", "addr": "02:00:00:00:00:01", "profile": {"stack": "btw"}, "defects": ["heartbleed"]}`, "heartbleed"},
		{"unknown class", `{"name": "x", "addr": "02:00:00:00:00:01", "profile": {"stack": "btw"}, "expectClass": "meltdown"}`, "expectClass"},
		{"rfcomm defect without services", `{"name": "x", "addr": "02:00:00:00:00:01", "profile": {"stack": "btw"}, "rfcomm": {"defect": true}}`, "rfcomm"},
		{"trailing data", `{"name": "x", "addr": "02:00:00:00:00:01", "profile": {"stack": "btw"}} {"again": true}`, "trailing"},
	} {
		_, err := DecodeSpec([]byte(tc.json))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestCatalogIDsMatchCatalog pins the bare ID list against the catalog
// itself, so the cheap ID checks cannot drift from the entries.
func TestCatalogIDsMatchCatalog(t *testing.T) {
	ids := CatalogIDs()
	entries := Catalog(true)
	if len(ids) != len(entries) {
		t.Fatalf("CatalogIDs has %d entries, catalog %d", len(ids), len(entries))
	}
	for i, e := range entries {
		if ids[i] != e.ID {
			t.Errorf("CatalogIDs[%d] = %q, catalog order has %q", i, ids[i], e.ID)
		}
	}
}

// TestSpecCloneIsolatesSlices pins the aliasing contract: mutating the
// original spec's slice-backed fields must not reach a clone.
func TestSpecCloneIsolatesSlices(t *testing.T) {
	orig, err := DecodeSpec([]byte(validSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	clone := orig.Clone()
	orig.Config.Ports[0].RequiresPairing = true
	orig.Config.RFCOMMServices[0].Channel = 99
	orig.Config.Profile.Vulns[0].ID = "mutated"
	if clone.Config.Ports[0].RequiresPairing {
		t.Error("clone shares the port list")
	}
	if clone.Config.RFCOMMServices[0].Channel == 99 {
		t.Error("clone shares the RFCOMM service list")
	}
	if clone.Config.Profile.Vulns[0].ID == "mutated" {
		t.Error("clone shares the defect list")
	}
}
