package device

import (
	"strings"
	"testing"

	"l2fuzz/internal/bt/host"
	"l2fuzz/internal/bt/l2cap"
	"l2fuzz/internal/bt/radio"
	"l2fuzz/internal/bt/sm"
)

// testRig builds a medium with one device and one tester client.
func testRig(t *testing.T, cfg Config) (*radio.Medium, *Device, *host.Client) {
	t.Helper()
	m := radio.NewMedium(nil, radio.DefaultTiming())
	d, err := New(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := host.NewClient(m, radio.MustBDAddr("00:1B:DC:00:00:01"), "tester")
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Connect(d.Address()); err != nil {
		t.Fatal(err)
	}
	return m, d, cl
}

func basicConfig(profile Profile) Config {
	return Config{
		Addr:          radio.MustBDAddr("F8:8F:CA:00:00:02"),
		Name:          "unit-device",
		ClassOfDevice: 0x5A020C,
		Profile:       profile,
		Ports: []ServicePort{
			{PSM: l2cap.PSMAVDTP, Name: "AVDTP"},
			{PSM: l2cap.PSMRFCOMM, Name: "RFCOMM", RequiresPairing: true},
		},
	}
}

func TestDeviceAddsSDPPortAutomatically(t *testing.T) {
	_, d, _ := testRig(t, basicConfig(IOSProfile("4.2")))
	found := false
	for _, p := range d.Ports() {
		if p.PSM == l2cap.PSMSDP {
			found = true
			if p.RequiresPairing {
				t.Error("SDP port must never require pairing")
			}
		}
	}
	if !found {
		t.Fatal("device lacks the mandatory SDP port")
	}
}

func TestEchoPing(t *testing.T) {
	_, d, cl := testRig(t, basicConfig(BlueDroidProfile("5.0", "fp")))
	if err := cl.Ping(d.Address()); err != nil {
		t.Fatalf("Ping() error = %v", err)
	}
}

func TestConnectionResponses(t *testing.T) {
	_, d, cl := testRig(t, basicConfig(BlueDroidProfile("5.0", "fp")))
	tests := []struct {
		name string
		psm  l2cap.PSM
		want l2cap.ConnResult
	}{
		{"open port", l2cap.PSMAVDTP, l2cap.ConnResultSuccess},
		{"pairing-gated port", l2cap.PSMRFCOMM, l2cap.ConnResultSecurityBlock},
		{"unknown port", 0x0F01, l2cap.ConnResultPSMNotSupported},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res, err := cl.TryOpenChannel(d.Address(), tt.psm)
			if err != nil {
				t.Fatalf("TryOpenChannel() error = %v", err)
			}
			if res.Result != tt.want {
				t.Fatalf("Result = %v, want %v", res.Result, tt.want)
			}
		})
	}
}

func TestChannelCapGivesNoResources(t *testing.T) {
	cfg := basicConfig(RTKitProfile("4.2")) // cap: 4 dynamic channels
	_, d, cl := testRig(t, cfg)
	got := make([]l2cap.ConnResult, 0, 6)
	for i := 0; i < 6; i++ {
		res, err := cl.TryOpenChannel(d.Address(), l2cap.PSMAVDTP)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, res.Result)
	}
	succ, refused := 0, 0
	for _, r := range got {
		switch r {
		case l2cap.ConnResultSuccess:
			succ++
		case l2cap.ConnResultNoResources:
			refused++
		}
	}
	if succ != 4 || refused != 2 {
		t.Fatalf("results = %v: want 4 successes then 2 no-resources", got)
	}
}

func TestSCIDCollisionRefused(t *testing.T) {
	_, d, cl := testRig(t, basicConfig(BlueDroidProfile("5.0", "fp")))
	scid := l2cap.CID(0x0055)
	if _, err := cl.SendCommand(d.Address(), &l2cap.ConnectionReq{PSM: l2cap.PSMAVDTP, SCID: scid}, nil); err != nil {
		t.Fatal(err)
	}
	cl.Drain()
	if _, err := cl.SendCommand(d.Address(), &l2cap.ConnectionReq{PSM: l2cap.PSMAVDTP, SCID: scid}, nil); err != nil {
		t.Fatal(err)
	}
	sawInUse := false
	for _, cmd := range cl.DrainCommands() {
		if rsp, ok := cmd.(*l2cap.ConnectionRsp); ok && rsp.Result == l2cap.ConnResultSCIDInUse {
			sawInUse = true
		}
	}
	if !sawInUse {
		t.Fatal("duplicate SCID not refused with SCID-in-use")
	}
}

func TestFullChannelOpenReachesOpenStateOnEveryProfile(t *testing.T) {
	profiles := map[string]Profile{
		"BlueDroid": BlueDroidProfile("5.0", "fp"),
		"BlueZ":     BlueZProfile("5.0", "fp"),
		"iOS":       IOSProfile("4.2"),
		"Windows":   WindowsProfile("5.0"),
		"BTW":       BTWProfile("5.0"),
		"RTKit":     RTKitProfile("4.2"),
	}
	for name, p := range profiles {
		t.Run(name, func(t *testing.T) {
			_, d, cl := testRig(t, basicConfig(p))
			if _, _, err := cl.OpenChannel(d.Address(), l2cap.PSMAVDTP); err != nil {
				t.Fatalf("OpenChannel() error = %v", err)
			}
			states := d.StatesVisited()
			hasOpen := false
			for _, s := range states {
				if s == sm.StateOpen {
					hasOpen = true
				}
			}
			if !hasOpen {
				t.Fatalf("device never reached OPEN; visited %v", states)
			}
		})
	}
}

func TestSDPQueryListsAllPorts(t *testing.T) {
	_, d, cl := testRig(t, basicConfig(BlueDroidProfile("5.0", "fp")))
	services, err := cl.QuerySDP(d.Address())
	if err != nil {
		t.Fatalf("QuerySDP() error = %v", err)
	}
	if len(services) != len(d.Ports()) {
		t.Fatalf("SDP lists %d services, device has %d ports", len(services), len(d.Ports()))
	}
	seen := make(map[l2cap.PSM]bool)
	for _, s := range services {
		seen[s.PSM] = true
	}
	for _, p := range d.Ports() {
		if !seen[p.PSM] {
			t.Errorf("port %v missing from SDP response", p.PSM)
		}
	}
}

func TestDisconnectClosesChannel(t *testing.T) {
	_, d, cl := testRig(t, basicConfig(BlueDroidProfile("5.0", "fp")))
	local, remote, err := cl.OpenChannel(d.Address(), l2cap.PSMAVDTP)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.CloseChannel(d.Address(), local, remote); err != nil {
		t.Fatalf("CloseChannel() error = %v", err)
	}
	// The channel's machine must have passed through a disconnection or
	// closed back down.
	states := d.StatesVisited()
	backToClosed := false
	for _, s := range states {
		if s == sm.StateClosed {
			backToClosed = true
		}
	}
	if !backToClosed {
		t.Errorf("visited = %v, want CLOSED among them", states)
	}
}

func TestInvalidCIDRejects(t *testing.T) {
	// Strict profile: config request for a CID that was never allocated
	// must be rejected with "Invalid CID in request".
	_, d, cl := testRig(t, basicConfig(IOSProfile("4.2")))
	cl.Drain()
	if _, err := cl.SendCommand(d.Address(), &l2cap.ConfigurationReq{DCID: 0x4242}, nil); err != nil {
		t.Fatal(err)
	}
	var rejects []*l2cap.CommandReject
	for _, cmd := range cl.DrainCommands() {
		if rej, ok := cmd.(*l2cap.CommandReject); ok {
			rejects = append(rejects, rej)
		}
	}
	if len(rejects) != 1 || rejects[0].Reason != l2cap.RejectInvalidCID {
		t.Fatalf("rejects = %+v, want one invalid-CID reject", rejects)
	}
}

func TestLenientStackProcessesUnknownCIDConfig(t *testing.T) {
	// BlueDroid-style lookup: with a channel mid-configuration, a config
	// request for a bogus CID is processed against it instead of being
	// rejected (vulns disabled so it survives).
	cfg := basicConfig(BlueDroidProfile("5.0", "fp"))
	cfg.DisableVulns = true
	_, d, cl := testRig(t, cfg)

	res, err := cl.TryOpenChannel(d.Address(), l2cap.PSMAVDTP)
	if err != nil || res.Result != l2cap.ConnResultSuccess {
		t.Fatalf("open: %v %v", res, err)
	}
	cl.Drain()
	if _, err := cl.SendCommand(d.Address(), &l2cap.ConfigurationReq{DCID: 0x7B8F}, []byte{0xD2, 0x3A}); err != nil {
		t.Fatal(err)
	}
	for _, cmd := range cl.DrainCommands() {
		if rej, ok := cmd.(*l2cap.CommandReject); ok {
			t.Fatalf("lenient stack rejected with %v", rej.Reason)
		}
	}
}

func TestSignalingMTUExceededReject(t *testing.T) {
	_, d, cl := testRig(t, basicConfig(BlueDroidProfile("5.0", "fp")))
	cl.Drain()
	garbage := make([]byte, l2cap.DefaultSignalingMTU+100)
	if _, err := cl.SendCommand(d.Address(), &l2cap.EchoReq{}, garbage); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, cmd := range cl.DrainCommands() {
		if rej, ok := cmd.(*l2cap.CommandReject); ok && rej.Reason == l2cap.RejectSignalingMTUExceeded {
			found = true
		}
	}
	if !found {
		t.Fatal("oversized signaling packet not rejected with MTU-exceeded")
	}
}

func TestStrayResponseBehaviourPerProfile(t *testing.T) {
	for _, tt := range []struct {
		name       string
		profile    Profile
		wantReject bool
	}{
		{"android tolerates", BlueDroidProfile("5.0", "fp"), false},
		{"windows rejects", WindowsProfile("5.0"), true},
	} {
		t.Run(tt.name, func(t *testing.T) {
			_, d, cl := testRig(t, basicConfig(tt.profile))
			cl.Drain()
			if _, err := cl.SendCommand(d.Address(), &l2cap.ConnectionRsp{
				DCID: 0x40, SCID: 0x41, Result: l2cap.ConnResultSuccess,
			}, nil); err != nil {
				t.Fatal(err)
			}
			gotReject := false
			for _, cmd := range cl.DrainCommands() {
				if _, ok := cmd.(*l2cap.CommandReject); ok {
					gotReject = true
				}
			}
			if gotReject != tt.wantReject {
				t.Fatalf("reject = %v, want %v", gotReject, tt.wantReject)
			}
		})
	}
}

func TestLEOnlyCommandsPerProfile(t *testing.T) {
	sendLE := func(t *testing.T, d *Device, cl *host.Client) []l2cap.Command {
		t.Helper()
		cl.Drain()
		if _, err := cl.SendCommand(d.Address(), &l2cap.ConnParamUpdateReq{IntervalMin: 6, IntervalMax: 12}, nil); err != nil {
			t.Fatal(err)
		}
		return cl.DrainCommands()
	}
	t.Run("strict stack rejects", func(t *testing.T) {
		_, d, cl := testRig(t, basicConfig(WindowsProfile("5.0")))
		found := false
		for _, cmd := range sendLE(t, d, cl) {
			if rej, ok := cmd.(*l2cap.CommandReject); ok && rej.Reason == l2cap.RejectNotUnderstood {
				found = true
			}
		}
		if !found {
			t.Fatal("LE-only command not rejected on ACL-U by strict stack")
		}
	})
	t.Run("bluedroid drops silently", func(t *testing.T) {
		_, d, cl := testRig(t, basicConfig(BlueDroidProfile("5.0", "fp")))
		if got := sendLE(t, d, cl); len(got) != 0 {
			t.Fatalf("BlueDroid answered an LE command with %d packets, want silence", len(got))
		}
	})
}

func TestECREDPerProfile(t *testing.T) {
	req := &l2cap.CreditBasedConnReq{SPSM: 0x80, MTU: 64, MPS: 64, InitialCredits: 1, SCIDs: []l2cap.CID{0x40}}
	t.Run("supported stack refuses politely", func(t *testing.T) {
		_, d, cl := testRig(t, basicConfig(BlueZProfile("5.0", "fp")))
		cl.Drain()
		if _, err := cl.SendCommand(d.Address(), req, nil); err != nil {
			t.Fatal(err)
		}
		foundRsp := false
		for _, cmd := range cl.DrainCommands() {
			if rsp, ok := cmd.(*l2cap.CreditBasedConnRsp); ok && rsp.Result == 0x0002 {
				foundRsp = true
			}
		}
		if !foundRsp {
			t.Fatal("ECRED-capable stack did not answer with SPSM-not-supported")
		}
	})
	t.Run("old stack does not understand", func(t *testing.T) {
		_, d, cl := testRig(t, basicConfig(BlueDroidProfile("4.2", "fp")))
		cl.Drain()
		if _, err := cl.SendCommand(d.Address(), req, nil); err != nil {
			t.Fatal(err)
		}
		found := false
		for _, cmd := range cl.DrainCommands() {
			if rej, ok := cmd.(*l2cap.CommandReject); ok && rej.Reason == l2cap.RejectNotUnderstood {
				found = true
			}
		}
		if !found {
			t.Fatal("non-ECRED stack did not reject")
		}
	})
}

func TestMoveChannelFlow(t *testing.T) {
	cfg := basicConfig(BlueDroidProfile("5.0", "fp"))
	cfg.DisableVulns = true
	_, d, cl := testRig(t, cfg)
	_, remote, err := cl.OpenChannel(d.Address(), l2cap.PSMAVDTP)
	if err != nil {
		t.Fatal(err)
	}
	cl.Drain()
	if _, err := cl.SendCommand(d.Address(), &l2cap.MoveChannelReq{ICID: remote}, nil); err != nil {
		t.Fatal(err)
	}
	gotMoveRsp := false
	for _, cmd := range cl.DrainCommands() {
		if rsp, ok := cmd.(*l2cap.MoveChannelRsp); ok && rsp.Result == l2cap.MoveResultSuccess {
			gotMoveRsp = true
		}
	}
	if !gotMoveRsp {
		t.Fatal("move request not answered with success")
	}
	if _, err := cl.SendCommand(d.Address(), &l2cap.MoveChannelConfirmReq{ICID: remote, Result: l2cap.MoveResultSuccess}, nil); err != nil {
		t.Fatal(err)
	}
	gotConfirm := false
	for _, cmd := range cl.DrainCommands() {
		if _, ok := cmd.(*l2cap.MoveChannelConfirmRsp); ok {
			gotConfirm = true
		}
	}
	if !gotConfirm {
		t.Fatal("move confirmation not acknowledged")
	}
	// WAIT_MOVE and WAIT_MOVE_CONFIRM must be among the visited states.
	want := map[sm.State]bool{sm.StateWaitMove: false, sm.StateWaitMoveConfirm: false}
	for _, s := range d.StatesVisited() {
		if _, ok := want[s]; ok {
			want[s] = true
		}
	}
	for s, seen := range want {
		if !seen {
			t.Errorf("state %v never visited during move", s)
		}
	}
}

func TestBlueDroidVulnerabilityFiresAndDoSesDevice(t *testing.T) {
	cfg := basicConfig(BlueDroidProfile("5.0",
		"google/blueline/blueline:11/RQ1D.210105.003/7005430:user/release-keys",
		BlueDroidCCBNullDeref(0x40, 1, false)))
	_, d, cl := testRig(t, cfg)

	res, err := cl.TryOpenChannel(d.Address(), l2cap.PSMSDP)
	if err != nil || res.Result != l2cap.ConnResultSuccess {
		t.Fatalf("open: %+v %v", res, err)
	}
	cl.Drain()
	// The paper's packet: Config Req, DCID low byte 0x40 (unallocated),
	// garbage tail.
	if _, err := cl.SendCommand(d.Address(), &l2cap.ConfigurationReq{DCID: 0x1240}, []byte{0xD2, 0x3A, 0x91, 0x0E}); err != nil {
		t.Fatal(err)
	}
	if !d.Crashed() || !d.ServiceDown() {
		t.Fatal("defect did not fire")
	}
	dump := d.CrashDump()
	if dump == nil || dump.Kind != DumpTombstone {
		t.Fatalf("dump = %+v, want tombstone", dump)
	}
	text := dump.Render()
	for _, want := range []string{"l2c_csm_execute", "null pointer dereference", "blueline"} {
		if !strings.Contains(text, want) {
			t.Errorf("tombstone missing %q:\n%s", want, text)
		}
	}
	// Ping now fails: the Bluetooth service is gone.
	if err := cl.Ping(d.Address()); err == nil {
		t.Fatal("ping succeeded against a DoS-ed device")
	}
}

func TestVulnerabilityRequiresGarbageTail(t *testing.T) {
	cfg := basicConfig(BlueDroidProfile("5.0", "fp", BlueDroidCCBNullDeref(0x40, 1, true)))
	_, d, cl := testRig(t, cfg)
	res, err := cl.TryOpenChannel(d.Address(), l2cap.PSMSDP)
	if err != nil || res.Result != l2cap.ConnResultSuccess {
		t.Fatal(err)
	}
	// Same packet without the tail: survives.
	if _, err := cl.SendCommand(d.Address(), &l2cap.ConfigurationReq{DCID: 0x1240}, nil); err != nil {
		t.Fatal(err)
	}
	if d.Crashed() {
		t.Fatal("defect fired without a garbage tail")
	}
}

func TestDisableVulnsSuppressesCrash(t *testing.T) {
	cfg := basicConfig(BlueDroidProfile("5.0", "fp", BlueDroidCCBNullDeref(0x40, 1, true)))
	cfg.DisableVulns = true
	_, d, cl := testRig(t, cfg)
	res, _ := cl.TryOpenChannel(d.Address(), l2cap.PSMSDP)
	if res.Result != l2cap.ConnResultSuccess {
		t.Fatal("open failed")
	}
	if _, err := cl.SendCommand(d.Address(), &l2cap.ConfigurationReq{DCID: 0x1240}, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if d.Crashed() {
		t.Fatal("disabled defect fired anyway")
	}
}

func TestRTKitCrashRemovesDeviceFromAir(t *testing.T) {
	cfg := basicConfig(RTKitProfile("4.2", RTKitPSMServiceKill(0, 0)))
	m, d, cl := testRig(t, cfg)
	cl.Drain()
	// Odd-band abnormal PSM (0x0101 is in the 0x0100 band and odd).
	if _, err := cl.SendCommand(d.Address(), &l2cap.ConnectionReq{PSM: 0x0101, SCID: 0x0040}, nil); err != nil {
		t.Fatal(err)
	}
	if !d.PoweredOff() {
		t.Fatal("RTKit defect did not power the device off")
	}
	// The device vanished: inquiry no longer sees it, pages fail.
	if got := cl.Inquiry(); len(got) != 0 {
		t.Fatalf("inquiry still sees %d devices", len(got))
	}
	_ = m
}

func TestResetRestoresCrashedDevice(t *testing.T) {
	cfg := basicConfig(BlueDroidProfile("5.0", "fp", BlueDroidCCBNullDeref(0x40, 1, true)))
	_, d, cl := testRig(t, cfg)
	res, _ := cl.TryOpenChannel(d.Address(), l2cap.PSMSDP)
	if res.Result != l2cap.ConnResultSuccess {
		t.Fatal("open failed")
	}
	if _, err := cl.SendCommand(d.Address(), &l2cap.ConfigurationReq{DCID: 0x1240}, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if !d.Crashed() {
		t.Fatal("defect did not fire")
	}
	d.Reset()
	if d.Crashed() || d.CrashDump() != nil {
		t.Fatal("Reset did not clear crash state")
	}
	// The device answers again after a fresh page.
	cl.Disconnect(d.Address())
	if err := cl.Connect(d.Address()); err != nil {
		t.Fatalf("reconnect after reset: %v", err)
	}
	if err := cl.Ping(d.Address()); err != nil {
		t.Fatalf("ping after reset: %v", err)
	}
}

func TestCatalogShape(t *testing.T) {
	entries := Catalog(false)
	if len(entries) != 8 {
		t.Fatalf("catalog has %d devices, want 8", len(entries))
	}
	wantVuln := map[string]bool{"D1": true, "D2": true, "D3": true, "D5": true, "D8": true}
	seen := make(map[string]bool)
	for _, e := range entries {
		if seen[e.ID] {
			t.Errorf("duplicate catalog ID %s", e.ID)
		}
		seen[e.ID] = true
		if e.ExpectVuln != wantVuln[e.ID] {
			t.Errorf("%s: ExpectVuln = %v, want %v (Table VI)", e.ID, e.ExpectVuln, wantVuln[e.ID])
		}
		if e.ExpectVuln == (len(e.Config.Profile.Vulns) == 0) {
			t.Errorf("%s: vuln specs inconsistent with expectation", e.ID)
		}
		if e.Config.Addr != e.Addr {
			t.Errorf("%s: config address mismatch", e.ID)
		}
	}
	// D5 exposes 6 ports and D8 13 ports (§IV-B elapsed-time analysis).
	for _, tt := range []struct {
		id   string
		want int
	}{{"D5", 6}, {"D8", 13}} {
		e, err := CatalogEntryByID(tt.id, false)
		if err != nil {
			t.Fatal(err)
		}
		m := radio.NewMedium(nil, radio.DefaultTiming())
		d, err := New(m, e.Config)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(d.Ports()); got != tt.want {
			t.Errorf("%s exposes %d ports, want %d", tt.id, got, tt.want)
		}
	}
	if _, err := CatalogEntryByID("D9", false); err == nil {
		t.Error("CatalogEntryByID(D9) should fail")
	}
}

func TestCatalogDevicesAllInstantiable(t *testing.T) {
	m := radio.NewMedium(nil, radio.DefaultTiming())
	for _, e := range Catalog(true) {
		d, err := New(m, e.Config)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if d.Name() == "" {
			t.Errorf("%s has empty name", e.ID)
		}
	}
	cl, err := host.NewClient(m, radio.MustBDAddr("00:1B:DC:00:00:01"), "tester")
	if err != nil {
		t.Fatal(err)
	}
	if got := cl.Inquiry(); len(got) != 8 {
		t.Fatalf("inquiry found %d devices, want 8", len(got))
	}
}

func TestHandlerCoverage(t *testing.T) {
	_, d, cl := testRig(t, basicConfig(BlueDroidProfile("5.0", "fp")))
	if err := cl.Ping(d.Address()); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.QuerySDP(d.Address()); err != nil {
		t.Fatal(err)
	}
	cov := d.HandlerCoverage()
	if cov["EchoReq"] == 0 {
		t.Error("echo handler not counted")
	}
	if cov["ConnectionReq"] == 0 || cov["SDP"] == 0 {
		t.Errorf("SDP transaction handlers not counted: %v", cov)
	}
	// The copy must not alias internal state.
	cov["EchoReq"] = 999
	if d.HandlerCoverage()["EchoReq"] == 999 {
		t.Error("HandlerCoverage returned an aliased map")
	}
}

func TestCrashDumpRenderKinds(t *testing.T) {
	base := CrashDump{
		Time:        1500 * 1e6, // 1.5s
		VulnID:      "test-vuln",
		Fingerprint: "vendor/device:1.0/fp",
		FaultFunc:   "some_function+123",
		Trigger:     "test packet",
	}
	tombstone := base
	tombstone.Kind = DumpTombstone
	gp := base
	gp.Kind = DumpGPFault
	none := base
	none.Kind = DumpNone

	tests := []struct {
		name string
		dump CrashDump
		want []string
	}{
		{"tombstone", tombstone, []string{"SIGSEGV", "null pointer dereference", "vendor/device:1.0/fp", "some_function+123"}},
		{"gp fault", gp, []string{"general protection fault", "some_function+123", "test packet"}},
		{"none", none, []string{"no crash artefact", "test-vuln"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			text := tt.dump.Render()
			for _, want := range tt.want {
				if !strings.Contains(text, want) {
					t.Errorf("render missing %q:\n%s", want, text)
				}
			}
		})
	}
}

func TestCrashClassAndDumpKindStrings(t *testing.T) {
	if ClassDoS.String() != "DoS" || ClassCrash.String() != "Crash" {
		t.Error("CrashClass strings wrong")
	}
	if CrashClass(99).String() == "" {
		t.Error("unknown CrashClass has empty string")
	}
}
