package device

import (
	"math/rand"
	"testing"
	"testing/quick"

	"l2fuzz/internal/bt/l2cap"
	"l2fuzz/internal/bt/radio"
	"l2fuzz/internal/bt/rfcomm"
)

// TestQuickDeviceNeverPanicsOnArbitraryPackets is the reproduction's own
// safety net: every vendor stack must survive arbitrary L2CAP payloads
// (signaling or data) without panicking, whatever testing/quick throws
// at it. The vulnerable stacks may "crash" in the simulated sense —
// that is their job — but the Go process must not.
func TestQuickDeviceNeverPanicsOnArbitraryPackets(t *testing.T) {
	profiles := []Profile{
		BlueDroidProfile("5.0", "fp", BlueDroidCCBNullDeref(0x40, 1, true)),
		BlueZProfile("5.0", "fp"),
		IOSProfile("4.2"),
		RTKitProfile("4.2", RTKitPSMServiceKill(0, 0)),
		BTWProfile("5.0"),
		WindowsProfile("5.0"),
	}
	for i, p := range profiles {
		m := radio.NewMedium(nil, radio.DefaultTiming())
		cfg := Config{
			Addr:    radio.BDAddr{0xF8, 0x8F, 0xCA, 0, 0, byte(i + 1)},
			Name:    "fuzz-target",
			Profile: p,
			Ports: []ServicePort{
				{PSM: l2cap.PSMAVDTP, Name: "AVDTP"},
			},
			RFCOMMServices: []rfcomm.Service{{Channel: 1, Name: "SPP"}},
		}
		d, err := New(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		tester, err := newRawSender(m, radio.BDAddr{0, 0x1B, 0xDC, 0, 0, byte(i + 1)}, d.Address())
		if err != nil {
			t.Fatal(err)
		}

		f := func(cid uint16, payload []byte) bool {
			if d.Crashed() {
				d.Reset()
				tester.reconnect()
			}
			pkt := l2cap.NewPacket(l2cap.CID(cid), payload)
			tester.send(pkt.Marshal())
			// Also deliver with a lying declared length (garbage shape).
			if len(payload) > 2 {
				lying := pkt
				lying.Length = uint16(len(payload) - 2)
				tester.send(lying.Marshal())
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{
			MaxCount: 400,
			Rand:     rand.New(rand.NewSource(int64(i))),
		}); err != nil {
			t.Fatalf("profile %s: %v", p.Stack, err)
		}
	}
}

// rawSender delivers raw bytes to a device without host-client framing
// niceties, so corrupted basic headers reach the stack too.
type rawSender struct {
	m      *radio.Medium
	addr   radio.BDAddr
	target radio.BDAddr
}

type rawEndpoint struct{ addr radio.BDAddr }

func (r *rawEndpoint) Address() radio.BDAddr                     { return r.addr }
func (r *rawEndpoint) ReceiveFrame(radio.BDAddr, []byte)         {}
func (r *rawEndpoint) Connectable() bool                         { return true }
func (r *rawEndpoint) Discoverable() (radio.InquiryResult, bool) { return radio.InquiryResult{}, false }

func newRawSender(m *radio.Medium, addr, target radio.BDAddr) (*rawSender, error) {
	if err := m.Register(&rawEndpoint{addr: addr}); err != nil {
		return nil, err
	}
	s := &rawSender{m: m, addr: addr, target: target}
	s.reconnect()
	return s, nil
}

func (s *rawSender) reconnect() {
	_ = s.m.Page(s.addr, s.target)
}

func (s *rawSender) send(l2capFrame []byte) {
	// Wrap in a single ACL first-fragment, as the controller would.
	hf := uint16(0x0001) | 0b10<<12
	frame := []byte{byte(hf), byte(hf >> 8), byte(len(l2capFrame)), byte(len(l2capFrame) >> 8)}
	frame = append(frame, l2capFrame...)
	_ = s.m.Carry(s.addr, s.target, frame)
}
