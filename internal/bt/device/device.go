package device

import (
	"fmt"

	"l2fuzz/internal/bt/hci"
	"l2fuzz/internal/bt/l2cap"
	"l2fuzz/internal/bt/radio"
	"l2fuzz/internal/bt/rfcomm"
	"l2fuzz/internal/bt/sdp"
	"l2fuzz/internal/bt/sm"
)

// Config describes one simulated device.
type Config struct {
	// Addr is the BD_ADDR; its OUI identifies the vendor.
	Addr radio.BDAddr
	// Name is the friendly device name.
	Name string
	// ClassOfDevice is the 24-bit class-of-device code.
	ClassOfDevice uint32
	// Profile selects the vendor stack behaviour.
	Profile Profile
	// Ports are the exposed services. An SDP port (PSM 0x0001) is added
	// automatically when absent, since every Bluetooth device has one.
	Ports []ServicePort
	// DisableVulns suppresses all injected defects: used by measurement
	// experiments that must survive 100,000 packets.
	DisableVulns bool
	// RFCOMMServices mounts an RFCOMM multiplexer with these services on
	// the device's RFCOMM L2CAP channel (the §V extension substrate).
	RFCOMMServices []rfcomm.Service
	// RFCOMMDefect optionally injects a defect into the multiplexer.
	// Defects are declarative (kind plus calibration), so a Config is
	// plain data; nil means a robust mux.
	RFCOMMDefect *rfcomm.MuxDefect
	// SDPDefect optionally injects a parser defect into the device's SDP
	// server; nil means a robust server.
	SDPDefect *sdp.ServerDefect
}

// Device is one simulated Bluetooth target.
type Device struct {
	ctrl   *hci.Controller
	medium *radio.Medium
	cfg    Config
	sdpSrv *sdp.Server
	mux    *rfcomm.Mux
	ports  []ServicePort

	channels       map[l2cap.CID]*channel
	closedMachines []*sm.Machine // archived machines of closed channels
	nextCID        l2cap.CID
	nextSigID      uint8

	serviceDown bool
	poweredOff  bool
	dump        *CrashDump

	// cmdSeq counts signaling commands decoded since the last Reset: the
	// command clock exhaustion-style defect triggers
	// (device.TriggerCommandFlood) read through TriggerContext.Seq.
	cmdSeq int

	// handlerHits counts invocations per packet handler: the simulated
	// analogue of the limited code-coverage measurement the paper's §V
	// cites Frankenstein for. Keys are command names plus the data-plane
	// handlers ("SDP", "RFCOMM").
	handlerHits map[string]int

	// Reused scratch state for the steady-state receive/respond path.
	// The device never receives while mid-send (the client's receive
	// callback only enqueues), so one of each per device suffices.
	dec       l2cap.Decoder
	sigFrames []l2cap.Frame // AppendSignals scratch in onSignaling
	sigWire   []byte        // signaling payload built by sendCmd
	txWire    []byte        // wire bytes of the frame being sent
}

type channel struct {
	m         *sm.Machine
	localCID  l2cap.CID
	remoteCID l2cap.CID
	psm       l2cap.PSM
}

// newSDPServer builds the device's SDP server over its port map, with
// the configured parser defect unless the device is measurement-grade.
// New and Reset both build through it, so a reset re-arms the defect and
// clears the crashed state exactly like the RFCOMM mux rebuild.
func newSDPServer(ports []ServicePort, cfg Config) *sdp.Server {
	var services []sdp.ServiceInfo
	for i, p := range ports {
		services = append(services, sdp.ServiceInfo{
			Handle: 0x00010000 + uint32(i),
			Name:   p.Name,
			PSM:    p.PSM,
		})
	}
	defect := cfg.SDPDefect
	if cfg.DisableVulns {
		defect = nil
	}
	return sdp.NewDefectiveServer(services, defect)
}

// New builds a device, registers its controller on the medium, and wires
// the host stack.
func New(m *radio.Medium, cfg Config) (*Device, error) {
	ports := append([]ServicePort(nil), cfg.Ports...)
	hasSDP := false
	for _, p := range ports {
		if p.PSM == l2cap.PSMSDP {
			hasSDP = true
		}
	}
	if !hasSDP {
		ports = append([]ServicePort{{PSM: l2cap.PSMSDP, Name: "Service Discovery"}}, ports...)
	}

	ctrl, err := hci.NewController(m, hci.Config{
		Addr:          cfg.Addr,
		Name:          cfg.Name,
		ClassOfDevice: cfg.ClassOfDevice,
		Discoverable:  true,
		Connectable:   true,
	})
	if err != nil {
		return nil, fmt.Errorf("device %q: %w", cfg.Name, err)
	}

	d := &Device{
		ctrl:        ctrl,
		medium:      m,
		cfg:         cfg,
		sdpSrv:      newSDPServer(ports, cfg),
		ports:       ports,
		channels:    make(map[l2cap.CID]*channel),
		nextCID:     l2cap.CIDDynamicFirst,
		nextSigID:   1,
		handlerHits: make(map[string]int),
	}
	if len(cfg.RFCOMMServices) > 0 {
		defect := cfg.RFCOMMDefect
		if cfg.DisableVulns {
			defect = nil
		}
		d.mux = rfcomm.NewMux(cfg.RFCOMMServices, defect)
	}
	ctrl.SetReceiver(d.onL2CAP)
	ctrl.SetDisconnectHandler(func(hci.ConnHandle, radio.BDAddr) {
		// Baseband link loss tears down every L2CAP channel riding it
		// (single-peer simulation: all channels belong to the link).
		for cid, ch := range d.channels {
			d.closedMachines = append(d.closedMachines, ch.m)
			delete(d.channels, cid)
		}
	})
	return d, nil
}

// Address returns the device's BD_ADDR.
func (d *Device) Address() radio.BDAddr { return d.cfg.Addr }

// Name returns the friendly name.
func (d *Device) Name() string { return d.cfg.Name }

// Ports returns a copy of the exposed service ports (SDP included).
func (d *Device) Ports() []ServicePort { return append([]ServicePort(nil), d.ports...) }

// Profile returns the stack profile.
func (d *Device) Profile() Profile { return d.cfg.Profile }

// Controller exposes the underlying virtual controller (tests only).
func (d *Device) Controller() *hci.Controller { return d.ctrl }

// Crashed reports whether any defect has fired.
func (d *Device) Crashed() bool { return d.serviceDown || d.poweredOff }

// ServiceDown reports whether the Bluetooth service was terminated (DoS).
func (d *Device) ServiceDown() bool { return d.serviceDown }

// PoweredOff reports whether the whole device died (firmware crash).
func (d *Device) PoweredOff() bool { return d.poweredOff }

// CrashDump returns the crash artefact, or nil.
func (d *Device) CrashDump() *CrashDump { return d.dump }

// Reset restores a crashed device: the manual reset the paper's testers
// performed between runs. Channels are cleared, the service comes back,
// and the crash artefact is discarded.
func (d *Device) Reset() {
	d.serviceDown = false
	d.poweredOff = false
	d.dump = nil
	d.channels = make(map[l2cap.CID]*channel)
	d.closedMachines = nil
	d.nextCID = l2cap.CIDDynamicFirst
	d.cmdSeq = 0
	d.sdpSrv = newSDPServer(d.ports, d.cfg)
	if len(d.cfg.RFCOMMServices) > 0 {
		defect := d.cfg.RFCOMMDefect
		if d.cfg.DisableVulns {
			defect = nil
		}
		d.mux = rfcomm.NewMux(d.cfg.RFCOMMServices, defect)
	}
	d.ctrl.SetConnectable(true)
	d.ctrl.SetDiscoverable(true)
}

// StatesVisited returns every L2CAP state any of the device's channels
// has occupied since the last Reset: the ground truth against which the
// trace-inferred state coverage (Figure 10) can be validated.
func (d *Device) StatesVisited() []sm.State {
	seen := make(map[sm.State]bool)
	var out []sm.State
	note := func(states []sm.State) {
		for _, s := range states {
			if !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
		}
	}
	for _, m := range d.closedMachines {
		note(m.Visited())
	}
	for _, ch := range d.channels {
		note(ch.m.Visited())
	}
	// Sort for determinism: map iteration order above is random.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// onL2CAP is the host-stack entry point for complete L2CAP frames.
func (d *Device) onL2CAP(h hci.ConnHandle, peer radio.BDAddr, raw []byte) {
	if d.poweredOff || d.serviceDown {
		return
	}
	// The frame is a borrow from the controller, valid until this
	// handler returns; every response below is marshaled before then,
	// so the zero-copy parse is safe.
	pkt, err := l2cap.ParsePacket(raw)
	if err != nil {
		return // undecodable basic frames are dropped
	}
	if pkt.IsSignaling() {
		d.onSignaling(h, pkt)
		return
	}
	d.onData(h, pkt)
}

// onData serves open data channels: SDP transactions and, when mounted,
// the RFCOMM multiplexer.
func (d *Device) onData(h hci.ConnHandle, pkt l2cap.Packet) {
	ch, ok := d.channels[pkt.ChannelID]
	if !ok || ch.m.State() != sm.StateOpen {
		return
	}
	body := pkt.Payload[:min(int(pkt.Length), len(pkt.Payload))]
	switch {
	case ch.psm == l2cap.PSMSDP:
		d.handlerHits["SDP"]++
		if rsp := d.sdpSrv.Handle(body); rsp != nil {
			d.send(h, l2cap.NewPacket(ch.remoteCID, rsp))
		}
		if d.sdpSrv.Crashed() {
			d.crashFromSDP()
		}
	case ch.psm == l2cap.PSMRFCOMM && d.mux != nil:
		d.handlerHits["RFCOMM"]++
		// RFCOMM garbage tails live beyond the declared L2CAP length;
		// hand the mux the full payload so its own FCS/tail logic sees
		// them (the buggy parse path reads past the declared length).
		for _, rsp := range d.mux.Handle(pkt.Payload) {
			d.send(h, l2cap.NewPacket(ch.remoteCID, rsp))
		}
		if d.mux.Crashed() {
			d.crashFromRFCOMM()
		}
	}
}

// crashFromSDP applies the effect of an SDP server death: the Bluetooth
// service terminates, as with the L2CAP DoS findings.
func (d *Device) crashFromSDP() {
	d.dump = &CrashDump{
		Kind:        DumpTombstone,
		Time:        d.medium.Clock().Now(),
		VulnID:      "sdp-declared-length-overread",
		Fingerprint: d.cfg.Profile.Fingerprint,
		FaultFunc:   "process_service_search_attr_req(t_sdp_cb*, unsigned char*)+312",
		Trigger:     "SDP PDU declaring more parameter bytes than received",
	}
	d.serviceDown = true
	d.ctrl.SetConnectable(false)
	d.ctrl.SetDiscoverable(false)
	d.dropAllLinks()
}

// crashFromRFCOMM applies the effect of an RFCOMM multiplexer death: the
// Bluetooth service terminates, as with the L2CAP DoS findings.
func (d *Device) crashFromRFCOMM() {
	d.dump = &CrashDump{
		Kind:        DumpTombstone,
		Time:        d.medium.Clock().Now(),
		VulnID:      "rfcomm-reserved-dlci-deref",
		Fingerprint: d.cfg.Profile.Fingerprint,
		FaultFunc:   "rfc_mx_sm_execute(t_rfc_mcb*, unsigned short, void*)+1024",
		Trigger:     "SABM to reserved DLCI with garbage tail",
	}
	d.serviceDown = true
	d.ctrl.SetConnectable(false)
	d.ctrl.SetDiscoverable(false)
	d.dropAllLinks()
}

// onSignaling handles a signaling-channel C-frame.
func (d *Device) onSignaling(h hci.ConnHandle, pkt l2cap.Packet) {
	if len(pkt.Payload) > int(d.cfg.Profile.SignalingMTU) {
		d.sendCmd(h, 0, l2cap.NewMTUExceededReject(d.cfg.Profile.SignalingMTU), nil)
		return
	}
	frames, err := l2cap.AppendSignals(d.sigFrames[:0], pkt.Payload)
	d.sigFrames = frames[:0]
	if err != nil {
		d.sendCmd(h, 0, &l2cap.CommandReject{Reason: l2cap.RejectNotUnderstood}, nil)
		return
	}
	for _, f := range frames {
		d.handleCommand(h, f)
		if d.Crashed() {
			return
		}
	}
}

// handleCommand dispatches one decoded signaling command.
func (d *Device) handleCommand(h hci.ConnHandle, f l2cap.Frame) {
	cmd, err := d.dec.Decode(f)
	if err != nil {
		d.handlerHits["undecodable"]++
		d.sendCmd(h, f.Identifier, &l2cap.CommandReject{Reason: l2cap.RejectNotUnderstood}, nil)
		return
	}
	d.handlerHits[f.Code.String()]++
	d.cmdSeq++
	switch c := cmd.(type) {
	case *l2cap.ConnectionReq:
		d.onConnectionReq(h, f, c)
	case *l2cap.CreateChannelReq:
		d.onCreateChannelReq(h, f, c)
	case *l2cap.ConfigurationReq:
		d.onConfigurationReq(h, f, c)
	case *l2cap.ConfigurationRsp:
		d.onConfigurationRsp(h, f, c)
	case *l2cap.DisconnectionReq:
		d.onDisconnectionReq(h, f, c)
	case *l2cap.EchoReq:
		d.sendCmd(h, f.Identifier, &l2cap.EchoRsp{Data: c.Data}, nil)
	case *l2cap.InformationReq:
		d.onInformationReq(h, f, c)
	case *l2cap.MoveChannelReq:
		d.onMoveChannelReq(h, f, c)
	case *l2cap.MoveChannelConfirmReq:
		d.onMoveConfirmReq(h, f, c)
	case *l2cap.ConnectionRsp, *l2cap.CreateChannelRsp, *l2cap.MoveChannelRsp,
		*l2cap.MoveChannelConfirmRsp, *l2cap.DisconnectionRsp:
		d.onStrayResponse(h, f)
	case *l2cap.CommandReject, *l2cap.EchoRsp, *l2cap.InformationRsp:
		// Responses to nothing we asked; ignored by every stack.
	case *l2cap.ConnParamUpdateReq, *l2cap.ConnParamUpdateRsp,
		*l2cap.LECreditConnReq, *l2cap.LECreditConnRsp:
		// LE-only commands on an ACL-U link: tolerant stacks drop them,
		// strict stacks do not understand them.
		if !d.cfg.Profile.TolerateLEOnACLU {
			d.sendCmd(h, f.Identifier, &l2cap.CommandReject{Reason: l2cap.RejectNotUnderstood}, nil)
		}
	case *l2cap.FlowControlCredit:
		d.sendCmd(h, f.Identifier, l2cap.NewInvalidCIDReject(0, c.CID), nil)
	case *l2cap.CreditBasedConnReq:
		d.onCreditConnReq(h, f, c)
	case *l2cap.CreditBasedConnRsp, *l2cap.CreditBasedReconfReq, *l2cap.CreditBasedReconfRsp:
		if !d.cfg.Profile.SupportsECRED {
			d.sendCmd(h, f.Identifier, &l2cap.CommandReject{Reason: l2cap.RejectNotUnderstood}, nil)
		}
	default:
		d.sendCmd(h, f.Identifier, &l2cap.CommandReject{Reason: l2cap.RejectNotUnderstood}, nil)
	}
}

// onConnectionReq implements the acceptor side of channel establishment.
func (d *Device) onConnectionReq(h hci.ConnHandle, f l2cap.Frame, c *l2cap.ConnectionReq) {
	if d.checkVuln(h, f, c, sm.StateClosed, false) {
		return
	}
	reply := func(result l2cap.ConnResult, dcid l2cap.CID) {
		d.sendCmd(h, f.Identifier, &l2cap.ConnectionRsp{
			DCID: dcid, SCID: c.SCID, Result: result,
		}, nil)
	}
	port, ok := d.lookupPort(c.PSM)
	switch {
	case !ok:
		reply(l2cap.ConnResultPSMNotSupported, 0)
	case port.RequiresPairing:
		reply(l2cap.ConnResultSecurityBlock, 0)
	case len(d.channels) >= d.cfg.Profile.MaxDynamicChannels:
		reply(l2cap.ConnResultNoResources, 0)
	case d.remoteCIDInUse(c.SCID):
		reply(l2cap.ConnResultSCIDInUse, 0)
	case !c.SCID.IsDynamic():
		reply(l2cap.ConnResultInvalidSCID, 0)
	default:
		ch := d.newChannel(c.PSM, c.SCID)
		ch.m.Apply(sm.EvRecvConnectReq) // CLOSED → WAIT_CONNECT
		ch.m.Apply(sm.EvLocalAccept)    // WAIT_CONNECT → WAIT_CONFIG
		reply(l2cap.ConnResultSuccess, ch.localCID)
		d.maybeSendOwnConfig(h, ch)
	}
}

// onCreateChannelReq implements the AMP create-channel acceptor.
func (d *Device) onCreateChannelReq(h hci.ConnHandle, f l2cap.Frame, c *l2cap.CreateChannelReq) {
	if d.checkVuln(h, f, c, sm.StateWaitCreate, false) {
		return
	}
	reply := func(result l2cap.ConnResult, dcid l2cap.CID) {
		d.sendCmd(h, f.Identifier, &l2cap.CreateChannelRsp{
			DCID: dcid, SCID: c.SCID, Result: result,
		}, nil)
	}
	port, ok := d.lookupPort(c.PSM)
	switch {
	case c.ControllerID != 0:
		// Only the BR/EDR controller exists in the simulation.
		reply(l2cap.ConnResultNoController, 0)
	case !ok:
		reply(l2cap.ConnResultPSMNotSupported, 0)
	case port.RequiresPairing:
		reply(l2cap.ConnResultSecurityBlock, 0)
	case len(d.channels) >= d.cfg.Profile.MaxDynamicChannels:
		reply(l2cap.ConnResultNoResources, 0)
	case d.remoteCIDInUse(c.SCID) || !c.SCID.IsDynamic():
		reply(l2cap.ConnResultInvalidSCID, 0)
	default:
		ch := d.newChannel(c.PSM, c.SCID)
		ch.m.Apply(sm.EvRecvCreateReq) // CLOSED → WAIT_CREATE
		ch.m.Apply(sm.EvLocalAccept)   // WAIT_CREATE → WAIT_CONFIG
		reply(l2cap.ConnResultSuccess, ch.localCID)
		d.maybeSendOwnConfig(h, ch)
	}
}

// onConfigurationReq implements the configuration responder, including
// the lenient channel lookup of the vulnerable stacks.
func (d *Device) onConfigurationReq(h hci.ConnHandle, f l2cap.Frame, c *l2cap.ConfigurationReq) {
	ch, known := d.channels[c.DCID]
	if !known && d.cfg.Profile.LenientChannelLookup {
		ch = d.anyConfigJobChannel()
	}
	state := sm.StateClosed
	if ch != nil {
		state = ch.m.State()
	}
	if d.checkVuln(h, f, c, state, known) {
		return
	}
	if ch == nil {
		d.sendCmd(h, f.Identifier, l2cap.NewInvalidCIDReject(0, c.DCID), nil)
		return
	}
	ev := sm.EvRecvConfigReq
	if hasEFSOption(c.Options) {
		ev = sm.EvRecvConfigReqEFS
	}
	tr, ok := ch.m.Apply(ev)
	if !ok {
		d.sendCmd(h, f.Identifier, &l2cap.CommandReject{Reason: l2cap.RejectNotUnderstood}, nil)
		return
	}
	result := l2cap.ConfigSuccess
	if tr.Action == sm.ActSendConfigRspPending {
		result = l2cap.ConfigPending
	}
	d.sendCmd(h, f.Identifier, &l2cap.ConfigurationRsp{
		SCID: ch.remoteCID, Result: result,
	}, nil)
	if tr.Action == sm.ActSendConfigRspPending {
		// Complete the lockstep decision immediately: final response.
		if tr2, ok2 := ch.m.Apply(sm.EvLocalFinalRsp); ok2 && tr2.Action == sm.ActSendConfigRsp {
			d.sendCmd(h, d.sigID(), &l2cap.ConfigurationRsp{
				SCID: ch.remoteCID, Result: l2cap.ConfigSuccess,
			}, nil)
		}
		return
	}
	if ch.m.State() == sm.StateWaitSendConfig {
		// Reactive configuration: even stacks that do not propose eagerly
		// send their own request once the peer has configured.
		d.sendOwnConfig(h, ch)
	}
}

// onConfigurationRsp consumes responses to the device's own proposals.
func (d *Device) onConfigurationRsp(h hci.ConnHandle, f l2cap.Frame, c *l2cap.ConfigurationRsp) {
	ch, known := d.channels[c.SCID]
	if !known && d.cfg.Profile.LenientChannelLookup {
		ch = d.anyConfigJobChannel()
	}
	state := sm.StateClosed
	if ch != nil {
		state = ch.m.State()
	}
	if d.checkVuln(h, f, c, state, known) {
		return
	}
	if ch == nil {
		d.onStrayResponse(h, f)
		return
	}
	if _, ok := ch.m.Apply(sm.EvRecvConfigRsp); !ok {
		d.onStrayResponse(h, f)
	}
}

// onDisconnectionReq tears a channel down.
func (d *Device) onDisconnectionReq(h hci.ConnHandle, f l2cap.Frame, c *l2cap.DisconnectionReq) {
	ch, known := d.channels[c.DCID]
	state := sm.StateClosed
	if ch != nil {
		state = ch.m.State()
	}
	if d.checkVuln(h, f, c, state, known) {
		return
	}
	if ch == nil || (!d.cfg.Profile.LenientChannelLookup && ch.remoteCID != c.SCID) {
		d.sendCmd(h, f.Identifier, l2cap.NewInvalidCIDReject(c.DCID, c.SCID), nil)
		return
	}
	tr, ok := ch.m.Apply(sm.EvRecvDisconnectReq)
	if !ok {
		d.sendCmd(h, f.Identifier, &l2cap.CommandReject{Reason: l2cap.RejectNotUnderstood}, nil)
		return
	}
	if tr.Action == sm.ActDeliverToUpper {
		// OPEN → WAIT_DISCONNECT → (upper accepts) → CLOSED.
		tr, ok = ch.m.Apply(sm.EvLocalAccept)
		if !ok {
			return
		}
	}
	if tr.Action == sm.ActSendDisconnectRsp {
		d.sendCmd(h, f.Identifier, &l2cap.DisconnectionRsp{DCID: c.DCID, SCID: c.SCID}, nil)
	}
	d.closeChannel(ch)
}

// onInformationReq answers capability queries.
func (d *Device) onInformationReq(h hci.ConnHandle, f l2cap.Frame, c *l2cap.InformationReq) {
	rsp := &l2cap.InformationRsp{InfoType: c.InfoType}
	switch c.InfoType {
	case l2cap.InfoTypeConnectionlessMTU:
		rsp.Result = l2cap.InfoResultSuccess
		rsp.Data = []byte{0xA0, 0x02} // 672
	case l2cap.InfoTypeExtendedFeatures:
		rsp.Result = l2cap.InfoResultSuccess
		rsp.Data = []byte{0x80, 0x02, 0x00, 0x00} // FCS + fixed channels
	case l2cap.InfoTypeFixedChannels:
		rsp.Result = l2cap.InfoResultSuccess
		rsp.Data = []byte{0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00}
	default:
		rsp.Result = l2cap.InfoResultNotSupported
	}
	d.sendCmd(h, f.Identifier, rsp, nil)
}

// onMoveChannelReq implements the AMP move acceptor.
func (d *Device) onMoveChannelReq(h hci.ConnHandle, f l2cap.Frame, c *l2cap.MoveChannelReq) {
	ch, known := d.channels[c.ICID]
	state := sm.StateClosed
	if ch != nil {
		state = ch.m.State()
	}
	if d.checkVuln(h, f, c, state, known) {
		return
	}
	if ch == nil {
		d.sendCmd(h, f.Identifier, l2cap.NewInvalidCIDReject(0, c.ICID), nil)
		return
	}
	if _, ok := ch.m.Apply(sm.EvRecvMoveReq); !ok {
		d.sendCmd(h, f.Identifier, &l2cap.CommandReject{Reason: l2cap.RejectNotUnderstood}, nil)
		return
	}
	if tr, ok := ch.m.Apply(sm.EvLocalAccept); ok && tr.Action == sm.ActSendMoveRsp {
		d.sendCmd(h, f.Identifier, &l2cap.MoveChannelRsp{
			ICID: c.ICID, Result: l2cap.MoveResultSuccess,
		}, nil)
	}
}

// onMoveConfirmReq completes a move.
func (d *Device) onMoveConfirmReq(h hci.ConnHandle, f l2cap.Frame, c *l2cap.MoveChannelConfirmReq) {
	ch, known := d.channels[c.ICID]
	state := sm.StateClosed
	if ch != nil {
		state = ch.m.State()
	}
	if d.checkVuln(h, f, c, state, known) {
		return
	}
	if ch == nil {
		d.sendCmd(h, f.Identifier, l2cap.NewInvalidCIDReject(0, c.ICID), nil)
		return
	}
	if tr, ok := ch.m.Apply(sm.EvRecvMoveConfirmReq); ok && tr.Action == sm.ActSendMoveConfirmRsp {
		d.sendCmd(h, f.Identifier, &l2cap.MoveChannelConfirmRsp{ICID: c.ICID}, nil)
		return
	}
	d.sendCmd(h, f.Identifier, &l2cap.CommandReject{Reason: l2cap.RejectNotUnderstood}, nil)
}

// onCreditConnReq answers enhanced credit-based connections: supported
// stacks refuse them politely (no SPSM registered in the simulation),
// others do not understand them.
func (d *Device) onCreditConnReq(h hci.ConnHandle, f l2cap.Frame, c *l2cap.CreditBasedConnReq) {
	if !d.cfg.Profile.SupportsECRED {
		d.sendCmd(h, f.Identifier, &l2cap.CommandReject{Reason: l2cap.RejectNotUnderstood}, nil)
		return
	}
	d.sendCmd(h, f.Identifier, &l2cap.CreditBasedConnRsp{
		Result: 0x0002, // all connections refused – SPSM not supported
	}, nil)
}

// onStrayResponse handles response commands matching no request.
func (d *Device) onStrayResponse(h hci.ConnHandle, f l2cap.Frame) {
	if d.cfg.Profile.AcceptStrayResponses {
		return // the Android quirk: silently tolerated
	}
	d.sendCmd(h, f.Identifier, &l2cap.CommandReject{Reason: l2cap.RejectNotUnderstood}, nil)
}

// checkVuln evaluates the injected defects against one command; when one
// fires it applies the crash effect and returns true (no response is ever
// sent — the stack died mid-parse).
func (d *Device) checkVuln(h hci.ConnHandle, f l2cap.Frame, cmd l2cap.Command, state sm.State, knownCID bool) bool {
	if d.cfg.DisableVulns {
		return false
	}
	ctx := TriggerContext{
		State:    state,
		Code:     f.Code,
		Cmd:      cmd,
		Tail:     f.Tail,
		KnownCID: knownCID,
		Seq:      d.cmdSeq,
	}
	for _, v := range d.cfg.Profile.Vulns {
		if v.Trigger.Matches(ctx) {
			d.crash(v, f)
			return true
		}
	}
	return false
}

// crash applies a fired defect's effect.
func (d *Device) crash(v VulnSpec, f l2cap.Frame) {
	d.dump = &CrashDump{
		Kind:        v.Dump,
		Time:        d.medium.Clock().Now(),
		VulnID:      v.ID,
		Fingerprint: d.cfg.Profile.Fingerprint,
		FaultFunc:   v.FaultFunc,
		Trigger:     fmt.Sprintf("%v id=%d data=%d bytes tail=%d bytes", f.Code, f.Identifier, len(f.Data), len(f.Tail)),
	}
	switch v.Class {
	case ClassDoS:
		// Bluetooth service terminates: links die, pages are refused,
		// the device itself stays on (paper Figure 13).
		d.serviceDown = true
		d.ctrl.SetConnectable(false)
		d.ctrl.SetDiscoverable(false)
		d.dropAllLinks()
	case ClassCrash:
		// The device (or its Bluetooth subsystem) dies entirely.
		d.poweredOff = true
		d.ctrl.SetConnectable(false)
		d.ctrl.SetDiscoverable(false)
		d.dropAllLinks()
		d.medium.Unregister(d.cfg.Addr)
	}
}

func (d *Device) dropAllLinks() {
	for _, peer := range d.ctrl.Peers() {
		d.ctrl.DropPeer(peer)
	}
}

// --- helpers ---

func (d *Device) lookupPort(psm l2cap.PSM) (ServicePort, bool) {
	for _, p := range d.ports {
		if p.PSM == psm {
			return p, true
		}
	}
	return ServicePort{}, false
}

func (d *Device) remoteCIDInUse(cid l2cap.CID) bool {
	for _, ch := range d.channels {
		if ch.remoteCID == cid {
			return true
		}
	}
	return false
}

// anyConfigJobChannel returns some channel currently in a configuration-
// job state: the target of the sloppy CCB lookup. Deterministic choice:
// lowest local CID wins.
func (d *Device) anyConfigJobChannel() *channel {
	var best *channel
	for _, ch := range d.channels {
		if sm.JobOf(ch.m.State()) != sm.JobConfiguration {
			continue
		}
		if best == nil || ch.localCID < best.localCID {
			best = ch
		}
	}
	return best
}

func (d *Device) newChannel(psm l2cap.PSM, remote l2cap.CID) *channel {
	for d.channels[d.nextCID] != nil {
		d.nextCID++
		if d.nextCID < l2cap.CIDDynamicFirst {
			d.nextCID = l2cap.CIDDynamicFirst
		}
	}
	ch := &channel{
		m:         sm.NewMachine(),
		localCID:  d.nextCID,
		remoteCID: remote,
		psm:       psm,
	}
	d.channels[ch.localCID] = ch
	d.nextCID++
	if d.nextCID < l2cap.CIDDynamicFirst {
		d.nextCID = l2cap.CIDDynamicFirst
	}
	return ch
}

func (d *Device) closeChannel(ch *channel) {
	d.closedMachines = append(d.closedMachines, ch.m)
	delete(d.channels, ch.localCID)
}

// maybeSendOwnConfig emits the stack's own Configuration Request when the
// profile is eager, driving the machine's local-send event. Even eager
// stacks stay reactive on the SDP channel: SDP is a client-driven
// service, so the server waits for the client's configuration first —
// which is exactly why single-port fuzzers that only ever touch SDP see
// fewer configuration states than L2Fuzz's multi-port sweep.
func (d *Device) maybeSendOwnConfig(h hci.ConnHandle, ch *channel) {
	if !d.cfg.Profile.SendsOwnConfigReq || ch.psm == l2cap.PSMSDP {
		return
	}
	d.sendOwnConfig(h, ch)
}

// sendOwnConfig unconditionally emits the stack's Configuration Request
// if the machine allows it in the current state.
func (d *Device) sendOwnConfig(h hci.ConnHandle, ch *channel) {
	if _, ok := ch.m.Apply(sm.EvLocalSendConfigReq); !ok {
		return
	}
	d.sendCmd(h, d.sigID(), &l2cap.ConfigurationReq{
		DCID:    ch.remoteCID,
		Options: []l2cap.ConfigOption{l2cap.MTUOption(d.cfg.Profile.SignalingMTU)},
	}, nil)
}

func (d *Device) sigID() uint8 {
	id := d.nextSigID
	d.nextSigID++
	if d.nextSigID == 0 {
		d.nextSigID = 1
	}
	return id
}

func (d *Device) sendCmd(h hci.ConnHandle, id uint8, cmd l2cap.Command, tail []byte) {
	if id == 0 {
		id = d.sigID()
	}
	payload, declared := l2cap.AppendSignalFrame(d.sigWire[:0], id, cmd, tail)
	d.sigWire = payload
	d.send(h, l2cap.Packet{
		Length:    uint16(min(declared, l2cap.MaxPayload)),
		ChannelID: l2cap.CIDSignaling,
		Payload:   payload,
	})
}

func (d *Device) send(h hci.ConnHandle, pkt l2cap.Packet) {
	// Send failures mean the link died mid-conversation; the device,
	// like real hardware, just moves on. The frame is marshaled into a
	// reused scratch buffer, fully delivered before the next send.
	d.txWire = pkt.AppendTo(d.txWire[:0])
	_ = d.ctrl.SendL2CAP(h, d.txWire)
}

func hasEFSOption(opts []l2cap.ConfigOption) bool {
	for _, o := range opts {
		if o.Type == l2cap.OptionExtendedFlowSpec {
			return true
		}
	}
	return false
}

// Medium exposes the radio medium the device lives on, for tooling that
// needs to restore a vanished device (campaign auto-reset).
func (d *Device) Medium() *radio.Medium { return d.medium }

// HandlerCoverage returns the per-handler invocation counts since
// construction: the simulated analogue of the limited code-coverage
// measurement §V cites Frankenstein for. The returned map is a copy.
func (d *Device) HandlerCoverage() map[string]int {
	out := make(map[string]int, len(d.handlerHits))
	for k, v := range d.handlerHits {
		out[k] = v
	}
	return out
}
