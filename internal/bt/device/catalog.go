package device

import (
	"fmt"

	"l2fuzz/internal/bt/l2cap"
	"l2fuzz/internal/bt/radio"
	"l2fuzz/internal/bt/sm"
)

// CatalogEntry describes one of the paper's eight test devices (Table V)
// plus everything the simulation needs to instantiate it. It is the
// inventory view of the catalog: layers that only need a fuzzing target
// take its Spec instead (the paper ID is the target name), and the two
// stay byte-compatible by construction.
type CatalogEntry struct {
	// ID is the paper's device number, "D1" through "D8".
	ID string
	// Type is the device category (Tablet PC, Smartphone, ...).
	Type string
	// Vendor and Model identify the product.
	Vendor, Model string
	// Year is the release year.
	Year int
	// OS is the operating system or firmware version.
	OS string
	// Stack is the Bluetooth host stack name.
	Stack string
	// BTVersion is the advertised Bluetooth version.
	BTVersion string
	// Addr is the simulated BD_ADDR (real vendor OUI prefixes).
	Addr radio.BDAddr
	// ClassOfDevice is the 24-bit CoD.
	ClassOfDevice uint32
	// Config is the full device configuration.
	Config Config
	// ExpectVuln reports whether the paper found a zero-day on this
	// device (Table VI).
	ExpectVuln bool
	// ExpectClass is the paper's finding class when ExpectVuln.
	ExpectClass CrashClass
}

// Class-of-device codes for the catalog.
const (
	codSmartphone uint32 = 0x5A020C
	codTablet     uint32 = 0x1A011C
	codEarphone   uint32 = 0x240404
	codLaptop     uint32 = 0x3E010C
)

// ports builds n generic service ports after the well-known ones, with a
// deterministic pairing mix: every third port requires pairing, SDP and
// the first port never do.
func ports(named []ServicePort, extra int) []ServicePort {
	out := append([]ServicePort(nil), named...)
	base := l2cap.PSMDynamicFirst
	for i := 0; i < extra; i++ {
		out = append(out, ServicePort{
			PSM:             base + l2cap.PSM(i*2), // dynamic PSMs are odd-LSB: 0x1001, 0x1003, ...
			Name:            fmt.Sprintf("vendor-service-%d", i+1),
			RequiresPairing: i%3 == 2,
		})
	}
	return out
}

// standardPhonePorts are the well-known profiles a phone exposes.
func standardPhonePorts() []ServicePort {
	return []ServicePort{
		{PSM: l2cap.PSMSDP, Name: "Service Discovery"},
		{PSM: l2cap.PSMRFCOMM, Name: "RFCOMM", RequiresPairing: true},
		{PSM: l2cap.PSMHIDControl, Name: "HID Control", RequiresPairing: true},
		{PSM: l2cap.PSMAVCTP, Name: "AVCTP"},
		{PSM: l2cap.PSMAVDTP, Name: "AVDTP"},
	}
}

// Catalog returns the eight Table V devices. disableVulns builds
// measurement-grade devices that never crash (Table VII, Figures 8-10).
func Catalog(disableVulns bool) []CatalogEntry {
	entries := []CatalogEntry{
		{
			ID: "D1", Type: "Tablet PC", Vendor: "Google", Model: "Nexus 7 (ASUS-1A005A)",
			Year: 2013, OS: "Android 6.0.1", Stack: "BlueDroid", BTVersion: "4.0 + LE",
			Addr:          radio.MustBDAddr("F8:8F:CA:11:22:33"), // Google OUI
			ClassOfDevice: codTablet,
			ExpectVuln:    true, ExpectClass: ClassDoS,
			Config: Config{
				Name: "Nexus 7",
				Profile: BlueDroidProfile("4.0 + LE",
					"google/razor/flo:6.0.1/MOB30X/3036618:user/release-keys",
					BlueDroidCCBNullDeref(0x40, 15, false)),
				Ports: ports(standardPhonePorts(), 3),
			},
		},
		{
			ID: "D2", Type: "Smartphone", Vendor: "Google", Model: "Pixel 3 (GA00464)",
			Year: 2018, OS: "Android 11.0.1", Stack: "BlueDroid", BTVersion: "5.0 + LE",
			Addr:          radio.MustBDAddr("F8:8F:CA:44:55:66"),
			ClassOfDevice: codSmartphone,
			ExpectVuln:    true, ExpectClass: ClassDoS,
			Config: Config{
				Name: "Pixel 3",
				Profile: BlueDroidProfile("5.0 + LE",
					"google/blueline/blueline:11/RQ1D.210105.003/7005430:user/release-keys",
					BlueDroidCCBNullDeref(0x40, 15, false)),
				Ports: ports(standardPhonePorts(), 5),
			},
		},
		{
			ID: "D3", Type: "Smartphone", Vendor: "Samsung", Model: "Galaxy S7 (SM-G930L)",
			Year: 2016, OS: "Android 8.0.0", Stack: "BlueDroid", BTVersion: "4.2",
			Addr:          radio.MustBDAddr("8C:F5:A3:77:88:99"), // Samsung OUI
			ClassOfDevice: codSmartphone,
			ExpectVuln:    true, ExpectClass: ClassDoS,
			Config: Config{
				Name: "Galaxy S7",
				Profile: BlueDroidProfile("4.2",
					"samsung/heroltexx/herolte:8.0.0/R16NW/G930LKLU1DRG3:user/release-keys",
					SamsungCreateChannelDeref(0x0D, 8, 0x00FF)),
				Ports: ports(standardPhonePorts(), 4),
			},
		},
		{
			ID: "D4", Type: "Smartphone", Vendor: "Apple", Model: "iPhone 6S (A1688)",
			Year: 2015, OS: "iOS 15.0.2", Stack: "iOS stack", BTVersion: "4.2",
			Addr:          radio.MustBDAddr("F0:DB:E2:10:20:30"), // Apple OUI
			ClassOfDevice: codSmartphone,
			Config: Config{
				Name:    "iPhone 6S",
				Profile: IOSProfile("4.2"),
				Ports: ports([]ServicePort{
					{PSM: l2cap.PSMSDP, Name: "Service Discovery"},
					{PSM: l2cap.PSMAVCTP, Name: "AVCTP"},
					{PSM: l2cap.PSMAVDTP, Name: "AVDTP"},
				}, 4),
			},
		},
		{
			ID: "D5", Type: "Earphone", Vendor: "Apple", Model: "AirPods 1 gen (A1523)",
			Year: 2016, OS: "FW 6.8.8", Stack: "RTKit stack", BTVersion: "4.2",
			Addr:          radio.MustBDAddr("F0:DB:E2:40:50:60"),
			ClassOfDevice: codEarphone,
			ExpectVuln:    true, ExpectClass: ClassCrash,
			Config: Config{
				Name:    "AirPods",
				Profile: RTKitProfile("4.2", RTKitPSMServiceKill(0x09, 0x001F)),
				// Six service ports, matching §IV-B's elapsed-time analysis.
				Ports: ports([]ServicePort{
					{PSM: l2cap.PSMSDP, Name: "Service Discovery"},
					{PSM: l2cap.PSMAVDTP, Name: "AVDTP"},
					{PSM: l2cap.PSMAVCTP, Name: "AVCTP"},
				}, 3),
			},
		},
		{
			ID: "D6", Type: "Earphone", Vendor: "Samsung", Model: "Galaxy Buds+ (SM-R175NZKATUR)",
			Year: 2020, OS: "R175XXU0AUG1", Stack: "BTW", BTVersion: "5.0 + LE",
			Addr:          radio.MustBDAddr("8C:F5:A3:AA:BB:CC"),
			ClassOfDevice: codEarphone,
			Config: Config{
				Name:    "Galaxy Buds+",
				Profile: BTWProfile("5.0 + LE"),
				Ports: ports([]ServicePort{
					{PSM: l2cap.PSMSDP, Name: "Service Discovery"},
					{PSM: l2cap.PSMAVDTP, Name: "AVDTP"},
				}, 3),
			},
		},
		{
			ID: "D7", Type: "Laptop", Vendor: "LG", Model: "Gram 2019 (15ZD990-VX50K)",
			Year: 2019, OS: "Windows 10", Stack: "Windows stack", BTVersion: "5.0",
			Addr:          radio.MustBDAddr("A8:92:2C:01:02:03"), // LG OUI
			ClassOfDevice: codLaptop,
			Config: Config{
				Name:    "LG Gram (Windows)",
				Profile: WindowsProfile("5.0"),
				Ports:   ports(standardPhonePorts(), 5),
			},
		},
		{
			ID: "D8", Type: "Laptop", Vendor: "LG", Model: "Gram 2017 (15ZD970-GX55K)",
			Year: 2017, OS: "Ubuntu 18.04.4", Stack: "BlueZ", BTVersion: "5.0",
			Addr:          radio.MustBDAddr("A8:92:2C:04:05:06"),
			ClassOfDevice: codLaptop,
			ExpectVuln:    true, ExpectClass: ClassCrash,
			Config: Config{
				Name: "LG Gram (Ubuntu)",
				Profile: BlueZProfile("5.0",
					"bluez-5.48-0ubuntu3.4 linux-5.3.0-28-generic",
					BlueZOptionOverrunGPF(0x40, 0x0140, 8, sm.StateWaitConfigRsp)),
				// Thirteen service ports, matching §IV-B.
				Ports: ports(standardPhonePorts(), 8),
			},
		},
	}
	for i := range entries {
		entries[i].Config.Addr = entries[i].Addr
		entries[i].Config.ClassOfDevice = entries[i].ClassOfDevice
		entries[i].Config.DisableVulns = disableVulns
	}
	return entries
}

// CatalogEntryByID returns the entry with the given paper ID ("D1".."D8").
func CatalogEntryByID(id string, disableVulns bool) (CatalogEntry, error) {
	for _, e := range Catalog(disableVulns) {
		if e.ID == id {
			return e, nil
		}
	}
	return CatalogEntry{}, fmt.Errorf("device: no catalog entry %q", id)
}
