package device

import (
	"fmt"

	"l2fuzz/internal/bt/radio"
	"l2fuzz/internal/bt/rfcomm"
)

// Spec is a first-class fuzzing target: the device identity every layer
// of the system — testbed, fleet, CLI and public API — consumes. It
// decouples "what to fuzz" from the paper's eight-device catalog: a
// target is a name plus a full device configuration, and the catalog is
// just eight predefined Specs (CatalogSpecs). Anything that can be
// expressed as a device.Config — custom port maps, vendor profiles,
// injected defects, RFCOMM services — is a schedulable farm target.
type Spec struct {
	// Name identifies the target. Farm seeds, packet budgets and
	// per-device report sections all key by it, so it must be unique
	// within a farm and must not collide with the catalog IDs. Catalog
	// specs use the paper's "D1".."D8"; the friendly over-the-air name
	// lives in Config.Name.
	Name string
	// Config is the full device configuration the simulation
	// instantiates the target from.
	Config Config
	// ExpectVuln marks targets that carry an injected defect a fuzzer
	// is expected to find. The testbed uses it to arm the RFCOMM mux
	// defect on RFCOMM rigs, and evaluation harnesses use it as ground
	// truth (the paper's Table VI column).
	ExpectVuln bool
	// ExpectClass is the expected observable severity when ExpectVuln
	// is set.
	ExpectClass CrashClass
}

// Validate checks the spec can identify and instantiate a target: a
// non-empty name and a non-zero BD_ADDR.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("device: spec with empty target name")
	}
	if s.Config.Addr == (radio.BDAddr{}) {
		return fmt.Errorf("device: spec %q has no BD_ADDR", s.Name)
	}
	return nil
}

// Clone returns a copy of the spec whose referenced fields — ports,
// RFCOMM services, injected defects — no longer alias the original, so
// holders of the clone are isolated from later caller mutation. Specs
// are pure data (defect triggers are declarative descriptors, not
// closures), so a clone is a complete deep copy.
func (s Spec) Clone() Spec {
	s.Config.Ports = append([]ServicePort(nil), s.Config.Ports...)
	s.Config.RFCOMMServices = append([]rfcomm.Service(nil), s.Config.RFCOMMServices...)
	s.Config.Profile.Vulns = append([]VulnSpec(nil), s.Config.Profile.Vulns...)
	if s.Config.RFCOMMDefect != nil {
		d := *s.Config.RFCOMMDefect
		s.Config.RFCOMMDefect = &d
	}
	if s.Config.SDPDefect != nil {
		d := *s.Config.SDPDefect
		s.Config.SDPDefect = &d
	}
	return s
}

// Spec re-expresses the catalog entry as a first-class target spec: the
// paper ID becomes the target name and the entry's configuration and
// expected-defect metadata carry over unchanged, so a catalog Spec is
// byte-compatible with the entry it views.
func (e CatalogEntry) Spec() Spec {
	return Spec{
		Name:        e.ID,
		Config:      e.Config,
		ExpectVuln:  e.ExpectVuln,
		ExpectClass: e.ExpectClass,
	}
}

// CatalogSpecs returns the eight Table V devices as predefined target
// specs, in catalog order. disableVulns builds measurement-grade
// targets, as with Catalog.
func CatalogSpecs(disableVulns bool) []Spec {
	entries := Catalog(disableVulns)
	specs := make([]Spec, len(entries))
	for i, e := range entries {
		specs[i] = e.Spec()
	}
	return specs
}

// CatalogSpec returns the Table V device with the given paper ID
// ("D1".."D8") as a target spec.
func CatalogSpec(id string, disableVulns bool) (Spec, error) {
	e, err := CatalogEntryByID(id, disableVulns)
	if err != nil {
		return Spec{}, err
	}
	return e.Spec(), nil
}

// catalogIDs are the Table V paper IDs in catalog order. Kept as bare
// strings so ID checks never pay for building the full catalog; a test
// pins them against Catalog itself.
var catalogIDs = []string{"D1", "D2", "D3", "D4", "D5", "D6", "D7", "D8"}

// CatalogIDs returns the catalog's paper IDs in catalog order.
func CatalogIDs() []string {
	return append([]string(nil), catalogIDs...)
}

// IsCatalogID reports whether name is one of the catalog's paper IDs.
// Custom target specs must not reuse them.
func IsCatalogID(name string) bool {
	for _, id := range catalogIDs {
		if id == name {
			return true
		}
	}
	return false
}
