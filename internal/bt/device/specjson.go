package device

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"reflect"
	"sort"
	"strings"

	"l2fuzz/internal/bt/l2cap"
	"l2fuzz/internal/bt/radio"
	"l2fuzz/internal/bt/rfcomm"
	"l2fuzz/internal/bt/sm"
)

// The JSON form of a target spec, as consumed by DecodeSpec (and the
// l2farm -device-file flag):
//
//	{
//	  "name": "smart-speaker",
//	  "addr": "D0:03:DF:12:34:56",
//	  "classOfDevice": 2360324,
//	  "profile": {"stack": "bluedroid", "btVersion": "5.2", "fingerprint": "vendor/speaker:12"},
//	  "ports": [
//	    {"psm": 1, "name": "Service Discovery"},
//	    {"psm": 3, "name": "RFCOMM", "requiresPairing": true},
//	    {"psm": 4097, "name": "vendor-control"}
//	  ],
//	  "defects": ["ccb-null-deref"],
//	  "rfcomm": {"services": [{"channel": 1, "name": "Serial Port Profile"}], "defect": true},
//	  "expectVuln": true,
//	  "expectClass": "DoS"
//	}
//
// name, addr and profile.stack are required; everything else is
// optional. Unknown fields are rejected. "defects" names injected L2CAP
// defects from the catalog's four, calibrated as the paper's devices
// ship them; "rfcomm.defect" arms the reserved-DLCI mux defect. When
// "expectVuln" is absent it defaults to true iff any defect is armed,
// and an absent "expectClass" takes the first armed defect's class.
type specDoc struct {
	Name          string     `json:"name"`
	Addr          string     `json:"addr"`
	ClassOfDevice uint32     `json:"classOfDevice,omitempty"`
	Profile       profileDoc `json:"profile"`
	Ports         []portDoc  `json:"ports,omitempty"`
	Defects       []string   `json:"defects,omitempty"`
	RFCOMM        *rfcommDoc `json:"rfcomm,omitempty"`
	ExpectVuln    *bool      `json:"expectVuln,omitempty"`
	ExpectClass   string     `json:"expectClass,omitempty"`
}

type profileDoc struct {
	Stack       string `json:"stack"`
	BTVersion   string `json:"btVersion,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
}

type portDoc struct {
	PSM             uint16 `json:"psm"`
	Name            string `json:"name,omitempty"`
	RequiresPairing bool   `json:"requiresPairing,omitempty"`
}

type rfcommDoc struct {
	Services []serviceDoc `json:"services,omitempty"`
	Defect   bool         `json:"defect,omitempty"`
}

type serviceDoc struct {
	Channel uint8  `json:"channel"`
	Name    string `json:"name"`
}

// specProfiles maps the stack names DecodeSpec accepts to the vendor
// profile constructors. Strict stacks take no defects natively, so the
// wrappers graft them on — a custom target may pair any stack with any
// defect.
var specProfiles = map[string]func(btVersion, fingerprint string, vulns []VulnSpec) Profile{
	"bluedroid": func(bt, fp string, v []VulnSpec) Profile { return BlueDroidProfile(bt, fp, v...) },
	"bluez":     func(bt, fp string, v []VulnSpec) Profile { return BlueZProfile(bt, fp, v...) },
	"ios": func(bt, fp string, v []VulnSpec) Profile {
		p := IOSProfile(bt)
		p.Fingerprint, p.Vulns = fp, v
		return p
	},
	"rtkit": func(bt, fp string, v []VulnSpec) Profile {
		p := RTKitProfile(bt, v...)
		p.Fingerprint = fp
		return p
	},
	"btw": func(bt, fp string, v []VulnSpec) Profile {
		p := BTWProfile(bt)
		p.Fingerprint, p.Vulns = fp, v
		return p
	},
	"windows": func(bt, fp string, v []VulnSpec) Profile {
		p := WindowsProfile(bt)
		p.Fingerprint, p.Vulns = fp, v
		return p
	},
}

// specDefects maps the defect names DecodeSpec accepts to the four
// injected defects of the paper's findings, calibrated as the catalog
// ships them.
var specDefects = map[string]func() VulnSpec{
	"ccb-null-deref":     func() VulnSpec { return BlueDroidCCBNullDeref(0x40, 15, false) },
	"create-deref":       func() VulnSpec { return SamsungCreateChannelDeref(0x0D, 8, 0x00FF) },
	"psm-service-kill":   func() VulnSpec { return RTKitPSMServiceKill(0x09, 0x001F) },
	"option-overrun-gpf": func() VulnSpec { return BlueZOptionOverrunGPF(0x40, 0x0140, 8, sm.StateWaitConfigRsp) },
}

// sortedNames renders a name set for error messages.
func sortedNames[V any](m map[string]V) string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// DecodeSpec parses the JSON form of a target spec. Malformed JSON and
// type mismatches are reported with the line and column they occur at;
// semantic errors name the offending field and the accepted values.
func DecodeSpec(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var doc specDoc
	if err := dec.Decode(&doc); err != nil {
		return Spec{}, locateSpecError(data, err)
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); !errors.Is(err, io.EOF) {
		return Spec{}, fmt.Errorf("device spec: trailing data after the spec object")
	}

	if doc.Name == "" {
		return Spec{}, fmt.Errorf("device spec: missing required field \"name\"")
	}
	if doc.Addr == "" {
		return Spec{}, fmt.Errorf("device spec %q: missing required field \"addr\"", doc.Name)
	}
	addr, err := radio.ParseBDAddr(doc.Addr)
	if err != nil {
		return Spec{}, fmt.Errorf("device spec %q: field \"addr\": %w", doc.Name, err)
	}

	var vulns []VulnSpec
	var firstClass CrashClass
	for _, name := range doc.Defects {
		build, ok := specDefects[name]
		if !ok {
			return Spec{}, fmt.Errorf("device spec %q: unknown defect %q (have %s)",
				doc.Name, name, sortedNames(specDefects))
		}
		v := build()
		if firstClass == 0 {
			firstClass = v.Class
		}
		vulns = append(vulns, v)
	}

	build, ok := specProfiles[strings.ToLower(doc.Profile.Stack)]
	if !ok {
		return Spec{}, fmt.Errorf("device spec %q: unknown profile stack %q (have %s)",
			doc.Name, doc.Profile.Stack, sortedNames(specProfiles))
	}
	cfg := Config{
		Addr:          addr,
		Name:          doc.Name,
		ClassOfDevice: doc.ClassOfDevice,
		Profile:       build(doc.Profile.BTVersion, doc.Profile.Fingerprint, vulns),
	}
	for _, p := range doc.Ports {
		cfg.Ports = append(cfg.Ports, ServicePort{
			PSM:             l2cap.PSM(p.PSM),
			Name:            p.Name,
			RequiresPairing: p.RequiresPairing,
		})
	}
	armed := len(vulns) > 0
	if doc.RFCOMM != nil {
		for _, s := range doc.RFCOMM.Services {
			cfg.RFCOMMServices = append(cfg.RFCOMMServices, rfcomm.Service{
				Channel: s.Channel,
				Name:    s.Name,
			})
		}
		if doc.RFCOMM.Defect {
			if len(cfg.RFCOMMServices) == 0 {
				return Spec{}, fmt.Errorf("device spec %q: \"rfcomm.defect\" set without \"rfcomm.services\"", doc.Name)
			}
			cfg.RFCOMMDefect = rfcomm.ReservedDLCIDefect()
			armed = true
			if firstClass == 0 {
				firstClass = ClassDoS
			}
		}
	}

	spec := Spec{Name: doc.Name, Config: cfg, ExpectVuln: armed}
	if doc.ExpectVuln != nil {
		spec.ExpectVuln = *doc.ExpectVuln
	}
	switch strings.ToLower(doc.ExpectClass) {
	case "":
		spec.ExpectClass = firstClass
	case "dos":
		spec.ExpectClass = ClassDoS
	case "crash":
		spec.ExpectClass = ClassCrash
	default:
		return Spec{}, fmt.Errorf("device spec %q: unknown expectClass %q (have DoS, Crash)",
			doc.Name, doc.ExpectClass)
	}
	if err := spec.Validate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

// stackNames and defectNames are the encoder's inverse maps, derived
// from the decoder's tables so the two directions cannot drift: each
// stack constructor's Profile.Stack display name maps back to its doc
// key, and each catalog defect's VulnSpec.ID maps back to its defect
// name.
var (
	stackNames = func() map[string]string {
		m := make(map[string]string, len(specProfiles))
		for key, build := range specProfiles {
			m[build("", "", nil).Stack] = key
		}
		return m
	}()
	defectNames = func() map[string]string {
		m := make(map[string]string, len(specDefects))
		for key, build := range specDefects {
			m[build().ID] = key
		}
		return m
	}()
)

// EncodeSpec renders a target spec into the JSON form DecodeSpec
// parses — the inverse direction, used to embed a custom target's
// identity in corpus entries so they stay self-contained.
//
// Not every hand-built Spec is representable: the JSON form carries one
// name (Config.Name must equal Spec.Name), only the six named stacks
// with their constructor-default behaviour knobs, only the four catalog
// defects at their catalog calibration, and an RFCOMM defect only
// alongside services (DecodeSpec rejects the combination otherwise).
// Every mismatch is reported as an error: defect triggers are
// declarative descriptors the encoder compares by value, so a
// re-calibrated defect under a catalog ID is rejected rather than
// silently encoded as the catalog calibration. Specs produced by
// DecodeSpec always round-trip exactly.
func EncodeSpec(spec Spec) ([]byte, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	cfg := spec.Config
	if cfg.Name != spec.Name {
		return nil, fmt.Errorf("device spec %q: config name %q differs from the spec name; the JSON form carries one name", spec.Name, cfg.Name)
	}
	if cfg.DisableVulns {
		return nil, fmt.Errorf("device spec %q: DisableVulns is a rig-level switch the JSON form does not carry", spec.Name)
	}
	stackKey, ok := stackNames[cfg.Profile.Stack]
	if !ok {
		return nil, fmt.Errorf("device spec %q: profile stack %q has no JSON name (have %s)",
			spec.Name, cfg.Profile.Stack, sortedNames(specProfiles))
	}
	var defects []string
	for _, v := range cfg.Profile.Vulns {
		key, ok := defectNames[v.ID]
		if !ok {
			return nil, fmt.Errorf("device spec %q: defect %q is not a catalog defect (have %s)",
				spec.Name, v.ID, sortedNames(specDefects))
		}
		if catalog := specDefects[key](); !reflect.DeepEqual(v, catalog) {
			return nil, fmt.Errorf("device spec %q: defect %q calibration differs from the catalog's; DecodeSpec could not rebuild it",
				spec.Name, v.ID)
		}
		defects = append(defects, key)
	}
	// The defect list round-trips by construction (verified above), so
	// the whole profile — knobs and defects — must equal what the stack
	// constructor rebuilds from the doc.
	rebuilt := specProfiles[stackKey](cfg.Profile.BTVersion, cfg.Profile.Fingerprint, cfg.Profile.Vulns)
	if !reflect.DeepEqual(cfg.Profile, rebuilt) {
		return nil, fmt.Errorf("device spec %q: profile behaviour knobs differ from the %q stack constructor's; DecodeSpec could not rebuild them", spec.Name, stackKey)
	}

	doc := specDoc{
		Name:          spec.Name,
		Addr:          cfg.Addr.String(),
		ClassOfDevice: cfg.ClassOfDevice,
		Profile: profileDoc{
			Stack:       stackKey,
			BTVersion:   cfg.Profile.BTVersion,
			Fingerprint: cfg.Profile.Fingerprint,
		},
		Defects: defects,
	}
	for _, p := range cfg.Ports {
		doc.Ports = append(doc.Ports, portDoc{
			PSM:             uint16(p.PSM),
			Name:            p.Name,
			RequiresPairing: p.RequiresPairing,
		})
	}
	if len(cfg.RFCOMMServices) > 0 || cfg.RFCOMMDefect != nil {
		if cfg.RFCOMMDefect != nil && len(cfg.RFCOMMServices) == 0 {
			return nil, fmt.Errorf("device spec %q: an RFCOMM defect without RFCOMM services is not decodable", spec.Name)
		}
		if cfg.RFCOMMDefect != nil && *cfg.RFCOMMDefect != *rfcomm.ReservedDLCIDefect() {
			return nil, fmt.Errorf("device spec %q: RFCOMM defect calibration differs from the reserved-DLCI defect's; DecodeSpec could not rebuild it", spec.Name)
		}
		rd := &rfcommDoc{Defect: cfg.RFCOMMDefect != nil}
		for _, s := range cfg.RFCOMMServices {
			rd.Services = append(rd.Services, serviceDoc{Channel: s.Channel, Name: s.Name})
		}
		doc.RFCOMM = rd
	}
	// expectVuln is always explicit so the decoder's armed-defect
	// default cannot flip it; expectClass is written whenever the spec
	// carries one (an unset class falls back to the decoder's
	// first-defect default, which is how it was derived).
	doc.ExpectVuln = &spec.ExpectVuln
	if spec.ExpectClass != 0 {
		doc.ExpectClass = spec.ExpectClass.String()
	}
	data, err := json.Marshal(doc)
	if err != nil {
		return nil, fmt.Errorf("device spec %q: %w", spec.Name, err)
	}
	return data, nil
}

// locateSpecError augments a json decoding error with the 1-based line
// and column of its byte offset, when the error carries one.
func locateSpecError(data []byte, err error) error {
	var offset int64 = -1
	var syn *json.SyntaxError
	var typ *json.UnmarshalTypeError
	switch {
	case errors.As(err, &syn):
		offset = syn.Offset
	case errors.As(err, &typ):
		offset = typ.Offset
	}
	if offset < 0 || offset > int64(len(data)) {
		return fmt.Errorf("device spec: %w", err)
	}
	line, col := 1, 1
	for _, b := range data[:offset] {
		if b == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return fmt.Errorf("device spec: line %d:%d: %w", line, col, err)
}
