package device

import "l2fuzz/internal/bt/l2cap"

// Profile captures the vendor-specific behaviour of a Bluetooth host
// stack: how strictly it validates signaling traffic, how it runs the
// configuration handshake, and which defects it ships.
type Profile struct {
	// Stack is the host stack name from Table V (BlueDroid, BlueZ, ...).
	Stack string
	// BTVersion is the advertised Bluetooth version string.
	BTVersion string
	// Fingerprint is the build string recorded in crash dumps.
	Fingerprint string
	// SignalingMTU is the stack's MTUsig; larger signaling packets are
	// rejected with "Signaling MTU exceeded".
	SignalingMTU uint16
	// SendsOwnConfigReq makes the stack propose its own configuration
	// immediately after accepting a connection, as BlueDroid and BlueZ
	// do; strict stacks wait for the peer first.
	SendsOwnConfigReq bool
	// LenientChannelLookup makes configuration/disconnection commands
	// addressed to unallocated CIDs resolve against the most recent
	// configuration-phase channel instead of being rejected with
	// "Invalid CID in request" — the sloppy channel-control-block lookup
	// at the heart of the paper's BlueDroid and BlueZ findings.
	LenientChannelLookup bool
	// AcceptStrayResponses suppresses Command Reject for response
	// commands that match no outstanding request: the Android quirk the
	// paper reports ("some Android devices did not reject Connect Rsp in
	// WAIT_CONNECT").
	AcceptStrayResponses bool
	// SupportsECRED enables enhanced credit-based commands (0x17-0x1A);
	// stacks without it answer them with "Command not understood".
	SupportsECRED bool
	// TolerateLEOnACLU makes the stack silently drop LE-only signaling
	// commands received on an ACL-U link instead of rejecting them —
	// BlueDroid routes them to its LE signaling handler, which discards
	// them for BR/EDR links.
	TolerateLEOnACLU bool
	// MaxDynamicChannels caps concurrently allocated channels; further
	// connection requests are refused with "no resources" — the channel
	// cap the paper blames for part of L2Fuzz's rejection ratio.
	MaxDynamicChannels int
	// Vulns are the injected defects.
	Vulns []VulnSpec
}

// BlueDroidProfile models Android's BlueDroid/Fluoride stack: lenient
// lookups, eager configuration, and the null-CCB defect.
func BlueDroidProfile(btVersion, fingerprint string, vulns ...VulnSpec) Profile {
	return Profile{
		Stack:                "BlueDroid",
		BTVersion:            btVersion,
		Fingerprint:          fingerprint,
		SignalingMTU:         l2cap.DefaultSignalingMTU,
		SendsOwnConfigReq:    true,
		LenientChannelLookup: true,
		AcceptStrayResponses: true,
		SupportsECRED:        false,
		TolerateLEOnACLU:     true,
		MaxDynamicChannels:   8,
		Vulns:                vulns,
	}
}

// BlueZProfile models the Linux BlueZ stack.
func BlueZProfile(btVersion, fingerprint string, vulns ...VulnSpec) Profile {
	return Profile{
		Stack:                "BlueZ",
		BTVersion:            btVersion,
		Fingerprint:          fingerprint,
		SignalingMTU:         l2cap.DefaultSignalingMTU,
		SendsOwnConfigReq:    true,
		LenientChannelLookup: true,
		AcceptStrayResponses: false,
		SupportsECRED:        true,
		MaxDynamicChannels:   16,
		Vulns:                vulns,
	}
}

// IOSProfile models Apple's iOS stack: strict validation and exception
// handling for malformed packets, hence no findings on D4.
func IOSProfile(btVersion string) Profile {
	return Profile{
		Stack:                "iOS stack",
		BTVersion:            btVersion,
		SignalingMTU:         l2cap.DefaultSignalingMTU,
		SendsOwnConfigReq:    false,
		LenientChannelLookup: false,
		AcceptStrayResponses: false,
		SupportsECRED:        true,
		MaxDynamicChannels:   12,
	}
}

// RTKitProfile models Apple's RTKit firmware stack (AirPods): small,
// permissive, and carrying the PSM service-kill defect.
func RTKitProfile(btVersion string, vulns ...VulnSpec) Profile {
	return Profile{
		Stack:                "RTKit stack",
		BTVersion:            btVersion,
		SignalingMTU:         l2cap.MinACLMTU * 4,
		SendsOwnConfigReq:    false,
		LenientChannelLookup: true,
		AcceptStrayResponses: true,
		SupportsECRED:        false,
		TolerateLEOnACLU:     true,
		MaxDynamicChannels:   4,
		Vulns:                vulns,
	}
}

// BTWProfile models Broadcom's BTW stack (Galaxy Buds+): strict.
func BTWProfile(btVersion string) Profile {
	return Profile{
		Stack:                "BTW",
		BTVersion:            btVersion,
		SignalingMTU:         l2cap.DefaultSignalingMTU,
		SendsOwnConfigReq:    false,
		LenientChannelLookup: false,
		AcceptStrayResponses: false,
		SupportsECRED:        false,
		MaxDynamicChannels:   6,
	}
}

// WindowsProfile models the Microsoft Windows stack: strict.
func WindowsProfile(btVersion string) Profile {
	return Profile{
		Stack:                "Windows stack",
		BTVersion:            btVersion,
		SignalingMTU:         l2cap.DefaultSignalingMTU,
		SendsOwnConfigReq:    false,
		LenientChannelLookup: false,
		AcceptStrayResponses: false,
		SupportsECRED:        true,
		MaxDynamicChannels:   16,
	}
}

// ServicePort is one L2CAP service a device exposes.
type ServicePort struct {
	// PSM is the port number.
	PSM l2cap.PSM
	// Name is the human-readable service name published over SDP.
	Name string
	// RequiresPairing gates the port behind authentication: connection
	// attempts from unpaired peers are refused with a security block.
	// The SDP port never requires pairing.
	RequiresPairing bool
}
