package sdp

import (
	"encoding/binary"
	"errors"
	"fmt"

	"l2fuzz/internal/bt/l2cap"
)

// PDUID identifies an SDP protocol data unit.
type PDUID uint8

// The PDU types the reproduction uses.
const (
	// PDUErrorRsp reports a protocol error.
	PDUErrorRsp PDUID = 0x01
	// PDUServiceSearchAttributeReq asks for attributes of matching records.
	PDUServiceSearchAttributeReq PDUID = 0x06
	// PDUServiceSearchAttributeRsp answers with an attribute list.
	PDUServiceSearchAttributeRsp PDUID = 0x07
)

// pduHeaderSize is PDU ID (1) + transaction ID (2) + parameter length (2).
const pduHeaderSize = 5

// Well-known attribute IDs.
const (
	// AttrServiceRecordHandle is attribute 0x0000.
	AttrServiceRecordHandle uint16 = 0x0000
	// AttrServiceClassIDList is attribute 0x0001.
	AttrServiceClassIDList uint16 = 0x0001
	// AttrProtocolDescriptorList is attribute 0x0004: where the L2CAP PSM
	// is published.
	AttrProtocolDescriptorList uint16 = 0x0004
	// AttrServiceName is attribute 0x0100 (with the default language base).
	AttrServiceName uint16 = 0x0100
)

// UUIDs used in records and search patterns.
const (
	// UUIDL2CAP is the L2CAP protocol UUID.
	UUIDL2CAP uint16 = 0x0100
	// UUIDPublicBrowseRoot is the public browse group root.
	UUIDPublicBrowseRoot uint16 = 0x1002
)

// PDU decode errors.
var (
	// ErrShortPDU indicates fewer bytes than the PDU header.
	ErrShortPDU = errors.New("sdp: PDU shorter than header")
	// ErrPDULength indicates a parameter-length mismatch.
	ErrPDULength = errors.New("sdp: PDU parameter length mismatch")
	// ErrWrongPDU indicates an unexpected PDU ID.
	ErrWrongPDU = errors.New("sdp: unexpected PDU type")
)

// PDU is one SDP protocol data unit.
type PDU struct {
	// ID is the PDU type.
	ID PDUID
	// TxnID matches responses to requests.
	TxnID uint16
	// Params is the parameter payload.
	Params []byte
}

// Marshal encodes the PDU.
func (p PDU) Marshal() []byte {
	out := make([]byte, pduHeaderSize, pduHeaderSize+len(p.Params))
	out[0] = uint8(p.ID)
	binary.BigEndian.PutUint16(out[1:3], p.TxnID)
	binary.BigEndian.PutUint16(out[3:5], uint16(len(p.Params)))
	return append(out, p.Params...)
}

// UnmarshalPDU decodes one PDU, copying the parameters.
func UnmarshalPDU(raw []byte) (PDU, error) {
	if len(raw) < pduHeaderSize {
		return PDU{}, fmt.Errorf("%w: got %d bytes", ErrShortPDU, len(raw))
	}
	declared := int(binary.BigEndian.Uint16(raw[3:5]))
	if declared != len(raw)-pduHeaderSize {
		return PDU{}, fmt.Errorf("%w: declared %d, got %d",
			ErrPDULength, declared, len(raw)-pduHeaderSize)
	}
	return PDU{
		ID:     PDUID(raw[0]),
		TxnID:  binary.BigEndian.Uint16(raw[1:3]),
		Params: append([]byte(nil), raw[pduHeaderSize:]...),
	}, nil
}

// NewServiceSearchAttributeReq builds the browse-everything request the
// scanner issues: search pattern = {PublicBrowseRoot}, attribute range =
// all attributes, maximum response size = 0xFFFF.
func NewServiceSearchAttributeReq(txn uint16) PDU {
	var params []byte
	params = SeqEl(UUID16El(UUIDPublicBrowseRoot)).Marshal(params)
	var maxCount [2]byte
	binary.BigEndian.PutUint16(maxCount[:], 0xFFFF)
	params = append(params, maxCount[:]...)
	// Attribute ID range 0x0000-0xFFFF as a 32-bit range element.
	params = SeqEl(Uint32El(0x0000FFFF)).Marshal(params)
	params = append(params, 0x00) // no continuation state
	return PDU{ID: PDUServiceSearchAttributeReq, TxnID: txn, Params: params}
}

// ServiceInfo is one discovered service: the output of the scan.
type ServiceInfo struct {
	// Handle is the service record handle.
	Handle uint32
	// Name is the service name attribute.
	Name string
	// PSM is the L2CAP port from the protocol descriptor list.
	PSM l2cap.PSM
}

// BuildAttributeResponse encodes a ServiceSearchAttribute response
// carrying the given services.
func BuildAttributeResponse(txn uint16, services []ServiceInfo) PDU {
	var lists []DataElement
	for _, s := range services {
		record := SeqEl(
			Uint16El(AttrServiceRecordHandle), Uint32El(s.Handle),
			Uint16El(AttrProtocolDescriptorList), SeqEl(
				SeqEl(UUID16El(UUIDL2CAP), Uint16El(uint16(s.PSM))),
			),
			Uint16El(AttrServiceName), StringEl(s.Name),
		)
		lists = append(lists, record)
	}
	body := SeqEl(lists...).Marshal(nil)

	params := make([]byte, 2, 2+len(body)+1)
	binary.BigEndian.PutUint16(params[0:2], uint16(len(body)))
	params = append(params, body...)
	params = append(params, 0x00) // no continuation state
	return PDU{ID: PDUServiceSearchAttributeRsp, TxnID: txn, Params: params}
}

// ParseAttributeResponse decodes the services out of a
// ServiceSearchAttribute response.
func ParseAttributeResponse(p PDU) ([]ServiceInfo, error) {
	if p.ID != PDUServiceSearchAttributeRsp {
		return nil, fmt.Errorf("%w: got 0x%02X", ErrWrongPDU, uint8(p.ID))
	}
	if len(p.Params) < 3 {
		return nil, fmt.Errorf("%w: %d parameter bytes", ErrShortPDU, len(p.Params))
	}
	byteCount := int(binary.BigEndian.Uint16(p.Params[0:2]))
	if len(p.Params) < 2+byteCount {
		return nil, fmt.Errorf("%w: attribute bytes truncated", ErrPDULength)
	}
	root, _, err := UnmarshalElement(p.Params[2 : 2+byteCount])
	if err != nil {
		return nil, fmt.Errorf("attribute list: %w", err)
	}
	var out []ServiceInfo
	for _, rec := range root.Seq {
		info, err := parseRecord(rec)
		if err != nil {
			return nil, err
		}
		out = append(out, info)
	}
	return out, nil
}

func parseRecord(rec DataElement) (ServiceInfo, error) {
	if rec.Type != TypeSequence || len(rec.Seq)%2 != 0 {
		return ServiceInfo{}, fmt.Errorf("%w: record is not an attribute sequence", ErrBadDescriptor)
	}
	var info ServiceInfo
	for i := 0; i+1 < len(rec.Seq); i += 2 {
		id := uint16(rec.Seq[i].Uint)
		val := rec.Seq[i+1]
		switch id {
		case AttrServiceRecordHandle:
			info.Handle = uint32(val.Uint)
		case AttrServiceName:
			info.Name = string(val.Bytes)
		case AttrProtocolDescriptorList:
			// Sequence of (protocol UUID, parameter...) sequences; find the
			// L2CAP entry and read its PSM parameter.
			for _, proto := range val.Seq {
				if proto.Type == TypeSequence && len(proto.Seq) >= 2 &&
					proto.Seq[0].Type == TypeUUID && uint16(proto.Seq[0].Uint) == UUIDL2CAP {
					info.PSM = l2cap.PSM(proto.Seq[1].Uint)
				}
			}
		}
	}
	return info, nil
}

// Server answers SDP requests from a device's service records. The zero
// value answers with an empty service list.
type Server struct {
	services []ServiceInfo
	defect   *ServerDefect
	crashed  bool
}

// NewServer builds a server over the given services. The slice is copied.
func NewServer(services []ServiceInfo) *Server {
	return &Server{services: append([]ServiceInfo(nil), services...)}
}

// NewDefectiveServer builds a server carrying an injected parser defect.
// A nil defect gives the same robust server NewServer builds.
func NewDefectiveServer(services []ServiceInfo, defect *ServerDefect) *Server {
	s := NewServer(services)
	s.defect = defect
	return s
}

// Crashed reports whether an injected defect has killed the server.
func (s *Server) Crashed() bool { return s.crashed }

// Handle processes one raw request PDU and returns the raw response.
// Malformed or unsupported requests get an error response, as a real SDP
// server would produce. A request that trips the injected defect kills
// the server mid-parse: it returns nil — no response at all — and every
// later request is swallowed the same way.
func (s *Server) Handle(raw []byte) []byte {
	if s.crashed {
		return nil
	}
	if s.defect.Matches(raw) {
		s.crashed = true
		return nil
	}
	pdu, err := UnmarshalPDU(raw)
	if err != nil {
		return PDU{ID: PDUErrorRsp, TxnID: 0, Params: []byte{0x00, 0x03}}.Marshal()
	}
	if pdu.ID != PDUServiceSearchAttributeReq {
		return PDU{ID: PDUErrorRsp, TxnID: pdu.TxnID, Params: []byte{0x00, 0x03}}.Marshal()
	}
	return BuildAttributeResponse(pdu.TxnID, s.services).Marshal()
}
