package sdp

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ElementType is the 5-bit data-element type descriptor.
type ElementType uint8

// Data-element types (Vol 3 Part B §3.2).
const (
	// TypeNil is the null type.
	TypeNil ElementType = 0
	// TypeUint is an unsigned integer.
	TypeUint ElementType = 1
	// TypeUUID is a UUID.
	TypeUUID ElementType = 3
	// TypeString is a text string.
	TypeString ElementType = 4
	// TypeSequence is a data-element sequence.
	TypeSequence ElementType = 6
)

// DataElement is one decoded SDP data element.
type DataElement struct {
	// Type is the element type.
	Type ElementType
	// Uint holds the value for TypeUint and TypeUUID elements.
	Uint uint64
	// Bytes holds the value for TypeString elements.
	Bytes []byte
	// Seq holds the children for TypeSequence elements.
	Seq []DataElement
}

// Decode errors.
var (
	// ErrTruncated indicates the buffer ended inside an element.
	ErrTruncated = errors.New("sdp: truncated data element")
	// ErrBadDescriptor indicates an unsupported type/size descriptor.
	ErrBadDescriptor = errors.New("sdp: unsupported element descriptor")
)

// Uint8El builds an 8-bit unsigned element.
func Uint8El(v uint8) DataElement { return DataElement{Type: TypeUint, Uint: uint64(v)} }

// Uint16El builds a 16-bit unsigned element.
func Uint16El(v uint16) DataElement {
	return DataElement{Type: TypeUint, Uint: uint64(v), Bytes: []byte{2}}
}

// Uint32El builds a 32-bit unsigned element.
func Uint32El(v uint32) DataElement {
	return DataElement{Type: TypeUint, Uint: uint64(v), Bytes: []byte{4}}
}

// UUID16El builds a 16-bit UUID element.
func UUID16El(v uint16) DataElement {
	return DataElement{Type: TypeUUID, Uint: uint64(v), Bytes: []byte{2}}
}

// StringEl builds a string element.
func StringEl(s string) DataElement {
	return DataElement{Type: TypeString, Bytes: []byte(s)}
}

// SeqEl builds a sequence element.
func SeqEl(children ...DataElement) DataElement {
	return DataElement{Type: TypeSequence, Seq: children}
}

// width returns the declared byte width for integer-like elements,
// defaulting sensibly when the hint byte is absent.
func (e DataElement) width() int {
	if len(e.Bytes) == 1 {
		switch e.Bytes[0] {
		case 1, 2, 4, 8:
			return int(e.Bytes[0])
		}
	}
	switch {
	case e.Uint > 0xFFFFFFFF:
		return 8
	case e.Uint > 0xFFFF:
		return 4
	case e.Uint > 0xFF:
		return 2
	default:
		return 1
	}
}

// Marshal appends the wire form of the element to dst.
//
// SDP data elements are big-endian, unlike the L2CAP layers below.
func (e DataElement) Marshal(dst []byte) []byte {
	switch e.Type {
	case TypeNil:
		return append(dst, 0x00)
	case TypeUint, TypeUUID:
		w := e.width()
		sizeIdx := map[int]uint8{1: 0, 2: 1, 4: 2, 8: 3}[w]
		dst = append(dst, uint8(e.Type)<<3|sizeIdx)
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], e.Uint)
		return append(dst, buf[8-w:]...)
	case TypeString:
		// size index 5: 8-bit length prefix.
		dst = append(dst, uint8(e.Type)<<3|5, uint8(len(e.Bytes)))
		return append(dst, e.Bytes...)
	case TypeSequence:
		var body []byte
		for _, c := range e.Seq {
			body = c.Marshal(body)
		}
		// size index 6: 16-bit length prefix.
		dst = append(dst, uint8(e.Type)<<3|6)
		var l [2]byte
		binary.BigEndian.PutUint16(l[:], uint16(len(body)))
		dst = append(dst, l[:]...)
		return append(dst, body...)
	default:
		// Encode unknown types as nil to keep Marshal total.
		return append(dst, 0x00)
	}
}

// UnmarshalElement decodes one element from buf, returning it and the
// number of bytes consumed.
func UnmarshalElement(buf []byte) (DataElement, int, error) {
	if len(buf) == 0 {
		return DataElement{}, 0, ErrTruncated
	}
	desc := buf[0]
	typ := ElementType(desc >> 3)
	sizeIdx := desc & 0x07
	off := 1

	// Resolve the payload length.
	var n int
	switch sizeIdx {
	case 0, 1, 2, 3, 4:
		n = 1 << sizeIdx
		if typ == TypeNil {
			n = 0
		}
	case 5:
		if len(buf) < off+1 {
			return DataElement{}, 0, ErrTruncated
		}
		n = int(buf[off])
		off++
	case 6:
		if len(buf) < off+2 {
			return DataElement{}, 0, ErrTruncated
		}
		n = int(binary.BigEndian.Uint16(buf[off : off+2]))
		off += 2
	default:
		return DataElement{}, 0, fmt.Errorf("%w: size index %d", ErrBadDescriptor, sizeIdx)
	}
	if len(buf) < off+n {
		return DataElement{}, 0, fmt.Errorf("%w: want %d payload bytes, have %d",
			ErrTruncated, n, len(buf)-off)
	}
	payload := buf[off : off+n]

	el := DataElement{Type: typ}
	switch typ {
	case TypeNil:
	case TypeUint, TypeUUID:
		if n > 8 {
			return DataElement{}, 0, fmt.Errorf("%w: %d-byte integer", ErrBadDescriptor, n)
		}
		var buf8 [8]byte
		copy(buf8[8-n:], payload)
		el.Uint = binary.BigEndian.Uint64(buf8[:])
		el.Bytes = []byte{uint8(n)}
	case TypeString:
		el.Bytes = append([]byte(nil), payload...)
	case TypeSequence:
		rest := payload
		for len(rest) > 0 {
			child, used, err := UnmarshalElement(rest)
			if err != nil {
				return DataElement{}, 0, fmt.Errorf("sequence child: %w", err)
			}
			el.Seq = append(el.Seq, child)
			rest = rest[used:]
		}
	default:
		return DataElement{}, 0, fmt.Errorf("%w: type %d", ErrBadDescriptor, typ)
	}
	return el, off + n, nil
}
