package sdp

import "encoding/binary"

// ServerDefectKind names an SDP-server defect predicate family.
type ServerDefectKind string

// ServerDefectOverread is the declared-length parser-overread family: a
// request whose header declares more parameter bytes than the PDU
// carries makes the parser read past the end of its receive buffer.
const ServerDefectOverread ServerDefectKind = "declared-length-overread"

// ServerDefect models an implementation flaw in an SDP server's request
// parser as a declarative predicate over one raw request PDU: when it
// matches, parsing the request kills the server. A defect fires before
// any response is built — the server died mid-parse — so a triggered
// request gets no answer at all, not an error response. Like
// device.TriggerSpec it is pure data, so device configurations carrying
// it serialize and compare by value. A nil *ServerDefect is a robust
// server.
type ServerDefect struct {
	// Kind selects the predicate family.
	Kind ServerDefectKind `json:"kind"`
}

// Matches evaluates the defect predicate against one raw request PDU.
// Safe on a nil receiver, which matches nothing.
func (d *ServerDefect) Matches(raw []byte) bool {
	if d == nil {
		return false
	}
	switch d.Kind {
	case ServerDefectOverread:
		if len(raw) < pduHeaderSize {
			// Shorter than a header: the parser bails before reading the
			// declared length.
			return false
		}
		declared := int(binary.BigEndian.Uint16(raw[3:5]))
		return declared > len(raw)-pduHeaderSize
	}
	return false
}

// OverreadDefect returns the classic declared-length parser overread. A
// well-formed PDU — any length, any PDU ID, including the truncated and
// garbage requests a robust server rejects with an error response —
// never triggers it, so ordinary service discovery traffic is safe.
func OverreadDefect() *ServerDefect {
	return &ServerDefect{Kind: ServerDefectOverread}
}
