package sdp

import "encoding/binary"

// ServerDefect models an implementation flaw in an SDP server's request
// parser: it inspects one raw request PDU and reports whether parsing
// it kills the server. A defect fires before any response is built —
// the server died mid-parse — so a triggered request gets no answer at
// all, not an error response.
type ServerDefect func(raw []byte) bool

// OverreadDefect models the classic declared-length parser overread: a
// request whose header declares more parameter bytes than the PDU
// carries makes the parser read past the end of its receive buffer. A
// well-formed PDU — any length, any PDU ID, including the truncated and
// garbage requests a robust server rejects with an error response —
// never triggers it, so ordinary service discovery traffic is safe.
func OverreadDefect() ServerDefect {
	return func(raw []byte) bool {
		if len(raw) < pduHeaderSize {
			// Shorter than a header: the parser bails before reading the
			// declared length.
			return false
		}
		declared := int(binary.BigEndian.Uint16(raw[3:5]))
		return declared > len(raw)-pduHeaderSize
	}
}
