// Package sdp implements the subset of the Bluetooth Service Discovery
// Protocol that L2Fuzz's target-scanning phase depends on: enumerating
// the service ports (PSMs) a device exposes, over the pairing-free SDP
// channel (PSM 0x0001).
//
// The implementation is faithful where it matters for the reproduction:
//
//   - real data-element encoding (type/size descriptor bytes, unsigned
//     integers, UUIDs, strings and sequences — Vol 3 Part B §3),
//   - the ServiceSearchAttribute transaction (PDU IDs 0x06/0x07) with the
//     standard PDU header (ID, transaction ID, parameter length),
//   - service records carrying ServiceRecordHandle, ServiceClassIDList,
//     ProtocolDescriptorList (where the L2CAP PSM lives) and ServiceName.
//
// Continuation states and the other PDU types are omitted: responses in
// the simulation always fit one L2CAP SDU, and the scanner only ever
// issues the one transaction the paper's workflow needs.
package sdp
