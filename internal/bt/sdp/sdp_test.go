package sdp

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"l2fuzz/internal/bt/l2cap"
)

func TestDataElementRoundTrips(t *testing.T) {
	tests := []struct {
		name string
		el   DataElement
	}{
		{"nil", DataElement{Type: TypeNil}},
		{"uint8", Uint8El(0x7F)},
		{"uint16", Uint16El(0x1234)},
		{"uint32", Uint32El(0xDEADBEEF)},
		{"uuid16", UUID16El(0x0100)},
		{"string", StringEl("Service Discovery")},
		{"empty string", StringEl("")},
		{"flat sequence", SeqEl(Uint16El(1), Uint16El(2))},
		{"nested sequence", SeqEl(SeqEl(UUID16El(UUIDL2CAP), Uint16El(25)), StringEl("AVDTP"))},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			wire := tt.el.Marshal(nil)
			out, used, err := UnmarshalElement(wire)
			if err != nil {
				t.Fatalf("UnmarshalElement() error = %v", err)
			}
			if used != len(wire) {
				t.Errorf("consumed %d of %d bytes", used, len(wire))
			}
			if out.Type != tt.el.Type {
				t.Errorf("type = %d, want %d", out.Type, tt.el.Type)
			}
			switch tt.el.Type {
			case TypeUint, TypeUUID:
				if out.Uint != tt.el.Uint {
					t.Errorf("uint = %d, want %d", out.Uint, tt.el.Uint)
				}
			case TypeString:
				if !bytes.Equal(out.Bytes, tt.el.Bytes) {
					t.Errorf("bytes = %q, want %q", out.Bytes, tt.el.Bytes)
				}
			case TypeSequence:
				if len(out.Seq) != len(tt.el.Seq) {
					t.Errorf("children = %d, want %d", len(out.Seq), len(tt.el.Seq))
				}
			}
		})
	}
}

func TestUnmarshalElementErrors(t *testing.T) {
	tests := []struct {
		name string
		buf  []byte
	}{
		{"empty", nil},
		{"truncated uint16", []byte{uint8(TypeUint)<<3 | 1, 0x12}},
		{"truncated string length", []byte{uint8(TypeString)<<3 | 5}},
		{"string overrun", []byte{uint8(TypeString)<<3 | 5, 10, 'a'}},
		{"bad size index", []byte{uint8(TypeUint)<<3 | 7, 0}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, _, err := UnmarshalElement(tt.buf); err == nil {
				t.Fatal("UnmarshalElement() succeeded on malformed input")
			}
		})
	}
}

func TestPDURoundTrip(t *testing.T) {
	in := PDU{ID: PDUServiceSearchAttributeReq, TxnID: 0x1234, Params: []byte{1, 2, 3}}
	out, err := UnmarshalPDU(in.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalPDU() error = %v", err)
	}
	if out.ID != in.ID || out.TxnID != in.TxnID || !bytes.Equal(out.Params, in.Params) {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestUnmarshalPDUErrors(t *testing.T) {
	if _, err := UnmarshalPDU([]byte{1, 2}); !errors.Is(err, ErrShortPDU) {
		t.Errorf("short error = %v, want ErrShortPDU", err)
	}
	bad := PDU{ID: PDUErrorRsp, Params: []byte{1}}.Marshal()
	bad = append(bad, 0xFF) // extra byte breaks declared length
	if _, err := UnmarshalPDU(bad); !errors.Is(err, ErrPDULength) {
		t.Errorf("length error = %v, want ErrPDULength", err)
	}
}

func TestServiceSearchAttributeTransaction(t *testing.T) {
	services := []ServiceInfo{
		{Handle: 0x10000, Name: "Service Discovery", PSM: l2cap.PSMSDP},
		{Handle: 0x10001, Name: "RFCOMM", PSM: l2cap.PSMRFCOMM},
		{Handle: 0x10002, Name: "AVDTP", PSM: l2cap.PSMAVDTP},
	}
	srv := NewServer(services)

	req := NewServiceSearchAttributeReq(0x0042)
	rspRaw := srv.Handle(req.Marshal())
	rsp, err := UnmarshalPDU(rspRaw)
	if err != nil {
		t.Fatalf("UnmarshalPDU(response) error = %v", err)
	}
	if rsp.TxnID != 0x0042 {
		t.Errorf("TxnID = %#x, want 0x0042", rsp.TxnID)
	}
	got, err := ParseAttributeResponse(rsp)
	if err != nil {
		t.Fatalf("ParseAttributeResponse() error = %v", err)
	}
	if len(got) != len(services) {
		t.Fatalf("got %d services, want %d", len(got), len(services))
	}
	for i, s := range services {
		if got[i] != s {
			t.Errorf("service[%d] = %+v, want %+v", i, got[i], s)
		}
	}
}

func TestServerRejectsMalformedAndWrongPDUs(t *testing.T) {
	srv := NewServer(nil)

	rsp, err := UnmarshalPDU(srv.Handle([]byte{0xFF}))
	if err != nil {
		t.Fatalf("error response malformed: %v", err)
	}
	if rsp.ID != PDUErrorRsp {
		t.Errorf("malformed request answered with %v, want error PDU", rsp.ID)
	}

	wrong := PDU{ID: 0x02, TxnID: 9}.Marshal()
	rsp, err = UnmarshalPDU(srv.Handle(wrong))
	if err != nil {
		t.Fatalf("error response malformed: %v", err)
	}
	if rsp.ID != PDUErrorRsp || rsp.TxnID != 9 {
		t.Errorf("wrong-PDU answered with %+v, want error PDU echoing txn", rsp)
	}
}

func TestParseAttributeResponseRejectsWrongType(t *testing.T) {
	if _, err := ParseAttributeResponse(PDU{ID: PDUErrorRsp}); !errors.Is(err, ErrWrongPDU) {
		t.Errorf("error = %v, want ErrWrongPDU", err)
	}
}

func TestEmptyServiceList(t *testing.T) {
	srv := NewServer(nil)
	rsp, err := UnmarshalPDU(srv.Handle(NewServiceSearchAttributeReq(1).Marshal()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseAttributeResponse(rsp)
	if err != nil {
		t.Fatalf("ParseAttributeResponse() error = %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d services, want 0", len(got))
	}
}

// Property: UnmarshalElement never panics and consumed never exceeds the
// buffer.
func TestQuickUnmarshalElementTotal(t *testing.T) {
	f := func(buf []byte) bool {
		_, used, err := UnmarshalElement(buf)
		if err != nil {
			return true
		}
		return used > 0 && used <= len(buf)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// Property: the server is total — any byte string gets some well-formed
// PDU response.
func TestQuickServerTotal(t *testing.T) {
	srv := NewServer([]ServiceInfo{{Handle: 1, Name: "x", PSM: 0x0001}})
	f := func(raw []byte) bool {
		rsp := srv.Handle(raw)
		_, err := UnmarshalPDU(rsp)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Fatal(err)
	}
}
