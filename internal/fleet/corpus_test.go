package fleet

import (
	"reflect"
	"testing"

	"l2fuzz/internal/bt/device"
	"l2fuzz/internal/bt/l2cap"
	"l2fuzz/internal/bt/radio"
	"l2fuzz/internal/core"
	"l2fuzz/internal/corpus"
)

// corpusMatrix is a multi-job matrix in which two cells (the RFCOMM
// shards) contribute the same finding signature, so the canonical-trace
// selection has something to race on.
func corpusMatrix(workers int, store *corpus.Store) Config {
	return Config{
		Devices:          []string{"D5"},
		Kinds:            []Kind{KindL2Fuzz, KindRFCOMM},
		Shards:           2,
		BaseSeed:         7,
		Workers:          workers,
		MaxPacketsPerJob: 20_000,
		Corpus:           store,
	}
}

// TestCorpusFarmSchedulingIndependence extends the farm's determinism
// guarantee to corpus-backed runs: the report (Known flags, corpus
// stats, recorded traces riding in the findings) and the persisted
// store content must not depend on worker scheduling.
func TestCorpusFarmSchedulingIndependence(t *testing.T) {
	run := func(workers int) (*Report, []corpus.Entry) {
		store, err := corpus.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(corpusMatrix(workers, store))
		if err != nil {
			t.Fatal(err)
		}
		entries, err := store.Entries()
		if err != nil {
			t.Fatal(err)
		}
		return rep, entries
	}
	serialRep, serialEntries := run(1)
	parallelRep, parallelEntries := run(8)

	if len(serialRep.Findings) == 0 {
		t.Fatal("matrix produced no findings; the comparison would be vacuous")
	}
	if serialRep.Corpus == nil || serialRep.Corpus.Saved != len(serialEntries) {
		t.Fatalf("corpus stats %+v disagree with %d stored entries", serialRep.Corpus, len(serialEntries))
	}
	serialRep.ScrubWall()
	parallelRep.ScrubWall()
	serialRep.Workers, parallelRep.Workers = 0, 0
	if !reflect.DeepEqual(serialRep, parallelRep) {
		t.Errorf("corpus-backed reports differ between worker counts:\nserial:   %+v\nparallel: %+v",
			serialRep, parallelRep)
	}
	if !reflect.DeepEqual(serialEntries, parallelEntries) {
		t.Errorf("persisted corpus content differs between worker counts")
	}
	for _, e := range serialEntries {
		if !e.Trace.Replayable() {
			t.Errorf("stored entry %v is not replayable", e.Signature)
		}
		if e.Finding.Trace != nil {
			t.Errorf("stored entry %v duplicates the trace inside the finding", e.Signature)
		}
	}
}

// TestVariantRaisedBudgetDoesNotTruncateTrace is the regression test
// for sizing the trace recorder before variant hooks run: a Core hook
// may raise a job's packet cap far past the matrix budget, and a
// finding landing beyond the pre-resolution estimate must still record
// a complete, persistable trace. The target's defect fires only after
// more commands than the unresolved budget's trace limit would hold.
func TestVariantRaisedBudgetDoesNotTruncateTrace(t *testing.T) {
	const fireAfter = 10_000
	spec := device.Spec{
		Name: "slow-burn",
		Config: device.Config{
			Addr: radio.MustBDAddr("02:EE:40:00:00:01"),
			Name: "Slow Burn",
			Profile: device.BlueDroidProfile("5.1", "vendor/slowburn:13/TQ3A/1:user/release-keys",
				device.VulnSpec{
					ID:          "test-slow-burn",
					Description: "fires only deep into the run",
					Class:       device.ClassDoS,
					Dump:        device.DumpTombstone,
					FaultFunc:   "l2c_csm_execute(test)",
					// The command-flood trigger places the crash at a
					// command depth past the pre-resolution trace limit.
					Trigger: device.TriggerSpec{
						Kind:        device.TriggerCommandFlood,
						MinCommands: fireAfter,
					},
				}),
			Ports: []device.ServicePort{
				{PSM: l2cap.PSMSDP, Name: "Service Discovery"},
				{PSM: l2cap.PSMDynamicFirst, Name: "vendor-service"},
			},
		},
		ExpectVuln:  true,
		ExpectClass: device.ClassDoS,
	}
	store, err := corpus.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Config{
		CustomDevices: []device.Spec{spec},
		Variants: []Variant{{
			Name: "deep",
			Core: func(c *core.Config) { c.MaxPackets = 20 * fireAfter },
		}},
		BaseSeed: 3,
		Workers:  1,
		// Small matrix budget: the pre-resolution trace-limit estimate
		// from this cannot hold a finding at fireAfter commands.
		MaxPacketsPerJob: 1_000,
		Corpus:           store,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 1 {
		t.Fatalf("findings = %+v, want the deep finding", rep.Findings)
	}
	if rep.Corpus.Saved != 1 || len(rep.Corpus.Errors) != 0 {
		t.Fatalf("corpus stats = %+v, want the deep finding's trace saved", rep.Corpus)
	}
	entry, err := store.Get(rep.Findings[0].Signature)
	if err != nil {
		t.Fatal(err)
	}
	if !entry.Trace.Replayable() {
		t.Fatalf("stored trace truncated=%v ops=%d, want a complete trace", entry.Trace.Truncated, len(entry.Trace.Ops))
	}
	if len(entry.Trace.Ops) <= traceLimit(1_000) {
		t.Fatalf("trace has %d ops, within the pre-resolution limit %d — the test no longer exercises the raise",
			len(entry.Trace.Ops), traceLimit(1_000))
	}
}

// TestCustomTargetEntryIsSelfContained pins the PR 6 corpus follow-up:
// a finding recorded against a JSON-defined custom target embeds the
// target's spec in its corpus entry, and Replay with an empty config —
// no explicit spec — rebuilds the rig from that embedding and
// reproduces the crash. Catalog-target entries stay spec-less.
func TestCustomTargetEntryIsSelfContained(t *testing.T) {
	spec, err := device.DecodeSpec([]byte(`{
	  "name": "field-unit",
	  "addr": "02:EE:40:00:00:07",
	  "profile": {"stack": "bluedroid", "btVersion": "5.0"},
	  "ports": [
	    {"psm": 1, "name": "Service Discovery"},
	    {"psm": 3, "name": "RFCOMM"},
	    {"psm": 4097, "name": "vendor-control"}
	  ],
	  "defects": ["ccb-null-deref"]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	store, err := corpus.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Config{
		Devices:          []string{"D2"},
		CustomDevices:    []device.Spec{spec},
		Kinds:            []Kind{KindL2Fuzz},
		BaseSeed:         7,
		Workers:          2,
		MaxPacketsPerJob: 20_000,
		Corpus:           store,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PerDevice["field-unit"] == nil || rep.PerDevice["field-unit"].Findings == 0 {
		t.Fatal("custom target produced no findings; the embedding would be unexercised")
	}

	entries, err := store.Entries()
	if err != nil {
		t.Fatal(err)
	}
	var replayedCustom bool
	for _, e := range entries {
		switch e.Trace.Target {
		case "field-unit":
			if len(e.Spec) == 0 {
				t.Fatalf("custom-target entry %v embeds no spec", e.Signature)
			}
			res, err := corpus.Replay(e, corpus.ReplayConfig{})
			if err != nil {
				t.Fatalf("spec-less replay of custom-target entry %v: %v", e.Signature, err)
			}
			if !res.Reproduced {
				t.Errorf("embedded-spec replay of %v did not reproduce: %+v", e.Signature, res)
			}
			replayedCustom = true
		case "D2":
			if len(e.Spec) != 0 {
				t.Errorf("catalog-target entry %v embeds a spec: %s", e.Signature, e.Spec)
			}
		}
	}
	if !replayedCustom {
		t.Fatal("no custom-target entry was persisted")
	}
}

// TestCorpuslessFarmRecordsNoTraces pins the zero-cost default: without
// a store no recorder is attached, findings carry no traces, and the
// report has no corpus section — so pre-corpus reports stay
// byte-identical (the catalog golden test covers the rendering).
func TestCorpuslessFarmRecordsNoTraces(t *testing.T) {
	rep, err := Run(Config{
		Devices:          []string{"D5"},
		Kinds:            []Kind{KindRFCOMM},
		BaseSeed:         7,
		Workers:          2,
		MaxPacketsPerJob: 20_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corpus != nil {
		t.Errorf("store-less farm carries corpus stats: %+v", rep.Corpus)
	}
	for _, f := range rep.Findings {
		if f.Known || f.Finding.Trace != nil {
			t.Errorf("store-less farm finding carries corpus state: %+v", f)
		}
	}
}
