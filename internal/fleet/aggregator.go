package fleet

import (
	"math"
	"sort"
	"sync"
	"time"

	"l2fuzz/internal/bt/device"
	"l2fuzz/internal/corpus"
	"l2fuzz/internal/metrics"
)

// Aggregator folds JobResults into farm-wide state as they arrive and
// can snapshot a full Report at any moment. It is safe for concurrent
// use, and — because every fold is commutative and Snapshot orders its
// output by matrix position, never by arrival — the snapshot after all
// jobs are folded is identical no matter how the scheduler interleaved
// the workers. The batch Run path and the streaming Farm path both
// aggregate through it, so the two cannot disagree.
type Aggregator struct {
	mu      sync.Mutex
	cfg     Config
	results []JobResult // dense, indexed by Job.Index
	folded  []bool

	completed, failed int
	totalPackets      int
	totalSim          time.Duration
	totalJobWall      time.Duration
	perDevice         map[string]*GroupStats
	perKind           map[Kind]*GroupStats
	perVariant        map[string]*VariantStats
	recs              map[Signature]*findingAcc
	metrics           metrics.Summary
	corpusErrs        []string
}

// findingAcc is one de-duplicated finding under accumulation, with the
// provenance needed to keep Snapshot arrival-order independent.
type findingAcc struct {
	rec FindingRecord
	// minIdx/occPos locate the canonical first occurrence: the lowest
	// contributing job index, tie-broken by position within that job's
	// finding list. Snapshot orders records by them.
	minIdx, occPos int
	// dumpIdx is the job index rec.Dump came from; math.MaxInt when the
	// record has no dump yet.
	dumpIdx int
	// entryIdx is the job index whose repro trace is persisted in the
	// corpus store; math.MaxInt when none is (no store, a Known
	// signature, or no job contributed a replayable trace yet). Like
	// dumpIdx it only ever decreases, so the stored trace converges on
	// the canonical lowest-index job no matter the fold order.
	entryIdx int
}

// NewAggregator builds an empty aggregator for cfg's job matrix. The
// config is validated and defaulted exactly as Run does.
func NewAggregator(cfg Config) (*Aggregator, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return newAggregator(cfg, len(buildJobs(cfg))), nil
}

// newAggregator builds the aggregator from an already-resolved config
// and its matrix size, so Start does not default the config twice.
func newAggregator(cfg Config, total int) *Aggregator {
	return &Aggregator{
		cfg:        cfg,
		results:    make([]JobResult, total),
		folded:     make([]bool, total),
		perDevice:  make(map[string]*GroupStats),
		perKind:    make(map[Kind]*GroupStats),
		perVariant: make(map[string]*VariantStats),
		recs:       make(map[Signature]*findingAcc),
	}
}

// Add folds one job result and returns the findings whose signatures
// the farm had not seen before this fold (snapshot copies, in the
// order the job listed them). Results whose job index falls outside
// the matrix, or that were already folded, are ignored.
func (a *Aggregator) Add(res JobResult) []FindingRecord {
	a.mu.Lock()
	defer a.mu.Unlock()

	idx := res.Job.Index
	if idx < 0 || idx >= len(a.results) || a.folded[idx] {
		return nil
	}
	a.folded[idx] = true
	a.results[idx] = res

	dev := a.perDevice[res.Job.Device]
	if dev == nil {
		dev = &GroupStats{}
		a.perDevice[res.Job.Device] = dev
	}
	kg := a.perKind[res.Job.Kind]
	if kg == nil {
		kg = &GroupStats{}
		a.perKind[res.Job.Kind] = kg
	}
	vg := a.perVariant[res.Job.Variant]
	if vg == nil {
		vg = &VariantStats{}
		a.perVariant[res.Job.Variant] = vg
	}
	dev.Jobs++
	kg.Jobs++
	vg.Jobs++
	// Wall folds before the error check: failed jobs consumed worker
	// time too.
	dev.Wall += res.Wall
	kg.Wall += res.Wall
	vg.Wall += res.Wall
	a.totalJobWall += res.Wall
	if res.Err != nil {
		a.failed++
		dev.Failed++
		kg.Failed++
		vg.Failed++
		return nil
	}
	a.completed++
	a.totalPackets += res.PacketsSent
	a.totalSim += res.Elapsed
	dev.Packets += res.PacketsSent
	kg.Packets += res.PacketsSent
	vg.Packets += res.PacketsSent
	if res.Crashed {
		dev.Crashes++
		kg.Crashes++
		vg.Crashes++
	}
	a.metrics = a.metrics.Merge(res.Summary)
	vg.Metrics = vg.Metrics.Merge(res.Summary)

	var fresh []FindingRecord
	for pos, occ := range res.Findings {
		dev.Findings += occ.Count
		kg.Findings += occ.Count
		vg.Findings += occ.Count
		sig := occ.Finding.Signature()
		acc, seen := a.recs[sig]
		if !seen {
			acc = &findingAcc{
				rec:      FindingRecord{Signature: sig, Finding: occ.Finding},
				minIdx:   idx,
				occPos:   pos,
				dumpIdx:  math.MaxInt,
				entryIdx: math.MaxInt,
			}
			// Cross-run de-duplication: a signature the store held
			// before this fold is yesterday's finding reproduced, not a
			// new one. The check happens once, at first sight — entries
			// this run writes never turn its own findings Known.
			acc.rec.Known = a.cfg.Corpus != nil && a.cfg.Corpus.Has(sig)
			a.recs[sig] = acc
		} else if idx < acc.minIdx {
			// An earlier matrix cell contributed the signature: its
			// occurrence is the canonical first one.
			acc.rec.Finding = occ.Finding
			acc.minIdx, acc.occPos = idx, pos
		}
		acc.rec.Count += occ.Count
		acc.rec.Devices = addDevice(acc.rec.Devices, res.Job.Device)
		acc.rec.Kinds = addKind(acc.rec.Kinds, res.Job.Kind)
		if occ.Dump != "" && idx < acc.dumpIdx {
			acc.rec.Dump = occ.Dump
			acc.dumpIdx = idx
		}
		a.persist(acc, res.Job, occ, idx)
		if !seen && !acc.rec.Known {
			fresh = append(fresh, cloneRecord(acc.rec))
		}
	}
	return fresh
}

// persist writes a new finding's repro trace to the corpus store. Like
// the dump, the stored trace converges on the lowest job index that
// contributed a replayable one, so the store's content is independent
// of worker scheduling; Known signatures are never overwritten.
func (a *Aggregator) persist(acc *findingAcc, job Job, occ Occurrence, idx int) {
	if a.cfg.Corpus == nil || acc.rec.Known || idx >= acc.entryIdx {
		return
	}
	trace := corpus.Trace{
		Seed:      job.Seed,
		Target:    job.Device,
		State:     occ.Finding.State,
		PSM:       occ.Finding.PSM,
		Ops:       occ.Finding.Trace,
		Truncated: occ.Finding.TraceTruncated,
	}
	if !trace.Replayable() {
		return
	}
	entry := corpus.Entry{
		Signature: acc.rec.Signature,
		Kind:      string(job.Kind),
		Finding:   occ.Finding,
		Trace:     trace,
	}
	// Custom targets embed their spec so the entry replays without the
	// caller re-supplying it. Best-effort: specs the encoder cannot
	// represent (hand-built closures, non-catalog calibrations) leave
	// the entry spec-less, exactly as before.
	if !device.IsCatalogID(job.Device) && job.Spec != nil {
		if data, err := device.EncodeSpec(*job.Spec); err == nil {
			entry.Spec = data
		}
	}
	err := a.cfg.Corpus.Put(entry)
	if err != nil {
		a.corpusErrs = append(a.corpusErrs, err.Error())
		return
	}
	acc.entryIdx = idx
}

// Snapshot renders the aggregate as a full Report at this moment.
// Pending jobs are simply absent from Jobs and the counters; once every
// job is folded, the snapshot is the farm's final report. The caller
// owns the result — later folds do not mutate it. Wall is left zero for
// the caller to stamp.
func (a *Aggregator) Snapshot() *Report {
	a.mu.Lock()
	defer a.mu.Unlock()

	rep := &Report{
		Completed:    a.completed,
		Failed:       a.failed,
		TotalPackets: a.totalPackets,
		TotalSimTime: a.totalSim,
		TotalJobWall: a.totalJobWall,
		Workers:      a.cfg.Workers,
		PerDevice:    make(map[string]*GroupStats, len(a.perDevice)),
		PerKind:      make(map[Kind]*GroupStats, len(a.perKind)),
		PerVariant:   make(map[string]*VariantStats, len(a.perVariant)),
		Metrics:      a.metrics,
	}
	for _, v := range a.cfg.Variants {
		rep.Variants = append(rep.Variants, v.Name)
	}
	for i, res := range a.results {
		if a.folded[i] {
			rep.Jobs = append(rep.Jobs, res)
		}
	}
	for id, g := range a.perDevice {
		c := *g
		rep.PerDevice[id] = &c
	}
	for k, g := range a.perKind {
		c := *g
		rep.PerKind[k] = &c
	}
	for name, g := range a.perVariant {
		c := *g
		c.Metrics.States = append([]string(nil), g.Metrics.States...)
		rep.PerVariant[name] = &c
	}

	accs := make([]*findingAcc, 0, len(a.recs))
	for _, acc := range a.recs {
		accs = append(accs, acc)
	}
	sort.Slice(accs, func(i, j int) bool {
		if accs[i].minIdx != accs[j].minIdx {
			return accs[i].minIdx < accs[j].minIdx
		}
		return accs[i].occPos < accs[j].occPos
	})
	for _, acc := range accs {
		rep.Findings = append(rep.Findings, cloneRecord(acc.rec))
	}
	if a.cfg.Corpus != nil {
		cs := &CorpusStats{Errors: append([]string(nil), a.corpusErrs...)}
		sort.Strings(cs.Errors)
		for _, acc := range a.recs {
			switch {
			case acc.rec.Known:
				cs.Known++
			case acc.entryIdx != math.MaxInt:
				cs.Saved++
			}
		}
		rep.Corpus = cs
	}

	rep.Metrics.States = append([]string(nil), a.metrics.States...)
	rep.StateCoverage = append([]string(nil), a.metrics.States...)
	return rep
}

// cloneRecord deep-copies a finding record so snapshots and events do
// not alias the accumulator's slices.
func cloneRecord(rec FindingRecord) FindingRecord {
	rec.Devices = append([]string(nil), rec.Devices...)
	rec.Kinds = append([]Kind(nil), rec.Kinds...)
	return rec
}
