package fleet

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"l2fuzz/internal/bt/device"
	"l2fuzz/internal/bt/l2cap"
	"l2fuzz/internal/bt/sm"
)

// fullMatrix is a three-device × all-kinds × two-shard matrix used by
// the scheduling-independence tests: it exercises every job kind,
// includes devices that do and do not yield findings, and is small
// enough to run twice.
func fullMatrix(workers int) Config {
	return Config{
		Devices:          []string{"D2", "D4", "D5"},
		Kinds:            AllKinds(),
		Shards:           2,
		BaseSeed:         7,
		Workers:          workers,
		MaxPacketsPerJob: 20_000,
		CampaignRuns:     2,
	}
}

// TestDeterminismAcrossWorkerCounts is acceptance criterion (a): the
// same job matrix run serially and on an eight-worker pool must yield
// identical per-job results and identical de-duplicated finding sets —
// per-job determinism must survive concurrency.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	serial, err := Run(fullMatrix(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(fullMatrix(8))
	if err != nil {
		t.Fatal(err)
	}

	if len(serial.Findings) == 0 {
		t.Fatal("matrix produced no findings; the comparison would be vacuous")
	}
	// Real per-job wall time is legitimately scheduling-dependent;
	// everything else must match.
	serial.ScrubWall()
	parallel.ScrubWall()
	if !reflect.DeepEqual(serial.Findings, parallel.Findings) {
		t.Errorf("de-duplicated finding sets differ:\nserial:   %+v\nparallel: %+v",
			serial.Findings, parallel.Findings)
	}
	if !reflect.DeepEqual(serial.Jobs, parallel.Jobs) {
		for i := range serial.Jobs {
			if !reflect.DeepEqual(serial.Jobs[i], parallel.Jobs[i]) {
				t.Errorf("job %v differs between worker counts:\nserial:   %+v\nparallel: %+v",
					serial.Jobs[i].Job, serial.Jobs[i], parallel.Jobs[i])
			}
		}
	}
	// The whole report, not just the jobs, must be scheduling-
	// independent (wall time and pool size aside).
	serial.Workers, parallel.Workers = 0, 0
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("aggregated reports differ between worker counts")
	}
}

// TestEightDeviceSweep is acceptance criterion (b): one farm run over
// the whole Table V testbed with L2Fuzz must surface findings on every
// defect-armed catalog device in a single Report.
func TestEightDeviceSweep(t *testing.T) {
	rep, err := Run(Config{
		BaseSeed:         7,
		Workers:          8,
		MaxPacketsPerJob: 1_000_000,
		// The paper never reports how long it fuzzed the robust devices;
		// cap them so the sweep spends its budget on the armed ones.
		Budgets: map[string]int{"D4": 100_000, "D6": 100_000, "D7": 100_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("%d jobs failed: %+v", rep.Failed, rep.Jobs)
	}
	if len(rep.Jobs) != 8 {
		t.Fatalf("sweep scheduled %d jobs, want 8", len(rep.Jobs))
	}
	for _, entry := range device.Catalog(false) {
		found := len(rep.FindingsOn(entry.ID)) > 0
		if entry.ExpectVuln && !found {
			t.Errorf("%s is defect-armed but the sweep surfaced no finding on it", entry.ID)
		}
		if !entry.ExpectVuln && found {
			t.Errorf("%s is robust but the sweep reports findings %+v", entry.ID, rep.FindingsOn(entry.ID))
		}
		if entry.ExpectVuln && rep.PerDevice[entry.ID].Crashes == 0 {
			t.Errorf("%s found but not recorded as crashed", entry.ID)
		}
	}
	if rep.TotalPackets == 0 || rep.TotalSimTime == 0 {
		t.Error("farm aggregates not recorded")
	}
	if rep.Metrics.Transmitted == 0 || rep.Metrics.StatesCovered == 0 {
		t.Errorf("merged metrics empty: %+v", rep.Metrics)
	}
	if rep.Metrics.StatesCovered != len(rep.StateCoverage) {
		t.Errorf("StatesCovered %d != |StateCoverage| %d", rep.Metrics.StatesCovered, len(rep.StateCoverage))
	}
	if rep.Render() == "" {
		t.Error("empty rendering")
	}
}

// TestRFCOMMKindMapsIntoSignatureSpace checks the §V extension jobs
// land in the shared (state, PSM, class) signature space: a mux death
// on the defect-armed D5 variant is an Open-state RFCOMM-port finding.
func TestRFCOMMKindMapsIntoSignatureSpace(t *testing.T) {
	rep, err := Run(Config{
		Devices:          []string{"D5"},
		Kinds:            []Kind{KindRFCOMM},
		BaseSeed:         7,
		Workers:          2,
		MaxPacketsPerJob: 20_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 1 {
		t.Fatalf("findings = %+v, want exactly one", rep.Findings)
	}
	sig := rep.Findings[0].Signature
	if sig.State != sm.StateOpen || sig.PSM != l2cap.PSMRFCOMM {
		t.Errorf("signature = %v, want an Open-state finding on the RFCOMM port", sig)
	}
}

// TestMeasurementGradeSweepIsQuiet checks the metrics-only farm mode:
// with defects disabled nothing crashes and nothing is found, but the
// merged trace metrics are still produced.
func TestMeasurementGradeSweepIsQuiet(t *testing.T) {
	rep, err := Run(Config{
		Devices:          []string{"D2", "D5"},
		Kinds:            []Kind{KindL2Fuzz, KindRFCOMM},
		BaseSeed:         7,
		Workers:          4,
		MaxPacketsPerJob: 15_000,
		MeasurementGrade: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 0 {
		t.Errorf("measurement-grade farm reports findings: %+v", rep.Findings)
	}
	for id, g := range rep.PerDevice {
		if g.Crashes != 0 {
			t.Errorf("%s crashed %d times on a measurement-grade farm", id, g.Crashes)
		}
	}
	if rep.Metrics.Transmitted == 0 || rep.Metrics.MPRatio == 0 {
		t.Errorf("merged metrics not measured: %+v", rep.Metrics)
	}
}

func TestProgressCallback(t *testing.T) {
	var dones []int
	var total int
	cfg := Config{
		Devices:          []string{"D4"},
		Kinds:            []Kind{KindBSS, KindDefensics},
		Shards:           2,
		BaseSeed:         1,
		Workers:          4,
		MaxPacketsPerJob: 2_000,
		OnJobDone: func(res JobResult, done, tot int) {
			dones = append(dones, done)
			total = tot
		},
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if total != len(rep.Jobs) || total != 4 {
		t.Fatalf("callback total = %d, want the 4-job matrix", total)
	}
	if len(dones) != 4 {
		t.Fatalf("callback fired %d times, want 4", len(dones))
	}
	for i, d := range dones {
		if d != i+1 {
			t.Fatalf("done sequence %v not the serialized 1..n count", dones)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{Devices: []string{"D9"}}); err == nil {
		t.Error("unknown device accepted")
	}
	if _, err := Run(Config{Devices: []string{"D1", "D1"}}); err == nil {
		t.Error("duplicate device accepted")
	}
	if _, err := Run(Config{Kinds: []Kind{"AFL"}}); err == nil {
		t.Error("unknown kind accepted")
	}
	// Duplicate kinds would schedule identical same-seed jobs and
	// double-count every farm statistic.
	if _, err := Run(Config{Kinds: []Kind{KindBSS, KindBSS}}); err == nil {
		t.Error("duplicate kind accepted")
	}
	// A budget keyed by a device outside the matrix would be silently
	// ignored, leaving the device at the default budget.
	if _, err := Run(Config{Devices: []string{"D1"}, Budgets: map[string]int{"d1": 100}}); err == nil {
		t.Error("budget for out-of-matrix device accepted")
	}
	if _, err := Run(Config{Devices: []string{"D1"}, Budgets: map[string]int{"D1": 0}}); err == nil {
		t.Error("non-positive budget accepted")
	}
}

// TestJobSeedsDistinctAndStable pins the seed derivation: every cell
// and shard of a matrix gets a distinct seed, and the derivation does
// not depend on the matrix shape the job appears in.
func TestJobSeedsDistinctAndStable(t *testing.T) {
	cfg, err := Config{Shards: 3, BaseSeed: 99, Kinds: AllKinds()}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	jobs := buildJobs(cfg)
	if want := 8 * len(AllKinds()) * 3; len(jobs) != want {
		t.Fatalf("matrix has %d jobs, want %d", len(jobs), want)
	}
	seeds := make(map[int64]Job)
	for _, j := range jobs {
		if prev, dup := seeds[j.Seed]; dup {
			t.Errorf("jobs %v and %v share seed %d", prev, j, j.Seed)
		}
		seeds[j.Seed] = j
		if j.Seed != jobSeed(99, j.Device, j.Kind, j.Variant, j.Shard) {
			t.Errorf("seed for %v not a pure function of its coordinates", j)
		}
	}
}

// TestReportJSONMarshalable pins that a live farm report serializes as
// JSON — the telemetry endpoint's /snapshot path marshals Aggregator
// snapshots verbatim, and catalog specs carry defect-trigger closures
// that must stay out of the encoding (Job.Spec is json:"-").
func TestReportJSONMarshalable(t *testing.T) {
	report, err := Run(Config{
		Devices:          []string{"D2"},
		Shards:           1,
		BaseSeed:         7,
		Workers:          1,
		MaxPacketsPerJob: 15_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(report)
	if err != nil {
		t.Fatalf("farm report does not marshal: %v", err)
	}
	if !bytes.Contains(data, []byte(`"Device":"D2"`)) {
		t.Fatalf("marshaled report names no D2 job:\n%s", data)
	}
}
