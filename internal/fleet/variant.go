package fleet

import (
	"fmt"
	"strings"

	"l2fuzz/internal/campaign"
	"l2fuzz/internal/core"
	"l2fuzz/internal/rfcommfuzz"
	"l2fuzz/internal/sdpfuzz"
	"l2fuzz/internal/smfuzz"
)

// Names of the predefined variants: the paper's §IV-D ablation grid.
const (
	// VariantBaseline is the un-ablated reference configuration. It is
	// also the implicit variant of a Config with no Variants set, and its
	// jobs keep the pre-variant seed derivation, so variant-free farms
	// reproduce historical reports byte-for-byte.
	VariantBaseline = "baseline"
	// VariantNoStateGuiding disables job-valid command selection:
	// commands are drawn uniformly from all 26 codes in every state.
	VariantNoStateGuiding = "no-state-guiding"
	// VariantAllFields widens mutation beyond the core fields: dependent
	// and MA fields are scrambled too (the dumb-mutation strategy the
	// paper argues against).
	VariantAllFields = "all-fields"
	// VariantNoGarbage suppresses the appended garbage tail.
	VariantNoGarbage = "no-garbage"
)

// Variant is one point on the matrix's variant axis: a named per-job
// configuration override. The override hooks run after the farm has
// resolved a job's defaults (seed, packet budget), so a variant may
// adjust any knob, including the budget itself. Hooks for fuzzer kinds a
// job does not run are ignored; the baseline comparison fuzzers
// (Defensics, BFuzz, BSS) expose no knobs, so variants only distinguish
// their jobs through the variant-salted seed.
type Variant struct {
	// Name identifies the variant in jobs, reports and seed derivation.
	// It must be unique within a matrix and non-empty.
	Name string
	// Core, when set, mutates the resolved core.Config of KindL2Fuzz
	// jobs and of every run inside KindCampaign jobs.
	Core func(*core.Config)
	// RFCOMM, when set, mutates the resolved rfcommfuzz.Config of
	// KindRFCOMM jobs.
	RFCOMM func(*rfcommfuzz.Config)
	// Campaign, when set, mutates the resolved campaign.Config of
	// KindCampaign jobs (run counts, dry-run cutoffs; per-run fuzzer
	// knobs belong in Core).
	Campaign func(*campaign.Config)
	// SDP, when set, mutates the resolved sdpfuzz.Config of KindSDP jobs.
	SDP func(*sdpfuzz.Config)
	// SM, when set, mutates the resolved smfuzz.Config of KindSM jobs.
	SM func(*smfuzz.Config)
}

// BaselineVariant returns the un-ablated reference variant.
func BaselineVariant() Variant { return Variant{Name: VariantBaseline} }

// NoStateGuidingVariant returns the state-guiding ablation: state
// coverage collapses while mutation efficiency survives (§IV-D).
func NoStateGuidingVariant() Variant {
	return Variant{
		Name: VariantNoStateGuiding,
		Core: func(c *core.Config) { c.NoStateGuiding = true },
	}
}

// AllFieldsVariant returns the core-field-mutation ablation: packets
// become invalid rather than valid-malformed and the MP ratio collapses.
func AllFieldsVariant() Variant {
	return Variant{
		Name: VariantAllFields,
		Core: func(c *core.Config) { c.MutateAllFields = true },
	}
}

// NoGarbageVariant returns the garbage-tail ablation: the malformed
// ratio drops and tail-triggered defects go undetected.
func NoGarbageVariant() Variant {
	return Variant{
		Name: VariantNoGarbage,
		Core: func(c *core.Config) { c.NoGarbage = true },
	}
}

// AblationVariants returns the §IV-D ablation grid in report order: the
// baseline followed by the three single-choice ablations. A farm over
// these variants reproduces the paper's design-argument table from one
// Report.
func AblationVariants() []Variant {
	return []Variant{
		BaselineVariant(),
		NoStateGuidingVariant(),
		AllFieldsVariant(),
		NoGarbageVariant(),
	}
}

// VariantByName resolves one of the predefined ablation variants.
func VariantByName(name string) (Variant, error) {
	var known []string
	for _, v := range AblationVariants() {
		if v.Name == name {
			return v, nil
		}
		known = append(known, v.Name)
	}
	return Variant{}, fmt.Errorf("fleet: unknown variant %q (have %s)", name, strings.Join(known, ", "))
}
