package fleet

import (
	"context"
	"errors"
	"time"
)

// Executor abstracts where a farm's jobs physically run. The farm —
// matrix enumeration, seed derivation, event stream, aggregation,
// journaling, corpus persistence — is transport-agnostic: it hands an
// executor one Job at a time and folds the JobResult it gets back, so
// the in-process pool (LocalExecutor) and subprocess workers
// (ProcExecutor) produce identical reports from identical configs.
//
// The farm owns the executor's lifecycle: Start once with the resolved
// farm config before any Execute, Execute concurrently from up to
// Config.Workers dispatchers, Close once every job is accounted for.
type Executor interface {
	// Start prepares the executor for one farm run. cfg is the resolved
	// (defaulted, validated) farm config.
	Start(cfg Config) error
	// Execute runs one job to completion and returns its result. A
	// non-nil error is a transport failure — the job did not run to
	// completion and the farm may requeue it on another worker. Failures
	// of the job itself travel inside JobResult.Err.
	Execute(ctx context.Context, job Job) (JobResult, error)
	// Close releases the executor's resources. The farm calls it after
	// the last job is accounted for.
	Close() error
}

// ErrNoWorkers is the transport failure Execute returns when an
// executor has no live workers left. The farm fails the job immediately
// instead of requeueing: without workers a retry can only spin.
var ErrNoWorkers = errors.New("fleet: executor has no live workers")

// LocalWorkerID is the JobResult.Worker value of the in-process pool.
const LocalWorkerID = "local"

// WorkerEvent is one executor worker lifecycle change, surfaced in the
// farm's event stream (EventWorkerUp, EventWorkerDown) and journal.
type WorkerEvent struct {
	// Worker is the executor's worker id ("proc/0", ...).
	Worker string
	// Up discriminates spawn from retirement.
	Up bool
	// Err is why the worker went down; empty for a clean shutdown.
	Err string
}

// workerNotifier is implemented by executors that report worker
// retirements; the farm installs its sink before Start. Callbacks must
// not be invoked from inside Start (the farm's event consumer is not
// running yet).
type workerNotifier interface {
	setNotify(func(WorkerEvent))
}

// workerReporter is implemented by executors with identifiable workers;
// the farm emits an EventWorkerUp per id after Start, before any job
// event.
type workerReporter interface {
	workerIDs() []string
}

// LocalExecutor runs jobs in-process, one per calling dispatcher — the
// default executor, behaviorally identical to the pre-executor farm's
// worker pool. Its zero value is ready for a farm to Start.
type LocalExecutor struct {
	cfg Config
}

// Start retains the resolved farm config for Execute.
func (e *LocalExecutor) Start(cfg Config) error {
	e.cfg = cfg
	return nil
}

// Execute runs the job on the calling goroutine. It never returns a
// transport error: the job runs to completion in-process or records its
// failure in the result. Execution starts immediately — StartedNs is
// stamped here and ExecNs measured around the run, so a local job's
// Span.Transport is (near) zero by construction.
func (e *LocalExecutor) Execute(_ context.Context, job Job) (JobResult, error) {
	started := time.Now()
	res := runJob(e.cfg, job)
	res.Worker = LocalWorkerID
	res.Span.StartedNs = sinceEpoch(e.cfg.epoch, started)
	res.Span.ExecNs = time.Since(started)
	return res, nil
}

// Close is a no-op: local workers are the farm's own dispatchers.
func (e *LocalExecutor) Close() error { return nil }
