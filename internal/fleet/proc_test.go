package fleet

import (
	"fmt"
	"os"
	"reflect"
	"testing"
	"time"

	"l2fuzz/internal/corpus"
	"l2fuzz/internal/telemetry"
)

// workerEnv re-execs the test binary as a farm worker: TestMain sees
// the variable and speaks the wire protocol on stdin/stdout instead of
// running tests, giving the proc tests a worker command without
// building a separate binary.
const workerEnv = "L2FUZZ_FLEET_WORKER"

func TestMain(m *testing.M) {
	if os.Getenv(workerEnv) == "1" {
		if err := RunWorker(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// procConfig spawns workers by re-execing this test binary.
func procConfig(procs int) ProcConfig {
	return ProcConfig{
		Procs:   procs,
		Command: []string{os.Args[0]},
		Env:     []string{workerEnv + "=1"},
	}
}

// stripWorkers erases the worker attribution, the one JobResult field
// that legitimately differs between executors.
func stripWorkers(rep *Report) {
	for i := range rep.Jobs {
		rep.Jobs[i].Worker = ""
	}
}

// TestLocalVsProcDeterminism is the tentpole's acceptance criterion:
// the same matrix run through the in-process pool and through worker
// subprocesses must produce byte-identical rendered reports and deeply
// equal structures (wall times scrubbed, worker attribution stripped),
// at one worker and at four.
func TestLocalVsProcDeterminism(t *testing.T) {
	for _, workers := range []int{1, 4} {
		local, err := Run(journalMatrix(workers))
		if err != nil {
			t.Fatal(err)
		}
		if len(local.Findings) == 0 {
			t.Fatal("matrix produced no findings; the comparison would be vacuous")
		}
		pcfg := journalMatrix(workers)
		pcfg.Executor = NewProcExecutor(procConfig(workers))
		proc, err := Run(pcfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := range proc.Jobs {
			if got := proc.Jobs[i].Worker; len(got) < 5 || got[:5] != "proc/" {
				t.Fatalf("workers=%d: job %d attributed to %q, want a proc worker", workers, i, got)
			}
		}
		local.ScrubWall()
		proc.ScrubWall()
		if l, p := local.Render(), proc.Render(); l != p {
			t.Errorf("workers=%d: rendered reports differ:\nlocal:\n%s\nproc:\n%s", workers, l, p)
		}
		stripWorkers(local)
		stripWorkers(proc)
		if !reflect.DeepEqual(local, proc) {
			t.Errorf("workers=%d: proc report differs from local:\nlocal: %+v\nproc:  %+v", workers, local, proc)
		}
	}
}

// TestProcFarmSurvivesWorkerKill kills one worker subprocess mid-run:
// the farm must requeue whatever the worker was holding, degrade to the
// survivor, and still account for every job with none failed. The
// event stream must carry both worker-up events and both worker-down
// events, the killed worker's with a reason.
func TestProcFarmSurvivesWorkerKill(t *testing.T) {
	cfg := journalMatrix(2)
	exec := NewProcExecutor(procConfig(2))
	cfg.Executor = exec
	farm, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ups, downs, dirtyDowns int
	killed := ""
	for ev := range farm.Events() {
		switch ev.Type {
		case EventWorkerUp:
			ups++
		case EventWorkerDown:
			downs++
			if ev.WorkerErr != "" {
				dirtyDowns++
			}
		case EventJobDone:
			if killed == "" {
				killed = exec.KillOne()
				if killed == "" {
					t.Fatal("KillOne found no live worker")
				}
			}
		}
	}
	rep := farm.Wait()
	total := len(buildJobs(mustDefaults(t, journalMatrix(2))))
	if len(rep.Jobs) != total || rep.Completed+rep.Failed != total {
		t.Fatalf("report accounts for %d jobs (%d completed, %d failed), matrix has %d",
			len(rep.Jobs), rep.Completed, rep.Failed, total)
	}
	if rep.Failed != 0 {
		t.Errorf("%d jobs failed; a single worker kill must not lose jobs", rep.Failed)
	}
	if ups != 2 || downs != 2 {
		t.Errorf("saw %d worker-up and %d worker-down events, want 2 and 2", ups, downs)
	}
	if dirtyDowns == 0 {
		t.Errorf("no worker-down event carried an error; the kill of %s went unreported", killed)
	}
}

func mustDefaults(t *testing.T, cfg Config) Config {
	t.Helper()
	out, err := cfg.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestProcCountersFoldBackExactly pins the telemetry satellite: a farm
// run through subprocess workers must leave the coordinator's counter
// set exactly equal to an in-process run's — job lifecycle counts tally
// on the coordinator, traffic counts ship back in each result.
func TestProcCountersFoldBackExactly(t *testing.T) {
	lcfg := journalMatrix(2)
	lcfg.Counters = &telemetry.Counters{}
	if _, err := Run(lcfg); err != nil {
		t.Fatal(err)
	}
	pcfg := journalMatrix(2)
	pcfg.Counters = &telemetry.Counters{}
	pcfg.Executor = NewProcExecutor(procConfig(2))
	if _, err := Run(pcfg); err != nil {
		t.Fatal(err)
	}
	ls, ps := lcfg.Counters.Snapshot(), pcfg.Counters.Snapshot()
	if ls.Packets == 0 {
		t.Fatal("local run counted no packets; the comparison would be vacuous")
	}
	if !reflect.DeepEqual(ls, ps) {
		t.Errorf("proc counters differ from local:\nlocal: %+v\nproc:  %+v", ls, ps)
	}
}

// TestProcCorpusMatchesLocal sends repro traces across the wire: a
// corpus-backed proc farm must persist the same entries an in-process
// one does.
func TestProcCorpusMatchesLocal(t *testing.T) {
	run := func(exec Executor) (*Report, []corpus.Entry) {
		store, err := corpus.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		cfg := corpusMatrix(2, store)
		cfg.Executor = exec
		rep, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		entries, err := store.Entries()
		if err != nil {
			t.Fatal(err)
		}
		return rep, entries
	}
	localRep, localEntries := run(nil)
	procRep, procEntries := run(NewProcExecutor(procConfig(2)))
	if len(localEntries) == 0 {
		t.Fatal("local run persisted no corpus entries; the comparison would be vacuous")
	}
	if !reflect.DeepEqual(localEntries, procEntries) {
		t.Errorf("proc corpus differs from local:\nlocal: %+v\nproc:  %+v", localEntries, procEntries)
	}
	localRep.ScrubWall()
	procRep.ScrubWall()
	stripWorkers(localRep)
	stripWorkers(procRep)
	if !reflect.DeepEqual(localRep, procRep) {
		t.Errorf("proc corpus report differs from local:\nlocal: %+v\nproc:  %+v", localRep, procRep)
	}
}

// TestProcJobDeadline drives every job into its deadline: the executor
// kills the worker holding it, retries burn through the remaining
// workers, and once none are left the farm fails the rest immediately
// instead of hanging.
func TestProcJobDeadline(t *testing.T) {
	cfg := journalMatrix(2)
	pc := procConfig(2)
	pc.JobDeadline = time.Millisecond
	cfg.Executor = NewProcExecutor(pc)
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := len(buildJobs(mustDefaults(t, journalMatrix(2))))
	if len(rep.Jobs) != total || rep.Completed+rep.Failed != total {
		t.Fatalf("report accounts for %d jobs (%d completed, %d failed), matrix has %d",
			len(rep.Jobs), rep.Completed, rep.Failed, total)
	}
	if rep.Failed == 0 {
		t.Error("a 1ms deadline failed no jobs; the deadline path went unexercised")
	}
}
