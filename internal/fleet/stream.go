package fleet

import (
	"sync"
	"time"
)

// EventType discriminates farm events.
type EventType int

// The farm event types, in the order a single job emits them.
const (
	// EventJobStarted fires when a worker picks a job off the feed.
	EventJobStarted EventType = iota + 1
	// EventJobDone fires after a job's result is folded into the
	// aggregate; Event.Result carries it.
	EventJobDone
	// EventNewFinding fires, after its job's EventJobDone, for every
	// finding signature the farm had not seen before that job;
	// Event.Finding carries the farm-wide record as of that moment.
	EventNewFinding
)

func (t EventType) String() string {
	switch t {
	case EventJobStarted:
		return "JobStarted"
	case EventJobDone:
		return "JobDone"
	case EventNewFinding:
		return "NewFinding"
	default:
		return "Unknown"
	}
}

// Event is one entry of a farm's progress stream.
type Event struct {
	// Type says what happened.
	Type EventType
	// Time is the emission timestamp, taken from time.Now at emission so
	// it carries Go's monotonic clock reading — durations between events
	// survive wall-clock steps.
	Time time.Time
	// Job is the matrix cell the event concerns; Job.Variant names the
	// configuration variant it ran under, so a streaming consumer can
	// attribute progress and findings along the variant axis.
	Job Job
	// Result is the job's outcome; EventJobDone only.
	Result *JobResult
	// Finding is the new de-duplicated finding; EventNewFinding only.
	Finding *FindingRecord
	// Done and Total report farm progress at emission time: completed
	// jobs so far versus matrix size.
	Done, Total int
}

// Farm is a running fuzzing farm: the worker pool executes the job
// matrix while the farm emits Events and keeps a live aggregate that
// can be snapshotted at any moment.
//
// The consumer contract: drain Events() — the channel is unbuffered,
// so workers pause at emission until the consumer keeps up, and the
// stream closes once every job is done. Wait drains whatever the
// consumer has not read, so "start, range over Events, Wait" and
// "start, Wait" both terminate.
type Farm struct {
	cfg    Config
	total  int
	agg    *Aggregator
	events chan Event
	start  time.Time

	// emitMu serializes fold-and-emit so event order, Done counts and
	// the aggregate all advance consistently.
	emitMu sync.Mutex
	done   int
}

// Start validates the matrix and launches the farm: cfg.Workers workers
// over the job matrix, results folded into a live Aggregator as they
// arrive. The error covers matrix validation only.
func Start(cfg Config) (*Farm, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	jobs := buildJobs(cfg)
	f := &Farm{
		cfg:    cfg,
		total:  len(jobs),
		agg:    newAggregator(cfg, len(jobs)),
		events: make(chan Event),
		start:  time.Now(),
	}

	f.journalHeader(jobs)

	feed := make(chan Job)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range feed {
				f.emitStarted(job)
				start := time.Now()
				res := runJob(cfg, job)
				res.Wall = time.Since(start)
				f.finish(res)
			}
		}()
	}
	go func() {
		for _, j := range jobs {
			feed <- j
		}
		close(feed)
	}()
	go func() {
		wg.Wait()
		close(f.events)
	}()
	return f, nil
}

// Events returns the farm's progress stream. The channel closes after
// the last job's events are delivered.
func (f *Farm) Events() <-chan Event { return f.events }

// emitStarted announces a job pick-up.
func (f *Farm) emitStarted(job Job) {
	f.emitMu.Lock()
	defer f.emitMu.Unlock()
	f.cfg.Counters.CountJobStarted()
	f.journalStarted(job)
	f.events <- Event{Type: EventJobStarted, Time: time.Now(), Job: job, Done: f.done, Total: f.total}
}

// finish folds one result and emits its JobDone and NewFinding events.
// Journal records are written under emitMu, so their order matches the
// event stream's.
func (f *Farm) finish(res JobResult) {
	f.emitMu.Lock()
	defer f.emitMu.Unlock()
	fresh := f.agg.Add(res)
	f.done++
	f.cfg.Counters.CountJobDone(res.Err != nil)
	f.cfg.Counters.AddFindings(len(fresh))
	f.journalResult(res)
	f.events <- Event{Type: EventJobDone, Time: time.Now(), Job: res.Job, Result: &res, Done: f.done, Total: f.total}
	for i := range fresh {
		f.journalFinding(fresh[i], res.Job)
		f.events <- Event{Type: EventNewFinding, Time: time.Now(), Job: res.Job, Finding: &fresh[i], Done: f.done, Total: f.total}
	}
}

// Snapshot reports the farm's aggregate at this moment: completed jobs,
// de-duplicated findings and merged metrics so far. Safe to call from
// any goroutine while the farm runs.
func (f *Farm) Snapshot() *Report {
	rep := f.agg.Snapshot()
	rep.Wall = time.Since(f.start)
	return rep
}

// Wait blocks until every job has finished — draining any events the
// consumer left unread — and returns the farm's final report.
func (f *Farm) Wait() *Report {
	for range f.events {
		// Discard: aggregation happens on the worker side, so unread
		// events carry no information the final snapshot lacks.
	}
	return f.Snapshot()
}
