package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// EventType discriminates farm events.
type EventType int

// The farm event types, in the order a single job emits them, followed
// by the executor worker lifecycle events.
const (
	// EventJobStarted fires when a dispatcher picks a job off the feed
	// (again on every retry of a requeued job).
	EventJobStarted EventType = iota + 1
	// EventJobDone fires after a job's result is folded into the
	// aggregate; Event.Result carries it.
	EventJobDone
	// EventNewFinding fires, after its job's EventJobDone, for every
	// finding signature the farm had not seen before that job;
	// Event.Finding carries the farm-wide record as of that moment.
	EventNewFinding
	// EventWorkerUp fires once per executor worker before any job
	// event; Event.Worker names it. Only executors with identifiable
	// workers (ProcExecutor) emit lifecycle events — the in-process
	// pool's event stream is unchanged from pre-executor farms.
	EventWorkerUp
	// EventWorkerDown fires when an executor worker retires — cleanly
	// at farm shutdown (empty Event.WorkerErr) or because it died
	// mid-run (WorkerErr says why; the farm requeues the lost job).
	EventWorkerDown
)

func (t EventType) String() string {
	switch t {
	case EventJobStarted:
		return "JobStarted"
	case EventJobDone:
		return "JobDone"
	case EventNewFinding:
		return "NewFinding"
	case EventWorkerUp:
		return "WorkerUp"
	case EventWorkerDown:
		return "WorkerDown"
	default:
		return "Unknown"
	}
}

// Event is one entry of a farm's progress stream.
type Event struct {
	// Type says what happened.
	Type EventType
	// Time is the emission timestamp, taken from time.Now at emission so
	// it carries Go's monotonic clock reading — durations between events
	// survive wall-clock steps.
	Time time.Time
	// Job is the matrix cell the event concerns; Job.Variant names the
	// configuration variant it ran under, so a streaming consumer can
	// attribute progress and findings along the variant axis. Zero for
	// worker lifecycle events.
	Job Job
	// Result is the job's outcome; EventJobDone only.
	Result *JobResult
	// Finding is the new de-duplicated finding; EventNewFinding only.
	Finding *FindingRecord
	// Worker is the executor worker id; EventWorkerUp/Down only.
	Worker string
	// WorkerErr is why a worker went down ("" for a clean shutdown);
	// EventWorkerDown only.
	WorkerErr string
	// Done and Total report farm progress at emission time: completed
	// jobs so far versus matrix size.
	Done, Total int
}

// maxJobAttempts bounds how many times one job is tried across worker
// transport failures before the farm records it as failed. Three
// attempts absorb a crashed worker plus an unlucky reassignment without
// letting a job that kills every worker it touches starve the farm.
const maxJobAttempts = 3

// Farm is a running fuzzing farm: dispatchers drive the job matrix
// through the configured Executor while the farm emits Events and keeps
// a live aggregate that can be snapshotted at any moment.
//
// The consumer contract: drain Events() — the channel is unbuffered,
// so dispatchers pause at emission until the consumer keeps up, and the
// stream closes once every job is done. Wait drains whatever the
// consumer has not read, so "start, range over Events, Wait" and
// "start, Wait" both terminate.
type Farm struct {
	cfg    Config
	exec   Executor
	total  int
	agg    *Aggregator
	events chan Event
	feed   chan Job
	start  time.Time

	// emitMu serializes fold-and-emit so event order, Done counts and
	// the aggregate all advance consistently.
	emitMu sync.Mutex
	done   int

	// retryMu guards the per-job transport-failure counts and the
	// per-job queued timestamps.
	retryMu  sync.Mutex
	attempts map[int]int
	queued   map[int]time.Duration
}

// Start validates the matrix and launches the farm: the executor is
// started (spawning worker subprocesses under ProcExecutor), the job
// matrix is dispatched from cfg.Workers dispatcher goroutines, and
// results fold into a live Aggregator as they arrive. The error covers
// matrix validation and executor startup only.
func Start(cfg Config) (*Farm, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	jobs := buildJobs(cfg)
	exec := cfg.Executor
	if exec == nil {
		exec = &LocalExecutor{}
	}
	// The farm's start is the run's one monotonic clock origin: job
	// trace spans (stamped here and inside executors via cfg.epoch) and
	// journal record offsets (via SetEpoch below) all measure from it.
	cfg.epoch = time.Now()
	f := &Farm{
		cfg:      cfg,
		exec:     exec,
		total:    len(jobs),
		agg:      newAggregator(cfg, len(jobs)),
		events:   make(chan Event),
		start:    cfg.epoch,
		attempts: make(map[int]int),
		queued:   make(map[int]time.Duration),
	}
	if n, ok := exec.(workerNotifier); ok {
		n.setNotify(f.emitWorker)
	}
	if err := exec.Start(cfg); err != nil {
		return nil, err
	}

	if cfg.Journal != nil {
		cfg.Journal.SetEpoch(f.start)
	}
	f.journalHeader(jobs)

	// The feed holds the whole matrix, so requeueing a job a worker
	// died under never blocks: occupancy is bounded by the matrix size
	// (every requeued job was popped first).
	f.feed = make(chan Job, len(jobs))
	for _, j := range jobs {
		f.feed <- j
	}
	if f.total == 0 {
		close(f.feed)
	}

	// Worker-up events precede every job event: dispatchers hold until
	// the ups are out.
	upsDone := make(chan struct{})
	var ups []string
	if r, ok := exec.(workerReporter); ok {
		ups = r.workerIDs()
	}
	go func() {
		for _, id := range ups {
			f.emitWorker(WorkerEvent{Worker: id, Up: true})
		}
		close(upsDone)
	}()

	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-upsDone
			f.dispatch()
		}()
	}
	go func() {
		wg.Wait()
		// Closing the executor retires its workers; their clean
		// worker-down events are emitted from inside Close, before the
		// stream ends.
		exec.Close()
		close(f.events)
	}()
	return f, nil
}

// Events returns the farm's progress stream. The channel closes after
// the last job's events are delivered.
func (f *Farm) Events() <-chan Event { return f.events }

// dispatch feeds jobs through the executor until the matrix is
// exhausted. A transport failure requeues the job within its retry
// budget; past it, the failure becomes the job's result.
func (f *Farm) dispatch() {
	for job := range f.feed {
		f.emitStarted(job)
		dispatched := time.Now()
		res, err := f.exec.Execute(context.Background(), job)
		if err != nil {
			if f.requeue(job, err) {
				continue
			}
			res = JobResult{Job: job, Err: fmt.Errorf("executor: %w", err)}
		}
		res.Wall = time.Since(dispatched)
		// The dispatcher owns the span's farm-side phases; the executor
		// stamped StartedNs/ExecNs during Execute (both stay zero on the
		// past-retry failure path above — the job never executed).
		res.Span.QueuedNs = f.queuedAt(job.Index)
		res.Span.DispatchedNs = sinceEpoch(f.start, dispatched)
		res.Span.FinishedNs = sinceEpoch(f.start, time.Now())
		f.finish(res)
	}
}

// queuedAt reports when a job last entered the feed: zero for the
// initial enqueue (the whole matrix is queued at farm start), the
// requeue time for jobs a worker died under.
func (f *Farm) queuedAt(index int) time.Duration {
	f.retryMu.Lock()
	defer f.retryMu.Unlock()
	return f.queued[index]
}

// requeue returns a transport-failed job to the feed and reports
// whether it did. A job out of attempts is not requeued, and neither is
// any job once the executor is out of workers — a retry then could only
// spin.
func (f *Farm) requeue(job Job, err error) bool {
	if errors.Is(err, ErrNoWorkers) {
		return false
	}
	f.retryMu.Lock()
	f.attempts[job.Index]++
	n := f.attempts[job.Index]
	if n < maxJobAttempts {
		// Re-stamp the queued time under the same lock that counted the
		// attempt: the span's queue phase restarts with the retry.
		f.queued[job.Index] = sinceEpoch(f.start, time.Now())
	}
	f.retryMu.Unlock()
	if n >= maxJobAttempts {
		return false
	}
	f.feed <- job
	return true
}

// emitStarted announces a job pick-up.
func (f *Farm) emitStarted(job Job) {
	f.emitMu.Lock()
	defer f.emitMu.Unlock()
	f.cfg.Counters.CountJobStarted()
	f.journalStarted(job)
	f.events <- Event{Type: EventJobStarted, Time: time.Now(), Job: job, Done: f.done, Total: f.total}
}

// finish folds one result and emits its JobDone and NewFinding events.
// Journal records are written under emitMu, so their order matches the
// event stream's. The last job to finish closes the feed, releasing the
// dispatchers.
func (f *Farm) finish(res JobResult) {
	f.emitMu.Lock()
	defer f.emitMu.Unlock()
	fresh := f.agg.Add(res)
	f.done++
	f.cfg.Counters.CountJobDone(res.Err != nil)
	f.cfg.Counters.AddFindings(len(fresh))
	f.journalResult(res)
	f.events <- Event{Type: EventJobDone, Time: time.Now(), Job: res.Job, Result: &res, Done: f.done, Total: f.total}
	for i := range fresh {
		f.journalFinding(fresh[i], res.Job)
		f.events <- Event{Type: EventNewFinding, Time: time.Now(), Job: res.Job, Finding: &fresh[i], Done: f.done, Total: f.total}
	}
	if f.done == f.total {
		close(f.feed)
	}
}

// emitWorker records one executor worker lifecycle change in the
// journal and the event stream.
func (f *Farm) emitWorker(ev WorkerEvent) {
	f.emitMu.Lock()
	defer f.emitMu.Unlock()
	f.journalWorker(ev)
	typ := EventWorkerDown
	if ev.Up {
		typ = EventWorkerUp
	}
	f.events <- Event{Type: typ, Time: time.Now(), Worker: ev.Worker, WorkerErr: ev.Err, Done: f.done, Total: f.total}
}

// Snapshot reports the farm's aggregate at this moment: completed jobs,
// de-duplicated findings and merged metrics so far. Safe to call from
// any goroutine while the farm runs.
func (f *Farm) Snapshot() *Report {
	rep := f.agg.Snapshot()
	rep.Wall = time.Since(f.start)
	return rep
}

// Wait blocks until every job has finished — draining any events the
// consumer left unread — and returns the farm's final report.
func (f *Farm) Wait() *Report {
	for range f.events {
		// Discard: aggregation happens on the dispatcher side, so unread
		// events carry no information the final snapshot lacks.
	}
	return f.Snapshot()
}
