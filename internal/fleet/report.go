package fleet

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"l2fuzz/internal/core"
	"l2fuzz/internal/metrics"
)

// Occurrence is one finding a job produced, with its per-job repeat
// count (campaign jobs reproduce findings across runs).
type Occurrence struct {
	// Finding is the detected vulnerability.
	Finding core.Finding
	// Count is how many times this job reproduced it.
	Count int
	// Dump is the device-side crash artefact, "" when none.
	Dump string
}

// JobResult is the outcome of one job.
type JobResult struct {
	// Job identifies the matrix cell and shard.
	Job Job
	// Worker identifies the executor worker that ran the job:
	// LocalWorkerID for the in-process pool, "proc/<i>" for subprocess
	// workers. Informational — reports render identically across
	// executors.
	Worker string
	// Err records a job failure; the other fields are partial when set.
	Err error
	// PacketsSent counts the job's transmitted packets (frames for
	// KindRFCOMM).
	PacketsSent int
	// Elapsed is the job's simulated duration.
	Elapsed time.Duration
	// Wall is the job's real-time duration on its worker, measured
	// around the job run with the monotonic clock.
	Wall time.Duration
	// Span traces the job through the farm's phases — queued,
	// dispatched, started, finished, plus the in-executor execution
	// time — as monotonic offsets from the farm's start. Journals
	// record it, so an analyzer can reconstruct per-phase latency and
	// per-worker utilization after the run.
	Span Span
	// Findings are the job's detections (empty for baseline kinds).
	Findings []Occurrence
	// Crashed reports whether the target device ended the job crashed.
	Crashed bool
	// Summary is the job's trace-metrics summary, including the
	// visited-state set in Summary.States.
	Summary metrics.Summary
}

// Signature is the black-box identity of a finding — the shared
// core.Signature (state, port, error-class) triple the campaign runner
// de-duplicates by, here applied across devices and fuzzer kinds, and
// the key the persistent corpus stores repro traces under. One type for
// all three layers means corpus keys cannot drift from report keys.
type Signature = core.Signature

// FindingRecord is one de-duplicated finding with its farm-wide
// provenance. Finding.Trace carries the recorded repro trace of the
// canonical first occurrence when the farm records traces (a corpus
// store is configured).
type FindingRecord struct {
	// Signature is the de-duplication key.
	Signature Signature
	// Finding is the first occurrence.
	Finding core.Finding
	// Devices lists the target names (catalog IDs or custom spec names)
	// that exhibited it, sorted.
	Devices []string
	// Kinds lists the fuzzer kinds that produced it, in AllKinds order.
	Kinds []Kind
	// Count sums occurrences across all jobs.
	Count int
	// Dump is the first non-empty crash artefact.
	Dump string
	// Known marks a signature the configured corpus store already held
	// before this farm run: a reproduction of yesterday's finding, not
	// a new one. Known findings are still counted and listed, but they
	// are not announced as new (no EventNewFinding) and not re-written
	// to the store.
	Known bool
}

// CorpusStats summarises a farm's interaction with its corpus store.
type CorpusStats struct {
	// Saved counts the distinct new signatures whose repro traces were
	// persisted this run.
	Saved int
	// Known counts the distinct signatures the store already held.
	Known int
	// Errors lists store write failures, sorted.
	Errors []string
}

// GroupStats is a per-device or per-kind breakdown row.
type GroupStats struct {
	// Jobs counts scheduled jobs, Failed the errored subset.
	Jobs, Failed int
	// Packets sums transmitted packets.
	Packets int
	// Findings sums finding occurrences.
	Findings int
	// Crashes counts jobs that left the device crashed.
	Crashes int
	// Wall sums the real time the group's jobs spent on workers,
	// including failed jobs (they consumed worker time too).
	Wall time.Duration
}

// VariantStats is a per-variant breakdown row: the job counters plus
// the variant's own merged trace metrics, so MP/PR/state-coverage
// deltas between variants are directly comparable within one Report —
// the farm form of the paper's §IV-D ablation table.
type VariantStats struct {
	GroupStats
	// Metrics is the merged trace summary of the variant's completed
	// jobs; its States set is the exact union of their visited-state
	// sets.
	Metrics metrics.Summary
}

// Report is the aggregated farm outcome.
type Report struct {
	// Jobs are all job results in matrix order.
	Jobs []JobResult
	// Completed and Failed partition the matrix.
	Completed, Failed int
	// TotalPackets sums packets across jobs.
	TotalPackets int
	// TotalSimTime sums simulated job durations (the serial-equivalent
	// campaign length).
	TotalSimTime time.Duration
	// Wall is the real time the farm took.
	Wall time.Duration
	// TotalJobWall sums real per-job wall durations across all workers
	// — the serial-equivalent real cost of the matrix. With W workers
	// and no scheduling gaps it approaches W×Wall.
	TotalJobWall time.Duration
	// Workers is the pool size used.
	Workers int
	// Findings are the de-duplicated findings in first-seen matrix
	// order.
	Findings []FindingRecord
	// PerDevice and PerKind are the breakdown tables; PerDevice keys by
	// target name (catalog ID or custom spec name).
	PerDevice map[string]*GroupStats
	PerKind   map[Kind]*GroupStats
	// PerVariant is the per-variant breakdown, keyed by variant name.
	PerVariant map[string]*VariantStats
	// Variants lists the matrix's variant names in configuration order
	// (the order the PerVariant table renders in).
	Variants []string
	// Metrics is the farm-wide merged trace summary; its States set is
	// the exact union of the per-job visited-state sets.
	Metrics metrics.Summary
	// StateCoverage is that union, sorted by name.
	StateCoverage []string
	// Corpus summarises the corpus-store interaction; nil when the farm
	// ran without a store.
	Corpus *CorpusStats
}

// FindingsOn returns the de-duplicated findings involving one target,
// by name.
func (r *Report) FindingsOn(target string) []FindingRecord {
	var out []FindingRecord
	for _, f := range r.Findings {
		for _, d := range f.Devices {
			if d == target {
				out = append(out, f)
				break
			}
		}
	}
	return out
}

// addDevice inserts a device ID into a sorted unique slice.
func addDevice(devs []string, id string) []string {
	i := sort.SearchStrings(devs, id)
	if i < len(devs) && devs[i] == id {
		return devs
	}
	devs = append(devs, "")
	copy(devs[i+1:], devs[i:])
	devs[i] = id
	return devs
}

// addKind inserts a kind into a slice kept in AllKinds order.
func addKind(kinds []Kind, k Kind) []Kind {
	for _, have := range kinds {
		if have == k {
			return kinds
		}
	}
	kinds = append(kinds, k)
	order := make(map[Kind]int, len(AllKinds()))
	for i, known := range AllKinds() {
		order[known] = i
	}
	sort.Slice(kinds, func(i, j int) bool { return order[kinds[i]] < order[kinds[j]] })
	return kinds
}

// Render prints the farm report as a fixed-width console table.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fleet report: %d jobs (%d failed), %d workers\n",
		len(r.Jobs), r.Failed, r.Workers)
	fmt.Fprintf(&b, "traffic: %d packets, %v simulated, %v wall (%v in jobs)\n",
		r.TotalPackets, r.TotalSimTime.Round(time.Millisecond), r.Wall.Round(time.Millisecond),
		r.TotalJobWall.Round(time.Millisecond))
	fmt.Fprintf(&b, "metrics: MP %.2f%%  PR %.2f%%  efficiency %.2f%%  %.0f pkt/s (serial-equivalent), %d states covered\n",
		100*r.Metrics.MPRatio, 100*r.Metrics.PRRatio,
		100*r.Metrics.MutationEfficiency, r.Metrics.PacketsPerSecond,
		r.Metrics.StatesCovered)
	// The corpus line appears only on corpus-backed farms, keeping
	// store-less reports byte-identical to pre-corpus ones.
	if r.Corpus != nil {
		fmt.Fprintf(&b, "corpus: %d new trace(s) saved, %d known signature(s)\n",
			r.Corpus.Saved, r.Corpus.Known)
		for _, e := range r.Corpus.Errors {
			fmt.Fprintf(&b, "corpus: WRITE FAILED: %s\n", e)
		}
	}

	// The device column grows with the longest target name but never
	// shrinks below the historical 8 columns, so catalog-only reports
	// stay byte-identical to pre-target-spec ones.
	devW := 8
	for id := range r.PerDevice {
		if len(id) > devW {
			devW = len(id)
		}
	}
	b.WriteString("\nPer device:\n")
	fmt.Fprintf(&b, "  %-*s %5s %6s %10s %9s %8s %10s\n", devW, "device", "jobs", "failed", "packets", "findings", "crashes", "wall")
	for _, id := range sortedKeys(r.PerDevice) {
		g := r.PerDevice[id]
		fmt.Fprintf(&b, "  %-*s %5d %6d %10d %9d %8d %10v\n", devW, id, g.Jobs, g.Failed, g.Packets, g.Findings, g.Crashes, g.Wall.Round(time.Millisecond))
	}

	b.WriteString("\nPer fuzzer:\n")
	fmt.Fprintf(&b, "  %-10s %5s %6s %10s %9s %8s\n", "fuzzer", "jobs", "failed", "packets", "findings", "crashes")
	for _, k := range AllKinds() {
		g := r.PerKind[k]
		if g == nil {
			continue
		}
		fmt.Fprintf(&b, "  %-10s %5d %6d %10d %9d %8d\n", k, g.Jobs, g.Failed, g.Packets, g.Findings, g.Crashes)
	}

	// The variant table appears only when the variant axis is non-trivial,
	// keeping baseline-only farm reports byte-identical to pre-variant
	// ones.
	if len(r.Variants) > 1 || (len(r.Variants) == 1 && r.Variants[0] != VariantBaseline) {
		b.WriteString("\nPer variant:\n")
		fmt.Fprintf(&b, "  %-18s %5s %6s %10s %9s %8s %7s %7s %7s %7s\n",
			"variant", "jobs", "failed", "packets", "findings", "crashes", "MP%", "PR%", "eff%", "states")
		for _, name := range r.Variants {
			g := r.PerVariant[name]
			if g == nil {
				continue
			}
			fmt.Fprintf(&b, "  %-18s %5d %6d %10d %9d %8d %7.2f %7.2f %7.2f %7d\n",
				name, g.Jobs, g.Failed, g.Packets, g.Findings, g.Crashes,
				100*g.Metrics.MPRatio, 100*g.Metrics.PRRatio,
				100*g.Metrics.MutationEfficiency, g.Metrics.StatesCovered)
		}
	}

	if len(r.Findings) == 0 {
		b.WriteString("\nNo findings.\n")
		return b.String()
	}
	fmt.Fprintf(&b, "\nFindings (%d distinct signatures):\n", len(r.Findings))
	for i, f := range r.Findings {
		kinds := make([]string, len(f.Kinds))
		for j, k := range f.Kinds {
			kinds[j] = string(k)
		}
		known := ""
		if f.Known {
			known = "  (known)"
		}
		fmt.Fprintf(&b, "  %2d. %s (%s) ×%d  devices: %s  via: %s%s\n",
			i+1, f.Signature, f.Finding.Error.Severity(), f.Count,
			strings.Join(f.Devices, ","), strings.Join(kinds, ","), known)
	}
	return b.String()
}

// ScrubWall zeroes every real-time field — the farm Wall, the summed
// per-job wall, each job's Wall and trace Span, and every per-group
// wall sum — so reports from separate runs can be compared for
// everything except wall-clock time. Simulated durations are
// untouched: they are deterministic and comparisons should cover them.
func (r *Report) ScrubWall() {
	r.Wall = 0
	r.TotalJobWall = 0
	for i := range r.Jobs {
		r.Jobs[i].Wall = 0
		r.Jobs[i].Span = Span{}
	}
	for _, g := range r.PerDevice {
		g.Wall = 0
	}
	for _, g := range r.PerKind {
		g.Wall = 0
	}
	for _, g := range r.PerVariant {
		g.Wall = 0
	}
}

func sortedKeys(m map[string]*GroupStats) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
