package fleet

import (
	"l2fuzz/internal/bt/l2cap"
	"l2fuzz/internal/bt/sm"
	"l2fuzz/internal/core"
	"l2fuzz/internal/sdpfuzz"
	"l2fuzz/internal/smfuzz"
	"l2fuzz/internal/testbed"
)

// The scenario-diversity engines: the same methodology pointed at
// surfaces the six original kinds never touched. Both register after
// the original six (see engine.go's init), so reports over the
// historical kind set render unchanged.
func init() {
	RegisterEngine(sdpEngine{})
	RegisterEngine(smEngine{})
}

// sdpEngine runs DataElement/PDU malformation against the target's SDP
// server. An SDP death maps into the shared signature space as an
// Open-state finding on the SDP port, classified by the same liveness
// probe a corpus replay of the trace will use — so a recorded finding
// reproduces with a matching error class.
type sdpEngine struct{}

func (sdpEngine) Kind() Kind                          { return KindSDP }
func (sdpEngine) ProducesFindings() bool              { return true }
func (sdpEngine) NeedsRFCOMM() bool                   { return false }
func (sdpEngine) TraceBudget(cfg Config, job Job) int { return job.MaxPackets }

func (sdpEngine) Run(cfg Config, r *testbed.Rig, job Job, v Variant, res *JobResult) {
	fcfg := sdpfuzz.DefaultConfig(job.Seed)
	fcfg.MaxPDUs = job.MaxPackets
	if v.SDP != nil {
		v.SDP(&fcfg)
	}
	budget := fcfg.MaxPDUs
	if budget <= 0 {
		// Mirror the runner's zero-means-default normalization.
		budget = sdpfuzz.DefaultConfig(job.Seed).MaxPDUs
	}
	ensureTraceLimit(r, budget)
	report, err := sdpfuzz.New(r.Client, fcfg).Run(r.Device.Address())
	if err != nil {
		res.Err = err
		return
	}
	res.PacketsSent = report.PDUsSent
	res.Elapsed = report.Elapsed
	if report.Found {
		class := core.ProbeLiveness(r.Client, r.Device.Address())
		if class == core.ErrNone {
			// The server went silent but the stack survived: the SDP
			// analogue of the RFCOMM layer-isolation case.
			class = core.ErrConnectionAborted
		}
		res.Findings = []Occurrence{{
			Finding: core.Finding{
				Time:           report.Elapsed,
				Error:          class,
				State:          sm.StateOpen,
				PSM:            l2cap.PSMSDP,
				Trace:          report.Trace,
				TraceTruncated: report.TraceTruncated,
			},
			Count: 1,
			Dump:  crashDump(r.Device),
		}}
	}
}

// smEngine runs the model-guided state-machine walk: the transition
// table itself as the search space. The finding keeps the shadow
// machine's state at detection — the walk knows exactly where in the
// machine the target died, unlike the packet-schedule engines which
// infer it.
type smEngine struct{}

func (smEngine) Kind() Kind                          { return KindSM }
func (smEngine) ProducesFindings() bool              { return true }
func (smEngine) NeedsRFCOMM() bool                   { return false }
func (smEngine) TraceBudget(cfg Config, job Job) int { return job.MaxPackets }

func (smEngine) Run(cfg Config, r *testbed.Rig, job Job, v Variant, res *JobResult) {
	fcfg := smfuzz.DefaultConfig(job.Seed)
	fcfg.MaxPackets = job.MaxPackets
	if v.SM != nil {
		v.SM(&fcfg)
	}
	budget := fcfg.MaxPackets
	if budget <= 0 {
		// Mirror the runner's zero-means-default normalization.
		budget = smfuzz.DefaultConfig(job.Seed).MaxPackets
	}
	ensureTraceLimit(r, budget)
	report, err := smfuzz.New(r.Client, fcfg).Run(r.Device.Address())
	if err != nil {
		res.Err = err
		return
	}
	res.PacketsSent = report.PacketsSent
	res.Elapsed = report.Elapsed
	if report.Found {
		class := core.ProbeLiveness(r.Client, r.Device.Address())
		if class == core.ErrNone {
			class = core.ErrConnectionReset
		}
		res.Findings = []Occurrence{{
			Finding: core.Finding{
				Time:           report.Elapsed,
				Error:          class,
				State:          report.FinalState,
				PSM:            report.PSM,
				Trace:          report.Trace,
				TraceTruncated: report.TraceTruncated,
			},
			Count: 1,
			Dump:  crashDump(r.Device),
		}}
	}
}
