package fleet

import (
	"fmt"

	"l2fuzz/internal/bt/device"
	"l2fuzz/internal/bt/host"
	"l2fuzz/internal/bt/l2cap"
	"l2fuzz/internal/bt/radio"
	"l2fuzz/internal/bt/rfcomm"
	"l2fuzz/internal/bt/sm"
	"l2fuzz/internal/campaign"
	"l2fuzz/internal/core"
	"l2fuzz/internal/fuzzers"
	"l2fuzz/internal/fuzzers/bfuzz"
	"l2fuzz/internal/fuzzers/bss"
	"l2fuzz/internal/fuzzers/defensics"
	"l2fuzz/internal/metrics"
	"l2fuzz/internal/rfcommfuzz"
)

// testerAddr is the per-job tester endpoint address. Every job has its
// own medium, so the farm's testers never collide.
var testerAddr = radio.MustBDAddr("00:1B:DC:F0:00:01")

// rig is one job's private testbed.
type rig struct {
	medium  *radio.Medium
	dev     *device.Device
	client  *host.Client
	sniffer *metrics.Sniffer
}

// newRig builds a fresh medium, target device, tester client and
// sniffer for one job. KindRFCOMM jobs get an RFCOMM-capable variant of
// the catalog device: the same stack profile and ports, but with the
// RFCOMM port opened pairing-free, the standard serial services
// mounted, and — on defect-armed farms against devices the paper found
// vulnerable — the reserved-DLCI mux defect.
func newRig(cfg Config, job Job) (*rig, error) {
	entry, err := device.CatalogEntryByID(job.Device, cfg.MeasurementGrade)
	if err != nil {
		return nil, err
	}
	dcfg := entry.Config
	if job.Kind == KindRFCOMM {
		dcfg.Ports = rfcommPorts(dcfg.Ports)
		dcfg.RFCOMMServices = []rfcomm.Service{
			{Channel: 1, Name: "Serial Port Profile"},
			{Channel: 2, Name: "Hands-Free"},
		}
		if entry.ExpectVuln && !cfg.MeasurementGrade {
			dcfg.RFCOMMDefect = rfcomm.ReservedDLCIDefect()
		}
	}
	m := radio.NewMedium(nil, radio.DefaultTiming())
	d, err := device.New(m, dcfg)
	if err != nil {
		return nil, err
	}
	cl, err := host.NewClient(m, testerAddr, "farm-worker")
	if err != nil {
		return nil, err
	}
	return &rig{medium: m, dev: d, client: cl, sniffer: metrics.NewSniffer(m, testerAddr)}, nil
}

// rfcommPorts rewrites a port list so the RFCOMM port exists and is
// reachable without pairing.
func rfcommPorts(ports []device.ServicePort) []device.ServicePort {
	out := append([]device.ServicePort(nil), ports...)
	for i, p := range out {
		if p.PSM == l2cap.PSMRFCOMM {
			out[i].RequiresPairing = false
			return out
		}
	}
	return append(out, device.ServicePort{PSM: l2cap.PSMRFCOMM, Name: "RFCOMM"})
}

// runJob executes one job on a fresh rig and folds the outcome into a
// JobResult. Job errors are recorded, not returned: one failed cell
// must not bring the farm down.
func runJob(cfg Config, job Job) JobResult {
	res := JobResult{Job: job}
	r, err := newRig(cfg, job)
	if err != nil {
		res.Err = fmt.Errorf("rig: %w", err)
		return res
	}
	switch job.Kind {
	case KindL2Fuzz:
		runL2Fuzz(r, job, &res)
	case KindDefensics, KindBFuzz, KindBSS:
		runBaseline(r, job, &res)
	case KindRFCOMM:
		runRFCOMM(r, job, &res)
	case KindCampaign:
		runCampaign(cfg, r, job, &res)
	default:
		res.Err = fmt.Errorf("unknown kind %q", job.Kind)
		return res
	}
	res.Crashed = r.dev.Crashed()
	res.Summary = r.sniffer.Summary()
	for _, st := range r.sniffer.StatesVisited() {
		res.States = append(res.States, st.String())
	}
	return res
}

func runL2Fuzz(r *rig, job Job, res *JobResult) {
	fcfg := core.DefaultConfig(job.Seed)
	fcfg.MaxPackets = job.MaxPackets
	report, err := core.New(r.client, fcfg).Run(r.dev.Address())
	if err != nil {
		res.Err = err
		return
	}
	res.PacketsSent = report.PacketsSent
	res.Elapsed = report.Elapsed
	if report.Found {
		res.Findings = []Occurrence{{Finding: report.Finding, Count: 1, Dump: crashDump(r.dev)}}
	}
}

// runBaseline runs one of the comparison fuzzers. Baselines have no
// detection phase — the paper's evaluation found none of the zero-days
// with them — so they contribute traffic, metrics and (at most) a
// crashed-device flag, never classified findings.
func runBaseline(r *rig, job Job, res *JobResult) {
	var fz fuzzers.Fuzzer
	switch job.Kind {
	case KindDefensics:
		fz = defensics.New(r.client, job.Seed)
	case KindBFuzz:
		fz = bfuzz.New(r.client, job.Seed)
	default:
		fz = bss.New(r.client, job.Seed)
	}
	result, err := fz.Run(r.dev.Address(), job.MaxPackets)
	if err != nil {
		res.Err = err
		return
	}
	res.PacketsSent = result.PacketsSent
	res.Elapsed = result.Elapsed
}

// runRFCOMM runs the §V RFCOMM extension fuzzer. A mux death maps into
// the shared signature space as an Open-state finding on the RFCOMM
// port: Connection Aborted when L2CAP survived the mux (the paper's
// layer-isolation observation), Connection Reset when the whole stack
// went with it.
func runRFCOMM(r *rig, job Job, res *JobResult) {
	fcfg := rfcommfuzz.DefaultConfig(job.Seed)
	fcfg.MaxFrames = job.MaxPackets
	report, err := rfcommfuzz.New(r.client, fcfg).Run(r.dev.Address())
	if err != nil {
		res.Err = err
		return
	}
	res.PacketsSent = report.FramesSent
	res.Elapsed = report.Elapsed
	if report.Found {
		class := core.ErrConnectionReset
		if report.L2CAPAlive {
			class = core.ErrConnectionAborted
		}
		res.Findings = []Occurrence{{
			Finding: core.Finding{
				Time:  report.Elapsed,
				Error: class,
				State: sm.StateOpen,
				PSM:   l2cap.PSMRFCOMM,
			},
			Count: 1,
			Dump:  crashDump(r.dev),
		}}
	}
}

func runCampaign(cfg Config, r *rig, job Job, res *JobResult) {
	ccfg := campaign.DefaultConfig(job.Seed)
	ccfg.MaxRuns = cfg.CampaignRuns
	ccfg.MaxPacketsPerRun = job.MaxPackets
	report, err := campaign.New(r.client, r.dev, ccfg).Run()
	if err != nil {
		res.Err = err
		return
	}
	res.PacketsSent = report.TotalPackets
	res.Elapsed = report.TotalElapsed
	for _, f := range report.Findings {
		res.Findings = append(res.Findings, Occurrence{Finding: f.Finding, Count: f.Count, Dump: f.Dump})
	}
}

// crashDump renders the device's crash artefact, or "" when none.
func crashDump(d *device.Device) string {
	if dump := d.CrashDump(); dump != nil {
		return dump.Render()
	}
	return ""
}
