package fleet

import (
	"fmt"

	"l2fuzz/internal/bt/device"
	"l2fuzz/internal/bt/l2cap"
	"l2fuzz/internal/bt/sm"
	"l2fuzz/internal/campaign"
	"l2fuzz/internal/core"
	"l2fuzz/internal/fuzzers"
	"l2fuzz/internal/fuzzers/bfuzz"
	"l2fuzz/internal/fuzzers/bss"
	"l2fuzz/internal/fuzzers/defensics"
	"l2fuzz/internal/rfcommfuzz"
	"l2fuzz/internal/telemetry"
	"l2fuzz/internal/testbed"
)

// newRig builds one job's private testbed through the shared builder:
// a fresh medium, target device, tester client and sniffer, so jobs
// share no mutable state. The job carries its resolved target spec —
// catalog or custom — and KindRFCOMM jobs get the RFCOMM-capable rig
// variant (serial services mounted when the spec brings none, RFCOMM
// port pairing-free, and — on defect-armed farms against specs expected
// vulnerable — the reserved-DLCI mux defect).
func newRig(cfg Config, job Job) (*testbed.Rig, error) {
	if job.Spec == nil {
		return nil, fmt.Errorf("job %v carries no resolved target spec", job)
	}
	opts := testbed.Options{
		DisableVulns: cfg.MeasurementGrade,
		RFCOMM:       job.Kind == KindRFCOMM,
		TesterName:   "farm-worker",
		Counters:     cfg.Counters,
	}
	if cfg.Corpus != nil && job.Kind.producesFindings() {
		// Corpus-backed farms record the repro traces of every job
		// that can contribute findings (the baseline kinds never do,
		// so recording them would only hold wire buffers for nothing).
		// This limit is an estimate from the job's unresolved budget;
		// each runner raises it (ensureTraceLimit) once its variant
		// hooks have resolved the real traffic cap. A trace that still
		// outgrows it is marked truncated and skipped at store time
		// rather than persisted unreplayable.
		budget := job.MaxPackets
		if job.Kind == KindCampaign {
			budget *= cfg.CampaignRuns
		}
		opts.Record = true
		opts.RecordLimit = traceLimit(budget)
	}
	return testbed.New(*job.Spec, opts)
}

// producesFindings reports whether a kind has a detection phase. The
// comparison baselines do not — the paper's evaluation found none of
// the zero-days with them — so their jobs never contribute corpus
// entries.
func (k Kind) producesFindings() bool {
	switch k {
	case KindDefensics, KindBFuzz, KindBSS:
		return false
	}
	return true
}

// traceLimit sizes a recorder for a traffic budget: every packet is one
// op, liveness probes and link churn roughly double it, and the slack
// absorbs scan and setup traffic.
func traceLimit(budget int) int { return 2*budget + 4096 }

// ensureTraceLimit raises the rig recorder's cap once a runner knows
// its resolved traffic budget — variant hooks may have lifted it past
// the pre-resolution estimate newRig recorded with.
func ensureTraceLimit(r *testbed.Rig, budget int) {
	if r.Recorder != nil {
		r.Recorder.EnsureLimit(traceLimit(budget))
	}
}

// runJob executes one job on a fresh rig and folds the outcome into a
// JobResult. The job's variant overrides are applied after each runner
// resolves its defaults, so a variant may adjust any knob. Job errors
// are recorded, not returned: one failed cell must not bring the farm
// down.
func runJob(cfg Config, job Job) JobResult {
	if cfg.Counters != nil {
		// The job counts into a private Counters whose cache lines stay
		// local to this worker, merged into the farm-wide set once at
		// job end — per-packet bumps must never bounce a shared cache
		// line between cores (measured at ~9% farm throughput when they
		// do). The live endpoint's traffic counters advance per
		// completed job; the job lifecycle counters stay live.
		farm := cfg.Counters
		local := &telemetry.Counters{}
		cfg.Counters = local
		defer func() { farm.Merge(local.Snapshot()) }()
	}
	res := JobResult{Job: job}
	r, err := newRig(cfg, job)
	if err != nil {
		res.Err = fmt.Errorf("rig: %w", err)
		return res
	}
	v := cfg.variant(job.Variant)
	switch job.Kind {
	case KindL2Fuzz:
		runL2Fuzz(cfg, r, job, v, &res)
	case KindDefensics, KindBFuzz, KindBSS:
		runBaseline(r, job, &res)
	case KindRFCOMM:
		runRFCOMM(r, job, v, &res)
	case KindCampaign:
		runCampaign(cfg, r, job, v, &res)
	default:
		res.Err = fmt.Errorf("unknown kind %q", job.Kind)
		return res
	}
	res.Crashed = r.Device.Crashed()
	res.Summary = r.Sniffer.Summary()
	r.FlushTelemetry()
	return res
}

func runL2Fuzz(cfg Config, r *testbed.Rig, job Job, v Variant, res *JobResult) {
	fcfg := core.DefaultConfig(job.Seed)
	fcfg.MaxPackets = job.MaxPackets
	if v.Core != nil {
		v.Core(&fcfg)
	}
	// Telemetry wires after the variant hook so a variant cannot
	// accidentally detach the farm's counters.
	fcfg.Counters = cfg.Counters
	budget := fcfg.MaxPackets
	if budget <= 0 {
		// Mirror the runner's zero-means-default normalization, or a
		// hook zeroing the cap would shrink the trace limit while the
		// run grows to the library default.
		budget = core.DefaultMaxPackets
	}
	ensureTraceLimit(r, budget)
	report, err := core.New(r.Client, fcfg).Run(r.Device.Address())
	if err != nil {
		res.Err = err
		return
	}
	res.PacketsSent = report.PacketsSent
	res.Elapsed = report.Elapsed
	if report.Found {
		res.Findings = []Occurrence{{Finding: report.Finding, Count: 1, Dump: crashDump(r.Device)}}
	}
}

// runBaseline runs one of the comparison fuzzers. Baselines have no
// detection phase — the paper's evaluation found none of the zero-days
// with them — so they contribute traffic, metrics and (at most) a
// crashed-device flag, never classified findings. They expose no
// configuration knobs either, so a variant only distinguishes their
// jobs through its seed salt.
func runBaseline(r *testbed.Rig, job Job, res *JobResult) {
	var fz fuzzers.Fuzzer
	switch job.Kind {
	case KindDefensics:
		fz = defensics.New(r.Client, job.Seed)
	case KindBFuzz:
		fz = bfuzz.New(r.Client, job.Seed)
	default:
		fz = bss.New(r.Client, job.Seed)
	}
	result, err := fz.Run(r.Device.Address(), job.MaxPackets)
	if err != nil {
		res.Err = err
		return
	}
	res.PacketsSent = result.PacketsSent
	res.Elapsed = result.Elapsed
}

// runRFCOMM runs the §V RFCOMM extension fuzzer. A mux death maps into
// the shared signature space as an Open-state finding on the RFCOMM
// port: Connection Aborted when L2CAP survived the mux (the paper's
// layer-isolation observation), Connection Reset when the whole stack
// went with it.
func runRFCOMM(r *testbed.Rig, job Job, v Variant, res *JobResult) {
	fcfg := rfcommfuzz.DefaultConfig(job.Seed)
	fcfg.MaxFrames = job.MaxPackets
	if v.RFCOMM != nil {
		v.RFCOMM(&fcfg)
	}
	budget := fcfg.MaxFrames
	if budget <= 0 {
		// Mirror the runner's zero-means-default normalization.
		budget = rfcommfuzz.DefaultConfig(job.Seed).MaxFrames
	}
	ensureTraceLimit(r, budget)
	report, err := rfcommfuzz.New(r.Client, fcfg).Run(r.Device.Address())
	if err != nil {
		res.Err = err
		return
	}
	res.PacketsSent = report.FramesSent
	res.Elapsed = report.Elapsed
	if report.Found {
		class := core.ErrConnectionReset
		if report.L2CAPAlive {
			class = core.ErrConnectionAborted
		}
		res.Findings = []Occurrence{{
			Finding: core.Finding{
				Time:           report.Elapsed,
				Error:          class,
				State:          sm.StateOpen,
				PSM:            l2cap.PSMRFCOMM,
				Trace:          report.Trace,
				TraceTruncated: report.TraceTruncated,
			},
			Count: 1,
			Dump:  crashDump(r.Device),
		}}
	}
}

func runCampaign(cfg Config, r *testbed.Rig, job Job, v Variant, res *JobResult) {
	ccfg := campaign.DefaultConfig(job.Seed)
	ccfg.MaxRuns = cfg.CampaignRuns
	ccfg.MaxPacketsPerRun = job.MaxPackets
	if v.Campaign != nil {
		v.Campaign(&ccfg)
	}
	if v.Core != nil {
		// Chain behind any hook the Campaign override installed, so both
		// see each run's config.
		prev := ccfg.MutateFuzz
		ccfg.MutateFuzz = func(fc *core.Config) {
			if prev != nil {
				prev(fc)
			}
			v.Core(fc)
		}
	}
	if cfg.Counters != nil {
		// Chain last so every per-run core config carries the farm's
		// counters, whatever the variant hooks rewrote.
		prev := ccfg.MutateFuzz
		ctr := cfg.Counters
		ccfg.MutateFuzz = func(fc *core.Config) {
			if prev != nil {
				prev(fc)
			}
			fc.Counters = ctr
		}
	}
	// Resolve the traffic budget the way the campaign runner will —
	// zero-valued knobs fall back to campaign defaults, then the chained
	// per-run hook applies — so the trace recorder is sized for the
	// worst case of every run landing in one trace epoch (dry runs do
	// not reset the epoch).
	resolved := ccfg
	def := campaign.DefaultConfig(ccfg.Seed)
	if resolved.MaxRuns <= 0 {
		resolved.MaxRuns = def.MaxRuns
	}
	if resolved.MaxPacketsPerRun <= 0 {
		resolved.MaxPacketsPerRun = def.MaxPacketsPerRun
	}
	perRun := core.DefaultConfig(job.Seed)
	perRun.MaxPackets = resolved.MaxPacketsPerRun
	if ccfg.MutateFuzz != nil {
		ccfg.MutateFuzz(&perRun)
	}
	if perRun.MaxPackets <= 0 {
		perRun.MaxPackets = core.DefaultMaxPackets
	}
	ensureTraceLimit(r, resolved.MaxRuns*perRun.MaxPackets)
	report, err := campaign.New(r.Client, r.Device, ccfg).Run()
	if err != nil {
		res.Err = err
		return
	}
	res.PacketsSent = report.TotalPackets
	res.Elapsed = report.TotalElapsed
	for _, f := range report.Findings {
		res.Findings = append(res.Findings, Occurrence{Finding: f.Finding, Count: f.Count, Dump: f.Dump})
	}
}

// crashDump renders the device's crash artefact, or "" when none.
func crashDump(d *device.Device) string {
	if dump := d.CrashDump(); dump != nil {
		return dump.Render()
	}
	return ""
}
