package fleet

import (
	"fmt"

	"l2fuzz/internal/bt/device"
	"l2fuzz/internal/bt/l2cap"
	"l2fuzz/internal/bt/sm"
	"l2fuzz/internal/campaign"
	"l2fuzz/internal/core"
	"l2fuzz/internal/fuzzers"
	"l2fuzz/internal/fuzzers/bfuzz"
	"l2fuzz/internal/fuzzers/bss"
	"l2fuzz/internal/fuzzers/defensics"
	"l2fuzz/internal/rfcommfuzz"
	"l2fuzz/internal/testbed"
)

// newRig builds one job's private testbed through the shared builder:
// a fresh medium, target device, tester client and sniffer, so jobs
// share no mutable state. The job carries its resolved target spec —
// catalog or custom — and KindRFCOMM jobs get the RFCOMM-capable rig
// variant (serial services mounted when the spec brings none, RFCOMM
// port pairing-free, and — on defect-armed farms against specs expected
// vulnerable — the reserved-DLCI mux defect).
func newRig(cfg Config, job Job) (*testbed.Rig, error) {
	if job.Spec == nil {
		return nil, fmt.Errorf("job %v carries no resolved target spec", job)
	}
	return testbed.New(*job.Spec, testbed.Options{
		DisableVulns: cfg.MeasurementGrade,
		RFCOMM:       job.Kind == KindRFCOMM,
		TesterName:   "farm-worker",
	})
}

// runJob executes one job on a fresh rig and folds the outcome into a
// JobResult. The job's variant overrides are applied after each runner
// resolves its defaults, so a variant may adjust any knob. Job errors
// are recorded, not returned: one failed cell must not bring the farm
// down.
func runJob(cfg Config, job Job) JobResult {
	res := JobResult{Job: job}
	r, err := newRig(cfg, job)
	if err != nil {
		res.Err = fmt.Errorf("rig: %w", err)
		return res
	}
	v := cfg.variant(job.Variant)
	switch job.Kind {
	case KindL2Fuzz:
		runL2Fuzz(r, job, v, &res)
	case KindDefensics, KindBFuzz, KindBSS:
		runBaseline(r, job, &res)
	case KindRFCOMM:
		runRFCOMM(r, job, v, &res)
	case KindCampaign:
		runCampaign(cfg, r, job, v, &res)
	default:
		res.Err = fmt.Errorf("unknown kind %q", job.Kind)
		return res
	}
	res.Crashed = r.Device.Crashed()
	res.Summary = r.Sniffer.Summary()
	return res
}

func runL2Fuzz(r *testbed.Rig, job Job, v Variant, res *JobResult) {
	fcfg := core.DefaultConfig(job.Seed)
	fcfg.MaxPackets = job.MaxPackets
	if v.Core != nil {
		v.Core(&fcfg)
	}
	report, err := core.New(r.Client, fcfg).Run(r.Device.Address())
	if err != nil {
		res.Err = err
		return
	}
	res.PacketsSent = report.PacketsSent
	res.Elapsed = report.Elapsed
	if report.Found {
		res.Findings = []Occurrence{{Finding: report.Finding, Count: 1, Dump: crashDump(r.Device)}}
	}
}

// runBaseline runs one of the comparison fuzzers. Baselines have no
// detection phase — the paper's evaluation found none of the zero-days
// with them — so they contribute traffic, metrics and (at most) a
// crashed-device flag, never classified findings. They expose no
// configuration knobs either, so a variant only distinguishes their
// jobs through its seed salt.
func runBaseline(r *testbed.Rig, job Job, res *JobResult) {
	var fz fuzzers.Fuzzer
	switch job.Kind {
	case KindDefensics:
		fz = defensics.New(r.Client, job.Seed)
	case KindBFuzz:
		fz = bfuzz.New(r.Client, job.Seed)
	default:
		fz = bss.New(r.Client, job.Seed)
	}
	result, err := fz.Run(r.Device.Address(), job.MaxPackets)
	if err != nil {
		res.Err = err
		return
	}
	res.PacketsSent = result.PacketsSent
	res.Elapsed = result.Elapsed
}

// runRFCOMM runs the §V RFCOMM extension fuzzer. A mux death maps into
// the shared signature space as an Open-state finding on the RFCOMM
// port: Connection Aborted when L2CAP survived the mux (the paper's
// layer-isolation observation), Connection Reset when the whole stack
// went with it.
func runRFCOMM(r *testbed.Rig, job Job, v Variant, res *JobResult) {
	fcfg := rfcommfuzz.DefaultConfig(job.Seed)
	fcfg.MaxFrames = job.MaxPackets
	if v.RFCOMM != nil {
		v.RFCOMM(&fcfg)
	}
	report, err := rfcommfuzz.New(r.Client, fcfg).Run(r.Device.Address())
	if err != nil {
		res.Err = err
		return
	}
	res.PacketsSent = report.FramesSent
	res.Elapsed = report.Elapsed
	if report.Found {
		class := core.ErrConnectionReset
		if report.L2CAPAlive {
			class = core.ErrConnectionAborted
		}
		res.Findings = []Occurrence{{
			Finding: core.Finding{
				Time:  report.Elapsed,
				Error: class,
				State: sm.StateOpen,
				PSM:   l2cap.PSMRFCOMM,
			},
			Count: 1,
			Dump:  crashDump(r.Device),
		}}
	}
}

func runCampaign(cfg Config, r *testbed.Rig, job Job, v Variant, res *JobResult) {
	ccfg := campaign.DefaultConfig(job.Seed)
	ccfg.MaxRuns = cfg.CampaignRuns
	ccfg.MaxPacketsPerRun = job.MaxPackets
	if v.Campaign != nil {
		v.Campaign(&ccfg)
	}
	if v.Core != nil {
		// Chain behind any hook the Campaign override installed, so both
		// see each run's config.
		prev := ccfg.MutateFuzz
		ccfg.MutateFuzz = func(fc *core.Config) {
			if prev != nil {
				prev(fc)
			}
			v.Core(fc)
		}
	}
	report, err := campaign.New(r.Client, r.Device, ccfg).Run()
	if err != nil {
		res.Err = err
		return
	}
	res.PacketsSent = report.TotalPackets
	res.Elapsed = report.TotalElapsed
	for _, f := range report.Findings {
		res.Findings = append(res.Findings, Occurrence{Finding: f.Finding, Count: f.Count, Dump: f.Dump})
	}
}

// crashDump renders the device's crash artefact, or "" when none.
func crashDump(d *device.Device) string {
	if dump := d.CrashDump(); dump != nil {
		return dump.Render()
	}
	return ""
}
