package fleet

import (
	"fmt"

	"l2fuzz/internal/bt/device"
	"l2fuzz/internal/telemetry"
	"l2fuzz/internal/testbed"
)

// newRig builds one job's private testbed through the shared builder:
// a fresh medium, target device, tester client and sniffer, so jobs
// share no mutable state. The job carries its resolved target spec —
// catalog or custom — and the engine's capability flags pick the rig
// variant (RFCOMM-capable rigs for engines that fuzz over RFCOMM) and
// decide whether the job records a repro trace.
func newRig(cfg Config, eng Engine, job Job) (*testbed.Rig, error) {
	if job.Spec == nil {
		return nil, fmt.Errorf("job %v carries no resolved target spec", job)
	}
	opts := testbed.Options{
		DisableVulns: cfg.MeasurementGrade,
		RFCOMM:       eng.NeedsRFCOMM(),
		TesterName:   "farm-worker",
		Counters:     cfg.Counters,
	}
	if cfg.recordTraces() && eng.ProducesFindings() {
		// Corpus-backed farms — and proc workers executing for one —
		// record the repro traces of every job that can contribute
		// findings (the baseline kinds never do, so recording them
		// would only hold wire buffers for nothing).
		// This limit is an estimate from the job's unresolved budget;
		// each engine raises it (ensureTraceLimit) once its variant
		// hooks have resolved the real traffic cap. A trace that still
		// outgrows it is marked truncated and skipped at store time
		// rather than persisted unreplayable.
		opts.Record = true
		opts.RecordLimit = traceLimit(eng.TraceBudget(cfg, job))
	}
	return testbed.New(*job.Spec, opts)
}

// traceLimit sizes a recorder for a traffic budget: every packet is one
// op, liveness probes and link churn roughly double it, and the slack
// absorbs scan and setup traffic.
func traceLimit(budget int) int { return 2*budget + 4096 }

// ensureTraceLimit raises the rig recorder's cap once an engine knows
// its resolved traffic budget — variant hooks may have lifted it past
// the pre-resolution estimate newRig recorded with.
func ensureTraceLimit(r *testbed.Rig, budget int) {
	if r.Recorder != nil {
		r.Recorder.EnsureLimit(traceLimit(budget))
	}
}

// runJob executes one job on a fresh rig and folds the outcome into a
// JobResult. The job's kind resolves to its registered engine; the
// job's variant overrides are applied after the engine resolves its
// defaults, so a variant may adjust any knob. Job errors are recorded,
// not returned: one failed cell must not bring the farm down.
func runJob(cfg Config, job Job) JobResult {
	if cfg.Counters != nil {
		// The job counts into a private Counters whose cache lines stay
		// local to this worker, merged into the farm-wide set once at
		// job end — per-packet bumps must never bounce a shared cache
		// line between cores (measured at ~9% farm throughput when they
		// do). The live endpoint's traffic counters advance per
		// completed job; the job lifecycle counters stay live.
		farm := cfg.Counters
		local := &telemetry.Counters{}
		cfg.Counters = local
		defer func() { farm.Merge(local.Snapshot()) }()
	}
	res := JobResult{Job: job}
	eng, ok := EngineFor(job.Kind)
	if !ok {
		res.Err = fmt.Errorf("unknown kind %q", job.Kind)
		return res
	}
	r, err := newRig(cfg, eng, job)
	if err != nil {
		res.Err = fmt.Errorf("rig: %w", err)
		return res
	}
	eng.Run(cfg, r, job, cfg.variant(job.Variant), &res)
	res.Crashed = r.Device.Crashed()
	res.Summary = r.Sniffer.Summary()
	r.FlushTelemetry()
	return res
}

// crashDump renders the device's crash artefact, or "" when none.
func crashDump(d *device.Device) string {
	if dump := d.CrashDump(); dump != nil {
		return dump.Render()
	}
	return ""
}
