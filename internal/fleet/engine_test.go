package fleet

import (
	"testing"

	"l2fuzz/internal/bt/device"
)

// TestEngineRegistryResolvesEveryKind pins the registry contract: every
// kind the matrix can schedule resolves to exactly one engine, and the
// registered order — which fixes report order — opens with the six
// historical kinds so reports over the original kind set render as they
// always did.
func TestEngineRegistryResolvesEveryKind(t *testing.T) {
	kinds := AllKinds()
	if len(kinds) != 8 {
		t.Fatalf("registry holds %d kinds, want 8: %v", len(kinds), kinds)
	}
	historical := []Kind{KindL2Fuzz, KindDefensics, KindBFuzz, KindBSS, KindRFCOMM, KindCampaign}
	for i, want := range historical {
		if kinds[i] != want {
			t.Fatalf("kind order[%d] = %v, want %v (report order must keep the historical prefix)", i, kinds[i], want)
		}
	}
	seen := make(map[Kind]bool)
	for _, k := range kinds {
		if seen[k] {
			t.Fatalf("kind %v registered twice", k)
		}
		seen[k] = true
		eng, ok := EngineFor(k)
		if !ok {
			t.Fatalf("EngineFor(%v) resolves nothing", k)
		}
		if eng.Kind() != k {
			t.Fatalf("EngineFor(%v) returned engine for %v", k, eng.Kind())
		}
	}
	if !seen[KindSDP] || !seen[KindSM] {
		t.Fatalf("scenario-diversity kinds missing from the registry: %v", kinds)
	}
}

// TestEngineRegistrySmokeFarmAllKinds is the registry-completeness
// acceptance criterion: a one-shard smoke farm of every registered kind
// against a fully defect-armed target completes with a well-formed
// JobResult per kind, and every engine with a detection phase surfaces
// at least one finding. A kind wired into the registry but not into the
// farm loop — or an engine whose detection never fires on an armed
// target — fails here, not in production.
func TestEngineRegistrySmokeFarmAllKinds(t *testing.T) {
	// customTarget arms the widened (match-all) BlueDroid configuration
	// defect; the testbed arms the SDP overread and — for RFCOMM rigs —
	// the reserved-DLCI defect on every ExpectVuln spec.
	for _, kind := range AllKinds() {
		t.Run(string(kind), func(t *testing.T) {
			eng, ok := EngineFor(kind)
			if !ok {
				t.Fatalf("no engine for %v", kind)
			}
			rep, err := Run(Config{
				CustomDevices:    []device.Spec{customTarget()},
				Kinds:            []Kind{kind},
				BaseSeed:         11,
				Workers:          1,
				MaxPacketsPerJob: 20_000,
				CampaignRuns:     2,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Jobs) != 1 {
				t.Fatalf("smoke farm ran %d jobs, want 1", len(rep.Jobs))
			}
			res := rep.Jobs[0]
			if res.Err != nil {
				t.Fatalf("job failed: %v", res.Err)
			}
			if res.Job.Kind != kind {
				t.Fatalf("job kind = %v, want %v", res.Job.Kind, kind)
			}
			if res.PacketsSent == 0 || res.Elapsed == 0 {
				t.Fatalf("job result not filled in: packets=%d elapsed=%v", res.PacketsSent, res.Elapsed)
			}
			if eng.ProducesFindings() {
				if len(rep.Findings) == 0 {
					t.Fatalf("%v produced no finding against a fully armed target", kind)
				}
				for _, occ := range res.Findings {
					if occ.Count <= 0 {
						t.Errorf("occurrence with non-positive count: %+v", occ)
					}
					if occ.Finding.Error == 0 {
						t.Errorf("finding carries no error class: %+v", occ.Finding)
					}
				}
			} else if len(rep.Findings) != 0 {
				t.Fatalf("baseline %v reported findings: %+v", kind, rep.Findings)
			}
		})
	}
}
