package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"l2fuzz/internal/bt/device"
	"l2fuzz/internal/core"
	"l2fuzz/internal/metrics"
	"l2fuzz/internal/telemetry"
)

// journalVersion pins the farm record schema. ReplayJournal refuses a
// journal written under a different version rather than silently
// misfolding it. Version 2 added the encoded target spec to job
// records, the executor worker id to result records, and the worker
// lifecycle record. Version 3 added the per-job trace span to result
// records and the counter-sample interval to the header, and re-based
// every record's envelope offset onto the farm's start time.
const journalVersion = 3

// The farm's journal record types. A journal additionally carries
// telemetry.RecordSample records when the writer runs a counter
// sampler; replay ignores them.
const (
	recFarm       = "farm"
	recJobStarted = "job-started"
	recJobDone    = "job-done"
	recFinding    = "finding"
	recWorker     = "worker"
)

// journalFarm is the run header: enough of the matrix shape to sanity-
// check a replay config against the journal it is asked to fold.
type journalFarm struct {
	Version  int      `json:"version"`
	Jobs     int      `json:"jobs"`
	Workers  int      `json:"workers"`
	BaseSeed int64    `json:"baseSeed"`
	Targets  []string `json:"targets"`
	Kinds    []Kind   `json:"kinds"`
	Variants []string `json:"variants"`
	Shards   int      `json:"shards"`
	// SampleInterval is how often the run's counter sampler wrote
	// RecordSample records, when the writer declared it
	// (Config.SampleInterval); an analyzer labels the sampled series'
	// time axis with it. Zero means unknown or no sampler.
	SampleInterval time.Duration `json:"sampleIntervalNs,omitempty"`
}

// journalJob is a Job with its resolved target spec inline: specs are
// pure data (declarative defect descriptors), so the journal embeds the
// full spec and is self-describing — a reader needs no catalog to know
// exactly what configuration each job fuzzed. Replay ignores the field
// and resolves specs from the config's target list, which keeps the
// replayed report's Spec pointers identical to a live farm's.
type journalJob struct {
	Index      int          `json:"index"`
	Device     string       `json:"device"`
	Spec       *device.Spec `json:"spec,omitempty"`
	Kind       Kind         `json:"kind"`
	Variant    string       `json:"variant"`
	Shard      int          `json:"shard"`
	Seed       int64        `json:"seed"`
	MaxPackets int          `json:"maxPackets"`
}

type journalStarted struct {
	Job   journalJob `json:"job"`
	Done  int        `json:"done"`
	Total int        `json:"total"`
}

type journalOccurrence struct {
	Finding core.Finding `json:"finding"`
	Count   int          `json:"count"`
	Dump    string       `json:"dump,omitempty"`
}

type journalResult struct {
	Job         journalJob          `json:"job"`
	Worker      string              `json:"worker,omitempty"`
	Err         string              `json:"err,omitempty"`
	PacketsSent int                 `json:"packetsSent"`
	ElapsedNs   time.Duration       `json:"elapsedNs"`
	WallNs      time.Duration       `json:"wallNs"`
	Span        Span                `json:"span"`
	Crashed     bool                `json:"crashed,omitempty"`
	Findings    []journalOccurrence `json:"findings,omitempty"`
	Summary     metrics.Summary     `json:"summary"`
	Done        int                 `json:"done"`
	Total       int                 `json:"total"`
}

type journalFinding struct {
	Record FindingRecord `json:"record"`
	Job    journalJob    `json:"job"`
	Done   int           `json:"done"`
	Total  int           `json:"total"`
}

// journalWorker is one executor worker lifecycle change. Replay
// ignores these records — they exist for post-hoc farm forensics (which
// worker died when, under which job counts).
type journalWorker struct {
	Worker string `json:"worker"`
	Up     bool   `json:"up"`
	Err    string `json:"err,omitempty"`
	Done   int    `json:"done"`
	Total  int    `json:"total"`
}

func toJournalJob(j Job) journalJob {
	return journalJob{
		Index:      j.Index,
		Device:     j.Device,
		Spec:       j.Spec,
		Kind:       j.Kind,
		Variant:    j.Variant,
		Shard:      j.Shard,
		Seed:       j.Seed,
		MaxPackets: j.MaxPackets,
	}
}

func fromJournalJob(j journalJob, specs map[string]*device.Spec) Job {
	return Job{
		Index:      j.Index,
		Device:     j.Device,
		Spec:       specs[j.Device],
		Kind:       j.Kind,
		Variant:    j.Variant,
		Shard:      j.Shard,
		Seed:       j.Seed,
		MaxPackets: j.MaxPackets,
	}
}

// journalHeader writes the run header at Start.
func (f *Farm) journalHeader(jobs []Job) {
	if f.cfg.Journal == nil {
		return
	}
	hdr := journalFarm{
		Version:        journalVersion,
		Jobs:           len(jobs),
		Workers:        f.cfg.Workers,
		BaseSeed:       f.cfg.BaseSeed,
		Shards:         f.cfg.Shards,
		Kinds:          f.cfg.Kinds,
		SampleInterval: f.cfg.SampleInterval,
	}
	for _, t := range f.cfg.targets {
		hdr.Targets = append(hdr.Targets, t.Name)
	}
	for _, v := range f.cfg.Variants {
		hdr.Variants = append(hdr.Variants, v.Name)
	}
	f.cfg.Journal.Write(recFarm, hdr)
}

// journalStarted, journalResult and journalFinding record the event
// stream; all three run under emitMu, so journal order matches event
// order. Write errors latch inside the journal and never stop the farm.
func (f *Farm) journalStarted(job Job) {
	if f.cfg.Journal == nil {
		return
	}
	f.cfg.Journal.Write(recJobStarted, journalStarted{Job: toJournalJob(job), Done: f.done, Total: f.total})
}

func (f *Farm) journalResult(res JobResult) {
	if f.cfg.Journal == nil {
		return
	}
	jr := journalResult{
		Job:         toJournalJob(res.Job),
		Worker:      res.Worker,
		PacketsSent: res.PacketsSent,
		ElapsedNs:   res.Elapsed,
		WallNs:      res.Wall,
		Span:        res.Span,
		Crashed:     res.Crashed,
		Summary:     res.Summary,
		Done:        f.done,
		Total:       f.total,
	}
	if res.Err != nil {
		jr.Err = res.Err.Error()
	}
	for _, occ := range res.Findings {
		jr.Findings = append(jr.Findings, journalOccurrence{Finding: occ.Finding, Count: occ.Count, Dump: occ.Dump})
	}
	f.cfg.Journal.Write(recJobDone, jr)
}

func (f *Farm) journalFinding(rec FindingRecord, job Job) {
	if f.cfg.Journal == nil {
		return
	}
	f.cfg.Journal.Write(recFinding, journalFinding{Record: rec, Job: toJournalJob(job), Done: f.done, Total: f.total})
}

func (f *Farm) journalWorker(ev WorkerEvent) {
	if f.cfg.Journal == nil {
		return
	}
	f.cfg.Journal.Write(recWorker, journalWorker{Worker: ev.Worker, Up: ev.Up, Err: ev.Err, Done: f.done, Total: f.total})
}

// ReplayJournal folds a persisted run journal back into a Report, using
// the same Aggregator the live farm used, so the replayed report equals
// the live one field for field — job results (including per-job wall
// times and trace spans, which are read from the journal, not
// re-measured), breakdown tables, merged metrics and de-duplicated
// findings. Only the top-level
// Wall is zero: the farm stamps it from its own clock, which a replay
// does not have.
//
// cfg must be the configuration the journal was written under; the
// journal's header is checked against the matrix it builds. Replay is a
// pure re-fold: Corpus, Journal, Counters and OnJobDone are stripped,
// so replaying never writes store entries — which also means the Known
// flags of a corpus-backed run are not reconstructed (a replayed report
// marks every finding new). Repro traces are store-owned and never
// journaled, so replayed findings carry none.
func ReplayJournal(cfg Config, r io.Reader) (*Report, error) {
	cfg.Corpus = nil
	cfg.Journal = nil
	cfg.Counters = nil
	cfg.OnJobDone = nil
	cfg.Executor = nil
	rcfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	jobs := buildJobs(rcfg)
	agg := newAggregator(rcfg, len(jobs))
	specs := make(map[string]*device.Spec, len(rcfg.targets))
	for _, t := range rcfg.targets {
		specs[t.Name] = t
	}
	sawHeader := false
	err = telemetry.DecodeJournal(r, func(rec telemetry.Record) error {
		switch rec.Type {
		case recFarm:
			var hdr journalFarm
			if err := json.Unmarshal(rec.Data, &hdr); err != nil {
				return fmt.Errorf("fleet: farm record: %w", err)
			}
			if hdr.Version != journalVersion {
				return fmt.Errorf("fleet: journal schema version %d, this build reads %d", hdr.Version, journalVersion)
			}
			if hdr.Jobs != len(jobs) {
				return fmt.Errorf("fleet: journal covers %d jobs but the config builds a %d-job matrix — wrong config for this journal", hdr.Jobs, len(jobs))
			}
			sawHeader = true
		case recJobDone:
			if !sawHeader {
				return errors.New("fleet: journal carries results before its farm header")
			}
			var jr journalResult
			if err := json.Unmarshal(rec.Data, &jr); err != nil {
				return fmt.Errorf("fleet: job-done record: %w", err)
			}
			res := JobResult{
				Job:         fromJournalJob(jr.Job, specs),
				Worker:      jr.Worker,
				PacketsSent: jr.PacketsSent,
				Elapsed:     jr.ElapsedNs,
				Wall:        jr.WallNs,
				Span:        jr.Span,
				Crashed:     jr.Crashed,
				Summary:     jr.Summary,
			}
			if jr.Err != "" {
				res.Err = errors.New(jr.Err)
			}
			for _, occ := range jr.Findings {
				res.Findings = append(res.Findings, Occurrence{Finding: occ.Finding, Count: occ.Count, Dump: occ.Dump})
			}
			agg.Add(res)
		}
		// job-started, finding, worker and sample records carry no
		// state the fold does not reconstruct; they exist for progress
		// curves and farm forensics.
		return nil
	})
	if err != nil {
		return nil, err
	}
	if !sawHeader {
		return nil, errors.New("fleet: not a farm journal (no farm header record)")
	}
	return agg.Snapshot(), nil
}
