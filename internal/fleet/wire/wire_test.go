package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
)

type payload struct {
	Name  string          `json:"name"`
	Index int             `json:"index"`
	Blob  []byte          `json:"blob,omitempty"`
	Raw   json.RawMessage `json:"raw,omitempty"`
}

func TestRoundTrip(t *testing.T) {
	msgs := []payload{
		{Name: "hello", Index: 0},
		{Name: "job", Index: 42, Blob: []byte{0x00, 0xff, 0x7f}},
		{Name: "result", Index: -1, Raw: json.RawMessage(`{"nested":[1,2,3]}`)},
	}
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	for i, m := range msgs {
		if err := enc.Encode(m); err != nil {
			t.Fatalf("encode %d: %v", i, err)
		}
	}
	dec := NewDecoder(&buf)
	for i, want := range msgs {
		var got payload
		if err := dec.Decode(&got); err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("message %d: got %+v, want %+v", i, got, want)
		}
	}
	var extra payload
	if err := dec.Decode(&extra); err != io.EOF {
		t.Fatalf("decode past end: got %v, want io.EOF", err)
	}
}

// TestFrameBytesGolden pins the on-the-wire framing: a 4-byte
// big-endian payload length followed by the JSON payload, nothing else.
// If this test fails, the wire format changed and old workers cannot
// talk to new coordinators.
func TestFrameBytesGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := NewEncoder(&buf).Encode(payload{Name: "pin", Index: 7}); err != nil {
		t.Fatal(err)
	}
	wantJSON := `{"name":"pin","index":7}`
	want := append([]byte{0x00, 0x00, 0x00, byte(len(wantJSON))}, wantJSON...)
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("frame bytes changed:\n got %q\nwant %q", buf.Bytes(), want)
	}
}

func TestCleanEOF(t *testing.T) {
	var v payload
	if err := NewDecoder(strings.NewReader("")).Decode(&v); err != io.EOF {
		t.Fatalf("empty stream: got %v, want io.EOF", err)
	}
}

func TestTruncatedHeader(t *testing.T) {
	var v payload
	err := NewDecoder(bytes.NewReader([]byte{0x00, 0x00})).Decode(&v)
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("partial header: got %v, want ErrTruncated", err)
	}
}

func TestTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := NewEncoder(&buf).Encode(payload{Name: "cut", Index: 1}); err != nil {
		t.Fatal(err)
	}
	// Drop the final payload byte: the header still declares the full
	// length.
	cut := buf.Bytes()[:buf.Len()-1]
	var v payload
	if err := NewDecoder(bytes.NewReader(cut)).Decode(&v); !errors.Is(err, ErrTruncated) {
		t.Fatalf("cut payload: got %v, want ErrTruncated", err)
	}
}

// TestOversizedDeclaredLength rejects a lying header before reading any
// payload: the reader after the header must be untouched.
func TestOversizedDeclaredLength(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	r := bytes.NewReader(append(hdr[:], "payload that must not be read"...))
	var v payload
	if err := NewDecoder(r).Decode(&v); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized header: got %v, want ErrFrameTooLarge", err)
	}
	if r.Len() != len("payload that must not be read") {
		t.Fatalf("decoder consumed %d payload bytes of an oversized frame", len("payload that must not be read")-r.Len())
	}
}

func TestOversizedEncode(t *testing.T) {
	var buf bytes.Buffer
	// A MaxFrame-long string marshals to MaxFrame+2 bytes of JSON.
	err := NewEncoder(&buf).Encode(strings.Repeat("a", MaxFrame))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized encode: got %v, want ErrFrameTooLarge", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("oversized encode wrote %d bytes", buf.Len())
	}
}

// FuzzDecoder drives the decoder with arbitrary byte streams: it must
// never panic, and every frame it does accept must re-encode to a
// decodable frame.
func FuzzDecoder(f *testing.F) {
	var seed bytes.Buffer
	enc := NewEncoder(&seed)
	enc.Encode(payload{Name: "seed", Index: 1})
	enc.Encode(map[string]any{"k": []int{1, 2, 3}})
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 'x'})
	f.Add([]byte{0x00, 0x00, 0x00, 0x02, '{', '}'})
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewDecoder(bytes.NewReader(data))
		for {
			var v json.RawMessage
			err := dec.Decode(&v)
			if err == io.EOF {
				return
			}
			if err != nil {
				// Any mid-stream error ends the session; the decoder
				// makes no resynchronization promises past it.
				return
			}
			var buf bytes.Buffer
			if err := NewEncoder(&buf).Encode(v); err != nil {
				t.Fatalf("accepted frame %q does not re-encode: %v", v, err)
			}
			var back json.RawMessage
			if err := NewDecoder(&buf).Decode(&back); err != nil {
				t.Fatalf("re-encoded frame does not decode: %v", err)
			}
		}
	})
}
