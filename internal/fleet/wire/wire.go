// Package wire implements the framing the farm's process-isolated
// executor speaks with its worker subprocesses: length-prefixed JSON
// messages over a byte stream (the workers' stdin/stdout pipes).
//
// A frame is a 4-byte big-endian payload length followed by exactly
// that many bytes of JSON. The length prefix makes message boundaries
// explicit — a reader never depends on JSON self-termination, so a
// worker that dies mid-message leaves a detectably truncated frame
// instead of a silently mis-parsed one — and caps resource use: a
// declared length above MaxFrame is rejected before any allocation.
//
// The package frames; it does not define the messages. The farm's
// protocol structs (hello, farm config, job, result) live in the fleet
// package next to the types they mirror, and their schema is pinned by
// a golden test there.
package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// MaxFrame bounds one frame's payload. Results carrying full repro
// traces are the largest messages; at the library's default per-job
// packet budget a trace stays well under a tenth of this.
const MaxFrame = 64 << 20

var (
	// ErrFrameTooLarge reports a frame whose declared or actual payload
	// exceeds MaxFrame. The check runs before the payload is read, so a
	// corrupt length prefix cannot drive allocation.
	ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")
	// ErrTruncated reports a stream that ended inside a frame — a
	// partial length prefix or fewer payload bytes than declared. A
	// stream ending cleanly between frames is io.EOF, not this.
	ErrTruncated = errors.New("wire: truncated frame")
)

// headerSize is the length prefix width.
const headerSize = 4

// Encoder writes framed JSON messages to a stream. Each Encode issues
// one Write, so a frame is never interleaved with other output on the
// same descriptor. Not safe for concurrent use.
type Encoder struct {
	w   io.Writer
	buf []byte
}

// NewEncoder returns an encoder framing onto w.
func NewEncoder(w io.Writer) *Encoder { return &Encoder{w: w} }

// Encode marshals v and writes it as one frame.
func (e *Encoder) Encode(v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("wire: marshal: %w", err)
	}
	if len(payload) > MaxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	e.buf = e.buf[:0]
	var hdr [headerSize]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	e.buf = append(e.buf, hdr[:]...)
	e.buf = append(e.buf, payload...)
	if _, err := e.w.Write(e.buf); err != nil {
		return fmt.Errorf("wire: write frame: %w", err)
	}
	return nil
}

// Decoder reads framed JSON messages from a stream. Not safe for
// concurrent use.
type Decoder struct {
	r       io.Reader
	scratch bytes.Buffer
}

// NewDecoder returns a decoder reading frames from r.
func NewDecoder(r io.Reader) *Decoder { return &Decoder{r: r} }

// Decode reads the next frame and unmarshals it into v. A stream
// ending cleanly between frames returns io.EOF; one ending inside a
// frame returns ErrTruncated; a declared length above MaxFrame returns
// ErrFrameTooLarge without reading the payload.
func (d *Decoder) Decode(v any) error {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(d.r, hdr[:]); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			return ErrTruncated
		}
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return fmt.Errorf("%w: %d bytes declared", ErrFrameTooLarge, n)
	}
	// Copy through a growing buffer rather than allocating the declared
	// length up front: the buffer grows only as payload bytes actually
	// arrive, so a lying header costs nothing.
	d.scratch.Reset()
	if _, err := io.CopyN(&d.scratch, d.r, int64(n)); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return ErrTruncated
		}
		return err
	}
	if err := json.Unmarshal(d.scratch.Bytes(), v); err != nil {
		return fmt.Errorf("wire: unmarshal: %w", err)
	}
	return nil
}
