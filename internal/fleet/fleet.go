package fleet

import (
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"time"

	"l2fuzz/internal/bt/device"
	"l2fuzz/internal/corpus"
	"l2fuzz/internal/telemetry"
)

// Kind selects the fuzzer a job runs. Each kind names a registered
// Engine; the registry in engine.go is the single source of truth for
// which kinds exist and how they execute.
type Kind string

// The job kinds a farm can schedule: the paper's four compared fuzzers,
// the two §V extensions, and the scenario-diversity engines over the
// SDP and L2CAP state-machine surfaces.
const (
	KindL2Fuzz    Kind = "L2Fuzz"
	KindDefensics Kind = "Defensics"
	KindBFuzz     Kind = "BFuzz"
	KindBSS       Kind = "BSS"
	KindRFCOMM    Kind = "RFCOMM"
	KindCampaign  Kind = "Campaign"
	KindSDP       Kind = "SDP"
	KindSM        Kind = "SM"
)

// Defaults for unset Config fields.
const (
	// DefaultMaxPacketsPerJob bounds one job (one campaign run for
	// KindCampaign). The full library default of 6M packets per job
	// would make an all-robust sweep needlessly slow; a quarter million
	// matches the campaign runner's per-run budget.
	DefaultMaxPacketsPerJob = 250_000
	// DefaultCampaignRuns is the per-job run count for KindCampaign.
	DefaultCampaignRuns = 3
)

// catalogTargets resolves the defect-armed Table V catalog into shared
// target specs, once: every farm's catalog jobs point at these same
// Specs, so equal configs build pointer-identical job lists and a
// catalog rebuild is never paid per farm. Specs are pure data
// (declarative defect descriptors, not closures), so sharing is safe —
// nothing downstream mutates them. MeasurementGrade farms disable the
// defects at rig-build time, not here.
var catalogTargets = func() (m map[string]*device.Spec) {
	m = make(map[string]*device.Spec)
	for _, s := range device.CatalogSpecs(false) {
		spec := s
		m[spec.Name] = &spec
	}
	return m
}()

// Config describes a farm job matrix and how to execute it.
type Config struct {
	// Devices are catalog device IDs (D1..D8). Empty means the whole
	// eight-device Table V testbed — unless CustomDevices supplies the
	// farm's targets instead.
	Devices []string
	// CustomDevices are first-class target specs fuzzed alongside the
	// catalog devices: the matrix's device axis is the concatenation of
	// Devices and CustomDevices, in that order. Spec names key seeds,
	// Budgets and per-device report sections exactly as catalog IDs do,
	// so they must be non-empty, unique, and disjoint from the catalog.
	// Specs are copied at Start; later mutation does not reach the farm.
	CustomDevices []device.Spec
	// Kinds are the fuzzer kinds to run against every device. Empty
	// means KindL2Fuzz only.
	Kinds []Kind
	// Variants are the per-job configuration overrides to run for every
	// (device, kind) cell — the matrix's third axis. Empty means the
	// baseline variant only, which reproduces pre-variant farms
	// byte-identically. See AblationVariants for the paper's §IV-D grid.
	Variants []Variant
	// Shards is the number of seed shards per (device, kind, variant)
	// cell: each shard is an independent job with its own derived seed,
	// so one cell explores Shards distinct mutation streams. Zero means
	// one.
	Shards int
	// BaseSeed drives the whole farm. Every job derives its own seed
	// from (BaseSeed, device, kind, variant, shard), so equal configs
	// give equal farms and distinct jobs get distinct streams.
	BaseSeed int64
	// Workers bounds the worker pool. Zero means GOMAXPROCS.
	Workers int
	// MaxPacketsPerJob caps each job's traffic (frames for KindRFCOMM,
	// packets per campaign run for KindCampaign). Zero means
	// DefaultMaxPacketsPerJob.
	MaxPacketsPerJob int
	// Budgets overrides MaxPacketsPerJob per target name (catalog ID or
	// custom spec name), letting a farm spend its packet budget where
	// the devices need it.
	Budgets map[string]int
	// CampaignRuns is the number of runs per KindCampaign job. Zero
	// means DefaultCampaignRuns.
	CampaignRuns int
	// MeasurementGrade builds targets with their defects disabled, for
	// metrics-only sweeps (the farm analogue of Table VII).
	MeasurementGrade bool
	// Corpus, when set, makes the farm's findings durable: every job
	// records its repro trace, new finding signatures are written to the
	// store as they stream in, and signatures the store already holds
	// are marked Known in the report instead of being announced as new.
	// A later cmd/l2repro (or corpus.Replay) can then reproduce,
	// minimize and triage any stored finding on a fresh rig.
	Corpus *corpus.Store
	// OnJobDone, when set, is called after every job completes, with
	// calls serialized (done counts completed jobs so far, total the
	// matrix size). It must not mutate the result.
	OnJobDone func(res JobResult, done, total int)
	// Counters, when set, receives the farm's hot-path telemetry: frame
	// and byte counts from the rigs' radio media, packet and mutation
	// counts from the fuzzer cores, and job/finding counts from the
	// worker loop. Share the same Counters with a telemetry server to
	// watch the farm live. Traffic counts batch per job — each job tallies
	// into a private Counters merged in at job end, keeping shared cache
	// lines off the per-packet path — while job and finding counts land
	// as they happen.
	Counters *telemetry.Counters
	// Journal, when set, persists the farm run as structured JSONL: a
	// farm header at Start, then every job start, job result and fresh
	// finding in emission order. ReplayJournal folds a persisted stream
	// back into the Report the live farm produced. Journal write errors
	// never stop the farm; check Journal.Err after the run. Start
	// re-bases the journal's record offsets onto the farm's own start
	// time, so samples, events and job trace spans share one monotonic
	// clock origin.
	Journal *telemetry.Journal
	// SampleInterval is how often the run's counter sampler writes
	// RecordSample records into the Journal. The farm itself runs no
	// sampler — the caller that does (cmd/l2farm) sets this to the
	// interval it starts the sampler with, and the farm records it in
	// the journal header so an analyzer can label the sampled series'
	// time axis honestly. Zero omits it from the header.
	SampleInterval time.Duration
	// Executor, when set, runs the farm's jobs: the in-process pool
	// (LocalExecutor, the default when nil) or subprocess workers
	// (ProcExecutor). The farm owns its lifecycle — Start before the
	// first job, Close after the last is accounted for. Both executors
	// render byte-identical reports from equal configs.
	Executor Executor

	// targets is the resolved device axis — catalog specs for Devices
	// entries followed by owned copies of CustomDevices — populated by
	// withDefaults. Jobs carry pointers into it.
	targets []*device.Spec
	// forceRecord makes rigs record repro traces without a Corpus: set
	// on proc workers whose coordinator holds the store, never by
	// callers.
	forceRecord bool
	// epoch is the farm's span clock origin — the Start timestamp —
	// against which executors stamp JobResult.Span offsets. Zero on
	// configs that never went through Start (replay, hand-built
	// aggregators), whose spans then stay zero.
	epoch time.Time
}

// recordTraces reports whether jobs should record repro traces: the
// farm has a store to persist them into, or this process is a proc
// worker whose coordinator does.
func (c Config) recordTraces() bool { return c.Corpus != nil || c.forceRecord }

// withDefaults fills unset fields, validates the matrix, and resolves
// the device axis into the target list.
func (c Config) withDefaults() (Config, error) {
	if len(c.Devices) == 0 && len(c.CustomDevices) == 0 {
		c.Devices = device.CatalogIDs()
	}
	c.targets = nil
	seen := make(map[string]bool)
	for _, id := range c.Devices {
		spec, ok := catalogTargets[id]
		if !ok {
			return c, fmt.Errorf("fleet: no catalog entry %q (non-catalog targets go in CustomDevices)", id)
		}
		if seen[id] {
			return c, fmt.Errorf("fleet: duplicate device %q in matrix", id)
		}
		seen[id] = true
		c.targets = append(c.targets, spec)
	}
	for i, spec := range c.CustomDevices {
		if err := spec.Validate(); err != nil {
			return c, fmt.Errorf("fleet: custom device %d: %w", i, err)
		}
		if _, catalog := catalogTargets[spec.Name]; catalog {
			return c, fmt.Errorf("fleet: custom device %d: name %q collides with a Table V catalog ID", i, spec.Name)
		}
		if seen[spec.Name] {
			return c, fmt.Errorf("fleet: duplicate target %q in matrix", spec.Name)
		}
		seen[spec.Name] = true
		owned := spec.Clone()
		c.targets = append(c.targets, &owned)
	}
	if len(c.Kinds) == 0 {
		c.Kinds = []Kind{KindL2Fuzz}
	}
	seenKind := make(map[Kind]bool)
	for _, k := range c.Kinds {
		if _, ok := EngineFor(k); !ok {
			return c, fmt.Errorf("fleet: unknown fuzzer kind %q", k)
		}
		if seenKind[k] {
			return c, fmt.Errorf("fleet: duplicate fuzzer kind %q in matrix", k)
		}
		seenKind[k] = true
	}
	if len(c.Variants) == 0 {
		c.Variants = []Variant{BaselineVariant()}
	}
	seenVariant := make(map[string]bool)
	for _, v := range c.Variants {
		if v.Name == "" {
			return c, fmt.Errorf("fleet: variant with empty name in matrix")
		}
		if seenVariant[v.Name] {
			return c, fmt.Errorf("fleet: duplicate variant %q in matrix", v.Name)
		}
		seenVariant[v.Name] = true
	}
	for id, b := range c.Budgets {
		if !seen[id] {
			return c, fmt.Errorf("fleet: budget for %q, which is not in the target matrix", id)
		}
		if b <= 0 {
			return c, fmt.Errorf("fleet: non-positive budget %d for %q", b, id)
		}
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxPacketsPerJob <= 0 {
		c.MaxPacketsPerJob = DefaultMaxPacketsPerJob
	}
	if c.CampaignRuns <= 0 {
		c.CampaignRuns = DefaultCampaignRuns
	}
	return c, nil
}

// budget resolves the packet budget for one target name. Budgets
// entries are validated positive and in-matrix by withDefaults.
func (c Config) budget(target string) int {
	if b, ok := c.Budgets[target]; ok {
		return b
	}
	return c.MaxPacketsPerJob
}

// variant resolves a job's variant by name. Names are validated unique
// and present by withDefaults; an unknown name (a hand-built Job) falls
// back to the baseline.
func (c Config) variant(name string) Variant {
	for _, v := range c.Variants {
		if v.Name == name {
			return v
		}
	}
	return BaselineVariant()
}

// Job is one cell×shard of the matrix: one fuzzer kind under one
// configuration variant against one target with one derived seed.
type Job struct {
	// Index is the job's position in the matrix enumeration
	// (device-major, then kind, then variant, then shard).
	Index int
	// Device is the target name: a catalog ID ("D1".."D8") or a custom
	// spec name. Seeds, budgets and report sections key by it.
	Device string
	// Spec is the resolved target spec the job runs against. Catalog
	// jobs share the package-wide catalog specs; treat it as read-only.
	// Specs are pure data — defect triggers are declarative descriptors,
	// not closures — so the spec serializes with the job: the proc
	// executor ships it to worker subprocesses inline, and the telemetry
	// endpoint's report snapshots carry it.
	Spec *device.Spec `json:",omitempty"`
	// Kind is the fuzzer kind.
	Kind Kind
	// Variant names the job's configuration variant.
	Variant string
	// Shard is the seed shard, 0..Shards-1.
	Shard int
	// Seed is the derived job seed.
	Seed int64
	// MaxPackets is the job's resolved traffic budget.
	MaxPackets int
}

func (j Job) String() string {
	if j.Variant == VariantBaseline || j.Variant == "" {
		return fmt.Sprintf("%s×%s/%d", j.Device, j.Kind, j.Shard)
	}
	return fmt.Sprintf("%s×%s[%s]/%d", j.Device, j.Kind, j.Variant, j.Shard)
}

// jobSeed derives a job's seed from the farm seed and the job
// coordinates. The derivation is a pure function of its arguments, so
// seeds do not depend on matrix shape or worker scheduling. The device
// salt is the target name — catalog IDs hash exactly as they did when
// they were the only device axis, so catalog-only farms reproduce
// historical reports. The baseline variant contributes no salt: its
// jobs keep the pre-variant derivation for the same reason.
func jobSeed(base int64, target string, kind Kind, variant string, shard int) int64 {
	h := fnv.New64a()
	h.Write([]byte(target))
	h.Write([]byte{0})
	h.Write([]byte(kind))
	if variant != VariantBaseline && variant != "" {
		h.Write([]byte{0})
		h.Write([]byte(variant))
	}
	mixed := base
	mixed ^= int64(h.Sum64() & 0x7FFF_FFFF_FFFF_FFFF)
	mixed += int64(shard) * 0x5DEECE66D // spread shards across the stream
	// Clear the sign bit rather than negating: -math.MinInt64 is still
	// math.MinInt64, so a negation could leak a negative seed.
	return mixed & math.MaxInt64
}

// buildJobs enumerates the matrix in deterministic device-major order
// over the resolved target list.
func buildJobs(cfg Config) []Job {
	var jobs []Job
	for _, tgt := range cfg.targets {
		for _, kind := range cfg.Kinds {
			for _, v := range cfg.Variants {
				for shard := 0; shard < cfg.Shards; shard++ {
					jobs = append(jobs, Job{
						Index:      len(jobs),
						Device:     tgt.Name,
						Spec:       tgt,
						Kind:       kind,
						Variant:    v.Name,
						Shard:      shard,
						Seed:       jobSeed(cfg.BaseSeed, tgt.Name, kind, v.Name, shard),
						MaxPackets: cfg.budget(tgt.Name),
					})
				}
			}
		}
	}
	return jobs
}

// Run executes the farm: every job of the matrix on a pool of
// cfg.Workers workers, aggregated into one Report. It is a thin wrapper
// over the streaming core — Start the farm, drain its event stream
// (feeding cfg.OnJobDone from the JobDone events), return the final
// snapshot — so batch and streaming consumers share one aggregation
// path. The error return covers matrix validation only; individual job
// failures are recorded in their JobResult and counted in
// Report.Failed.
func Run(cfg Config) (*Report, error) {
	farm, err := Start(cfg)
	if err != nil {
		return nil, err
	}
	for ev := range farm.Events() {
		if ev.Type == EventJobDone && cfg.OnJobDone != nil {
			cfg.OnJobDone(*ev.Result, ev.Done, ev.Total)
		}
	}
	return farm.Wait(), nil
}
