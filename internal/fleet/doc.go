// Package fleet orchestrates a parallel fuzzing farm over the simulated
// Bluetooth testbed: the production-scale answer to the paper's first
// limitation (§V), which confined one tester to one physical device.
//
// A Config describes a job matrix — catalog device IDs × fuzzer kinds ×
// a sharded seed range — and Run executes every job of the matrix on a
// bounded worker pool. Each job builds its own radio medium, target
// device, tester client and trace sniffer, so jobs share no mutable
// state and the farm scales with worker count while every individual
// job stays bit-for-bit deterministic: equal (job, seed) gives equal
// results regardless of worker scheduling.
//
// The aggregator folds the per-job results into one Report:
//
//   - findings are de-duplicated across devices and jobs by the same
//     (state, PSM, error-class) black-box signature the campaign runner
//     uses, recording which devices and fuzzer kinds reproduced each;
//   - trace metrics merge via metrics.Summary.Merge into one
//     farm-wide summary, with state coverage unioned exactly from the
//     per-job visited-state sets;
//   - per-device and per-kind breakdowns count jobs, packets, crashes
//     and finding occurrences.
//
// The report's job list is ordered by job index (device-major), so the
// whole Report is reproducible for a given Config no matter how the
// scheduler interleaved the workers.
package fleet
