// Package fleet orchestrates a parallel fuzzing farm over the simulated
// Bluetooth testbed: the production-scale answer to the paper's first
// limitation (§V), which confined one tester to one physical device.
//
// A Config describes a job matrix — targets × fuzzer kinds ×
// configuration variants × a sharded seed range — and the farm executes
// every job of the matrix on a bounded worker pool. The target axis is
// fully programmable: catalog device IDs (Devices) and first-class
// device.Spec values (CustomDevices) resolve into one target list, so
// the same farm fuzzes the paper's Table V testbed next to devices the
// paper never named. Every job carries its resolved Spec; seeds,
// packet Budgets and per-device report sections key by target name,
// with catalog IDs hashing exactly as they always did. Each job builds
// its own radio medium, target device, tester client and trace sniffer
// (through the shared internal/testbed builder), so jobs share no
// mutable state and the farm scales with worker count while every
// individual job stays bit-for-bit deterministic: equal (job, seed)
// gives equal results regardless of worker scheduling.
//
// The variant axis carries per-job configuration overrides: a Variant
// names a set of hooks that mutate the resolved core.Config,
// rfcommfuzz.Config or campaign.Config after the farm applies a job's
// defaults. The predefined AblationVariants reproduce the paper's §IV-D
// design-argument grid (baseline, no-state-guiding, all-fields,
// no-garbage) in one farm run, with a PerVariant breakdown in the
// Report making the MP/PR/state-coverage deltas directly comparable.
// Non-baseline variants salt the per-job seed derivation; an empty
// Variants list means the baseline alone and reproduces pre-variant
// farm reports byte-identically.
//
// The execution core is streaming: Start launches the farm and returns
// a Farm whose Events channel announces JobStarted, JobDone and
// NewFinding as they happen, while a live Aggregator folds each
// JobResult on arrival. Snapshot renders the aggregate mid-run — the
// long-campaign mode the paper's §V virtual environment exists for —
// and Wait returns the final report. Run is a thin wrapper that drains
// the stream, so batch and streaming consumers share one aggregation
// code path and provably agree.
//
// The aggregate folds per-job results into one Report:
//
//   - findings are de-duplicated across devices and jobs by the same
//     (state, PSM, error-class) black-box signature the campaign runner
//     uses, recording which devices and fuzzer kinds reproduced each;
//   - trace metrics merge via metrics.Summary.Merge into one farm-wide
//     summary, whose States set is the exact union of the per-job
//     visited-state sets;
//   - per-device, per-kind and per-variant breakdowns count jobs,
//     packets, crashes and finding occurrences, the per-variant rows
//     additionally carrying their own merged metrics.
//
// Every fold is commutative and Snapshot orders its output by matrix
// position, never by arrival, so the whole Report is reproducible for a
// given Config no matter how the scheduler interleaved the workers.
//
// Farms become resumable across processes through a persistent corpus
// (Config.Corpus): every job then records its repro trace, new finding
// signatures are written to the store the moment they are first folded,
// and signatures the store already held are marked Known in the Report
// instead of announced as new — so repeated farms over one corpus only
// surface genuinely new crashes, and any stored finding can later be
// replayed, minimized and triaged on a fresh rig (internal/corpus,
// cmd/l2repro). The stored trace, like the report, is scheduling-
// independent: it converges on the lowest-index job that contributed a
// replayable one.
package fleet
