package fleet

import (
	"flag"
	"os"
	"strings"
	"testing"

	"l2fuzz/internal/bt/device"
	"l2fuzz/internal/bt/l2cap"
	"l2fuzz/internal/bt/radio"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestCatalogFarmReportBytePinned is the target-spec refactor's
// backwards-compatibility acceptance criterion: a catalog-only farm
// must render byte-identically run over run. The golden was generated
// by the string-keyed implementation immediately before device identity
// became a target spec and regenerated when wall-time columns were
// added to the report; seeds, aggregation and the report's
// deterministic text all have to stay pinned (rerun with -update after
// a deliberate format change).
func TestCatalogFarmReportBytePinned(t *testing.T) {
	rep, err := Run(Config{
		Devices:          []string{"D2", "D5"},
		Kinds:            []Kind{KindL2Fuzz, KindRFCOMM, KindCampaign},
		BaseSeed:         7,
		Workers:          2,
		MaxPacketsPerJob: 20_000,
		CampaignRuns:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep.ScrubWall()
	if *updateGolden {
		if err := os.WriteFile("testdata/catalog_report.golden", []byte(rep.Render()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	golden, err := os.ReadFile("testdata/catalog_report.golden")
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Render(); got != string(golden) {
		t.Errorf("catalog-only farm report drifted from the golden:\ngot:\n%s\nwant:\n%s", got, golden)
	}
}

// customTarget is a non-Table-V device: a widened-trigger BlueDroid
// defect (the catalog's D2 bug made easy to hit, as the fuzzer unit
// tests do) behind a custom port map, plus an RFCOMM service so every
// job kind has something to fuzz.
func customTarget() device.Spec {
	return device.Spec{
		Name: "iot-cam",
		Config: device.Config{
			Addr: radio.MustBDAddr("02:EE:10:00:00:01"),
			Name: "IoT Camera",
			Profile: device.BlueDroidProfile("5.1",
				"vendor/iotcam:13/TQ3A/1:user/release-keys",
				device.BlueDroidCCBNullDeref(0x40, 2, true)),
			Ports: []device.ServicePort{
				{PSM: l2cap.PSMSDP, Name: "Service Discovery"},
				{PSM: l2cap.PSMRFCOMM, Name: "RFCOMM"},
				{PSM: l2cap.PSMDynamicFirst, Name: "camera-control"},
				{PSM: l2cap.PSMDynamicFirst + 2, Name: "camera-stream"},
			},
		},
		ExpectVuln:  true,
		ExpectClass: device.ClassDoS,
	}
}

// TestCustomDeviceFarmAllKinds is the custom-target acceptance
// criterion: a CustomDevices spec runs through every fuzzer kind next
// to a catalog device, keys Budgets by name, carries its resolved spec
// on every job, and appears in the per-device report sections and the
// finding provenance.
func TestCustomDeviceFarmAllKinds(t *testing.T) {
	rep, err := Run(Config{
		Devices:          []string{"D4"},
		CustomDevices:    []device.Spec{customTarget()},
		Kinds:            AllKinds(),
		BaseSeed:         7,
		Workers:          8,
		MaxPacketsPerJob: 20_000,
		CampaignRuns:     2,
		Budgets:          map[string]int{"iot-cam": 15_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("%d jobs failed: %+v", rep.Failed, rep.Jobs)
	}
	if want := 2 * len(AllKinds()); len(rep.Jobs) != want {
		t.Fatalf("matrix scheduled %d jobs, want %d", len(rep.Jobs), want)
	}

	customJobs := 0
	for _, res := range rep.Jobs {
		if res.Job.Spec == nil {
			t.Fatalf("job %v carries no resolved spec", res.Job)
		}
		if res.Job.Spec.Name != res.Job.Device {
			t.Errorf("job %v: spec name %q != target name %q", res.Job, res.Job.Spec.Name, res.Job.Device)
		}
		if res.Job.Device != "iot-cam" {
			continue
		}
		customJobs++
		if res.Job.MaxPackets != 15_000 {
			t.Errorf("job %v budget %d; Budgets[\"iot-cam\"] did not apply", res.Job, res.Job.MaxPackets)
		}
	}
	if customJobs != len(AllKinds()) {
		t.Errorf("custom target ran %d jobs, want one per kind (%d)", customJobs, len(AllKinds()))
	}

	g := rep.PerDevice["iot-cam"]
	if g == nil {
		t.Fatalf("per-device table has no iot-cam section: %+v", rep.PerDevice)
	}
	if g.Jobs != len(AllKinds()) || g.Packets == 0 {
		t.Errorf("iot-cam section not aggregated: %+v", g)
	}
	if len(rep.FindingsOn("iot-cam")) == 0 {
		t.Error("widened defect surfaced no finding attributed to the custom target")
	}
	if render := rep.Render(); !strings.Contains(render, "iot-cam") {
		t.Errorf("rendering has no iot-cam row:\n%s", render)
	}
}

// TestCustomOnlyFarm checks a farm whose device axis is customs alone:
// an empty Devices list must not drag the catalog in when CustomDevices
// is set.
func TestCustomOnlyFarm(t *testing.T) {
	rep, err := Run(Config{
		CustomDevices:    []device.Spec{customTarget()},
		BaseSeed:         3,
		Workers:          2,
		MaxPacketsPerJob: 5_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Jobs) != 1 || rep.Jobs[0].Job.Device != "iot-cam" {
		t.Fatalf("custom-only farm scheduled %+v, want one iot-cam job", rep.Jobs)
	}
	if len(rep.PerDevice) != 1 {
		t.Errorf("per-device table = %+v, want iot-cam alone", rep.PerDevice)
	}
}

// TestCustomDeviceSeedsSaltByName pins the seed axis: a custom target's
// jobs derive from its name through the same function catalog jobs use,
// so equal names give equal streams and distinct names distinct ones.
func TestCustomDeviceSeedsSaltByName(t *testing.T) {
	cfg, err := Config{
		Devices:       []string{"D1"},
		CustomDevices: []device.Spec{customTarget()},
		BaseSeed:      99,
	}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	jobs := buildJobs(cfg)
	if len(jobs) != 2 {
		t.Fatalf("matrix has %d jobs, want 2", len(jobs))
	}
	for _, j := range jobs {
		if want := jobSeed(99, j.Device, j.Kind, j.Variant, j.Shard); j.Seed != want {
			t.Errorf("job %v seed %d, want the name-derived %d", j, j.Seed, want)
		}
	}
	if jobs[0].Seed == jobs[1].Seed {
		t.Error("catalog and custom jobs share a seed")
	}
}

func TestCustomDeviceValidation(t *testing.T) {
	valid := customTarget()
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"catalog-name collision", Config{CustomDevices: []device.Spec{func() device.Spec {
			s := customTarget()
			s.Name = "D3"
			return s
		}()}}},
		{"duplicate custom names", Config{CustomDevices: []device.Spec{valid, valid}}},
		{"empty name", Config{CustomDevices: []device.Spec{{Config: valid.Config}}}},
		{"zero address", Config{CustomDevices: []device.Spec{{Name: "ghost"}}}},
		{"budget for absent target", Config{
			CustomDevices: []device.Spec{valid},
			Budgets:       map[string]int{"not-there": 100},
		}},
	} {
		if _, err := Run(tc.cfg); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
	// The collision check covers every catalog ID, not just scheduled
	// ones: a custom "D7" would be indistinguishable in reports.
	if _, err := Run(Config{
		Devices: []string{"D1"},
		CustomDevices: []device.Spec{func() device.Spec {
			s := customTarget()
			s.Name = "D7"
			return s
		}()},
	}); err == nil {
		t.Error("custom spec named after an unscheduled catalog device accepted")
	}
}
