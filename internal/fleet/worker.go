package fleet

import (
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"l2fuzz/internal/bt/device"
	"l2fuzz/internal/bt/host"
	"l2fuzz/internal/core"
	"l2fuzz/internal/fleet/wire"
	"l2fuzz/internal/metrics"
	"l2fuzz/internal/telemetry"
)

// The worker wire protocol, spoken over a length-prefixed JSON framing
// (internal/fleet/wire). A session is: worker sends wireHello,
// coordinator answers with one wireFarm, then any number of wireJob →
// wireResult exchanges until the coordinator closes the worker's stdin
// (clean shutdown). The message structs below are the schema; a golden
// test pins their field paths so drift is deliberate.
//
// wireVersion pins the protocol. Both sides refuse a peer speaking a
// different version rather than mis-reading its frames. Version 2
// added span context: jobs carry their dispatch offset on the farm
// clock (echoed back as a desync check alongside the index) and
// results carry the worker-measured execution wall time, so the
// coordinator can split a proc job's wall into transport vs execute.
const wireVersion = 2

// wireHello is the worker's opening message.
type wireHello struct {
	Version int `json:"version"`
	PID     int `json:"pid"`
}

// wireFarm is the per-run farm configuration a worker needs: the knobs
// of Config that affect job execution and are not already resolved into
// the jobs themselves.
type wireFarm struct {
	Version          int  `json:"version"`
	MeasurementGrade bool `json:"measurementGrade,omitempty"`
	CampaignRuns     int  `json:"campaignRuns"`
	// Record makes the worker's rigs record repro traces (the
	// coordinator holds a corpus store the worker cannot see).
	Record bool `json:"record,omitempty"`
	// Counters makes the worker tally hot-path telemetry per job and
	// ship the deltas back in each result.
	Counters bool `json:"counters,omitempty"`
}

// wireJob is one job assignment. The resolved target spec travels
// inline — specs are pure data since defects became declarative — so a
// worker needs no target catalog of its own and custom targets work
// unchanged. Variants cross by name only: behaviour hooks cannot cross
// a process boundary, so the worker resolves predefined names via
// VariantByName and treats unknown names as hook-less.
type wireJob struct {
	Index      int          `json:"index"`
	Device     string       `json:"device"`
	Spec       *device.Spec `json:"spec"`
	Kind       Kind         `json:"kind"`
	Variant    string       `json:"variant"`
	Shard      int          `json:"shard"`
	Seed       int64        `json:"seed"`
	MaxPackets int          `json:"maxPackets"`
	// StartedNs is the job's span context: the offset on the farm's
	// monotonic clock at which the coordinator put the job on the wire.
	// The worker has no shared clock, so it cannot extend the span — it
	// echoes the value back in its result, giving the coordinator a
	// second desync check beyond the job index.
	StartedNs time.Duration `json:"startedNs"`
}

// wireOccurrence is one finding occurrence. The repro trace travels in
// its own field: core.Finding excludes Trace from JSON (report
// snapshots must not embed traces), but the coordinator's corpus store
// needs the worker-recorded ops, so the wire carries them explicitly.
type wireOccurrence struct {
	Finding        core.Finding   `json:"finding"`
	Trace          []host.TraceOp `json:"trace,omitempty"`
	TraceTruncated bool           `json:"traceTruncated,omitempty"`
	Count          int            `json:"count"`
	Dump           string         `json:"dump,omitempty"`
}

// wireResult is one job's outcome, echoing the job index so the
// coordinator can detect a desynchronized worker.
type wireResult struct {
	Index       int           `json:"index"`
	Err         string        `json:"err,omitempty"`
	PacketsSent int           `json:"packetsSent"`
	ElapsedNs   time.Duration `json:"elapsedNs"`
	// StartedNs echoes the job's span context (see wireJob). ExecNs is
	// the execution wall time the worker measured around its own job
	// run — the coordinator subtracts it from the span's wire window to
	// isolate the transport cost.
	StartedNs time.Duration              `json:"startedNs"`
	ExecNs    time.Duration              `json:"execNs"`
	Crashed   bool                       `json:"crashed,omitempty"`
	Findings  []wireOccurrence           `json:"findings,omitempty"`
	Summary   metrics.Summary            `json:"summary"`
	Counters  *telemetry.CounterSnapshot `json:"counters,omitempty"`
}

// toWireJob strips a job to its wire form.
func toWireJob(j Job) wireJob {
	return wireJob{
		Index:      j.Index,
		Device:     j.Device,
		Spec:       j.Spec,
		Kind:       j.Kind,
		Variant:    j.Variant,
		Shard:      j.Shard,
		Seed:       j.Seed,
		MaxPackets: j.MaxPackets,
	}
}

// fromWireResult rebuilds a JobResult on the coordinator side. job is
// the coordinator's own Job (its Spec pointer stays pointer-identical
// to the farm's target list, exactly as local execution leaves it), and
// the worker-recorded traces are folded back into the findings so
// corpus persistence works unchanged.
func fromWireResult(wr wireResult, job Job, workerID string) JobResult {
	res := JobResult{
		Job:         job,
		Worker:      workerID,
		PacketsSent: wr.PacketsSent,
		Elapsed:     wr.ElapsedNs,
		Crashed:     wr.Crashed,
		Summary:     wr.Summary,
	}
	// The span's executor-side phases come back over the wire: Started
	// from the coordinator's own send stamp (echoed), Exec measured by
	// the worker. The dispatcher fills the farm-side phases.
	res.Span.StartedNs = wr.StartedNs
	res.Span.ExecNs = wr.ExecNs
	if wr.Err != "" {
		res.Err = errors.New(wr.Err)
	}
	for _, occ := range wr.Findings {
		f := occ.Finding
		f.Trace = occ.Trace
		f.TraceTruncated = occ.TraceTruncated
		res.Findings = append(res.Findings, Occurrence{Finding: f, Count: occ.Count, Dump: occ.Dump})
	}
	return res
}

// RunWorker runs the farm worker loop of a subprocess spawned by
// ProcExecutor: speak the wire protocol on r/w (the process's
// stdin/stdout), executing one job at a time until the coordinator
// closes the job stream. A clean shutdown returns nil; a protocol or
// transport failure returns the error (the coordinator sees the broken
// pipe either way and retires the worker).
func RunWorker(r io.Reader, w io.Writer) error {
	enc := wire.NewEncoder(w)
	dec := wire.NewDecoder(r)
	if err := enc.Encode(wireHello{Version: wireVersion, PID: os.Getpid()}); err != nil {
		return fmt.Errorf("fleet: worker hello: %w", err)
	}
	var fc wireFarm
	if err := dec.Decode(&fc); err != nil {
		return fmt.Errorf("fleet: worker farm config: %w", err)
	}
	if fc.Version != wireVersion {
		return fmt.Errorf("fleet: coordinator speaks wire version %d, this worker version %d", fc.Version, wireVersion)
	}
	for {
		var wj wireJob
		if err := dec.Decode(&wj); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("fleet: worker read job: %w", err)
		}
		if err := enc.Encode(workerRun(fc, wj)); err != nil {
			return fmt.Errorf("fleet: worker write result: %w", err)
		}
	}
}

// workerRun executes one wire job with a per-job config rebuilt from
// the farm message, mirroring what runJob sees under local execution.
func workerRun(fc wireFarm, wj wireJob) wireResult {
	cfg := Config{
		MeasurementGrade: fc.MeasurementGrade,
		CampaignRuns:     fc.CampaignRuns,
		Workers:          1,
		forceRecord:      fc.Record,
	}
	if v, err := VariantByName(wj.Variant); err == nil {
		cfg.Variants = []Variant{v}
	}
	// Unknown variant names resolve to the baseline hooks — the exact
	// behaviour of a hook-less custom variant, whose only job-visible
	// effect is the seed salt already baked into wj.Seed. Hook-carrying
	// custom variants never reach a worker: ProcExecutor.Start rejects
	// them.
	var local *telemetry.Counters
	if fc.Counters {
		local = &telemetry.Counters{}
		cfg.Counters = local
	}
	job := Job{
		Index:      wj.Index,
		Device:     wj.Device,
		Spec:       wj.Spec,
		Kind:       wj.Kind,
		Variant:    wj.Variant,
		Shard:      wj.Shard,
		Seed:       wj.Seed,
		MaxPackets: wj.MaxPackets,
	}
	execStart := time.Now()
	res := runJob(cfg, job)
	wr := wireResult{
		Index:       wj.Index,
		PacketsSent: res.PacketsSent,
		ElapsedNs:   res.Elapsed,
		StartedNs:   wj.StartedNs,
		ExecNs:      time.Since(execStart),
		Crashed:     res.Crashed,
		Summary:     res.Summary,
	}
	if res.Err != nil {
		wr.Err = res.Err.Error()
	}
	for _, occ := range res.Findings {
		wr.Findings = append(wr.Findings, wireOccurrence{
			Finding:        occ.Finding,
			Trace:          occ.Finding.Trace,
			TraceTruncated: occ.Finding.TraceTruncated,
			Count:          occ.Count,
			Dump:           occ.Dump,
		})
	}
	if local != nil {
		s := local.Snapshot()
		wr.Counters = &s
	}
	return wr
}
