package fleet

import (
	"hash/fnv"
	"math"
	"reflect"
	"strings"
	"testing"

	"l2fuzz/internal/campaign"
	"l2fuzz/internal/core"
	"l2fuzz/internal/rfcommfuzz"
)

// legacySeed is the pre-variant seed derivation, reproduced here so the
// backwards-compatibility pin cannot drift with the implementation.
func legacySeed(base int64, deviceID string, kind Kind, shard int) int64 {
	h := fnv.New64a()
	h.Write([]byte(deviceID))
	h.Write([]byte{0})
	h.Write([]byte(kind))
	mixed := base
	mixed ^= int64(h.Sum64() & 0x7FFF_FFFF_FFFF_FFFF)
	mixed += int64(shard) * 0x5DEECE66D
	return mixed & math.MaxInt64
}

// TestEmptyVariantsMatchExplicitBaseline pins backwards compatibility:
// a config with no variant axis means [baseline], and both must produce
// byte-identical reports whose jobs keep the pre-variant seed
// derivation and whose rendering carries no variant table — exactly
// what pre-variant farms produced.
func TestEmptyVariantsMatchExplicitBaseline(t *testing.T) {
	base := Config{
		Devices:          []string{"D2", "D4"},
		Kinds:            []Kind{KindL2Fuzz, KindBSS},
		Shards:           2,
		BaseSeed:         7,
		Workers:          4,
		MaxPacketsPerJob: 20_000,
	}
	implicit, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	explicit := base
	explicit.Variants = []Variant{BaselineVariant()}
	pinned, err := Run(explicit)
	if err != nil {
		t.Fatal(err)
	}

	implicit.ScrubWall()
	pinned.ScrubWall()
	if !reflect.DeepEqual(implicit, pinned) {
		t.Error("empty-variant report differs from explicit-baseline report")
	}
	ri, rp := implicit.Render(), pinned.Render()
	if ri != rp {
		t.Errorf("renderings differ:\nimplicit:\n%s\nexplicit:\n%s", ri, rp)
	}
	if strings.Contains(ri, "Per variant") {
		t.Error("baseline-only farm rendering grew a variant table; pre-variant reports had none")
	}
	for _, res := range implicit.Jobs {
		if res.Job.Variant != VariantBaseline {
			t.Errorf("job %v not attributed to the baseline variant", res.Job)
		}
		if want := legacySeed(7, res.Job.Device, res.Job.Kind, res.Job.Shard); res.Job.Seed != want {
			t.Errorf("job %v seed %d differs from the pre-variant derivation %d",
				res.Job, res.Job.Seed, want)
		}
		if got, want := res.Job.String(), res.Job.Device+"×"+string(res.Job.Kind); !strings.HasPrefix(got, want+"/") {
			t.Errorf("baseline job renders as %q, want the pre-variant %q form", got, want+"/<shard>")
		}
	}
}

// TestVariantSaltedSeeds pins the variant axis of the seed derivation:
// non-baseline variants produce distinct streams per cell, while the
// baseline keeps the unsalted seed.
func TestVariantSaltedSeeds(t *testing.T) {
	cfg, err := Config{BaseSeed: 99, Variants: AblationVariants()}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	jobs := buildJobs(cfg)
	if want := 8 * 1 * len(AblationVariants()) * 1; len(jobs) != want {
		t.Fatalf("matrix has %d jobs, want %d", len(jobs), want)
	}
	seeds := make(map[int64]Job)
	for _, j := range jobs {
		if prev, dup := seeds[j.Seed]; dup {
			t.Errorf("jobs %v and %v share seed %d", prev, j, j.Seed)
		}
		seeds[j.Seed] = j
		legacy := legacySeed(99, j.Device, j.Kind, j.Shard)
		if j.Variant == VariantBaseline && j.Seed != legacy {
			t.Errorf("baseline job %v salted: seed %d, want legacy %d", j, j.Seed, legacy)
		}
		if j.Variant != VariantBaseline && j.Seed == legacy {
			t.Errorf("variant job %v not salted away from the baseline stream", j)
		}
	}
}

// TestVariantMatrixWorkerIndependence is the satellite aggregator
// check: a variant-expanded matrix must snapshot identically at one and
// eight workers, rendering included.
func TestVariantMatrixWorkerIndependence(t *testing.T) {
	variantMatrix := func(workers int) Config {
		return Config{
			Devices:          []string{"D2", "D5"},
			Kinds:            []Kind{KindL2Fuzz, KindRFCOMM},
			Variants:         AblationVariants(),
			BaseSeed:         7,
			Workers:          workers,
			MaxPacketsPerJob: 10_000,
		}
	}
	serial, err := Run(variantMatrix(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(variantMatrix(8))
	if err != nil {
		t.Fatal(err)
	}
	// Wall time and pool size are the only legitimately scheduling-
	// dependent fields.
	serial.ScrubWall()
	parallel.ScrubWall()
	serial.Workers, parallel.Workers = 0, 0
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("variant-expanded reports differ between worker counts")
	}
	if a, b := serial.Render(), parallel.Render(); a != b {
		t.Errorf("variant-expanded renderings differ:\nserial:\n%s\nparallel:\n%s", a, b)
	}
	if len(serial.PerVariant) != len(AblationVariants()) {
		t.Errorf("PerVariant has %d rows, want %d", len(serial.PerVariant), len(AblationVariants()))
	}
}

// TestAblationFarmReproducesBenchOrdering is the acceptance criterion:
// one measurement-grade farm over the §IV-D grid must reproduce the
// bench ablation ordering — the baseline beats each ablated variant on
// the metric the ablated design choice claims to improve — from a
// single Report's per-variant table.
func TestAblationFarmReproducesBenchOrdering(t *testing.T) {
	rep, err := Run(Config{
		Devices:          []string{"D2"},
		Variants:         AblationVariants(),
		BaseSeed:         11,
		Workers:          4,
		MaxPacketsPerJob: 40_000,
		MeasurementGrade: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("%d jobs failed: %+v", rep.Failed, rep.Jobs)
	}
	get := func(name string) *VariantStats {
		g := rep.PerVariant[name]
		if g == nil {
			t.Fatalf("PerVariant missing %q: %+v", name, rep.PerVariant)
		}
		if g.Jobs != 1 || g.Metrics.Transmitted == 0 {
			t.Fatalf("variant %q not measured: %+v", name, g)
		}
		return g
	}
	baseline := get(VariantBaseline)
	noGuide := get(VariantNoStateGuiding)
	allFields := get(VariantAllFields)
	noGarbage := get(VariantNoGarbage)

	// State guiding earns its place on state coverage (paper Fig. 10).
	if baseline.Metrics.StatesCovered <= noGuide.Metrics.StatesCovered {
		t.Errorf("baseline states %d not above no-state-guiding %d",
			baseline.Metrics.StatesCovered, noGuide.Metrics.StatesCovered)
	}
	// Core-field-only mutation earns its place on the MP ratio (Table VII).
	if baseline.Metrics.MPRatio <= allFields.Metrics.MPRatio {
		t.Errorf("baseline MP %.4f not above all-fields %.4f",
			baseline.Metrics.MPRatio, allFields.Metrics.MPRatio)
	}
	// The garbage tail earns its place on the MP ratio too.
	if baseline.Metrics.MPRatio <= noGarbage.Metrics.MPRatio {
		t.Errorf("baseline MP %.4f not above no-garbage %.4f",
			baseline.Metrics.MPRatio, noGarbage.Metrics.MPRatio)
	}
	// The report must carry the grid as one table.
	render := rep.Render()
	if !strings.Contains(render, "Per variant") {
		t.Error("ablation farm rendering has no variant table")
	}
	for _, name := range rep.Variants {
		if !strings.Contains(render, name) {
			t.Errorf("variant table missing row for %q:\n%s", name, render)
		}
	}
}

// TestVariantOverridesApply checks the override hooks reach every
// fuzzer kind: a packet-budget override must shrink an L2Fuzz job, an
// RFCOMM override an RFCOMM job, and a campaign override (plus the Core
// hook chained through campaign.MutateFuzz) a campaign job.
func TestVariantOverridesApply(t *testing.T) {
	tiny := Config{
		Devices: []string{"D4"},
		Kinds:   []Kind{KindL2Fuzz, KindRFCOMM, KindCampaign},
		Variants: []Variant{{
			Name:     "tiny",
			Core:     func(c *core.Config) { c.MaxPackets = 500 },
			RFCOMM:   func(c *rfcommfuzz.Config) { c.MaxFrames = 500 },
			Campaign: func(c *campaign.Config) { c.MaxRuns = 1 },
		}},
		BaseSeed:         7,
		Workers:          2,
		MaxPacketsPerJob: 20_000,
		CampaignRuns:     3,
	}
	rep, err := Run(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("%d jobs failed: %+v", rep.Failed, rep.Jobs)
	}
	for _, res := range rep.Jobs {
		// Every kind's budget was overridden to at most 500 packets per
		// run, far below the 20k matrix default: the override provably
		// reached each runner (campaign: 1 run × Core-capped budget).
		if res.PacketsSent > 1_000 {
			t.Errorf("%v sent %d packets; override did not apply", res.Job, res.PacketsSent)
		}
		if got, want := res.Job.String(), "[tiny]"; !strings.Contains(got, want) {
			t.Errorf("job renders as %q, want the variant tag %q", got, want)
		}
	}
}

func TestVariantValidation(t *testing.T) {
	if _, err := Run(Config{Variants: []Variant{{Name: ""}}}); err == nil {
		t.Error("empty variant name accepted")
	}
	if _, err := Run(Config{Variants: []Variant{BaselineVariant(), BaselineVariant()}}); err == nil {
		t.Error("duplicate variant accepted")
	}
	if _, err := VariantByName("no-such-variant"); err == nil {
		t.Error("unknown variant name resolved")
	}
	for _, v := range AblationVariants() {
		got, err := VariantByName(v.Name)
		if err != nil || got.Name != v.Name {
			t.Errorf("VariantByName(%q) = %+v, %v", v.Name, got, err)
		}
	}
}
