package fleet

import (
	"fmt"

	"l2fuzz/internal/bt/host"
	"l2fuzz/internal/bt/l2cap"
	"l2fuzz/internal/bt/sm"
	"l2fuzz/internal/campaign"
	"l2fuzz/internal/core"
	"l2fuzz/internal/fuzzers"
	"l2fuzz/internal/fuzzers/bfuzz"
	"l2fuzz/internal/fuzzers/bss"
	"l2fuzz/internal/fuzzers/defensics"
	"l2fuzz/internal/rfcommfuzz"
	"l2fuzz/internal/testbed"
)

// Engine is one schedulable fuzzer kind: the behaviour behind a Kind
// value. The farm itself is engine-agnostic — rig construction, variant
// resolution, seed derivation, corpus recording, telemetry, journaling
// and reporting all go through this interface, so a new engine slots
// into every farm surface by registering itself and nothing else.
type Engine interface {
	// Kind is the engine's matrix identity: the value jobs, reports,
	// journals and corpus entries carry.
	Kind() Kind
	// ProducesFindings reports whether the engine has a detection phase.
	// Engines without one (the paper's comparison baselines) contribute
	// traffic and metrics but never classified findings, so corpus-backed
	// farms skip trace recording for their jobs.
	ProducesFindings() bool
	// NeedsRFCOMM reports whether the engine fuzzes over RFCOMM: its
	// rigs get the RFCOMM-capable testbed variant (serial services
	// mounted when the spec brings none, RFCOMM port pairing-free, and —
	// on defect-armed farms — the reserved-DLCI mux defect).
	NeedsRFCOMM() bool
	// TraceBudget estimates the engine's total traffic for one job from
	// the job's unresolved packet budget, sizing the repro-trace
	// recorder before variant hooks run. Engines whose runners raise the
	// budget afterwards call ensureTraceLimit with the resolved figure.
	TraceBudget(cfg Config, job Job) int
	// Run executes the job on its private rig, folding the outcome into
	// res. Run reports failures through res.Err, never by panicking: one
	// failed cell must not bring the farm down.
	Run(cfg Config, r *testbed.Rig, job Job, v Variant, res *JobResult)
}

// The engine registry. engineOrder fixes report order (the order
// engines registered in); engineIndex resolves kinds at dispatch time.
var (
	engineOrder []Engine
	engineIndex = make(map[Kind]Engine)
)

// RegisterEngine adds an engine to the registry. Registration order is
// report order: AllKinds, the per-fuzzer report table and
// FindingRecord.Kinds all list kinds as registered. Registering two
// engines under one kind is a programming error and panics.
func RegisterEngine(e Engine) {
	k := e.Kind()
	if _, dup := engineIndex[k]; dup {
		panic(fmt.Sprintf("fleet: engine kind %q registered twice", k))
	}
	engineIndex[k] = e
	engineOrder = append(engineOrder, e)
}

// EngineFor resolves a kind to its registered engine.
func EngineFor(k Kind) (Engine, bool) {
	e, ok := engineIndex[k]
	return e, ok
}

// AllKinds returns every registered kind in report order.
func AllKinds() []Kind {
	kinds := make([]Kind, len(engineOrder))
	for i, e := range engineOrder {
		kinds[i] = e.Kind()
	}
	return kinds
}

// The built-in engines, in report order: the paper's four compared
// fuzzers, the two §V extensions, and the scenario-diversity engines
// over the SDP and state-machine surfaces. New kinds append after the
// existing six so historical reports (which iterate AllKinds) render
// byte-identically.
func init() {
	RegisterEngine(l2fuzzEngine{})
	RegisterEngine(baselineEngine{kind: KindDefensics,
		build: func(cl *host.Client, seed int64) fuzzers.Fuzzer { return defensics.New(cl, seed) }})
	RegisterEngine(baselineEngine{kind: KindBFuzz,
		build: func(cl *host.Client, seed int64) fuzzers.Fuzzer { return bfuzz.New(cl, seed) }})
	RegisterEngine(baselineEngine{kind: KindBSS,
		build: func(cl *host.Client, seed int64) fuzzers.Fuzzer { return bss.New(cl, seed) }})
	RegisterEngine(rfcommEngine{})
	RegisterEngine(campaignEngine{})
}

// l2fuzzEngine runs the paper's fuzzer: state-guided, core-field-aware
// L2CAP signaling mutation with liveness detection.
type l2fuzzEngine struct{}

func (l2fuzzEngine) Kind() Kind                          { return KindL2Fuzz }
func (l2fuzzEngine) ProducesFindings() bool              { return true }
func (l2fuzzEngine) NeedsRFCOMM() bool                   { return false }
func (l2fuzzEngine) TraceBudget(cfg Config, job Job) int { return job.MaxPackets }

func (l2fuzzEngine) Run(cfg Config, r *testbed.Rig, job Job, v Variant, res *JobResult) {
	fcfg := core.DefaultConfig(job.Seed)
	fcfg.MaxPackets = job.MaxPackets
	if v.Core != nil {
		v.Core(&fcfg)
	}
	// Telemetry wires after the variant hook so a variant cannot
	// accidentally detach the farm's counters.
	fcfg.Counters = cfg.Counters
	budget := fcfg.MaxPackets
	if budget <= 0 {
		// Mirror the runner's zero-means-default normalization, or a
		// hook zeroing the cap would shrink the trace limit while the
		// run grows to the library default.
		budget = core.DefaultMaxPackets
	}
	ensureTraceLimit(r, budget)
	report, err := core.New(r.Client, fcfg).Run(r.Device.Address())
	if err != nil {
		res.Err = err
		return
	}
	res.PacketsSent = report.PacketsSent
	res.Elapsed = report.Elapsed
	if report.Found {
		res.Findings = []Occurrence{{Finding: report.Finding, Count: 1, Dump: crashDump(r.Device)}}
	}
}

// baselineEngine runs one of the comparison fuzzers. Baselines have no
// detection phase — the paper's evaluation found none of the zero-days
// with them — so they contribute traffic, metrics and (at most) a
// crashed-device flag, never classified findings. They expose no
// configuration knobs either, so a variant only distinguishes their
// jobs through its seed salt.
type baselineEngine struct {
	kind  Kind
	build func(cl *host.Client, seed int64) fuzzers.Fuzzer
}

func (e baselineEngine) Kind() Kind                        { return e.kind }
func (baselineEngine) ProducesFindings() bool              { return false }
func (baselineEngine) NeedsRFCOMM() bool                   { return false }
func (baselineEngine) TraceBudget(cfg Config, job Job) int { return job.MaxPackets }

func (e baselineEngine) Run(cfg Config, r *testbed.Rig, job Job, v Variant, res *JobResult) {
	result, err := e.build(r.Client, job.Seed).Run(r.Device.Address(), job.MaxPackets)
	if err != nil {
		res.Err = err
		return
	}
	res.PacketsSent = result.PacketsSent
	res.Elapsed = result.Elapsed
}

// rfcommEngine runs the §V RFCOMM extension fuzzer. A mux death maps
// into the shared signature space as an Open-state finding on the
// RFCOMM port: Connection Aborted when L2CAP survived the mux (the
// paper's layer-isolation observation), Connection Reset when the whole
// stack went with it.
type rfcommEngine struct{}

func (rfcommEngine) Kind() Kind                          { return KindRFCOMM }
func (rfcommEngine) ProducesFindings() bool              { return true }
func (rfcommEngine) NeedsRFCOMM() bool                   { return true }
func (rfcommEngine) TraceBudget(cfg Config, job Job) int { return job.MaxPackets }

func (rfcommEngine) Run(cfg Config, r *testbed.Rig, job Job, v Variant, res *JobResult) {
	fcfg := rfcommfuzz.DefaultConfig(job.Seed)
	fcfg.MaxFrames = job.MaxPackets
	if v.RFCOMM != nil {
		v.RFCOMM(&fcfg)
	}
	budget := fcfg.MaxFrames
	if budget <= 0 {
		// Mirror the runner's zero-means-default normalization.
		budget = rfcommfuzz.DefaultConfig(job.Seed).MaxFrames
	}
	ensureTraceLimit(r, budget)
	report, err := rfcommfuzz.New(r.Client, fcfg).Run(r.Device.Address())
	if err != nil {
		res.Err = err
		return
	}
	res.PacketsSent = report.FramesSent
	res.Elapsed = report.Elapsed
	if report.Found {
		class := core.ErrConnectionReset
		if report.L2CAPAlive {
			class = core.ErrConnectionAborted
		}
		res.Findings = []Occurrence{{
			Finding: core.Finding{
				Time:           report.Elapsed,
				Error:          class,
				State:          sm.StateOpen,
				PSM:            l2cap.PSMRFCOMM,
				Trace:          report.Trace,
				TraceTruncated: report.TraceTruncated,
			},
			Count: 1,
			Dump:  crashDump(r.Device),
		}}
	}
}

// campaignEngine runs the §V long-term campaign extension: repeated
// fuzzing runs with automatic device resets and cross-run finding
// de-duplication.
type campaignEngine struct{}

func (campaignEngine) Kind() Kind             { return KindCampaign }
func (campaignEngine) ProducesFindings() bool { return true }
func (campaignEngine) NeedsRFCOMM() bool      { return false }

// TraceBudget covers every campaign run: the recorder must hold the
// worst case of a whole job's traffic landing in one trace epoch.
func (campaignEngine) TraceBudget(cfg Config, job Job) int {
	return job.MaxPackets * cfg.CampaignRuns
}

func (campaignEngine) Run(cfg Config, r *testbed.Rig, job Job, v Variant, res *JobResult) {
	ccfg := campaign.DefaultConfig(job.Seed)
	ccfg.MaxRuns = cfg.CampaignRuns
	ccfg.MaxPacketsPerRun = job.MaxPackets
	if v.Campaign != nil {
		v.Campaign(&ccfg)
	}
	if v.Core != nil {
		// Chain behind any hook the Campaign override installed, so both
		// see each run's config.
		prev := ccfg.MutateFuzz
		ccfg.MutateFuzz = func(fc *core.Config) {
			if prev != nil {
				prev(fc)
			}
			v.Core(fc)
		}
	}
	if cfg.Counters != nil {
		// Chain last so every per-run core config carries the farm's
		// counters, whatever the variant hooks rewrote.
		prev := ccfg.MutateFuzz
		ctr := cfg.Counters
		ccfg.MutateFuzz = func(fc *core.Config) {
			if prev != nil {
				prev(fc)
			}
			fc.Counters = ctr
		}
	}
	// Resolve the traffic budget the way the campaign runner will —
	// zero-valued knobs fall back to campaign defaults, then the chained
	// per-run hook applies — so the trace recorder is sized for the
	// worst case of a whole run landing in one trace epoch.
	resolved := ccfg
	def := campaign.DefaultConfig(ccfg.Seed)
	if resolved.MaxRuns <= 0 {
		resolved.MaxRuns = def.MaxRuns
	}
	if resolved.MaxPacketsPerRun <= 0 {
		resolved.MaxPacketsPerRun = def.MaxPacketsPerRun
	}
	perRun := core.DefaultConfig(job.Seed)
	perRun.MaxPackets = resolved.MaxPacketsPerRun
	if ccfg.MutateFuzz != nil {
		ccfg.MutateFuzz(&perRun)
	}
	if perRun.MaxPackets <= 0 {
		perRun.MaxPackets = core.DefaultMaxPackets
	}
	ensureTraceLimit(r, resolved.MaxRuns*perRun.MaxPackets)
	report, err := campaign.New(r.Client, r.Device, ccfg).Run()
	if err != nil {
		res.Err = err
		return
	}
	res.PacketsSent = report.TotalPackets
	res.Elapsed = report.TotalElapsed
	for _, f := range report.Findings {
		res.Findings = append(res.Findings, Occurrence{Finding: f.Finding, Count: f.Count, Dump: f.Dump})
	}
}
