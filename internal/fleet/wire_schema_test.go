package fleet

import (
	"encoding/json"
	"os"
	"sort"
	"strings"
	"testing"
)

// TestWireSchemaGolden pins the worker wire protocol's message schema:
// the union of JSON field paths (with value kinds) per message type,
// over a finding-producing job matrix executed through workerRun — the
// exact code path a worker subprocess runs. A message gaining, losing
// or re-typing a field is a protocol change and must regenerate the
// golden deliberately (and bump wireVersion when old peers would
// mis-read the frames).
func TestWireSchemaGolden(t *testing.T) {
	paths := make(map[string]bool)
	flatten := func(prefix string, v any) {
		data, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("marshal %s: %v", prefix, err)
		}
		var decoded any
		if err := json.Unmarshal(data, &decoded); err != nil {
			t.Fatalf("unmarshal %s: %v", prefix, err)
		}
		flattenJSON(prefix, decoded, paths)
	}

	flatten("hello", wireHello{Version: wireVersion, PID: 4242})
	fc := wireFarm{Version: wireVersion, CampaignRuns: 2, Record: true, Counters: true}
	full := fc
	full.MeasurementGrade = true
	flatten("farm", full)

	cfg, err := journalMatrix(1).withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	findings := 0
	for _, job := range buildJobs(cfg) {
		wj := toWireJob(job)
		flatten("job", wj)
		wr := workerRun(fc, wj)
		if wr.Err != "" {
			t.Fatalf("job %d failed: %s", wj.Index, wr.Err)
		}
		findings += len(wr.Findings)
		flatten("result", wr)
	}
	if findings == 0 {
		t.Fatal("matrix produced no findings; the occurrence schema would be unpinned")
	}
	// An errored result, for the err field omitempty hides on success.
	bogus := toWireJob(buildJobs(cfg)[0])
	bogus.Kind = Kind("no-such-kind")
	if wr := workerRun(fc, bogus); wr.Err == "" {
		t.Fatal("bogus kind produced no error; the err schema would be unpinned")
	} else {
		flatten("result", wr)
	}

	sorted := make([]string, 0, len(paths))
	for p := range paths {
		sorted = append(sorted, p)
	}
	sort.Strings(sorted)
	got := strings.Join(sorted, "\n") + "\n"

	golden := "testdata/wire_schema.golden"
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (rerun with -update to regenerate): %v", err)
	}
	if got != string(want) {
		t.Errorf("wire schema drifted from golden:\ngot:\n%s\nwant:\n%s", got, want)
	}
}
