package fleet

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
	"time"

	"l2fuzz/internal/fleet/wire"
)

// ProcConfig configures a ProcExecutor.
type ProcConfig struct {
	// Procs is the worker subprocess count. Zero means the farm's
	// resolved Workers count. The farm runs at most Config.Workers jobs
	// in flight, so extra workers beyond that idle.
	Procs int
	// Command is the argv spawning one worker; the spawned process must
	// run the wire protocol on its stdin/stdout (RunWorker). Empty means
	// re-exec this binary with the single argument "-worker" — the
	// cmd/l2farm convention.
	Command []string
	// Env entries are appended to the parent environment of every
	// spawned worker.
	Env []string
	// JobDeadline bounds one job's wall time on a worker. A worker
	// exceeding it is killed, which surfaces as a transport failure the
	// farm answers by requeueing the job. Zero means no deadline.
	JobDeadline time.Duration
}

// ProcExecutor runs jobs on a pool of worker subprocesses, one job in
// flight per worker, shipping jobs and results over the wire protocol.
// Workers are spawned at Start and shut down cleanly at Close (their
// job stream ends). A worker that dies or desynchronizes mid-run is
// retired, never respawned: the farm degrades to the surviving workers
// and requeues the lost job, and when no worker is left Execute returns
// ErrNoWorkers.
//
// Variants cross the process boundary by name only. Start rejects
// configs whose hook-carrying variants are not the predefined ablation
// variants (VariantByName resolves those on the worker side); a custom
// variant that reuses a predefined name silently gets the predefined
// hooks instead, so don't do that.
type ProcExecutor struct {
	pc  ProcConfig
	cfg Config

	notify func(WorkerEvent)

	mu         sync.Mutex
	workers    []*procWorker
	live       int
	deadClosed bool
	closed     bool

	idle   chan *procWorker
	deadCh chan struct{}
}

// procWorker is one worker subprocess with its framed pipes.
type procWorker struct {
	id    string
	cmd   *exec.Cmd
	stdin io.Closer
	enc   *wire.Encoder
	dec   *wire.Decoder
	pid   int
	dead  bool
}

// NewProcExecutor returns an executor spawning workers per pc. Set it
// as Config.Executor; the farm starts and closes it.
func NewProcExecutor(pc ProcConfig) *ProcExecutor {
	return &ProcExecutor{pc: pc}
}

// setNotify installs the farm's worker-retirement sink.
func (e *ProcExecutor) setNotify(fn func(WorkerEvent)) { e.notify = fn }

// workerIDs lists the live workers' ids for the farm's up events.
func (e *ProcExecutor) workerIDs() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	ids := make([]string, 0, len(e.workers))
	for _, w := range e.workers {
		if !w.dead {
			ids = append(ids, w.id)
		}
	}
	return ids
}

// Start validates the config against the process boundary and spawns
// the worker pool. A worker that fails to spawn or handshake fails the
// whole Start; the farm surfaces that instead of limping from the off.
func (e *ProcExecutor) Start(cfg Config) error {
	for _, v := range cfg.Variants {
		if v.Core != nil || v.RFCOMM != nil || v.Campaign != nil || v.SDP != nil || v.SM != nil {
			if _, err := VariantByName(v.Name); err != nil {
				return fmt.Errorf("fleet: variant %q carries behaviour hooks, which cannot cross the worker process boundary (only the predefined ablation variants resolve by name on workers)", v.Name)
			}
		}
	}
	e.cfg = cfg
	procs := e.pc.Procs
	if procs <= 0 {
		procs = cfg.Workers
	}
	fc := wireFarm{
		Version:          wireVersion,
		MeasurementGrade: cfg.MeasurementGrade,
		CampaignRuns:     cfg.CampaignRuns,
		Record:           cfg.Corpus != nil,
		Counters:         cfg.Counters != nil,
	}
	e.idle = make(chan *procWorker, procs)
	e.deadCh = make(chan struct{})
	for i := 0; i < procs; i++ {
		w, err := e.spawn(i, fc)
		if err != nil {
			e.Close()
			return err
		}
		e.mu.Lock()
		e.workers = append(e.workers, w)
		e.live++
		e.mu.Unlock()
		e.idle <- w
	}
	return nil
}

// spawn launches one worker and completes the hello/config handshake.
func (e *ProcExecutor) spawn(i int, fc wireFarm) (*procWorker, error) {
	argv := e.pc.Command
	if len(argv) == 0 {
		self, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("fleet: resolve worker binary: %w", err)
		}
		argv = []string{self, "-worker"}
	}
	cmd := exec.Command(argv[0], argv[1:]...)
	cmd.Env = append(os.Environ(), e.pc.Env...)
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, fmt.Errorf("fleet: worker stdin: %w", err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("fleet: worker stdout: %w", err)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("fleet: spawn worker: %w", err)
	}
	w := &procWorker{
		id:    fmt.Sprintf("proc/%d", i),
		cmd:   cmd,
		stdin: stdin,
		enc:   wire.NewEncoder(stdin),
		dec:   wire.NewDecoder(stdout),
	}
	fail := func(err error) (*procWorker, error) {
		cmd.Process.Kill()
		stdin.Close()
		cmd.Wait()
		return nil, err
	}
	var hello wireHello
	if err := w.dec.Decode(&hello); err != nil {
		return fail(fmt.Errorf("fleet: worker %s sent no hello: %w", w.id, err))
	}
	if hello.Version != wireVersion {
		return fail(fmt.Errorf("fleet: worker %s speaks wire version %d, this coordinator version %d", w.id, hello.Version, wireVersion))
	}
	w.pid = hello.PID
	if err := w.enc.Encode(fc); err != nil {
		return fail(fmt.Errorf("fleet: worker %s rejected farm config: %w", w.id, err))
	}
	return w, nil
}

// Execute ships the job to an idle worker and waits for its result. A
// transport failure retires the worker and is returned for the farm to
// requeue the job elsewhere.
func (e *ProcExecutor) Execute(ctx context.Context, job Job) (JobResult, error) {
	w, err := e.acquire(ctx)
	if err != nil {
		return JobResult{}, err
	}
	res, err := e.runOn(w, job)
	if err != nil {
		e.retire(w, err.Error())
		return JobResult{}, fmt.Errorf("fleet: worker %s: %w", w.id, err)
	}
	e.idle <- w
	return res, nil
}

// acquire takes an idle worker, preferring one over noticing that the
// pool has died.
func (e *ProcExecutor) acquire(ctx context.Context) (*procWorker, error) {
	select {
	case w := <-e.idle:
		return w, nil
	default:
	}
	select {
	case w := <-e.idle:
		return w, nil
	case <-e.deadCh:
		return nil, ErrNoWorkers
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// runOn runs one job on one worker. Any error is a transport failure:
// the worker's pipes are no longer trustworthy.
func (e *ProcExecutor) runOn(w *procWorker, job Job) (JobResult, error) {
	wj := toWireJob(job)
	// The span's Started phase begins as the job hits the wire: the
	// worker echoes the offset back (a desync check) and adds its own
	// measured execution time, so the coordinator can split this job's
	// wall into transport vs execute.
	wj.StartedNs = sinceEpoch(e.cfg.epoch, time.Now())
	if err := w.enc.Encode(wj); err != nil {
		return JobResult{}, fmt.Errorf("send job: %w", err)
	}
	var timer *time.Timer
	if d := e.pc.JobDeadline; d > 0 {
		// Killing the process closes its pipes, which unblocks the
		// decode below — the deadline needs no second reader.
		proc := w.cmd.Process
		timer = time.AfterFunc(d, func() { proc.Kill() })
	}
	var wr wireResult
	err := w.dec.Decode(&wr)
	if timer != nil {
		timer.Stop()
	}
	if err != nil {
		return JobResult{}, fmt.Errorf("read result: %w", err)
	}
	if wr.Index != job.Index {
		return JobResult{}, fmt.Errorf("answered job %d while running job %d", wr.Index, job.Index)
	}
	if wr.StartedNs != wj.StartedNs {
		return JobResult{}, fmt.Errorf("answered span %v while running span %v of job %d", wr.StartedNs, wj.StartedNs, job.Index)
	}
	if wr.Counters != nil {
		// Fold the worker's per-job telemetry delta into the farm's
		// counters — the subprocess form of runJob's local-merge.
		e.cfg.Counters.Merge(*wr.Counters)
	}
	return fromWireResult(wr, job, w.id), nil
}

// markDead transitions one worker to dead; reports false if it already
// was. The last live worker's death closes deadCh.
func (e *ProcExecutor) markDead(w *procWorker) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if w.dead {
		return false
	}
	w.dead = true
	e.live--
	if e.live == 0 && !e.deadClosed {
		e.deadClosed = true
		close(e.deadCh)
	}
	return true
}

// retire takes a failed worker out of circulation: kill, reap, notify.
func (e *ProcExecutor) retire(w *procWorker, reason string) {
	if !e.markDead(w) {
		return
	}
	w.cmd.Process.Kill()
	w.stdin.Close()
	w.cmd.Wait()
	if e.notify != nil {
		e.notify(WorkerEvent{Worker: w.id, Err: reason})
	}
}

// KillOne kills the OS process of one live worker — the chaos hook the
// robustness tests use to simulate a worker crash. Only the process
// dies here; the executor notices at the worker's next use, retires it
// then, and the farm requeues the affected job. Returns the victim's
// id, or "" when no worker is live.
func (e *ProcExecutor) KillOne() string {
	e.mu.Lock()
	var victim *procWorker
	for _, w := range e.workers {
		if !w.dead {
			victim = w
			break
		}
	}
	e.mu.Unlock()
	if victim == nil {
		return ""
	}
	victim.cmd.Process.Kill()
	return victim.id
}

// Close shuts the pool down cleanly: each surviving worker's job stream
// ends (stdin closes), the worker exits, and its clean retirement is
// reported. Idempotent.
func (e *ProcExecutor) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	workers := append([]*procWorker(nil), e.workers...)
	e.mu.Unlock()
	for _, w := range workers {
		if !e.markDead(w) {
			continue
		}
		w.stdin.Close()
		err := w.cmd.Wait()
		ev := WorkerEvent{Worker: w.id}
		if err != nil {
			ev.Err = err.Error()
		}
		if e.notify != nil {
			e.notify(ev)
		}
	}
	return nil
}
