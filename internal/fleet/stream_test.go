package fleet

import (
	"hash/fnv"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// TestStreamingMatchesBatch is the tentpole acceptance criterion: the
// same matrix consumed via the event stream then snapshotted must equal
// the batch Run report — byte-identical once rendered — at one worker
// and at eight.
func TestStreamingMatchesBatch(t *testing.T) {
	for _, workers := range []int{1, 8} {
		batch, err := Run(fullMatrix(workers))
		if err != nil {
			t.Fatal(err)
		}
		farm, err := Start(fullMatrix(workers))
		if err != nil {
			t.Fatal(err)
		}
		for range farm.Events() {
			// Drain: the stream is the only signal a streaming consumer
			// gets; aggregation must not depend on what it does with it.
		}
		streamed := farm.Wait()

		batch.ScrubWall()
		streamed.ScrubWall()
		if !reflect.DeepEqual(batch, streamed) {
			t.Errorf("workers=%d: streamed report differs from batch report", workers)
		}
		if b, s := batch.Render(), streamed.Render(); b != s {
			t.Errorf("workers=%d: rendered reports differ:\nbatch:\n%s\nstreamed:\n%s", workers, b, s)
		}
	}
}

// TestEventStreamShape pins the stream contract: one JobStarted and one
// JobDone per matrix job, JobDone progress counts serialized 1..n, and
// exactly one NewFinding per de-duplicated finding of the final report.
func TestEventStreamShape(t *testing.T) {
	farm, err := Start(fullMatrix(4))
	if err != nil {
		t.Fatal(err)
	}
	started, done, findings := 0, 0, 0
	for ev := range farm.Events() {
		if ev.Total != farm.total {
			t.Fatalf("event Total = %d, want %d", ev.Total, farm.total)
		}
		switch ev.Type {
		case EventJobStarted:
			started++
		case EventJobDone:
			done++
			if ev.Done != done {
				t.Fatalf("JobDone progress %d at consumption position %d", ev.Done, done)
			}
			if ev.Result == nil || ev.Result.Job != ev.Job {
				t.Fatalf("JobDone without its result: %+v", ev)
			}
		case EventNewFinding:
			findings++
			if ev.Finding == nil {
				t.Fatalf("NewFinding without a finding: %+v", ev)
			}
		}
	}
	rep := farm.Wait()
	if started != len(rep.Jobs) || done != len(rep.Jobs) {
		t.Errorf("started/done events = %d/%d, want %d each", started, done, len(rep.Jobs))
	}
	if findings != len(rep.Findings) {
		t.Errorf("%d NewFinding events for %d de-duplicated findings", findings, len(rep.Findings))
	}
	if len(rep.Findings) == 0 {
		t.Error("matrix produced no findings; the NewFinding check would be vacuous")
	}
}

// TestLiveSnapshot takes a snapshot mid-stream and checks it is a
// consistent partial report that the final report extends.
func TestLiveSnapshot(t *testing.T) {
	farm, err := Start(fullMatrix(4))
	if err != nil {
		t.Fatal(err)
	}
	events := farm.Events()
	var mid *Report
	for ev := range events {
		if ev.Type == EventJobDone {
			mid = farm.Snapshot()
			break
		}
	}
	if mid == nil {
		t.Fatal("stream ended without a JobDone event")
	}
	if got := mid.Completed + mid.Failed; got < 1 || got > farm.total {
		t.Errorf("mid-stream snapshot folded %d jobs, want within [1, %d]", got, farm.total)
	}
	if mid.Render() == "" {
		t.Error("mid-stream snapshot does not render")
	}
	final := farm.Wait()
	if final.Completed+final.Failed != farm.total {
		t.Errorf("final report folded %d jobs, want %d", final.Completed+final.Failed, farm.total)
	}
	if mid.TotalPackets > final.TotalPackets {
		t.Errorf("snapshot packets %d exceed final %d", mid.TotalPackets, final.TotalPackets)
	}
}

// TestAggregatorFoldOrderIndependence feeds the same results to two
// aggregators in opposite orders: the snapshots must be identical,
// which is what makes the streaming farm scheduling-independent.
func TestAggregatorFoldOrderIndependence(t *testing.T) {
	rep, err := Run(fullMatrix(4))
	if err != nil {
		t.Fatal(err)
	}
	forward, err := NewAggregator(fullMatrix(4))
	if err != nil {
		t.Fatal(err)
	}
	backward, err := NewAggregator(fullMatrix(4))
	if err != nil {
		t.Fatal(err)
	}
	shuffled, err := NewAggregator(fullMatrix(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range rep.Jobs {
		forward.Add(res)
	}
	for i := len(rep.Jobs) - 1; i >= 0; i-- {
		backward.Add(rep.Jobs[i])
	}
	for _, i := range rand.New(rand.NewSource(1)).Perm(len(rep.Jobs)) {
		shuffled.Add(rep.Jobs[i])
	}
	a, b, c := forward.Snapshot(), backward.Snapshot(), shuffled.Snapshot()
	if !reflect.DeepEqual(a, b) || !reflect.DeepEqual(a, c) {
		t.Error("aggregator snapshots depend on fold order")
	}
	rep.Wall = 0 // the aggregator never stamps farm wall time
	if !reflect.DeepEqual(a, rep) {
		t.Error("re-folded snapshot differs from the original report")
	}
}

// TestAggregatorIgnoresDuplicateAndForeignResults: a result folded
// twice, or one whose index falls outside the matrix, must not skew the
// aggregate.
func TestAggregatorIgnoresDuplicateAndForeignResults(t *testing.T) {
	rep, err := Run(Config{
		Devices:          []string{"D4"},
		Kinds:            []Kind{KindBSS},
		BaseSeed:         1,
		Workers:          1,
		MaxPacketsPerJob: 2_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	agg, err := NewAggregator(Config{
		Devices:          []string{"D4"},
		Kinds:            []Kind{KindBSS},
		BaseSeed:         1,
		Workers:          1,
		MaxPacketsPerJob: 2_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := rep.Jobs[0]
	agg.Add(res)
	agg.Add(res) // duplicate
	foreign := res
	foreign.Job.Index = 99
	agg.Add(foreign) // outside the 1-job matrix
	snap := agg.Snapshot()
	if snap.Completed != 1 || snap.TotalPackets != res.PacketsSent {
		t.Errorf("duplicate/foreign folds skewed the aggregate: %+v", snap)
	}
}

// TestJobSeedNonNegative pins the sign-bit mask: even when the mixing
// lands exactly on math.MinInt64 — where negation would stay negative —
// the derived seed is non-negative.
func TestJobSeedNonNegative(t *testing.T) {
	// Reconstruct the device/kind hash so the base can be chosen to make
	// the mix land exactly on math.MinInt64 at shard 0.
	h := fnv.New64a()
	h.Write([]byte("D1"))
	h.Write([]byte{0})
	h.Write([]byte(KindL2Fuzz))
	mixPart := int64(h.Sum64() & 0x7FFF_FFFF_FFFF_FFFF)

	adversarial := math.MinInt64 ^ mixPart
	if got := jobSeed(adversarial, "D1", KindL2Fuzz, VariantBaseline, 0); got < 0 {
		t.Errorf("jobSeed(MinInt64 mix) = %d, want non-negative", got)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		base := int64(rng.Uint64())
		if got := jobSeed(base, "D1", KindL2Fuzz, VariantNoGarbage, i%5); got < 0 {
			t.Errorf("jobSeed(%d, shard %d) = %d, want non-negative", base, i%5, got)
		}
	}
}
