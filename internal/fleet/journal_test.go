package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"sort"
	"strings"
	"testing"

	"l2fuzz/internal/telemetry"
)

// journalMatrix is a small finding-producing matrix for the journal
// tests: two catalog devices across the three finding-capable kinds,
// two shards each.
func journalMatrix(workers int) Config {
	return Config{
		Devices:          []string{"D2", "D5"},
		Kinds:            []Kind{KindL2Fuzz, KindRFCOMM, KindCampaign},
		Shards:           2,
		BaseSeed:         7,
		Workers:          workers,
		MaxPacketsPerJob: 20_000,
		CampaignRuns:     2,
	}
}

// TestJournalReplayReproducesReport is the tentpole's acceptance
// criterion: folding a persisted journal back through ReplayJournal
// must reproduce the live farm's Report — including the per-job wall
// times read back from the journal — byte-identically in its rendered
// form and deeply equal as a structure. Only the farm-level Wall is
// exempt: the live farm stamps it from its own clock.
func TestJournalReplayReproducesReport(t *testing.T) {
	var buf bytes.Buffer
	cfg := journalMatrix(4)
	cfg.Journal = telemetry.NewJournal(&buf)
	live, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Journal.Err(); err != nil {
		t.Fatalf("journal error after run: %v", err)
	}
	if len(live.Findings) == 0 {
		t.Fatal("matrix produced no findings; the replay comparison would be vacuous")
	}

	replayed, err := ReplayJournal(journalMatrix(4), bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	live.Wall = 0
	if !reflect.DeepEqual(live, replayed) {
		t.Errorf("replayed report differs from live report:\nlive:     %+v\nreplayed: %+v", live, replayed)
	}
	if l, r := live.Render(), replayed.Render(); l != r {
		t.Errorf("rendered reports differ:\nlive:\n%s\nreplayed:\n%s", l, r)
	}
	if live.TotalJobWall == 0 {
		t.Error("live report has no summed job wall time; the wall comparison was vacuous")
	}
}

// TestJournalReplayRejectsMismatches pins the replay guardrails: a
// journal must carry a farm header and that header must describe the
// matrix the replay config builds.
func TestJournalReplayRejectsMismatches(t *testing.T) {
	var buf bytes.Buffer
	cfg := journalMatrix(2)
	cfg.Journal = telemetry.NewJournal(&buf)
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}

	wrong := journalMatrix(2)
	wrong.Shards = 1
	if _, err := ReplayJournal(wrong, bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("replay with a mismatched matrix succeeded")
	}
	if _, err := ReplayJournal(journalMatrix(2), strings.NewReader("")); err == nil {
		t.Error("replay of an empty journal succeeded")
	}
}

// TestJournalSchemaGolden pins the journal's record schema: the union
// of JSON field paths (with value kinds) per record type, over a
// finding-producing farm plus a counter sample. A record gaining,
// losing or re-typing a field must regenerate the golden deliberately.
func TestJournalSchemaGolden(t *testing.T) {
	var buf bytes.Buffer
	cfg := journalMatrix(4)
	cfg.Journal = telemetry.NewJournal(&buf)
	cfg.Counters = &telemetry.Counters{}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) == 0 {
		t.Fatal("matrix produced no findings; the finding record schema would be unpinned")
	}
	if err := cfg.Journal.Sample(cfg.Counters); err != nil {
		t.Fatal(err)
	}

	paths := make(map[string]bool)
	err = telemetry.DecodeJournal(bytes.NewReader(buf.Bytes()), func(rec telemetry.Record) error {
		var payload any
		if err := json.Unmarshal(rec.Data, &payload); err != nil {
			return err
		}
		flattenJSON(rec.Type, payload, paths)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sorted := make([]string, 0, len(paths))
	for p := range paths {
		sorted = append(sorted, p)
	}
	sort.Strings(sorted)
	got := strings.Join(sorted, "\n") + "\n"

	golden := "testdata/journal_schema.golden"
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (rerun with -update to regenerate): %v", err)
	}
	if got != string(want) {
		t.Errorf("journal schema drifted from golden:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// flattenJSON records every field path of a decoded JSON value with its
// terminal kind, e.g. "job-done.summary.States[]:string".
func flattenJSON(prefix string, v any, out map[string]bool) {
	switch x := v.(type) {
	case map[string]any:
		for k, child := range x {
			flattenJSON(prefix+"."+k, child, out)
		}
	case []any:
		for _, child := range x {
			flattenJSON(prefix+"[]", child, out)
		}
	case string:
		out[prefix+":string"] = true
	case float64:
		out[prefix+":number"] = true
	case bool:
		out[prefix+":boolean"] = true
	case nil:
		out[prefix+":null"] = true
	default:
		out[fmt.Sprintf("%s:%T", prefix, v)] = true
	}
}
