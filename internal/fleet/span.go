package fleet

import "time"

// Span is one job's trace through the farm's execution phases, as
// monotonic offsets from the farm's start — the same clock origin the
// journal's record offsets and counter samples use, so a journal
// analyzer can place every phase of every job on one time axis.
//
// The phases, in order:
//
//	QueuedNs      the job entered the feed (zero for the initial
//	              enqueue at Start; the requeue time after a worker
//	              died under the job)
//	DispatchedNs  a dispatcher popped the job off the feed
//	StartedNs     the executor began executing it — for ProcExecutor,
//	              after an idle worker subprocess was acquired, as the
//	              job hit the wire
//	FinishedNs    the executor returned the result to the dispatcher
//
// ExecNs is the execution wall time measured inside the executor,
// around the job run itself: for LocalExecutor it spans runJob on the
// dispatcher goroutine; for ProcExecutor it is measured by the worker
// subprocess around its own runJob and shipped back in the result, so
// (FinishedNs-StartedNs)-ExecNs is the wire transport cost — encode,
// kernel pipe, decode — that in-process execution does not pay.
//
// Spans are measurements, not identity: ScrubWall zeroes them along
// with every other wall-clock field, so reports from different runs
// (or executors) still compare equal on everything deterministic.
type Span struct {
	QueuedNs     time.Duration `json:"queuedNs"`
	DispatchedNs time.Duration `json:"dispatchedNs"`
	StartedNs    time.Duration `json:"startedNs"`
	FinishedNs   time.Duration `json:"finishedNs"`
	ExecNs       time.Duration `json:"execNs"`
}

// QueueWait is how long the job sat in the feed before a dispatcher
// picked it up.
func (s Span) QueueWait() time.Duration { return clampDur(s.DispatchedNs - s.QueuedNs) }

// DispatchWait is how long the dispatcher took to begin execution —
// for ProcExecutor, the wait for an idle worker subprocess.
func (s Span) DispatchWait() time.Duration { return clampDur(s.StartedNs - s.DispatchedNs) }

// Execute is the in-executor execution time (ExecNs).
func (s Span) Execute() time.Duration { return clampDur(s.ExecNs) }

// Transport is the executor overhead around execution: time between
// Started and Finished not spent executing. Zero-ish for LocalExecutor;
// the wire codec and pipe cost for ProcExecutor.
func (s Span) Transport() time.Duration {
	return clampDur(s.FinishedNs - s.StartedNs - s.ExecNs)
}

// IsZero reports whether the span was never stamped (a hand-built
// JobResult, or a pre-span journal).
func (s Span) IsZero() bool { return s == Span{} }

func clampDur(d time.Duration) time.Duration {
	if d < 0 {
		return 0
	}
	return d
}

// sinceEpoch places t on the farm's span clock. A zero epoch (a
// hand-built config that never went through Start) yields zero offsets
// rather than nonsense ones.
func sinceEpoch(epoch, t time.Time) time.Duration {
	if epoch.IsZero() {
		return 0
	}
	return clampDur(t.Sub(epoch))
}
