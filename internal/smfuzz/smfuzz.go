// Package smfuzz fuzzes the target's L2CAP channel state machine
// directly: a model-guided walk over the specification's transition
// table (the paper's Table II, as encoded in internal/bt/sm).
//
// Where the L2Fuzz core steers the target into a state and then mutates
// packets in place, this engine makes the state machine itself the
// search space. A shadow sm.Machine mirrors what the specification says
// the target's channel should be doing; each step either
//
//   - follows the model: pick an event the current state accepts, send
//     the signaling command that raises it, and advance the shadow —
//     walking the machine through its legal regions; or
//   - defects from it: send a command the current state must reject, or
//     a command with endpoint fields the target never allocated.
//
// The payoff is the combination the table walk reaches on its own: a
// ConnectionReq on a real PSM parks the target's channel in a
// configuration job, and the next ConfigurationReq — endpoint scrambled
// to a CID the target never allocated, garbage appended — is exactly
// the shape of the BlueDroid CCB null dereference the paper's §IV-E
// reports. No packet mutation schedule needs to get lucky twice; the
// machine walk supplies the stateful half of the trigger every cycle.
//
// Liveness is probed with the L2CAP echo, as the paper's
// vulnerability-detecting phase does.
package smfuzz

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"l2fuzz/internal/bt/host"
	"l2fuzz/internal/bt/l2cap"
	"l2fuzz/internal/bt/radio"
	"l2fuzz/internal/bt/sm"
)

// Config parameterises a run.
type Config struct {
	// Seed drives all randomness.
	Seed int64
	// MaxGarbage bounds appended garbage tails.
	MaxGarbage int
	// MaxPackets caps the whole run.
	MaxPackets int
	// PingEvery probes liveness after every PingEvery commands.
	PingEvery int
	// ThinkTime is charged to the simulated clock per command.
	ThinkTime time.Duration
}

// DefaultConfig returns L2Fuzz-flavoured defaults.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:       seed,
		MaxGarbage: 16,
		MaxPackets: 50_000,
		PingEvery:  8,
		ThinkTime:  450 * time.Microsecond,
	}
}

// Report is the outcome of one run.
type Report struct {
	// Found reports whether the target died.
	Found bool
	// PacketsSent counts transmitted commands, probes included.
	PacketsSent int
	// Elapsed is the simulated run time.
	Elapsed time.Duration
	// FinalState is the shadow machine's state at detection (or at budget
	// exhaustion): where in the walk the target died.
	FinalState sm.State
	// StatesVisited lists the distinct states the shadow machine
	// occupied, in first-visit order: the walk's coverage.
	StatesVisited []sm.State
	// LastCommand describes the command sent just before detection.
	LastCommand string
	// PSM is the port of the walk's most recently opened channel: the
	// port the finding signature attributes.
	PSM l2cap.PSM
	// Trace is the recorded client operation sequence through detection,
	// populated when Found and a host.TraceRecorder is attached to the
	// client. The snapshot is taken at detection, so a replayed trace
	// ends on the killing command.
	Trace []host.TraceOp
	// TraceTruncated reports the trace outgrew the recorder's limit.
	TraceTruncated bool
}

// ErrNoServices indicates the target advertised no L2CAP services to
// drive connections against.
var ErrNoServices = errors.New("smfuzz: target advertises no services")

// recvCommand maps each machine event raised by an incoming command to
// that command's code: the inverse of sm.RecvEvent, restricted to the
// plain (non-lockstep) mapping since the simulated stacks carry no
// extended flow specification option. Local events have no entry — the
// tester cannot raise a target-internal completion from the wire.
var recvCommand = buildRecvCommand()

func buildRecvCommand() map[sm.Event]l2cap.CommandCode {
	out := make(map[sm.Event]l2cap.CommandCode)
	for _, code := range l2cap.AllCommandCodes() {
		if ev, ok := sm.RecvEvent(code, false); ok {
			if _, seen := out[ev]; !seen {
				out[ev] = code
			}
		}
	}
	return out
}

// Fuzzer drives a model-guided state-machine walk against one target.
type Fuzzer struct {
	cl  *host.Client
	cfg Config
	rng *rand.Rand

	target radio.BDAddr
	model  *sm.Machine
	// psms are the target's real scanned ports: ConnectionReqs use them
	// so the walk actually opens channels instead of being refused.
	psms []l2cap.PSM
	// deviceCID is the most recent responder-side endpoint the target
	// allocated, harvested from its ConnectionRsps: the "plausible"
	// choice when a command needs a CID the target might know.
	deviceCID l2cap.CID
	// lastPSM is the port of the most recent ConnectionReq: the finding's
	// attributed port.
	lastPSM   l2cap.PSM
	sent      int
	sincePing int
}

// New builds a fuzzer over a tester client.
func New(cl *host.Client, cfg Config) *Fuzzer {
	if cfg.MaxGarbage < 0 {
		cfg.MaxGarbage = 0
	}
	if cfg.MaxPackets <= 0 {
		cfg.MaxPackets = 50_000
	}
	if cfg.PingEvery <= 0 {
		cfg.PingEvery = 8
	}
	if cfg.ThinkTime <= 0 {
		cfg.ThinkTime = 450 * time.Microsecond
	}
	return &Fuzzer{cl: cl, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Run walks the state machine against the target until it dies or the
// command budget is exhausted.
func (f *Fuzzer) Run(target radio.BDAddr) (*Report, error) {
	f.target = target
	f.model = sm.NewMachine()
	start := f.cl.Clock().Now()
	if err := f.cl.Connect(target); err != nil {
		return nil, fmt.Errorf("smfuzz: %w", err)
	}
	services, err := f.cl.QuerySDP(target)
	if err != nil {
		return nil, fmt.Errorf("smfuzz: service scan: %w", err)
	}
	for _, s := range services {
		f.psms = append(f.psms, s.PSM)
	}
	if len(f.psms) == 0 {
		return nil, ErrNoServices
	}

	report := &Report{}
	finish := func(found bool, lastCommand string) (*Report, error) {
		report.Found = found
		report.LastCommand = lastCommand
		report.PacketsSent = f.sent
		report.Elapsed = f.cl.Clock().Now() - start
		report.FinalState = f.model.State()
		report.StatesVisited = f.model.Visited()
		report.PSM = f.lastPSM
		if found {
			if rec := f.cl.Recorder(); rec != nil {
				report.Trace, report.TraceTruncated = rec.Snapshot()
			}
		}
		return report, nil
	}

	for f.sent < f.cfg.MaxPackets {
		cmd, tail, ev, desc := f.step()
		if _, err := f.cl.SendCommand(f.target, cmd, tail); err != nil {
			// The link died under us: the walk's last command killed the
			// target and its crash dropped every ACL link.
			return finish(true, desc)
		}
		f.cl.Clock().Advance(f.cfg.ThinkTime)
		f.sent++
		f.sincePing++
		f.harvest()
		if ev != 0 {
			// Mirror the target's side of the walk: apply the event, then
			// the auto-accept its upper layer performs on delivered
			// requests (connections, disconnections, moves).
			if _, ok := f.model.Apply(ev); ok {
				f.model.Apply(sm.EvLocalAccept)
			}
		}
		if f.sincePing >= f.cfg.PingEvery {
			f.sincePing = 0
			if err := f.cl.Ping(f.target); err != nil {
				return finish(true, desc)
			}
			f.sent++ // the echo probe is a transmitted packet
		}
	}
	return finish(false, "")
}

// step picks the next command of the walk. Three draws in four follow
// the model — an event the shadow state accepts; the fourth defects to
// a command the specification says to reject here, probing the target's
// invalid-transition handling. The returned event is zero when the
// command raises none (or an invalid one): the shadow must not move.
func (f *Fuzzer) step() (l2cap.Command, []byte, sm.Event, string) {
	var candidates []sm.Event
	for _, ev := range sm.ValidEvents(f.model.State()) {
		if _, ok := recvCommand[ev]; ok {
			candidates = append(candidates, ev)
		}
	}
	if len(candidates) > 0 && f.rng.Intn(4) != 0 {
		ev := candidates[f.rng.Intn(len(candidates))]
		cmd, tail := f.build(recvCommand[ev])
		return cmd, tail, ev, fmt.Sprintf("%v in %v (valid)", ev, f.model.State())
	}
	// Defection: any signaling command, valid here or not. The shadow
	// only moves if the specification accepts the event — a rejected
	// command leaves the target's channel (and the model) in place.
	codes := l2cap.AllCommandCodes()
	code := codes[f.rng.Intn(len(codes))]
	cmd, tail := f.build(code)
	ev, ok := sm.RecvEvent(code, false)
	if !ok {
		ev = 0
	} else if _, valid := sm.Lookup(f.model.State(), ev); !valid {
		ev = 0
	}
	return cmd, tail, ev, fmt.Sprintf("%v in %v (injected)", code, f.model.State())
}

// build constructs the command for code: specification defaults for the
// application fields, endpoint fields steered by the walk — real PSMs
// so connections open, a coin flip between the target's actual CID and
// one it never allocated — and a garbage tail every other command.
func (f *Fuzzer) build(code l2cap.CommandCode) (l2cap.Command, []byte) {
	cmd, err := l2cap.DefaultCommand(code)
	if err != nil {
		// AllCommandCodes only returns codes DefaultCommand knows.
		panic(fmt.Sprintf("smfuzz: no default for %v: %v", code, err))
	}
	core := cmd.CoreFields()
	if core.PSM != nil {
		*core.PSM = f.choosePSM()
	}
	for _, cid := range core.CIDs {
		*cid = f.chooseCID()
	}
	for _, cont := range core.ControllerIDs {
		*cont = uint8(f.rng.Intn(4))
	}
	if req, ok := cmd.(*l2cap.ConnectionReq); ok {
		// A fresh requester-side endpoint keeps each opened channel
		// distinct, as a real initiator would allocate.
		req.SCID = f.cl.NextSourceCID()
		f.lastPSM = req.PSM
	}
	var tail []byte
	if f.rng.Intn(2) == 0 && f.cfg.MaxGarbage > 0 {
		tail = make([]byte, 1+f.rng.Intn(f.cfg.MaxGarbage))
		for i := range tail {
			tail[i] = byte(f.rng.Intn(256))
		}
	}
	return cmd, tail
}

// choosePSM picks the port a connection-opening command targets: mostly
// a real scanned port, so the walk opens channels, occasionally an
// arbitrary value to probe refusal paths.
func (f *Fuzzer) choosePSM() l2cap.PSM {
	if f.rng.Intn(4) != 0 {
		return f.psms[f.rng.Intn(len(f.psms))]
	}
	return l2cap.PSM(f.rng.Intn(0x10000))
}

// chooseCID picks a channel endpoint: a coin flip between the endpoint
// the target actually allocated (when one has been harvested) and a
// dynamic-range value it never did — the unknown-CID half is what
// reaches the sloppy channel lookups.
func (f *Fuzzer) chooseCID() l2cap.CID {
	if f.deviceCID != 0 && f.rng.Intn(2) == 0 {
		return f.deviceCID
	}
	lo, hi := l2cap.CIDPRange()
	return lo + l2cap.CID(f.rng.Intn(int(hi-lo)+1))
}

// harvest drains the target's responses and remembers the most recent
// responder-side endpoint it allocated.
func (f *Fuzzer) harvest() {
	for _, cmd := range f.cl.DrainCommands() {
		if rsp, ok := cmd.(*l2cap.ConnectionRsp); ok && rsp.Result == l2cap.ConnResultSuccess && rsp.DCID != 0 {
			f.deviceCID = rsp.DCID
		}
	}
}
