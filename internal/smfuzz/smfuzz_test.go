package smfuzz

import (
	"testing"

	"l2fuzz/internal/bt/device"
	"l2fuzz/internal/bt/host"
	"l2fuzz/internal/bt/radio"
	"l2fuzz/internal/bt/sm"
)

// targetConfig builds a BlueDroid-profile device with a data port for
// the walk to open channels against.
func targetConfig(vulns ...device.VulnSpec) device.Config {
	return device.Config{
		Addr:    radio.MustBDAddr("8C:F5:A3:00:00:61"),
		Name:    "sim-tablet",
		Profile: device.BlueDroidProfile("5.0", "vendor/tablet:5.0/fp", vulns...),
		Ports: []device.ServicePort{
			{PSM: 0x1001, Name: "OBEX Object Push"},
		},
	}
}

func rig(t *testing.T, cfg device.Config) (*device.Device, *host.Client) {
	t.Helper()
	m := radio.NewMedium(nil, radio.DefaultTiming())
	d, err := device.New(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := host.NewClient(m, radio.MustBDAddr("00:1B:DC:00:00:05"), "tester")
	if err != nil {
		t.Fatal(err)
	}
	return d, cl
}

func TestFindsCCBNullDeref(t *testing.T) {
	d, cl := rig(t, targetConfig(device.BlueDroidCCBNullDeref(0x40, 1, true)))
	f := New(cl, DefaultConfig(1))
	report, err := f.Run(d.Address())
	if err != nil {
		t.Fatalf("Run() error = %v", err)
	}
	if !report.Found {
		t.Fatalf("defect not found in %d packets", report.PacketsSent)
	}
	if !d.Crashed() {
		t.Error("device not actually crashed")
	}
	dump := d.CrashDump()
	if dump == nil || dump.VulnID != "bluedroid-ccb-null-deref" {
		t.Errorf("dump = %+v, want the CCB null-deref record", dump)
	}
	t.Logf("found after %d packets in %v at %v: %s",
		report.PacketsSent, report.Elapsed, report.FinalState, report.LastCommand)
}

func TestRobustStackSurvives(t *testing.T) {
	d, cl := rig(t, targetConfig())
	cfg := DefaultConfig(2)
	cfg.MaxPackets = 3_000
	f := New(cl, cfg)
	report, err := f.Run(d.Address())
	if err != nil {
		t.Fatal(err)
	}
	if report.Found {
		t.Fatalf("found a defect on the robust stack: %+v", report)
	}
	if d.Crashed() {
		t.Error("robust device crashed")
	}
}

// TestWalkCoversConfigurationJob asserts the model-guided walk actually
// leaves CLOSED: the whole point of driving the transition table is
// reaching the configuration-job states where the stateful defects live.
func TestWalkCoversConfigurationJob(t *testing.T) {
	d, cl := rig(t, targetConfig())
	cfg := DefaultConfig(3)
	cfg.MaxPackets = 3_000
	f := New(cl, cfg)
	report, err := f.Run(d.Address())
	if err != nil {
		t.Fatal(err)
	}
	var sawConfig bool
	for _, s := range report.StatesVisited {
		if sm.JobOf(s) == sm.JobConfiguration {
			sawConfig = true
		}
	}
	if !sawConfig {
		t.Errorf("walk never reached a configuration-job state; visited %v",
			report.StatesVisited)
	}
}

// TestSeedDeterminism pins the engine's reproducibility contract: the
// same seed against identical fresh rigs replays the identical run.
func TestSeedDeterminism(t *testing.T) {
	run := func() *Report {
		d, cl := rig(t, targetConfig(device.BlueDroidCCBNullDeref(0x40, 1, true)))
		f := New(cl, DefaultConfig(7))
		report, err := f.Run(d.Address())
		if err != nil {
			t.Fatal(err)
		}
		return report
	}
	a, b := run(), run()
	if a.Found != b.Found || a.PacketsSent != b.PacketsSent ||
		a.Elapsed != b.Elapsed || a.FinalState != b.FinalState ||
		a.LastCommand != b.LastCommand {
		t.Errorf("runs diverged:\n a = %+v\n b = %+v", a, b)
	}
}

// TestDifferentSeedsDiverge guards against the seed being ignored.
func TestDifferentSeedsDiverge(t *testing.T) {
	run := func(seed int64) *Report {
		d, cl := rig(t, targetConfig(device.BlueDroidCCBNullDeref(0x40, 1, true)))
		f := New(cl, DefaultConfig(seed))
		report, err := f.Run(d.Address())
		if err != nil {
			t.Fatal(err)
		}
		return report
	}
	a, b := run(3), run(4)
	if a.PacketsSent == b.PacketsSent && a.LastCommand == b.LastCommand {
		t.Errorf("seeds 3 and 4 produced identical runs (%d packets, %q)",
			a.PacketsSent, a.LastCommand)
	}
}
