package telemetry

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

func fixedClock() func() time.Time {
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	n := 0
	return func() time.Time {
		t := base.Add(time.Duration(n) * time.Second)
		n++
		return t
	}
}

// TestJournalGolden pins the journal's envelope format byte-for-byte:
// a schema change must regenerate the golden deliberately.
func TestJournalGolden(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	j.SetClock(fixedClock())

	if err := j.Write("farm", map[string]any{"version": 1, "jobs": 3}); err != nil {
		t.Fatal(err)
	}
	var c Counters
	c.CountFrame(64)
	c.AddPackets(12)
	c.CountMutation()
	if err := j.Sample(&c); err != nil {
		t.Fatal(err)
	}
	if err := j.Write("job-done", map[string]any{"job": map[string]any{"index": 0}}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "journal.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (rerun with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("journal bytes diverge from golden\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

func TestJournalRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	j.SetClock(fixedClock())
	j.Write("a", map[string]int{"x": 1})
	j.Write("b", map[string]int{"y": 2})
	j.Sample(nil)

	var types []string
	err := DecodeJournal(&buf, func(r Record) error {
		types = append(types, r.Type)
		if r.Time.IsZero() {
			t.Fatalf("record %q has zero time", r.Type)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(types, ","); got != "a,b,sample" {
		t.Fatalf("record types = %s", got)
	}
}

func TestJournalErrorLatches(t *testing.T) {
	j := NewJournal(failWriter{})
	if err := j.Write("a", 1); err == nil {
		t.Fatal("write to failing writer succeeded")
	}
	if err := j.Write("b", 2); err == nil {
		t.Fatal("second write did not return latched error")
	}
	if j.Err() == nil {
		t.Fatal("Err() nil after failed write")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestOpenJournalExclusive(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run-1")
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if j.Dir() != dir {
		t.Fatalf("Dir() = %q, want %q", j.Dir(), dir)
	}
	if err := j.Write("farm", 1); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(dir); err == nil {
		t.Fatal("reopening a used journal directory succeeded")
	}
	data, err := os.ReadFile(filepath.Join(dir, JournalFile))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"type":"farm"`)) {
		t.Fatalf("journal file missing farm record: %s", data)
	}
}

func TestStartSampler(t *testing.T) {
	var buf syncBuffer
	j := NewJournal(&buf)
	var c Counters
	stop := j.StartSampler(&c, time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for buf.Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent
	if buf.Len() == 0 {
		t.Fatal("sampler wrote nothing")
	}
	n := 0
	if err := DecodeJournal(strings.NewReader(buf.String()), func(r Record) error {
		if r.Type != RecordSample {
			t.Fatalf("unexpected record type %q", r.Type)
		}
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no samples decoded")
	}
}

// syncBuffer guards a bytes.Buffer so the sampler goroutine and the
// test body can share it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Len()
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
