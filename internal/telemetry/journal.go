package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// JournalFile is the file name a run journal is written under inside
// its per-run directory.
const JournalFile = "journal.jsonl"

// Record is the journal's line envelope: one JSON object per line with
// a UTC timestamp, a monotonic offset from the run's clock origin, a
// record type tag and the type-specific payload. The payload schemas
// are owned by the packages that write them (the fleet package for farm
// records, this package for counter samples).
type Record struct {
	Time time.Time `json:"time"`
	// Offset is the record's position on the run's monotonic clock:
	// nanoseconds since the journal's epoch (the farm's start time once
	// SetEpoch is called, the journal's creation time before). Unlike
	// Time — a wall-clock reading that can step mid-run — offsets are
	// monotone across the whole journal, so analyzers derive their time
	// axis from them.
	Offset time.Duration   `json:"offsetNs"`
	Type   string          `json:"type"`
	Data   json.RawMessage `json:"data"`
}

// RecordSample is the record type of periodic CounterSnapshot samples
// written by Sample and StartSampler.
const RecordSample = "sample"

// Journal writes a run's record stream as JSONL. Writes are serialized
// by an internal mutex; the first write or encode error latches and
// every later call becomes a no-op, so a full disk mid-run degrades to
// a truncated journal plus a non-nil Err rather than a crashed farm.
type Journal struct {
	mu    sync.Mutex
	w     io.Writer
	c     io.Closer
	dir   string
	now   func() time.Time
	epoch time.Time
	err   error
}

// NewJournal wraps an arbitrary writer as a journal. Close does not
// close the writer.
func NewJournal(w io.Writer) *Journal {
	return &Journal{w: w, now: time.Now, epoch: time.Now()}
}

// OpenJournal creates dir (and parents) and opens a fresh JournalFile
// inside it. The file is opened exclusively: reusing a directory that
// already holds a journal fails loudly instead of clobbering the prior
// run.
func OpenJournal(dir string) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	path := filepath.Join(dir, JournalFile)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	j := NewJournal(f)
	j.c = f
	j.dir = dir
	return j, nil
}

// Dir reports the per-run directory when the journal was opened with
// OpenJournal, empty otherwise.
func (j *Journal) Dir() string { return j.dir }

// SetClock replaces the timestamp source; tests pin it for byte-stable
// goldens. The offset epoch is re-based onto the new clock (consuming
// one reading), so pinned clocks yield deterministic offsets too.
func (j *Journal) SetClock(now func() time.Time) {
	j.mu.Lock()
	j.now = now
	j.epoch = now()
	j.mu.Unlock()
}

// SetEpoch re-bases every later record's Offset onto t — the one
// monotonic clock origin of the run. The farm calls it with its own
// start time when it writes the journal header, so counter samples,
// event records and the per-job trace spans inside them all measure
// time from the same instant; without it offsets count from the
// journal's creation, which can precede the farm by however long the
// caller took to wire things up.
func (j *Journal) SetEpoch(t time.Time) {
	j.mu.Lock()
	j.epoch = t
	j.mu.Unlock()
}

// Write appends one record of the given type. The payload is marshaled
// first so an unmarshalable payload never emits a half-written line.
func (j *Journal) Write(typ string, data any) error {
	payload, err := json.Marshal(data)
	if err != nil {
		return j.fail(fmt.Errorf("telemetry: marshal %s record: %w", typ, err))
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	now := j.now()
	off := now.Sub(j.epoch)
	if off < 0 {
		// A record predating the epoch (written before the farm re-based
		// it) clamps to zero rather than going negative: analyzers treat
		// offsets as positions on the run's time axis.
		off = 0
	}
	line, err := json.Marshal(Record{Time: now.UTC(), Offset: off, Type: typ, Data: payload})
	if err != nil {
		j.err = fmt.Errorf("telemetry: marshal %s envelope: %w", typ, err)
		return j.err
	}
	line = append(line, '\n')
	if _, err := j.w.Write(line); err != nil {
		j.err = fmt.Errorf("telemetry: write %s record: %w", typ, err)
		return j.err
	}
	return nil
}

func (j *Journal) fail(err error) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err == nil {
		j.err = err
	}
	return j.err
}

// Err reports the first error the journal hit, if any.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Close closes the underlying file when the journal owns one
// (OpenJournal); journals over caller-supplied writers leave the
// writer open. It returns the latched write error, if any, so a
// single deferred Close surfaces mid-run failures.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.c != nil {
		if err := j.c.Close(); err != nil && j.err == nil {
			j.err = fmt.Errorf("telemetry: %w", err)
		}
		j.c = nil
	}
	return j.err
}

// Sample writes one counter snapshot as a RecordSample record.
func (j *Journal) Sample(c *Counters) error {
	return j.Write(RecordSample, c.Snapshot())
}

// StartSampler writes a counter sample every interval until the
// returned stop function is called. Stop is idempotent and waits for
// the sampler goroutine to exit, so callers may stop before Close
// without racing a final sample against the file close.
func (j *Journal) StartSampler(c *Counters, every time.Duration) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				j.Sample(c)
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		<-finished
	}
}

// maxJournalLine bounds a single journal line when decoding; a full
// campaign's job result with a large summary stays far below this.
const maxJournalLine = 16 << 20

// DecodeJournal streams records out of a persisted journal, calling fn
// for each line in order. fn returning an error stops the decode and
// returns that error.
func DecodeJournal(r io.Reader, fn func(Record) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxJournalLine)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return fmt.Errorf("telemetry: journal line %d: %w", line, err)
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("telemetry: read journal: %w", err)
	}
	return nil
}
