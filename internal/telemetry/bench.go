package telemetry

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"
)

// BenchRow is one measured configuration of a bench snapshot.
type BenchRow struct {
	// Name labels the row, e.g. "workers=4" or "workers=4/telemetry".
	Name string `json:"name"`
	// Workers is the farm's worker count for this row.
	Workers int `json:"workers"`
	// Telemetry marks rows measured with counters and journaling on.
	Telemetry bool `json:"telemetry,omitempty"`
	// Packets and Findings describe the measured run's output.
	Packets  int64 `json:"packets"`
	Findings int   `json:"findings"`
	// WallSeconds is the run's wall-clock duration.
	WallSeconds float64 `json:"wallSeconds"`
	// PktsPerSec is Packets / WallSeconds.
	PktsPerSec float64 `json:"pktsPerSec"`
	// MBPerOp is megabytes allocated over the run.
	MBPerOp float64 `json:"mbPerOp"`
	// AllocsPerOp is heap allocations over the run.
	AllocsPerOp int64 `json:"allocsPerOp"`
	// ParentOnly marks rows whose MBPerOp/AllocsPerOp cover only the
	// measuring (parent) process: process-isolated executor rows run the
	// actual fuzzing in worker subprocesses, whose allocations
	// runtime.MemStats cannot see. Renderers must not compare such a
	// row's allocation columns against in-process rows.
	ParentOnly bool `json:"parentOnly,omitempty"`
}

// BenchSnapshot is a committed benchmark trajectory datum
// (BENCH_<pr>.json): one row per measured configuration plus enough
// host context to compare run-over-run.
type BenchSnapshot struct {
	// Bench names the benchmark the rows came from.
	Bench string `json:"bench"`
	// Go, GOOS, GOARCH, CPUs and MaxProcs pin the measuring host.
	Go       string     `json:"go"`
	GOOS     string     `json:"goos"`
	GOARCH   string     `json:"goarch"`
	CPUs     int        `json:"cpus"`
	MaxProcs int        `json:"maxprocs"`
	Rows     []BenchRow `json:"rows"`
}

// Measure runs one workload and fills a row's measured fields: wall
// time, packets/s and the run's allocation cost from runtime.MemStats
// deltas. The caller sets Name, Workers and Telemetry.
func Measure(fn func() (packets int64, findings int)) BenchRow {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	packets, findings := fn()
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	row := BenchRow{
		Packets:     packets,
		Findings:    findings,
		WallSeconds: wall.Seconds(),
		MBPerOp:     float64(after.TotalAlloc-before.TotalAlloc) / 1e6,
		AllocsPerOp: int64(after.Mallocs - before.Mallocs),
	}
	if row.WallSeconds > 0 {
		row.PktsPerSec = float64(packets) / row.WallSeconds
	}
	return row
}

// NewBenchSnapshot stamps a snapshot with the measuring host's
// toolchain and CPU context.
func NewBenchSnapshot(bench string, rows []BenchRow) BenchSnapshot {
	return BenchSnapshot{
		Bench:    bench,
		Go:       runtime.Version(),
		GOOS:     runtime.GOOS,
		GOARCH:   runtime.GOARCH,
		CPUs:     runtime.NumCPU(),
		MaxProcs: runtime.GOMAXPROCS(0),
		Rows:     rows,
	}
}

// WriteBenchSnapshot writes the snapshot as indented JSON.
func WriteBenchSnapshot(path string, s BenchSnapshot) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	return nil
}

// ReadBenchSnapshot reads a snapshot written by WriteBenchSnapshot.
func ReadBenchSnapshot(path string) (BenchSnapshot, error) {
	var s BenchSnapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return s, fmt.Errorf("telemetry: %w", err)
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("telemetry: %s: %w", path, err)
	}
	return s, nil
}
