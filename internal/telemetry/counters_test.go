package telemetry

import (
	"sync"
	"testing"
)

func TestCountersNilSafe(t *testing.T) {
	var c *Counters
	c.CountFrame(42)
	c.AddFrames(3, 99)
	c.CountPacket()
	c.AddPackets(7)
	c.CountMalformed()
	c.AddMalformed(2)
	c.CountMutation()
	c.AddMutations(2)
	c.AddFindings(3)
	c.CountJobStarted()
	c.CountJobDone(true)
	c.Merge(CounterSnapshot{Packets: 5})
	if got := c.Snapshot(); got != (CounterSnapshot{}) {
		t.Fatalf("nil Counters snapshot = %+v, want zero", got)
	}
}

// TestCountersMerge pins the batch path: a private per-job counter
// merged into a shared set must land every field.
func TestCountersMerge(t *testing.T) {
	var job Counters
	job.AddFrames(4, 512)
	job.AddPackets(100)
	job.AddMalformed(60)
	job.AddMutations(99)
	var farm Counters
	farm.CountJobStarted()
	farm.Merge(job.Snapshot())
	farm.CountJobDone(false)
	want := CounterSnapshot{
		Frames: 4, Bytes: 512, Packets: 100, Malformed: 60, Mutations: 99,
		JobsStarted: 1, JobsDone: 1,
	}
	if got := farm.Snapshot(); got != want {
		t.Fatalf("merged snapshot = %+v, want %+v", got, want)
	}
}

func TestCountersSnapshot(t *testing.T) {
	var c Counters
	c.CountFrame(100)
	c.CountFrame(24)
	c.CountPacket()
	c.AddPackets(9)
	c.CountMalformed()
	c.CountMutation()
	c.CountMutation()
	c.AddFindings(2)
	c.CountJobStarted()
	c.CountJobStarted()
	c.CountJobDone(false)
	c.CountJobDone(true)
	want := CounterSnapshot{
		Frames:      2,
		Bytes:       124,
		Packets:     10,
		Malformed:   1,
		Mutations:   2,
		Findings:    2,
		JobsStarted: 2,
		JobsDone:    2,
		JobsFailed:  1,
	}
	if got := c.Snapshot(); got != want {
		t.Fatalf("snapshot = %+v, want %+v", got, want)
	}
}

func TestCountersConcurrent(t *testing.T) {
	var c Counters
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.CountFrame(10)
				c.CountPacket()
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.Frames != workers*per || s.Bytes != workers*per*10 || s.Packets != workers*per {
		t.Fatalf("concurrent snapshot = %+v", s)
	}
}
