package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"sync/atomic"
)

// ServerConfig wires a live farm into the introspection endpoint.
type ServerConfig struct {
	// Counters is the farm's hot-path counter set; nil serves zeros.
	Counters *Counters
	// Snapshot, when set, returns the value served as JSON under
	// /snapshot — typically the farm's live Aggregator snapshot.
	Snapshot func() any
}

// expvar names are process-global, so the "l2farm" var is published
// once and re-pointed at the most recent server's counters.
var (
	publishOnce     sync.Once
	currentCounters atomic.Pointer[Counters]
)

func publishCounters(c *Counters) {
	if c != nil {
		currentCounters.Store(c)
	}
	publishOnce.Do(func() {
		expvar.Publish("l2farm", expvar.Func(func() any {
			return currentCounters.Load().Snapshot()
		}))
	})
}

// NewHandler builds the introspection mux:
//
//	/              index of the routes below
//	/debug/vars    expvar JSON (counters under "l2farm", plus memstats)
//	/metrics       the counters in Prometheus text format
//	/snapshot      cfg.Snapshot() as JSON (404 when unset)
//	/debug/pprof/  net/http/pprof
func NewHandler(cfg ServerConfig) http.Handler {
	publishCounters(cfg.Counters)
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "l2farm telemetry\n\n/debug/vars\n/metrics\n/snapshot\n/debug/pprof/\n")
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		writePrometheus(w, cfg.Counters.Snapshot())
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Snapshot == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(cfg.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writePrometheus(w http.ResponseWriter, s CounterSnapshot) {
	vals := map[string]int64{
		"frames":       s.Frames,
		"bytes":        s.Bytes,
		"packets":      s.Packets,
		"malformed":    s.Malformed,
		"mutations":    s.Mutations,
		"findings":     s.Findings,
		"jobs_started": s.JobsStarted,
		"jobs_done":    s.JobsDone,
		"jobs_failed":  s.JobsFailed,
	}
	names := make([]string, 0, len(vals))
	for name := range vals {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "# TYPE l2farm_%s_total counter\n", name)
		fmt.Fprintf(w, "l2farm_%s_total %d\n", name, vals[name])
	}
}

// Server is a running introspection endpoint.
type Server struct {
	// Addr is the actual listen address (useful with ":0").
	Addr string

	ln  net.Listener
	srv *http.Server
}

// Serve starts the introspection endpoint on addr. The server runs
// until Close; serve errors after Close are discarded.
func Serve(addr string, cfg ServerConfig) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	s := &Server{
		Addr: ln.Addr().String(),
		ln:   ln,
		srv:  &http.Server{Handler: NewHandler(cfg)},
	}
	go s.srv.Serve(ln)
	return s, nil
}

// Close stops the server and its listener.
func (s *Server) Close() error {
	return s.srv.Close()
}
