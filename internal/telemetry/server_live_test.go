package telemetry_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"l2fuzz/internal/fleet"
	"l2fuzz/internal/telemetry"
)

// TestServeUnderLiveFarm scrapes the metrics endpoint while a farm is
// actually running — the shape cmd/l2farm wires up — so the handler's
// reads race against the fold loop's counter writes and the snapshot
// closure under the race detector.
func TestServeUnderLiveFarm(t *testing.T) {
	counters := &telemetry.Counters{}
	farm, err := fleet.Start(fleet.Config{
		Devices:          []string{"D2", "D5"},
		Kinds:            []fleet.Kind{fleet.KindL2Fuzz, fleet.KindRFCOMM},
		Shards:           2,
		BaseSeed:         7,
		Workers:          2,
		MaxPacketsPerJob: 50_000,
		Counters:         counters,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := telemetry.Serve("127.0.0.1:0", telemetry.ServerConfig{
		Counters: counters,
		Snapshot: func() any { return farm.Snapshot() },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Scrape both endpoints repeatedly while jobs are in flight.
	sawMidRun := false
	for i := 0; i < 20; i++ {
		body := get(t, srv.Addr, "/metrics")
		if !strings.Contains(body, "l2farm_packets_total") {
			t.Fatalf("metrics scrape %d lacks l2farm_packets_total:\n%s", i, body)
		}
		var rep fleet.Report
		if err := json.Unmarshal([]byte(get(t, srv.Addr, "/snapshot")), &rep); err != nil {
			t.Fatalf("snapshot scrape %d is not a Report: %v", i, err)
		}
		if done := rep.Completed + rep.Failed; done > 8 || done != len(rep.Jobs) {
			t.Fatalf("snapshot scrape %d inconsistent: %d completed + %d failed over %d job results",
				i, rep.Completed, rep.Failed, len(rep.Jobs))
		}
		if rep.Completed+rep.Failed < 8 {
			sawMidRun = true
		}
	}

	final := farm.Wait()
	if !sawMidRun {
		t.Log("farm finished before any scrape landed mid-run; raced scrapes still exercised the handler")
	}

	// After the run, the endpoints serve the settled totals.
	metrics := get(t, srv.Addr, "/metrics")
	want := fmt.Sprintf("l2farm_packets_total %d", counters.Snapshot().Packets)
	if !strings.Contains(metrics, want) {
		t.Errorf("final metrics scrape lacks %q", want)
	}
	var rep fleet.Report
	if err := json.Unmarshal([]byte(get(t, srv.Addr, "/snapshot")), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Completed != final.Completed || rep.TotalPackets != final.TotalPackets {
		t.Errorf("final snapshot (%d completed, %d packets) disagrees with Wait's report (%d completed, %d packets)",
			rep.Completed, rep.TotalPackets, final.Completed, final.TotalPackets)
	}
}

func get(t *testing.T, addr, path string) string {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s\n%s", path, resp.Status, body)
	}
	return string(body)
}
