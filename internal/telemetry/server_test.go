package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec.Code, rec.Body.String()
}

func TestHandlerEndpoints(t *testing.T) {
	var c Counters
	c.CountFrame(128)
	c.AddPackets(42)
	c.AddFindings(1)
	h := NewHandler(ServerConfig{
		Counters: &c,
		Snapshot: func() any { return map[string]int{"completed": 3} },
	})

	if code, body := get(t, h, "/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Fatalf("index: code=%d body=%q", code, body)
	}

	code, body := get(t, h, "/debug/vars")
	if code != 200 {
		t.Fatalf("/debug/vars code = %d", code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if _, ok := vars["memstats"]; !ok {
		t.Fatal("/debug/vars missing memstats")
	}
	raw, ok := vars["l2farm"]
	if !ok {
		t.Fatal("/debug/vars missing l2farm")
	}
	var snap CounterSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("l2farm var not a CounterSnapshot: %v", err)
	}
	if snap.Frames != 1 || snap.Bytes != 128 || snap.Packets != 42 || snap.Findings != 1 {
		t.Fatalf("l2farm var = %+v", snap)
	}

	code, body = get(t, h, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics code = %d", code)
	}
	for _, want := range []string{
		"l2farm_frames_total 1",
		"l2farm_bytes_total 128",
		"l2farm_packets_total 42",
		"l2farm_findings_total 1",
		"# TYPE l2farm_packets_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}

	code, body = get(t, h, "/snapshot")
	if code != 200 || !strings.Contains(body, `"completed": 3`) {
		t.Fatalf("/snapshot: code=%d body=%q", code, body)
	}

	if code, body = get(t, h, "/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/: code=%d", code)
	}

	if code, _ = get(t, h, "/no-such"); code != 404 {
		t.Fatalf("unknown path code = %d, want 404", code)
	}
}

func TestHandlerNoSnapshot(t *testing.T) {
	h := NewHandler(ServerConfig{})
	if code, _ := get(t, h, "/snapshot"); code != 404 {
		t.Fatalf("/snapshot without provider = %d, want 404", code)
	}
	// nil Counters serve zeros rather than panicking.
	if code, body := get(t, h, "/metrics"); code != 200 || !strings.Contains(body, "l2farm_packets_total 0") {
		t.Fatalf("/metrics with nil counters: code=%d body=%q", code, body)
	}
}

func TestServe(t *testing.T) {
	var c Counters
	c.CountPacket()
	s, err := Serve("127.0.0.1:0", ServerConfig{Counters: &c})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	resp, err := http.Get("http://" + s.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 || !strings.Contains(string(body), "l2farm_packets_total 1") {
		t.Fatalf("live /metrics: code=%d body=%q", resp.StatusCode, body)
	}
}
