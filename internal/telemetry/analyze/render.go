package analyze

import (
	"fmt"
	"strings"
	"time"
)

// coverageRows is how many evenly spaced time rows RenderCoverage
// prints before the exact final row.
const coverageRows = 10

// sparkLevels are the eight-step block glyphs the text histograms and
// timelines use.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// spark renders values as a block-glyph strip scaled to the strip max.
func spark(values []float64) string {
	max := 0.0
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		if max <= 0 || v <= 0 {
			b.WriteRune(sparkLevels[0])
			continue
		}
		lvl := int(v / max * float64(len(sparkLevels)-1))
		b.WriteRune(sparkLevels[lvl])
	}
	return b.String()
}

func sparkInts(values []int) string {
	fs := make([]float64, len(values))
	for i, v := range values {
		fs[i] = float64(v)
	}
	return spark(fs)
}

// RenderCoverage prints the coverage figure as an aligned table: the
// cumulative curves sampled at evenly spaced offsets, closed by the
// exact final row (the replayed report's totals).
func RenderCoverage(c Coverage) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Coverage over time: %v run", c.Duration.Round(time.Millisecond))
	if c.Interval > 0 {
		fmt.Fprintf(&b, ", counters sampled every %v", c.Interval)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "  %10s %12s %12s %8s %9s\n", "t", "packets", "malformed", "states", "findings")
	row := func(t time.Duration, exact bool) {
		mark := " "
		if exact {
			mark = "*"
		}
		fmt.Fprintf(&b, "  %10v %12d %12d %8d %9d%s\n",
			t.Round(time.Millisecond),
			c.ByName(SeriesPackets).ValueAt(t),
			c.ByName(SeriesMalformed).ValueAt(t),
			c.ByName(SeriesStates).ValueAt(t),
			c.ByName(SeriesFindings).ValueAt(t),
			mark)
	}
	for i := 1; i < coverageRows; i++ {
		row(c.Duration*time.Duration(i)/coverageRows, false)
	}
	row(c.Duration, true)
	b.WriteString("  (* = final totals, exact against the replayed report)\n")
	return b.String()
}

// RenderLatency prints the per-group wall-time table with a histogram
// sparkline and the span-derived mean phase split.
func RenderLatency(by GroupBy, rows []LatencyRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Job wall time by %s:\n", by)
	groupW := len(string(by))
	for _, r := range rows {
		if len(r.Group) > groupW {
			groupW = len(r.Group)
		}
	}
	fmt.Fprintf(&b, "  %-*s %5s %6s %10s %10s %10s %10s  %-*s %10s %10s %10s %10s\n",
		groupW, string(by), "jobs", "failed", "min", "p50", "p90", "max",
		histBuckets, "hist", "queue", "dispatch", "execute", "transport")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-*s %5d %6d %10v %10v %10v %10v  %s %10v %10v %10v %10v\n",
			groupW, r.Group, r.Jobs, r.Failed,
			r.Min.Round(time.Millisecond), r.P50.Round(time.Millisecond),
			r.P90.Round(time.Millisecond), r.Max.Round(time.Millisecond),
			sparkInts(r.Hist),
			r.Phases.Queue.Round(time.Millisecond),
			r.Phases.Dispatch.Round(time.Millisecond),
			r.Phases.Execute.Round(time.Millisecond),
			r.Phases.Transport.Round(time.Millisecond))
	}
	return b.String()
}

// RenderWorkers prints the per-worker utilization table with a busy
// timeline sparkline.
func RenderWorkers(rows []WorkerRow, duration time.Duration) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Worker utilization over %v:\n", duration.Round(time.Millisecond))
	workerW := len("worker")
	for _, r := range rows {
		if len(r.Worker) > workerW {
			workerW = len(r.Worker)
		}
	}
	fmt.Fprintf(&b, "  %-*s %5s %10s %6s  %s\n", workerW, "worker", "jobs", "busy", "util", "timeline")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-*s %5d %10v %5.1f%%  %s\n",
			workerW, r.Worker, r.Jobs, r.Busy.Round(time.Millisecond), 100*r.Util, spark(r.Timeline))
	}
	return b.String()
}

// RenderTrend prints the baseline-vs-current comparison, one row per
// series, with the regression verdict.
func RenderTrend(t Trend) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Coverage trend: baseline %v vs current %v\n",
		t.Base.Duration.Round(time.Millisecond), t.Cur.Duration.Round(time.Millisecond))
	fmt.Fprintf(&b, "  %-10s %12s %12s %8s %8s  %s\n", "series", "base final", "cur final", "baseAUC", "curAUC", "verdict")
	for _, d := range t.Series {
		verdict := "ok"
		if d.Regressed {
			verdict = "REGRESSED: " + d.Reason
		}
		fmt.Fprintf(&b, "  %-10s %12d %12d %8.3f %8.3f  %s\n",
			d.Name, d.BaseFinal, d.CurFinal, d.BaseAUC, d.CurAUC, verdict)
	}
	if t.Regressed {
		b.WriteString("REGRESSION\n")
	} else {
		b.WriteString("no regression\n")
	}
	return b.String()
}
