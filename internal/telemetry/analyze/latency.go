package analyze

import (
	"fmt"
	"sort"
	"time"
)

// GroupBy selects the latency breakdown axis.
type GroupBy string

const (
	ByDevice  GroupBy = "device"
	ByKind    GroupBy = "kind"
	ByVariant GroupBy = "variant"
)

// histBuckets is the wall-time histogram resolution: linear buckets
// over [0, max] across all groups, so rows are visually comparable.
const histBuckets = 10

// PhaseMeans is the mean per-phase latency of a group's jobs, from
// their trace spans: time queued, time waiting for a worker, execution
// proper, and executor transport overhead (the subprocess wire cost).
type PhaseMeans struct {
	Queue     time.Duration
	Dispatch  time.Duration
	Execute   time.Duration
	Transport time.Duration
}

// LatencyRow is one group's wall-time distribution.
type LatencyRow struct {
	Group        string
	Jobs, Failed int
	Min, Max     time.Duration
	Mean         time.Duration
	P50, P90     time.Duration
	// Hist counts jobs per wall-time bucket; BucketWidth is the shared
	// linear bucket width (run max / histBuckets).
	Hist        []int
	BucketWidth time.Duration
	Phases      PhaseMeans
}

// Latency breaks the run's per-job wall times down by the given axis.
// Failed jobs count in Jobs/Failed and the wall statistics — they
// occupied a worker — mirroring the report's per-group Wall sums. Rows
// sort by group name (kind rows by first appearance of the header's
// kind order when available).
func (r *Run) Latency(by GroupBy) ([]LatencyRow, error) {
	key := func(j Job) string { return j.Device }
	switch by {
	case ByDevice:
	case ByKind:
		key = func(j Job) string { return j.Kind }
	case ByVariant:
		key = func(j Job) string { return j.Variant }
	default:
		return nil, fmt.Errorf("analyze: unknown latency axis %q (have device, kind, variant)", by)
	}

	var runMax time.Duration
	for _, jd := range r.Jobs {
		if jd.Wall > runMax {
			runMax = jd.Wall
		}
	}
	width := runMax / histBuckets
	if width <= 0 {
		width = 1
	}

	groups := make(map[string][]JobDone)
	for _, jd := range r.Jobs {
		k := key(jd.Job)
		groups[k] = append(groups[k], jd)
	}
	names := make([]string, 0, len(groups))
	for name := range groups {
		names = append(names, name)
	}
	sort.Strings(names)

	rows := make([]LatencyRow, 0, len(names))
	for _, name := range names {
		jobs := groups[name]
		row := LatencyRow{Group: name, Jobs: len(jobs), Hist: make([]int, histBuckets), BucketWidth: width}
		walls := make([]time.Duration, 0, len(jobs))
		var sum time.Duration
		var phases PhaseMeans
		spanned := 0
		for _, jd := range jobs {
			if jd.Failed() {
				row.Failed++
			}
			walls = append(walls, jd.Wall)
			sum += jd.Wall
			b := int(jd.Wall / width)
			if b >= histBuckets {
				b = histBuckets - 1
			}
			row.Hist[b]++
			if !jd.Span.IsZero() {
				spanned++
				phases.Queue += jd.Span.QueueWait()
				phases.Dispatch += jd.Span.DispatchWait()
				phases.Execute += jd.Span.Execute()
				phases.Transport += jd.Span.Transport()
			}
		}
		sort.Slice(walls, func(i, j int) bool { return walls[i] < walls[j] })
		row.Min = walls[0]
		row.Max = walls[len(walls)-1]
		row.Mean = sum / time.Duration(len(walls))
		row.P50 = percentile(walls, 50)
		row.P90 = percentile(walls, 90)
		if spanned > 0 {
			n := time.Duration(spanned)
			row.Phases = PhaseMeans{
				Queue:     phases.Queue / n,
				Dispatch:  phases.Dispatch / n,
				Execute:   phases.Execute / n,
				Transport: phases.Transport / n,
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// percentile is the nearest-rank percentile of a sorted slice.
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := (p*len(sorted) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
