package analyze

import (
	"sort"
	"time"
)

// timelineBuckets is the utilization timeline resolution: the run's
// duration split into this many equal slots per worker.
const timelineBuckets = 40

// Interval is one busy window on a worker: a job's executor residency
// (span Started..Finished).
type Interval struct {
	From, To time.Duration
	// Index is the job that occupied the window.
	Index int
}

// WorkerRow is one worker's utilization over the run.
type WorkerRow struct {
	Worker string
	Jobs   int
	// Busy is the union of the worker's busy windows — overlapping
	// windows (the in-process executor runs one "local" worker per
	// dispatcher) count once.
	Busy time.Duration
	// Util is Busy over the run duration, in [0, 1].
	Util float64
	// Timeline is the busy fraction of each of timelineBuckets equal
	// slots of the run.
	Timeline []float64
	// Intervals are the raw busy windows, sorted by start.
	Intervals []Interval
}

// WorkerTimelines reconstructs per-worker utilization from the job
// spans. Jobs without spans (version-2 journals) yield no windows, so
// the rows degrade to job counts. Rows sort by worker id.
func (r *Run) WorkerTimelines() []WorkerRow {
	byWorker := make(map[string][]Interval)
	jobs := make(map[string]int)
	for _, jd := range r.Jobs {
		w := jd.Worker
		if w == "" {
			w = "(unknown)"
		}
		jobs[w]++
		if jd.Span.IsZero() {
			continue
		}
		iv := Interval{From: jd.Span.StartedNs, To: jd.Span.FinishedNs, Index: jd.Job.Index}
		if iv.To < iv.From {
			iv.To = iv.From
		}
		byWorker[w] = append(byWorker[w], iv)
	}
	names := make([]string, 0, len(jobs))
	for name := range jobs {
		names = append(names, name)
	}
	sort.Strings(names)

	rows := make([]WorkerRow, 0, len(names))
	for _, name := range names {
		ivs := byWorker[name]
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].From < ivs[j].From })
		row := WorkerRow{
			Worker:    name,
			Jobs:      jobs[name],
			Busy:      unionLength(ivs),
			Intervals: ivs,
			Timeline:  occupancy(ivs, r.Duration, timelineBuckets),
		}
		if r.Duration > 0 {
			row.Util = float64(row.Busy) / float64(r.Duration)
		}
		rows = append(rows, row)
	}
	return rows
}

// unionLength sums the coverage of possibly-overlapping intervals
// (sorted by start).
func unionLength(ivs []Interval) time.Duration {
	var total time.Duration
	var curFrom, curTo time.Duration
	open := false
	for _, iv := range ivs {
		if !open {
			curFrom, curTo, open = iv.From, iv.To, true
			continue
		}
		if iv.From > curTo {
			total += curTo - curFrom
			curFrom, curTo = iv.From, iv.To
			continue
		}
		if iv.To > curTo {
			curTo = iv.To
		}
	}
	if open {
		total += curTo - curFrom
	}
	return total
}

// occupancy computes the covered fraction of each of n equal slots of
// [0, total] under the interval union.
func occupancy(ivs []Interval, total time.Duration, n int) []float64 {
	out := make([]float64, n)
	if total <= 0 {
		return out
	}
	slot := float64(total) / float64(n)
	for i := range out {
		lo := float64(i) * slot
		hi := lo + slot
		var covered float64
		// Intervals are sorted but may overlap; accumulate the clipped
		// union within the slot.
		var curLo, curHi float64
		open := false
		for _, iv := range ivs {
			f, t := float64(iv.From), float64(iv.To)
			if t <= lo || f >= hi {
				continue
			}
			if f < lo {
				f = lo
			}
			if t > hi {
				t = hi
			}
			if !open {
				curLo, curHi, open = f, t, true
				continue
			}
			if f > curHi {
				covered += curHi - curLo
				curLo, curHi = f, t
				continue
			}
			if t > curHi {
				curHi = t
			}
		}
		if open {
			covered += curHi - curLo
		}
		out[i] = covered / slot
	}
	return out
}
