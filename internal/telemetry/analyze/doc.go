// Package analyze replays a farm run's journal.jsonl into the paper's
// evaluation figures: coverage-over-time series (cumulative malformed
// packets, distinct protocol states, de-duplicated findings against
// wall time — Figures 8–10), per-device/kind/variant wall-time
// histograms, and a per-worker utilization timeline. Everything derives
// from the journal alone — the analyzer never re-runs jobs — and the
// final point of every cumulative series equals the corresponding total
// of the report fleet.ReplayJournal folds from the same journal, a
// correspondence the package's tests pin exactly.
//
// The package deliberately decodes the journal with its own mirror
// structs instead of importing the fleet package: analysis is a pure
// consumer of the persisted schema (journal version 3), so the
// dependency points at the record format, not at the farm
// implementation. Renderers produce aligned text tables (Render*), CSV
// (*CSV) and self-contained SVG documents (*SVG), all deterministic
// functions of the parsed run so outputs are diffable and goldenable.
// CompareTrend diffs two runs' coverage curves — exact on final totals,
// tolerance-banded on normalized area-under-curve — which is the CI
// regression gate cmd/l2journal exposes as "l2journal trend".
package analyze
