package analyze

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"l2fuzz/internal/telemetry"
)

// minVersion..maxVersion is the journal schema range Parse reads.
// Version 2 journals (pre-span) parse with zero spans and an unknown
// sample interval; version 3 adds both.
const (
	minVersion = 2
	maxVersion = 3
)

// Header mirrors the journal's farm record: the matrix shape the run
// was configured with.
type Header struct {
	Version  int      `json:"version"`
	Jobs     int      `json:"jobs"`
	Workers  int      `json:"workers"`
	BaseSeed int64    `json:"baseSeed"`
	Targets  []string `json:"targets"`
	Kinds    []string `json:"kinds"`
	Variants []string `json:"variants"`
	Shards   int      `json:"shards"`
	// SampleInterval is the counter sampler's period when the writer
	// declared it (journal version 3); zero means unknown.
	SampleInterval time.Duration `json:"sampleIntervalNs"`
}

// Span mirrors fleet.Span: one job's trace through the farm's phases
// as monotonic offsets from the farm's start, plus the in-executor
// execution time. The phase helpers replicate the fleet package's
// arithmetic so both sides of the schema agree on what each window
// means.
type Span struct {
	QueuedNs     time.Duration `json:"queuedNs"`
	DispatchedNs time.Duration `json:"dispatchedNs"`
	StartedNs    time.Duration `json:"startedNs"`
	FinishedNs   time.Duration `json:"finishedNs"`
	ExecNs       time.Duration `json:"execNs"`
}

// QueueWait is how long the job sat in the feed before dispatch.
func (s Span) QueueWait() time.Duration { return clampDur(s.DispatchedNs - s.QueuedNs) }

// DispatchWait is the dispatcher's delay before execution began (the
// wait for an idle worker under a subprocess executor).
func (s Span) DispatchWait() time.Duration { return clampDur(s.StartedNs - s.DispatchedNs) }

// Execute is the in-executor execution time.
func (s Span) Execute() time.Duration { return clampDur(s.ExecNs) }

// Transport is the executor overhead around execution — the wire codec
// and pipe cost of a subprocess worker, near zero in-process.
func (s Span) Transport() time.Duration { return clampDur(s.FinishedNs - s.StartedNs - s.ExecNs) }

// IsZero reports an unstamped span (a version-2 journal).
func (s Span) IsZero() bool { return s == Span{} }

func clampDur(d time.Duration) time.Duration {
	if d < 0 {
		return 0
	}
	return d
}

// Job identifies one matrix cell and shard.
type Job struct {
	Index   int    `json:"index"`
	Device  string `json:"device"`
	Kind    string `json:"kind"`
	Variant string `json:"variant"`
	Shard   int    `json:"shard"`
}

// Signature is a finding's de-duplication identity, mirroring
// core.Signature's (state, port, error-class) triple.
type Signature struct {
	State int `json:"State"`
	PSM   int `json:"PSM"`
	Class int `json:"Error"`
}

// Occurrence is one finding a job produced with its repeat count. Only
// the signature fields of the finding are decoded — identity is all the
// coverage curve needs.
type Occurrence struct {
	Finding Signature `json:"finding"`
	Count   int       `json:"count"`
}

// Summary is the slice of a job's trace-metrics summary the figures
// consume.
type Summary struct {
	Transmitted   int      `json:"Transmitted"`
	Malformed     int      `json:"Malformed"`
	States        []string `json:"States"`
	StatesCovered int      `json:"StatesCovered"`
}

// JobDone is one job-done journal record with its envelope offset.
type JobDone struct {
	// At is the record's envelope offset: when the result folded, on
	// the run's monotonic clock.
	At          time.Duration `json:"-"`
	Job         Job           `json:"job"`
	Worker      string        `json:"worker"`
	Err         string        `json:"err"`
	PacketsSent int           `json:"packetsSent"`
	Elapsed     time.Duration `json:"elapsedNs"`
	Wall        time.Duration `json:"wallNs"`
	Span        Span          `json:"span"`
	Crashed     bool          `json:"crashed"`
	Findings    []Occurrence  `json:"findings"`
	Summary     Summary       `json:"summary"`
	Done        int           `json:"done"`
	Total       int           `json:"total"`
}

// Failed reports whether the job errored. Failed jobs contribute wall
// time (they occupied a worker) but no packets, metrics or findings —
// the same rule the farm's aggregator folds by.
func (j JobDone) Failed() bool { return j.Err != "" }

// Sample is one periodic counter snapshot with its envelope offset.
type Sample struct {
	At time.Duration `json:"-"`
	telemetry.CounterSnapshot
}

// WorkerChange is one executor worker lifecycle record.
type WorkerChange struct {
	At     time.Duration `json:"-"`
	Worker string        `json:"worker"`
	Up     bool          `json:"up"`
	Err    string        `json:"err"`
}

// Run is one parsed journal, ready for the figure builders.
type Run struct {
	Header  Header
	Jobs    []JobDone // in journal (fold) order
	Samples []Sample
	Workers []WorkerChange
	// Duration is the largest envelope offset in the journal — the
	// run's observed wall extent on its own monotonic clock.
	Duration time.Duration
}

// Parse decodes a farm journal stream. The journal must open with a
// farm header of a schema version this package reads; records the
// figures do not consume (job-started, finding) are skipped.
func Parse(r io.Reader) (*Run, error) {
	run := &Run{}
	sawHeader := false
	err := telemetry.DecodeJournal(r, func(rec telemetry.Record) error {
		if rec.Offset > run.Duration {
			run.Duration = rec.Offset
		}
		switch rec.Type {
		case "farm":
			if err := json.Unmarshal(rec.Data, &run.Header); err != nil {
				return fmt.Errorf("analyze: farm record: %w", err)
			}
			if v := run.Header.Version; v < minVersion || v > maxVersion {
				return fmt.Errorf("analyze: journal schema version %d, this build reads %d..%d", v, minVersion, maxVersion)
			}
			sawHeader = true
		case "job-done":
			if !sawHeader {
				return errors.New("analyze: journal carries results before its farm header")
			}
			var jd JobDone
			if err := json.Unmarshal(rec.Data, &jd); err != nil {
				return fmt.Errorf("analyze: job-done record: %w", err)
			}
			jd.At = rec.Offset
			run.Jobs = append(run.Jobs, jd)
		case telemetry.RecordSample:
			var s Sample
			if err := json.Unmarshal(rec.Data, &s.CounterSnapshot); err != nil {
				return fmt.Errorf("analyze: sample record: %w", err)
			}
			s.At = rec.Offset
			run.Samples = append(run.Samples, s)
		case "worker":
			var w WorkerChange
			if err := json.Unmarshal(rec.Data, &w); err != nil {
				return fmt.Errorf("analyze: worker record: %w", err)
			}
			w.At = rec.Offset
			run.Workers = append(run.Workers, w)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if !sawHeader {
		return nil, errors.New("analyze: not a farm journal (no farm header record)")
	}
	return run, nil
}

// ParseFile parses a journal from disk. path may be the journal file
// itself, a run directory holding one, or a directory of run
// directories (the l2farm -journal layout), in which case the
// lexically last run — the newest, under the run-<timestamp> naming —
// is picked.
func ParseFile(path string) (*Run, error) {
	resolved, err := ResolveJournal(path)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(resolved)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Parse(f)
}

// ResolveJournal maps a user-supplied path to a journal file, applying
// ParseFile's directory conventions.
func ResolveJournal(path string) (string, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return "", err
	}
	if !fi.IsDir() {
		return path, nil
	}
	direct := filepath.Join(path, telemetry.JournalFile)
	if _, err := os.Stat(direct); err == nil {
		return direct, nil
	}
	entries, err := os.ReadDir(path)
	if err != nil {
		return "", err
	}
	var last string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		nested := filepath.Join(path, e.Name(), telemetry.JournalFile)
		if _, err := os.Stat(nested); err == nil {
			last = nested
		}
	}
	if last == "" {
		return "", fmt.Errorf("analyze: no %s under %s", telemetry.JournalFile, path)
	}
	return last, nil
}
