package analyze

import (
	"fmt"
	"time"
)

// TrendOptions tunes CompareTrend's regression thresholds. Both
// tolerances are one-sided relative bounds: only drops below the
// baseline regress — a run that covers more than its baseline never
// fails the gate.
type TrendOptions struct {
	// TotalTol bounds the allowed relative drop of each series' final
	// total. The farm's totals are seed-deterministic, so the default 0
	// demands exact equality or better.
	TotalTol float64
	// AUCTol bounds the allowed relative drop of each series'
	// normalized area-under-curve — the shape of the coverage curve.
	// Scheduling jitters shape even when totals are identical, so this
	// defaults to DefaultAUCTol rather than 0.
	AUCTol float64
}

// DefaultAUCTol is the default normalized-AUC drop tolerance: loose
// enough to absorb worker-scheduling jitter between identical configs,
// tight enough to flag a run whose coverage arrives materially later.
const DefaultAUCTol = 0.35

// SeriesDiff is one curve's baseline-vs-current comparison.
type SeriesDiff struct {
	Name                string
	BaseFinal, CurFinal int
	BaseAUC, CurAUC     float64
	TotalDrop, AUCDrop  float64 // relative drops, 0 when equal or improved
	Regressed           bool
	Reason              string
}

// Trend is a full coverage-curve comparison.
type Trend struct {
	Base, Cur Coverage
	Series    []SeriesDiff
	Regressed bool
}

// CompareTrend diffs two runs' coverage curves series by series. Final
// totals gate hard (deterministic); curve shape gates on normalized
// AUC: each curve is rescaled to x in [0,1] (its own duration) and y in
// [0,1] (its own final), so the AUC measures how front-loaded coverage
// was, independent of absolute wall time and totals.
func CompareTrend(base, cur Coverage, opt TrendOptions) Trend {
	if opt.AUCTol == 0 {
		opt.AUCTol = DefaultAUCTol
	}
	t := Trend{Base: base, Cur: cur}
	for _, bs := range base.Series {
		cs := cur.ByName(bs.Name)
		d := SeriesDiff{
			Name:      bs.Name,
			BaseFinal: bs.Final(),
			CurFinal:  cs.Final(),
			BaseAUC:   normalizedAUC(bs, base.Duration),
			CurAUC:    normalizedAUC(cs, cur.Duration),
		}
		d.TotalDrop = relDrop(float64(d.BaseFinal), float64(d.CurFinal))
		d.AUCDrop = relDrop(d.BaseAUC, d.CurAUC)
		switch {
		case d.TotalDrop > opt.TotalTol:
			d.Regressed = true
			d.Reason = fmt.Sprintf("final %d -> %d (-%.1f%% > %.1f%% tolerance)",
				d.BaseFinal, d.CurFinal, 100*d.TotalDrop, 100*opt.TotalTol)
		case d.AUCDrop > opt.AUCTol:
			d.Regressed = true
			d.Reason = fmt.Sprintf("AUC %.3f -> %.3f (-%.1f%% > %.1f%% tolerance): coverage arrives later",
				d.BaseAUC, d.CurAUC, 100*d.AUCDrop, 100*opt.AUCTol)
		}
		if d.Regressed {
			t.Regressed = true
		}
		t.Series = append(t.Series, d)
	}
	return t
}

// relDrop is the one-sided relative drop from base to cur: 0 when cur
// holds or improves, (base-cur)/base otherwise. A vanished baseline
// (base 0) cannot drop.
func relDrop(base, cur float64) float64 {
	if base <= 0 || cur >= base {
		return 0
	}
	return (base - cur) / base
}

// normalizedAUC integrates the step curve over x in [0,1] (time scaled
// by duration) with y scaled by the final value. A constant-from-zero
// curve scores 1; a curve that only reaches its total at the very end
// scores near 0. Degenerate curves (no duration or zero final) score 0.
func normalizedAUC(s Series, duration time.Duration) float64 {
	final := s.Final()
	if final <= 0 || duration <= 0 || len(s.Points) == 0 {
		return 0
	}
	d := float64(duration)
	var area float64
	for i, p := range s.Points {
		// The step holds p.Value from p.At until the next jump (or the
		// run's end).
		from := float64(p.At)
		to := d
		if i+1 < len(s.Points) {
			to = float64(s.Points[i+1].At)
		}
		if to > d {
			to = d
		}
		if to <= from {
			continue
		}
		area += (to - from) / d * float64(p.Value) / float64(final)
	}
	return area
}
