package analyze

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes one header row plus data rows — the one CSV pipeline
// every figure (and benchtab's trajectory export) goes through, so
// column conventions cannot drift between producers.
func WriteCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("analyze: write csv header: %w", err)
	}
	for _, row := range rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("analyze: write csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// CoverageCSV writes the coverage curves as one row per fold event:
// the shared offset plus each cumulative value. All four curves jump
// at the same fold offsets, so rows align one-to-one across series.
func CoverageCSV(w io.Writer, c Coverage) error {
	header := []string{"offset_ns", "seconds", SeriesPackets, SeriesMalformed, SeriesStates, SeriesFindings}
	n := len(c.ByName(SeriesPackets).Points)
	rows := make([][]string, 0, n)
	for i := 0; i < n; i++ {
		row := make([]string, 0, len(header))
		at := c.ByName(SeriesPackets).Points[i].At
		row = append(row,
			strconv.FormatInt(int64(at), 10),
			strconv.FormatFloat(at.Seconds(), 'f', 6, 64))
		for _, name := range []string{SeriesPackets, SeriesMalformed, SeriesStates, SeriesFindings} {
			row = append(row, strconv.Itoa(c.ByName(name).Points[i].Value))
		}
		rows = append(rows, row)
	}
	return WriteCSV(w, header, rows)
}

// LatencyCSV writes the per-group wall-time table.
func LatencyCSV(w io.Writer, by GroupBy, rows []LatencyRow) error {
	header := []string{string(by), "jobs", "failed", "min_ns", "p50_ns", "p90_ns", "max_ns", "mean_ns",
		"queue_ns", "dispatch_ns", "execute_ns", "transport_ns"}
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Group,
			strconv.Itoa(r.Jobs),
			strconv.Itoa(r.Failed),
			strconv.FormatInt(int64(r.Min), 10),
			strconv.FormatInt(int64(r.P50), 10),
			strconv.FormatInt(int64(r.P90), 10),
			strconv.FormatInt(int64(r.Max), 10),
			strconv.FormatInt(int64(r.Mean), 10),
			strconv.FormatInt(int64(r.Phases.Queue), 10),
			strconv.FormatInt(int64(r.Phases.Dispatch), 10),
			strconv.FormatInt(int64(r.Phases.Execute), 10),
			strconv.FormatInt(int64(r.Phases.Transport), 10),
		})
	}
	return WriteCSV(w, header, out)
}

// WorkersCSV writes the per-worker utilization table.
func WorkersCSV(w io.Writer, rows []WorkerRow) error {
	header := []string{"worker", "jobs", "busy_ns", "util"}
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Worker,
			strconv.Itoa(r.Jobs),
			strconv.FormatInt(int64(r.Busy), 10),
			strconv.FormatFloat(r.Util, 'f', 4, 64),
		})
	}
	return WriteCSV(w, header, out)
}

// TrendCSV writes the per-series comparison table.
func TrendCSV(w io.Writer, t Trend) error {
	header := []string{"series", "base_final", "cur_final", "base_auc", "cur_auc", "total_drop", "auc_drop", "regressed"}
	out := make([][]string, 0, len(t.Series))
	for _, d := range t.Series {
		out = append(out, []string{
			d.Name,
			strconv.Itoa(d.BaseFinal),
			strconv.Itoa(d.CurFinal),
			strconv.FormatFloat(d.BaseAUC, 'f', 6, 64),
			strconv.FormatFloat(d.CurAUC, 'f', 6, 64),
			strconv.FormatFloat(d.TotalDrop, 'f', 6, 64),
			strconv.FormatFloat(d.AUCDrop, 'f', 6, 64),
			strconv.FormatBool(d.Regressed),
		})
	}
	return WriteCSV(w, header, out)
}
