package analyze

import "time"

// Point is one cumulative reading: Value as of offset At.
type Point struct {
	At    time.Duration
	Value int
}

// Series is one cumulative coverage curve. Points are monotone in both
// coordinates and always start at (0, 0): the curve is a step function
// that jumps at each fold.
type Series struct {
	Name   string
	Points []Point
}

// Final is the curve's last value — the run total.
func (s Series) Final() int {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[len(s.Points)-1].Value
}

// ValueAt evaluates the step function at offset t (the last point at
// or before t).
func (s Series) ValueAt(t time.Duration) int {
	v := 0
	for _, p := range s.Points {
		if p.At > t {
			break
		}
		v = p.Value
	}
	return v
}

// The coverage series names, in figure order.
const (
	SeriesPackets   = "packets"
	SeriesMalformed = "malformed"
	SeriesStates    = "states"
	SeriesFindings  = "findings"
)

// Coverage is the paper's coverage-over-time figure: the four
// cumulative curves of one run on a shared time axis.
type Coverage struct {
	// Duration is the run's observed wall extent; every point's At is
	// within [0, Duration].
	Duration time.Duration
	// Interval is the journal's counter-sample period when the header
	// declared it — the honest x-axis resolution label for the sampled
	// series. Zero means unknown.
	Interval time.Duration
	// Series holds the packets, malformed, states and findings curves,
	// in that order.
	Series []Series
}

// ByName returns the named curve, or a zero Series.
func (c Coverage) ByName(name string) Series {
	for _, s := range c.Series {
		if s.Name == name {
			return s
		}
	}
	return Series{}
}

// Coverage folds the run's job results — in journal order, which is
// the farm's fold order — into the cumulative curves. The fold mirrors
// the farm aggregator exactly: failed jobs contribute nothing, states
// accumulate as a set union across job summaries, and findings count
// distinct (state, port, error-class) signatures. The final point of
// each curve therefore equals the replayed report's TotalPackets,
// Metrics.Malformed, Metrics.StatesCovered and len(Findings) — the
// exactness the package tests pin.
func (r *Run) Coverage() Coverage {
	series := []Series{
		{Name: SeriesPackets, Points: []Point{{}}},
		{Name: SeriesMalformed, Points: []Point{{}}},
		{Name: SeriesStates, Points: []Point{{}}},
		{Name: SeriesFindings, Points: []Point{{}}},
	}
	states := make(map[string]bool)
	sigs := make(map[Signature]bool)
	packets, malformed := 0, 0
	for _, jd := range r.Jobs {
		if jd.Failed() {
			continue
		}
		packets += jd.PacketsSent
		malformed += jd.Summary.Malformed
		for _, st := range jd.Summary.States {
			states[st] = true
		}
		for _, occ := range jd.Findings {
			sigs[occ.Finding] = true
		}
		for i, v := range []int{packets, malformed, len(states), len(sigs)} {
			series[i].Points = append(series[i].Points, Point{At: jd.At, Value: v})
		}
	}
	return Coverage{Duration: r.Duration, Interval: r.Header.SampleInterval, Series: series}
}
