package analyze

import (
	"fmt"
	"strings"
	"time"
)

// The chart chrome palette: a validated light-mode set — one
// categorical series hue (identity never rides on more than one color
// per panel), recessive grid and axis inks, and text in ink tokens
// rather than the series color.
const (
	svgSurface  = "#fcfcfb"
	svgSeries   = "#2a78d6"
	svgInk      = "#0b0b0b"
	svgInk2     = "#52514e"
	svgMuted    = "#898781"
	svgGrid     = "#e1e0d9"
	svgBaseline = "#c3c2b7"
	svgFont     = `font-family="system-ui, -apple-system, 'Segoe UI', sans-serif"`
)

// svgHeader opens a self-contained SVG document of the given size.
func svgHeader(b *strings.Builder, w, h int) {
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" role="img">`+"\n", w, h, w, h)
	fmt.Fprintf(b, `<rect width="%d" height="%d" fill="%s"/>`+"\n", w, h, svgSurface)
}

func svgText(b *strings.Builder, x, y float64, size int, fill, anchor, extra, s string) {
	fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-size="%d" fill="%s" text-anchor="%s" %s %s>%s</text>`+"\n",
		x, y, size, fill, anchor, svgFont, extra, s)
}

// fmtCount renders an axis count tick compactly (12k, 1.2M).
func fmtCount(v int) string {
	switch {
	case v >= 1_000_000:
		return strings.TrimSuffix(fmt.Sprintf("%.1f", float64(v)/1e6), ".0") + "M"
	case v >= 1_000:
		return strings.TrimSuffix(fmt.Sprintf("%.1f", float64(v)/1e3), ".0") + "k"
	default:
		return fmt.Sprintf("%d", v)
	}
}

func fmtSeconds(d time.Duration) string {
	return strings.TrimSuffix(fmt.Sprintf("%.1f", d.Seconds()), ".0") + "s"
}

// panel draws one small-multiple: a single cumulative step curve with
// its own y scale — four measures of four different magnitudes never
// share an axis — titled with the series name and direct-labeled at
// its final value.
func panel(b *strings.Builder, s Series, duration time.Duration, x, y, w, h float64) {
	const padL, padR, padT, padB = 44, 14, 26, 22
	plotX, plotY := x+padL, y+padT
	plotW, plotH := w-padL-padR, h-padT-padB
	final := s.Final()
	yMax := final
	if yMax == 0 {
		yMax = 1
	}
	sx := func(t time.Duration) float64 {
		if duration <= 0 {
			return plotX
		}
		return plotX + float64(t)/float64(duration)*plotW
	}
	sy := func(v int) float64 { return plotY + plotH - float64(v)/float64(yMax)*plotH }

	svgText(b, x+padL, y+16, 13, svgInk2, "start", `font-weight="600"`, s.Name)

	// Hairline grid at the y ticks; the baseline doubles as the 0 tick.
	for _, v := range []int{yMax / 2, yMax} {
		fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1"/>`+"\n",
			plotX, sy(v), plotX+plotW, sy(v), svgGrid)
		svgText(b, plotX-6, sy(v)+3.5, 10, svgMuted, "end", `font-variant-numeric="tabular-nums"`, fmtCount(v))
	}
	fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1"/>`+"\n",
		plotX, plotY+plotH, plotX+plotW, plotY+plotH, svgBaseline)
	svgText(b, plotX-6, plotY+plotH+3.5, 10, svgMuted, "end", `font-variant-numeric="tabular-nums"`, "0")
	for i := 0; i <= 2; i++ {
		t := duration * time.Duration(i) / 2
		svgText(b, sx(t), plotY+plotH+14, 10, svgMuted, "middle", `font-variant-numeric="tabular-nums"`, fmtSeconds(t))
	}

	// The cumulative curve is a step function: hold each value until
	// the next fold, then jump.
	var path strings.Builder
	for i, p := range s.Points {
		if i == 0 {
			fmt.Fprintf(&path, "M%.1f %.1f", sx(p.At), sy(p.Value))
			continue
		}
		fmt.Fprintf(&path, " H%.1f V%.1f", sx(p.At), sy(p.Value))
	}
	fmt.Fprintf(&path, " H%.1f", plotX+plotW)
	fmt.Fprintf(b, `<path d="%s" fill="none" stroke="%s" stroke-width="2" stroke-linejoin="round"/>`+"\n",
		path.String(), svgSeries)

	// One selective direct label: the final total, in ink beside a
	// series-colored end marker.
	endY := sy(final)
	fmt.Fprintf(b, `<circle cx="%.1f" cy="%.1f" r="3.5" fill="%s" stroke="%s" stroke-width="2"/>`+"\n",
		plotX+plotW, endY, svgSeries, svgSurface)
	labelY := endY - 6
	if labelY < plotY+10 {
		labelY = endY + 14
	}
	svgText(b, plotX+plotW, labelY, 11, svgInk, "end", `font-weight="600" font-variant-numeric="tabular-nums"`, fmtCount(final))
}

// CoverageSVG renders the coverage figure as a self-contained SVG:
// the four cumulative curves as 2×2 small multiples on a shared time
// axis, each panel with its own count scale.
func CoverageSVG(c Coverage) []byte {
	const width, height = 960, 620
	const panelW, panelH = 470, 280
	var b strings.Builder
	svgHeader(&b, width, height)
	svgText(&b, 16, 26, 15, svgInk, "start", `font-weight="600"`, "Coverage over time")
	sub := fmt.Sprintf("cumulative per fold, %s run", fmtSeconds(c.Duration))
	if c.Interval > 0 {
		sub += fmt.Sprintf(", counters sampled every %s", c.Interval)
	}
	svgText(&b, 16, 44, 12, svgInk2, "start", "", sub)
	for i, s := range c.Series {
		x := float64(8 + (i%2)*panelW)
		y := float64(56 + (i/2)*panelH)
		panel(&b, s, c.Duration, x, y, panelW, panelH)
	}
	b.WriteString("</svg>\n")
	return []byte(b.String())
}

// WorkersSVG renders the per-worker utilization timeline as a Gantt
// strip: one row per worker, one bar per busy window.
func WorkersSVG(rows []WorkerRow, duration time.Duration) []byte {
	const width = 960
	const rowH, barH, top, left, right = 26, 14, 64, 120, 70
	height := top + rowH*len(rows) + 40
	plotW := float64(width - left - right)
	sx := func(t time.Duration) float64 {
		if duration <= 0 {
			return float64(left)
		}
		return float64(left) + float64(t)/float64(duration)*plotW
	}
	var b strings.Builder
	svgHeader(&b, width, height)
	svgText(&b, 16, 26, 15, svgInk, "start", `font-weight="600"`, "Worker utilization")
	svgText(&b, 16, 44, 12, svgInk2, "start", "",
		fmt.Sprintf("busy windows over the %s run", fmtSeconds(duration)))
	for i := 0; i <= 4; i++ {
		t := duration * time.Duration(i) / 4
		x := sx(t)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="%s" stroke-width="1"/>`+"\n",
			x, top-8, x, top+rowH*len(rows), svgGrid)
		svgText(&b, x, float64(top+rowH*len(rows)+16), 10, svgMuted, "middle", `font-variant-numeric="tabular-nums"`, fmtSeconds(t))
	}
	for i, r := range rows {
		y := float64(top + i*rowH)
		svgText(&b, float64(left-8), y+float64(barH)-2.5, 11, svgInk2, "end", "", r.Worker)
		for _, iv := range r.Intervals {
			x0, x1 := sx(iv.From), sx(iv.To)
			w := x1 - x0 - 2 // a 2px surface gap separates adjacent windows
			if w < 1 {
				w = 1
			}
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%d" rx="2" fill="%s"><title>job %d</title></rect>`+"\n",
				x0, y, w, barH, svgSeries, iv.Index)
		}
		svgText(&b, float64(width-right+8), y+float64(barH)-2.5, 11, svgInk, "start", `font-variant-numeric="tabular-nums"`,
			fmt.Sprintf("%.0f%%", 100*r.Util))
	}
	b.WriteString("</svg>\n")
	return []byte(b.String())
}

// LatencySVG renders the per-group mean wall times as a horizontal bar
// chart with direct value labels.
func LatencySVG(by GroupBy, rows []LatencyRow) []byte {
	const width = 960
	const rowH, barH, top, left, right = 30, 18, 64, 140, 110
	height := top + rowH*len(rows) + 24
	var max time.Duration
	for _, r := range rows {
		if r.Mean > max {
			max = r.Mean
		}
	}
	if max <= 0 {
		max = 1
	}
	plotW := float64(width - left - right)
	var b strings.Builder
	svgHeader(&b, width, height)
	svgText(&b, 16, 26, 15, svgInk, "start", `font-weight="600"`, "Mean job wall time by "+string(by))
	svgText(&b, 16, 44, 12, svgInk2, "start", "", "per-group mean across all jobs, failed included")
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="1"/>`+"\n",
		left, top-8, left, top+rowH*len(rows), svgBaseline)
	for i, r := range rows {
		y := float64(top + i*rowH)
		w := float64(r.Mean) / float64(max) * plotW
		if w < 1 {
			w = 1
		}
		svgText(&b, float64(left-8), y+float64(barH)-4, 11, svgInk2, "end", "", r.Group)
		fmt.Fprintf(&b, `<rect x="%d" y="%.1f" width="%.1f" height="%d" rx="4" fill="%s"/>`+"\n",
			left, y, w, barH, svgSeries)
		svgText(&b, float64(left)+w+8, y+float64(barH)-4, 11, svgInk, "start", `font-variant-numeric="tabular-nums"`,
			r.Mean.Round(time.Millisecond).String())
	}
	b.WriteString("</svg>\n")
	return []byte(b.String())
}
