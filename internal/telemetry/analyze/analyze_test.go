package analyze_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"l2fuzz/internal/fleet"
	"l2fuzz/internal/telemetry"
	"l2fuzz/internal/telemetry/analyze"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// liveMatrix is a small finding-producing matrix, mirroring the fleet
// journal tests' shape so the analyzer is exercised against the same
// journals the farm pins.
func liveMatrix(workers int) fleet.Config {
	return fleet.Config{
		Devices:          []string{"D2", "D5"},
		Kinds:            []fleet.Kind{fleet.KindL2Fuzz, fleet.KindRFCOMM, fleet.KindCampaign},
		Shards:           2,
		BaseSeed:         7,
		Workers:          workers,
		MaxPacketsPerJob: 20_000,
		CampaignRuns:     2,
	}
}

// liveOnce runs one journaled live farm for all tests that need it —
// the farm is the expensive part, the analyses are cheap.
var liveOnce = sync.OnceValues(func() (struct {
	journal []byte
	report  *fleet.Report
}, error) {
	var out struct {
		journal []byte
		report  *fleet.Report
	}
	var buf bytes.Buffer
	cfg := liveMatrix(4)
	cfg.Journal = telemetry.NewJournal(&buf)
	cfg.Counters = &telemetry.Counters{}
	cfg.SampleInterval = 2 * time.Millisecond
	farm, err := fleet.Start(cfg)
	if err != nil {
		return out, err
	}
	// The sampler starts after the farm, exactly as cmd/l2farm wires it,
	// so every sample lands after the epoch-setting header.
	stop := cfg.Journal.StartSampler(cfg.Counters, cfg.SampleInterval)
	out.report = farm.Wait()
	stop()
	out.journal = buf.Bytes()
	return out, nil
})

func liveRun(t *testing.T) (*analyze.Run, *fleet.Report) {
	t.Helper()
	out, err := liveOnce()
	if err != nil {
		t.Fatal(err)
	}
	run, err := analyze.Parse(bytes.NewReader(out.journal))
	if err != nil {
		t.Fatal(err)
	}
	return run, out.report
}

// TestCoverageExactAgainstReplay is the tentpole's acceptance pin: the
// final point of every cumulative coverage curve equals the
// corresponding total of the report the same journal replays into.
func TestCoverageExactAgainstReplay(t *testing.T) {
	run, live := liveRun(t)
	replayed, err := fleet.ReplayJournal(liveMatrix(4), bytes.NewReader(mustJournal(t)))
	if err != nil {
		t.Fatal(err)
	}
	cov := run.Coverage()
	if got, want := cov.ByName(analyze.SeriesPackets).Final(), replayed.TotalPackets; got != want {
		t.Errorf("packets final = %d, want the report's TotalPackets %d", got, want)
	}
	if got, want := cov.ByName(analyze.SeriesMalformed).Final(), replayed.Metrics.Malformed; got != want {
		t.Errorf("malformed final = %d, want the report's Metrics.Malformed %d", got, want)
	}
	if got, want := cov.ByName(analyze.SeriesStates).Final(), replayed.Metrics.StatesCovered; got != want {
		t.Errorf("states final = %d, want the report's StatesCovered %d", got, want)
	}
	if got, want := cov.ByName(analyze.SeriesFindings).Final(), len(replayed.Findings); got != want {
		t.Errorf("findings final = %d, want the report's %d findings", got, want)
	}
	if cov.ByName(analyze.SeriesFindings).Final() == 0 || cov.ByName(analyze.SeriesMalformed).Final() == 0 {
		t.Error("matrix produced no findings or malformed packets; the exactness pin was vacuous")
	}
	if live.TotalPackets != replayed.TotalPackets {
		t.Errorf("live and replayed reports disagree on packets (%d vs %d)", live.TotalPackets, replayed.TotalPackets)
	}
	if cov.Interval != 2*time.Millisecond {
		t.Errorf("coverage Interval = %v, want the configured 2ms sample interval", cov.Interval)
	}
}

func mustJournal(t *testing.T) []byte {
	t.Helper()
	out, err := liveOnce()
	if err != nil {
		t.Fatal(err)
	}
	return out.journal
}

// TestSeriesTimestampsMonotoneWithinWall pins the one-clock-origin
// fix: journal record offsets, counter samples and job trace spans all
// measure from the farm's start, so the coverage series' timestamps
// are monotone and bounded by the report's total wall.
func TestSeriesTimestampsMonotoneWithinWall(t *testing.T) {
	run, live := liveRun(t)
	if live.Wall <= 0 {
		t.Fatal("live report has no wall time; the bound would be vacuous")
	}
	for _, s := range run.Coverage().Series {
		last := time.Duration(-1)
		lastVal := -1
		for i, p := range s.Points {
			if p.At < last {
				t.Fatalf("%s point %d at %v is before its predecessor %v", s.Name, i, p.At, last)
			}
			if p.Value < lastVal {
				t.Fatalf("%s point %d value %d dropped below %d (cumulative curves never fall)", s.Name, i, p.Value, lastVal)
			}
			last, lastVal = p.At, p.Value
		}
		if last > live.Wall {
			t.Errorf("%s series ends at %v, after the report's total wall %v", s.Name, last, live.Wall)
		}
	}
	if len(run.Samples) == 0 {
		t.Fatal("no counter samples landed; the sample-clock pin was vacuous")
	}
	last := time.Duration(-1)
	for i, s := range run.Samples {
		if s.At < last {
			t.Fatalf("sample %d at %v is before its predecessor %v", i, s.At, last)
		}
		last = s.At
	}
	// Spans share the origin too: every executed job's phases are
	// ordered and end within the run's journal extent.
	for _, jd := range run.Jobs {
		sp := jd.Span
		if sp.IsZero() {
			t.Fatalf("job %d has no trace span", jd.Job.Index)
		}
		if sp.QueuedNs > sp.DispatchedNs || sp.DispatchedNs > sp.StartedNs || sp.StartedNs > sp.FinishedNs {
			t.Fatalf("job %d span phases out of order: %+v", jd.Job.Index, sp)
		}
		if sp.FinishedNs > live.Wall {
			t.Errorf("job %d span finishes at %v, after the farm wall %v", jd.Job.Index, sp.FinishedNs, live.Wall)
		}
		if !jd.Failed() && sp.ExecNs <= 0 {
			t.Errorf("job %d executed but measured no execution time", jd.Job.Index)
		}
		if jd.Worker != fleet.LocalWorkerID {
			t.Errorf("job %d attributed to worker %q, want %q", jd.Job.Index, jd.Worker, fleet.LocalWorkerID)
		}
	}
}

// ciConfig mirrors the journaled-farm CI step's l2farm flags; the
// committed fixture was recorded under exactly this matrix.
func ciConfig() fleet.Config {
	return fleet.Config{
		Devices:          []string{"D2", "D5"},
		Kinds:            []fleet.Kind{fleet.KindL2Fuzz, fleet.KindRFCOMM, fleet.KindSDP, fleet.KindSM},
		BaseSeed:         1,
		MaxPacketsPerJob: 20_000,
	}
}

// TestFixtureCoverageExact pins the committed CI-baseline fixture the
// trend gate compares against: it parses, replays under the CI farm
// config, and its curve finals equal the replayed totals — so the
// fixture cannot silently drift from the ci.yml farm invocation.
func TestFixtureCoverageExact(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "ci-baseline.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	run, err := analyze.Parse(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := fleet.ReplayJournal(ciConfig(), bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	cov := run.Coverage()
	finals := map[string]int{
		analyze.SeriesPackets:   replayed.TotalPackets,
		analyze.SeriesMalformed: replayed.Metrics.Malformed,
		analyze.SeriesStates:    replayed.Metrics.StatesCovered,
		analyze.SeriesFindings:  len(replayed.Findings),
	}
	for name, want := range finals {
		if got := cov.ByName(name).Final(); got != want {
			t.Errorf("%s final = %d, want %d", name, got, want)
		}
		if want == 0 {
			t.Errorf("replayed %s total is zero; the fixture pin is vacuous", name)
		}
	}
	if run.Header.SampleInterval != time.Second {
		t.Errorf("fixture header sample interval = %v, want the default 1s", run.Header.SampleInterval)
	}
	if len(run.Workers) == 0 {
		t.Error("fixture carries no worker lifecycle records (recorded with -exec proc)")
	}
}

// TestLatencyRows pins the breakdown axes over the fixture: every axis
// partitions the full job set, and an unknown axis is rejected.
func TestLatencyRows(t *testing.T) {
	run := fixtureRun(t)
	for _, by := range []analyze.GroupBy{analyze.ByDevice, analyze.ByKind, analyze.ByVariant} {
		rows, err := run.Latency(by)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, r := range rows {
			total += r.Jobs
			if r.Max < r.P90 || r.P90 < r.P50 || r.P50 < r.Min {
				t.Errorf("%s row %q: percentile ordering broken: min %v p50 %v p90 %v max %v",
					by, r.Group, r.Min, r.P50, r.P90, r.Max)
			}
			histSum := 0
			for _, n := range r.Hist {
				histSum += n
			}
			if histSum != r.Jobs {
				t.Errorf("%s row %q: histogram holds %d jobs, want %d", by, r.Group, histSum, r.Jobs)
			}
		}
		if total != len(run.Jobs) {
			t.Errorf("latency by %s covers %d jobs, want all %d", by, total, len(run.Jobs))
		}
	}
	if _, err := run.Latency("shoe-size"); err == nil {
		t.Error("unknown latency axis was accepted")
	}
}

// TestWorkerTimelines pins utilization reconstruction over the proc-
// executor fixture: four subprocess workers, every job attributed,
// utilization within [0, 1].
func TestWorkerTimelines(t *testing.T) {
	run := fixtureRun(t)
	rows := run.WorkerTimelines()
	if len(rows) != 4 {
		t.Fatalf("got %d worker rows, want the fixture's 4 proc workers", len(rows))
	}
	total := 0
	for _, r := range rows {
		total += r.Jobs
		if r.Util < 0 || r.Util > 1 {
			t.Errorf("worker %s utilization %v outside [0, 1]", r.Worker, r.Util)
		}
		if r.Busy <= 0 {
			t.Errorf("worker %s has no busy time despite %d jobs", r.Worker, r.Jobs)
		}
		if len(r.Timeline) == 0 {
			t.Errorf("worker %s has no occupancy timeline", r.Worker)
		}
	}
	if total != len(run.Jobs) {
		t.Errorf("worker rows cover %d jobs, want all %d", total, len(run.Jobs))
	}
}

func fixtureRun(t *testing.T) *analyze.Run {
	t.Helper()
	run, err := analyze.ParseFile(filepath.Join("testdata", "ci-baseline.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	return run
}

// TestParseRejectsNonJournals pins the parser guardrails.
func TestParseRejectsNonJournals(t *testing.T) {
	if _, err := analyze.Parse(bytes.NewReader(nil)); err == nil {
		t.Error("empty input parsed as a journal")
	}
	bad := []byte(`{"time":"2026-01-01T00:00:00Z","offsetNs":0,"type":"farm","data":{"version":99}}` + "\n")
	if _, err := analyze.Parse(bytes.NewReader(bad)); err == nil {
		t.Error("unknown schema version was accepted")
	}
	orphan := []byte(`{"time":"2026-01-01T00:00:00Z","offsetNs":0,"type":"job-done","data":{}}` + "\n")
	if _, err := analyze.Parse(bytes.NewReader(orphan)); err == nil {
		t.Error("job-done before the farm header was accepted")
	}
}

// TestCoverageSVGGolden pins the committed example figure: the SVG in
// docs/ is exactly what the analyzer renders from the committed
// fixture, so the README's chart can never drift from the code.
// Regenerate with -update.
func TestCoverageSVGGolden(t *testing.T) {
	run := fixtureRun(t)
	got := analyze.CoverageSVG(run.Coverage())
	golden := filepath.Join("..", "..", "..", "docs", "coverage.svg")
	if *updateGolden {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("docs/coverage.svg drifted from the fixture rendering; regenerate with go test ./internal/telemetry/analyze -update")
	}
}

// TestRendersAreNonEmpty smoke-tests every renderer over the fixture:
// deterministic inputs, non-empty deterministic outputs.
func TestRendersAreNonEmpty(t *testing.T) {
	run := fixtureRun(t)
	cov := run.Coverage()
	lat, err := run.Latency(analyze.ByKind)
	if err != nil {
		t.Fatal(err)
	}
	wk := run.WorkerTimelines()
	for name, out := range map[string]string{
		"coverage": analyze.RenderCoverage(cov),
		"latency":  analyze.RenderLatency(analyze.ByKind, lat),
		"workers":  analyze.RenderWorkers(wk, run.Duration),
		"trend":    analyze.RenderTrend(analyze.CompareTrend(cov, cov, analyze.TrendOptions{})),
	} {
		if len(out) == 0 {
			t.Errorf("%s rendered empty", name)
		}
	}
	var csvs bytes.Buffer
	if err := analyze.CoverageCSV(&csvs, cov); err != nil {
		t.Fatal(err)
	}
	if lines := bytes.Count(csvs.Bytes(), []byte("\n")); lines != len(cov.ByName(analyze.SeriesPackets).Points)+1 {
		t.Errorf("coverage CSV has %d lines, want header + %d points", lines, len(cov.ByName(analyze.SeriesPackets).Points))
	}
	for name, render := range map[string]func() error{
		"latency": func() error { return analyze.LatencyCSV(&bytes.Buffer{}, analyze.ByKind, lat) },
		"workers": func() error { return analyze.WorkersCSV(&bytes.Buffer{}, wk) },
		"trend": func() error {
			return analyze.TrendCSV(&bytes.Buffer{}, analyze.CompareTrend(cov, cov, analyze.TrendOptions{}))
		},
	} {
		if err := render(); err != nil {
			t.Errorf("%s CSV: %v", name, err)
		}
	}
	for name, svg := range map[string][]byte{
		"latency": analyze.LatencySVG(analyze.ByKind, lat),
		"workers": analyze.WorkersSVG(wk, run.Duration),
	} {
		if !bytes.HasPrefix(svg, []byte("<svg ")) || !bytes.HasSuffix(bytes.TrimSpace(svg), []byte("</svg>")) {
			t.Errorf("%s SVG is not a self-contained document", name)
		}
	}
}
