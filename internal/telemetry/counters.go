package telemetry

import "sync/atomic"

// Counters is the farm's hot-path counter set. All methods are safe on
// a nil receiver and allocate nothing, so instrumented code calls them
// unconditionally: a run without telemetry pays one nil check per
// event. One Counters value is shared by every worker of a farm; the
// fields are independent atomics, so concurrent bumps never contend on
// a lock.
type Counters struct {
	frames      atomic.Int64
	bytes       atomic.Int64
	packets     atomic.Int64
	malformed   atomic.Int64
	mutations   atomic.Int64
	findings    atomic.Int64
	jobsStarted atomic.Int64
	jobsDone    atomic.Int64
	jobsFailed  atomic.Int64
}

// CountFrame records one frame of n bytes carried on the radio medium.
func (c *Counters) CountFrame(n int) {
	if c == nil {
		return
	}
	c.frames.Add(1)
	c.bytes.Add(int64(n))
}

// CountPacket records one fuzzing packet handed to the target.
func (c *Counters) CountPacket() {
	if c == nil {
		return
	}
	c.packets.Add(1)
}

// AddPackets records n fuzzing packets at once (connection setup
// traffic is counted in bulk).
func (c *Counters) AddPackets(n int) {
	if c == nil || n == 0 {
		return
	}
	c.packets.Add(int64(n))
}

// AddFrames records frames radio frames carrying bytes payload bytes at
// once — the batch form of CountFrame for taps that tally locally and
// flush periodically.
func (c *Counters) AddFrames(frames int, bytes int64) {
	if c == nil || frames == 0 {
		return
	}
	c.frames.Add(int64(frames))
	c.bytes.Add(bytes)
}

// CountMalformed records one malformed packet.
func (c *Counters) CountMalformed() {
	if c == nil {
		return
	}
	c.malformed.Add(1)
}

// CountMutation records one successful mutation.
func (c *Counters) CountMutation() {
	if c == nil {
		return
	}
	c.mutations.Add(1)
}

// AddMalformed records n malformed packets at once (batch form).
func (c *Counters) AddMalformed(n int) {
	if c == nil || n == 0 {
		return
	}
	c.malformed.Add(int64(n))
}

// AddMutations records n successful mutations at once (batch form).
func (c *Counters) AddMutations(n int) {
	if c == nil || n == 0 {
		return
	}
	c.mutations.Add(int64(n))
}

// AddFindings records n freshly de-duplicated findings.
func (c *Counters) AddFindings(n int) {
	if c == nil || n == 0 {
		return
	}
	c.findings.Add(int64(n))
}

// CountJobStarted records one job entering a worker.
func (c *Counters) CountJobStarted() {
	if c == nil {
		return
	}
	c.jobsStarted.Add(1)
}

// CountJobDone records one job leaving a worker; failed marks it as
// errored rather than completed.
func (c *Counters) CountJobDone(failed bool) {
	if c == nil {
		return
	}
	c.jobsDone.Add(1)
	if failed {
		c.jobsFailed.Add(1)
	}
}

// Merge folds a snapshot's totals into the counters. This is the batch
// path contended farms use: each job counts into a private Counters —
// whose cache lines stay local to one worker — and the worker merges
// the totals into the farm-wide set when the job completes, so the
// per-packet hot path never bounces a shared cache line between cores.
func (c *Counters) Merge(s CounterSnapshot) {
	if c == nil {
		return
	}
	c.frames.Add(s.Frames)
	c.bytes.Add(s.Bytes)
	c.packets.Add(s.Packets)
	c.malformed.Add(s.Malformed)
	c.mutations.Add(s.Mutations)
	c.findings.Add(s.Findings)
	c.jobsStarted.Add(s.JobsStarted)
	c.jobsDone.Add(s.JobsDone)
	c.jobsFailed.Add(s.JobsFailed)
}

// CounterSnapshot is a point-in-time copy of a Counters value, shaped
// for JSON (journal samples, the /snapshot endpoint) and for the
// Prometheus text rendering.
type CounterSnapshot struct {
	Frames      int64 `json:"frames"`
	Bytes       int64 `json:"bytes"`
	Packets     int64 `json:"packets"`
	Malformed   int64 `json:"malformed"`
	Mutations   int64 `json:"mutations"`
	Findings    int64 `json:"findings"`
	JobsStarted int64 `json:"jobsStarted"`
	JobsDone    int64 `json:"jobsDone"`
	JobsFailed  int64 `json:"jobsFailed"`
}

// Snapshot reads every counter once. The reads are individually atomic
// but not mutually consistent — good enough for sampling a live run. A
// nil receiver yields the zero snapshot.
func (c *Counters) Snapshot() CounterSnapshot {
	if c == nil {
		return CounterSnapshot{}
	}
	return CounterSnapshot{
		Frames:      c.frames.Load(),
		Bytes:       c.bytes.Load(),
		Packets:     c.packets.Load(),
		Malformed:   c.malformed.Load(),
		Mutations:   c.mutations.Load(),
		Findings:    c.findings.Load(),
		JobsStarted: c.jobsStarted.Load(),
		JobsDone:    c.jobsDone.Load(),
		JobsFailed:  c.jobsFailed.Load(),
	}
}
