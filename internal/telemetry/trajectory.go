package telemetry

import (
	"fmt"
	"strings"
)

// TrajectorySnapshot pairs one committed bench snapshot with the label it
// is rendered under — by convention the PR number out of its
// BENCH_<pr>.json filename.
type TrajectorySnapshot struct {
	// Label identifies the snapshot in the table (e.g. "6", "8", "9").
	Label string
	// Snapshot is the snapshot's decoded content.
	Snapshot BenchSnapshot
}

// RenderBenchTrajectory renders the cross-PR performance trajectory: one
// block per bench-row name, one line per snapshot, with percentage
// deltas against the previous snapshot that measured the same row.
//
// Rows whose name starts with "pre/" are skipped: those are same-host
// baselines recorded inside a snapshot for before/after comparison, not
// trajectory points. Parent-only rows are annotated; their deltas are
// meaningful because rows only ever compare against same-named rows,
// which share the measurement scope.
func RenderBenchTrajectory(snaps []TrajectorySnapshot) string {
	if len(snaps) == 0 {
		return "benchmark trajectory: no snapshots"
	}

	// Collect row names in first-seen order across snapshots.
	var names []string
	seen := make(map[string]bool)
	for _, ts := range snaps {
		for _, row := range ts.Snapshot.Rows {
			if strings.HasPrefix(row.Name, "pre/") || seen[row.Name] {
				continue
			}
			seen[row.Name] = true
			names = append(names, row.Name)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Benchmark trajectory (%s)\n", snaps[0].Snapshot.Bench)
	for _, name := range names {
		fmt.Fprintf(&b, "\n%s\n", name)
		fmt.Fprintf(&b, "  %-4s %12s %10s %12s  %s\n", "PR", "pkts/s", "MB/op", "allocs/op", "delta vs prev")
		var prev *BenchRow
		for _, ts := range snaps {
			row, ok := findRow(ts.Snapshot.Rows, name)
			if !ok {
				continue
			}
			alloc := fmt.Sprintf("%d", row.AllocsPerOp)
			note := ""
			if row.ParentOnly {
				note = " (parent process only)"
			}
			delta := ""
			if prev != nil {
				delta = fmt.Sprintf("pkts/s %s, MB %s, allocs %s",
					pct(row.PktsPerSec, prev.PktsPerSec),
					pct(row.MBPerOp, prev.MBPerOp),
					pct(float64(row.AllocsPerOp), float64(prev.AllocsPerOp)))
			}
			fmt.Fprintf(&b, "  %-4s %12.0f %10.1f %12s%s  %s\n",
				ts.Label, row.PktsPerSec, row.MBPerOp, alloc, note, delta)
			prev = &row
		}
	}
	return b.String()
}

func findRow(rows []BenchRow, name string) (BenchRow, bool) {
	for _, r := range rows {
		if r.Name == name {
			return r, true
		}
	}
	return BenchRow{}, false
}

// pct formats the relative change from prev to cur as a signed
// percentage, or "n/a" when prev is zero.
func pct(cur, prev float64) string {
	if prev == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.0f%%", 100*(cur-prev)/prev)
}
