package telemetry

import (
	"path/filepath"
	"reflect"
	"testing"
)

func TestMeasureFillsRow(t *testing.T) {
	row := Measure(func() (int64, int) {
		_ = make([]byte, 1<<20)
		return 5000, 2
	})
	if row.Packets != 5000 || row.Findings != 2 {
		t.Fatalf("row = %+v", row)
	}
	if row.WallSeconds <= 0 || row.PktsPerSec <= 0 {
		t.Fatalf("timing not measured: %+v", row)
	}
	if row.MBPerOp <= 0 || row.AllocsPerOp <= 0 {
		t.Fatalf("allocation cost not measured: %+v", row)
	}
}

func TestBenchSnapshotRoundTrip(t *testing.T) {
	s := NewBenchSnapshot("BenchmarkFleet", []BenchRow{
		{Name: "workers=1", Workers: 1, Packets: 100, PktsPerSec: 50},
		{Name: "workers=4/telemetry", Workers: 4, Telemetry: true, Packets: 400},
	})
	if s.Go == "" || s.CPUs == 0 {
		t.Fatalf("host context not stamped: %+v", s)
	}
	path := filepath.Join(t.TempDir(), "BENCH.json")
	if err := WriteBenchSnapshot(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("round trip diverged:\ngot  %+v\nwant %+v", got, s)
	}
}
