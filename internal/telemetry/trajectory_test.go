package telemetry

import (
	"path/filepath"
	"strings"
	"testing"
)

func trajFixture() []TrajectorySnapshot {
	return []TrajectorySnapshot{
		{Label: "6", Snapshot: BenchSnapshot{Bench: "BenchmarkFleet", Rows: []BenchRow{
			{Name: "workers=4", Workers: 4, PktsPerSec: 100000, MBPerOp: 700, AllocsPerOp: 29000000},
			{Name: "workers=4/proc", Workers: 4, PktsPerSec: 9000, MBPerOp: 0.2, AllocsPerOp: 1300, ParentOnly: true},
		}}},
		{Label: "9", Snapshot: BenchSnapshot{Bench: "BenchmarkFleet", Rows: []BenchRow{
			{Name: "pre/workers=4", Workers: 4, PktsPerSec: 100000, MBPerOp: 700, AllocsPerOp: 29000000},
			{Name: "workers=4", Workers: 4, PktsPerSec: 200000, MBPerOp: 140, AllocsPerOp: 1600000},
			{Name: "workers=4/proc", Workers: 4, PktsPerSec: 9500, MBPerOp: 0.2, AllocsPerOp: 1300, ParentOnly: true},
		}}},
	}
}

func TestRenderBenchTrajectory(t *testing.T) {
	out := RenderBenchTrajectory(trajFixture())
	for _, want := range []string{
		"workers=4\n",           // row block present
		"(parent process only)", // ParentOnly annotation
		"pkts/s +100%",          // delta vs the PR 6 row
		"allocs -94%",           // the pooling win
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("trajectory missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "pre/") {
		t.Fatalf("pre/ baseline rows must be skipped:\n%s", out)
	}
	if RenderBenchTrajectory(nil) != "benchmark trajectory: no snapshots" {
		t.Fatalf("empty input not handled")
	}
}

// TestParentOnlyRoundTrip pins the schema: the parentOnly marker must
// survive the JSON snapshot format, or proc rows silently read back as
// full-process measurements.
func TestParentOnlyRoundTrip(t *testing.T) {
	s := NewBenchSnapshot("BenchmarkFleet", []BenchRow{
		{Name: "workers=4/proc", Workers: 4, ParentOnly: true, Packets: 100},
	})
	path := filepath.Join(t.TempDir(), "BENCH.json")
	if err := WriteBenchSnapshot(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Rows[0].ParentOnly {
		t.Fatalf("ParentOnly lost in round trip: %+v", got.Rows[0])
	}
}
