// Package campaign implements the long-term fuzzing the paper's §V
// names as its first limitation: "when a fatal bug is triggered on the
// target device, it forcibly shuts down Bluetooth. Therefore, the tester
// must manually reset the device to perform another test. We will
// consider overcoming this issue by leveraging a virtual environment."
//
// This reproduction *is* that virtual environment, so the campaign
// runner closes the loop: it runs L2Fuzz repeatedly against one target,
// automatically resets the device after every finding (the virtual
// analogue of the manual reboot), de-duplicates findings by their
// (state, port, error-class) signature, and keeps going until a run
// budget or a dry streak ends the campaign.
package campaign

import (
	"fmt"
	"time"

	"l2fuzz/internal/bt/device"
	"l2fuzz/internal/bt/host"
	"l2fuzz/internal/bt/radio"
	"l2fuzz/internal/core"
)

// Config parameterises a campaign.
type Config struct {
	// Seed drives the first run; later runs derive fresh seeds from it.
	Seed int64
	// MaxRuns bounds the number of fuzzing runs.
	MaxRuns int
	// MaxPacketsPerRun bounds each run.
	MaxPacketsPerRun int
	// StopAfterDryRuns ends the campaign after this many consecutive
	// runs without a finding (the target has probably been exhausted).
	StopAfterDryRuns int
	// MutateFuzz, when set, adjusts each run's derived fuzzer
	// configuration after the campaign has applied its per-run seed and
	// packet budget — the hook the fleet's ablation variants use to
	// ablate campaign runs too.
	MutateFuzz func(*core.Config)
}

// DefaultConfig returns campaign defaults: up to eight runs, stopping
// after two consecutive dry ones.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:             seed,
		MaxRuns:          8,
		MaxPacketsPerRun: 250_000,
		StopAfterDryRuns: 2,
	}
}

// FindingRecord is one de-duplicated finding with its occurrence count.
// The first occurrence's recorded repro trace, when the campaign client
// carries a host.TraceRecorder, rides along in Finding.Trace.
type FindingRecord struct {
	// Finding is the first occurrence.
	Finding core.Finding
	// Count is how many runs reproduced it.
	Count int
	// Dump is the device-side artefact of the first occurrence.
	Dump string
}

// Report is the campaign outcome.
type Report struct {
	// Runs counts completed fuzzing runs.
	Runs int
	// Resets counts automatic device resets performed.
	Resets int
	// TotalPackets sums packets across runs.
	TotalPackets int
	// TotalElapsed sums simulated run time.
	TotalElapsed time.Duration
	// Findings are the de-duplicated findings in first-seen order.
	Findings []FindingRecord
}

// Runner drives a campaign against one device.
type Runner struct {
	cl  *host.Client
	dev *device.Device
	cfg Config
}

// New builds a runner, filling zero-valued config fields from
// DefaultConfig so the defaults live in one place. The device must live
// on the same medium as the client.
func New(cl *host.Client, dev *device.Device, cfg Config) *Runner {
	def := DefaultConfig(cfg.Seed)
	if cfg.MaxRuns <= 0 {
		cfg.MaxRuns = def.MaxRuns
	}
	if cfg.MaxPacketsPerRun <= 0 {
		cfg.MaxPacketsPerRun = def.MaxPacketsPerRun
	}
	if cfg.StopAfterDryRuns <= 0 {
		cfg.StopAfterDryRuns = def.StopAfterDryRuns
	}
	return &Runner{cl: cl, dev: dev, cfg: cfg}
}

// Run executes the campaign.
func (r *Runner) Run() (*Report, error) {
	report := &Report{}
	// De-duplication keys by the shared core.Signature, the same triple
	// the fleet and the persistent corpus key by, so a campaign finding
	// can never dedup differently from its farm-level record.
	seen := make(map[core.Signature]int) // signature → index into Findings
	dry := 0

	for run := 0; run < r.cfg.MaxRuns && dry < r.cfg.StopAfterDryRuns; run++ {
		// Every run is its own trace epoch, not just the runs that follow
		// a finding and reset. A dry run still leaves link and channel
		// state behind on the target, so a trace spanning the boundary
		// would replay against conditions the recorded prefix — now in an
		// earlier epoch — created. Cutting at the boundary keeps each
		// recorded trace self-contained from its run's first packet.
		if rec := r.cl.Recorder(); rec != nil {
			rec.Reset()
		}
		fcfg := core.DefaultConfig(r.cfg.Seed + int64(run)*7919)
		fcfg.MaxPackets = r.cfg.MaxPacketsPerRun
		if r.cfg.MutateFuzz != nil {
			r.cfg.MutateFuzz(&fcfg)
		}
		fz := core.New(r.cl, fcfg)
		res, err := fz.Run(r.dev.Address())
		if err != nil {
			return nil, fmt.Errorf("campaign run %d: %w", run+1, err)
		}
		report.Runs++
		report.TotalPackets += res.PacketsSent
		report.TotalElapsed += res.Elapsed

		if !res.Found {
			dry++
			continue
		}
		dry = 0
		sig := res.Finding.Signature()
		if idx, ok := seen[sig]; ok {
			report.Findings[idx].Count++
		} else {
			rec := FindingRecord{Finding: res.Finding, Count: 1}
			if dump := r.dev.CrashDump(); dump != nil {
				rec.Dump = dump.Render()
			}
			seen[sig] = len(report.Findings)
			report.Findings = append(report.Findings, rec)
		}

		// The automatic reset: the virtual analogue of walking over and
		// rebooting the phone.
		if err := r.reset(); err != nil {
			return nil, fmt.Errorf("campaign reset after run %d: %w", run+1, err)
		}
		report.Resets++
	}
	return report, nil
}

// reset restores a crashed device and the tester's link state.
func (r *Runner) reset() error {
	wasGone := r.dev.PoweredOff()
	r.dev.Reset()
	if wasGone {
		if err := r.medium().Register(r.dev.Controller()); err != nil {
			return fmt.Errorf("re-register: %w", err)
		}
	}
	r.cl.Disconnect(r.dev.Address())
	return nil
}

// medium digs the medium out via the client's clock owner. The client
// and device share one medium by construction; the controller knows it.
func (r *Runner) medium() *radio.Medium { return r.dev.Medium() }
