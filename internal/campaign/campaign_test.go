package campaign

import (
	"testing"

	"l2fuzz/internal/bt/device"
	"l2fuzz/internal/bt/host"
	"l2fuzz/internal/bt/radio"
	"l2fuzz/internal/bt/sm"
)

func campaignRig(t *testing.T, deviceID string) (*device.Device, *host.Client) {
	t.Helper()
	m := radio.NewMedium(nil, radio.DefaultTiming())
	entry, err := device.CatalogEntryByID(deviceID, false)
	if err != nil {
		t.Fatal(err)
	}
	d, err := device.New(m, entry.Config)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := host.NewClient(m, radio.MustBDAddr("00:1B:DC:00:00:05"), "campaign")
	if err != nil {
		t.Fatal(err)
	}
	return d, cl
}

func TestCampaignFindsAndReproducesD2(t *testing.T) {
	d, cl := campaignRig(t, "D2")
	cfg := DefaultConfig(1)
	cfg.MaxRuns = 4
	report, err := New(cl, d, cfg).Run()
	if err != nil {
		t.Fatalf("Run() error = %v", err)
	}
	if report.Runs == 0 || len(report.Findings) == 0 {
		t.Fatalf("campaign found nothing: %+v", report)
	}
	if report.Resets == 0 {
		t.Error("no automatic resets performed")
	}
	total := 0
	for _, f := range report.Findings {
		total += f.Count
		if sm.JobOf(f.Finding.State) != sm.JobConfiguration {
			t.Errorf("finding in %v, want configuration-job states only on D2", f.Finding.State)
		}
		if f.Dump == "" {
			t.Error("finding recorded without its crash dump")
		}
	}
	if total != report.Resets {
		t.Errorf("finding occurrences (%d) != resets (%d)", total, report.Resets)
	}
	// A black-box signature is (state, port, error class): one underlying
	// defect may appear under several signatures (different ports reach
	// the same code), but never more than runs.
	if len(report.Findings) > report.Runs {
		t.Errorf("%d signatures from %d runs; de-duplication broken?", len(report.Findings), report.Runs)
	}
	// The device must be healthy at campaign end only if the final run
	// was dry; either way the report is self-consistent.
	if report.TotalPackets == 0 || report.TotalElapsed == 0 {
		t.Error("aggregates not recorded")
	}
	t.Logf("campaign: %d runs, %d resets, %d distinct findings (%d total), %d packets, %v",
		report.Runs, report.Resets, len(report.Findings), total,
		report.TotalPackets, report.TotalElapsed)
}

func TestCampaignSurvivesFirmwareCrashingDevice(t *testing.T) {
	// D5 vanishes from the air on each finding; the campaign must
	// re-register it and keep going.
	d, cl := campaignRig(t, "D5")
	cfg := DefaultConfig(2)
	cfg.MaxRuns = 3
	report, err := New(cl, d, cfg).Run()
	if err != nil {
		t.Fatalf("Run() error = %v", err)
	}
	if len(report.Findings) == 0 {
		t.Fatal("campaign found nothing on D5")
	}
	total := 0
	for _, f := range report.Findings {
		total += f.Count
	}
	if total < 2 {
		t.Errorf("defect triggered %d times across %d runs, want ≥ 2 (auto-reset works)",
			total, report.Runs)
	}
}

func TestCampaignCutsTraceEpochAtEveryRunBoundary(t *testing.T) {
	// Two dry runs on a robust device: without the per-run epoch cut the
	// recorder would accumulate both runs' operations; with it, what
	// remains at campaign end is the final run's trace alone.
	d, cl := campaignRig(t, "D4")
	rec := host.NewTraceRecorder(1 << 20)
	cl.SetRecorder(rec)
	cfg := DefaultConfig(3)
	cfg.MaxRuns = 8
	cfg.MaxPacketsPerRun = 5_000
	cfg.StopAfterDryRuns = 2
	report, err := New(cl, d, cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	if report.Runs != 2 {
		t.Fatalf("runs = %d, want 2 dry runs", report.Runs)
	}
	got := rec.Len()
	if got == 0 {
		t.Fatal("recorder saw no operations")
	}
	// Each run records at least MaxPacketsPerRun operations (every send
	// is one op), so a recorder holding both runs would exceed one run's
	// floor twice over.
	if got >= 2*cfg.MaxPacketsPerRun {
		t.Fatalf("recorder holds %d ops after 2 runs of ≥%d: epoch not cut at the run boundary",
			got, cfg.MaxPacketsPerRun)
	}
	t.Logf("recorder holds %d ops (one run's worth)", got)
}

func TestCampaignStopsOnDryStreak(t *testing.T) {
	d, cl := campaignRig(t, "D4") // robust iPhone
	cfg := DefaultConfig(3)
	cfg.MaxRuns = 8
	cfg.MaxPacketsPerRun = 10_000
	cfg.StopAfterDryRuns = 2
	report, err := New(cl, d, cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	if report.Runs != 2 {
		t.Fatalf("runs = %d, want exactly the dry streak of 2", report.Runs)
	}
	if len(report.Findings) != 0 || report.Resets != 0 {
		t.Fatalf("phantom activity on robust device: %+v", report)
	}
}
