// Package triage implements the crash root-cause analysis the paper's §V
// names as its second limitation: "L2Fuzz can detect vulnerabilities by
// analyzing the target's response packets; however, the root cause cannot
// be determined immediately. We intend to resolve this issue by
// considering the internal log hooking that analyzes the crash root
// cause, similar to ToothPicker."
//
// In the simulated testbed the "internal log" is the device's crash
// artefact. Triage correlates the black-box finding (error class, state,
// port, last mutation) with the device-side dump (fault function, signal,
// trigger record) and produces a structured root-cause report: the fault
// layer, the defect category, and the packet shape that reaches it.
package triage

import (
	"fmt"
	"strings"

	"l2fuzz/internal/bt/device"
	"l2fuzz/internal/bt/sm"
	"l2fuzz/internal/core"
)

// Category classifies the underlying defect.
type Category uint8

// Defect categories.
const (
	// CategoryUnknown means the evidence was insufficient.
	CategoryUnknown Category = iota
	// CategoryNullDeref is a null pointer dereference (CWE-476).
	CategoryNullDeref
	// CategoryMemoryCorruption is an out-of-bounds access or similar
	// memory-safety violation (CWE-787/125).
	CategoryMemoryCorruption
	// CategoryUnvalidatedInput is improper input validation that kills a
	// service without a memory-safety signature (CWE-20).
	CategoryUnvalidatedInput
)

func (c Category) String() string {
	switch c {
	case CategoryNullDeref:
		return "null pointer dereference (CWE-476)"
	case CategoryMemoryCorruption:
		return "memory corruption (CWE-787)"
	case CategoryUnvalidatedInput:
		return "improper input validation (CWE-20)"
	default:
		return "unknown"
	}
}

// Layer names the protocol layer the defect lives in.
type Layer uint8

// Fault layers.
const (
	// LayerUnknown means no layer could be attributed.
	LayerUnknown Layer = iota
	// LayerL2CAP is the L2CAP channel machinery.
	LayerL2CAP
	// LayerRFCOMM is the RFCOMM multiplexer.
	LayerRFCOMM
	// LayerFirmware is below the host stack entirely.
	LayerFirmware
	// LayerSDP is the SDP service-record server.
	LayerSDP
)

func (l Layer) String() string {
	switch l {
	case LayerL2CAP:
		return "L2CAP"
	case LayerRFCOMM:
		return "RFCOMM"
	case LayerFirmware:
		return "firmware"
	case LayerSDP:
		return "SDP"
	default:
		return "unknown"
	}
}

// Report is a structured root-cause analysis.
type Report struct {
	// Category is the defect class.
	Category Category
	// Layer is the protocol layer at fault.
	Layer Layer
	// FaultFunction is the implicated function from the artefact, when
	// one exists.
	FaultFunction string
	// StateJob is the L2CAP job under test when the target died.
	StateJob sm.Job
	// TriggerShape describes the packet shape that reaches the defect.
	TriggerShape string
	// Confidence is "high" when black-box and device-side evidence agree,
	// "low" when only the black-box finding exists.
	Confidence string
}

// Render produces the human-readable root-cause summary.
func (r Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "root cause: %s in the %s layer", r.Category, r.Layer)
	if r.FaultFunction != "" {
		fmt.Fprintf(&b, "\nfault function: %s", r.FaultFunction)
	}
	fmt.Fprintf(&b, "\ntested job: %s", r.StateJob)
	fmt.Fprintf(&b, "\ntrigger shape: %s", r.TriggerShape)
	fmt.Fprintf(&b, "\nconfidence: %s", r.Confidence)
	return b.String()
}

// Analyze correlates a black-box finding with the device-side crash
// artefact (nil when none was recoverable, as for firmware deaths).
func Analyze(finding core.Finding, dump *device.CrashDump) Report {
	r := Report{
		StateJob:     sm.JobOf(finding.State),
		TriggerShape: describeTrigger(finding),
		Confidence:   "low",
	}
	if dump == nil {
		// No artefact: a firmware-level death diagnosed purely from the
		// air interface, like the paper's D5.
		if finding.Error == core.ErrConnectionReset {
			r.Layer = LayerFirmware
			r.Category = CategoryUnvalidatedInput
		}
		return r
	}

	r.Confidence = "high"
	r.FaultFunction = dump.FaultFunc
	switch {
	case strings.Contains(dump.FaultFunc, "l2c_"), strings.Contains(dump.FaultFunc, "l2cap_"):
		r.Layer = LayerL2CAP
	case strings.Contains(dump.FaultFunc, "rfc_"), strings.Contains(dump.FaultFunc, "RFCOMM"):
		r.Layer = LayerRFCOMM
	case strings.Contains(dump.FaultFunc, "sdp_"), strings.Contains(dump.FaultFunc, "SDP"):
		r.Layer = LayerSDP
	default:
		r.Layer = LayerUnknown
	}
	switch dump.Kind {
	case device.DumpTombstone:
		r.Category = CategoryNullDeref
	case device.DumpGPFault:
		r.Category = CategoryMemoryCorruption
	default:
		r.Category = CategoryUnvalidatedInput
	}
	return r
}

// describeTrigger renders the finding's last mutation as an attack shape.
func describeTrigger(finding core.Finding) string {
	m := finding.LastMutation
	var parts []string
	if m.PSMMutated {
		parts = append(parts, fmt.Sprintf("abnormal PSM 0x%04X", uint16(m.PSM)))
	}
	if m.CIDsMutated > 0 {
		parts = append(parts, fmt.Sprintf("%d mutated payload channel ID(s)", m.CIDsMutated))
	}
	if m.ControllerIDMutated {
		parts = append(parts, "mutated controller ID")
	}
	if m.GarbageLen > 0 {
		parts = append(parts, fmt.Sprintf("%d-byte garbage tail", m.GarbageLen))
	}
	if len(parts) == 0 {
		return fmt.Sprintf("%v in state %v (no mutation recorded)", m.Code, finding.State)
	}
	return fmt.Sprintf("%v with %s, sent in state %v on %v",
		m.Code, strings.Join(parts, " + "), finding.State, finding.PSM)
}
