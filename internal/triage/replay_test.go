// Triage driven from the corpus, end to end: a farm finding's recorded
// trace is minimized, the minimal witness is replayed on a fresh rig,
// and the freshly reproduced device dump — not the original run's —
// feeds the root-cause analysis. Two defect categories are pinned: a
// null-CCB dereference (Android tombstone) and a configuration-option
// overrun (general protection fault).
package triage_test

import (
	"strings"
	"testing"

	"l2fuzz/internal/bt/device"
	"l2fuzz/internal/bt/l2cap"
	"l2fuzz/internal/bt/radio"
	"l2fuzz/internal/bt/sm"
	"l2fuzz/internal/corpus"
	"l2fuzz/internal/fleet"
	"l2fuzz/internal/triage"
)

// gpfOverrun is a widened stand-in for the catalog's D8 defect: any
// Configuration Request to an unallocated endpoint with a garbage tail
// dies in option parsing with a general protection fault.
func gpfOverrun() device.VulnSpec {
	return device.VulnSpec{
		ID:          "test-option-overrun-gpf",
		Description: "general protection fault in configuration option parsing (Crash)",
		Class:       device.ClassCrash,
		Dump:        device.DumpGPFault,
		FaultFunc:   "l2cap_parse_conf_req+0x1f4/0x5a0 [bluetooth]",
		Trigger: device.TriggerSpec{
			Kind:     device.TriggerOptionOverrunGPF,
			MinTail:  1,
			MatchAll: true,
		},
	}
}

// replayedRootCause runs one single-job farm against the spec with a
// corpus store, minimizes the stored trace, replays the minimal witness
// and returns its root-cause report.
func replayedRootCause(t *testing.T, spec device.Spec) triage.Report {
	t.Helper()
	store, err := corpus.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fleet.Run(fleet.Config{
		CustomDevices:    []device.Spec{spec},
		BaseSeed:         3,
		Workers:          1,
		MaxPacketsPerJob: 50_000,
		Corpus:           store,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) == 0 || rep.Corpus.Saved == 0 {
		t.Fatalf("farm stored no finding: findings=%d corpus=%+v", len(rep.Findings), rep.Corpus)
	}
	entry, err := store.Get(rep.Findings[0].Signature)
	if err != nil {
		t.Fatal(err)
	}
	minimized, err := corpus.Minimize(entry, corpus.MinimizeConfig{
		ReplayConfig: corpus.ReplayConfig{Spec: &spec},
		MaxReplays:   256,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := corpus.Replay(minimized.Entry, corpus.ReplayConfig{Spec: &spec})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reproduced {
		t.Fatalf("minimized trace does not reproduce %v", entry.Signature)
	}
	if res.Dump == "" {
		t.Fatal("replayed device left no crash artefact to triage")
	}
	return res.RootCause
}

func testSpec(name, mac string, profile device.Profile) device.Spec {
	return device.Spec{
		Name: name,
		Config: device.Config{
			Addr:    radio.MustBDAddr(mac),
			Name:    name,
			Profile: profile,
			Ports: []device.ServicePort{
				{PSM: l2cap.PSMSDP, Name: "Service Discovery"},
				{PSM: l2cap.PSMDynamicFirst, Name: "vendor-service"},
			},
		},
		ExpectVuln: true,
	}
}

func TestReplayedCorpusEntryTriagesNullDeref(t *testing.T) {
	spec := testSpec("triage-null", "02:EE:30:00:00:01",
		device.BlueDroidProfile("5.1", "vendor/triage:13/TQ3A/1:user/release-keys",
			device.BlueDroidCCBNullDeref(0x40, 2, true)))
	rc := replayedRootCause(t, spec)
	if rc.Category != triage.CategoryNullDeref {
		t.Errorf("category = %v, want null pointer dereference", rc.Category)
	}
	if rc.Layer != triage.LayerL2CAP {
		t.Errorf("layer = %v, want L2CAP", rc.Layer)
	}
	if rc.Confidence != "high" {
		t.Errorf("confidence = %q with a device-side artefact, want high", rc.Confidence)
	}
	if !strings.Contains(rc.FaultFunction, "l2c_csm_execute") {
		t.Errorf("fault function %q does not name the tombstone frame", rc.FaultFunction)
	}
	if rc.StateJob != sm.JobConfiguration {
		t.Errorf("state job = %v, want the configuration job", rc.StateJob)
	}
}

func TestReplayedCorpusEntryTriagesMemoryCorruption(t *testing.T) {
	spec := testSpec("triage-gpf", "02:EE:30:00:00:02",
		device.BlueZProfile("5.0", "bluez-test linux-test", gpfOverrun()))
	rc := replayedRootCause(t, spec)
	if rc.Category != triage.CategoryMemoryCorruption {
		t.Errorf("category = %v, want memory corruption", rc.Category)
	}
	if rc.Layer != triage.LayerL2CAP {
		t.Errorf("layer = %v, want L2CAP", rc.Layer)
	}
	if rc.Confidence != "high" {
		t.Errorf("confidence = %q with a device-side artefact, want high", rc.Confidence)
	}
	if !strings.Contains(rc.FaultFunction, "l2cap_parse_conf_req") {
		t.Errorf("fault function %q does not name the faulting parser", rc.FaultFunction)
	}
}
