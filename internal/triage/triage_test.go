package triage

import (
	"strings"
	"testing"

	"l2fuzz/internal/bt/device"
	"l2fuzz/internal/bt/host"
	"l2fuzz/internal/bt/l2cap"
	"l2fuzz/internal/bt/radio"
	"l2fuzz/internal/bt/sm"
	"l2fuzz/internal/core"
)

// findingFor runs L2Fuzz against a catalog device and returns the
// finding plus the device-side dump.
func findingFor(t *testing.T, deviceID string, seed int64) (core.Finding, *device.CrashDump) {
	t.Helper()
	m := radio.NewMedium(nil, radio.DefaultTiming())
	entry, err := device.CatalogEntryByID(deviceID, false)
	if err != nil {
		t.Fatal(err)
	}
	d, err := device.New(m, entry.Config)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := host.NewClient(m, radio.MustBDAddr("00:1B:DC:00:00:06"), "triage")
	if err != nil {
		t.Fatal(err)
	}
	report, err := core.New(cl, core.DefaultConfig(seed)).Run(d.Address())
	if err != nil {
		t.Fatal(err)
	}
	if !report.Found {
		t.Fatalf("no finding on %s", deviceID)
	}
	return report.Finding, d.CrashDump()
}

func TestAnalyzeAndroidTombstone(t *testing.T) {
	finding, dump := findingFor(t, "D2", 1)
	r := Analyze(finding, dump)
	if r.Category != CategoryNullDeref {
		t.Errorf("category = %v, want null deref", r.Category)
	}
	if r.Layer != LayerL2CAP {
		t.Errorf("layer = %v, want L2CAP", r.Layer)
	}
	if r.Confidence != "high" {
		t.Errorf("confidence = %q, want high", r.Confidence)
	}
	if r.StateJob != sm.JobConfiguration {
		t.Errorf("job = %v, want Configuration", r.StateJob)
	}
	text := r.Render()
	for _, want := range []string{"CWE-476", "l2c_csm_execute", "garbage tail"} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
}

func TestAnalyzeBlueZGPFault(t *testing.T) {
	finding, dump := findingFor(t, "D8", 11)
	r := Analyze(finding, dump)
	if r.Category != CategoryMemoryCorruption {
		t.Errorf("category = %v, want memory corruption", r.Category)
	}
	if r.Layer != LayerL2CAP {
		t.Errorf("layer = %v, want L2CAP (l2cap_parse_conf_req)", r.Layer)
	}
}

func TestAnalyzeFirmwareDeathWithoutArtefact(t *testing.T) {
	finding, dump := findingFor(t, "D5", 2)
	if dump != nil {
		// D5's artefact records DumpNone; Analyze must also cope with a
		// literally missing dump, which is what the black-box side sees.
		r := Analyze(finding, dump)
		if r.Category != CategoryUnvalidatedInput {
			t.Errorf("category with DumpNone artefact = %v", r.Category)
		}
	}
	r := Analyze(finding, nil)
	if r.Layer != LayerFirmware {
		t.Errorf("layer = %v, want firmware for a vanished device", r.Layer)
	}
	if r.Confidence != "low" {
		t.Errorf("confidence = %q, want low without an artefact", r.Confidence)
	}
	if !strings.Contains(r.Render(), "abnormal PSM") {
		t.Errorf("trigger shape missing the PSM attack:\n%s", r.Render())
	}
}

func TestAnalyzeRFCOMMDump(t *testing.T) {
	dump := &device.CrashDump{
		Kind:      device.DumpTombstone,
		FaultFunc: "rfc_mx_sm_execute(t_rfc_mcb*, unsigned short, void*)+1024",
	}
	r := Analyze(core.Finding{Error: core.ErrConnectionFailed, State: sm.StateOpen}, dump)
	if r.Layer != LayerRFCOMM {
		t.Errorf("layer = %v, want RFCOMM", r.Layer)
	}
}

func TestDescribeTriggerWithoutMutation(t *testing.T) {
	r := Analyze(core.Finding{
		Error: core.ErrTimeout,
		State: sm.StateClosed,
		PSM:   l2cap.PSMSDP,
	}, nil)
	if !strings.Contains(r.TriggerShape, "no mutation recorded") {
		t.Errorf("TriggerShape = %q", r.TriggerShape)
	}
}
