// Package fuzzers defines the common contract of the baseline Bluetooth
// fuzzers the paper compares against (§IV, §VI): Defensics, BFuzz and
// BSS. The L2Fuzz core lives in internal/core; an adapter in the harness
// gives it the same interface.
//
// Baselines are modelled from the paper's published behavioural
// descriptions, not from their source code:
//
//   - Defensics: template-driven, almost entirely well-formed traffic,
//     one test packet per state, low anomaly rate, 3.37 packets/s;
//   - BFuzz: seeds from previously-vulnerable packets, mutates almost
//     every field including dependent ones, so most test packets are
//     invalid rather than valid-malformed and get rejected, 454.54
//     packets/s;
//   - BSS: mutates exactly one (application) field of otherwise normal
//     packets — echo floods — producing no valid-malformed packets at
//     all, 1.95 packets/s.
package fuzzers

import (
	"time"

	"l2fuzz/internal/bt/radio"
)

// Result is the outcome of a baseline run.
type Result struct {
	// PacketsSent counts transmitted L2CAP packets.
	PacketsSent int
	// Elapsed is the simulated run duration.
	Elapsed time.Duration
	// Cycles counts completed test cycles.
	Cycles int
}

// Fuzzer is a runnable black-box Bluetooth fuzzer.
type Fuzzer interface {
	// Name identifies the fuzzer in reports.
	Name() string
	// Run fuzzes the target until roughly maxPackets packets have been
	// sent (a cycle may finish past the budget) or the target stops
	// answering.
	Run(target radio.BDAddr, maxPackets int) (Result, error)
}
