// Package defensics models the Synopsys Defensics Bluetooth fuzzer as
// the paper characterises it (§IV-C, §VI): a template-based test-suite
// runner whose traffic is almost entirely well-formed — "most of the
// test packets are normal packets; thus, instead of yielding unexpected
// behaviors, it often results in normal communication" — testing one
// packet per state at a slow, fixed pace (3.37 packets per second).
package defensics

import (
	"fmt"
	"math/rand"
	"time"

	"l2fuzz/internal/bt/host"
	"l2fuzz/internal/bt/l2cap"
	"l2fuzz/internal/bt/radio"
	"l2fuzz/internal/fuzzers"
)

// ThinkTime reproduces Defensics's measured pace of 3.37 packets/s.
const ThinkTime = 295 * time.Millisecond

// anomalyEvery makes one packet in this many an anomalized test packet,
// landing the malformed-packet ratio near the paper's 2.38%.
const anomalyEvery = 30

// Fuzzer is a Defensics-like template fuzzer.
type Fuzzer struct {
	cl  *host.Client
	rng *rand.Rand
}

var _ fuzzers.Fuzzer = (*Fuzzer)(nil)

// New builds the fuzzer over a tester client.
func New(cl *host.Client, seed int64) *Fuzzer {
	return &Fuzzer{cl: cl, rng: rand.New(rand.NewSource(seed))}
}

// Name implements fuzzers.Fuzzer.
func (f *Fuzzer) Name() string { return "Defensics" }

// Run executes valid test-case templates against the target. Each case
// performs a full connect-configure-open-disconnect conversation with at
// most one anomalized packet inside, exactly one test packet per state.
func (f *Fuzzer) Run(target radio.BDAddr, maxPackets int) (res fuzzers.Result, err error) {
	if err := f.cl.Connect(target); err != nil {
		return fuzzers.Result{}, fmt.Errorf("defensics: %w", err)
	}
	start := f.cl.Clock().Now()
	defer func() { res.Elapsed = f.cl.Clock().Now() - start }()
	sent := 0
	deviceReqs := 0
	// send transmits one packet and tallies any configuration request the
	// device produces in response, so the template can answer it later.
	send := func(cmd l2cap.Command, tail []byte) bool {
		if _, err := f.cl.SendCommand(target, cmd, tail); err != nil {
			return false
		}
		f.cl.Clock().Advance(ThinkTime)
		sent++
		for _, rsp := range f.cl.DrainCommands() {
			if _, ok := rsp.(*l2cap.ConfigurationReq); ok {
				deviceReqs++
			}
		}
		return true
	}

	for sent < maxPackets {
		// One template case: valid conversation with one (rare) anomaly.
		// Roughly one packet in anomalyEvery is anomalized: a case is
		// about six packets, so every (anomalyEvery/6)th case carries one.
		anomalize := res.Cycles%(anomalyEvery/6) == 0
		scid := f.cl.NextSourceCID()

		connReq := &l2cap.ConnectionReq{PSM: l2cap.PSMSDP, SCID: scid}
		var connTail []byte
		var badCIDProbe bool
		if anomalize {
			switch f.rng.Intn(10) {
			case 0, 1, 2, 3: // garbage-tail anomaly
				connTail = []byte{0xFF, 0xFF, 0xFF, 0xFF}
			case 4, 5, 6: // abnormal-PSM anomaly (refused by the target)
				connReq.PSM = 0x0100 + l2cap.PSM(f.rng.Intn(0x100))
			case 7, 8: // boundary SCID anomaly (reserved range)
				connReq.SCID = l2cap.CID(f.rng.Intn(0x40))
			default: // unknown-CID disconnect probe (Command Reject)
				badCIDProbe = true
			}
		}
		if badCIDProbe {
			if _, err := f.cl.SendCommand(target, &l2cap.DisconnectionReq{
				DCID: l2cap.CID(0x2000 + f.rng.Intn(0x1000)), SCID: scid,
			}, nil); err != nil {
				break
			}
			f.cl.Clock().Advance(ThinkTime)
			sent++
			f.cl.Drain()
		}
		f.cl.Drain()
		if _, err := f.cl.SendCommand(target, connReq, connTail); err != nil {
			break
		}
		f.cl.Clock().Advance(ThinkTime)
		sent++

		// Read the verdict; on success walk the full valid handshake.
		var dcid l2cap.CID
		accepted := false
		deviceReqs = 0
		for _, cmd := range f.cl.DrainCommands() {
			switch rsp := cmd.(type) {
			case *l2cap.ConnectionRsp:
				if rsp.SCID == connReq.SCID && rsp.Result == l2cap.ConnResultSuccess {
					dcid = rsp.DCID
					accepted = true
				}
			case *l2cap.ConfigurationReq:
				deviceReqs++
			}
		}
		if accepted {
			if !send(&l2cap.ConfigurationReq{
				DCID:    dcid,
				Options: []l2cap.ConfigOption{l2cap.MTUOption(672)},
			}, nil) {
				break
			}
			for answered := 0; answered < deviceReqs; answered++ {
				if !send(&l2cap.ConfigurationRsp{SCID: dcid, Result: l2cap.ConfigSuccess}, nil) {
					break
				}
			}
			// One probe per state in the open phase.
			if !send(&l2cap.EchoReq{Data: []byte("defensics")}, nil) {
				break
			}
			if !send(&l2cap.InformationReq{InfoType: l2cap.InfoTypeExtendedFeatures}, nil) {
				break
			}
			if !send(&l2cap.DisconnectionReq{DCID: dcid, SCID: scid}, nil) {
				break
			}
		}
		res.Cycles++
	}
	res.PacketsSent = sent
	return res, nil
}
