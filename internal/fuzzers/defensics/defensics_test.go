package defensics

import (
	"reflect"
	"testing"

	"l2fuzz/internal/bt/device"
	"l2fuzz/internal/bt/host"
	"l2fuzz/internal/bt/radio"
	"l2fuzz/internal/fuzzers"
)

// catalogRig builds a fresh medium with one armed catalog device.
func catalogRig(t *testing.T, id string) (*device.Device, *host.Client) {
	t.Helper()
	m := radio.NewMedium(nil, radio.DefaultTiming())
	entry, err := device.CatalogEntryByID(id, false)
	if err != nil {
		t.Fatal(err)
	}
	d, err := device.New(m, entry.Config)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := host.NewClient(m, radio.MustBDAddr("00:1B:DC:00:00:08"), "tester")
	if err != nil {
		t.Fatal(err)
	}
	return d, cl
}

// widenedRig builds a target carrying the D5 defect with its trigger
// fully widened, so Defensics's rare abnormal-PSM anomaly can fire it.
func widenedRig(t *testing.T) (*device.Device, *host.Client) {
	t.Helper()
	m := radio.NewMedium(nil, radio.DefaultTiming())
	d, err := device.New(m, device.Config{
		Addr:    radio.MustBDAddr("74:D7:EB:00:00:02"),
		Name:    "widened-rtkit",
		Profile: device.RTKitProfile("5.0", device.RTKitPSMServiceKill(0, 0)),
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := host.NewClient(m, radio.MustBDAddr("00:1B:DC:00:00:08"), "tester")
	if err != nil {
		t.Fatal(err)
	}
	return d, cl
}

func TestDeterministicForSeed(t *testing.T) {
	run := func() fuzzers.Result {
		d, cl := catalogRig(t, "D2")
		res, err := New(cl, 11).Run(d.Address(), 3_000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different results:\n a = %+v\n b = %+v", a, b)
	}
	if a.PacketsSent == 0 || a.Cycles == 0 || a.Elapsed == 0 {
		t.Errorf("run recorded no traffic, cycles or simulated time: %+v", a)
	}
}

// TestNoFalseCrashOnCatalogDevice pins the paper's Table VI outcome:
// Defensics's almost-entirely-well-formed traffic never fires the
// narrow injected defects of the armed catalog targets.
func TestNoFalseCrashOnCatalogDevice(t *testing.T) {
	d, cl := catalogRig(t, "D5")
	if _, err := New(cl, 1).Run(d.Address(), 5_000); err != nil {
		t.Fatal(err)
	}
	if d.Crashed() {
		t.Error("Defensics crashed the armed catalog D5; its trigger should be out of reach")
	}
}

// TestCrashesWidenedDevice is the crash-found smoke test: the
// template suite's abnormal-PSM anomaly case reaches a fully widened
// D5-style defect within a few hundred packets.
func TestCrashesWidenedDevice(t *testing.T) {
	d, cl := widenedRig(t)
	res, err := New(cl, 1).Run(d.Address(), 5_000)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Crashed() {
		t.Fatalf("device survived %d template packets", res.PacketsSent)
	}
	if res.PacketsSent >= 5_000 {
		t.Errorf("run did not stop early on the dead target (sent %d)", res.PacketsSent)
	}
}
