// Package bfuzz models the IoTcube/BFuzz Bluetooth fuzzer as the paper
// characterises it (§IV-C, §VI): it replays packets "previously
// determined to be vulnerable" and mutates almost every field — including
// the dependent length fields core field mutating deliberately protects —
// "however, because it mutates almost every field, it is easily rejected
// by the target device". The result is the paper's measured shape: a very
// high packet-rejection ratio (91.60%) with very few *valid* malformed
// packets (1.50%).
package bfuzz

import (
	"fmt"
	"math/rand"
	"time"

	"l2fuzz/internal/bt/host"
	"l2fuzz/internal/bt/l2cap"
	"l2fuzz/internal/bt/radio"
	"l2fuzz/internal/fuzzers"
)

// ThinkTime reproduces BFuzz's measured pace of 454.54 packets/s.
const ThinkTime = 900 * time.Microsecond

// dataOnlyEvery controls how often the scramble leaves the dependent
// fields intact, producing a decodable (valid malformed) packet instead
// of an invalid one. One in 50 lands the MP ratio near the paper's 1.50%.
const dataOnlyEvery = 50

// Fuzzer is a BFuzz-like everything-mutator.
type Fuzzer struct {
	cl  *host.Client
	rng *rand.Rand
}

var _ fuzzers.Fuzzer = (*Fuzzer)(nil)

// New builds the fuzzer over a tester client.
func New(cl *host.Client, seed int64) *Fuzzer {
	return &Fuzzer{cl: cl, rng: rand.New(rand.NewSource(seed))}
}

// Name implements fuzzers.Fuzzer.
func (f *Fuzzer) Name() string { return "BFuzz" }

// seeds are the previously-vulnerable packet shapes BFuzz replays: the
// BlueBorne-style connect/configure conversation.
func seeds(scid, dcid l2cap.CID) []l2cap.Command {
	return []l2cap.Command{
		// The connect seed targets RFCOMM: the original BlueBorne-era
		// corpus fuzzed classic profiles, and a pairing-gated port keeps
		// accidental channel creation out of the mutation burst.
		&l2cap.ConnectionReq{PSM: l2cap.PSMRFCOMM, SCID: scid},
		&l2cap.ConfigurationReq{DCID: dcid, Options: []l2cap.ConfigOption{l2cap.MTUOption(672)}},
		&l2cap.ConfigurationRsp{SCID: dcid, Result: l2cap.ConfigPending},
		&l2cap.EchoReq{Data: []byte{0xDE, 0xAD, 0xBE, 0xEF}},
	}
}

// Run alternates a short valid handshake (so some state is reachable)
// with bursts of everything-mutated seed packets.
func (f *Fuzzer) Run(target radio.BDAddr, maxPackets int) (res fuzzers.Result, err error) {
	if err := f.cl.Connect(target); err != nil {
		return fuzzers.Result{}, fmt.Errorf("bfuzz: %w", err)
	}
	start := f.cl.Clock().Now()
	defer func() { res.Elapsed = f.cl.Clock().Now() - start }()
	sent := 0
	for sent < maxPackets {
		// Valid prelude: open and fully configure one channel.
		local, remote, err := f.cl.OpenChannel(target, l2cap.PSMSDP)
		if err != nil {
			// The target may refuse (channel cap); drop the link and retry.
			f.cl.Disconnect(target)
			if err := f.cl.Connect(target); err != nil {
				break
			}
			continue
		}
		sent += 4 // conversation cost: connect plus configuration round-trips
		f.cl.Clock().Advance(4 * ThinkTime)

		// Mutation burst over the seed corpus.
		for burst := 0; burst < 2048 && sent < maxPackets; burst++ {
			seedSet := seeds(local, remote)
			cmd := seedSet[f.rng.Intn(len(seedSet))]
			pkt := f.scramble(l2cap.SignalPacket(f.cl.NextID(), cmd, nil), sent)
			if err := f.cl.Send(target, pkt); err != nil {
				res.PacketsSent = sent
				return res, nil
			}
			f.cl.Clock().Advance(ThinkTime)
			sent++
			f.cl.Drain()
		}

		// Fresh link per cycle, like re-running the tool.
		f.cl.Disconnect(target)
		if err := f.cl.Connect(target); err != nil {
			break
		}
		res.Cycles++
	}
	res.PacketsSent = sent
	return res, nil
}

// scramble mutates almost every field of the packet. Usually the
// dependent length fields are corrupted too — producing an *invalid*
// packet the target rejects with "command not understood" — and
// occasionally only the data bytes, producing a decodable malformed
// packet.
func (f *Fuzzer) scramble(pkt l2cap.Packet, ordinal int) l2cap.Packet {
	payload := append([]byte(nil), pkt.Payload...)
	if len(payload) < l2cap.SignalHeaderSize {
		return pkt
	}
	if ordinal%dataOnlyEvery == 0 {
		// Data-only mutation: lengths stay coherent.
		for i := l2cap.SignalHeaderSize; i < len(payload); i++ {
			if f.rng.Intn(2) == 0 {
				payload[i] = byte(f.rng.Intn(256))
			}
		}
	} else {
		// Everything-mutation: scramble data and the declared data
		// length (and sometimes the code), breaking decodability.
		for i := l2cap.SignalHeaderSize; i < len(payload); i++ {
			if f.rng.Intn(2) == 0 {
				payload[i] = byte(f.rng.Intn(256))
			}
		}
		payload[2] = byte(f.rng.Intn(256)) // data length low byte
		payload[3] = byte(f.rng.Intn(4))   // data length high byte
		if f.rng.Intn(4) == 0 {
			payload[0] = byte(f.rng.Intn(256)) // command code
		}
	}
	pkt.Payload = payload
	return pkt
}
