package fuzzers_test

import (
	"testing"

	"l2fuzz/internal/bt/device"
	"l2fuzz/internal/bt/host"
	"l2fuzz/internal/bt/radio"
	"l2fuzz/internal/fuzzers"
	"l2fuzz/internal/fuzzers/bfuzz"
	"l2fuzz/internal/fuzzers/bss"
	"l2fuzz/internal/fuzzers/defensics"
)

// newRig builds a measurement-grade Pixel 3 and a tester client.
func newRig(t *testing.T) (*host.Client, radio.BDAddr) {
	t.Helper()
	m := radio.NewMedium(nil, radio.DefaultTiming())
	entry, err := device.CatalogEntryByID("D2", true)
	if err != nil {
		t.Fatal(err)
	}
	d, err := device.New(m, entry.Config)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := host.NewClient(m, radio.MustBDAddr("00:1B:DC:00:00:01"), "tester")
	if err != nil {
		t.Fatal(err)
	}
	return cl, d.Address()
}

func builders() map[string]func(cl *host.Client, seed int64) fuzzers.Fuzzer {
	return map[string]func(cl *host.Client, seed int64) fuzzers.Fuzzer{
		"Defensics": func(cl *host.Client, seed int64) fuzzers.Fuzzer { return defensics.New(cl, seed) },
		"BFuzz":     func(cl *host.Client, seed int64) fuzzers.Fuzzer { return bfuzz.New(cl, seed) },
		"BSS":       func(cl *host.Client, seed int64) fuzzers.Fuzzer { return bss.New(cl, seed) },
	}
}

func TestBaselinesRespectBudget(t *testing.T) {
	for name, build := range builders() {
		t.Run(name, func(t *testing.T) {
			cl, target := newRig(t)
			fz := build(cl, 1)
			if fz.Name() != name {
				t.Errorf("Name() = %q, want %q", fz.Name(), name)
			}
			res, err := fz.Run(target, 2_000)
			if err != nil {
				t.Fatalf("Run() error = %v", err)
			}
			if res.PacketsSent < 2_000 {
				t.Errorf("sent %d packets, want ≥ budget 2000", res.PacketsSent)
			}
			if res.PacketsSent > 2_200 {
				t.Errorf("sent %d packets, want ≈ budget (cycle overshoot only)", res.PacketsSent)
			}
			if res.Elapsed <= 0 {
				t.Errorf("Elapsed = %v; baselines must report their simulated run duration", res.Elapsed)
			}
		})
	}
}

func TestBaselinesDeterministicForSeed(t *testing.T) {
	for name, build := range builders() {
		t.Run(name, func(t *testing.T) {
			run := func() fuzzers.Result {
				cl, target := newRig(t)
				res, err := build(cl, 42).Run(target, 3_000)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			a, b := run(), run()
			if a != b {
				t.Fatalf("same seed differs: %+v vs %+v", a, b)
			}
		})
	}
}

func TestBaselinesAdvanceSimulatedClock(t *testing.T) {
	for name, build := range builders() {
		t.Run(name, func(t *testing.T) {
			cl, target := newRig(t)
			before := cl.Clock().Now()
			if _, err := build(cl, 7).Run(target, 500); err != nil {
				t.Fatal(err)
			}
			if cl.Clock().Now() <= before {
				t.Error("run did not advance the simulated clock")
			}
		})
	}
}

func TestBaselinesSurviveDeadTarget(t *testing.T) {
	// A target that vanishes mid-run must end the run gracefully, not
	// hang or error.
	m := radio.NewMedium(nil, radio.DefaultTiming())
	entry, err := device.CatalogEntryByID("D2", true)
	if err != nil {
		t.Fatal(err)
	}
	d, err := device.New(m, entry.Config)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := host.NewClient(m, radio.MustBDAddr("00:1B:DC:00:00:01"), "tester")
	if err != nil {
		t.Fatal(err)
	}
	for name, build := range builders() {
		t.Run(name, func(t *testing.T) {
			fz := build(cl, 1)
			done := make(chan error, 1)
			go func() {
				_, err := fz.Run(d.Address(), 1_000)
				done <- err
			}()
			// The simulation is synchronous, so Run returns immediately;
			// vanish the target first on a fresh goroutine-free path is
			// not possible — instead run to completion and then verify a
			// second run against the unregistered target fails cleanly.
			if err := <-done; err != nil {
				t.Fatalf("first run error = %v", err)
			}
			m.Unregister(d.Address())
			cl.Disconnect(d.Address())
			if _, err := fz.Run(d.Address(), 1_000); err == nil {
				t.Error("run against vanished target should fail")
			}
			if err := m.Register(d.Controller()); err != nil {
				t.Fatal(err)
			}
		})
	}
}
