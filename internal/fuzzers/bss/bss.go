// Package bss models the Bluetooth Stack Smasher (BSS 0.6, 2006) as the
// paper characterises it (§IV-C, §VI): "it simply mutates only one field
// of a packet, which is insufficient to trigger vulnerabilities in the
// latest Bluetooth devices". Its traffic is echo/information floods with
// a single application field varied — never a valid *malformed* packet by
// the paper's metric (0% MP ratio) and never rejected (0% PR ratio) —
// built against the Bluetooth 2.1-era command set, which limits it to
// three reachable states.
package bss

import (
	"fmt"
	"math/rand"
	"time"

	"l2fuzz/internal/bt/host"
	"l2fuzz/internal/bt/l2cap"
	"l2fuzz/internal/bt/radio"
	"l2fuzz/internal/fuzzers"
)

// ThinkTime reproduces BSS's measured pace of 1.95 packets/s.
const ThinkTime = 430 * time.Millisecond

// Fuzzer is a BSS-like single-field mutator.
type Fuzzer struct {
	cl  *host.Client
	rng *rand.Rand
}

var _ fuzzers.Fuzzer = (*Fuzzer)(nil)

// New builds the fuzzer over a tester client.
func New(cl *host.Client, seed int64) *Fuzzer {
	return &Fuzzer{cl: cl, rng: rand.New(rand.NewSource(seed))}
}

// Name implements fuzzers.Fuzzer.
func (f *Fuzzer) Name() string { return "BSS" }

// Run floods the target with one-field-varied normal packets: echo
// requests of varying payload, information requests of varying type, and
// an occasional plain connection request (the BT 2.1 command set).
func (f *Fuzzer) Run(target radio.BDAddr, maxPackets int) (res fuzzers.Result, err error) {
	if err := f.cl.Connect(target); err != nil {
		return fuzzers.Result{}, fmt.Errorf("bss: %w", err)
	}
	start := f.cl.Clock().Now()
	defer func() { res.Elapsed = f.cl.Clock().Now() - start }()
	sent := 0
	send := func(cmd l2cap.Command) bool {
		if _, err := f.cl.SendCommand(target, cmd, nil); err != nil {
			return false
		}
		f.cl.Clock().Advance(ThinkTime)
		sent++
		f.cl.Drain()
		return true
	}
loop:
	for sent < maxPackets {
		switch sent % 8 {
		case 7:
			// The occasional plain connect exercises the connection path;
			// the channel is left unconfigured and dies with the link.
			if !send(&l2cap.ConnectionReq{PSM: l2cap.PSMSDP, SCID: f.cl.NextSourceCID()}) {
				break loop
			}
			f.cl.Disconnect(target)
			if err := f.cl.Connect(target); err != nil {
				res.PacketsSent = sent
				return res, nil
			}
			res.Cycles++
		case 3:
			// Information request with the type field varied.
			if !send(&l2cap.InformationReq{InfoType: l2cap.InfoType(f.rng.Intn(4))}) {
				break loop
			}
		default:
			// l2ping-style echo with the data field varied.
			data := make([]byte, f.rng.Intn(44))
			for i := range data {
				data[i] = byte(f.rng.Intn(256))
			}
			if !send(&l2cap.EchoReq{Data: data}) {
				break loop
			}
		}
	}
	res.PacketsSent = sent
	return res, nil
}
