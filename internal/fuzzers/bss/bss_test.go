package bss

import (
	"reflect"
	"testing"

	"l2fuzz/internal/bt/device"
	"l2fuzz/internal/bt/host"
	"l2fuzz/internal/bt/radio"
	"l2fuzz/internal/fuzzers"
)

// catalogRig builds a fresh medium with one armed catalog device.
func catalogRig(t *testing.T, id string) (*device.Device, *host.Client) {
	t.Helper()
	m := radio.NewMedium(nil, radio.DefaultTiming())
	entry, err := device.CatalogEntryByID(id, false)
	if err != nil {
		t.Fatal(err)
	}
	d, err := device.New(m, entry.Config)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := host.NewClient(m, radio.MustBDAddr("00:1B:DC:00:00:09"), "tester")
	if err != nil {
		t.Fatal(err)
	}
	return d, cl
}

// widenedRig builds a target carrying the D5 defect with its trigger
// fully widened — the easiest possible crash target.
func widenedRig(t *testing.T) (*device.Device, *host.Client) {
	t.Helper()
	m := radio.NewMedium(nil, radio.DefaultTiming())
	d, err := device.New(m, device.Config{
		Addr:    radio.MustBDAddr("74:D7:EB:00:00:03"),
		Name:    "widened-rtkit",
		Profile: device.RTKitProfile("5.0", device.RTKitPSMServiceKill(0, 0)),
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := host.NewClient(m, radio.MustBDAddr("00:1B:DC:00:00:09"), "tester")
	if err != nil {
		t.Fatal(err)
	}
	return d, cl
}

func TestDeterministicForSeed(t *testing.T) {
	run := func() fuzzers.Result {
		d, cl := catalogRig(t, "D2")
		res, err := New(cl, 11).Run(d.Address(), 4_000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different results:\n a = %+v\n b = %+v", a, b)
	}
	if a.PacketsSent == 0 || a.Elapsed == 0 {
		t.Errorf("run recorded no traffic or no simulated time: %+v", a)
	}
}

// TestCannotCrashEvenWidenedDevice is the paper's §VI claim made
// executable: BSS "simply mutates only one field of a packet, which is
// insufficient to trigger vulnerabilities" — its single-field echo and
// valid-PSM connect traffic cannot fire even a fully widened defect,
// let alone the narrow armed catalog ones.
func TestCannotCrashEvenWidenedDevice(t *testing.T) {
	d, cl := widenedRig(t)
	res, err := New(cl, 1).Run(d.Address(), 8_000)
	if err != nil {
		t.Fatal(err)
	}
	if d.Crashed() {
		t.Errorf("BSS crashed the widened device after %d packets; its traffic should be harmless", res.PacketsSent)
	}

	d, cl = catalogRig(t, "D5")
	if _, err := New(cl, 1).Run(d.Address(), 8_000); err != nil {
		t.Fatal(err)
	}
	if d.Crashed() {
		t.Error("BSS crashed the armed catalog D5")
	}
}
