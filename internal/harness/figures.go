package harness

import (
	"fmt"
	"strings"

	"l2fuzz/internal/bt/sm"
	"l2fuzz/internal/metrics"
)

// FigureSeries is one fuzzer's cumulative series for Figures 8/9.
type FigureSeries struct {
	// Fuzzer is the fuzzer name.
	Fuzzer FuzzerName
	// Points is the sampled cumulative series.
	Points []metrics.SamplePoint
}

// FigureConfig parameterises the series experiments.
type FigureConfig struct {
	// Seed drives all randomness.
	Seed int64
	// Packets is the per-fuzzer budget (100,000 in the paper).
	Packets int
	// SampleEvery thins the series to one point per this many packets.
	SampleEvery int
	// CoveragePackets bounds the state-coverage runs (Figures 10/11):
	// the paper analyses traces "at the end of a single test cycle",
	// not over the full 100,000-packet measurement. 30,000 packets
	// covers at least one full cycle for every fuzzer.
	CoveragePackets int
}

// DefaultFigureConfig mirrors the paper's axes (samples every 10,000
// packets up to 100,000).
func DefaultFigureConfig() FigureConfig {
	return FigureConfig{Seed: 11, Packets: 100_000, SampleEvery: 10_000, CoveragePackets: 30_000}
}

// Figure8 regenerates the cumulative transmitted-malformed-packet series
// per fuzzer (paper Figure 8: #Transmitted Malformed Packets vs
// #Transmitted Packets, log scale).
func Figure8(cfg FigureConfig) ([]FigureSeries, error) {
	return seriesExperiment(cfg, func(s *metrics.Sniffer) []metrics.SamplePoint {
		return s.MPSeries(cfg.SampleEvery)
	})
}

// Figure9 regenerates the cumulative rejection series per fuzzer
// (paper Figure 9: #Received Rejection Packets vs #Received Packets).
func Figure9(cfg FigureConfig) ([]FigureSeries, error) {
	return seriesExperiment(cfg, func(s *metrics.Sniffer) []metrics.SamplePoint {
		return s.PRSeries(cfg.SampleEvery)
	})
}

func seriesExperiment(cfg FigureConfig, extract func(*metrics.Sniffer) []metrics.SamplePoint) ([]FigureSeries, error) {
	var out []FigureSeries
	for _, name := range AllFuzzerNames() {
		rig, err := NewRig("D2", true)
		if err != nil {
			return nil, err
		}
		fz, err := buildFuzzer(name, rig, cfg.Seed, cfg.Packets)
		if err != nil {
			return nil, err
		}
		if _, err := fz.Run(rig.Device.Address(), cfg.Packets); err != nil {
			return nil, fmt.Errorf("harness: %s run: %w", name, err)
		}
		out = append(out, FigureSeries{Fuzzer: name, Points: extract(rig.Sniffer)})
	}
	return out, nil
}

// RenderSeries prints a figure's series as aligned columns.
func RenderSeries(title, xLabel, yLabel string, series []FigureSeries) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s vs %s\n", title, yLabel, xLabel)
	for _, s := range series {
		fmt.Fprintf(&b, "%-10s:", s.Fuzzer)
		if len(s.Points) == 0 {
			b.WriteString(" (no packets)")
		}
		for _, p := range s.Points {
			fmt.Fprintf(&b, " (%d, %d)", p.X, p.Y)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Figure10Row is one bar of the state-coverage comparison.
type Figure10Row struct {
	// Fuzzer is the fuzzer name.
	Fuzzer FuzzerName
	// States is the trace-inferred number of covered L2CAP states.
	States int
	// Visited lists the covered states (Figure 11's highlight set).
	Visited []sm.State
}

// Figure10 regenerates the per-fuzzer state-coverage measurement
// (paper Figure 10: 13 / 7 / 6 / 3) and, with the visited sets, the
// per-state map of Figure 11.
func Figure10(cfg FigureConfig) ([]Figure10Row, error) {
	budget := cfg.CoveragePackets
	if budget <= 0 {
		budget = 30_000
	}
	var rows []Figure10Row
	for _, name := range AllFuzzerNames() {
		rig, err := NewRig("D2", true)
		if err != nil {
			return nil, err
		}
		fz, err := buildFuzzer(name, rig, cfg.Seed, budget)
		if err != nil {
			return nil, err
		}
		if _, err := fz.Run(rig.Device.Address(), budget); err != nil {
			return nil, fmt.Errorf("harness: %s run: %w", name, err)
		}
		visited := rig.Sniffer.StatesVisited()
		rows = append(rows, Figure10Row{
			Fuzzer:  name,
			States:  len(visited),
			Visited: visited,
		})
	}
	return rows, nil
}

// RenderFigure10 prints the bar chart as text.
func RenderFigure10(rows []Figure10Row) string {
	var b strings.Builder
	b.WriteString("Figure 10: L2CAP state coverage by different fuzzers\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %2d %s\n", r.Fuzzer, r.States, strings.Repeat("#", r.States))
	}
	return b.String()
}

// RenderFigure11 prints, for every L2CAP state, which fuzzers cover it —
// the textual form of the paper's highlighted state machines.
func RenderFigure11(rows []Figure10Row) string {
	var b strings.Builder
	b.WriteString("Figure 11: testable L2CAP states per fuzzer\n")
	fmt.Fprintf(&b, "%-22s", "State")
	for _, r := range rows {
		fmt.Fprintf(&b, " %-10s", r.Fuzzer)
	}
	b.WriteString("\n")
	covered := make(map[FuzzerName]map[sm.State]bool)
	for _, r := range rows {
		set := make(map[sm.State]bool)
		for _, s := range r.Visited {
			set[s] = true
		}
		covered[r.Fuzzer] = set
	}
	for _, s := range sm.AllStates() {
		fmt.Fprintf(&b, "%-22s", s)
		for _, r := range rows {
			mark := "."
			if covered[r.Fuzzer][s] {
				mark = "X"
			}
			fmt.Fprintf(&b, " %-10s", mark)
		}
		b.WriteString("\n")
	}
	return b.String()
}
