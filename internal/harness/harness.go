// Package harness regenerates every table and figure of the paper's
// evaluation section (§IV) from the simulation:
//
//	Table V    — the eight-device testbed inventory
//	Table VI   — vulnerability detection per device with elapsed time
//	Table VII  — MP ratio, PR ratio and mutation efficiency per fuzzer
//	Figure 8   — cumulative malformed packets vs transmitted packets
//	Figure 9   — cumulative rejection packets vs received packets
//	Figure 10  — L2CAP state coverage per fuzzer
//	Figure 11  — which states each fuzzer covers on the state machine
//
// Every experiment is deterministic for a given seed. The comparison
// experiments (Table VII, Figures 8-11) run each fuzzer against a fresh
// measurement-grade Pixel 3 (device D2 with defects disabled, as the
// paper's 100,000-packet measurement requires the target to survive),
// with a trace sniffer standing in for Wireshark.
package harness

import (
	"fmt"

	"l2fuzz/internal/bt/device"
	"l2fuzz/internal/bt/radio"
	"l2fuzz/internal/core"
	"l2fuzz/internal/fuzzers"
	"l2fuzz/internal/fuzzers/bfuzz"
	"l2fuzz/internal/fuzzers/bss"
	"l2fuzz/internal/fuzzers/defensics"
	"l2fuzz/internal/metrics"
	"l2fuzz/internal/testbed"
)

// FuzzerName enumerates the compared fuzzers.
type FuzzerName string

// The four compared fuzzers.
const (
	NameL2Fuzz    FuzzerName = "L2Fuzz"
	NameDefensics FuzzerName = "Defensics"
	NameBFuzz     FuzzerName = "BFuzz"
	NameBSS       FuzzerName = "BSS"
)

// AllFuzzerNames returns the comparison order used in the paper's tables.
func AllFuzzerNames() []FuzzerName {
	return []FuzzerName{NameL2Fuzz, NameDefensics, NameBFuzz, NameBSS}
}

// Rig is one measurement setup: a fresh medium, a target device, a tester
// client and a sniffer. It is the shared testbed rig; the harness and
// the fleet both build theirs through internal/testbed.
type Rig = testbed.Rig

// NewRig builds a rig for the given catalog device. The harness always
// fuzzes the paper's Table V testbed, so it resolves the catalog ID to
// a target spec itself; arbitrary specs go straight to testbed.New.
// The rig options own the vuln-disable flag, so the spec is resolved
// armed.
func NewRig(deviceID string, disableVulns bool) (*Rig, error) {
	spec, err := device.CatalogSpec(deviceID, false)
	if err != nil {
		return nil, err
	}
	return testbed.New(spec, testbed.Options{DisableVulns: disableVulns})
}

// l2fuzzAdapter gives the core fuzzer the baseline interface.
type l2fuzzAdapter struct {
	f *core.Fuzzer
}

func (a l2fuzzAdapter) Name() string { return string(NameL2Fuzz) }

func (a l2fuzzAdapter) Run(target radio.BDAddr, maxPackets int) (fuzzers.Result, error) {
	report, err := a.f.Run(target)
	if err != nil {
		return fuzzers.Result{}, err
	}
	return fuzzers.Result{
		PacketsSent: report.PacketsSent,
		Elapsed:     report.Elapsed,
		Cycles:      report.Cycles,
	}, nil
}

// buildFuzzer constructs the named fuzzer over a rig's client.
func buildFuzzer(name FuzzerName, rig *Rig, seed int64, maxPackets int) (fuzzers.Fuzzer, error) {
	switch name {
	case NameL2Fuzz:
		cfg := core.DefaultConfig(seed)
		cfg.MaxPackets = maxPackets
		return l2fuzzAdapter{f: core.New(rig.Client, cfg)}, nil
	case NameDefensics:
		return defensics.New(rig.Client, seed), nil
	case NameBFuzz:
		return bfuzz.New(rig.Client, seed), nil
	case NameBSS:
		return bss.New(rig.Client, seed), nil
	default:
		return nil, fmt.Errorf("harness: unknown fuzzer %q", name)
	}
}

// MeasureFuzzer runs one fuzzer for maxPackets against a measurement-
// grade D2 and returns the sniffer's summary: one Table VII row.
func MeasureFuzzer(name FuzzerName, seed int64, maxPackets int) (metrics.Summary, *Rig, error) {
	rig, err := NewRig("D2", true)
	if err != nil {
		return metrics.Summary{}, nil, err
	}
	fz, err := buildFuzzer(name, rig, seed, maxPackets)
	if err != nil {
		return metrics.Summary{}, nil, err
	}
	if _, err := fz.Run(rig.Device.Address(), maxPackets); err != nil {
		return metrics.Summary{}, nil, fmt.Errorf("harness: %s run: %w", name, err)
	}
	return rig.Sniffer.Summary(), rig, nil
}
