package harness

import (
	"fmt"
	"strings"

	"l2fuzz/internal/metrics"
)

// TableVIIRow is one row of the mutation-efficiency comparison
// (paper Table VII).
type TableVIIRow struct {
	// Fuzzer is the fuzzer name.
	Fuzzer FuzzerName
	// Summary holds the measured counters and ratios.
	Summary metrics.Summary
}

// TableVIIConfig parameterises the comparison.
type TableVIIConfig struct {
	// Seed drives all randomness.
	Seed int64
	// Packets is the per-fuzzer transmission budget; the paper used
	// 100,000 sent packets per fuzzer.
	Packets int
}

// DefaultTableVIIConfig mirrors the paper's 100,000-packet measurement.
func DefaultTableVIIConfig() TableVIIConfig {
	return TableVIIConfig{Seed: 11, Packets: 100_000}
}

// TableVII measures MP ratio, PR ratio and mutation efficiency for the
// four fuzzers against the measurement-grade Pixel 3.
func TableVII(cfg TableVIIConfig) ([]TableVIIRow, error) {
	var rows []TableVIIRow
	for _, name := range AllFuzzerNames() {
		sum, _, err := MeasureFuzzer(name, cfg.Seed, cfg.Packets)
		if err != nil {
			return nil, err
		}
		rows = append(rows, TableVIIRow{Fuzzer: name, Summary: sum})
	}
	return rows, nil
}

// RenderTableVII prints the rows the way the paper's Table VII reads,
// with the packets-per-second column §IV-C reports in prose.
func RenderTableVII(rows []TableVIIRow) string {
	var b strings.Builder
	b.WriteString("Table VII: Results of the mutation efficiency measurement\n")
	fmt.Fprintf(&b, "%-10s %-9s %-9s %-19s %-8s %-7s\n",
		"Fuzzer", "MP Ratio", "PR Ratio", "Mutation efficiency", "pps", "States")
	for _, r := range rows {
		s := r.Summary
		fmt.Fprintf(&b, "%-10s %-9s %-9s %-19s %-8.2f %-7d\n",
			r.Fuzzer,
			fmt.Sprintf("%.2f%%", 100*s.MPRatio),
			fmt.Sprintf("%.2f%%", 100*s.PRRatio),
			fmt.Sprintf("%.2f%%", 100*s.MutationEfficiency),
			s.PacketsPerSecond, s.StatesCovered)
	}
	b.WriteString("*MP Ratio = Malformed Packet Ratio\n")
	b.WriteString("*PR Ratio = Packet Rejection Ratio\n")
	b.WriteString("*Mutation efficiency = MP Ratio * (1 - PR Ratio)\n")
	return b.String()
}
