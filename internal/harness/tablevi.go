package harness

import (
	"fmt"
	"strings"
	"time"

	"l2fuzz/internal/bt/device"
	"l2fuzz/internal/core"
)

// TableVIRow is one row of the vulnerability-detection results
// (paper Table VI).
type TableVIRow struct {
	// Device is the catalog ID, D1..D8.
	Device string
	// Vuln reports whether L2Fuzz detected a vulnerability.
	Vuln bool
	// Description is "DoS", "Crash" or "N/A".
	Description string
	// Elapsed is the simulated time to detection.
	Elapsed time.Duration
	// PacketsSent counts packets until detection or budget exhaustion.
	PacketsSent int
	// ErrorClass is the black-box connection-error classification.
	ErrorClass string
	// DumpKind is the ground-truth crash artefact on the device
	// ("tombstone", "gp-fault", "none", or "-" when nothing crashed).
	DumpKind string
	// ExpectedVuln is the paper's Table VI expectation for the device.
	ExpectedVuln bool
}

// TableVIConfig parameterises the per-device runs.
type TableVIConfig struct {
	// Seed drives all randomness.
	Seed int64
	// VulnerableBudget caps packets on devices expected to crash.
	VulnerableBudget int
	// RobustBudget caps packets on devices expected to survive: the
	// paper never reports how long it fuzzed D4/D6/D7, so a smaller
	// budget keeps regeneration tractable.
	RobustBudget int
}

// DefaultTableVIConfig returns the budgets used for the recorded
// experiment.
func DefaultTableVIConfig() TableVIConfig {
	return TableVIConfig{
		Seed:             11,
		VulnerableBudget: 6_000_000,
		RobustBudget:     400_000,
	}
}

// TableVI runs L2Fuzz against all eight catalog devices (defects armed)
// and reports one row per device.
func TableVI(cfg TableVIConfig) ([]TableVIRow, error) {
	var rows []TableVIRow
	for _, entry := range device.Catalog(false) {
		row, err := TableVIRun(entry.ID, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// TableVIRun produces one Table VI row.
func TableVIRun(deviceID string, cfg TableVIConfig) (TableVIRow, error) {
	entry, err := device.CatalogEntryByID(deviceID, false)
	if err != nil {
		return TableVIRow{}, err
	}
	rig, err := NewRig(deviceID, false)
	if err != nil {
		return TableVIRow{}, err
	}
	// Mix the device ID into the seed so every device sees a distinct
	// mutation stream, as distinct physical runs would.
	seed := cfg.Seed
	for _, c := range deviceID {
		seed = seed*131 + int64(c)
	}
	fcfg := core.DefaultConfig(seed)
	if entry.ExpectVuln {
		fcfg.MaxPackets = cfg.VulnerableBudget
	} else {
		fcfg.MaxPackets = cfg.RobustBudget
	}
	fz := core.New(rig.Client, fcfg)
	report, err := fz.Run(rig.Device.Address())
	if err != nil {
		return TableVIRow{}, fmt.Errorf("harness: %s: %w", deviceID, err)
	}

	row := TableVIRow{
		Device:       deviceID,
		Vuln:         report.Found,
		Description:  "N/A",
		PacketsSent:  report.PacketsSent,
		ErrorClass:   "-",
		DumpKind:     "-",
		ExpectedVuln: entry.ExpectVuln,
	}
	if report.Found {
		row.Description = report.Finding.Severity()
		row.Elapsed = report.Elapsed
		row.ErrorClass = report.Finding.Error.String()
	}
	if dump := rig.Device.CrashDump(); dump != nil {
		switch dump.Kind {
		case device.DumpTombstone:
			row.DumpKind = "tombstone"
		case device.DumpGPFault:
			row.DumpKind = "gp-fault"
		default:
			row.DumpKind = "none"
		}
	}
	return row, nil
}

// RenderTableVI prints the rows the way the paper's Table VI reads.
func RenderTableVI(rows []TableVIRow) string {
	var b strings.Builder
	b.WriteString("Table VI: Vulnerability detection results of L2Fuzz\n")
	fmt.Fprintf(&b, "%-6s %-5s %-11s %-14s %-18s %-10s %-9s\n",
		"Device", "Vuln?", "Description", "Elapsed Time", "Error Class", "Dump", "Packets")
	for _, r := range rows {
		vuln := "No"
		elapsed := "N/A"
		if r.Vuln {
			vuln = "Yes"
			elapsed = formatElapsed(r.Elapsed)
		}
		fmt.Fprintf(&b, "%-6s %-5s %-11s %-14s %-18s %-10s %-9d\n",
			r.Device, vuln, r.Description, elapsed, r.ErrorClass, r.DumpKind, r.PacketsSent)
	}
	return b.String()
}

// formatElapsed renders a duration the way the paper does (1 m 25 s).
func formatElapsed(d time.Duration) string {
	d = d.Round(time.Second)
	h := d / time.Hour
	m := (d % time.Hour) / time.Minute
	s := (d % time.Minute) / time.Second
	switch {
	case h > 0:
		return fmt.Sprintf("%d h %d m", h, m)
	case m > 0:
		return fmt.Sprintf("%d m %d s", m, s)
	default:
		return fmt.Sprintf("%d s", s)
	}
}
