package harness

import (
	"strings"
	"testing"

	"l2fuzz/internal/bt/sm"
)

func TestTableVShape(t *testing.T) {
	rows := TableV()
	if len(rows) != 8 {
		t.Fatalf("Table V has %d rows, want 8", len(rows))
	}
	wantStacks := map[string]string{
		"D1": "BlueDroid", "D2": "BlueDroid", "D3": "BlueDroid",
		"D4": "iOS stack", "D5": "RTKit stack", "D6": "BTW",
		"D7": "Windows stack", "D8": "BlueZ",
	}
	for _, r := range rows {
		if r.Stack != wantStacks[r.ID] {
			t.Errorf("%s: stack = %q, want %q", r.ID, r.Stack, wantStacks[r.ID])
		}
		if r.Ports <= 0 {
			t.Errorf("%s: no ports", r.ID)
		}
	}
	text := RenderTableV(rows)
	for _, want := range []string{"Pixel 3", "BlueZ", "Galaxy Buds+", "AirPods"} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered Table V missing %q", want)
		}
	}
}

func TestTableVIMatchesPaperFindings(t *testing.T) {
	cfg := DefaultTableVIConfig()
	cfg.RobustBudget = 50_000 // keep the test fast; robustness is binary
	rows, err := TableVI(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("%d rows, want 8", len(rows))
	}
	byID := make(map[string]TableVIRow)
	for _, r := range rows {
		byID[r.Device] = r
	}

	// Paper Table VI: vulnerabilities on D1, D2, D3 (DoS) and D5, D8
	// (Crash); nothing on D4, D6, D7.
	for id, wantDesc := range map[string]string{
		"D1": "DoS", "D2": "DoS", "D3": "DoS", "D5": "Crash", "D8": "Crash",
	} {
		r := byID[id]
		if !r.Vuln {
			t.Errorf("%s: no vulnerability found, paper found one", id)
			continue
		}
		if r.Description != wantDesc {
			t.Errorf("%s: description = %q, want %q", id, r.Description, wantDesc)
		}
	}
	for _, id := range []string{"D4", "D6", "D7"} {
		if byID[id].Vuln {
			t.Errorf("%s: found a vulnerability, paper found none", id)
		}
	}

	// Crash artefacts: Android tombstones on D1-D3, a GP-fault dump on
	// D8, nothing recoverable from D5's dead firmware.
	for _, id := range []string{"D1", "D2", "D3"} {
		if byID[id].DumpKind != "tombstone" {
			t.Errorf("%s: dump = %q, want tombstone", id, byID[id].DumpKind)
		}
	}
	if byID["D8"].DumpKind != "gp-fault" {
		t.Errorf("D8: dump = %q, want gp-fault", byID["D8"].DumpKind)
	}

	// Elapsed-time shape: D5 fastest; D3 slower than D1 and D2; D8
	// slowest by a wide margin (paper: 40s / ~1.5m / 7m / 2h40m).
	if !(byID["D5"].Elapsed < byID["D1"].Elapsed && byID["D5"].Elapsed < byID["D2"].Elapsed) {
		t.Errorf("D5 (%v) should be fastest (D1 %v, D2 %v)",
			byID["D5"].Elapsed, byID["D1"].Elapsed, byID["D2"].Elapsed)
	}
	if !(byID["D3"].Elapsed > byID["D1"].Elapsed && byID["D3"].Elapsed > byID["D2"].Elapsed) {
		t.Errorf("D3 (%v) should be slower than D1 (%v) and D2 (%v)",
			byID["D3"].Elapsed, byID["D1"].Elapsed, byID["D2"].Elapsed)
	}
	if byID["D8"].Elapsed <= 2*byID["D3"].Elapsed {
		t.Errorf("D8 (%v) should dominate D3 (%v)", byID["D8"].Elapsed, byID["D3"].Elapsed)
	}

	text := RenderTableVI(rows)
	if !strings.Contains(text, "tombstone") || !strings.Contains(text, "N/A") {
		t.Error("rendered Table VI missing expected cells")
	}
}

func TestTableVIIMatchesPaperShape(t *testing.T) {
	cfg := DefaultTableVIIConfig()
	cfg.Packets = 40_000 // ratios stabilise well before 100k
	rows, err := TableVII(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4", len(rows))
	}
	byName := make(map[FuzzerName]TableVIIRow)
	for _, r := range rows {
		byName[r.Fuzzer] = r
	}
	l2 := byName[NameL2Fuzz].Summary
	df := byName[NameDefensics].Summary
	bf := byName[NameBFuzz].Summary
	bs := byName[NameBSS].Summary

	// MP Ratio ordering (paper: 69.96 ≫ 2.38 > 1.50 > 0).
	if !(l2.MPRatio > 10*df.MPRatio && df.MPRatio > bf.MPRatio && bf.MPRatio > bs.MPRatio) {
		t.Errorf("MP ordering broken: L2=%.4f Def=%.4f BF=%.4f BSS=%.4f",
			l2.MPRatio, df.MPRatio, bf.MPRatio, bs.MPRatio)
	}
	if bs.MPRatio != 0 {
		t.Errorf("BSS MP ratio = %.4f, want 0 (paper: no malformed packets)", bs.MPRatio)
	}
	// The headline claim: up to ~46× more malformed packets than the
	// best baseline.
	if l2.MPRatio < 20*df.MPRatio {
		t.Errorf("L2Fuzz/Defensics malformed factor = %.1f, want ≥ 20",
			l2.MPRatio/df.MPRatio)
	}

	// PR Ratio ordering (paper: BFuzz 91.6 ≫ L2Fuzz 32.5 ≫ Defensics 1.7 ≥ BSS 0).
	if !(bf.PRRatio > l2.PRRatio && l2.PRRatio > df.PRRatio && df.PRRatio >= bs.PRRatio) {
		t.Errorf("PR ordering broken: BF=%.4f L2=%.4f Def=%.4f BSS=%.4f",
			bf.PRRatio, l2.PRRatio, df.PRRatio, bs.PRRatio)
	}
	if bs.PRRatio != 0 {
		t.Errorf("BSS PR ratio = %.4f, want 0", bs.PRRatio)
	}

	// Mutation efficiency ordering (paper: 47.22 ≫ 2.33 > 0.12 > 0).
	if !(l2.MutationEfficiency > df.MutationEfficiency &&
		df.MutationEfficiency > bf.MutationEfficiency &&
		bf.MutationEfficiency > bs.MutationEfficiency) {
		t.Errorf("efficiency ordering broken: L2=%.4f Def=%.4f BF=%.4f BSS=%.4f",
			l2.MutationEfficiency, df.MutationEfficiency,
			bf.MutationEfficiency, bs.MutationEfficiency)
	}

	// Packet rates (paper: 524.27 / 3.37 / 454.54 / 1.95 pps).
	if l2.PacketsPerSecond < 300 || l2.PacketsPerSecond > 900 {
		t.Errorf("L2Fuzz pps = %.2f, want within 300-900", l2.PacketsPerSecond)
	}
	if df.PacketsPerSecond < 3 || df.PacketsPerSecond > 4 {
		t.Errorf("Defensics pps = %.2f, want ~3.37", df.PacketsPerSecond)
	}
	if bf.PacketsPerSecond < 200 || bf.PacketsPerSecond > 700 {
		t.Errorf("BFuzz pps = %.2f, want within 200-700", bf.PacketsPerSecond)
	}
	if bs.PacketsPerSecond < 1.5 || bs.PacketsPerSecond > 2.5 {
		t.Errorf("BSS pps = %.2f, want ~1.95", bs.PacketsPerSecond)
	}

	text := RenderTableVII(rows)
	if !strings.Contains(text, "Mutation efficiency") {
		t.Error("rendered Table VII missing header")
	}
}

func TestFigure8And9Series(t *testing.T) {
	cfg := DefaultFigureConfig()
	cfg.Packets = 30_000
	cfg.SampleEvery = 5_000

	fig8, err := Figure8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fig9, err := Figure9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range [][]FigureSeries{fig8, fig9} {
		if len(series) != 4 {
			t.Fatalf("%d series, want 4", len(series))
		}
		for _, s := range series {
			// Cumulative series must be monotone in both coordinates.
			for i := 1; i < len(s.Points); i++ {
				if s.Points[i].X < s.Points[i-1].X || s.Points[i].Y < s.Points[i-1].Y {
					t.Errorf("%s: non-monotone series at %d", s.Fuzzer, i)
				}
			}
		}
	}
	// Figure 8 end-points: L2Fuzz accumulates far more malformed packets.
	ends := make(map[FuzzerName]int)
	for _, s := range fig8 {
		if len(s.Points) > 0 {
			ends[s.Fuzzer] = s.Points[len(s.Points)-1].Y
		}
	}
	if !(ends[NameL2Fuzz] > 10*ends[NameDefensics] && ends[NameDefensics] > ends[NameBFuzz] &&
		ends[NameBFuzz] > ends[NameBSS]) {
		t.Errorf("Figure 8 end-point ordering broken: %v", ends)
	}
	if ends[NameBSS] != 0 {
		t.Errorf("BSS accumulated %d malformed packets, want 0", ends[NameBSS])
	}

	text := RenderSeries("Figure 8", "#Transmitted Packets", "#Transmitted Malformed Packets", fig8)
	if !strings.Contains(text, "L2Fuzz") {
		t.Error("rendered series missing fuzzer names")
	}
}

func TestFigure10And11Coverage(t *testing.T) {
	cfg := DefaultFigureConfig()
	rows, err := Figure10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := map[FuzzerName]int{
		NameL2Fuzz:    13,
		NameDefensics: 7,
		NameBFuzz:     6,
		NameBSS:       3,
	}
	for _, r := range rows {
		if r.States != want[r.Fuzzer] {
			t.Errorf("%s: %d states, want %d (paper Figure 10)", r.Fuzzer, r.States, want[r.Fuzzer])
		}
		if len(r.Visited) != r.States {
			t.Errorf("%s: visited list has %d entries, count says %d", r.Fuzzer, len(r.Visited), r.States)
		}
	}
	// L2Fuzz covers move and creation jobs no baseline reaches.
	var l2 Figure10Row
	for _, r := range rows {
		if r.Fuzzer == NameL2Fuzz {
			l2 = r
		}
	}
	cov := make(map[sm.State]bool)
	for _, s := range l2.Visited {
		cov[s] = true
	}
	for _, s := range []sm.State{sm.StateWaitCreate, sm.StateWaitMove, sm.StateWaitMoveConfirm} {
		if !cov[s] {
			t.Errorf("L2Fuzz missing %v, which only it covers per the paper", s)
		}
	}

	fig11 := RenderFigure11(rows)
	if !strings.Contains(fig11, "WAIT_CREATE") || !strings.Contains(fig11, "X") {
		t.Error("rendered Figure 11 missing state rows or coverage marks")
	}
	fig10 := RenderFigure10(rows)
	if !strings.Contains(fig10, "#############") {
		t.Error("rendered Figure 10 missing the 13-state bar")
	}
}

func TestMeasureFuzzerUnknownName(t *testing.T) {
	if _, _, err := MeasureFuzzer("NotAFuzzer", 1, 10); err == nil {
		t.Fatal("unknown fuzzer accepted")
	}
}

func TestRigConstruction(t *testing.T) {
	rig, err := NewRig("D2", true)
	if err != nil {
		t.Fatal(err)
	}
	if rig.Device.Name() != "Pixel 3" {
		t.Errorf("device = %q", rig.Device.Name())
	}
	if _, err := NewRig("D99", true); err == nil {
		t.Error("NewRig(D99) succeeded")
	}
}
