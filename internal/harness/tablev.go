package harness

import (
	"fmt"
	"strings"

	"l2fuzz/internal/bt/device"
)

// TableVRow is one row of the testbed inventory (paper Table V).
type TableVRow struct {
	// ID is the device number D1..D8.
	ID string
	// Type, Vendor, Model, Year, OS, Stack and BTVersion mirror the
	// paper's columns.
	Type, Vendor, Model string
	Year                int
	OS, Stack           string
	BTVersion           string
	// MAC is the simulated BD_ADDR (not in the paper's table; recorded
	// for reproducibility).
	MAC string
	// Ports is the number of exposed service ports including SDP.
	Ports int
}

// TableV regenerates the device-inventory table from the catalog.
func TableV() []TableVRow {
	var rows []TableVRow
	for _, e := range device.Catalog(false) {
		ports := len(e.Config.Ports)
		hasSDP := false
		for _, p := range e.Config.Ports {
			if p.PSM == 0x0001 {
				hasSDP = true
			}
		}
		if !hasSDP {
			ports++ // the device model adds SDP automatically
		}
		rows = append(rows, TableVRow{
			ID: e.ID, Type: e.Type, Vendor: e.Vendor, Model: e.Model,
			Year: e.Year, OS: e.OS, Stack: e.Stack, BTVersion: e.BTVersion,
			MAC: e.Addr.String(), Ports: ports,
		})
	}
	return rows
}

// RenderTableV prints the rows the way the paper's Table V reads.
func RenderTableV(rows []TableVRow) string {
	var b strings.Builder
	b.WriteString("Table V: Summary of test devices used in the experiments\n")
	fmt.Fprintf(&b, "%-3s %-11s %-8s %-28s %-5s %-14s %-14s %-9s %-6s\n",
		"No.", "Type", "Vendor", "Model", "Year", "OS or FW", "BT Stack", "BT Ver.", "Ports")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-3s %-11s %-8s %-28s %-5d %-14s %-14s %-9s %-6d\n",
			r.ID, r.Type, r.Vendor, r.Model, r.Year, r.OS, r.Stack, r.BTVersion, r.Ports)
	}
	return b.String()
}
