// Package testbed builds the standard single-target measurement rig —
// a fresh radio medium, one target device, a tester client and a
// Wireshark-style trace sniffer — shared by the evaluation harness and
// the fleet orchestrator so the two layers cannot drift apart in how
// they wire a testbed.
//
// The target is a first-class device.Spec, not a catalog ID: the
// catalog's eight Table V devices come from device.CatalogSpec, and any
// other validated Spec — custom port maps, vendor profiles, injected
// defects — builds the same rig through the same path.
package testbed

import (
	"fmt"

	"l2fuzz/internal/bt/device"
	"l2fuzz/internal/bt/host"
	"l2fuzz/internal/bt/l2cap"
	"l2fuzz/internal/bt/radio"
	"l2fuzz/internal/bt/rfcomm"
	"l2fuzz/internal/bt/sdp"
	"l2fuzz/internal/metrics"
	"l2fuzz/internal/telemetry"
)

// TesterAddr is the tester endpoint's fixed address: the analogue of
// the paper's Ubuntu machine with a Class-1 dongle.
var TesterAddr = radio.MustBDAddr("00:1B:DC:F0:00:01")

// Rig is one measurement setup: a fresh medium, a target device, a
// tester client and a sniffer.
type Rig struct {
	Medium  *radio.Medium
	Device  *device.Device
	Client  *host.Client
	Sniffer *metrics.Sniffer
	// Recorder is the client's trace recorder when Options.Record was
	// set, nil otherwise.
	Recorder *host.TraceRecorder
	// flushTelemetry drains the frame tap's local tally into
	// Options.Counters; nil when no counters are wired.
	flushTelemetry func()
}

// FlushTelemetry drains any locally batched telemetry into the rig's
// counters. Call it when the rig's traffic is done (the frame tap
// tallies into plain locals and flushes in batches, so the tail of a
// run is only visible after a flush). Safe on counter-less rigs.
func (r *Rig) FlushTelemetry() {
	if r.flushTelemetry != nil {
		r.flushTelemetry()
	}
}

// Options selects the rig variant.
type Options struct {
	// DisableVulns builds the target measurement-grade: its injected
	// defects disabled, as the paper's 100,000-packet measurements
	// require the device to survive.
	DisableVulns bool
	// RFCOMM prepares the target for RFCOMM fuzzing: the RFCOMM port is
	// opened pairing-free, the standard serial services are mounted when
	// the spec brings none of its own, and — unless vulns are disabled —
	// specs expected to be vulnerable also carry the reserved-DLCI mux
	// defect.
	RFCOMM bool
	// TesterName names the tester endpoint; empty means "test-machine".
	TesterName string
	// Record attaches a host.TraceRecorder to the rig's client, so every
	// page, link drop and transmitted frame is captured as a replayable
	// operation sequence (the corpus subsystem's repro traces).
	Record bool
	// RecordLimit caps the recorded operation count when Record is set;
	// zero means host.DefaultTraceLimit. Outgrowing the limit marks the
	// trace truncated rather than dropping its head, because a headless
	// trace could not replay from a fresh rig.
	RecordLimit int
	// Counters, when set, taps the rig's medium so every carried frame
	// bumps the frame and byte counters. The tap batches locally; call
	// Rig.FlushTelemetry after the traffic to make the tail visible.
	Counters *telemetry.Counters
}

// frameFlushBatch is the frame tap's local batch size: large enough to
// keep atomics off the per-frame path, small enough that live samples
// stay fresh at farm frame rates.
const frameFlushBatch = 256

// New builds a rig around one target spec.
func New(spec device.Spec, opts Options) (*Rig, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("testbed: %w", err)
	}
	dcfg := spec.Config
	if opts.DisableVulns {
		dcfg.DisableVulns = true
	}
	if opts.RFCOMM {
		dcfg.Ports = rfcommPorts(dcfg.Ports)
		if len(dcfg.RFCOMMServices) == 0 {
			dcfg.RFCOMMServices = []rfcomm.Service{
				{Channel: 1, Name: "Serial Port Profile"},
				{Channel: 2, Name: "Hands-Free"},
			}
		}
		if spec.ExpectVuln && !dcfg.DisableVulns && dcfg.RFCOMMDefect == nil {
			dcfg.RFCOMMDefect = rfcomm.ReservedDLCIDefect()
		}
	}
	// Specs expected to be vulnerable also carry an SDP parser defect.
	// Unlike the RFCOMM defect there is no opt-in rig variant: the
	// defect only fires on PDUs whose declared parameter length overruns
	// the payload, which valid service discovery (every fuzzer's scan
	// phase) never produces — and corpus replays of SDP findings need
	// the same arming without engine-specific options.
	if spec.ExpectVuln && !dcfg.DisableVulns && dcfg.SDPDefect == nil {
		dcfg.SDPDefect = sdp.OverreadDefect()
	}
	name := opts.TesterName
	if name == "" {
		name = "test-machine"
	}
	m := radio.NewMedium(nil, radio.DefaultTiming())
	var flush func()
	if opts.Counters != nil {
		// The tap tallies into plain locals and flushes in batches: the
		// medium is single-goroutine by contract, and per-frame atomic
		// bumps are measurable farm overhead. The tail flushes through
		// Rig.FlushTelemetry.
		ctr := opts.Counters
		frames, bytes := 0, int64(0)
		m.AddTap(func(f radio.TapFrame) {
			frames++
			bytes += int64(len(f.Data))
			if frames == frameFlushBatch {
				ctr.AddFrames(frames, bytes)
				frames, bytes = 0, 0
			}
		})
		flush = func() {
			ctr.AddFrames(frames, bytes)
			frames, bytes = 0, 0
		}
	}
	dev, err := device.New(m, dcfg)
	if err != nil {
		return nil, fmt.Errorf("testbed: %w", err)
	}
	cl, err := host.NewClient(m, TesterAddr, name)
	if err != nil {
		return nil, fmt.Errorf("testbed: %w", err)
	}
	rig := &Rig{
		Medium:         m,
		Device:         dev,
		Client:         cl,
		Sniffer:        metrics.NewSniffer(m, TesterAddr),
		flushTelemetry: flush,
	}
	if opts.Record {
		rig.Recorder = host.NewTraceRecorder(opts.RecordLimit)
		cl.SetRecorder(rig.Recorder)
	}
	return rig, nil
}

// rfcommPorts rewrites a port list so the RFCOMM port exists and is
// reachable without pairing: an existing port is made pairing-free in
// place, a missing one is appended.
func rfcommPorts(ports []device.ServicePort) []device.ServicePort {
	out := append([]device.ServicePort(nil), ports...)
	for i, p := range out {
		if p.PSM == l2cap.PSMRFCOMM {
			out[i].RequiresPairing = false
			return out
		}
	}
	return append(out, device.ServicePort{PSM: l2cap.PSMRFCOMM, Name: "RFCOMM"})
}
