package testbed

import (
	"testing"

	"l2fuzz/internal/bt/l2cap"
)

func TestNewBuildsWorkingRig(t *testing.T) {
	rig, err := New("D2", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rig.Client.Connect(rig.Device.Address()); err != nil {
		t.Fatal(err)
	}
	if err := rig.Client.Ping(rig.Device.Address()); err != nil {
		t.Fatal(err)
	}
	if sum := rig.Sniffer.Summary(); sum.Transmitted == 0 {
		t.Error("sniffer not tapping the rig's medium")
	}
}

func TestNewRejectsUnknownDevice(t *testing.T) {
	if _, err := New("D99", Options{}); err == nil {
		t.Error("unknown device accepted")
	}
}

// TestRFCOMMOptionOpensPort checks the RFCOMM variant: the port must be
// present and reachable without pairing on every catalog device.
func TestRFCOMMOptionOpensPort(t *testing.T) {
	rig, err := New("D4", Options{RFCOMM: true, DisableVulns: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rig.Device.Ports() {
		if p.PSM == l2cap.PSMRFCOMM {
			if p.RequiresPairing {
				t.Error("RFCOMM port still requires pairing")
			}
			return
		}
	}
	t.Error("RFCOMM port not mounted")
}
