package testbed

import (
	"testing"

	"l2fuzz/internal/bt/device"
	"l2fuzz/internal/bt/l2cap"
	"l2fuzz/internal/bt/radio"
)

// catalogSpec resolves a Table V spec or fails the test.
func catalogSpec(t *testing.T, id string) device.Spec {
	t.Helper()
	spec, err := device.CatalogSpec(id, false)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestNewBuildsWorkingRig(t *testing.T) {
	rig, err := New(catalogSpec(t, "D2"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rig.Client.Connect(rig.Device.Address()); err != nil {
		t.Fatal(err)
	}
	if err := rig.Client.Ping(rig.Device.Address()); err != nil {
		t.Fatal(err)
	}
	if sum := rig.Sniffer.Summary(); sum.Transmitted == 0 {
		t.Error("sniffer not tapping the rig's medium")
	}
}

func TestNewRejectsInvalidSpec(t *testing.T) {
	if _, err := New(device.Spec{}, Options{}); err == nil {
		t.Error("nameless spec accepted")
	}
	if _, err := New(device.Spec{Name: "ghost"}, Options{}); err == nil {
		t.Error("spec without a BD_ADDR accepted")
	}
}

// TestNewBuildsCustomSpec checks a non-catalog target goes through the
// same builder: any validated spec yields a working rig.
func TestNewBuildsCustomSpec(t *testing.T) {
	rig, err := New(device.Spec{
		Name: "iot-widget",
		Config: device.Config{
			Addr:    radio.MustBDAddr("02:00:00:AA:BB:CC"),
			Name:    "IoT Widget",
			Profile: device.BTWProfile("5.0"),
		},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rig.Client.Connect(rig.Device.Address()); err != nil {
		t.Fatal(err)
	}
	if err := rig.Client.Ping(rig.Device.Address()); err != nil {
		t.Fatal(err)
	}
}

// TestRFCOMMOptionOpensPort checks the RFCOMM variant: the port must be
// present and reachable without pairing on every catalog device.
func TestRFCOMMOptionOpensPort(t *testing.T) {
	spec, err := device.CatalogSpec("D4", true)
	if err != nil {
		t.Fatal(err)
	}
	rig, err := New(spec, Options{RFCOMM: true, DisableVulns: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rig.Device.Ports() {
		if p.PSM == l2cap.PSMRFCOMM {
			if p.RequiresPairing {
				t.Error("RFCOMM port still requires pairing")
			}
			return
		}
	}
	t.Error("RFCOMM port not mounted")
}

// TestRFCOMMPortsRewritesInPlace pins the port-list rewrite: a present
// RFCOMM port is made pairing-free where it stands — no duplicate is
// appended — and other ports are untouched.
func TestRFCOMMPortsRewritesInPlace(t *testing.T) {
	in := []device.ServicePort{
		{PSM: l2cap.PSMSDP, Name: "Service Discovery"},
		{PSM: l2cap.PSMRFCOMM, Name: "RFCOMM", RequiresPairing: true},
		{PSM: l2cap.PSMAVDTP, Name: "AVDTP"},
	}
	out := rfcommPorts(in)
	if len(out) != len(in) {
		t.Fatalf("rewrite changed port count: %d -> %d", len(in), len(out))
	}
	rfcommSeen := 0
	for i, p := range out {
		if p.PSM == l2cap.PSMRFCOMM {
			rfcommSeen++
			if p.RequiresPairing {
				t.Error("existing RFCOMM port not made pairing-free")
			}
			if i != 1 {
				t.Errorf("RFCOMM port moved to index %d", i)
			}
			continue
		}
		if p != in[i] {
			t.Errorf("port %d rewritten: %+v -> %+v", i, in[i], p)
		}
	}
	if rfcommSeen != 1 {
		t.Fatalf("rewrite left %d RFCOMM ports, want exactly 1", rfcommSeen)
	}
	// The input must not be mutated: the rewrite works on a copy.
	if !in[1].RequiresPairing {
		t.Error("rewrite mutated the caller's port list")
	}
}

// TestRFCOMMPortsAppendsWhenMissing pins the other branch: a port list
// without RFCOMM gains exactly one pairing-free RFCOMM port at the end.
func TestRFCOMMPortsAppendsWhenMissing(t *testing.T) {
	in := []device.ServicePort{
		{PSM: l2cap.PSMSDP, Name: "Service Discovery"},
		{PSM: l2cap.PSMAVCTP, Name: "AVCTP"},
	}
	out := rfcommPorts(in)
	if len(out) != len(in)+1 {
		t.Fatalf("rewrite produced %d ports, want %d", len(out), len(in)+1)
	}
	last := out[len(out)-1]
	if last.PSM != l2cap.PSMRFCOMM || last.RequiresPairing {
		t.Errorf("appended port = %+v, want a pairing-free RFCOMM port", last)
	}
	for i, p := range out[:len(in)] {
		if p != in[i] {
			t.Errorf("port %d rewritten: %+v -> %+v", i, in[i], p)
		}
	}
	// An empty list grows only the RFCOMM port.
	if out := rfcommPorts(nil); len(out) != 1 || out[0].PSM != l2cap.PSMRFCOMM {
		t.Errorf("rfcommPorts(nil) = %+v, want exactly the RFCOMM port", out)
	}
}
