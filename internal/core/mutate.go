package core

import (
	"fmt"
	"math/rand"

	"l2fuzz/internal/bt/l2cap"
)

// Mutator implements core field mutating (paper §III-D, Algorithm 1).
// It is deterministic for a given source.
type Mutator struct {
	rng *rand.Rand
	// maxGarbage bounds the appended tail so the packet stays under the
	// signaling MTU ("Signaling MTU exceeded" is avoided by construction).
	maxGarbage int
	// creditRNG, when seeded, drives the credit-negotiation field
	// mutation (SPSM/MTU/MPS/CREDIT on the credit-based command family).
	// It is a separate stream so enabling it leaves the core-field and
	// garbage draws — and therefore every historical packet schedule —
	// untouched.
	creditRNG *rand.Rand

	// Reused scratch state: one packet is in flight per mutator at a
	// time, so Mutate can hand out borrows of these.
	defaults map[l2cap.CommandCode]l2cap.Command
	tail     []byte
	payload  []byte
}

// NewMutator builds a mutator over the given RNG.
func NewMutator(rng *rand.Rand, maxGarbage int) *Mutator {
	if maxGarbage < 0 {
		maxGarbage = 0
	}
	return &Mutator{rng: rng, maxGarbage: maxGarbage}
}

// SeedCreditStream enables credit-negotiation field mutation, drawing
// values from a dedicated RNG stream seeded here. Without it the credit
// commands keep their specification defaults (the pre-extension
// behaviour).
func (mu *Mutator) SeedCreditStream(seed int64) {
	mu.creditRNG = rand.New(rand.NewSource(seed))
}

// Mutation describes what a generated packet had mutated: the ground
// truth the metrics layer uses to classify malformed traffic.
type Mutation struct {
	// Code is the command the packet carries.
	Code l2cap.CommandCode
	// PSMMutated reports an abnormal-range PSM substitution.
	PSMMutated bool
	// PSM is the substituted value when PSMMutated.
	PSM l2cap.PSM
	// CIDsMutated counts payload channel IDs overwritten.
	CIDsMutated int
	// ControllerIDMutated reports a CONT_ID substitution.
	ControllerIDMutated bool
	// GarbageLen is the appended tail length.
	GarbageLen int
	// CreditFieldsMutated counts credit-negotiation fields (SPSM, MTU,
	// MPS, CREDIT) overwritten on the credit-based command family. The
	// field is omitted from serialized records when zero so artefacts
	// from runs without credit mutation keep their historical shape.
	CreditFieldsMutated int `json:",omitempty"`
}

// IsMalformed reports whether the packet differs from a well-formed
// default: any core-field substitution or a non-empty tail.
func (m Mutation) IsMalformed() bool {
	return m.PSMMutated || m.CIDsMutated > 0 || m.ControllerIDMutated || m.GarbageLen > 0
}

// String summarises the mutation for logs.
func (m Mutation) String() string {
	s := fmt.Sprintf("%v psm=%v cids=%d cont=%v garbage=%dB",
		m.Code, m.PSMMutated, m.CIDsMutated, m.ControllerIDMutated, m.GarbageLen)
	if m.CreditFieldsMutated > 0 {
		s += fmt.Sprintf(" credit=%d", m.CreditFieldsMutated)
	}
	return s
}

// AbnormalPSM samples the malicious PSM domain of Table IV: half the
// draws come from the seven odd-MSB bands, half are arbitrary even
// values.
func (mu *Mutator) AbnormalPSM() l2cap.PSM {
	if mu.rng.Intn(2) == 0 {
		bands := l2cap.AbnormalPSMRanges()
		b := bands[mu.rng.Intn(len(bands))]
		return b.Lo + l2cap.PSM(mu.rng.Intn(int(b.Hi-b.Lo)+1))
	}
	return l2cap.PSM(mu.rng.Intn(0x8000) * 2) // any even value
}

// NormalCIDP samples the normal dynamic CID range [0x0040, 0xFFFF],
// deliberately ignoring what the target actually allocated.
func (mu *Mutator) NormalCIDP() l2cap.CID {
	lo, hi := l2cap.CIDPRange()
	return lo + l2cap.CID(mu.rng.Intn(int(hi-lo)+1))
}

// Garbage produces the tail: length uniform in [0, maxGarbage], bytes
// uniform. The returned slice is a borrow of the mutator's scratch
// buffer, valid until the next Garbage or Mutate call; the RNG draw
// sequence (one length draw, then one draw per byte) is identical to the
// historical allocating version, so packet schedules are unchanged.
func (mu *Mutator) Garbage() []byte {
	n := mu.rng.Intn(mu.maxGarbage + 1)
	if n == 0 {
		return nil
	}
	if cap(mu.tail) < n {
		mu.tail = make([]byte, n)
	}
	tail := mu.tail[:n]
	for i := range tail {
		tail[i] = byte(mu.rng.Intn(256))
	}
	return tail
}

// defaultCommand returns the mutator's reusable command instance for
// code. Every field the mutation loop can touch is overwritten on every
// Mutate call (core fields always; credit fields whenever the credit
// stream is enabled), so reusing the instance leaves packet contents
// identical to building a fresh default each time.
func (mu *Mutator) defaultCommand(code l2cap.CommandCode) (l2cap.Command, error) {
	if cmd, ok := mu.defaults[code]; ok {
		return cmd, nil
	}
	cmd, err := l2cap.DefaultCommand(code)
	if err != nil {
		return nil, err
	}
	if mu.defaults == nil {
		mu.defaults = make(map[l2cap.CommandCode]l2cap.Command)
	}
	mu.defaults[code] = cmd
	return cmd, nil
}

// Mutate implements Algorithm 1 for one command code: build the default
// command (D and MA fields at their defaults), overwrite the mutable-core
// fields, and append garbage. The identifier is supplied by the caller so
// the packet stream stays protocol-plausible.
//
// The returned packet's payload is a borrow of the mutator's scratch
// buffer, valid until the next Mutate call: the fuzzing loop sends (and
// the client marshals) each packet before generating the next. Callers
// that retain a packet must copy its payload.
func (mu *Mutator) Mutate(id uint8, code l2cap.CommandCode) (l2cap.Packet, Mutation, error) {
	cmd, err := mu.defaultCommand(code)
	if err != nil {
		return l2cap.Packet{}, Mutation{}, fmt.Errorf("mutate: %w", err)
	}
	info := Mutation{Code: code}

	core := cmd.CoreFields()
	if core.PSM != nil {
		*core.PSM = mu.AbnormalPSM()
		info.PSMMutated = true
		info.PSM = *core.PSM
	}
	for _, cid := range core.CIDs {
		*cid = mu.NormalCIDP()
		info.CIDsMutated++
	}
	for _, cont := range core.ControllerIDs {
		// Controllers 0-3; non-zero values name AMP controllers the
		// target does not have.
		*cont = uint8(mu.rng.Intn(4))
		info.ControllerIDMutated = true
	}

	if mu.creditRNG != nil {
		if cc, ok := cmd.(l2cap.CreditFielder); ok {
			for _, field := range cc.CreditFields() {
				*field = mu.creditValue()
				info.CreditFieldsMutated++
			}
		}
	}

	tail := mu.Garbage()
	info.GarbageLen = len(tail)
	payload, declared := l2cap.AppendSignalFrame(mu.payload[:0], id, cmd, tail)
	mu.payload = payload
	return l2cap.Packet{
		Length:    uint16(min(declared, l2cap.MaxPayload)),
		ChannelID: l2cap.CIDSignaling,
		Payload:   payload,
	}, info, nil
}

// creditValue samples one credit-negotiation field: the boundary values
// 0 and 0xFFFF — zero-credit stalls and maximal MTU/MPS claims are the
// historically productive corners — each an eighth of the time,
// otherwise uniform over the full range.
func (mu *Mutator) creditValue() uint16 {
	switch mu.creditRNG.Intn(8) {
	case 0:
		return 0
	case 1:
		return 0xFFFF
	default:
		return uint16(mu.creditRNG.Intn(0x10000))
	}
}
