package core

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"l2fuzz/internal/bt/host"
	"l2fuzz/internal/bt/l2cap"
	"l2fuzz/internal/bt/radio"
	"l2fuzz/internal/bt/sm"
)

// Report is the outcome of one L2Fuzz run against one target.
type Report struct {
	// Scan is the target-scanning result.
	Scan ScanReport
	// Found reports whether a vulnerability was detected.
	Found bool
	// Finding is the detected vulnerability when Found.
	Finding Finding
	// Elapsed is the simulated time from run start to detection (or to
	// budget exhaustion).
	Elapsed time.Duration
	// PacketsSent counts every packet the fuzzer transmitted, including
	// transition and probe traffic.
	PacketsSent int
	// MalformedSent counts the test packets whose mutation made them
	// malformed.
	MalformedSent int
	// StatesTested lists the states whose setup succeeded at least once.
	StatesTested []sm.State
	// Cycles counts completed port sweeps.
	Cycles int
}

// Fuzzer is one L2Fuzz instance bound to a tester client.
type Fuzzer struct {
	cl     *host.Client
	cfg    Config
	rng    *rand.Rand
	mut    *Mutator
	target radio.BDAddr

	packetsSent   int
	malformedSent int
	mutationsDone int
	sincePing     int
	statesTested  map[sm.State]bool
	logw          io.Writer

	// flushedPackets/Malformed/Mutations mark how much of the tallies
	// above has been published to cfg.Counters: telemetry flushes as
	// deltas at probe points and at run end, keeping atomics off the
	// per-packet path.
	flushedPackets   int
	flushedMalformed int
	flushedMutations int
}

// flushCounters publishes the tally growth since the last flush to the
// telemetry counters. No-op without counters.
func (f *Fuzzer) flushCounters() {
	if f.cfg.Counters == nil {
		return
	}
	f.cfg.Counters.AddPackets(f.packetsSent - f.flushedPackets)
	f.cfg.Counters.AddMalformed(f.malformedSent - f.flushedMalformed)
	f.cfg.Counters.AddMutations(f.mutationsDone - f.flushedMutations)
	f.flushedPackets = f.packetsSent
	f.flushedMalformed = f.malformedSent
	f.flushedMutations = f.mutationsDone
}

// New builds a fuzzer over an existing tester client.
func New(cl *host.Client, cfg Config) *Fuzzer {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	maxGarbage := cfg.MaxGarbage
	if cfg.NoGarbage {
		maxGarbage = 0
	}
	mut := NewMutator(rng, maxGarbage)
	// Credit-negotiation fields draw from their own stream so the core
	// packet schedule is seed-for-seed identical with earlier versions.
	mut.SeedCreditStream(cfg.Seed)
	return &Fuzzer{
		cl:           cl,
		cfg:          cfg,
		rng:          rng,
		mut:          mut,
		statesTested: make(map[sm.State]bool),
		logw:         cfg.LogWriter,
	}
}

// Run executes the four phases against the target until a vulnerability
// is found or the packet budget is exhausted.
func (f *Fuzzer) Run(target radio.BDAddr) (*Report, error) {
	f.target = target
	start := f.cl.Clock().Now()

	scan, err := Scan(f.cl, target)
	if err != nil {
		return nil, fmt.Errorf("target scanning: %w", err)
	}
	f.logf("scan: target %v (%s) class=0x%06X, %d ports, %d exploitable",
		scan.Meta.Addr, scan.Meta.Name, scan.Meta.ClassOfDevice,
		len(scan.Ports), len(scan.ExploitablePSMs))

	report := &Report{Scan: scan}
	finish := func(found bool, finding Finding) (*Report, error) {
		f.flushCounters()
		report.Found = found
		report.Finding = finding
		report.Elapsed = f.cl.Clock().Now() - start
		report.PacketsSent = f.packetsSent
		report.MalformedSent = f.malformedSent
		for _, s := range sm.AllStates() {
			if f.statesTested[s] {
				report.StatesTested = append(report.StatesTested, s)
			}
		}
		return report, nil
	}

	schedule := visitSchedule()
	if f.cfg.NoStateGuiding {
		// Ablation: a stateless fuzzer never steers the target — it
		// fuzzes every command from a cold link, like the dumb mutation
		// strategies the paper compares against.
		schedule = []stateVisit{{state: sm.StateClosed, setup: noSetup}}
	}
	for {
		for _, psm := range scan.ExploitablePSMs {
			for _, visit := range schedule {
				if f.packetsSent >= f.cfg.MaxPackets {
					f.logf("budget exhausted after %d packets", f.packetsSent)
					return finish(false, Finding{})
				}
				teardown, ok := visit.setup(f, psm)
				if !ok {
					// Setup failure can itself mean the target just died.
					if class := f.livenessIfSuspicious(); class != ErrNone {
						return finish(true, f.newFinding(class, visit.state, psm, Mutation{}))
					}
					teardown()
					continue
				}
				f.statesTested[visit.state] = true
				if finding, found := f.fuzzState(visit.state, psm); found {
					teardown()
					return finish(true, finding)
				}
				teardown()
			}
			// Refresh the baseband link between ports: leaked channels on
			// the target die with the link, as on a real dongle re-plug.
			f.cl.Disconnect(target)
			if err := f.cl.Connect(target); err != nil {
				class := ProbeLiveness(f.cl, target)
				if class != ErrNone {
					return finish(true, f.newFinding(class, sm.StateClosed, psm, Mutation{}))
				}
			}
		}
		report.Cycles++
		f.logf("cycle %d complete (%d packets)", report.Cycles, f.packetsSent)
	}
}

// fuzzState fuzzes one state: for every valid command of its job,
// generate and send PacketsPerCommand mutated packets, probing liveness
// as it goes.
func (f *Fuzzer) fuzzState(state sm.State, psm l2cap.PSM) (Finding, bool) {
	for _, code := range f.commandsFor(state) {
		for j := 0; j < f.cfg.PacketsPerCommand; j++ {
			if f.packetsSent >= f.cfg.MaxPackets {
				return Finding{}, false
			}
			pkt, info, err := f.mut.Mutate(f.cl.NextID(), code)
			if err != nil {
				continue
			}
			f.mutationsDone++
			if f.cfg.MutateAllFields {
				pkt = f.scrambleAllFields(pkt)
			}
			sendErr := f.cl.Send(f.target, pkt)
			f.cl.Clock().Advance(f.cfg.ThinkTime)
			f.packetsSent++
			f.sincePing++
			if info.IsMalformed() {
				f.malformedSent++
			}
			f.cl.Drain()

			needProbe := sendErr != nil || f.sincePing >= f.cfg.PingEvery
			if !needProbe {
				continue
			}
			f.sincePing = 0
			class := ProbeLiveness(f.cl, f.target)
			f.packetsSent++ // the echo probe is a transmitted packet
			// Probe points double as telemetry flush points: frequent
			// enough for fresh live samples, rare enough that the atomics
			// stay off the per-packet path.
			f.flushCounters()
			if class == ErrNone {
				continue
			}
			f.logf("suspicious: %v in %v (psm=%v, packet=%v)", class, state, psm, info)
			return f.newFinding(class, state, psm, info), true
		}
	}
	return Finding{}, false
}

// livenessIfSuspicious probes only when the link looks unhealthy.
func (f *Fuzzer) livenessIfSuspicious() ErrorClass {
	if f.cl.Connected(f.target) {
		return ErrNone
	}
	return ProbeLiveness(f.cl, f.target)
}

func (f *Fuzzer) newFinding(class ErrorClass, state sm.State, psm l2cap.PSM, m Mutation) Finding {
	finding := Finding{
		Time:         f.cl.Clock().Now(),
		Error:        class,
		State:        state,
		PSM:          psm,
		LastMutation: m,
	}
	if rec := f.cl.Recorder(); rec != nil {
		finding.Trace, finding.TraceTruncated = rec.Snapshot()
	}
	f.logf("VULNERABILITY: %s (%s) in %v on %v", class, finding.Severity(), state, psm)
	return finding
}

// scrambleAllFields is the ablation mutation: corrupt 1-4 bytes anywhere
// in the signaling payload, including the dependent fields (code,
// identifier, lengths) that core field mutating deliberately protects.
func (f *Fuzzer) scrambleAllFields(pkt l2cap.Packet) l2cap.Packet {
	if len(pkt.Payload) == 0 {
		return pkt
	}
	payload := append([]byte(nil), pkt.Payload...)
	for i, n := 0, 1+f.rng.Intn(4); i < n; i++ {
		payload[f.rng.Intn(len(payload))] = byte(f.rng.Intn(256))
	}
	pkt.Payload = payload
	return pkt
}

// countSetupPackets charges transition traffic to the packet budget and
// pacing clock.
func (f *Fuzzer) countSetupPackets(n int) {
	f.packetsSent += n
	f.cl.Clock().Advance(time.Duration(n) * f.cfg.ThinkTime)
}

func (f *Fuzzer) logf(format string, args ...any) {
	if f.logw == nil {
		return
	}
	fmt.Fprintf(f.logw, "[%12v] ", f.cl.Clock().Now())
	fmt.Fprintf(f.logw, format, args...)
	fmt.Fprintln(f.logw)
}
