package core

import (
	"io"
	"time"

	"l2fuzz/internal/telemetry"
)

// Config parameterises an L2Fuzz run. The zero value is not usable;
// call DefaultConfig and adjust.
type Config struct {
	// Seed drives every random choice; equal seeds give equal runs.
	Seed int64
	// PacketsPerCommand is n in Algorithm 1: malformed packets generated
	// per valid command per state visit.
	PacketsPerCommand int
	// MaxGarbage bounds the appended garbage tail, keeping test packets
	// under the signaling MTU.
	MaxGarbage int
	// ThinkTime is the fuzzer-side processing cost charged to the
	// simulated clock per generated packet; together with the radio
	// timing it sets the packets-per-second rate (§IV-C reports 524.27
	// pps for L2Fuzz).
	ThinkTime time.Duration
	// PingEvery runs the echo liveness probe after every PingEvery test
	// packets (and always after a send error).
	PingEvery int
	// MaxPackets caps the run; zero means DefaultMaxPackets. The run also
	// ends when a vulnerability is detected.
	MaxPackets int
	// LogWriter receives the run log; nil discards it.
	LogWriter io.Writer
	// Counters, when set, receives hot-path telemetry: one bump per
	// generated packet, malformed packet and successful mutation. All
	// counter methods are nil-safe, so the fuzzer calls them
	// unconditionally.
	Counters *telemetry.Counters

	// MutateAllFields widens mutation beyond MC for the ablation study:
	// dependent fields and MA fields are scrambled too, reproducing the
	// dumb-mutation strategy the paper argues against.
	MutateAllFields bool
	// NoStateGuiding disables job-valid command selection for the
	// ablation study: commands are drawn uniformly from all 26 codes in
	// every state.
	NoStateGuiding bool
	// NoGarbage suppresses the garbage tail for the ablation study.
	NoGarbage bool
}

// Defaults chosen to land the simulated pps near the paper's measurement.
const (
	// DefaultPacketsPerCommand is the per-command fuzz depth.
	DefaultPacketsPerCommand = 64
	// DefaultMaxGarbage is the garbage-tail bound.
	DefaultMaxGarbage = 16
	// DefaultThinkTime approximates L2Fuzz's per-packet processing cost.
	DefaultThinkTime = 450 * time.Microsecond
	// DefaultPingEvery is the liveness-probe cadence.
	DefaultPingEvery = 3
	// DefaultMaxPackets bounds a run that finds nothing.
	DefaultMaxPackets = 6_000_000
)

// DefaultConfig returns the paper-shaped configuration for a seed.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:              seed,
		PacketsPerCommand: DefaultPacketsPerCommand,
		MaxGarbage:        DefaultMaxGarbage,
		ThinkTime:         DefaultThinkTime,
		PingEvery:         DefaultPingEvery,
		MaxPackets:        DefaultMaxPackets,
	}
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.PacketsPerCommand <= 0 {
		c.PacketsPerCommand = DefaultPacketsPerCommand
	}
	if c.MaxGarbage <= 0 {
		c.MaxGarbage = DefaultMaxGarbage
	}
	if c.ThinkTime <= 0 {
		c.ThinkTime = DefaultThinkTime
	}
	if c.PingEvery <= 0 {
		c.PingEvery = DefaultPingEvery
	}
	if c.MaxPackets <= 0 {
		c.MaxPackets = DefaultMaxPackets
	}
	return c
}
