package core

import (
	"testing"

	"l2fuzz/internal/bt/device"
	"l2fuzz/internal/bt/host"
	"l2fuzz/internal/bt/l2cap"
	"l2fuzz/internal/bt/radio"
)

func TestErrorClassStringsAndSeverity(t *testing.T) {
	tests := []struct {
		class        ErrorClass
		wantString   string
		wantSeverity string
	}{
		{ErrNone, "None", "N/A"},
		{ErrConnectionFailed, "Connection Failed", "DoS"},
		{ErrConnectionAborted, "Connection Aborted", "Crash"},
		{ErrConnectionReset, "Connection Reset", "Crash"},
		{ErrConnectionRefused, "Connection Refused", "Crash"},
		{ErrTimeout, "Timeout", "Crash"},
	}
	for _, tt := range tests {
		if got := tt.class.String(); got != tt.wantString {
			t.Errorf("%d.String() = %q, want %q", tt.class, got, tt.wantString)
		}
		if got := tt.class.Severity(); got != tt.wantSeverity {
			t.Errorf("%v.Severity() = %q, want %q", tt.class, got, tt.wantSeverity)
		}
	}
}

// classificationRig builds one device the test can kill in various ways.
func classificationRig(t *testing.T) (*radio.Medium, *device.Device, *host.Client) {
	t.Helper()
	m := radio.NewMedium(nil, radio.DefaultTiming())
	d, err := device.New(m, device.Config{
		Addr:    radio.MustBDAddr("F8:8F:CA:00:00:55"),
		Name:    "classify-me",
		Profile: device.BlueDroidProfile("5.0", "fp"),
		Ports:   []device.ServicePort{{PSM: l2cap.PSMAVDTP, Name: "AVDTP"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := host.NewClient(m, radio.MustBDAddr("00:1B:DC:00:00:04"), "tester")
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Connect(d.Address()); err != nil {
		t.Fatal(err)
	}
	return m, d, cl
}

func TestProbeLivenessHealthy(t *testing.T) {
	_, d, cl := classificationRig(t)
	if got := ProbeLiveness(cl, d.Address()); got != ErrNone {
		t.Fatalf("ProbeLiveness(healthy) = %v, want None", got)
	}
}

func TestProbeLivenessServiceDown(t *testing.T) {
	// DoS: links dropped, pages refused, device still on the air →
	// Connection Failed per §III-E ("the target Bluetooth service has
	// been shut down").
	m, d, cl := classificationRig(t)
	d.Controller().SetConnectable(false)
	m.Drop(cl.Address(), d.Address())
	if got := ProbeLiveness(cl, d.Address()); got != ErrConnectionFailed {
		t.Fatalf("ProbeLiveness(service down) = %v, want Connection Failed", got)
	}
}

func TestProbeLivenessDeviceVanished(t *testing.T) {
	// Firmware crash: the device disappears entirely → Connection Reset.
	m, d, cl := classificationRig(t)
	m.Unregister(d.Address())
	if got := ProbeLiveness(cl, d.Address()); got != ErrConnectionReset {
		t.Fatalf("ProbeLiveness(vanished) = %v, want Connection Reset", got)
	}
}

func TestProbeLivenessTransientLinkLoss(t *testing.T) {
	// A dropped link that re-pages fine is not a finding.
	m, d, cl := classificationRig(t)
	m.Drop(cl.Address(), d.Address())
	if got := ProbeLiveness(cl, d.Address()); got != ErrNone {
		t.Fatalf("ProbeLiveness(transient drop) = %v, want None", got)
	}
}

func TestFuzzerSurvivesRadioLoss(t *testing.T) {
	// Deterministic fault injection: every 97th frame is lost in flight.
	// The fuzzer must neither hang nor report a phantom finding on a
	// measurement-grade target.
	m := radio.NewMedium(nil, radio.DefaultTiming())
	m.FaultEveryN = 97
	entry, err := device.CatalogEntryByID("D2", true)
	if err != nil {
		t.Fatal(err)
	}
	d, err := device.New(m, entry.Config)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := host.NewClient(m, radio.MustBDAddr("00:1B:DC:00:00:04"), "tester")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(13)
	cfg.MaxPackets = 20_000
	report, err := New(cl, cfg).Run(d.Address())
	if err != nil {
		t.Fatalf("Run() under loss error = %v", err)
	}
	if report.Found {
		t.Fatalf("phantom finding under packet loss: %+v", report.Finding)
	}
	if report.PacketsSent < 20_000 {
		t.Errorf("budget not exhausted under loss: %d", report.PacketsSent)
	}
}
