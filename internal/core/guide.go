package core

import (
	"l2fuzz/internal/bt/l2cap"
	"l2fuzz/internal/bt/sm"
)

// stateVisit is one stop in the state-guiding schedule: a target state,
// its job (whose valid commands are fuzzed there), and the transition
// recipe that steers the device into the state using normal packets.
type stateVisit struct {
	// state is the L2CAP state under test.
	state sm.State
	// setup drives the target into the state. It returns a teardown
	// function (always safe to call) and whether the state was reached.
	setup func(f *Fuzzer, psm l2cap.PSM) (teardown func(), ok bool)
}

// noSetup is the recipe for states testable from a cold link.
func noSetup(*Fuzzer, l2cap.PSM) (func(), bool) { return func() {}, true }

// openConfiguring opens a channel and leaves it mid-configuration.
func openConfiguring(f *Fuzzer, psm l2cap.PSM) (local, remote l2cap.CID, ok bool) {
	res, err := f.cl.TryOpenChannel(f.target, psm)
	if err != nil || res.Result != l2cap.ConnResultSuccess {
		return 0, 0, false
	}
	f.countSetupPackets(1)
	return res.LocalCID, res.RemoteCID, true
}

// closer builds a teardown that disconnects the channel.
func closer(f *Fuzzer, local, remote l2cap.CID) func() {
	return func() {
		_ = f.cl.CloseChannel(f.target, local, remote)
		f.countSetupPackets(1)
	}
}

// visitSchedule is the state-guiding itinerary: every master-reachable
// state in state-machine depth order (connection → configuration → open
// → move → disconnection), with the AMP creation job last. Each visit
// fuzzes the valid commands of its state's job (Table III).
func visitSchedule() []stateVisit {
	return []stateVisit{
		{state: sm.StateClosed, setup: noSetup},
		{state: sm.StateWaitConnect, setup: noSetup},
		{
			state: sm.StateWaitConfig,
			setup: func(f *Fuzzer, psm l2cap.PSM) (func(), bool) {
				local, remote, ok := openConfiguring(f, psm)
				if !ok {
					return func() {}, false
				}
				return closer(f, local, remote), true
			},
		},
		{
			state: sm.StateWaitConfigReqRsp,
			setup: func(f *Fuzzer, psm l2cap.PSM) (func(), bool) {
				// Eager stacks sit here right after accepting: they have
				// already sent their own Configuration Request.
				local, remote, ok := openConfiguring(f, psm)
				if !ok {
					return func() {}, false
				}
				return closer(f, local, remote), true
			},
		},
		{
			state: sm.StateWaitSendConfig,
			setup: func(f *Fuzzer, psm l2cap.PSM) (func(), bool) {
				local, remote, ok := openConfiguring(f, psm)
				if !ok {
					return func() {}, false
				}
				// A valid Configuration Request moves the acceptor toward
				// WAIT_SEND_CONFIG (or WAIT_CONFIG_RSP on eager stacks).
				_, _ = f.cl.SendCommand(f.target, &l2cap.ConfigurationReq{
					DCID:    remote,
					Options: []l2cap.ConfigOption{l2cap.MTUOption(l2cap.DefaultSignalingMTU)},
				}, nil)
				f.countSetupPackets(1)
				f.cl.Drain()
				return closer(f, local, remote), true
			},
		},
		{
			state: sm.StateWaitConfigRsp,
			setup: func(f *Fuzzer, psm l2cap.PSM) (func(), bool) {
				local, remote, ok := openConfiguring(f, psm)
				if !ok {
					return func() {}, false
				}
				_, _ = f.cl.SendCommand(f.target, &l2cap.ConfigurationReq{
					DCID:    remote,
					Options: []l2cap.ConfigOption{l2cap.MTUOption(l2cap.DefaultSignalingMTU)},
				}, nil)
				f.countSetupPackets(1)
				f.cl.Drain()
				return closer(f, local, remote), true
			},
		},
		{
			state: sm.StateWaitConfigReq,
			setup: func(f *Fuzzer, psm l2cap.PSM) (func(), bool) {
				local, remote, ok := openConfiguring(f, psm)
				if !ok {
					return func() {}, false
				}
				// Answer the eager stack's own request so only ours is
				// outstanding.
				_, _ = f.cl.SendCommand(f.target, &l2cap.ConfigurationRsp{
					SCID: remote, Result: l2cap.ConfigSuccess,
				}, nil)
				f.countSetupPackets(1)
				f.cl.Drain()
				return closer(f, local, remote), true
			},
		},
		{
			state: sm.StateWaitIndFinalRsp,
			setup: func(f *Fuzzer, psm l2cap.PSM) (func(), bool) {
				local, remote, ok := openConfiguring(f, psm)
				if !ok {
					return func() {}, false
				}
				// An extended-flow-spec option forces lockstep
				// configuration: the acceptor answers "pending" and waits
				// in WAIT_IND_FINAL_RSP.
				_, _ = f.cl.SendCommand(f.target, &l2cap.ConfigurationReq{
					DCID: remote,
					Options: []l2cap.ConfigOption{
						{Type: l2cap.OptionExtendedFlowSpec, Value: make([]byte, 16)},
					},
				}, nil)
				f.countSetupPackets(1)
				f.cl.Drain()
				return closer(f, local, remote), true
			},
		},
		{
			state: sm.StateOpen,
			setup: func(f *Fuzzer, psm l2cap.PSM) (func(), bool) {
				local, remote, err := f.cl.OpenChannel(f.target, psm)
				if err != nil {
					return func() {}, false
				}
				f.countSetupPackets(3)
				return closer(f, local, remote), true
			},
		},
		{
			state: sm.StateWaitMove,
			setup: func(f *Fuzzer, psm l2cap.PSM) (func(), bool) {
				local, remote, err := f.cl.OpenChannel(f.target, psm)
				if err != nil {
					return func() {}, false
				}
				f.countSetupPackets(3)
				return closer(f, local, remote), true
			},
		},
		{
			state: sm.StateWaitMoveConfirm,
			setup: func(f *Fuzzer, psm l2cap.PSM) (func(), bool) {
				local, remote, err := f.cl.OpenChannel(f.target, psm)
				if err != nil {
					return func() {}, false
				}
				f.countSetupPackets(3)
				// A valid Move Channel Request parks the acceptor in
				// WAIT_MOVE_CONFIRM awaiting our confirmation.
				_, _ = f.cl.SendCommand(f.target, &l2cap.MoveChannelReq{ICID: remote}, nil)
				f.countSetupPackets(1)
				f.cl.Drain()
				return closer(f, local, remote), true
			},
		},
		{
			state: sm.StateWaitDisconnect,
			setup: func(f *Fuzzer, psm l2cap.PSM) (func(), bool) {
				local, remote, err := f.cl.OpenChannel(f.target, psm)
				if err != nil {
					return func() {}, false
				}
				f.countSetupPackets(3)
				return closer(f, local, remote), true
			},
		},
		{
			state: sm.StateWaitCreate,
			setup: func(f *Fuzzer, psm l2cap.PSM) (func(), bool) {
				// One valid Create Channel Request genuinely puts the
				// acceptor into WAIT_CREATE — a state only L2Fuzz covers,
				// where the paper's D3 zero-day lives.
				scid := f.cl.NextSourceCID()
				f.cl.Drain()
				if _, err := f.cl.SendCommand(f.target, &l2cap.CreateChannelReq{
					PSM: psm, SCID: scid,
				}, nil); err != nil {
					return func() {}, false
				}
				f.countSetupPackets(1)
				var remote l2cap.CID
				for _, cmd := range f.cl.DrainCommands() {
					if rsp, ok := cmd.(*l2cap.CreateChannelRsp); ok &&
						rsp.SCID == scid && rsp.Result == l2cap.ConnResultSuccess {
						remote = rsp.DCID
					}
				}
				if remote == 0 {
					// Refused (cap or pairing): the state was still
					// occupied while deciding; fuzz from a cold link.
					return func() {}, true
				}
				return closer(f, scid, remote), true
			},
		},
	}
}

// commandsFor returns the commands to fuzz in a state: the job's valid
// commands (Table III), or every command when state guiding is ablated.
func (f *Fuzzer) commandsFor(state sm.State) []l2cap.CommandCode {
	if f.cfg.NoStateGuiding {
		return l2cap.AllCommandCodes()
	}
	return sm.ValidCommands(sm.JobOf(state))
}
