// Package core implements L2Fuzz itself: the stateful Bluetooth L2CAP
// fuzzer of the paper, with its four phases (Figure 5):
//
//  1. Target scanning — inquiry for the target's MAC address, name,
//     class-of-device and OUI; SDP enumeration of service ports; probing
//     for potentially exploitable (pairing-free) ports with the SDP port
//     as the guaranteed fallback.
//  2. State guiding — the 19 L2CAP states are clustered into seven jobs
//     (Table I) with valid commands mapped per job (Table III); transition
//     recipes drive the target into each master-reachable state, and only
//     state-valid commands are fuzzed there.
//  3. Core field mutating — Algorithm 1: fixed and dependent fields kept,
//     mutable-application fields left at defaults, PSM mutated into its
//     abnormal ranges and payload channel IDs across the normal dynamic
//     range ignoring allocation (Table IV), plus an MTU-bounded garbage
//     tail.
//  4. Vulnerability detecting — connection-error classification
//     (Connection Failed / Aborted / Reset / Refused / Timeout), the
//     L2CAP echo ping test, and logging.
//
// The fuzzer is strictly black-box: it sees only what comes back over
// the air. Ground-truth crash dumps live in the device simulation and are
// only consulted by the experiment harness.
package core
