package core

import (
	"errors"
	"fmt"
	"time"

	"l2fuzz/internal/bt/host"
	"l2fuzz/internal/bt/l2cap"
	"l2fuzz/internal/bt/radio"
	"l2fuzz/internal/bt/sm"
)

// ErrorClass is the connection-error taxonomy of the vulnerability-
// detecting phase (§III-E).
type ErrorClass uint8

const (
	// ErrNone means the target is healthy.
	ErrNone ErrorClass = iota
	// ErrConnectionFailed means the Bluetooth service has shut down —
	// the DoS signature.
	ErrConnectionFailed
	// ErrConnectionAborted means the connection died mid-conversation.
	ErrConnectionAborted
	// ErrConnectionReset means the target dropped off entirely.
	ErrConnectionReset
	// ErrConnectionRefused means the target refuses new connections.
	ErrConnectionRefused
	// ErrTimeout means the target stopped answering.
	ErrTimeout
)

func (e ErrorClass) String() string {
	switch e {
	case ErrNone:
		return "None"
	case ErrConnectionFailed:
		return "Connection Failed"
	case ErrConnectionAborted:
		return "Connection Aborted"
	case ErrConnectionReset:
		return "Connection Reset"
	case ErrConnectionRefused:
		return "Connection Refused"
	case ErrTimeout:
		return "Timeout"
	default:
		return fmt.Sprintf("ErrorClass(%d)", uint8(e))
	}
}

// Severity maps the error class to the paper's finding description:
// Connection Failed is a DoS (service shut down); the others indicate a
// crash.
func (e ErrorClass) Severity() string {
	switch e {
	case ErrConnectionFailed:
		return "DoS"
	case ErrNone:
		return "N/A"
	default:
		return "Crash"
	}
}

// Finding is one detected vulnerability.
type Finding struct {
	// Time is the simulated detection time.
	Time time.Duration
	// Error is the classified connection error.
	Error ErrorClass
	// State is the L2CAP state under test when the target died.
	State sm.State
	// PSM is the service port under test.
	PSM l2cap.PSM
	// LastMutation describes the packet sent immediately before death.
	LastMutation Mutation
	// Trace is the recorded client operation sequence from the start of
	// the current trace epoch through detection, populated when a
	// host.TraceRecorder is attached to the fuzzing client. Replaying it
	// against a fresh rig reproduces the finding (internal/corpus). The
	// corpus stores the trace under its own schema, so it is excluded
	// from the finding's JSON form.
	Trace []host.TraceOp `json:"-"`
	// TraceTruncated reports the trace outgrew the recorder's limit and
	// therefore cannot replay faithfully.
	TraceTruncated bool `json:"-"`
}

// Severity is the paper's Description column value.
func (f Finding) Severity() string { return f.Error.Severity() }

// Signature is the black-box identity of a finding: the
// (state, port, error-class) triple every de-duplicating layer keys by —
// the campaign runner within one device, the fleet across devices and
// fuzzer kinds, and the persistent corpus across farm runs. Defining it
// once here keeps corpus keys and report keys from drifting apart.
type Signature struct {
	State sm.State   `json:"state"`
	PSM   l2cap.PSM  `json:"psm"`
	Class ErrorClass `json:"class"`
}

func (s Signature) String() string {
	return fmt.Sprintf("%v in %v on %v", s.Class, s.State, s.PSM)
}

// Signature returns the finding's de-duplication key.
func (f Finding) Signature() Signature {
	return Signature{State: f.State, PSM: f.PSM, Class: f.Error}
}

// pingRetries is how many echo attempts the probe makes before declaring
// a timeout: L2CAP signaling retransmits on its RTX timer, so a single
// lost frame must not become a finding.
const pingRetries = 3

// ProbeLiveness classifies the target's health after a suspicious event:
// the ping test (with retransmission) plus re-page differential
// diagnosis. Exported because trace replay (the corpus subsystem) must
// classify a replayed crash exactly as the original detection did.
func ProbeLiveness(cl *host.Client, addr radio.BDAddr) ErrorClass {
	var err error
	for attempt := 0; attempt < pingRetries; attempt++ {
		if err = cl.Ping(addr); err == nil {
			return ErrNone
		}
		if !errors.Is(err, host.ErrNoResponse) {
			break // the link itself died; no point retransmitting
		}
	}
	if errors.Is(err, host.ErrNoResponse) {
		// Link is up but the peer stayed silent through every retry.
		return ErrTimeout
	}
	// The link is gone. Differential diagnosis via a fresh page attempt.
	cl.Disconnect(addr)
	switch pageErr := cl.Connect(addr); {
	case pageErr == nil:
		// Link re-established; if ping now works the hiccup was transient.
		if cl.Ping(addr) == nil {
			return ErrNone
		}
		return ErrConnectionAborted
	case errors.Is(pageErr, radio.ErrNotConnectable):
		// The device is on the air but its Bluetooth service refuses
		// pages: the service was shut down.
		return ErrConnectionFailed
	case errors.Is(pageErr, radio.ErrUnknownAddress):
		// The device vanished entirely.
		return ErrConnectionReset
	default:
		return ErrConnectionRefused
	}
}
