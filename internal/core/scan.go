package core

import (
	"errors"
	"fmt"

	"l2fuzz/internal/bt/host"
	"l2fuzz/internal/bt/l2cap"
	"l2fuzz/internal/bt/radio"
)

// TargetMeta is the device metadata collected by target scanning.
type TargetMeta struct {
	// Addr is the target's MAC address (BD_ADDR).
	Addr radio.BDAddr
	// OUI is the organizationally unique identifier prefix.
	OUI [3]byte
	// Name is the friendly device name.
	Name string
	// ClassOfDevice is the 24-bit class-of-device code.
	ClassOfDevice uint32
}

// PortStatus is the probe result for one advertised service port.
type PortStatus struct {
	// PSM is the port.
	PSM l2cap.PSM
	// Name is the SDP-published service name.
	Name string
	// RequiresPairing reports a security-blocked connection attempt.
	RequiresPairing bool
	// Refused reports any other refusal.
	Refused bool
}

// Exploitable reports whether the port can be fuzzed without pairing.
func (p PortStatus) Exploitable() bool { return !p.RequiresPairing && !p.Refused }

// ScanReport is the outcome of the target-scanning phase.
type ScanReport struct {
	// Meta is the target's metadata.
	Meta TargetMeta
	// Ports are the probed service ports, in SDP order.
	Ports []PortStatus
	// ExploitablePSMs are the pairing-free ports to fuzz; the SDP port is
	// the guaranteed fallback when every advertised service needs pairing.
	ExploitablePSMs []l2cap.PSM
}

// ErrTargetNotFound indicates the inquiry did not discover the target.
var ErrTargetNotFound = errors.New("core: target not found in inquiry")

// Scan runs the target-scanning phase against the device at addr.
func Scan(cl *host.Client, addr radio.BDAddr) (ScanReport, error) {
	var report ScanReport

	// Inquiry: MAC address, name, class, OUI.
	found := false
	for _, r := range cl.Inquiry() {
		if r.Addr == addr {
			report.Meta = TargetMeta{
				Addr:          r.Addr,
				OUI:           r.Addr.OUI(),
				Name:          r.Name,
				ClassOfDevice: r.ClassOfDevice,
			}
			found = true
		}
	}
	if !found {
		return ScanReport{}, fmt.Errorf("%w: %v", ErrTargetNotFound, addr)
	}

	if err := cl.Connect(addr); err != nil {
		return ScanReport{}, fmt.Errorf("scan connect: %w", err)
	}

	// SDP enumeration of advertised services.
	services, err := cl.QuerySDP(addr)
	if err != nil {
		return ScanReport{}, fmt.Errorf("scan SDP: %w", err)
	}

	// Probe each advertised port for pairing requirements.
	for _, s := range services {
		status := PortStatus{PSM: s.PSM, Name: s.Name}
		res, err := cl.TryOpenChannel(addr, s.PSM)
		switch {
		case err != nil:
			status.Refused = true
		case res.Result == l2cap.ConnResultSuccess:
			// Probe channel opened; tear it down so the target is clean.
			_ = cl.CloseChannel(addr, res.LocalCID, res.RemoteCID)
		case res.Result == l2cap.ConnResultSecurityBlock:
			status.RequiresPairing = true
		default:
			status.Refused = true
		}
		report.Ports = append(report.Ports, status)
	}

	for _, p := range report.Ports {
		if p.Exploitable() {
			report.ExploitablePSMs = append(report.ExploitablePSMs, p.PSM)
		}
	}
	if len(report.ExploitablePSMs) == 0 {
		// Every advertised port needs pairing: fall back to SDP, which is
		// supported by every Bluetooth device and never requires pairing.
		report.ExploitablePSMs = []l2cap.PSM{l2cap.PSMSDP}
	}
	return report, nil
}
