package core

import (
	"testing"
	"time"

	"l2fuzz/internal/bt/device"
	"l2fuzz/internal/bt/host"
	"l2fuzz/internal/bt/l2cap"
	"l2fuzz/internal/bt/radio"
	"l2fuzz/internal/bt/sm"
)

// rig builds a medium holding one catalog device and a tester client.
func rig(t *testing.T, id string, disableVulns bool) (*device.Device, *host.Client) {
	t.Helper()
	m := radio.NewMedium(nil, radio.DefaultTiming())
	entry, err := device.CatalogEntryByID(id, disableVulns)
	if err != nil {
		t.Fatal(err)
	}
	d, err := device.New(m, entry.Config)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := host.NewClient(m, radio.MustBDAddr("00:1B:DC:00:00:01"), "l2fuzz")
	if err != nil {
		t.Fatal(err)
	}
	return d, cl
}

func TestScanCollectsMetaAndPorts(t *testing.T) {
	d, cl := rig(t, "D2", true)
	report, err := Scan(cl, d.Address())
	if err != nil {
		t.Fatalf("Scan() error = %v", err)
	}
	if report.Meta.Addr != d.Address() {
		t.Errorf("Meta.Addr = %v, want %v", report.Meta.Addr, d.Address())
	}
	if report.Meta.Name != "Pixel 3" {
		t.Errorf("Meta.Name = %q", report.Meta.Name)
	}
	if report.Meta.OUI != [3]byte{0xF8, 0x8F, 0xCA} {
		t.Errorf("Meta.OUI = %X", report.Meta.OUI)
	}
	if len(report.Ports) != len(d.Ports()) {
		t.Errorf("scanned %d ports, device has %d", len(report.Ports), len(d.Ports()))
	}
	if len(report.ExploitablePSMs) == 0 {
		t.Fatal("no exploitable ports found")
	}
	// Pairing-gated ports must be excluded.
	for _, psm := range report.ExploitablePSMs {
		for _, p := range d.Ports() {
			if p.PSM == psm && p.RequiresPairing {
				t.Errorf("pairing-gated port %v marked exploitable", psm)
			}
		}
	}
}

func TestScanUnknownTarget(t *testing.T) {
	_, cl := rig(t, "D2", true)
	if _, err := Scan(cl, radio.MustBDAddr("00:00:00:00:00:99")); err == nil {
		t.Fatal("Scan(unknown) succeeded")
	}
}

func TestScanFallsBackToSDPWhenAllPortsPaired(t *testing.T) {
	m := radio.NewMedium(nil, radio.DefaultTiming())
	cfg := device.Config{
		Addr:    radio.MustBDAddr("F8:8F:CA:00:00:77"),
		Name:    "all-paired",
		Profile: device.WindowsProfile("5.0"),
		Ports: []device.ServicePort{
			{PSM: l2cap.PSMRFCOMM, Name: "RFCOMM", RequiresPairing: true},
			{PSM: l2cap.PSMHIDControl, Name: "HID", RequiresPairing: true},
		},
	}
	d, err := device.New(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := host.NewClient(m, radio.MustBDAddr("00:1B:DC:00:00:01"), "l2fuzz")
	if err != nil {
		t.Fatal(err)
	}
	report, err := Scan(cl, d.Address())
	if err != nil {
		t.Fatal(err)
	}
	// SDP itself is always exploitable; it is also the fallback if the
	// advertised set were fully gated.
	foundSDP := false
	for _, psm := range report.ExploitablePSMs {
		if psm == l2cap.PSMSDP {
			foundSDP = true
		}
	}
	if !foundSDP {
		t.Fatalf("ExploitablePSMs = %v, want SDP included", report.ExploitablePSMs)
	}
}

func TestFuzzerDetectsPixel3DoS(t *testing.T) {
	d, cl := rig(t, "D2", false)
	cfg := DefaultConfig(1)
	f := New(cl, cfg)
	report, err := f.Run(d.Address())
	if err != nil {
		t.Fatalf("Run() error = %v", err)
	}
	if !report.Found {
		t.Fatalf("no vulnerability found in %d packets", report.PacketsSent)
	}
	if report.Finding.Error != ErrConnectionFailed {
		t.Errorf("error class = %v, want Connection Failed (DoS)", report.Finding.Error)
	}
	if report.Finding.Severity() != "DoS" {
		t.Errorf("severity = %q, want DoS", report.Finding.Severity())
	}
	if sm.JobOf(report.Finding.State) != sm.JobConfiguration {
		t.Errorf("finding state = %v, want a configuration-job state", report.Finding.State)
	}
	// Ground truth agrees.
	if !d.ServiceDown() {
		t.Error("device not actually DoS-ed")
	}
	if d.CrashDump() == nil || d.CrashDump().Kind != device.DumpTombstone {
		t.Error("no tombstone on the device")
	}
	if report.Elapsed <= 0 {
		t.Error("elapsed time not recorded")
	}
	t.Logf("D2 detected in %v after %d packets (%.0f pps)",
		report.Elapsed, report.PacketsSent,
		float64(report.PacketsSent)/report.Elapsed.Seconds())
}

func TestFuzzerDetectsAirPodsCrash(t *testing.T) {
	d, cl := rig(t, "D5", false)
	f := New(cl, DefaultConfig(2))
	report, err := f.Run(d.Address())
	if err != nil {
		t.Fatalf("Run() error = %v", err)
	}
	if !report.Found {
		t.Fatalf("no vulnerability found in %d packets", report.PacketsSent)
	}
	if report.Finding.Error != ErrConnectionReset {
		t.Errorf("error class = %v, want Connection Reset", report.Finding.Error)
	}
	if report.Finding.Severity() != "Crash" {
		t.Errorf("severity = %q, want Crash", report.Finding.Severity())
	}
	if !d.PoweredOff() {
		t.Error("device not actually powered off")
	}
	t.Logf("D5 detected in %v after %d packets", report.Elapsed, report.PacketsSent)
}

func TestFuzzerFindsNothingOnRobustDevice(t *testing.T) {
	d, cl := rig(t, "D4", false) // iPhone: no injected defects
	cfg := DefaultConfig(3)
	cfg.MaxPackets = 30_000 // keep the test quick
	f := New(cl, cfg)
	report, err := f.Run(d.Address())
	if err != nil {
		t.Fatalf("Run() error = %v", err)
	}
	if report.Found {
		t.Fatalf("found a vulnerability on the robust device: %+v", report.Finding)
	}
	if d.Crashed() {
		t.Error("robust device crashed")
	}
	if report.PacketsSent < 30_000 {
		t.Errorf("budget not exhausted: %d packets", report.PacketsSent)
	}
}

func TestFuzzerStateCoverageIsThirteen(t *testing.T) {
	// With vulnerabilities disabled the fuzzer completes cycles; its
	// tested-state set must be exactly the 13 master-reachable states
	// (paper Figure 10).
	d, cl := rig(t, "D2", true)
	cfg := DefaultConfig(4)
	cfg.MaxPackets = 120_000
	f := New(cl, cfg)
	report, err := f.Run(d.Address())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(report.StatesTested); got != 13 {
		t.Fatalf("states tested = %d (%v), want 13", got, report.StatesTested)
	}
	for _, s := range report.StatesTested {
		if !s.ResponderReachable() {
			t.Errorf("tested %v, which should be master-unreachable", s)
		}
	}
}

func TestFuzzerDeterministicForSeed(t *testing.T) {
	run := func() *Report {
		d, cl := rig(t, "D2", false)
		f := New(cl, DefaultConfig(99))
		r, err := f.Run(d.Address())
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.PacketsSent != b.PacketsSent || a.Elapsed != b.Elapsed ||
		a.Finding.State != b.Finding.State || a.Finding.PSM != b.Finding.PSM {
		t.Fatalf("same seed, different runs:\n a=%+v\n b=%+v", a, b)
	}
}

func TestFuzzerMalformedShareIsHigh(t *testing.T) {
	// Core field mutating should make the malformed share of traffic
	// high — the paper reports ~70% on the full run.
	d, cl := rig(t, "D2", true)
	cfg := DefaultConfig(5)
	cfg.MaxPackets = 50_000
	f := New(cl, cfg)
	report, err := f.Run(d.Address())
	if err != nil {
		t.Fatal(err)
	}
	share := float64(report.MalformedSent) / float64(report.PacketsSent)
	if share < 0.5 {
		t.Errorf("malformed share = %.2f, want > 0.5", share)
	}
	t.Logf("malformed share: %.2f%%", 100*share)
}

func TestNoGarbageAblationPreventsD2Crash(t *testing.T) {
	// The BlueDroid defect needs the garbage tail: without it the fuzzer
	// must not find anything.
	d, cl := rig(t, "D2", false)
	cfg := DefaultConfig(6)
	cfg.NoGarbage = true
	cfg.MaxPackets = 60_000
	f := New(cl, cfg)
	report, err := f.Run(d.Address())
	if err != nil {
		t.Fatal(err)
	}
	if report.Found {
		t.Fatalf("found %+v despite NoGarbage ablation", report.Finding)
	}
	if d.Crashed() {
		t.Error("device crashed without garbage tails")
	}
}

func TestThinkTimePacing(t *testing.T) {
	d, cl := rig(t, "D4", false)
	cfg := DefaultConfig(7)
	cfg.MaxPackets = 5_000
	cfg.ThinkTime = 10 * time.Millisecond
	f := New(cl, cfg)
	report, err := f.Run(d.Address())
	if err != nil {
		t.Fatal(err)
	}
	pps := float64(report.PacketsSent) / report.Elapsed.Seconds()
	if pps > 130 {
		t.Errorf("pps = %.1f with 10ms think time, want < 130 (echo probes are unpaced)", pps)
	}
}
