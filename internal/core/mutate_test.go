package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"l2fuzz/internal/bt/l2cap"
)

func testMutator(seed int64) *Mutator {
	return NewMutator(rand.New(rand.NewSource(seed)), DefaultMaxGarbage)
}

func TestAbnormalPSMAlwaysAbnormal(t *testing.T) {
	mu := testMutator(1)
	for i := 0; i < 5000; i++ {
		p := mu.AbnormalPSM()
		if !l2cap.IsAbnormalPSM(p) {
			t.Fatalf("AbnormalPSM() = %04X, which is not abnormal per Table IV", uint16(p))
		}
	}
}

func TestNormalCIDPInRange(t *testing.T) {
	mu := testMutator(2)
	lo, hi := l2cap.CIDPRange()
	for i := 0; i < 5000; i++ {
		c := mu.NormalCIDP()
		if c < lo || c > hi {
			t.Fatalf("NormalCIDP() = %v outside [%v, %v]", c, lo, hi)
		}
	}
}

func TestGarbageBounded(t *testing.T) {
	mu := NewMutator(rand.New(rand.NewSource(3)), 16)
	sawNonEmpty := false
	for i := 0; i < 1000; i++ {
		g := mu.Garbage()
		if len(g) > 16 {
			t.Fatalf("garbage %d bytes exceeds bound", len(g))
		}
		if len(g) > 0 {
			sawNonEmpty = true
		}
	}
	if !sawNonEmpty {
		t.Fatal("garbage never non-empty")
	}
}

func TestMutateKeepsDependentAndFixedFields(t *testing.T) {
	mu := testMutator(4)
	for _, code := range l2cap.AllCommandCodes() {
		pkt, _, err := mu.Mutate(7, code)
		if err != nil {
			t.Fatalf("Mutate(%v) error = %v", code, err)
		}
		// F: header channel ID stays the signaling channel.
		if pkt.ChannelID != l2cap.CIDSignaling {
			t.Errorf("%v: header CID = %v, want signaling (fixed field)", code, pkt.ChannelID)
		}
		// D: declared lengths describe the command without the tail, so
		// the frame still parses.
		frames, err := l2cap.ParseSignals(pkt.Payload)
		if err != nil {
			t.Fatalf("%v: mutated packet does not parse: %v", code, err)
		}
		if frames[0].Code != code {
			t.Errorf("%v: code field changed to %v", code, frames[0].Code)
		}
		if frames[0].Identifier != 7 {
			t.Errorf("%v: identifier changed", code)
		}
		if _, err := l2cap.DecodeCommand(frames[0]); err != nil {
			t.Errorf("%v: mutated command undecodable: %v", code, err)
		}
	}
}

func TestMutatePSMIsAbnormalAndCIDsNormal(t *testing.T) {
	mu := testMutator(5)
	for i := 0; i < 500; i++ {
		pkt, info, err := mu.Mutate(1, l2cap.CodeConnectionReq)
		if err != nil {
			t.Fatal(err)
		}
		if !info.PSMMutated || info.CIDsMutated != 1 {
			t.Fatalf("mutation info = %+v, want PSM + 1 CID", info)
		}
		frames, _ := l2cap.ParseSignals(pkt.Payload)
		cmd, _ := l2cap.DecodeCommand(frames[0])
		req := cmd.(*l2cap.ConnectionReq)
		if !l2cap.IsAbnormalPSM(req.PSM) {
			t.Fatalf("PSM %04X not abnormal", uint16(req.PSM))
		}
		if !req.SCID.IsDynamic() {
			t.Fatalf("SCID %v outside normal dynamic range", req.SCID)
		}
	}
}

func TestMutationMalformedness(t *testing.T) {
	// Commands with MC fields are always malformed; commands without MC
	// fields are malformed only via the garbage tail.
	mu := NewMutator(rand.New(rand.NewSource(6)), 0) // no garbage
	for _, tt := range []struct {
		code l2cap.CommandCode
		want bool
	}{
		{l2cap.CodeConnectionReq, true},
		{l2cap.CodeConfigurationReq, true},
		{l2cap.CodeEchoReq, false},
		{l2cap.CodeInformationReq, false},
		{l2cap.CodeConnParamUpdateRsp, false},
	} {
		_, info, err := mu.Mutate(1, tt.code)
		if err != nil {
			t.Fatal(err)
		}
		if info.IsMalformed() != tt.want {
			t.Errorf("%v: IsMalformed = %v, want %v", tt.code, info.IsMalformed(), tt.want)
		}
	}
}

func TestMutateDeterministicForSeed(t *testing.T) {
	a, b := testMutator(42), testMutator(42)
	for i := 0; i < 200; i++ {
		pa, _, _ := a.Mutate(uint8(i%250+1), l2cap.CodeConnectionReq)
		pb, _, _ := b.Mutate(uint8(i%250+1), l2cap.CodeConnectionReq)
		if string(pa.Marshal()) != string(pb.Marshal()) {
			t.Fatal("same seed produced different packets")
		}
	}
}

func TestMutateCreditFieldsUntouchedWithoutStream(t *testing.T) {
	// A mutator without a seeded credit stream leaves the credit
	// commands' negotiation fields at their specification defaults — the
	// pre-extension behaviour.
	mu := testMutator(8)
	def, _ := l2cap.DefaultCommand(l2cap.CodeLECreditConnReq)
	want := def.(*l2cap.LECreditConnReq)
	for i := 0; i < 100; i++ {
		pkt, info, err := mu.Mutate(1, l2cap.CodeLECreditConnReq)
		if err != nil {
			t.Fatal(err)
		}
		if info.CreditFieldsMutated != 0 {
			t.Fatalf("CreditFieldsMutated = %d without a credit stream", info.CreditFieldsMutated)
		}
		frames, _ := l2cap.ParseSignals(pkt.Payload)
		cmd, _ := l2cap.DecodeCommand(frames[0])
		req := cmd.(*l2cap.LECreditConnReq)
		if req.SPSM != want.SPSM || req.MTU != want.MTU || req.MPS != want.MPS || req.InitialCredits != want.InitialCredits {
			t.Fatalf("credit fields mutated without a stream: %+v", req)
		}
	}
}

func TestMutateCreditFieldsWithStream(t *testing.T) {
	mu := testMutator(9)
	mu.SeedCreditStream(9)
	counts := map[l2cap.CommandCode]int{
		l2cap.CodeLECreditConnReq:      4,
		l2cap.CodeLECreditConnRsp:      3,
		l2cap.CodeFlowControlCredit:    1,
		l2cap.CodeCreditBasedConnReq:   4,
		l2cap.CodeCreditBasedConnRsp:   3,
		l2cap.CodeCreditBasedReconfReq: 2,
		// Non-credit commands and pure-result responses are untouched.
		l2cap.CodeConnectionReq:        0,
		l2cap.CodeCreditBasedReconfRsp: 0,
		l2cap.CodeConnParamUpdateReq:   0,
	}
	for code, want := range counts {
		_, info, err := mu.Mutate(1, code)
		if err != nil {
			t.Fatal(err)
		}
		if info.CreditFieldsMutated != want {
			t.Errorf("%v: CreditFieldsMutated = %d, want %d", code, info.CreditFieldsMutated, want)
		}
	}

	// The draws land in the marshalled payload: over many packets the
	// SPSM must leave its default at least once.
	diverged := false
	for i := 0; i < 50 && !diverged; i++ {
		pkt, _, err := mu.Mutate(1, l2cap.CodeLECreditConnReq)
		if err != nil {
			t.Fatal(err)
		}
		frames, _ := l2cap.ParseSignals(pkt.Payload)
		cmd, _ := l2cap.DecodeCommand(frames[0])
		def, _ := l2cap.DefaultCommand(l2cap.CodeLECreditConnReq)
		if cmd.(*l2cap.LECreditConnReq).SPSM != def.(*l2cap.LECreditConnReq).SPSM {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("credit stream never changed the wire payload")
	}
}

func TestMutateCreditStreamDoesNotPerturbCoreDraws(t *testing.T) {
	// The whole point of the side stream: the same main seed yields the
	// same core-field and garbage draws whether or not credit mutation
	// is on. Run the same schedule — credit commands included — through
	// a plain and a streamed mutator; every non-credit packet must stay
	// byte-identical, and the credit packets must agree on everything
	// the main stream decides (endpoint CIDs and the garbage tail).
	plain, streamed := testMutator(42), testMutator(42)
	streamed.SeedCreditStream(7)
	codes := []l2cap.CommandCode{
		l2cap.CodeConnectionReq, l2cap.CodeCreditBasedConnReq,
		l2cap.CodeConfigurationReq, l2cap.CodeLECreditConnReq,
	}
	for i := 0; i < 200; i++ {
		id := uint8(i%250 + 1)
		code := codes[i%len(codes)]
		pa, ia, _ := plain.Mutate(id, code)
		pb, ib, _ := streamed.Mutate(id, code)
		if ib.CreditFieldsMutated > 0 {
			// Credit packets differ only in the side-stream values: the
			// main-stream decisions must agree.
			if ia.CIDsMutated != ib.CIDsMutated || ia.GarbageLen != ib.GarbageLen {
				t.Fatalf("packet %d (%v): core draws diverged: %+v vs %+v", i, code, ia, ib)
			}
			continue
		}
		if string(pa.Marshal()) != string(pb.Marshal()) {
			t.Fatalf("packet %d (%v): credit stream perturbed the core schedule", i, code)
		}
	}
}

func TestMutateCreditStreamDeterministic(t *testing.T) {
	a, b := testMutator(11), testMutator(11)
	a.SeedCreditStream(11)
	b.SeedCreditStream(11)
	for i := 0; i < 200; i++ {
		id := uint8(i%250 + 1)
		pa, ia, _ := a.Mutate(id, l2cap.CodeLECreditConnReq)
		pb, ib, _ := b.Mutate(id, l2cap.CodeLECreditConnReq)
		if string(pa.Marshal()) != string(pb.Marshal()) || ia != ib {
			t.Fatal("same credit seed produced different packets")
		}
	}
}

func TestMutateUnknownCode(t *testing.T) {
	if _, _, err := testMutator(1).Mutate(1, 0x7F); err == nil {
		t.Fatal("Mutate(unknown code) succeeded")
	}
}

// Property: mutated packets never exceed the signaling MTU (garbage is
// bounded), so "Signaling MTU exceeded" rejects are avoided by design.
func TestQuickMutatedPacketsUnderSignalingMTU(t *testing.T) {
	mu := testMutator(7)
	codes := l2cap.AllCommandCodes()
	f := func(pick uint8, id uint8) bool {
		code := codes[int(pick)%len(codes)]
		if id == 0 {
			id = 1
		}
		pkt, _, err := mu.Mutate(id, code)
		if err != nil {
			return false
		}
		return len(pkt.Payload) <= l2cap.DefaultSignalingMTU
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
