package corpus

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"l2fuzz/internal/core"
)

// Store persists corpus entries as one JSON file per finding signature
// in a directory. The layout is deliberately boring — `<key>.json`,
// indented JSON, stable key derivation — so a corpus survives tooling
// generations and diffs cleanly under version control. A Store performs
// no locking of its own; the fleet serialises access through its
// aggregator, and concurrent farms should use separate directories.
type Store struct {
	dir string
}

// Open opens (creating if needed) a corpus directory.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// KeyOf derives the stable store key of a signature: the error class
// and state slugs plus the hex port, e.g.
// "connection-failed--wait-config--0x0001". The derivation is pinned by
// a golden test — changing it would orphan every existing corpus.
func KeyOf(sig core.Signature) string {
	return fmt.Sprintf("%s--%s--0x%04x", slug(sig.Class.String()), slug(sig.State.String()), uint16(sig.PSM))
}

// slug lowercases and folds non-alphanumerics to single dashes.
func slug(s string) string {
	var b strings.Builder
	dash := false
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
			dash = false
		case !dash && b.Len() > 0:
			b.WriteByte('-')
			dash = true
		}
	}
	return strings.TrimSuffix(b.String(), "-")
}

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key+".json")
}

// Has reports whether an entry for sig is stored.
func (s *Store) Has(sig core.Signature) bool {
	_, err := os.Stat(s.path(KeyOf(sig)))
	return err == nil
}

// Put writes an entry, replacing any existing one under the same
// signature. The finding's in-memory trace fields are dropped: the
// canonical trace is Entry.Trace. The write goes through a temp file
// and rename, so a crashed writer never leaves a half-written entry
// behind under the real key.
func (s *Store) Put(e Entry) error {
	if err := e.Validate(); err != nil {
		return err
	}
	e.Finding.Trace = nil
	e.Finding.TraceTruncated = false
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return fmt.Errorf("corpus: encode %v: %w", e.Signature, err)
	}
	data = append(data, '\n')
	key := KeyOf(e.Signature)
	tmp, err := os.CreateTemp(s.dir, key+".tmp-*")
	if err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("corpus: write %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("corpus: write %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("corpus: write %s: %w", key, err)
	}
	return nil
}

// Get loads the entry stored under sig.
func (s *Store) Get(sig core.Signature) (Entry, error) {
	return s.GetKey(KeyOf(sig))
}

// GetKey loads the entry stored under an explicit key (as listed by
// Keys — the CLI's addressing scheme).
func (s *Store) GetKey(key string) (Entry, error) {
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		return Entry{}, fmt.Errorf("corpus: %w", err)
	}
	var e Entry
	if err := json.Unmarshal(data, &e); err != nil {
		return Entry{}, fmt.Errorf("corpus: decode %s: %w", key, err)
	}
	return e, nil
}

// Keys lists the stored entry keys, sorted.
func (s *Store) Keys() ([]string, error) {
	names, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	var keys []string
	for _, de := range names {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".json") {
			continue
		}
		keys = append(keys, strings.TrimSuffix(de.Name(), ".json"))
	}
	sort.Strings(keys)
	return keys, nil
}

// Entries loads every stored entry, in key order.
func (s *Store) Entries() ([]Entry, error) {
	keys, err := s.Keys()
	if err != nil {
		return nil, err
	}
	entries := make([]Entry, 0, len(keys))
	for _, key := range keys {
		e, err := s.GetKey(key)
		if err != nil {
			return nil, err
		}
		entries = append(entries, e)
	}
	return entries, nil
}
