// Minimization's parallel probe rounds are an optimisation, not a
// semantics change: the witness is chosen by candidate order, so the
// reduction path — and the final trace — must be identical at every
// worker count.
package corpus_test

import (
	"bytes"
	"testing"

	"l2fuzz/internal/corpus"
	"l2fuzz/internal/fleet"
)

func TestMinimizeDeterministicAcrossWorkerCounts(t *testing.T) {
	store, err := corpus.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fleet.Run(rfcommFarm(store))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 1 {
		t.Fatalf("farm findings = %+v, want exactly one", rep.Findings)
	}
	entry, err := store.Get(rep.Findings[0].Signature)
	if err != nil {
		t.Fatal(err)
	}

	var results []*corpus.MinimizeResult
	for _, workers := range []int{1, 4} {
		res, err := corpus.Minimize(entry, corpus.MinimizeConfig{Workers: workers})
		if err != nil {
			t.Fatalf("Minimize(workers=%d) error = %v", workers, err)
		}
		results = append(results, res)
	}
	serial, parallel := results[0], results[1]
	if serial.After != parallel.After {
		t.Fatalf("worker counts disagree on trace length: 1 worker → %d ops, 4 workers → %d ops",
			serial.After, parallel.After)
	}
	if len(serial.Entry.Trace.Ops) != len(parallel.Entry.Trace.Ops) {
		t.Fatal("minimized op slices differ in length")
	}
	for i := range serial.Entry.Trace.Ops {
		a, b := serial.Entry.Trace.Ops[i], parallel.Entry.Trace.Ops[i]
		if a.Kind != b.Kind || !bytes.Equal(a.Data, b.Data) {
			t.Fatalf("op %d differs between worker counts: %+v vs %+v", i, a, b)
		}
	}
	if serial.Replays != parallel.Replays {
		t.Errorf("replay accounting differs across worker counts: %d vs %d",
			serial.Replays, parallel.Replays)
	}
	// And the agreed-on minimized trace still reproduces.
	again, err := corpus.Replay(parallel.Entry, corpus.ReplayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Reproduced || again.Signature != entry.Signature {
		t.Fatalf("minimized trace no longer reproduces: %+v", again)
	}
}
