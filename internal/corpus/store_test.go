package corpus

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"l2fuzz/internal/bt/host"
	"l2fuzz/internal/bt/l2cap"
	"l2fuzz/internal/bt/sm"
	"l2fuzz/internal/core"
)

// goldenEntry is a fixed entry whose on-disk form is pinned by
// testdata/entry.golden.json: the store's JSON schema and key
// derivation are a persistence format, so drift must be deliberate.
func goldenEntry() Entry {
	return Entry{
		Signature: core.Signature{
			State: sm.StateWaitConfig,
			PSM:   l2cap.PSM(0x0001),
			Class: core.ErrConnectionFailed,
		},
		Kind: "L2Fuzz",
		Finding: core.Finding{
			Time:  90 * time.Second,
			Error: core.ErrConnectionFailed,
			State: sm.StateWaitConfig,
			PSM:   l2cap.PSM(0x0001),
			LastMutation: core.Mutation{
				Code:       l2cap.CodeConfigurationReq,
				GarbageLen: 15,
			},
		},
		Trace: Trace{
			Seed:   42,
			Target: "D2",
			State:  sm.StateWaitConfig,
			PSM:    l2cap.PSM(0x0001),
			Ops: []Op{
				{Kind: host.TraceConnect},
				{Kind: host.TraceSend, Data: []byte{0x08, 0x00, 0x01, 0x00, 0x04, 0x01, 0x04, 0x00, 0x40, 0x00, 0x00, 0x00}},
				{Kind: host.TraceDisconnect},
			},
		},
	}
}

// TestKeyOfPinned pins the key derivation: changing it would orphan
// every existing corpus directory.
func TestKeyOfPinned(t *testing.T) {
	got := KeyOf(goldenEntry().Signature)
	want := "connection-failed--wait-config--0x0001"
	if got != want {
		t.Fatalf("KeyOf = %q, want %q", got, want)
	}
}

// TestStoreGoldenRoundTrip pins the persisted JSON byte-for-byte and
// checks Put→Get is lossless (the in-memory finding-trace fields are
// deliberately dropped: the canonical trace is Entry.Trace).
func TestStoreGoldenRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := goldenEntry()
	// The in-memory duplicate of the trace must not be persisted.
	e.Finding.Trace = e.Trace.Ops
	e.Finding.TraceTruncated = true
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}

	key := KeyOf(e.Signature)
	got, err := os.ReadFile(filepath.Join(s.Dir(), key+".json"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/entry.golden.json")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("persisted entry drifted from golden:\ngot:\n%s\nwant:\n%s", got, want)
	}

	loaded, err := s.Get(e.Signature)
	if err != nil {
		t.Fatal(err)
	}
	clean := goldenEntry()
	if !reflect.DeepEqual(loaded, clean) {
		t.Errorf("round-trip mismatch:\ngot:  %+v\nwant: %+v", loaded, clean)
	}
}

func TestStoreHasKeysEntries(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := goldenEntry()
	if s.Has(e.Signature) {
		t.Fatal("empty store reports Has")
	}
	if keys, err := s.Keys(); err != nil || len(keys) != 0 {
		t.Fatalf("empty store Keys = %v, %v", keys, err)
	}
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	if !s.Has(e.Signature) {
		t.Fatal("stored signature not found by Has")
	}
	other := e
	other.Signature.State = sm.StateOpen
	other.Finding.State = sm.StateOpen
	other.Trace.State = sm.StateOpen
	if s.Has(other.Signature) {
		t.Fatal("Has reports a signature that was never stored")
	}
	if err := s.Put(other); err != nil {
		t.Fatal(err)
	}
	keys, err := s.Keys()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"connection-failed--open--0x0001",
		"connection-failed--wait-config--0x0001",
	}
	if !reflect.DeepEqual(keys, want) {
		t.Fatalf("Keys = %v, want %v", keys, want)
	}
	entries, err := s.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("Entries returned %d entries, want 2", len(entries))
	}
	// Put replaces: the same signature stored again must not duplicate.
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	if keys, _ := s.Keys(); len(keys) != 2 {
		t.Fatalf("Put duplicated a key: %v", keys)
	}
}

func TestStoreRejectsInvalidEntries(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := goldenEntry()
	e.Signature.Class = core.ErrNone
	if err := s.Put(e); err == nil {
		t.Error("unclassified entry accepted")
	}
	e = goldenEntry()
	e.Trace.Target = ""
	if err := s.Put(e); err == nil {
		t.Error("targetless entry accepted")
	}
}
