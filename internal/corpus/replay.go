package corpus

import (
	"fmt"

	"l2fuzz/internal/bt/device"
	"l2fuzz/internal/bt/host"
	"l2fuzz/internal/core"
	"l2fuzz/internal/testbed"
	"l2fuzz/internal/triage"
)

// kindRFCOMM matches the fleet's RFCOMM kind string without importing
// the fleet (which imports this package).
const kindRFCOMM = "RFCOMM"

// ReplayConfig parameterises a replay.
type ReplayConfig struct {
	// Spec is the target to rebuild, overriding the entry's own target
	// resolution. Nil resolves the trace's target name as a catalog ID
	// with its defects armed — the common case for farm-produced
	// entries — falling back to the spec embedded in the entry for
	// custom targets.
	Spec *device.Spec
}

// ReplayResult is the outcome of re-driving a trace on a fresh rig.
type ReplayResult struct {
	// Reproduced reports the replay crashed the target with the same
	// error class the entry records.
	Reproduced bool
	// Signature is the observed (state, port, class) triple: the
	// entry's state and port under test with the replay's observed
	// error class. Equal to the entry's signature when Reproduced.
	Signature core.Signature
	// Crashed reports whether the replayed target ended up crashed at
	// all (a crash of a different class is not a reproduction).
	Crashed bool
	// Dump is the replayed device's crash artefact, "" when none.
	Dump string
	// RootCause correlates the entry's finding with the freshly
	// reproduced device dump: the triage report a minimal witness is
	// for.
	RootCause triage.Report
}

// resolveSpec picks the rig target, in precedence order: an explicit
// spec, the trace's target name looked up in the catalog, the spec
// embedded in the entry (self-contained custom-target entries).
func resolveSpec(e Entry, cfg ReplayConfig) (device.Spec, error) {
	if cfg.Spec != nil {
		return *cfg.Spec, nil
	}
	if device.IsCatalogID(e.Trace.Target) {
		return device.CatalogSpec(e.Trace.Target, false)
	}
	if len(e.Spec) > 0 {
		spec, err := device.DecodeSpec(e.Spec)
		if err != nil {
			return device.Spec{}, fmt.Errorf("corpus: entry %v embeds an undecodable spec: %w", e.Signature, err)
		}
		if spec.Name != e.Trace.Target {
			return device.Spec{}, fmt.Errorf("corpus: embedded spec %q does not name the trace target %q", spec.Name, e.Trace.Target)
		}
		return spec, nil
	}
	return device.Spec{}, fmt.Errorf("corpus: target %q is not a catalog ID and the entry embeds no spec; pass the spec explicitly", e.Trace.Target)
}

// Replay re-drives an entry's recorded trace against a fresh testbed
// rig and verifies the crash still fires. The outcome is classified
// exactly as the original detection classified it — core.ProbeLiveness
// for the L2CAP kinds, the mux-liveness split for RFCOMM — and the
// fresh device dump is fed to triage for the root-cause report.
func Replay(e Entry, cfg ReplayConfig) (*ReplayResult, error) {
	if !e.Trace.Replayable() {
		if e.Trace.Truncated {
			return nil, fmt.Errorf("corpus: trace for %v is truncated and cannot replay faithfully", e.Signature)
		}
		return nil, fmt.Errorf("corpus: entry %v carries no recorded trace", e.Signature)
	}
	spec, err := resolveSpec(e, cfg)
	if err != nil {
		return nil, err
	}
	rig, err := testbed.New(spec, testbed.Options{
		RFCOMM:     e.Kind == kindRFCOMM,
		TesterName: "l2repro",
	})
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	addr := rig.Device.Address()
	for _, op := range e.Trace.Ops {
		switch op.Kind {
		case host.TraceConnect:
			// A page the original run made against an already-dead
			// target fails here too; the failure itself is the point.
			_ = rig.Client.Connect(addr)
		case host.TraceDisconnect:
			rig.Client.Disconnect(addr)
		case host.TraceSend:
			_ = rig.Client.SendRaw(addr, op.Data)
			rig.Client.Drain()
		default:
			return nil, fmt.Errorf("corpus: unknown trace op %q", op.Kind)
		}
	}

	res := &ReplayResult{Crashed: rig.Device.Crashed()}
	observed := core.ErrNone
	if e.Kind == kindRFCOMM {
		// The RFCOMM detector's split: the mux died under a live L2CAP
		// layer (Aborted) or took the whole stack with it (Reset).
		if res.Crashed {
			if rig.Client.Ping(addr) == nil {
				observed = core.ErrConnectionAborted
			} else {
				observed = core.ErrConnectionReset
			}
		}
	} else {
		observed = core.ProbeLiveness(rig.Client, addr)
	}
	res.Signature = core.Signature{State: e.Signature.State, PSM: e.Signature.PSM, Class: observed}
	res.Reproduced = res.Crashed && observed == e.Signature.Class
	if dump := rig.Device.CrashDump(); dump != nil {
		res.Dump = dump.Render()
	}
	res.RootCause = triage.Analyze(e.Finding, rig.Device.CrashDump())
	return res, nil
}
