// The round-trip property the corpus exists for, pinned end to end: a
// farm finding saved to a Store, reloaded from disk and replayed on a
// fresh rig reproduces the same Signature; Minimize returns a trace no
// longer than the recorded one that still reproduces it; and a second
// farm run over the same store reports the finding as Known instead of
// announcing it as new.
package corpus_test

import (
	"testing"

	"l2fuzz/internal/bt/device"
	"l2fuzz/internal/bt/l2cap"
	"l2fuzz/internal/bt/radio"
	"l2fuzz/internal/corpus"
	"l2fuzz/internal/fleet"
)

// rfcommFarm is a one-job farm whose D5×RFCOMM cell finds the
// reserved-DLCI mux defect within a few frames.
func rfcommFarm(store *corpus.Store) fleet.Config {
	return fleet.Config{
		Devices:          []string{"D5"},
		Kinds:            []fleet.Kind{fleet.KindRFCOMM},
		BaseSeed:         7,
		Workers:          2,
		MaxPacketsPerJob: 20_000,
		Corpus:           store,
	}
}

func TestFarmRoundTripReplayMinimizeKnown(t *testing.T) {
	dir := t.TempDir()
	store, err := corpus.Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	rep, err := fleet.Run(rfcommFarm(store))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 1 {
		t.Fatalf("farm findings = %+v, want exactly one", rep.Findings)
	}
	if rep.Findings[0].Known {
		t.Fatal("first-run finding marked Known against an empty store")
	}
	if rep.Corpus == nil || rep.Corpus.Saved != 1 || rep.Corpus.Known != 0 {
		t.Fatalf("corpus stats = %+v, want 1 saved / 0 known", rep.Corpus)
	}
	sig := rep.Findings[0].Signature

	// Reload through a fresh store handle: the entry must survive the
	// process boundary, not just the in-memory run.
	reopened, err := corpus.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	entry, err := reopened.Get(sig)
	if err != nil {
		t.Fatal(err)
	}
	if entry.Signature != sig || entry.Kind != string(fleet.KindRFCOMM) {
		t.Fatalf("stored entry = %+v, want signature %v via RFCOMM", entry, sig)
	}
	if !entry.Trace.Replayable() || entry.Trace.Target != "D5" {
		t.Fatalf("stored trace not replayable: %d ops, target %q, truncated %v",
			len(entry.Trace.Ops), entry.Trace.Target, entry.Trace.Truncated)
	}

	// Replay on a fresh rig must reproduce the identical signature.
	res, err := corpus.Replay(entry, corpus.ReplayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reproduced || res.Signature != sig {
		t.Fatalf("replay = %+v, want reproduction of %v", res, sig)
	}
	if !res.Crashed || res.Dump == "" {
		t.Errorf("replayed rig: crashed=%v dump=%q, want a crashed device with an artefact", res.Crashed, res.Dump)
	}

	// Minimize must return a still-reproducing trace no longer than the
	// input — and for this defect (one killing SABM frame suffices) a
	// strictly shorter one.
	minimized, err := corpus.Minimize(entry, corpus.MinimizeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if minimized.After > minimized.Before {
		t.Fatalf("minimize grew the trace: %d -> %d", minimized.Before, minimized.After)
	}
	if minimized.After >= minimized.Before {
		t.Errorf("minimize did not shrink a %d-op trace with known-removable probe ops", minimized.Before)
	}
	again, err := corpus.Replay(minimized.Entry, corpus.ReplayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Reproduced || again.Signature != sig {
		t.Fatalf("minimized trace no longer reproduces: %+v", again)
	}

	// Second farm run over the same corpus: the finding is Known, not
	// announced as new, and not re-saved.
	farm, err := fleet.Start(rfcommFarm(store))
	if err != nil {
		t.Fatal(err)
	}
	for ev := range farm.Events() {
		if ev.Type == fleet.EventNewFinding {
			t.Errorf("second run announced %v as a new finding", ev.Finding.Signature)
		}
	}
	rep2 := farm.Wait()
	if len(rep2.Findings) != 1 || !rep2.Findings[0].Known {
		t.Fatalf("second-run findings = %+v, want the same finding marked Known", rep2.Findings)
	}
	if rep2.Corpus == nil || rep2.Corpus.Saved != 0 || rep2.Corpus.Known != 1 {
		t.Fatalf("second-run corpus stats = %+v, want 0 saved / 1 known", rep2.Corpus)
	}
}

// easyTarget is a custom spec with the catalog's D2 defect widened to
// fire on the first qualifying packet, so the L2Fuzz and Campaign farm
// paths produce corpus entries within a small budget. Replaying a
// custom-target entry requires passing the spec explicitly.
func easyTarget() device.Spec {
	return device.Spec{
		Name: "easy-phone",
		Config: device.Config{
			Addr: radio.MustBDAddr("02:EE:20:00:00:01"),
			Name: "Easy Phone",
			Profile: device.BlueDroidProfile("5.1",
				"vendor/easy:13/TQ3A/1:user/release-keys",
				device.BlueDroidCCBNullDeref(0x40, 2, true)),
			Ports: []device.ServicePort{
				{PSM: l2cap.PSMSDP, Name: "Service Discovery"},
				{PSM: l2cap.PSMDynamicFirst, Name: "vendor-service"},
			},
		},
		ExpectVuln:  true,
		ExpectClass: device.ClassDoS,
	}
}

// TestL2FuzzAndCampaignEntriesReplay drives the two core.Fuzzer farm
// paths (plain L2Fuzz and the campaign wrapper with its device resets)
// into the corpus and replays their entries against the explicit spec.
func TestL2FuzzAndCampaignEntriesReplay(t *testing.T) {
	for _, kind := range []fleet.Kind{fleet.KindL2Fuzz, fleet.KindCampaign} {
		t.Run(string(kind), func(t *testing.T) {
			store, err := corpus.Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			spec := easyTarget()
			rep, err := fleet.Run(fleet.Config{
				Devices:          []string{},
				CustomDevices:    []device.Spec{spec},
				Kinds:            []fleet.Kind{kind},
				BaseSeed:         3,
				Workers:          1,
				MaxPacketsPerJob: 50_000,
				CampaignRuns:     2,
				Corpus:           store,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Findings) == 0 || rep.Corpus.Saved == 0 {
				t.Fatalf("widened target produced no stored finding: findings=%d corpus=%+v",
					len(rep.Findings), rep.Corpus)
			}
			entry, err := store.Get(rep.Findings[0].Signature)
			if err != nil {
				t.Fatal(err)
			}
			if entry.Trace.Seed == 0 || entry.Trace.Target != spec.Name {
				t.Errorf("trace metadata = seed %d target %q, want the job seed against %q",
					entry.Trace.Seed, entry.Trace.Target, spec.Name)
			}

			// Without the spec the target name cannot resolve.
			if _, err := corpus.Replay(entry, corpus.ReplayConfig{}); err == nil {
				t.Error("replay of a custom-target entry without a spec succeeded")
			}
			res, err := corpus.Replay(entry, corpus.ReplayConfig{Spec: &spec})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Reproduced || res.Signature != entry.Signature {
				t.Fatalf("replay = %+v, want reproduction of %v", res, entry.Signature)
			}
			minimized, err := corpus.Minimize(entry, corpus.MinimizeConfig{
				ReplayConfig: corpus.ReplayConfig{Spec: &spec},
				MaxReplays:   256,
			})
			if err != nil {
				t.Fatal(err)
			}
			if minimized.After > minimized.Before {
				t.Fatalf("minimize grew the trace: %d -> %d", minimized.Before, minimized.After)
			}
			again, err := corpus.Replay(minimized.Entry, corpus.ReplayConfig{Spec: &spec})
			if err != nil {
				t.Fatal(err)
			}
			if !again.Reproduced {
				t.Fatalf("minimized %s trace no longer reproduces", kind)
			}
		})
	}
}

// TestReplayRefusesUnreplayableTraces pins the error paths: an empty
// trace and a truncated trace are diagnosed, not silently "replayed".
func TestReplayRefusesUnreplayableTraces(t *testing.T) {
	store, err := corpus.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fleet.Run(rfcommFarm(store))
	if err != nil {
		t.Fatal(err)
	}
	entry, err := store.Get(rep.Findings[0].Signature)
	if err != nil {
		t.Fatal(err)
	}
	empty := entry
	empty.Trace.Ops = nil
	if _, err := corpus.Replay(empty, corpus.ReplayConfig{}); err == nil {
		t.Error("empty trace replayed")
	}
	truncated := entry
	truncated.Trace.Truncated = true
	if _, err := corpus.Replay(truncated, corpus.ReplayConfig{}); err == nil {
		t.Error("truncated trace replayed")
	}
	if _, err := corpus.Minimize(empty, corpus.MinimizeConfig{}); err == nil {
		t.Error("empty trace minimized")
	}
}
