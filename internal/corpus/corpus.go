package corpus

import (
	"encoding/json"
	"fmt"

	"l2fuzz/internal/bt/host"
	"l2fuzz/internal/bt/l2cap"
	"l2fuzz/internal/bt/sm"
	"l2fuzz/internal/core"
)

// Op is one recorded client operation of a repro trace: a successful
// page, a link drop, or a transmitted wire packet.
type Op = host.TraceOp

// Trace is the recorded repro recipe of one finding: the seed and
// target it came from, the state and port under test, and the ordered
// operation sequence that drove the target from a fresh rig into the
// crash.
type Trace struct {
	// Seed is the fuzzer seed of the run that recorded the trace.
	Seed int64 `json:"seed"`
	// Target is the target spec name the trace was recorded against — a
	// catalog ID ("D1".."D8") or a custom spec name.
	Target string `json:"target"`
	// State is the L2CAP state under test at detection.
	State sm.State `json:"state"`
	// PSM is the service port under test at detection.
	PSM l2cap.PSM `json:"psm"`
	// Ops is the ordered operation sequence. Replaying it against a
	// fresh rig of the same target reproduces the finding.
	Ops []Op `json:"ops"`
	// Truncated reports the recorder's limit was hit: the sequence is
	// missing its tail and cannot replay faithfully.
	Truncated bool `json:"truncated,omitempty"`
}

// Replayable reports whether the trace carries a complete operation
// sequence a fresh rig can be driven with.
func (t Trace) Replayable() bool { return len(t.Ops) > 0 && !t.Truncated }

// Entry is one persisted finding: the de-duplication signature it is
// stored under, the fuzzer kind that found it, the finding itself and
// its repro trace.
type Entry struct {
	// Signature is the finding's identity and the store key.
	Signature core.Signature `json:"signature"`
	// Kind names the fuzzer kind that produced the finding (the fleet's
	// kind string, e.g. "L2Fuzz", "RFCOMM", "Campaign"). Replay uses it
	// to build the matching rig variant and to classify the replayed
	// crash the way that kind's detector would.
	Kind string `json:"kind"`
	// Finding is the original detection. Its in-memory Trace field is
	// not persisted; the canonical trace lives in Trace below.
	Finding core.Finding `json:"finding"`
	// Trace is the recorded repro trace.
	Trace Trace `json:"trace"`
	// Spec is the target's JSON form (device.EncodeSpec) for entries
	// recorded against custom, non-catalog targets, making them
	// self-contained: Replay rebuilds the rig from it when the trace's
	// target name is not a catalog ID and no explicit spec is passed.
	// Absent for catalog targets and for custom specs the encoder cannot
	// represent.
	Spec json.RawMessage `json:"spec,omitempty"`
}

// Validate checks the entry is storable: a classified signature and a
// trace that names its target.
func (e Entry) Validate() error {
	if e.Signature.Class == core.ErrNone {
		return fmt.Errorf("corpus: entry with unclassified signature %v", e.Signature)
	}
	if e.Trace.Target == "" {
		return fmt.Errorf("corpus: entry %v names no target", e.Signature)
	}
	return nil
}
