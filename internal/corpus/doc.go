// Package corpus makes findings durable, reproducible artefacts: the
// production piece the paper's evidence chain implies but its tooling
// never ships. §IV-C's BFuzz baseline literally replays "previously
// vulnerable" packet shapes, and §V concedes that root-cause analysis
// is the open limitation — both presuppose a finding that outlives the
// run that produced it. Here one does.
//
// A finding's repro trace is the ordered client operation sequence —
// pages, link drops, wire packets — recorded by a host.TraceRecorder
// from the rig's birth (or the last device reset) through detection.
// Because the simulated targets are deterministic functions of that
// sequence, replaying it against a fresh testbed rig re-drives the
// target into the same crash.
//
// The package has three parts:
//
//   - Trace and Entry bind a recorded operation sequence to the finding
//     it reproduces: the seed, target spec name, L2CAP state and port
//     under test, and the shared core.Signature the fleet de-duplicates
//     by.
//   - Store persists entries as one JSON file per signature in a
//     directory, so farms become resumable across processes: a second
//     run over the same store recognises yesterday's findings as Known
//     instead of re-reporting them.
//   - Replay re-drives a stored trace against a fresh rig and verifies
//     the crash still fires, classifying the outcome exactly as the
//     original detection did (core.ProbeLiveness) and feeding the fresh
//     device dump to triage for a root-cause report. Minimize
//     delta-debugs the trace down to a minimal operation sequence that
//     still reproduces the same signature — the minimal witness the
//     paper's manual analysis had to reconstruct by hand.
//
// fleet.Config.Corpus wires a Store into a farm (new findings persist
// as they stream), cmd/l2repro replays, minimizes and triages stored
// entries by signature, and the public API re-exports the types as
// l2fuzz.Corpus*.
package corpus
