package corpus

import "fmt"

// DefaultMaxReplays bounds a minimization run. Every probe costs a full
// rig build plus a replay of the candidate sequence, so the bound is a
// wall-clock budget, not a correctness knob: hitting it returns the
// best (still reproducing) trace found so far.
const DefaultMaxReplays = 2048

// MinimizeConfig parameterises a minimization.
type MinimizeConfig struct {
	ReplayConfig
	// MaxReplays caps the number of verification replays; zero means
	// DefaultMaxReplays.
	MaxReplays int
}

// MinimizeResult is the outcome of delta-debugging a trace.
type MinimizeResult struct {
	// Entry is the input entry with its trace reduced to the minimized
	// operation sequence (never longer than the input's, and still
	// reproducing the entry's signature on a fresh rig).
	Entry Entry
	// Before and After are the operation counts.
	Before, After int
	// Replays is the number of verification replays performed.
	Replays int
}

// Minimize delta-debugs an entry's trace: it searches for a minimal
// operation subsequence that still reproduces the entry's signature on
// a fresh rig, using the classic ddmin reduce-to-complement loop. The
// input entry must itself reproduce — a trace that does not reproduce
// has nothing to minimize and is reported as an error.
func Minimize(e Entry, cfg MinimizeConfig) (*MinimizeResult, error) {
	maxReplays := cfg.MaxReplays
	if maxReplays <= 0 {
		maxReplays = DefaultMaxReplays
	}
	res := &MinimizeResult{Entry: e, Before: len(e.Trace.Ops)}

	reproduces := func(ops []Op) (bool, error) {
		if res.Replays >= maxReplays {
			return false, nil
		}
		res.Replays++
		candidate := e
		candidate.Trace.Ops = ops
		r, err := Replay(candidate, cfg.ReplayConfig)
		if err != nil {
			return false, err
		}
		return r.Reproduced, nil
	}

	ok, err := reproduces(e.Trace.Ops)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("corpus: trace for %v does not reproduce; nothing to minimize", e.Signature)
	}

	// ddmin over complements: drop one of n chunks at a time; on
	// success keep the reduced sequence at coarser granularity, on a
	// full failed sweep refine the granularity until chunks are single
	// operations.
	ops := e.Trace.Ops
	n := 2
	for len(ops) >= 2 && res.Replays < maxReplays {
		chunk := (len(ops) + n - 1) / n
		reduced := false
		for start := 0; start < len(ops); start += chunk {
			end := min(start+chunk, len(ops))
			candidate := make([]Op, 0, len(ops)-(end-start))
			candidate = append(candidate, ops[:start]...)
			candidate = append(candidate, ops[end:]...)
			if len(candidate) == len(ops) {
				continue
			}
			ok, err := reproduces(candidate)
			if err != nil {
				return nil, err
			}
			if ok {
				ops = candidate
				n = max(n-1, 2)
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(ops) {
				break
			}
			n = min(2*n, len(ops))
		}
	}

	res.Entry.Trace.Ops = ops
	res.After = len(ops)
	return res, nil
}
