package corpus

import (
	"fmt"
	"runtime"
	"sync"
)

// DefaultMaxReplays bounds a minimization run. Every probe costs a full
// rig build plus a replay of the candidate sequence, so the bound is a
// wall-clock budget, not a correctness knob: hitting it returns the
// best (still reproducing) trace found so far.
const DefaultMaxReplays = 2048

// MinimizeConfig parameterises a minimization.
type MinimizeConfig struct {
	ReplayConfig
	// MaxReplays caps the number of verification replays; zero means
	// DefaultMaxReplays.
	MaxReplays int
	// Workers bounds the number of concurrent verification replays; zero
	// means GOMAXPROCS. Each probe replays on its own rig, so probes
	// within one ddmin granularity round are independent; the witness
	// selection is by candidate order regardless of completion order, so
	// the reduction path — and therefore the minimized trace — is
	// identical at every worker count.
	Workers int
}

// MinimizeResult is the outcome of delta-debugging a trace.
type MinimizeResult struct {
	// Entry is the input entry with its trace reduced to the minimized
	// operation sequence (never longer than the input's, and still
	// reproducing the entry's signature on a fresh rig).
	Entry Entry
	// Before and After are the operation counts.
	Before, After int
	// Replays is the number of verification replays performed.
	Replays int
}

// probeOutcome is one candidate's verdict.
type probeOutcome struct {
	ok  bool
	err error
}

// Minimize delta-debugs an entry's trace: it searches for a minimal
// operation subsequence that still reproduces the entry's signature on
// a fresh rig, using the classic ddmin reduce-to-complement loop. The
// input entry must itself reproduce — a trace that does not reproduce
// has nothing to minimize and is reported as an error.
//
// The complement probes of each granularity round run concurrently over
// a bounded worker pool (MinimizeConfig.Workers); results are judged in
// candidate order, so the chosen witness — and the final trace — match
// the sequential algorithm's exactly.
func Minimize(e Entry, cfg MinimizeConfig) (*MinimizeResult, error) {
	maxReplays := cfg.MaxReplays
	if maxReplays <= 0 {
		maxReplays = DefaultMaxReplays
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	res := &MinimizeResult{Entry: e, Before: len(e.Trace.Ops)}

	probe := func(ops []Op) probeOutcome {
		candidate := e
		candidate.Trace.Ops = ops
		r, err := Replay(candidate, cfg.ReplayConfig)
		if err != nil {
			return probeOutcome{err: err}
		}
		return probeOutcome{ok: r.Reproduced}
	}

	res.Replays++
	if out := probe(e.Trace.Ops); out.err != nil {
		return nil, out.err
	} else if !out.ok {
		return nil, fmt.Errorf("corpus: trace for %v does not reproduce; nothing to minimize", e.Signature)
	}

	// ddmin over complements: drop one of n chunks at a time; on
	// success keep the reduced sequence at coarser granularity, on a
	// full failed sweep refine the granularity until chunks are single
	// operations.
	ops := e.Trace.Ops
	n := 2
	for len(ops) >= 2 && res.Replays < maxReplays {
		chunk := (len(ops) + n - 1) / n
		var candidates [][]Op
		for start := 0; start < len(ops); start += chunk {
			end := min(start+chunk, len(ops))
			candidate := make([]Op, 0, len(ops)-(end-start))
			candidate = append(candidate, ops[:start]...)
			candidate = append(candidate, ops[end:]...)
			if len(candidate) == len(ops) {
				continue
			}
			candidates = append(candidates, candidate)
		}
		// The whole round launches together, so the budget caps the
		// round's fan-out, not individual probes mid-sweep.
		if remaining := maxReplays - res.Replays; len(candidates) > remaining {
			candidates = candidates[:remaining]
		}

		outcomes := make([]probeOutcome, len(candidates))
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for i := range candidates {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				outcomes[i] = probe(candidates[i])
			}(i)
		}
		wg.Wait()
		res.Replays += len(candidates)

		// Judge in candidate order: the lowest-index success is the
		// witness (and the first error surfaces), exactly as the
		// sequential sweep would have chosen.
		reduced := false
		for i, out := range outcomes {
			if out.err != nil {
				return nil, out.err
			}
			if out.ok {
				ops = candidates[i]
				n = max(n-1, 2)
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(ops) {
				break
			}
			n = min(2*n, len(ops))
		}
	}

	res.Entry.Trace.Ops = ops
	res.After = len(ops)
	return res, nil
}
