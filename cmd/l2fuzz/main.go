// Command l2fuzz runs the L2Fuzz stateful fuzzer against one simulated
// Bluetooth target device and reports what it found: the command-line
// face of the paper's four-phase workflow.
//
// Usage:
//
//	l2fuzz -device D2 [-seed 1] [-max-packets 0] [-log] [-dump]
//
// Devices are the paper's Table V catalog IDs (D1..D8).
package main

import (
	"flag"
	"fmt"
	"os"

	"l2fuzz"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "l2fuzz:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		deviceID   = flag.String("device", "D2", "catalog device ID (D1..D8)")
		seed       = flag.Int64("seed", 1, "random seed")
		maxPackets = flag.Int("max-packets", 0, "packet budget (0 = library default)")
		showLog    = flag.Bool("log", false, "print the fuzzer's run log")
		showDump   = flag.Bool("dump", true, "print the target's crash dump if one was produced")
		campaign   = flag.Int("campaign", 0, "run a long-term campaign of up to N runs with automatic resets")
	)
	flag.Parse()

	sim, err := l2fuzz.NewSimulation()
	if err != nil {
		return err
	}
	target, err := sim.AddCatalogDevice(*deviceID)
	if err != nil {
		return err
	}

	if *campaign > 0 {
		report, err := sim.RunCampaign(target, l2fuzz.CampaignConfig{
			Seed:    *seed,
			MaxRuns: *campaign,
		})
		if err != nil {
			return err
		}
		fmt.Printf("campaign: %d runs, %d automatic resets, %d packets, %v simulated\n",
			report.Runs, report.Resets, report.TotalPackets, report.TotalElapsed.Round(1e6))
		for i, f := range report.Findings {
			fmt.Printf("finding %d (×%d): %s (%s) in %v on %v\n",
				i+1, f.Count, f.Finding.Error, f.Finding.Severity(),
				f.Finding.State, f.Finding.PSM)
		}
		if len(report.Findings) == 0 {
			fmt.Println("no findings")
		}
		return nil
	}

	cfg := l2fuzz.FuzzConfig{Seed: *seed, MaxPackets: *maxPackets}
	if *showLog {
		cfg.LogWriter = os.Stdout
	}
	report, err := sim.RunL2Fuzz(target, cfg)
	if err != nil {
		return err
	}

	fmt.Printf("target:   %s (%s), %d service ports, %d exploitable\n",
		report.Scan.Meta.Name, report.Scan.Meta.Addr,
		len(report.Scan.Ports), len(report.Scan.ExploitablePSMs))
	fmt.Printf("traffic:  %d packets (%d malformed) over %v simulated\n",
		report.PacketsSent, report.MalformedSent, report.Elapsed.Round(1e6))
	fmt.Printf("states:   %d L2CAP states tested\n", len(report.StatesTested))
	if !report.Found {
		fmt.Println("result:   no vulnerability detected (budget exhausted)")
		return nil
	}
	fmt.Printf("result:   VULNERABILITY — %s (%s) in %v on %v\n",
		report.Finding.Error, report.Finding.Severity(),
		report.Finding.State, report.Finding.PSM)
	if *showDump {
		dump, err := sim.CrashDump(target)
		if err != nil {
			return err
		}
		if dump != "" {
			fmt.Println("\ncrash artefact on the device:")
			fmt.Println(dump)
		}
	}
	return nil
}
