// Command l2repro works a persistent finding corpus (the directory a
// corpus-backed farm — l2farm -corpus — writes): it lists stored
// findings and replays, minimizes or triages one of them by signature
// key on a fresh simulated rig.
//
// Replay re-drives the entry's recorded operation sequence — pages,
// link drops, exact wire packets — against a freshly built testbed of
// the same target and verifies the crash still fires with the recorded
// (state, PSM, error-class) signature, classifying the outcome exactly
// as the original detection did. Minimize delta-debugs the trace to a
// minimal operation sequence that still reproduces the signature (the
// minimal witness), and -write stores the minimized trace back.
// Triage feeds the freshly reproduced device dump to the root-cause
// analyzer and prints its report.
//
// Regress is the corpus as a regression gate: it replays every stored
// entry in parallel and exits nonzero if any signature stops
// reproducing — wired into CI, yesterday's findings stay reproducible
// on today's code or the build fails. -jobs bounds the replay
// parallelism (0 = GOMAXPROCS). With -minimize the gate is stricter:
// every reproducing witness must also still delta-debug to a minimal
// trace, so a minimizer/replayer divergence fails the build as well.
//
// Entries recorded against catalog devices ("D1".."D8") rebuild their
// target automatically; entries recorded against custom targets need
// the spec passed back in with -device-file (the same JSON format
// l2farm accepts).
//
// Usage:
//
//	l2repro -corpus DIR list
//	l2repro -corpus DIR [-device-file spec.json] [-dump] replay KEY
//	l2repro -corpus DIR [-device-file spec.json] [-write] [-max-replays N] minimize KEY
//	l2repro -corpus DIR [-device-file spec.json] triage KEY
//	l2repro -corpus DIR [-device-file spec.json] [-jobs N] [-minimize] regress
//
// Examples:
//
//	l2farm -corpus findings/ -fuzzers all
//	l2repro -corpus findings/ list
//	l2repro -corpus findings/ replay connection-reset--open--0x0003
//	l2repro -corpus findings/ -write minimize connection-reset--open--0x0003
//	l2repro -corpus findings/ triage connection-failed--wait-config--0x1001
//	l2repro -corpus findings/ regress     # CI gate: all entries must reproduce
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"

	"l2fuzz"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "l2repro:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		corpusDir  = flag.String("corpus", "", "corpus directory (required; the directory l2farm -corpus wrote)")
		deviceFile = flag.String("device-file", "", "JSON target spec for entries recorded against a custom (non-catalog) target")
		dump       = flag.Bool("dump", false, "replay: print the reproduced crash artefact")
		write      = flag.Bool("write", false, "minimize: store the minimized trace back into the corpus")
		maxReplays = flag.Int("max-replays", 0, "minimize/regress -minimize: cap verification replays (0 = library default)")
		jobs       = flag.Int("jobs", 0, "regress: parallel replay workers (0 = GOMAXPROCS)")
		regressMin = flag.Bool("minimize", false, "regress: additionally require every witness to still minimize")
	)
	flag.Parse()
	if *corpusDir == "" {
		return fmt.Errorf("-corpus DIR is required")
	}
	args := flag.Args()
	if len(args) == 0 {
		return fmt.Errorf("want a command: list, regress, replay KEY, minimize KEY, or triage KEY")
	}
	store, err := l2fuzz.OpenCorpus(*corpusDir)
	if err != nil {
		return err
	}

	var spec *l2fuzz.DeviceSpec
	if *deviceFile != "" {
		data, err := os.ReadFile(*deviceFile)
		if err != nil {
			return err
		}
		s, err := l2fuzz.ParseDeviceSpec(data)
		if err != nil {
			return fmt.Errorf("%s: %w", *deviceFile, err)
		}
		spec = &s
	}
	rcfg := l2fuzz.CorpusReplayConfig{Spec: spec}

	cmd, args := args[0], args[1:]
	if cmd == "list" {
		if len(args) != 0 {
			return fmt.Errorf("list takes no arguments")
		}
		return list(store)
	}
	if cmd == "regress" {
		if len(args) != 0 {
			return fmt.Errorf("regress takes no arguments")
		}
		return regress(store, rcfg, *jobs, *regressMin, *maxReplays)
	}
	if len(args) != 1 {
		return fmt.Errorf("%s takes exactly one signature key (see: l2repro -corpus %s list)", cmd, *corpusDir)
	}
	entry, err := store.GetKey(args[0])
	if err != nil {
		return err
	}
	switch cmd {
	case "replay":
		return replay(entry, rcfg, *dump)
	case "minimize":
		return minimize(store, entry, rcfg, *write, *maxReplays)
	case "triage":
		return triage(entry, rcfg)
	default:
		return fmt.Errorf("unknown command %q (have list, replay, minimize, triage, regress)", cmd)
	}
}

func list(store *l2fuzz.CorpusStore) error {
	entries, err := store.Entries()
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		fmt.Println("corpus is empty")
		return nil
	}
	fmt.Printf("%d stored finding(s):\n", len(entries))
	for _, e := range entries {
		status := fmt.Sprintf("%d ops", len(e.Trace.Ops))
		if e.Trace.Truncated {
			status += " (truncated)"
		}
		fmt.Printf("  %-45s %s (%s) via %s on %s, seed %d, %s\n",
			l2fuzz.CorpusKey(e.Signature), e.Signature, e.Finding.Error.Severity(),
			e.Kind, e.Trace.Target, e.Trace.Seed, status)
	}
	return nil
}

// regress replays every stored entry on a bounded worker pool and
// fails if any signature stops reproducing — the corpus as a CI
// regression gate. With minimize set, each reproducing entry must
// additionally survive delta-debugging: an entry whose minimization
// errors out fails the gate too (a witness that reproduces but can no
// longer be minimized usually means the replay path and the minimizer
// disagree about the trace). Output follows the store's listing order
// regardless of replay scheduling.
func regress(store *l2fuzz.CorpusStore, rcfg l2fuzz.CorpusReplayConfig, jobs int, minimize bool, maxReplays int) error {
	entries, err := store.Entries()
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		fmt.Println("corpus is empty; nothing to regress")
		return nil
	}
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	type outcome struct {
		res    *l2fuzz.CorpusReplayResult
		err    error
		min    *l2fuzz.CorpusMinimizeResult
		minErr error
	}
	outcomes := make([]outcome, len(entries))
	sem := make(chan struct{}, jobs)
	var wg sync.WaitGroup
	for i, e := range entries {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res, err := l2fuzz.ReplayCorpusEntry(e, rcfg)
			o := outcome{res: res, err: err}
			if minimize && err == nil && res.Reproduced {
				o.min, o.minErr = l2fuzz.MinimizeCorpusEntry(e, l2fuzz.CorpusMinimizeConfig{
					ReplayConfig: rcfg,
					MaxReplays:   maxReplays,
				})
			}
			outcomes[i] = o
		}()
	}
	wg.Wait()
	failed := 0
	for i, e := range entries {
		key := l2fuzz.CorpusKey(e.Signature)
		switch o := outcomes[i]; {
		case o.err != nil:
			failed++
			fmt.Printf("  FAIL %-45s replay error: %v\n", key, o.err)
		case !o.res.Reproduced:
			failed++
			fmt.Printf("  FAIL %-45s recorded %s, observed %s\n", key, e.Signature, o.res.Signature)
		case o.minErr != nil:
			failed++
			fmt.Printf("  FAIL %-45s reproduces but no longer minimizes: %v\n", key, o.minErr)
		case o.min != nil:
			fmt.Printf("  ok   %-45s %s (minimal witness: %d -> %d ops)\n",
				key, e.Signature, o.min.Before, o.min.After)
		default:
			fmt.Printf("  ok   %-45s %s\n", key, e.Signature)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d stored finding(s) no longer reproduce", failed, len(entries))
	}
	fmt.Printf("all %d stored finding(s) reproduce\n", len(entries))
	return nil
}

func replay(entry l2fuzz.CorpusEntry, rcfg l2fuzz.CorpusReplayConfig, dump bool) error {
	res, err := l2fuzz.ReplayCorpusEntry(entry, rcfg)
	if err != nil {
		return err
	}
	printReplay(entry, res)
	if dump && res.Dump != "" {
		fmt.Printf("\ncrash artefact:\n%s", res.Dump)
	}
	if !res.Reproduced {
		return fmt.Errorf("finding did not reproduce")
	}
	return nil
}

func printReplay(entry l2fuzz.CorpusEntry, res *l2fuzz.CorpusReplayResult) {
	verdict := "NOT REPRODUCED"
	if res.Reproduced {
		verdict = "reproduced"
	}
	fmt.Printf("replayed %d ops against %s: %s\n", len(entry.Trace.Ops), entry.Trace.Target, verdict)
	fmt.Printf("  recorded: %s\n", entry.Signature)
	fmt.Printf("  observed: %s (device crashed: %v)\n", res.Signature, res.Crashed)
}

func minimize(store *l2fuzz.CorpusStore, entry l2fuzz.CorpusEntry, rcfg l2fuzz.CorpusReplayConfig, write bool, maxReplays int) error {
	res, err := l2fuzz.MinimizeCorpusEntry(entry, l2fuzz.CorpusMinimizeConfig{
		ReplayConfig: rcfg,
		MaxReplays:   maxReplays,
	})
	if err != nil {
		return err
	}
	fmt.Printf("minimized %s: %d ops -> %d ops (%d verification replays)\n",
		entry.Signature, res.Before, res.After, res.Replays)
	if !write {
		return nil
	}
	if err := store.Put(res.Entry); err != nil {
		return err
	}
	fmt.Printf("stored minimized trace under %s\n", l2fuzz.CorpusKey(res.Entry.Signature))
	return nil
}

func triage(entry l2fuzz.CorpusEntry, rcfg l2fuzz.CorpusReplayConfig) error {
	res, err := l2fuzz.ReplayCorpusEntry(entry, rcfg)
	if err != nil {
		return err
	}
	printReplay(entry, res)
	fmt.Printf("\n%s\n", res.RootCause.Render())
	if !res.Reproduced {
		return fmt.Errorf("finding did not reproduce; root cause is from the stored finding only")
	}
	return nil
}
