// Command l2journal renders a recorded farm run (an l2farm -journal
// directory, or the journal.jsonl inside one) into the paper's
// evaluation figures — entirely from the journal, without re-running
// anything.
//
// Subcommands:
//
//	figures   the coverage-over-time curves (cumulative packets,
//	          malformed packets, distinct states, findings vs wall
//	          time; Figures 8–10)
//	latency   per-device/kind/variant wall-time histograms with the
//	          span-derived phase split (queue/dispatch/execute/
//	          transport)
//	workers   the per-worker utilization timeline
//	trend     diff two runs' coverage curves: exact on final totals,
//	          tolerance-banded on normalized area-under-curve; exits
//	          nonzero on regression (the CI gate over the journaled
//	          farm artifact)
//
// Every subcommand takes a journal path: the journal.jsonl itself, a
// run directory holding one, or a directory of run directories (the
// l2farm -journal layout — the newest run is picked). -format selects
// aligned text tables (default), CSV, or a self-contained SVG chart;
// -o writes to a file instead of stdout.
//
// Usage:
//
//	l2journal figures [-format text|csv|svg] [-o FILE] JOURNAL
//	l2journal latency [-by device|kind|variant] [-format text|csv|svg] [-o FILE] JOURNAL
//	l2journal workers [-format text|csv|svg] [-o FILE] JOURNAL
//	l2journal trend [-total-tol 0] [-auc-tol 0.35] [-format text|csv] [-o FILE] BASELINE CURRENT
//
// Examples:
//
//	l2farm -journal runs -quiet && l2journal figures runs
//	l2journal figures -format svg -o coverage.svg runs
//	l2journal latency -by kind runs
//	l2journal trend testdata/baseline.jsonl runs
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"l2fuzz/internal/telemetry/analyze"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "l2journal: want a subcommand: figures, latency, workers, trend")
		os.Exit(2)
	}
	err := run(os.Args[1], os.Args[2:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "l2journal:", err)
		os.Exit(1)
	}
}

// errRegressed marks a trend regression: reported without the
// "l2journal:" prefix noise, but still a nonzero exit.
type errRegressed struct{}

func (errRegressed) Error() string { return "coverage trend regressed against the baseline" }

func run(sub string, args []string) error {
	switch sub {
	case "figures":
		return figures(args)
	case "latency":
		return latency(args)
	case "workers":
		return workers(args)
	case "trend":
		return trend(args)
	default:
		return fmt.Errorf("unknown subcommand %q (have figures, latency, workers, trend)", sub)
	}
}

// outputFlags is the -format/-o pair every subcommand shares.
func outputFlags(fs *flag.FlagSet, svg bool) (format, out *string) {
	formats := "text, csv"
	if svg {
		formats += ", svg"
	}
	format = fs.String("format", "text", "output format: "+formats)
	out = fs.String("o", "", "write to this file instead of stdout")
	return format, out
}

// emit writes the rendered bytes to -o or stdout.
func emit(out string, data []byte) error {
	if out == "" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

// emitTo runs a writer-based renderer against -o or stdout.
func emitTo(out string, render func(io.Writer) error) error {
	if out == "" {
		return render(os.Stdout)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// parseJournalArg resolves the single positional journal path.
func parseJournalArg(fs *flag.FlagSet) (*analyze.Run, error) {
	if fs.NArg() != 1 {
		return nil, fmt.Errorf("want exactly one journal path (a journal.jsonl, a run directory, or an l2farm -journal directory)")
	}
	return analyze.ParseFile(fs.Arg(0))
}

func figures(args []string) error {
	fs := flag.NewFlagSet("figures", flag.ExitOnError)
	format, out := outputFlags(fs, true)
	fs.Parse(args)
	run, err := parseJournalArg(fs)
	if err != nil {
		return err
	}
	cov := run.Coverage()
	switch *format {
	case "text":
		return emit(*out, []byte(analyze.RenderCoverage(cov)))
	case "csv":
		return emitTo(*out, func(w io.Writer) error { return analyze.CoverageCSV(w, cov) })
	case "svg":
		return emit(*out, analyze.CoverageSVG(cov))
	default:
		return fmt.Errorf("unknown -format %q (have text, csv, svg)", *format)
	}
}

func latency(args []string) error {
	fs := flag.NewFlagSet("latency", flag.ExitOnError)
	by := fs.String("by", "device", "breakdown axis: device, kind, variant")
	format, out := outputFlags(fs, true)
	fs.Parse(args)
	run, err := parseJournalArg(fs)
	if err != nil {
		return err
	}
	rows, err := run.Latency(analyze.GroupBy(*by))
	if err != nil {
		return err
	}
	switch *format {
	case "text":
		return emit(*out, []byte(analyze.RenderLatency(analyze.GroupBy(*by), rows)))
	case "csv":
		return emitTo(*out, func(w io.Writer) error { return analyze.LatencyCSV(w, analyze.GroupBy(*by), rows) })
	case "svg":
		return emit(*out, analyze.LatencySVG(analyze.GroupBy(*by), rows))
	default:
		return fmt.Errorf("unknown -format %q (have text, csv, svg)", *format)
	}
}

func workers(args []string) error {
	fs := flag.NewFlagSet("workers", flag.ExitOnError)
	format, out := outputFlags(fs, true)
	fs.Parse(args)
	run, err := parseJournalArg(fs)
	if err != nil {
		return err
	}
	rows := run.WorkerTimelines()
	switch *format {
	case "text":
		return emit(*out, []byte(analyze.RenderWorkers(rows, run.Duration)))
	case "csv":
		return emitTo(*out, func(w io.Writer) error { return analyze.WorkersCSV(w, rows) })
	case "svg":
		return emit(*out, analyze.WorkersSVG(rows, run.Duration))
	default:
		return fmt.Errorf("unknown -format %q (have text, csv, svg)", *format)
	}
}

func trend(args []string) error {
	fs := flag.NewFlagSet("trend", flag.ExitOnError)
	totalTol := fs.Float64("total-tol", 0, "allowed relative drop of each series' final total (the farm is seed-deterministic, so 0 means exact)")
	aucTol := fs.Float64("auc-tol", analyze.DefaultAUCTol, "allowed relative drop of each series' normalized area-under-curve")
	format, out := outputFlags(fs, false)
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("want BASELINE and CURRENT journal paths")
	}
	base, err := analyze.ParseFile(fs.Arg(0))
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	cur, err := analyze.ParseFile(fs.Arg(1))
	if err != nil {
		return fmt.Errorf("current: %w", err)
	}
	t := analyze.CompareTrend(base.Coverage(), cur.Coverage(),
		analyze.TrendOptions{TotalTol: *totalTol, AUCTol: *aucTol})
	switch *format {
	case "text":
		if err := emit(*out, []byte(analyze.RenderTrend(t))); err != nil {
			return err
		}
	case "csv":
		if err := emitTo(*out, func(w io.Writer) error { return analyze.TrendCSV(w, t) }); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown -format %q (have text, csv)", *format)
	}
	if t.Regressed {
		return errRegressed{}
	}
	return nil
}
