// Command l2farm runs a parallel fuzzing farm over the simulated
// Bluetooth testbed: a job matrix of catalog devices × fuzzer kinds ×
// configuration variants × seed shards executed on a bounded worker
// pool.
//
// The farm is consumed through its event stream (StartFleet): every
// JobDone event becomes a progress line, and with -stream every
// NewFinding event is printed the moment the farm first sees that
// (state, PSM, error-class) signature — the mode meant for very long
// unattended farms, where waiting for the end-of-run report is not an
// option. The final farm report is rendered either way.
//
// The -ablations flag adds the variant axis: a comma-separated subset
// of the paper's §IV-D ablation grid (baseline, no-state-guiding,
// all-fields, no-garbage) or "all" for the whole grid, every variant
// run for every (device, fuzzer) cell and broken out in the report's
// per-variant table. The -budget flag (repeatable) overrides the
// per-job packet budget for a single target, spending the farm's time
// where the devices need it.
//
// The -corpus flag makes the farm's findings durable: every new
// finding's recorded repro trace is written into the given corpus
// directory as it streams in, and findings whose signature the corpus
// already holds are reported as "(known)" instead of announced as new —
// so repeated farms over one corpus only ever surface genuinely new
// crashes. Stored findings are replayed, minimized and triaged with the
// companion l2repro command.
//
// The -device-file flag (repeatable) opens the target axis beyond the
// Table V catalog: each file holds one JSON target spec — name, BD_ADDR,
// stack profile, port map, optional named defects and RFCOMM services
// (see l2fuzz.ParseDeviceSpec for the format) — and the decoded spec is
// fuzzed next to the catalog devices, keyed everywhere by its name
// (budgets, progress lines, per-device report sections). Malformed
// files are rejected with the line and column of the error. Use
// "-devices none" with -device-file to farm custom targets alone.
//
// The -exec flag selects the job execution transport. The default,
// "local", runs jobs in-process on the worker pool. "-exec proc" runs
// them in worker subprocesses instead (each an "l2farm -worker"
// re-execution of this binary, speaking length-prefixed JSON over its
// stdin/stdout): a crashed worker takes only the job it was holding,
// which the farm requeues on a surviving worker — both transports
// produce identical reports. -procs sizes the subprocess pool
// independently of -workers, and -job-deadline kills any worker that
// sits on one job past the given duration (the job is retried). The
// -worker flag itself is the subprocess entry point, not for
// interactive use.
//
// The farm is observable while it runs. -telemetry ADDR serves a live
// introspection endpoint: /metrics (Prometheus text format counters:
// frames, packets, mutations, findings, job lifecycle), /debug/vars
// (expvar), /snapshot (the mid-run farm report as JSON) and
// /debug/pprof. -journal DIR records the run as a structured JSONL
// journal in a fresh DIR/run-<timestamp>-<pid>/journal.jsonl: the farm
// configuration, every job start, job result (with its trace span) and
// finding as timestamped records, plus a counter sample every
// -journal-interval (1s by default; the chosen period is recorded in
// the journal header). A journal replays into the exact live report
// with l2fuzz.ReplayFleetJournal, and renders into the paper's
// coverage-over-time figures with the companion l2journal command.
//
// Usage:
//
//	l2farm [-devices all|none|D1,D2,...] [-fuzzers l2fuzz,defensics,bfuzz,bss,rfcomm,campaign,sdp,sm]
//	       [-ablations all|baseline,no-state-guiding,all-fields,no-garbage]
//	       [-device-file spec.json]... [-shards 1] [-workers 0] [-seed 1]
//	       [-max-packets 250000] [-budget D3=500000]... [-corpus dir]
//	       [-exec local|proc] [-procs 0] [-job-deadline 0]
//	       [-telemetry addr] [-journal dir] [-journal-interval 1s]
//	       [-measure] [-quiet] [-stream] [-dump]
//
// Examples:
//
//	l2farm                                   # all eight devices × L2Fuzz
//	l2farm -fuzzers l2fuzz,campaign -shards 4
//	l2farm -devices D2,D5 -fuzzers all -measure
//	l2farm -fuzzers all -shards 8 -stream   # findings as they land
//	l2farm -ablations all -measure          # the §IV-D grid, farm-wide
//	l2farm -budget D4=100000 -budget D6=100000
//	l2farm -device-file toaster.json -budget smart-toaster=500000
//	l2farm -devices none -device-file a.json -device-file b.json
//	l2farm -corpus findings/ -fuzzers all   # durable, de-duplicated across runs
//	l2farm -exec proc -fuzzers all          # process-isolated workers
//	l2farm -telemetry localhost:6060        # curl /metrics, /snapshot, /debug/pprof
//	l2farm -journal runs/ -quiet            # recorded, replayable run
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"l2fuzz"
)

// kindAliases maps the CLI's lower-case fuzzer names to farm kinds,
// and allKindNames is the -fuzzers all expansion in report order; both
// derive from the library's kind list so new kinds appear here
// automatically.
var (
	kindAliases  = make(map[string]l2fuzz.FleetKind)
	allKindNames []string
)

func init() {
	for _, kind := range l2fuzz.FleetKinds() {
		name := strings.ToLower(string(kind))
		kindAliases[name] = kind
		allKindNames = append(allKindNames, name)
	}
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "l2farm:", err)
		os.Exit(1)
	}
}

// splitList splits one comma-separated flag value: elements are
// whitespace-trimmed, empty elements (trailing commas, doubled commas)
// are dropped, and duplicates are rejected with the flag's name so the
// error points at the right part of the command line. A value with no
// elements at all is rejected too — an emptied-out restriction must not
// silently fall back to the library default.
func splitList(flagName, val string) ([]string, error) {
	var out []string
	seen := make(map[string]bool)
	for _, el := range strings.Split(val, ",") {
		el = strings.TrimSpace(el)
		if el == "" {
			continue
		}
		if seen[el] {
			return nil, fmt.Errorf("-%s: duplicate %q", flagName, el)
		}
		seen[el] = true
		out = append(out, el)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-%s: empty list %q", flagName, val)
	}
	return out, nil
}

// budgetFlag collects repeatable -budget DEVICE=PACKETS overrides.
type budgetFlag map[string]int

// String renders the overrides sorted by target name: map iteration is
// random, and this string reaches -help defaults and error echoes.
func (b budgetFlag) String() string {
	ids := make([]string, 0, len(b))
	for id := range b {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprintf("%s=%d", id, b[id])
	}
	return strings.Join(parts, ",")
}

// specFileFlag collects repeatable -device-file PATH custom targets.
type specFileFlag struct {
	specs []l2fuzz.DeviceSpec
	paths []string
}

func (f *specFileFlag) String() string { return strings.Join(f.paths, ",") }

func (f *specFileFlag) Set(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	spec, err := l2fuzz.ParseDeviceSpec(data)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	f.specs = append(f.specs, spec)
	f.paths = append(f.paths, path)
	return nil
}

func (b budgetFlag) Set(s string) error {
	id, val, ok := strings.Cut(s, "=")
	id = strings.TrimSpace(id)
	if !ok || id == "" {
		return fmt.Errorf("want DEVICE=PACKETS, e.g. -budget D3=500000")
	}
	n, err := strconv.Atoi(strings.TrimSpace(val))
	if err != nil {
		return fmt.Errorf("bad packet count %q in -budget %s", val, s)
	}
	if _, dup := b[id]; dup {
		return fmt.Errorf("-budget: duplicate budget for %q", id)
	}
	b[id] = n
	return nil
}

func run() error {
	budgets := make(budgetFlag)
	var specFiles specFileFlag
	var (
		devices      = flag.String("devices", "all", "comma-separated catalog IDs, \"all\" for the Table V testbed, or \"none\" to farm -device-file targets alone")
		fuzzers      = flag.String("fuzzers", "l2fuzz", "comma-separated fuzzer kinds, or \"all\"")
		ablations    = flag.String("ablations", "", "comma-separated §IV-D variants (baseline, no-state-guiding, all-fields, no-garbage), or \"all\" for the whole grid")
		shards       = flag.Int("shards", 1, "seed shards per (device, fuzzer, variant) cell")
		workers      = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		seed         = flag.Int64("seed", 1, "farm base seed")
		maxPackets   = flag.Int("max-packets", 0, "per-job packet budget (0 = library default)")
		corpusDir    = flag.String("corpus", "", "persist findings with repro traces into this corpus directory; known signatures are reported as such (replay them with l2repro)")
		telemetry    = flag.String("telemetry", "", "serve live metrics on this address (/metrics, /debug/vars, /snapshot, /debug/pprof)")
		journalDir   = flag.String("journal", "", "record the run as a JSONL journal in a fresh run directory under this path")
		journalEvery = flag.Duration("journal-interval", time.Second, "counter-sample period of the -journal recording (recorded in the journal header)")
		execMode     = flag.String("exec", "local", "job execution transport: \"local\" (in-process pool) or \"proc\" (worker subprocesses)")
		procs        = flag.Int("procs", 0, "worker subprocess count for -exec proc (0 = worker pool size)")
		jobDeadline  = flag.Duration("job-deadline", 0, "kill a -exec proc worker holding one job past this duration and retry the job (0 = no deadline)")
		workerMode   = flag.Bool("worker", false, "run as a farm worker subprocess on stdin/stdout (spawned by -exec proc; not for interactive use)")

		measure = flag.Bool("measure", false, "measurement-grade targets: defects disabled, metrics only")
		quiet   = flag.Bool("quiet", false, "suppress per-job progress lines")
		stream  = flag.Bool("stream", false, "print de-duplicated findings as they land")
		dump    = flag.Bool("dump", false, "print the first crash artefact of every finding")
	)
	flag.Var(budgets, "budget", "per-target packet budget as TARGET=PACKETS (repeatable)")
	flag.Var(&specFiles, "device-file", "JSON target spec fuzzed alongside the catalog devices (repeatable)")
	flag.Parse()

	if *workerMode {
		return l2fuzz.RunFleetWorker(os.Stdin, os.Stdout)
	}

	cfg := l2fuzz.FleetConfig{
		CustomDevices:    specFiles.specs,
		Shards:           *shards,
		BaseSeed:         *seed,
		Workers:          *workers,
		MaxPacketsPerJob: *maxPackets,
		MeasurementGrade: *measure,
	}
	if len(budgets) > 0 {
		cfg.Budgets = budgets
	}
	if *corpusDir != "" {
		store, err := l2fuzz.OpenCorpus(*corpusDir)
		if err != nil {
			return err
		}
		cfg.Corpus = store
	}
	if *telemetry != "" || *journalDir != "" {
		cfg.Counters = &l2fuzz.TelemetryCounters{}
	}
	if *journalDir == "" {
		if *journalEvery != time.Second {
			return fmt.Errorf("-journal-interval requires -journal")
		}
	} else {
		if *journalEvery <= 0 {
			return fmt.Errorf("-journal-interval must be positive, got %v", *journalEvery)
		}
		runDir := filepath.Join(*journalDir,
			fmt.Sprintf("run-%s-%d", time.Now().UTC().Format("20060102-150405"), os.Getpid()))
		journal, err := l2fuzz.OpenTelemetryJournal(runDir)
		if err != nil {
			return err
		}
		cfg.Journal = journal
		// The header records the sampler period so an analyzer can label
		// the sampled series' time axis honestly.
		cfg.SampleInterval = *journalEvery
		fmt.Fprintln(os.Stderr, "l2farm: journaling to", filepath.Join(runDir, l2fuzz.TelemetryJournalFile))
	}
	switch *devices {
	case "all":
		// Leave Devices empty only when no custom specs are given (the
		// library then defaults to the whole testbed); with custom specs
		// present, "all" must still mean the full catalog.
		if len(cfg.CustomDevices) > 0 {
			cfg.Devices = l2fuzz.CatalogDeviceIDs()
		}
	case "none":
		if len(cfg.CustomDevices) == 0 {
			return fmt.Errorf("-devices none requires at least one -device-file")
		}
	default:
		ids, err := splitList("devices", *devices)
		if err != nil {
			return err
		}
		cfg.Devices = ids
	}
	names := allKindNames
	if *fuzzers != "all" {
		var err error
		names, err = splitList("fuzzers", strings.ToLower(*fuzzers))
		if err != nil {
			return err
		}
	}
	for _, name := range names {
		kind, ok := kindAliases[name]
		if !ok {
			return fmt.Errorf("unknown fuzzer %q (have %s)", name, strings.Join(allKindNames, ", "))
		}
		cfg.Kinds = append(cfg.Kinds, kind)
	}
	switch *execMode {
	case "local":
		if *procs != 0 || *jobDeadline != 0 {
			return fmt.Errorf("-procs and -job-deadline require -exec proc")
		}
	case "proc":
		cfg.Executor = l2fuzz.NewFleetProcExecutor(l2fuzz.FleetProcConfig{
			Procs:       *procs,
			JobDeadline: *jobDeadline,
		})
	default:
		return fmt.Errorf("unknown -exec %q (have local, proc)", *execMode)
	}
	if *ablations != "" {
		variantNames, err := splitList("ablations", strings.ToLower(*ablations))
		if err != nil {
			return err
		}
		if len(variantNames) == 1 && variantNames[0] == "all" {
			cfg.Variants = l2fuzz.FleetAblationVariants()
		} else {
			for _, name := range variantNames {
				v, err := l2fuzz.FleetVariantByName(name)
				if err != nil {
					return err
				}
				cfg.Variants = append(cfg.Variants, v)
			}
		}
	}

	farm, err := l2fuzz.StartFleet(cfg)
	if err != nil {
		return err
	}
	if *telemetry != "" {
		srv, err := l2fuzz.ServeTelemetry(*telemetry, l2fuzz.TelemetryServerConfig{
			Counters: cfg.Counters,
			Snapshot: func() any { return farm.Snapshot() },
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintln(os.Stderr, "l2farm: telemetry on http://"+srv.Addr)
	}
	stopSampler := func() {}
	if cfg.Journal != nil {
		stopSampler = cfg.Journal.StartSampler(cfg.Counters, cfg.SampleInterval)
	}
	// Progress-line job column: 34 runes fits the longest catalog job
	// name ("D8×Defensics[no-state-guiding]/99" is 33); custom targets
	// widen it by however much their name exceeds a catalog ID's 2.
	jobW := 34
	for _, spec := range cfg.CustomDevices {
		if w := len(spec.Name) + 32; w > jobW {
			jobW = w
		}
	}
	printed := false
	for ev := range farm.Events() {
		switch ev.Type {
		case l2fuzz.FleetJobDone:
			if *quiet {
				continue
			}
			res := ev.Result
			status := fmt.Sprintf("%d findings", len(res.Findings))
			switch {
			case res.Err != nil:
				status = "FAILED: " + res.Err.Error()
			case len(res.Findings) == 0 && res.Crashed:
				status = "crashed (undetected)"
			case len(res.Findings) == 0:
				status = "clean"
			}
			fmt.Printf("[%*d/%d] %-*s %9d pkts  %12v sim  %s\n",
				len(fmt.Sprint(ev.Total)), ev.Done, ev.Total, jobW, res.Job.String(),
				res.PacketsSent, res.Elapsed.Round(1e6), status)
			printed = true
		case l2fuzz.FleetWorkerDown:
			if ev.WorkerErr != "" {
				fmt.Fprintf(os.Stderr, "l2farm: worker %s died: %s (job requeued)\n", ev.Worker, ev.WorkerErr)
			}
		case l2fuzz.FleetNewFinding:
			if !*stream {
				continue
			}
			f := ev.Finding
			fmt.Printf("NEW %s (%s) via %s on %s  [%d/%d jobs in]\n",
				f.Signature, f.Finding.Error.Severity(), ev.Job.Kind, ev.Job.Device,
				ev.Done, ev.Total)
			printed = true
		}
	}
	report := farm.Wait()
	stopSampler()
	if cfg.Journal != nil {
		if err := cfg.Journal.Close(); err != nil {
			// The farm itself succeeded; a hole in the recording is worth
			// a warning, not a failed run.
			fmt.Fprintln(os.Stderr, "l2farm: journal:", err)
		}
	}

	if printed {
		fmt.Println()
	}
	fmt.Print(report.Render())
	if *dump {
		for i, f := range report.Findings {
			if f.Dump == "" {
				continue
			}
			fmt.Printf("\ncrash artefact for finding %d (%s):\n%s", i+1, f.Signature, f.Dump)
		}
	}
	if report.Failed > 0 {
		return fmt.Errorf("%d of %d jobs failed", report.Failed, len(report.Jobs))
	}
	return nil
}
